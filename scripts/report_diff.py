#!/usr/bin/env python3
"""Compare two fx8bench JSON reports modulo timing/cache bookkeeping.

The persistent result cache (docs/benchmarks.md, "The result cache")
promises that a warm `fx8bench --all` reproduces the cold run's report
byte-for-byte *except* for fields that describe the run itself rather
than the measured results:

  - `summary.total_seconds` and each artifact's `seconds` (wall clock),
  - `experiment_runs` (a warm run executes zero engines),
  - `cache` (hit/miss counters obviously differ between cold and warm).

This script strips exactly those fields from both reports and then
compares the rest byte-for-byte (via a canonical JSON dump). CI uses it
to gate the cold-then-warm `artifact-report` job; it is equally handy
locally:

    python3 scripts/report_diff.py cold.json warm.json

Exit code 0 when the normalized reports match, 1 when they differ (a
unified diff is printed), 2 on usage/IO errors.
"""

import difflib
import json
import sys

# Fields that legitimately differ between a cold and a warm run.
VOLATILE_TOP_LEVEL = ("experiment_runs", "cache")


def normalize(report: dict) -> dict:
    for key in VOLATILE_TOP_LEVEL:
        report.pop(key, None)
    if isinstance(report.get("summary"), dict):
        report["summary"].pop("total_seconds", None)
    for artifact in report.get("artifacts", []):
        if isinstance(artifact, dict):
            artifact.pop("seconds", None)
    return report


def canonical(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    return json.dumps(normalize(report), indent=2, sort_keys=True) + "\n"


def main(argv: list) -> int:
    if len(argv) != 3:
        print(f"usage: {argv[0]} <a.json> <b.json>", file=sys.stderr)
        return 2
    try:
        a, b = canonical(argv[1]), canonical(argv[2])
    except (OSError, json.JSONDecodeError) as error:
        print(f"report_diff: {error}", file=sys.stderr)
        return 2
    if a == b:
        print("report_diff: reports identical modulo timing/cache fields")
        return 0
    sys.stdout.writelines(
        difflib.unified_diff(
            a.splitlines(keepends=True),
            b.splitlines(keepends=True),
            fromfile=argv[1],
            tofile=argv[2],
        )
    )
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
