// Programs: what a job executes on the cluster.
//
// A Program alternates serial phases (one CE interprets a kernel) and
// concurrent DO-loop phases (iterations self-scheduled across the cluster
// over the Concurrency Control Bus), mirroring how the Alliant FORTRAN
// compiler emits code (paper §3.2, Figure 2).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "base/types.hpp"
#include "isa/kernel.hpp"

namespace repro::isa {

/// Serial section of a program: `reps` executions of `body` on one CE.
struct SerialPhase {
  KernelSpec body;
  std::uint64_t reps = 1;

  void serialize(capsule::Io& io) {
    body.serialize(io);
    io.u64(reps);
  }
};

/// A compiler-parallelized DO loop.
struct ConcurrentLoopPhase {
  /// Total iterations of the loop.
  std::uint64_t trip_count = 8;

  /// Work per iteration.
  KernelSpec body;

  /// Iterations walk one shared region: iteration i's accesses start at
  /// data_base + i*stride*loads, so adjacent iterations on different CEs
  /// share cache lines (paper §5.1: "data and instruction locality across
  /// processors lessens the overall impact on the cache").
  bool shared_data = true;

  /// Probability an iteration takes a longer conditional path (paper §4.3:
  /// iteration-dependent branching makes processors lead/lag one another).
  double long_path_prob = 0.0;
  /// Extra steps executed on the long path.
  std::uint32_t long_path_extra_steps = 0;

  /// Fraction of iterations carrying a dependence on their predecessor;
  /// such iterations must await the predecessor's cadvance over the CCB.
  double dependence_prob = 0.0;

  /// Cycles consumed per synchronization wait poll (CCB traffic only; the
  /// paper notes sync waits generate no cache/memory bus traffic, §5.1).
  std::uint32_t await_poll_cycles = 4;

  void serialize(capsule::Io& io) {
    io.u64(trip_count);
    body.serialize(io);
    io.boolean(shared_data);
    io.f64(long_path_prob);
    io.u32(long_path_extra_steps);
    io.f64(dependence_prob);
    io.u32(await_poll_cycles);
  }
};

using Phase = std::variant<SerialPhase, ConcurrentLoopPhase>;

/// One schedulable unit of work.
struct Program {
  std::string name = "program";
  std::vector<Phase> phases;

  /// Base virtual address of the program's data region. Each program gets
  /// a disjoint region so jobs do not share cache lines with one another.
  Addr data_base = 0;

  /// Deterministic per-program seed used for iteration-level randomness
  /// (jitter, conditional paths, hot/cold selection).
  std::uint64_t seed = 1;

  void validate() const;

  /// Total trip count across all concurrent phases (for tests/diagnostics).
  [[nodiscard]] std::uint64_t total_concurrent_iterations() const;

  /// True if any phase is a concurrent loop.
  [[nodiscard]] bool has_concurrency() const;

  /// Capsule walk: phase list (with variant discriminants) and scalars.
  void serialize(capsule::Io& io) {
    io.str(name);
    const std::uint64_t count = io.extent(phases.size());
    if (io.loading()) {
      phases.assign(static_cast<std::size_t>(count), SerialPhase{});
    }
    for (Phase& phase : phases) {
      std::uint8_t which =
          std::holds_alternative<ConcurrentLoopPhase>(phase) ? 1 : 0;
      io.u8(which);
      if (io.loading()) {
        if (which > 1) {
          throw capsule::CapsuleError("capsule: bad program phase tag");
        }
        if (which == 1) {
          phase = ConcurrentLoopPhase{};
        }
      }
      std::visit([&io](auto& p) { p.serialize(io); }, phase);
    }
    io.u64(data_base);
    io.u64(seed);
  }
};

/// Convenience builder for the common serial/loop/serial... shape.
class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name);

  ProgramBuilder& seed(std::uint64_t s);
  ProgramBuilder& data_base(Addr base);
  ProgramBuilder& serial(KernelSpec body, std::uint64_t reps = 1);
  ProgramBuilder& concurrent_loop(ConcurrentLoopPhase loop);

  [[nodiscard]] Program build() const;

 private:
  Program prog_;
};

}  // namespace repro::isa
