// Program listings: a compiler-listing-style rendering of a Program.
//
// FX/FORTRAN printed optimization listings showing which loops were
// turned into concurrent form; this is the reproduction's equivalent,
// used by examples and debugging sessions to see what a generated job
// actually contains.
#pragma once

#include <string>

#include "isa/program.hpp"

namespace repro::isa {

/// Multi-line listing: one line per phase with its kind, repetition or
/// trip count, body summary, and concurrency attributes.
[[nodiscard]] std::string listing(const Program& program);

}  // namespace repro::isa
