#include "isa/listing.hpp"

#include <sstream>

#include "base/text.hpp"

namespace repro::isa {

std::string listing(const Program& program) {
  std::ostringstream os;
  os << "program " << program.name << "  (data base 0x" << std::hex
     << program.data_base << std::dec << ", seed " << program.seed
     << ")\n";
  std::size_t index = 0;
  for (const Phase& phase : program.phases) {
    os << "  [" << pad_left(std::to_string(index), 2) << "] ";
    if (const auto* serial = std::get_if<SerialPhase>(&phase)) {
      os << "serial      x" << pad_left(std::to_string(serial->reps), 4)
         << "  " << describe(serial->body) << '\n';
    } else {
      const auto& loop = std::get<ConcurrentLoopPhase>(phase);
      os << "CONCURRENT  x" << pad_left(std::to_string(loop.trip_count), 4)
         << "  " << describe(loop.body);
      if (loop.dependence_prob > 0.0) {
        os << "  [dep " << fixed(loop.dependence_prob, 2) << ']';
      }
      if (loop.long_path_prob > 0.0) {
        os << "  [branchy " << fixed(loop.long_path_prob, 2) << " +"
           << loop.long_path_extra_steps << " steps]";
      }
      if (!loop.shared_data) {
        os << "  [private data]";
      }
      os << '\n';
    }
    ++index;
  }
  os << "  total concurrent iterations: "
     << program.total_concurrent_iterations() << '\n';
  return os.str();
}

}  // namespace repro::isa
