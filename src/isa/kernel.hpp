// Kernel descriptors — the unit of work a Computational Element interprets.
//
// The original workload was compiled FX/FORTRAN. We do not reproduce a
// full 68020-style instruction set; what the measurements observe is the
// *bus behaviour* of executing code, so a kernel is described by the
// parameters that determine bus behaviour: compute cycles per step, memory
// accesses per step, the address pattern those accesses walk, and the
// instruction-cache footprint of the code. The CE interpreter (src/fx8)
// "microcodes" these descriptors cycle by cycle.
#pragma once

#include <cstdint>
#include <string>

#include "base/capsule.hpp"
#include "base/types.hpp"

namespace repro::isa {

/// How a kernel's data accesses walk memory.
enum class AccessPattern : std::uint8_t {
  /// Sequential walk with a fixed stride over the working set (typical of
  /// vectorizable FORTRAN array code: matmul rows, triad, stencils).
  kStreaming,
  /// Most accesses fall in a small hot set; the rest stream (typical of
  /// serial/scalar code: editors, compilers, shells).
  kHotCold,
};

/// Static description of a block of straight-line-ish code executed as a
/// sequence of `steps` inner steps.
struct KernelSpec {
  std::string name = "kernel";

  /// Inner steps per execution of this kernel (per loop iteration when used
  /// as a concurrent-loop body).
  std::uint32_t steps = 1;

  /// Register-to-register compute cycles per step (no bus traffic).
  std::uint32_t compute_cycles = 4;
  /// Uniform jitter applied to compute_cycles, in cycles (+/-).
  std::uint32_t compute_jitter = 0;

  /// Data accesses issued per step.
  std::uint32_t loads_per_step = 1;
  std::uint32_t stores_per_step = 0;

  AccessPattern pattern = AccessPattern::kStreaming;

  /// Bytes between successive streaming accesses.
  std::uint64_t stride_bytes = 8;
  /// Size of the region the streaming walk wraps around in.
  std::uint64_t working_set_bytes = 64 * 1024;
  /// For kHotCold: fraction of accesses that hit the hot set.
  double hot_fraction = 0.9;
  /// For kHotCold: size of the hot set.
  std::uint64_t hot_set_bytes = 2 * 1024;

  /// Instruction footprint of the compiled kernel. Fits in the CE's 16 KB
  /// internal instruction cache when <= that size; larger footprints spill
  /// instruction fetches onto the shared cache.
  std::uint64_t code_bytes = 4 * 1024;

  /// Fraction of steps that are 32-element vector register operations;
  /// these add compute cycles but no bus traffic (paper §5.1: register-to-
  /// register vector operations reduce CE-to-cache traffic).
  double vector_fraction = 0.0;
  std::uint32_t vector_cycles = 8;

  /// Validate parameter sanity; throws ContractViolation on nonsense.
  void validate() const;

  /// Capsule walk over every field.
  void serialize(capsule::Io& io) {
    io.str(name);
    io.u32(steps);
    io.u32(compute_cycles);
    io.u32(compute_jitter);
    io.u32(loads_per_step);
    io.u32(stores_per_step);
    io.enum32(pattern);
    io.u64(stride_bytes);
    io.u64(working_set_bytes);
    io.f64(hot_fraction);
    io.u64(hot_set_bytes);
    io.u64(code_bytes);
    io.f64(vector_fraction);
    io.u32(vector_cycles);
  }
};

/// Human-readable one-line summary (for reports and examples).
[[nodiscard]] std::string describe(const KernelSpec& spec);

}  // namespace repro::isa
