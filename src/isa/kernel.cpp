#include "isa/kernel.hpp"

#include <sstream>

#include "base/expect.hpp"

namespace repro::isa {

void KernelSpec::validate() const {
  REPRO_EXPECT(steps > 0, "kernel must have at least one step");
  REPRO_EXPECT(compute_cycles > 0 || loads_per_step > 0 || stores_per_step > 0,
               "kernel must do some work per step");
  REPRO_EXPECT(compute_jitter <= compute_cycles,
               "compute jitter cannot exceed the mean compute cycles");
  REPRO_EXPECT(stride_bytes > 0, "stride must be positive");
  REPRO_EXPECT(working_set_bytes >= stride_bytes,
               "working set must cover at least one stride");
  REPRO_EXPECT(hot_fraction >= 0.0 && hot_fraction <= 1.0,
               "hot fraction must be a probability");
  REPRO_EXPECT(hot_set_bytes > 0, "hot set must be non-empty");
  REPRO_EXPECT(vector_fraction >= 0.0 && vector_fraction <= 1.0,
               "vector fraction must be a probability");
}

std::string describe(const KernelSpec& spec) {
  std::ostringstream os;
  os << spec.name << ": " << spec.steps << " steps, " << spec.compute_cycles
     << "c compute, " << spec.loads_per_step << "L/" << spec.stores_per_step
     << "S per step, ws=" << spec.working_set_bytes / 1024 << "KB, code="
     << spec.code_bytes / 1024 << "KB, "
     << (spec.pattern == AccessPattern::kStreaming ? "streaming" : "hot/cold");
  return os.str();
}

}  // namespace repro::isa
