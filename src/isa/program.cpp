#include "isa/program.hpp"

#include <utility>

#include "base/expect.hpp"

namespace repro::isa {

namespace {

void validate_phase(const Phase& phase) {
  if (const auto* serial = std::get_if<SerialPhase>(&phase)) {
    serial->body.validate();
    REPRO_EXPECT(serial->reps > 0, "serial phase must repeat at least once");
    return;
  }
  const auto& loop = std::get<ConcurrentLoopPhase>(phase);
  loop.body.validate();
  REPRO_EXPECT(loop.trip_count > 0, "loop must have at least one iteration");
  REPRO_EXPECT(loop.long_path_prob >= 0.0 && loop.long_path_prob <= 1.0,
               "long path probability must be a probability");
  REPRO_EXPECT(loop.dependence_prob >= 0.0 && loop.dependence_prob <= 1.0,
               "dependence probability must be a probability");
  REPRO_EXPECT(loop.await_poll_cycles > 0, "await poll must consume cycles");
}

}  // namespace

void Program::validate() const {
  REPRO_EXPECT(!phases.empty(), "program must have at least one phase");
  for (const Phase& phase : phases) {
    validate_phase(phase);
  }
}

std::uint64_t Program::total_concurrent_iterations() const {
  std::uint64_t total = 0;
  for (const Phase& phase : phases) {
    if (const auto* loop = std::get_if<ConcurrentLoopPhase>(&phase)) {
      total += loop->trip_count;
    }
  }
  return total;
}

bool Program::has_concurrency() const {
  for (const Phase& phase : phases) {
    if (std::holds_alternative<ConcurrentLoopPhase>(phase)) {
      return true;
    }
  }
  return false;
}

ProgramBuilder::ProgramBuilder(std::string name) {
  prog_.name = std::move(name);
}

ProgramBuilder& ProgramBuilder::seed(std::uint64_t s) {
  prog_.seed = s;
  return *this;
}

ProgramBuilder& ProgramBuilder::data_base(Addr base) {
  prog_.data_base = base;
  return *this;
}

ProgramBuilder& ProgramBuilder::serial(KernelSpec body, std::uint64_t reps) {
  prog_.phases.push_back(SerialPhase{std::move(body), reps});
  return *this;
}

ProgramBuilder& ProgramBuilder::concurrent_loop(ConcurrentLoopPhase loop) {
  prog_.phases.push_back(std::move(loop));
  return *this;
}

Program ProgramBuilder::build() const {
  prog_.validate();
  return prog_;
}

}  // namespace repro::isa
