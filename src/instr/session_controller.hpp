// Session controller: the study's C-Shell measurement scripts.
//
// "The measurements were controlled by UNIX C-Shell script programs ...
// which controlled collection of both the hardware and software data"
// (§3.4), running on an IP to keep artifact off the cluster. For random
// workload sampling: "Five snapshots of the system were taken and grouped
// together in a five-minute interval" (§3.5); software counters were read
// when the hardware sample was stored.
//
// One SampleRecord therefore bundles the reduced hardware event counts of
// five 512-deep acquisitions taken at random offsets inside the interval,
// plus the interval's kernel-counter deltas.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "base/rng.hpp"
#include "base/types.hpp"
#include "instr/logic_analyzer.hpp"
#include "instr/reduction.hpp"
#include "instr/software_sampler.hpp"
#include "os/system.hpp"
#include "workload/generator.hpp"

namespace repro::instr {

struct SamplingConfig {
  /// Cycles per sample interval (the "five minutes").
  Cycle interval_cycles = 120000;
  /// Acquisitions grouped into one sample.
  std::uint32_t snapshots_per_sample = 5;
  std::size_t buffer_depth = 512;
  /// Event-horizon fast-forward: while no acquisition is armed, quiet
  /// stretches advance in one bulk jump clamped to the next snapshot
  /// start, so every probe latch happens on a naively ticked cycle.
  /// Bit-identical to cycle-by-cycle stepping; false forces the naive
  /// path (differential testing). See docs/parallel_execution.md.
  bool fast_forward = true;
};

struct SampleRecord {
  std::uint64_t index = 0;
  Cycle interval_cycles = 0;
  EventCounts hw;
  SoftwareSample sw;

  /// Capsule walk: a completed sample travels whole inside study
  /// checkpoints (core/checkpoint.hpp).
  void serialize(capsule::Io& io) {
    io.u64(index);
    io.u64(interval_cycles);
    hw.serialize(io);
    sw.serialize(io);
  }
};

/// Where the controller's cycles went: bulk-jumped, block-ticked through
/// the fused kernel, or naively lockstep-ticked. Pure bookkeeping —
/// identical simulation state any way.
struct FastForwardStats {
  Cycle skipped_cycles = 0;  ///< Advanced via system skip jumps.
  Cycle naive_cycles = 0;    ///< Advanced tick-by-tick (lockstep).
  Cycle block_cycles = 0;    ///< Advanced via Machine::tick_block.
  std::uint64_t jumps = 0;   ///< Number of bulk jumps taken.
};

class SessionController {
 public:
  SessionController(os::System& system, workload::WorkloadGenerator& workload,
                    const SamplingConfig& config, std::uint64_t seed);

  /// Advance the system `cycles` cycles with no acquisition armed
  /// (warmup, gaps between measurements). Fast-forwards quiet stretches
  /// when the config enables it; bit-identical to naive stepping.
  void advance(Cycle cycles);

  /// Run one sample interval and return its record.
  [[nodiscard]] SampleRecord take_sample();

  /// Run a whole session of `n_samples` intervals.
  [[nodiscard]] std::vector<SampleRecord> run_session(
      std::uint32_t n_samples);

  /// Triggered capture (high-concurrency / transition experiments): run
  /// until the analyzer completes one acquisition or `timeout` elapses.
  /// Returns nothing on timeout.
  [[nodiscard]] std::optional<std::vector<ProbeRecord>> capture_triggered(
      TriggerMode trigger, Cycle timeout);

  /// Cumulative fast-forward accounting for this controller.
  [[nodiscard]] const FastForwardStats& ff_stats() const {
    return ff_stats_;
  }

  /// Capsule walk over the controller's persistent state: the snapshot-
  /// offset RNG, the sample index, and the fast-forward accounting.
  /// starts_scratch_ is deliberately excluded — it is dead between
  /// take_sample calls (rebuilt from scratch each interval), and session
  /// checkpoints land at sample boundaries (docs/checkpointing.md).
  void serialize(capsule::Io& io) {
    rng_.serialize(io);
    io.u64(next_index_);
    io.u64(ff_stats_.skipped_cycles);
    io.u64(ff_stats_.naive_cycles);
    io.u64(ff_stats_.block_cycles);
    io.u64(ff_stats_.jumps);
  }

 private:
  void step();
  /// Quiet horizon across the workload generator and the system: cycles
  /// of guaranteed repetition the controller may skip in one jump.
  [[nodiscard]] Cycle quiet_horizon() const;
  /// Advance up to `budget` cycles without bulk-jumping and with no
  /// acquisition armed: a cycle on which the OS layer (scheduler or
  /// workload generator) is due to act runs as one lockstep step();
  /// everything else goes through the fused Machine::tick_block kernel,
  /// which stops at cluster control events so the scheduler's reaction
  /// cycle is lockstep-ticked exactly as naive stepping would. Returns
  /// cycles advanced (>= 1 when budget >= 1). Bit-identical to stepping.
  Cycle quiet_burst(Cycle budget);

  os::System& system_;
  workload::WorkloadGenerator& workload_;
  SamplingConfig config_;
  Rng rng_;
  std::uint64_t next_index_ = 0;
  FastForwardStats ff_stats_;
  /// Snapshot start offsets, reused across take_sample calls.
  std::vector<Cycle> starts_scratch_;
};

}  // namespace repro::instr
