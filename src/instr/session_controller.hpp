// Session controller: the study's C-Shell measurement scripts.
//
// "The measurements were controlled by UNIX C-Shell script programs ...
// which controlled collection of both the hardware and software data"
// (§3.4), running on an IP to keep artifact off the cluster. For random
// workload sampling: "Five snapshots of the system were taken and grouped
// together in a five-minute interval" (§3.5); software counters were read
// when the hardware sample was stored.
//
// One SampleRecord therefore bundles the reduced hardware event counts of
// five 512-deep acquisitions taken at random offsets inside the interval,
// plus the interval's kernel-counter deltas.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "base/rng.hpp"
#include "base/types.hpp"
#include "instr/das_controller.hpp"
#include "instr/logic_analyzer.hpp"
#include "instr/reduction.hpp"
#include "instr/software_sampler.hpp"
#include "os/system.hpp"
#include "workload/generator.hpp"

namespace repro::instr {

struct SamplingConfig {
  /// Cycles per sample interval (the "five minutes").
  Cycle interval_cycles = 120000;
  /// Acquisitions grouped into one sample.
  std::uint32_t snapshots_per_sample = 5;
  std::size_t buffer_depth = 512;
  /// Event-horizon fast-forward: while no acquisition is armed, quiet
  /// stretches advance in one bulk jump clamped to the next snapshot
  /// start, so every probe latch happens on a naively ticked cycle.
  /// Bit-identical to cycle-by-cycle stepping; false forces the naive
  /// path (differential testing). See docs/parallel_execution.md.
  bool fast_forward = true;
};

/// Canonical walk over every SamplingConfig field, for the result
/// cache's key derivation: two configs hash equal iff they match.
inline void serialize_config(capsule::Io& io, SamplingConfig& config) {
  io.u64(config.interval_cycles);
  io.u32(config.snapshots_per_sample);
  auto depth = static_cast<std::uint64_t>(config.buffer_depth);
  io.u64(depth);
  config.buffer_depth = static_cast<std::size_t>(depth);
  io.boolean(config.fast_forward);
}

struct SampleRecord {
  std::uint64_t index = 0;
  Cycle interval_cycles = 0;
  EventCounts hw;
  SoftwareSample sw;

  /// Capsule walk: a completed sample travels whole inside study
  /// checkpoints (core/checkpoint.hpp).
  void serialize(capsule::Io& io) {
    io.u64(index);
    io.u64(interval_cycles);
    hw.serialize(io);
    sw.serialize(io);
  }
};

/// Where the controller's cycles went: bulk-jumped, block-ticked through
/// the fused kernel, or naively lockstep-ticked. Pure bookkeeping —
/// identical simulation state any way.
struct FastForwardStats {
  Cycle skipped_cycles = 0;  ///< Advanced via system skip jumps.
  Cycle naive_cycles = 0;    ///< Advanced tick-by-tick (lockstep).
  Cycle block_cycles = 0;    ///< Advanced via Machine::tick_block.
  std::uint64_t jumps = 0;   ///< Number of bulk jumps taken.

  /// Capsule walk: the accounting travels inside cached StudyResults so
  /// a warm fx8bench report matches the cold one byte for byte.
  void serialize(capsule::Io& io) {
    io.u64(skipped_cycles);
    io.u64(naive_cycles);
    io.u64(block_cycles);
    io.u64(jumps);
  }
};

class SessionController {
 public:
  SessionController(os::System& system, workload::WorkloadGenerator& workload,
                    const SamplingConfig& config, std::uint64_t seed);

  /// Advance the system `cycles` cycles with no acquisition armed
  /// (warmup, gaps between measurements). Fast-forwards quiet stretches
  /// when the config enables it; bit-identical to naive stepping.
  void advance(Cycle cycles);

  /// Run one sample interval and return its record.
  [[nodiscard]] SampleRecord take_sample();

  // --- Resumable cursors ----------------------------------------------
  // advance() and take_sample() decomposed into one-decision steps, so a
  // batch driver (instr/session_batch.hpp) can interleave several rigs:
  // each rig runs its scalar decisions until it asks for a fused-kernel
  // block, the driver advances all requested blocks in lockstep through
  // one fx8::RigBatch, and the cursors resume. The decision code is the
  // same either way — the serial entry points are thin loops over the
  // cursors — so batched runs are bit-identical to serial ones.

  /// One scheduling decision of the measurement loop.
  struct Decision {
    enum class Kind : std::uint8_t {
      kDone,      ///< The cursor's work is complete.
      kAdvanced,  ///< The controller already advanced `cycles` itself
                  ///< (a lockstep step, a bulk skip, an acquisition tick).
      kBlock,     ///< Caller: advance the machine up to `cycles` through
                  ///< the fused tick kernel, then report the cycles
                  ///< actually advanced via note_block_cycles().
    };
    Kind kind = Kind::kDone;
    Cycle cycles = 0;
  };

  /// Warmup/gap cursor: begin_advance + the decision loop == advance().
  struct AdvanceCursor {
    Cycle remaining = 0;
  };
  [[nodiscard]] AdvanceCursor begin_advance(Cycle cycles) {
    return AdvanceCursor{cycles};
  }
  [[nodiscard]] Decision advance_step(AdvanceCursor& cursor);
  void note_block_cycles(AdvanceCursor& cursor, Cycle advanced);

  /// Sample-interval cursor. At most one may be live per controller (it
  /// borrows the controller's snapshot-offset scratch). Construction
  /// draws the interval's snapshot offsets and arms the instrument —
  /// exactly take_sample()'s preamble — so cursors must be created in
  /// the order the samples are to be taken.
  struct SampleCursor {
    SampleRecord record;
    DasController das;
    std::optional<SoftwareSampler> sw;
    std::uint32_t n_ces = 0;
    std::uint32_t n_buses = 0;
    std::size_t next_snapshot = 0;
    bool acquiring = false;
    Cycle c = 0;
  };
  void begin_sample(SampleCursor& cursor);
  [[nodiscard]] Decision sample_step(SampleCursor& cursor);
  void note_block_cycles(SampleCursor& cursor, Cycle advanced);
  /// Close out a finished interval (software-counter delta) and return
  /// the record. Requires sample_step to have returned kDone.
  [[nodiscard]] SampleRecord finish_sample(SampleCursor& cursor);

  /// The system this controller drives (the batch driver needs the
  /// machine to enlist in a RigBatch).
  [[nodiscard]] os::System& system() { return system_; }

  /// Run a whole session of `n_samples` intervals.
  [[nodiscard]] std::vector<SampleRecord> run_session(
      std::uint32_t n_samples);

  /// Triggered capture (high-concurrency / transition experiments): run
  /// until the analyzer completes one acquisition or `timeout` elapses.
  /// Returns nothing on timeout.
  [[nodiscard]] std::optional<std::vector<ProbeRecord>> capture_triggered(
      TriggerMode trigger, Cycle timeout);

  /// Cumulative fast-forward accounting for this controller.
  [[nodiscard]] const FastForwardStats& ff_stats() const {
    return ff_stats_;
  }

  /// Capsule walk over the controller's persistent state: the snapshot-
  /// offset RNG, the sample index, and the fast-forward accounting.
  /// starts_scratch_ is deliberately excluded — it is dead between
  /// take_sample calls (rebuilt from scratch each interval), and session
  /// checkpoints land at sample boundaries (docs/checkpointing.md).
  void serialize(capsule::Io& io) {
    rng_.serialize(io);
    io.u64(next_index_);
    io.u64(ff_stats_.skipped_cycles);
    io.u64(ff_stats_.naive_cycles);
    io.u64(ff_stats_.block_cycles);
    io.u64(ff_stats_.jumps);
  }

 private:
  void step();
  /// Quiet horizon across the workload generator and the system: cycles
  /// of guaranteed repetition the controller may skip in one jump.
  [[nodiscard]] Cycle quiet_horizon() const;
  /// The shared tail of both cursors' decision logic: advance up to
  /// `budget` cycles without bulk-jumping and with no acquisition armed.
  /// A cycle on which the OS layer (scheduler or workload generator) is
  /// due to act runs as one lockstep step() (kAdvanced); everything else
  /// becomes a kBlock request for the fused tick kernel, which stops at
  /// cluster control events so the scheduler's reaction cycle is
  /// lockstep-ticked exactly as naive stepping would.
  [[nodiscard]] Decision quiet_decision(Cycle budget);

  os::System& system_;
  workload::WorkloadGenerator& workload_;
  SamplingConfig config_;
  Rng rng_;
  std::uint64_t next_index_ = 0;
  FastForwardStats ff_stats_;
  /// Snapshot start offsets, reused across take_sample calls.
  std::vector<Cycle> starts_scratch_;
};

}  // namespace repro::instr
