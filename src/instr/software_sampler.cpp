#include "instr/software_sampler.hpp"

namespace repro::instr {

SoftwareSampler::SoftwareSampler(const os::KernelCounters& counters)
    : counters_(counters), last_(counters.snapshot()) {}

SoftwareSample SoftwareSampler::take_delta() {
  const auto now = counters_.snapshot();
  auto delta = [&](os::KernelCounter c) {
    const auto i = static_cast<std::size_t>(c);
    return now[i] - last_[i];
  };
  SoftwareSample sample;
  sample.ce_page_faults_user = delta(os::KernelCounter::kCePageFaultsUser);
  sample.ce_page_faults_system =
      delta(os::KernelCounter::kCePageFaultsSystem);
  sample.jobs_completed = delta(os::KernelCounter::kJobsCompleted);
  sample.context_switches = delta(os::KernelCounter::kContextSwitches);
  last_ = now;
  return sample;
}

}  // namespace repro::instr
