// DAS 9100-style logic analyzer.
//
// "This instrument acquires the state of up to 80 signals, and stores this
// data in a 512-deep buffer memory. The DAS is fully controllable through
// an i/o port" (§3.3). Three trigger modes cover the study's experiments:
//   * immediate      — random workload sampling (§3.5, first group),
//   * all-active     — trigger when all N processors are concurrent-active
//                      (§3.5, ten high-concurrency sessions),
//   * transition     — trigger when activity falls from all-active to
//                      fewer (§3.5, five transition sessions).
// Hardware monitoring is non-intrusive: the analyzer only reads the probe
// record the machine already exposes.
#pragma once

#include <cstdint>
#include <vector>

#include "base/ring_buffer.hpp"
#include "instr/signals.hpp"

namespace repro::instr {

enum class TriggerMode : std::uint8_t {
  kImmediate,
  kAllActive,
  kTransitionFromFull,
};

enum class AnalyzerState : std::uint8_t {
  kDisarmed,
  kArmed,      ///< Watching for the trigger condition.
  kCapturing,  ///< Trigger fired; filling the buffer.
  kComplete,   ///< Buffer full; ready to transfer.
};

struct AnalyzerConfig {
  std::size_t buffer_depth = 512;
  TriggerMode trigger = TriggerMode::kImmediate;
  /// Processor count that constitutes "all active" for the trigger modes.
  std::uint32_t full_width = kMaxCes;

  /// Capsule walk. Unlike most configs this one travels: it is staged
  /// state on the DAS command port, and the controller rebuilds an armed
  /// analyzer from the capsuled copy on load.
  void serialize(capsule::Io& io) {
    auto depth = static_cast<std::uint64_t>(buffer_depth);
    io.u64(depth);
    buffer_depth = static_cast<std::size_t>(depth);
    io.enum32(trigger);
    io.u32(full_width);
  }
};

class LogicAnalyzer {
 public:
  explicit LogicAnalyzer(const AnalyzerConfig& config);

  /// Arm for a new acquisition (clears any previous buffer).
  void arm();

  /// Present one probe record (call every sample clock while attached).
  /// Returns true when this record completed the acquisition.
  bool sample(const ProbeRecord& record);

  [[nodiscard]] AnalyzerState state() const { return state_; }
  [[nodiscard]] bool complete() const {
    return state_ == AnalyzerState::kComplete;
  }

  /// Transfer the acquisition buffer (requires complete()); the analyzer
  /// returns to disarmed.
  [[nodiscard]] std::vector<ProbeRecord> transfer();

  [[nodiscard]] const AnalyzerConfig& config() const { return config_; }

  /// Capsule walk over acquisition state. The owner must construct the
  /// analyzer from the capsuled config first (the ring buffer's capacity
  /// is structural); this walks only the mutable state.
  void serialize(capsule::Io& io) {
    io.enum32(state_);
    buffer_.serialize(io,
                      [](capsule::Io& inner, ProbeRecord& record) {
                        record.serialize(inner);
                      });
    io.u32(previous_active_);
    io.boolean(have_previous_);
  }

 private:
  [[nodiscard]] bool trigger_fires(const ProbeRecord& record);

  AnalyzerConfig config_;
  AnalyzerState state_ = AnalyzerState::kDisarmed;
  RingBuffer<ProbeRecord> buffer_;
  std::uint32_t previous_active_ = 0;
  bool have_previous_ = false;
};

}  // namespace repro::instr
