#include "instr/session_controller.hpp"

#include <algorithm>
#include <utility>

#include "base/expect.hpp"
#include "instr/das_controller.hpp"

namespace repro::instr {

namespace {

/// Issue an instrument command that must be accepted.
void must_ack(DasController& das, const std::string& line) {
  const DasController::Response response = das.command(line);
  REPRO_ENSURE(response.ok, "DAS rejected: " + line + " -> " + response.text);
}

/// Shortest horizon worth taking as a bulk jump. skip() walks every
/// component once, which costs a handful of fused ticks; the horizon
/// arithmetic itself is already paid by the time the choice is made, so
/// the bar is low — only 1-3 cycle stretches tick through the kernel.
constexpr Cycle kMinProfitableSkip = 4;

/// Cap on one fused-kernel burst. tick_block stops on its own at cluster
/// control events; this cap bounds how stale the controller's bulk-jump
/// check can get on busy stretches — a skip opportunity that opens up
/// mid-block is noticed at most kBlockChunk - 1 cycles late, each of
/// which was only a cheap fused tick.
constexpr Cycle kBlockChunk = 256;

}  // namespace

SessionController::SessionController(os::System& system,
                                     workload::WorkloadGenerator& workload,
                                     const SamplingConfig& config,
                                     std::uint64_t seed)
    : system_(system), workload_(workload), config_(config), rng_(seed) {
  REPRO_EXPECT(config.interval_cycles >=
                   config.snapshots_per_sample * config.buffer_depth,
               "interval too short for the requested acquisitions");
  REPRO_EXPECT(config.snapshots_per_sample > 0, "need at least one snapshot");
  starts_scratch_.reserve(config.snapshots_per_sample);
}

void SessionController::step() {
  workload_.tick(system_);
  system_.tick();
}

Cycle SessionController::quiet_horizon() const {
  const Cycle workload = workload_.quiet_horizon(system_);
  if (workload == 0) {
    return 0;
  }
  return std::min(workload, system_.quiet_horizon());
}

SessionController::Decision SessionController::quiet_decision(Cycle budget) {
  const Cycle workload = workload_.quiet_horizon(system_);
  if (workload == 0 || system_.scheduler().quiet_horizon() == 0) {
    // An OS-layer action is due next tick (burst submission, gap draw,
    // job reap/dispatch): run it in lockstep so the scheduler and the
    // workload generator see exactly the states they would naively.
    step();
    ++ff_stats_.naive_cycles;
    return {Decision::Kind::kAdvanced, 1};
  }
  // Neither can act for `workload` cycles (the scheduler's horizon is
  // unbounded until the next cluster control event, where the fused
  // kernel stops on its own), so their per-cycle ticks are provably
  // no-ops: the machine alone advances through the kernel.
  return {Decision::Kind::kBlock,
          std::min(std::min(workload, budget), kBlockChunk)};
}

SessionController::Decision SessionController::advance_step(
    AdvanceCursor& cursor) {
  if (cursor.remaining == 0) {
    return {Decision::Kind::kDone, 0};
  }
  if (!config_.fast_forward) {
    step();
    ++ff_stats_.naive_cycles;
    --cursor.remaining;
    return {Decision::Kind::kAdvanced, 1};
  }
  const Cycle horizon = std::min(quiet_horizon(), cursor.remaining);
  if (horizon >= kMinProfitableSkip) {
    system_.skip(horizon);
    ff_stats_.skipped_cycles += horizon;
    ++ff_stats_.jumps;
    cursor.remaining -= horizon;
    return {Decision::Kind::kAdvanced, horizon};
  }
  // Short horizon: too busy to bulk-jump. Advance through the fused
  // kernel (or one lockstep step when the OS layer is due to act).
  const Decision decision = quiet_decision(cursor.remaining);
  if (decision.kind == Decision::Kind::kAdvanced) {
    cursor.remaining -= decision.cycles;
  }
  return decision;
}

void SessionController::note_block_cycles(AdvanceCursor& cursor,
                                          Cycle advanced) {
  ff_stats_.block_cycles += advanced;
  cursor.remaining -= advanced;
}

void SessionController::advance(Cycle cycles) {
  AdvanceCursor cursor = begin_advance(cycles);
  for (;;) {
    const Decision decision = advance_step(cursor);
    if (decision.kind == Decision::Kind::kDone) {
      return;
    }
    if (decision.kind == Decision::Kind::kBlock) {
      note_block_cycles(cursor,
                        system_.machine().tick_block(decision.cycles));
    }
  }
}

void SessionController::begin_sample(SampleCursor& cursor) {
  cursor.n_ces = system_.machine().total_ces();
  cursor.n_buses = system_.machine().mem_bus_count();

  // Choose snapshot start offsets within the interval, far enough apart
  // that acquisitions never overlap. The offsets live in a member scratch
  // buffer reused across samples (one live cursor per controller), so
  // the per-sample path does not allocate.
  const Cycle slot =
      config_.interval_cycles / config_.snapshots_per_sample;
  std::vector<Cycle>& starts = starts_scratch_;
  starts.clear();
  for (std::uint32_t s = 0; s < config_.snapshots_per_sample; ++s) {
    const Cycle jitter_room = slot - config_.buffer_depth;
    const Cycle jitter = jitter_room == 0 ? 0 : rng_.uniform(jitter_room);
    starts.push_back(static_cast<Cycle>(s) * slot + jitter);
  }

  cursor.sw.emplace(system_.counters());

  // Configure the instrument over its command port (§3.3/§3.4).
  must_ack(cursor.das, "TRIGGER IMMEDIATE");
  must_ack(cursor.das, "DEPTH " + std::to_string(config_.buffer_depth));

  cursor.record.index = next_index_++;
  cursor.record.interval_cycles = config_.interval_cycles;
}

SessionController::Decision SessionController::sample_step(
    SampleCursor& cursor) {
  if (cursor.c >= config_.interval_cycles) {
    return {Decision::Kind::kDone, 0};
  }
  const std::vector<Cycle>& starts = starts_scratch_;
  if (cursor.next_snapshot < starts.size() &&
      cursor.c == starts[cursor.next_snapshot]) {
    must_ack(cursor.das, "ARM");
    cursor.acquiring = true;
  }
  if (cursor.acquiring) {
    // The probe latches this CE-bus cycle: acquisitions always run as
    // real single ticks.
    step();
    ++cursor.c;
    ++ff_stats_.naive_cycles;
    if (cursor.das.on_sample_clock(latch(system_.machine()))) {
      must_ack(cursor.das, "XFER");
      cursor.record.hw.merge(
          reduce(cursor.das.take_transfer(), cursor.n_ces, cursor.n_buses));
      cursor.acquiring = false;
      ++cursor.next_snapshot;
    }
    return {Decision::Kind::kAdvanced, 1};
  }
  if (!config_.fast_forward) {
    step();
    ++cursor.c;
    ++ff_stats_.naive_cycles;
    return {Decision::Kind::kAdvanced, 1};
  }
  // Between acquisitions the probe is not latched, so quiet stretches
  // can advance in one jump — clamped to the next snapshot start so
  // the ARM lands on exactly the naive cycle. Busy stretches advance
  // through the fused kernel under the same clamp.
  const Cycle bound = cursor.next_snapshot < starts.size()
                          ? starts[cursor.next_snapshot]
                          : config_.interval_cycles;
  const Cycle horizon = std::min(quiet_horizon(), bound - cursor.c);
  if (horizon >= kMinProfitableSkip) {
    system_.skip(horizon);
    ff_stats_.skipped_cycles += horizon;
    ++ff_stats_.jumps;
    cursor.c += horizon;
    return {Decision::Kind::kAdvanced, horizon};
  }
  const Decision decision = quiet_decision(bound - cursor.c);
  if (decision.kind == Decision::Kind::kAdvanced) {
    cursor.c += decision.cycles;
  }
  return decision;
}

void SessionController::note_block_cycles(SampleCursor& cursor,
                                          Cycle advanced) {
  ff_stats_.block_cycles += advanced;
  cursor.c += advanced;
}

SampleRecord SessionController::finish_sample(SampleCursor& cursor) {
  REPRO_EXPECT(cursor.c >= config_.interval_cycles,
               "finish_sample before the interval completed");
  // sw counters are read "at the time that the hardware sample was
  // stored" — here, at interval close.
  cursor.record.sw = cursor.sw->take_delta();
  return std::move(cursor.record);
}

SampleRecord SessionController::take_sample() {
  SampleCursor cursor;
  begin_sample(cursor);
  for (;;) {
    const Decision decision = sample_step(cursor);
    if (decision.kind == Decision::Kind::kDone) {
      break;
    }
    if (decision.kind == Decision::Kind::kBlock) {
      note_block_cycles(cursor,
                        system_.machine().tick_block(decision.cycles));
    }
  }
  return finish_sample(cursor);
}

std::vector<SampleRecord> SessionController::run_session(
    std::uint32_t n_samples) {
  std::vector<SampleRecord> samples;
  samples.reserve(n_samples);
  for (std::uint32_t s = 0; s < n_samples; ++s) {
    samples.push_back(take_sample());
  }
  return samples;
}

std::optional<std::vector<ProbeRecord>> SessionController::capture_triggered(
    TriggerMode trigger, Cycle timeout) {
  DasController das;
  switch (trigger) {
    case TriggerMode::kImmediate:
      must_ack(das, "TRIGGER IMMEDIATE");
      break;
    case TriggerMode::kAllActive:
      must_ack(das, "TRIGGER ALLACTIVE");
      break;
    case TriggerMode::kTransitionFromFull:
      must_ack(das, "TRIGGER TRANSITION");
      break;
  }
  must_ack(das, "DEPTH " + std::to_string(config_.buffer_depth));
  must_ack(das, "WIDTH " +
                    std::to_string(system_.machine().total_ces()));
  must_ack(das, "ARM");
  for (Cycle c = 0; c < timeout; ++c) {
    step();
    if (das.on_sample_clock(latch(system_.machine()))) {
      must_ack(das, "XFER");
      return das.take_transfer();
    }
  }
  return std::nullopt;
}

}  // namespace repro::instr
