#include "instr/session_controller.hpp"

#include <algorithm>
#include <utility>

#include "base/expect.hpp"
#include "instr/das_controller.hpp"

namespace repro::instr {

namespace {

/// Issue an instrument command that must be accepted.
void must_ack(DasController& das, const std::string& line) {
  const DasController::Response response = das.command(line);
  REPRO_ENSURE(response.ok, "DAS rejected: " + line + " -> " + response.text);
}

/// Shortest horizon worth taking as a bulk jump. skip() walks every
/// component once, which costs a handful of fused ticks; the horizon
/// arithmetic itself is already paid by the time the choice is made, so
/// the bar is low — only 1-3 cycle stretches tick through the kernel.
constexpr Cycle kMinProfitableSkip = 4;

/// Cap on one fused-kernel burst. tick_block stops on its own at cluster
/// control events; this cap bounds how stale the controller's bulk-jump
/// check can get on busy stretches — a skip opportunity that opens up
/// mid-block is noticed at most kBlockChunk - 1 cycles late, each of
/// which was only a cheap fused tick.
constexpr Cycle kBlockChunk = 256;

}  // namespace

SessionController::SessionController(os::System& system,
                                     workload::WorkloadGenerator& workload,
                                     const SamplingConfig& config,
                                     std::uint64_t seed)
    : system_(system), workload_(workload), config_(config), rng_(seed) {
  REPRO_EXPECT(config.interval_cycles >=
                   config.snapshots_per_sample * config.buffer_depth,
               "interval too short for the requested acquisitions");
  REPRO_EXPECT(config.snapshots_per_sample > 0, "need at least one snapshot");
  starts_scratch_.reserve(config.snapshots_per_sample);
}

void SessionController::step() {
  workload_.tick(system_);
  system_.tick();
}

Cycle SessionController::quiet_horizon() const {
  const Cycle workload = workload_.quiet_horizon(system_);
  if (workload == 0) {
    return 0;
  }
  return std::min(workload, system_.quiet_horizon());
}

Cycle SessionController::quiet_burst(Cycle budget) {
  const Cycle workload = workload_.quiet_horizon(system_);
  if (workload == 0 || system_.scheduler().quiet_horizon() == 0) {
    // An OS-layer action is due next tick (burst submission, gap draw,
    // job reap/dispatch): run it in lockstep so the scheduler and the
    // workload generator see exactly the states they would naively.
    step();
    ++ff_stats_.naive_cycles;
    return 1;
  }
  // Neither can act for `workload` cycles (the scheduler's horizon is
  // unbounded until the next cluster control event, where tick_block
  // stops on its own), so their per-cycle ticks are provably no-ops:
  // advance the machine alone through the fused kernel.
  const Cycle block = system_.machine().tick_block(
      std::min(std::min(workload, budget), kBlockChunk));
  ff_stats_.block_cycles += block;
  return block;
}

void SessionController::advance(Cycle cycles) {
  if (!config_.fast_forward) {
    for (Cycle c = 0; c < cycles; ++c) {
      step();
    }
    ff_stats_.naive_cycles += cycles;
    return;
  }
  Cycle c = 0;
  while (c < cycles) {
    const Cycle horizon = std::min(quiet_horizon(), cycles - c);
    if (horizon >= kMinProfitableSkip) {
      system_.skip(horizon);
      c += horizon;
      ff_stats_.skipped_cycles += horizon;
      ++ff_stats_.jumps;
      continue;
    }
    // Short horizon: too busy to bulk-jump. Advance through the fused
    // kernel (or one lockstep step when the OS layer is due to act).
    c += quiet_burst(cycles - c);
  }
}

SampleRecord SessionController::take_sample() {
  const std::uint32_t n_ces = system_.machine().cluster().width();
  const std::uint32_t n_buses = system_.machine().config().membus.bus_count;

  // Choose snapshot start offsets within the interval, far enough apart
  // that acquisitions never overlap. The offsets live in a member scratch
  // buffer reused across samples, so the per-sample path does not
  // allocate.
  const Cycle slot =
      config_.interval_cycles / config_.snapshots_per_sample;
  std::vector<Cycle>& starts = starts_scratch_;
  starts.clear();
  for (std::uint32_t s = 0; s < config_.snapshots_per_sample; ++s) {
    const Cycle jitter_room = slot - config_.buffer_depth;
    const Cycle jitter = jitter_room == 0 ? 0 : rng_.uniform(jitter_room);
    starts.push_back(static_cast<Cycle>(s) * slot + jitter);
  }

  SoftwareSampler sw_sampler(system_.counters());

  // Configure the instrument over its command port (§3.3/§3.4).
  DasController das;
  must_ack(das, "TRIGGER IMMEDIATE");
  must_ack(das, "DEPTH " + std::to_string(config_.buffer_depth));

  SampleRecord record;
  record.index = next_index_++;
  record.interval_cycles = config_.interval_cycles;

  std::size_t next_snapshot = 0;
  bool acquiring = false;
  for (Cycle c = 0; c < config_.interval_cycles;) {
    if (next_snapshot < starts.size() && c == starts[next_snapshot]) {
      must_ack(das, "ARM");
      acquiring = true;
    }
    if (acquiring) {
      // The probe latches this CE-bus cycle: acquisitions always run as
      // real single ticks.
      step();
      ++c;
      ++ff_stats_.naive_cycles;
      if (das.on_sample_clock(latch(system_.machine()))) {
        must_ack(das, "XFER");
        record.hw.merge(reduce(das.take_transfer(), n_ces, n_buses));
        acquiring = false;
        ++next_snapshot;
      }
      continue;
    }
    if (!config_.fast_forward) {
      step();
      ++c;
      ++ff_stats_.naive_cycles;
      continue;
    }
    // Between acquisitions the probe is not latched, so quiet stretches
    // can advance in one jump — clamped to the next snapshot start so
    // the ARM lands on exactly the naive cycle. Busy stretches advance
    // through the fused kernel under the same clamp.
    const Cycle bound = next_snapshot < starts.size()
                            ? starts[next_snapshot]
                            : config_.interval_cycles;
    const Cycle horizon = std::min(quiet_horizon(), bound - c);
    if (horizon >= kMinProfitableSkip) {
      system_.skip(horizon);
      c += horizon;
      ff_stats_.skipped_cycles += horizon;
      ++ff_stats_.jumps;
      continue;
    }
    c += quiet_burst(bound - c);
  }
  // sw counters are read "at the time that the hardware sample was
  // stored" — here, at interval close.
  record.sw = sw_sampler.take_delta();
  return record;
}

std::vector<SampleRecord> SessionController::run_session(
    std::uint32_t n_samples) {
  std::vector<SampleRecord> samples;
  samples.reserve(n_samples);
  for (std::uint32_t s = 0; s < n_samples; ++s) {
    samples.push_back(take_sample());
  }
  return samples;
}

std::optional<std::vector<ProbeRecord>> SessionController::capture_triggered(
    TriggerMode trigger, Cycle timeout) {
  DasController das;
  switch (trigger) {
    case TriggerMode::kImmediate:
      must_ack(das, "TRIGGER IMMEDIATE");
      break;
    case TriggerMode::kAllActive:
      must_ack(das, "TRIGGER ALLACTIVE");
      break;
    case TriggerMode::kTransitionFromFull:
      must_ack(das, "TRIGGER TRANSITION");
      break;
  }
  must_ack(das, "DEPTH " + std::to_string(config_.buffer_depth));
  must_ack(das, "WIDTH " +
                    std::to_string(system_.machine().cluster().width()));
  must_ack(das, "ARM");
  for (Cycle c = 0; c < timeout; ++c) {
    step();
    if (das.on_sample_clock(latch(system_.machine()))) {
      must_ack(das, "XFER");
      return das.take_transfer();
    }
  }
  return std::nullopt;
}

}  // namespace repro::instr
