// Batched session driver: several measurement rigs advanced in lockstep.
//
// The serial path runs one rig at a time: warmup, then sample intervals,
// with every fused-kernel burst going through that rig's own
// Machine::tick_block. This driver runs B rigs together. Each rig's
// SessionController is decomposed into its resumable cursors
// (session_controller.hpp): the driver lets every rig make scalar
// decisions — lockstep steps, bulk skips, probe arming/latching — until
// the rig either finishes or requests a fused-kernel block, collects all
// outstanding block requests into one fx8::RigBatch, advances them in
// lockstep through the wide lane kernel, and resumes the cursors with
// the cycles each lane actually covered. Rigs that hit control events
// mid-block peel off inside the batch and simply request their next
// block a round early — the decision stream per rig is untouched.
//
// Because the cursors execute the same decision code the serial entry
// points loop over, and RigBatch::run() is bit-identical per machine to
// tick_block, every rig's samples, RNG stream, and fast-forward stats
// are bit-identical to driving its controller serially.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "base/types.hpp"
#include "instr/session_controller.hpp"

namespace repro::instr {

/// One rig's share of a batched run.
struct BatchRig {
  SessionController* controller = nullptr;
  Cycle warmup_cycles = 0;
  std::uint32_t n_samples = 0;
};

/// Drive every rig through its warmup and sample count, batching the
/// fused-kernel bursts across rigs. Returns each rig's samples, in rig
/// order — element r is exactly what `controller->advance(warmup);
/// controller->run_session(n_samples)` would have produced for rig r.
[[nodiscard]] std::vector<std::vector<SampleRecord>> run_session_batch(
    std::span<const BatchRig> rigs);

}  // namespace repro::instr
