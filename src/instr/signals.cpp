#include "instr/signals.hpp"

#include <bit>

namespace repro::instr {

std::uint32_t ProbeRecord::active_count() const {
  return static_cast<std::uint32_t>(std::popcount(active_mask));
}

ProbeRecord latch(const fx8::Machine& machine) {
  ProbeRecord record;
  record.cycle = machine.now();
  const std::uint32_t n_ces = machine.total_ces();
  for (CeId ce = 0; ce < n_ces && ce < kMaxTopologyCes; ++ce) {
    record.ce_ops[ce] = machine.ce_bus_op(ce);
  }
  const std::uint32_t n_buses = machine.mem_bus_count();
  for (std::uint32_t bus = 0; bus < n_buses && bus < mem::kMaxMemBuses;
       ++bus) {
    record.mem_ops[bus] = machine.mem_bus_op(bus);
  }
  record.active_mask = machine.active_mask();
  return record;
}

}  // namespace repro::instr
