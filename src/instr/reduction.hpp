// Event-count reduction: Table 1 of the paper.
//
// "The programs ... reduce the acquired data to appropriate event counts":
//   num_j    — number of records with j processors active,
//   proc_j   — number of records with processor j active,
//   ceop_j   — number of records with CE bus opcode = j,
//   membop_j — number of records with memory bus opcode = j.
// The derived system measures of §5 come straight from these counts:
// Missrate (miss cycles / total CE bus cycles), CE Bus Busy (non-idle CE
// bus cycles / total CE bus cycles).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "base/types.hpp"
#include "instr/signals.hpp"
#include "mem/bus_ops.hpp"

namespace repro::instr {

struct EventCounts {
  /// num_j: records with exactly j processors active, j = 0..width.
  /// Sized for the widest topology; rows past `width` stay zero and are
  /// neither rendered nor reported.
  std::array<std::uint64_t, kMaxTopologyCes + 1> num{};
  /// proc_j: records in which processor j was active.
  std::array<std::uint64_t, kMaxTopologyCes> proc{};
  /// ceop_j: CE-bus opcode occurrences, summed over all CE buses.
  std::array<std::uint64_t, mem::kNumCeBusOps> ceop{};
  /// membop_j: memory-bus opcode occurrences, summed over all buses.
  std::array<std::uint64_t, mem::kNumMemBusOps> membop{};

  std::uint64_t records = 0;
  /// CE bus cycles observed = records * number of CE buses probed.
  std::uint64_t ce_bus_cycles = 0;
  /// Widest machine these counts were reduced from: bounds the num/proc
  /// rows render() emits. Never shrinks below the FX/8's 8 lanes, so
  /// every width-<=8 rendering is unchanged from the pre-topology text.
  std::uint32_t width = kMaxCes;

  void accumulate(const ProbeRecord& record, std::uint32_t n_ces = kMaxCes,
                  std::uint32_t n_buses = 2);
  void merge(const EventCounts& other);

  /// Missrate: fraction of CE bus cycles that are cache misses (§5).
  [[nodiscard]] double miss_rate() const;
  /// CE Bus Busy: fraction of CE bus cycles that are not idle, averaged
  /// over all buses (§5).
  [[nodiscard]] double bus_busy() const;
  /// Fraction of memory-bus cycles that are not idle.
  [[nodiscard]] double mem_bus_busy() const;

  /// Table-1-style rendering.
  [[nodiscard]] std::string render() const;

  /// Capsule walk: every reduced count.
  void serialize(capsule::Io& io) {
    for (std::uint64_t& n : num) {
      io.u64(n);
    }
    for (std::uint64_t& n : proc) {
      io.u64(n);
    }
    for (std::uint64_t& n : ceop) {
      io.u64(n);
    }
    for (std::uint64_t& n : membop) {
      io.u64(n);
    }
    io.u64(records);
    io.u64(ce_bus_cycles);
    io.u32(width);
  }
};

/// Reduce a transferred acquisition buffer.
[[nodiscard]] EventCounts reduce(std::span<const ProbeRecord> records,
                                 std::uint32_t n_ces = kMaxCes,
                                 std::uint32_t n_buses = 2);

}  // namespace repro::instr
