// Probe signals: what the logic analyzer latches each sample clock.
//
// "Probes from the DAS were connected to the FX/8 at three different
// logical points": each CE's cache-bus opcode, the shared memory bus
// opcode, and the Concurrency Control Bus activity state (§3.3). One
// ProbeRecord is one latched sample of all channels.
#pragma once

#include <array>
#include <cstdint>

#include "base/capsule.hpp"
#include "base/types.hpp"
#include "fx8/machine.hpp"
#include "mem/bus_ops.hpp"
#include "mem/hot.hpp"

namespace repro::instr {

/// The DAS 9100 used in the study acquires up to 80 signals (§3.3).
inline constexpr std::uint32_t kAnalyzerChannels = 80;

/// One latched sample of every probe channel. Sized for the widest
/// topology (kMaxTopologyCes CEs, kMaxMemBuses memory buses); a run at
/// the machine's actual width only fills — and only renders/reduces —
/// the first total_ces() / bus_count lanes.
struct ProbeRecord {
  Cycle cycle = 0;
  std::array<mem::CeBusOp, kMaxTopologyCes> ce_ops{};
  std::array<mem::MemBusOp, mem::kMaxMemBuses> mem_ops{};
  /// CCB probe: bit j set when global CE j is active.
  LaneMask active_mask = 0;

  [[nodiscard]] std::uint32_t active_count() const;
  [[nodiscard]] bool ce_active(CeId ce) const {
    return (active_mask >> ce) & 1u;
  }

  /// Capsule walk: every latched channel.
  void serialize(capsule::Io& io) {
    io.u64(cycle);
    for (mem::CeBusOp& op : ce_ops) {
      io.enum32(op);
    }
    for (mem::MemBusOp& op : mem_ops) {
      io.enum32(op);
    }
    io.u64(active_mask);
  }
};

/// Latch the probe channels off the machine for the current cycle.
[[nodiscard]] ProbeRecord latch(const fx8::Machine& machine);

/// Channels consumed by the probe set (3 bits per CE bus opcode, 3 per
/// memory bus, 1 per CCB activity line) — must fit the instrument. The
/// FX/8 probe set fits one DAS 9100; wider topologies model ganged
/// analyzers, one 80-channel mainframe per cluster (docs/topology.md),
/// so the per-cluster channel budget is the bound that must hold.
[[nodiscard]] constexpr std::uint32_t channels_used(std::uint32_t n_ces,
                                                    std::uint32_t n_buses) {
  return n_ces * 3 + n_buses * 3 + n_ces;
}
static_assert(channels_used(kMaxCes, 2) <= kAnalyzerChannels,
              "probe set exceeds the DAS 9100 channel count");

}  // namespace repro::instr
