#include "instr/reduction.hpp"

#include <sstream>

#include "base/expect.hpp"
#include "base/text.hpp"

namespace repro::instr {

void EventCounts::accumulate(const ProbeRecord& record, std::uint32_t n_ces,
                             std::uint32_t n_buses) {
  REPRO_EXPECT(n_ces >= 1 && n_ces <= kMaxTopologyCes,
               "CE count out of range");
  REPRO_EXPECT(n_buses >= 1 && n_buses <= mem::kMaxMemBuses,
               "bus count out of range");
  if (n_ces > width) {
    width = n_ces;
  }
  ++records;
  ce_bus_cycles += n_ces;
  const std::uint32_t active = record.active_count();
  REPRO_ENSURE(active <= n_ces, "more active processors than exist");
  ++num[active];
  for (CeId ce = 0; ce < n_ces; ++ce) {
    if (record.ce_active(ce)) {
      ++proc[ce];
    }
    ++ceop[static_cast<std::size_t>(record.ce_ops[ce])];
  }
  for (std::uint32_t bus = 0; bus < n_buses; ++bus) {
    ++membop[static_cast<std::size_t>(record.mem_ops[bus])];
  }
}

void EventCounts::merge(const EventCounts& other) {
  if (other.width > width) {
    width = other.width;
  }
  for (std::size_t j = 0; j < num.size(); ++j) {
    num[j] += other.num[j];
  }
  for (std::size_t j = 0; j < proc.size(); ++j) {
    proc[j] += other.proc[j];
  }
  for (std::size_t j = 0; j < ceop.size(); ++j) {
    ceop[j] += other.ceop[j];
  }
  for (std::size_t j = 0; j < membop.size(); ++j) {
    membop[j] += other.membop[j];
  }
  records += other.records;
  ce_bus_cycles += other.ce_bus_cycles;
}

double EventCounts::miss_rate() const {
  if (ce_bus_cycles == 0) {
    return 0.0;
  }
  const std::uint64_t misses =
      ceop[static_cast<std::size_t>(mem::CeBusOp::kReadMiss)] +
      ceop[static_cast<std::size_t>(mem::CeBusOp::kWriteMiss)];
  return static_cast<double>(misses) / static_cast<double>(ce_bus_cycles);
}

double EventCounts::bus_busy() const {
  if (ce_bus_cycles == 0) {
    return 0.0;
  }
  const std::uint64_t idle =
      ceop[static_cast<std::size_t>(mem::CeBusOp::kIdle)];
  return static_cast<double>(ce_bus_cycles - idle) /
         static_cast<double>(ce_bus_cycles);
}

double EventCounts::mem_bus_busy() const {
  std::uint64_t total = 0;
  for (const std::uint64_t count : membop) {
    total += count;
  }
  if (total == 0) {
    return 0.0;
  }
  const std::uint64_t idle =
      membop[static_cast<std::size_t>(mem::MemBusOp::kIdle)];
  return static_cast<double>(total - idle) / static_cast<double>(total);
}

std::string EventCounts::render() const {
  std::ostringstream os;
  os << "HARDWARE MEASUREMENT EVENT COUNTS (" << records << " records)\n";
  os << "  num_j  (records with j processors active):\n";
  for (std::size_t j = 0; j <= width; ++j) {
    os << "    j=" << j << "  " << with_commas(num[j]) << '\n';
  }
  os << "  proc_j (records with processor j active):\n";
  for (std::size_t j = 0; j < width; ++j) {
    os << "    CE" << j << "  " << with_commas(proc[j]) << '\n';
  }
  os << "  ceop_j (CE bus opcode cycles):\n";
  for (std::size_t j = 0; j < ceop.size(); ++j) {
    os << "    " << pad_right(std::string(name(static_cast<mem::CeBusOp>(j))),
                              11)
       << with_commas(ceop[j]) << '\n';
  }
  os << "  membop_j (memory bus opcode cycles):\n";
  for (std::size_t j = 0; j < membop.size(); ++j) {
    os << "    "
       << pad_right(std::string(name(static_cast<mem::MemBusOp>(j))), 11)
       << with_commas(membop[j]) << '\n';
  }
  return os.str();
}

EventCounts reduce(std::span<const ProbeRecord> records, std::uint32_t n_ces,
                   std::uint32_t n_buses) {
  EventCounts counts;
  for (const ProbeRecord& record : records) {
    counts.accumulate(record, n_ces, n_buses);
  }
  return counts;
}

}  // namespace repro::instr
