#include "instr/logic_analyzer.hpp"

#include "base/expect.hpp"

namespace repro::instr {

LogicAnalyzer::LogicAnalyzer(const AnalyzerConfig& config)
    : config_(config), buffer_(config.buffer_depth) {
  REPRO_EXPECT(config.buffer_depth > 0, "buffer depth must be positive");
  REPRO_EXPECT(config.full_width >= 1 && config.full_width <= kMaxTopologyCes,
               "full width must be 1..64");
}

void LogicAnalyzer::arm() {
  buffer_.clear();
  have_previous_ = false;
  previous_active_ = 0;
  state_ = config_.trigger == TriggerMode::kImmediate
               ? AnalyzerState::kCapturing
               : AnalyzerState::kArmed;
}

bool LogicAnalyzer::trigger_fires(const ProbeRecord& record) {
  const std::uint32_t active = record.active_count();
  switch (config_.trigger) {
    case TriggerMode::kImmediate:
      return true;
    case TriggerMode::kAllActive:
      return active == config_.full_width;
    case TriggerMode::kTransitionFromFull: {
      const bool fires = have_previous_ &&
                         previous_active_ == config_.full_width &&
                         active < config_.full_width;
      return fires;
    }
  }
  return false;
}

bool LogicAnalyzer::sample(const ProbeRecord& record) {
  switch (state_) {
    case AnalyzerState::kDisarmed:
    case AnalyzerState::kComplete:
      return false;
    case AnalyzerState::kArmed: {
      const bool fires = trigger_fires(record);
      previous_active_ = record.active_count();
      have_previous_ = true;
      if (!fires) {
        return false;
      }
      state_ = AnalyzerState::kCapturing;
      [[fallthrough]];
    }
    case AnalyzerState::kCapturing:
      buffer_.push(record);
      if (buffer_.full()) {
        state_ = AnalyzerState::kComplete;
        return true;
      }
      return false;
  }
  return false;
}

std::vector<ProbeRecord> LogicAnalyzer::transfer() {
  REPRO_EXPECT(complete(), "transfer before the acquisition completed");
  std::vector<ProbeRecord> records = buffer_.snapshot();
  buffer_.clear();
  state_ = AnalyzerState::kDisarmed;
  return records;
}

}  // namespace repro::instr
