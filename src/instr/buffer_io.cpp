#include "instr/buffer_io.hpp"

#include <sstream>

#include "base/expect.hpp"

namespace repro::instr {

namespace {
constexpr char kHeader[] = "# das-buffer v1: cycle ce0..ce7 mem0 mem1 mask";
}

std::string buffer_to_text(std::span<const ProbeRecord> records) {
  std::ostringstream os;
  os << kHeader << '\n';
  for (const ProbeRecord& record : records) {
    os << record.cycle;
    for (const mem::CeBusOp op : record.ce_ops) {
      os << ' ' << static_cast<unsigned>(op);
    }
    for (const mem::MemBusOp op : record.mem_ops) {
      os << ' ' << static_cast<unsigned>(op);
    }
    os << ' ' << record.active_mask << '\n';
  }
  return os.str();
}

std::vector<ProbeRecord> parse_buffer(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  REPRO_EXPECT(std::getline(is, line) && line == kHeader,
               "missing or unknown das-buffer header");
  std::vector<ProbeRecord> records;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    ProbeRecord record;
    unsigned value = 0;
    REPRO_EXPECT(static_cast<bool>(fields >> record.cycle),
                 "malformed cycle in: " + line);
    for (mem::CeBusOp& op : record.ce_ops) {
      REPRO_EXPECT(static_cast<bool>(fields >> value) &&
                       value < mem::kNumCeBusOps,
                   "malformed CE opcode in: " + line);
      op = static_cast<mem::CeBusOp>(value);
    }
    for (mem::MemBusOp& op : record.mem_ops) {
      REPRO_EXPECT(static_cast<bool>(fields >> value) &&
                       value < mem::kNumMemBusOps,
                   "malformed memory opcode in: " + line);
      op = static_cast<mem::MemBusOp>(value);
    }
    REPRO_EXPECT(static_cast<bool>(fields >> record.active_mask) &&
                     record.active_mask <= 0xFF,
                 "malformed activity mask in: " + line);
    std::string trailing;
    REPRO_EXPECT(!(fields >> trailing), "trailing fields in: " + line);
    records.push_back(record);
  }
  return records;
}

}  // namespace repro::instr
