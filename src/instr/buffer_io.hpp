// Acquisition-buffer serialization.
//
// The control scripts could "transfer acquired buffers to files resident
// on the Alliant system" (§3.3); reduction then happened separately. The
// text format here plays that file role: one record per line, columns
// for the cycle stamp, the eight CE bus opcodes, the two memory bus
// opcodes, and the CCB activity mask. Decouples acquisition from
// analysis and makes captures diffable.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "instr/signals.hpp"

namespace repro::instr {

/// Serialize a buffer (one header line, then one line per record).
[[nodiscard]] std::string buffer_to_text(
    std::span<const ProbeRecord> records);

/// Parse a buffer back. Throws ContractViolation on malformed input.
/// Round-trips buffer_to_text exactly.
[[nodiscard]] std::vector<ProbeRecord> parse_buffer(const std::string& text);

}  // namespace repro::instr
