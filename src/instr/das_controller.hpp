// DAS 9100 command port.
//
// "The DAS is fully controllable through an i/o port; all experiments
// used this feature to control the instrument, as well as to transfer
// acquired buffers to files resident on the Alliant system" (§3.3). This
// is that control path: a line-oriented command protocol over the
// analyzer, which the session controller (the "C-Shell scripts") drives.
//
// Command set:
//   TRIGGER IMMEDIATE | ALLACTIVE | TRANSITION   stage the trigger mode
//   DEPTH <records>                               stage the buffer depth
//   WIDTH <processors>                            stage the full width
//   ARM                                           build + arm an acquisition
//   STATUS                                        DISARMED/ARMED/CAPTURING/COMPLETE
//   XFER                                          close out a complete acquisition
//   RESET                                         drop everything staged
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "instr/logic_analyzer.hpp"

namespace repro::instr {

class DasController {
 public:
  struct Response {
    bool ok = false;
    std::string text;
  };

  DasController() = default;

  /// Execute one command line; unknown or malformed commands return
  /// ok = false with a diagnostic (the instrument NAKs, it never throws).
  Response command(const std::string& line);

  /// Probe sample clock; feeds an armed/capturing acquisition. Returns
  /// true when this sample completed the acquisition.
  bool on_sample_clock(const ProbeRecord& record);

  [[nodiscard]] bool acquisition_complete() const;

  /// Buffer retrieval after a successful XFER.
  [[nodiscard]] bool has_transfer() const { return transfer_.has_value(); }
  [[nodiscard]] std::vector<ProbeRecord> take_transfer();

  /// The configuration that will be used at the next ARM.
  [[nodiscard]] const AnalyzerConfig& staged_config() const {
    return staged_;
  }

  /// Capsule walk: staged config, the live analyzer (rebuilt from its
  /// capsuled config on load, so a mid-capture acquisition resumes with
  /// its partial buffer intact), and any untaken transfer.
  void serialize(capsule::Io& io);

 private:
  AnalyzerConfig staged_;
  std::optional<LogicAnalyzer> analyzer_;
  std::optional<std::vector<ProbeRecord>> transfer_;
};

}  // namespace repro::instr
