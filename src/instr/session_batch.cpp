#include "instr/session_batch.hpp"

#include <optional>
#include <utility>

#include "base/expect.hpp"
#include "fx8/rig_batch.hpp"

namespace repro::instr {

namespace {

/// Per-rig driver state: which cursor is live and what remains.
struct RigState {
  SessionController* controller = nullptr;
  enum class Stage : std::uint8_t { kWarmup, kSample, kDone };
  Stage stage = Stage::kWarmup;
  SessionController::AdvanceCursor warmup;
  std::optional<SessionController::SampleCursor> sample;
  std::uint32_t samples_left = 0;
  std::vector<SampleRecord> out;
};

/// Run one rig's scalar decisions until it requests a fused-kernel block
/// (returned budget > 0) or finishes everything (stage -> kDone).
Cycle next_block_request(RigState& s) {
  while (s.stage != RigState::Stage::kDone) {
    const SessionController::Decision decision =
        s.stage == RigState::Stage::kWarmup
            ? s.controller->advance_step(s.warmup)
            : s.controller->sample_step(*s.sample);
    if (decision.kind == SessionController::Decision::Kind::kAdvanced) {
      continue;
    }
    if (decision.kind == SessionController::Decision::Kind::kBlock) {
      return decision.cycles;
    }
    // kDone: this cursor is spent — move to the next sample (cursor
    // creation order is the serial order, which keeps the controller's
    // RNG stream identical) or finish the rig.
    if (s.stage == RigState::Stage::kSample) {
      s.out.push_back(s.controller->finish_sample(*s.sample));
      --s.samples_left;
    }
    if (s.samples_left == 0) {
      s.sample.reset();
      s.stage = RigState::Stage::kDone;
      break;
    }
    s.stage = RigState::Stage::kSample;
    s.sample.emplace();
    s.controller->begin_sample(*s.sample);
  }
  return 0;
}

}  // namespace

std::vector<std::vector<SampleRecord>> run_session_batch(
    std::span<const BatchRig> rigs) {
  REPRO_EXPECT(rigs.size() <= kMaxBatchRigs,
               "batch exceeds the rig cap (kMaxBatchRigs)");
  std::vector<RigState> states(rigs.size());
  for (std::size_t i = 0; i < rigs.size(); ++i) {
    REPRO_EXPECT(rigs[i].controller != nullptr, "batch rig needs a controller");
    RigState& s = states[i];
    s.controller = rigs[i].controller;
    s.warmup = s.controller->begin_advance(rigs[i].warmup_cycles);
    s.samples_left = rigs[i].n_samples;
    s.out.reserve(s.samples_left);
  }

  // Enlist every rig at its first fused-block request; a rig whose
  // scalar decisions finish the whole session without one never joins
  // (next_block_request already drove it to completion).
  fx8::RigBatch batch;
  for (std::size_t i = 0; i < states.size(); ++i) {
    const Cycle budget = next_block_request(states[i]);
    if (budget > 0) {
      batch.add(states[i].controller->system().machine(), budget, i);
    }
  }

  // Lanes stay hot across consecutive block windows: the refill hook
  // books the consumed cycles against the rig's live cursor, runs its
  // scalar decisions (skips, OS lockstep steps, acquisition windows,
  // sample turnover), and hands back the next block budget. Each rig
  // sees exactly the serial decision sequence, so results and
  // fast-forward stats match the unbatched path bit for bit.
  batch.run([&states](std::size_t tag, Cycle advanced) -> Cycle {
    RigState& s = states[tag];
    if (s.stage == RigState::Stage::kWarmup) {
      s.controller->note_block_cycles(s.warmup, advanced);
    } else {
      s.controller->note_block_cycles(*s.sample, advanced);
    }
    return next_block_request(s);
  });

  std::vector<std::vector<SampleRecord>> results;
  results.reserve(states.size());
  for (RigState& s : states) {
    results.push_back(std::move(s.out));
  }
  return results;
}

}  // namespace repro::instr
