#include "instr/das_controller.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace repro::instr {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> tokens;
  std::string token;
  while (is >> token) {
    std::transform(token.begin(), token.end(), token.begin(),
                   [](unsigned char c) {
                     return static_cast<char>(std::toupper(c));
                   });
    tokens.push_back(token);
  }
  return tokens;
}

bool parse_u64(const std::string& token, std::uint64_t& out) {
  if (token.empty()) {
    return false;
  }
  std::uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = value;
  return true;
}

}  // namespace

DasController::Response DasController::command(const std::string& line) {
  const auto tokens = tokenize(line);
  if (tokens.empty()) {
    return {false, "NAK EMPTY"};
  }
  const std::string& verb = tokens[0];

  if (verb == "TRIGGER") {
    if (tokens.size() != 2) {
      return {false, "NAK TRIGGER NEEDS MODE"};
    }
    if (tokens[1] == "IMMEDIATE") {
      staged_.trigger = TriggerMode::kImmediate;
    } else if (tokens[1] == "ALLACTIVE") {
      staged_.trigger = TriggerMode::kAllActive;
    } else if (tokens[1] == "TRANSITION") {
      staged_.trigger = TriggerMode::kTransitionFromFull;
    } else {
      return {false, "NAK UNKNOWN TRIGGER MODE"};
    }
    return {true, "ACK"};
  }

  if (verb == "DEPTH") {
    std::uint64_t depth = 0;
    if (tokens.size() != 2 || !parse_u64(tokens[1], depth) || depth == 0) {
      return {false, "NAK BAD DEPTH"};
    }
    staged_.buffer_depth = static_cast<std::size_t>(depth);
    return {true, "ACK"};
  }

  if (verb == "WIDTH") {
    std::uint64_t width = 0;
    if (tokens.size() != 2 || !parse_u64(tokens[1], width) || width == 0 ||
        width > kMaxTopologyCes) {
      return {false, "NAK BAD WIDTH"};
    }
    staged_.full_width = static_cast<std::uint32_t>(width);
    return {true, "ACK"};
  }

  if (verb == "ARM") {
    analyzer_.emplace(staged_);
    analyzer_->arm();
    transfer_.reset();
    return {true, "ACK ARMED"};
  }

  if (verb == "STATUS") {
    if (!analyzer_) {
      return {true, "DISARMED"};
    }
    switch (analyzer_->state()) {
      case AnalyzerState::kDisarmed:
        return {true, "DISARMED"};
      case AnalyzerState::kArmed:
        return {true, "ARMED"};
      case AnalyzerState::kCapturing:
        return {true, "CAPTURING"};
      case AnalyzerState::kComplete:
        return {true, "COMPLETE"};
    }
    return {false, "NAK"};
  }

  if (verb == "XFER") {
    if (!analyzer_ || !analyzer_->complete()) {
      return {false, "NAK NOT COMPLETE"};
    }
    transfer_ = analyzer_->transfer();
    std::ostringstream os;
    os << "ACK " << transfer_->size() << " RECORDS";
    return {true, os.str()};
  }

  if (verb == "RESET") {
    staged_ = AnalyzerConfig{};
    analyzer_.reset();
    transfer_.reset();
    return {true, "ACK"};
  }

  return {false, "NAK UNKNOWN COMMAND"};
}

bool DasController::on_sample_clock(const ProbeRecord& record) {
  if (!analyzer_) {
    return false;
  }
  return analyzer_->sample(record);
}

bool DasController::acquisition_complete() const {
  return analyzer_ && analyzer_->complete();
}

void DasController::serialize(capsule::Io& io) {
  staged_.serialize(io);

  bool has_analyzer = analyzer_.has_value();
  io.boolean(has_analyzer);
  if (has_analyzer) {
    // The analyzer's own config travels first so the load pass can
    // construct a buffer of the right capacity before walking its state.
    AnalyzerConfig cfg = analyzer_ ? analyzer_->config() : AnalyzerConfig{};
    cfg.serialize(io);
    if (io.loading()) {
      analyzer_.emplace(cfg);
    }
    analyzer_->serialize(io);
  } else if (io.loading()) {
    analyzer_.reset();
  }

  bool has_transfer = transfer_.has_value();
  io.boolean(has_transfer);
  if (has_transfer) {
    if (io.loading()) {
      transfer_.emplace();
    }
    const std::uint64_t count = io.extent(transfer_->size());
    if (io.loading()) {
      transfer_->assign(static_cast<std::size_t>(count), ProbeRecord{});
    }
    for (ProbeRecord& record : *transfer_) {
      record.serialize(io);
    }
  } else if (io.loading()) {
    transfer_.reset();
  }
}

std::vector<ProbeRecord> DasController::take_transfer() {
  std::vector<ProbeRecord> out;
  if (transfer_) {
    out = std::move(*transfer_);
    transfer_.reset();
  }
  return out;
}

}  // namespace repro::instr
