// Small text/formatting helpers used by the report and chart renderers.
#pragma once

#include <cstdint>
#include <string>

namespace repro {

/// Fixed-point decimal rendering, e.g. fixed(0.3456, 3) == "0.346".
[[nodiscard]] std::string fixed(double value, int decimals);

/// Percentage rendering, e.g. percent(0.5212, 2) == "52.12".
[[nodiscard]] std::string percent(double fraction, int decimals);

/// Scientific rendering with a fixed mantissa width, e.g. "2.57e-02".
[[nodiscard]] std::string scientific(double value, int decimals);

/// Left-pad `s` with spaces to at least `width` characters.
[[nodiscard]] std::string pad_left(const std::string& s, std::size_t width);

/// Right-pad `s` with spaces to at least `width` characters.
[[nodiscard]] std::string pad_right(const std::string& s, std::size_t width);

/// A bar of `n` copies of `fill` (SAS PROC CHART style asterisks).
[[nodiscard]] std::string bar(std::size_t n, char fill = '*');

/// Thousands-separated integer, e.g. 231112 -> "231,112".
[[nodiscard]] std::string with_commas(std::uint64_t value);

/// Levenshtein edit distance (insert/delete/substitute, unit costs);
/// drives the "did you mean" suggestion for unknown artifact ids.
[[nodiscard]] std::size_t edit_distance(const std::string& a,
                                        const std::string& b);

/// Strict whole-string unsigned parse, the ThreadPool::parse_thread_count
/// rules shared by every CLI numeric flag: the string must be digits from
/// the first character to the terminator — no whitespace, signs, trailing
/// garbage, or silent overflow saturation. `base` 0 additionally accepts
/// a 0x/0 prefix (hex/octal) for flags documented to take hex seeds.
/// Returns false (leaving `out` untouched) on any violation.
[[nodiscard]] bool parse_u64_strict(const char* text, std::uint64_t& out,
                                    int base = 10);

/// 32-bit variant: also rejects values above the uint32 range.
[[nodiscard]] bool parse_u32_strict(const char* text, std::uint32_t& out);

}  // namespace repro
