// FNV-1a 64: the one home of the hash constants.
//
// The capsule layer (envelope digests, state-walk digests) and every
// test that cross-checks a digest fold bytes through this helper; the
// offset basis and prime live here and nowhere else. FNV-1a stays the
// digest of record for capsules — it is simple, byte-order-free, and
// streamable one byte at a time — while the content-addressed result
// cache uses the faster seeded base::fasthash for its keys
// (base/fasthash.hpp).
#pragma once

#include <cstddef>
#include <cstdint>

namespace repro::base {

inline constexpr std::uint64_t kFnv1aOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnv1aPrime = 0x00000100000001b3ULL;

/// Fold `n` bytes into an FNV-1a accumulator. Pass a previous return
/// value as `acc` to hash a stream in chunks.
[[nodiscard]] constexpr std::uint64_t fnv1a(const std::uint8_t* p,
                                            std::size_t n,
                                            std::uint64_t acc = kFnv1aOffset) {
  for (std::size_t i = 0; i < n; ++i) {
    acc = (acc ^ p[i]) * kFnv1aPrime;
  }
  return acc;
}

}  // namespace repro::base
