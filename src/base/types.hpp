// Core scalar types shared by every module of the FX/8 reproduction.
#pragma once

#include <cstdint>
#include <cstddef>

namespace repro {

/// Machine cycle count. The whole simulator is cycle-stepped; one Cycle is
/// one tick of the (shared) cluster clock.
using Cycle = std::uint64_t;

/// Virtual or physical byte address inside the simulated machine.
using Addr = std::uint64_t;

/// Identifier of a Computational Element within the cluster, 0..7.
using CeId = std::uint32_t;

/// Identifier of an Interactive Processor, 0-based.
using IpId = std::uint32_t;

/// Identifier of a simulated process/job.
using JobId = std::uint64_t;

/// Maximum width of one cluster — eight Computational Elements, the
/// FX/8's complex. This is also the chunk width of the wide lane kernel
/// (fx8/lane_kernel.hpp): machines wider than this are built as several
/// clusters and advanced in 8-lane passes.
inline constexpr std::uint32_t kMaxCes = 8;

/// Maximum machine-wide CE count across all clusters of a topology
/// (fx8/topology.hpp): kMaxCes lanes in each of up to eight clusters.
inline constexpr std::uint32_t kMaxTopologyCes = 64;

/// Machine-wide per-CE bitmask (bit = global CE id). Wide enough for the
/// largest supported topology; within one cluster the low kMaxCes bits
/// are used.
using LaneMask = std::uint64_t;

/// Page size of Concentrix on the FX/8 (Appendix C: 4 Kbyte pages).
inline constexpr std::uint64_t kPageBytes = 4096;

/// Maximum machines ("rigs") advanced in lockstep by one fx8::RigBatch.
/// Bounds the rig-indexed MMU translation memos so machines that share an
/// Mmu inside a batch never cross-hit each other's entries.
inline constexpr std::uint32_t kMaxBatchRigs = 16;

/// Cache line size used by the shared CE cache model.
inline constexpr std::uint64_t kLineBytes = 32;

/// Horizon sentinel for the event-horizon fast-forward: a component whose
/// state can never change without external input reports this from its
/// quiet_horizon() (docs/parallel_execution.md).
inline constexpr Cycle kHorizonNever = ~static_cast<Cycle>(0);

}  // namespace repro
