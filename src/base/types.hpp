// Core scalar types shared by every module of the FX/8 reproduction.
#pragma once

#include <cstdint>
#include <cstddef>

namespace repro {

/// Machine cycle count. The whole simulator is cycle-stepped; one Cycle is
/// one tick of the (shared) cluster clock.
using Cycle = std::uint64_t;

/// Virtual or physical byte address inside the simulated machine.
using Addr = std::uint64_t;

/// Identifier of a Computational Element within the cluster, 0..7.
using CeId = std::uint32_t;

/// Identifier of an Interactive Processor, 0-based.
using IpId = std::uint32_t;

/// Identifier of a simulated process/job.
using JobId = std::uint64_t;

/// Maximum cluster width on an FX/8: eight Computational Elements.
inline constexpr std::uint32_t kMaxCes = 8;

/// Page size of Concentrix on the FX/8 (Appendix C: 4 Kbyte pages).
inline constexpr std::uint64_t kPageBytes = 4096;

/// Maximum machines ("rigs") advanced in lockstep by one fx8::RigBatch.
/// Bounds the rig-indexed MMU translation memos so machines that share an
/// Mmu inside a batch never cross-hit each other's entries.
inline constexpr std::uint32_t kMaxBatchRigs = 16;

/// Cache line size used by the shared CE cache model.
inline constexpr std::uint64_t kLineBytes = 32;

/// Horizon sentinel for the event-horizon fast-forward: a component whose
/// state can never change without external input reports this from its
/// quiet_horizon() (docs/parallel_execution.md).
inline constexpr Cycle kHorizonNever = ~static_cast<Cycle>(0);

}  // namespace repro
