#include "base/rng.hpp"

#include <bit>
#include <cmath>
#include <numbers>

namespace repro {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t key) noexcept {
  std::uint64_t state = key;
  return splitmix64(state);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless bounded generation, with rejection to keep
  // the distribution exactly uniform.
  if (bound == 0) {
    return 0;
  }
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_in(std::int64_t lo, std::int64_t hi) {
  REPRO_EXPECT(lo <= hi, "uniform_in requires lo <= hi");
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi-lo < 2^63, safe
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform01() noexcept {
  // 53 random bits into [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  REPRO_EXPECT(mean > 0.0, "exponential mean must be positive");
  double u = uniform01();
  // Avoid log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

double Rng::normal(double mu, double sigma) noexcept {
  double u1 = uniform01();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mu + sigma * mag * std::cos(2.0 * std::numbers::pi * u2);
}

std::size_t Rng::discrete(std::span<const double> weights) {
  REPRO_EXPECT(!weights.empty(), "discrete distribution needs weights");
  double total = 0.0;
  for (const double w : weights) {
    REPRO_EXPECT(w >= 0.0, "discrete weights must be non-negative");
    total += w;
  }
  REPRO_EXPECT(total > 0.0, "discrete weights must not all be zero");
  double x = uniform01() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    if (x < weights[i]) {
      return i;
    }
    x -= weights[i];
  }
  return weights.size() - 1;
}

Rng Rng::split() noexcept { return Rng(next() ^ 0xA5A5A5A5DEADBEEFULL); }

}  // namespace repro
