// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic choice in the reproduction (workload mixture, iteration
// jitter, access patterns, sampling offsets) draws from an Rng seeded
// explicitly, so a whole measurement study is reproducible bit-for-bit from
// its seed. The generator is xoshiro256** (Blackman & Vigna), seeded through
// SplitMix64 as its authors recommend.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "base/capsule.hpp"
#include "base/expect.hpp"

namespace repro {

/// SplitMix64 stepper; used for seeding and as a cheap stateless hash.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless 64-bit mix of a key (one SplitMix64 round). Handy for making
/// per-(loop, iteration) deterministic values without carrying a stream.
[[nodiscard]] std::uint64_t mix64(std::uint64_t key) noexcept;

/// xoshiro256** generator with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept;

  /// Next raw 64-bit value.
  [[nodiscard]] std::uint64_t next() noexcept;

  // UniformRandomBitGenerator interface so <random> adaptors also work.
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }
  result_type operator()() noexcept { return next(); }

  /// Uniform integer in [0, bound). bound must be > 0.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Exponential variate with the given mean (> 0).
  [[nodiscard]] double exponential(double mean);

  /// Normal variate (Box–Muller; one value per call, no caching).
  [[nodiscard]] double normal(double mu, double sigma) noexcept;

  /// Index drawn from a discrete distribution given non-negative weights
  /// (at least one weight must be positive).
  [[nodiscard]] std::size_t discrete(std::span<const double> weights);

  /// Split off an independent child stream (seeded from this stream).
  [[nodiscard]] Rng split() noexcept;

  /// Capsule walk over the full generator state.
  void serialize(capsule::Io& io) {
    for (auto& word : s_) {
      io.u64(word);
    }
  }

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace repro
