#include "base/capsule.hpp"

#include <bit>
#include <cstdio>
#include <cstring>

#include "base/fnv1a.hpp"

namespace repro::capsule {

namespace {

using base::fnv1a;

constexpr char kMagic[8] = {'F', 'X', '8', 'C', 'A', 'P', 'S', '\0'};

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t read_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

std::uint64_t read_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

void Io::f64(double& v) {
  auto bits = std::bit_cast<std::uint64_t>(v);
  u64(bits);
  v = std::bit_cast<double>(bits);
}

void Io::str(std::string& v) {
  auto n = static_cast<std::uint64_t>(v.size());
  u64(n);
  if (loading()) {
    if (n > buf_.size() - cursor_) {
      throw CapsuleError("capsule: string extends past payload end");
    }
    v.assign(reinterpret_cast<const char*>(buf_.data() + cursor_),
             static_cast<std::size_t>(n));
    cursor_ += static_cast<std::size_t>(n);
    return;
  }
  put(reinterpret_cast<const std::uint8_t*>(v.data()), v.size());
}

void Io::put(const std::uint8_t* p, std::size_t n) {
  digest_ = fnv1a(p, n, digest_);
  if (mode_ == Mode::kSave) {
    buf_.insert(buf_.end(), p, p + n);
  }
}

void Io::get(std::uint8_t* p, std::size_t n) {
  if (n > buf_.size() - cursor_) {
    throw CapsuleError("capsule: payload truncated");
  }
  std::memcpy(p, buf_.data() + cursor_, n);
  cursor_ += n;
}

std::vector<std::uint8_t> seal(const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(sizeof(kMagic) + 4 + 8 + payload.size() + 8);
  for (const char c : kMagic) {
    out.push_back(static_cast<std::uint8_t>(c));
  }
  append_u32(out, kFormatVersion);
  append_u64(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  append_u64(out, fnv1a(payload.data(), payload.size()));
  return out;
}

std::vector<std::uint8_t> unseal(const std::vector<std::uint8_t>& sealed) {
  constexpr std::size_t kHeader = sizeof(kMagic) + 4 + 8;
  if (sealed.size() < kHeader + 8) {
    throw CapsuleError("capsule: file shorter than envelope header");
  }
  if (std::memcmp(sealed.data(), kMagic, sizeof(kMagic)) != 0) {
    throw CapsuleError("capsule: bad magic (not a capsule file)");
  }
  const std::uint32_t version = read_u32(sealed.data() + sizeof(kMagic));
  if (version != kFormatVersion) {
    throw CapsuleError("capsule: format version " + std::to_string(version) +
                       " (this build reads version " +
                       std::to_string(kFormatVersion) + ")");
  }
  const std::uint64_t size = read_u64(sealed.data() + sizeof(kMagic) + 4);
  if (size != sealed.size() - kHeader - 8) {
    throw CapsuleError("capsule: payload size mismatch (truncated file?)");
  }
  const std::uint64_t stored = read_u64(sealed.data() + kHeader + size);
  const std::uint64_t actual =
      fnv1a(sealed.data() + kHeader, static_cast<std::size_t>(size));
  if (stored != actual) {
    throw CapsuleError("capsule: payload digest mismatch (corrupt file)");
  }
  return {sealed.begin() + static_cast<std::ptrdiff_t>(kHeader),
          sealed.begin() + static_cast<std::ptrdiff_t>(kHeader + size)};
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& sealed) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw CapsuleError("capsule: cannot open " + path + " for writing");
  }
  const std::size_t wrote = std::fwrite(sealed.data(), 1, sealed.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (wrote != sealed.size() || !closed) {
    throw CapsuleError("capsule: short write to " + path);
  }
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw CapsuleError("capsule: cannot open " + path);
  }
  std::vector<std::uint8_t> out;
  std::uint8_t chunk[4096];
  std::size_t got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    out.insert(out.end(), chunk, chunk + got);
  }
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) {
    throw CapsuleError("capsule: read error on " + path);
  }
  return out;
}

}  // namespace repro::capsule
