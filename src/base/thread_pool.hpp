// Fixed-size worker pool for the embarrassingly parallel layers of the
// study: independent measurement sessions, bootstrap replicates, and
// configuration sweeps. Tasks return futures; exceptions thrown inside a
// task propagate to whoever calls future::get(), so a failing session
// surfaces exactly as it would on the serial path.
//
// Determinism contract: the pool never introduces randomness. Callers
// pre-derive every seed in a fixed order before dispatch and merge
// results in submission order, so a study run with N workers is
// bit-identical to the serial run (see docs/parallel_execution.md).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace repro::base {

class ThreadPool {
 public:
  /// Spawn `workers` threads. 0 workers is a valid degenerate pool:
  /// tasks run inline on the submitting thread (handy for tests and for
  /// the threads=1 fallback without special-casing call sites).
  explicit ThreadPool(std::size_t workers);

  /// Drains nothing: joins after finishing every task already queued.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// Usable cores with a floor of 1: hardware_concurrency clamped to the
  /// process CPU-affinity mask, so auto-sized pools never oversubscribe a
  /// container/cpuset that pins the process to fewer cores.
  [[nodiscard]] static std::size_t hardware_workers();

  /// Worker count a `requested` value resolves to: `requested` if
  /// nonzero, else the FX8_THREADS environment variable if it parses
  /// strictly (see parse_thread_count), else hardware_workers() — with
  /// a one-line stderr warning when FX8_THREADS is set but invalid.
  [[nodiscard]] static std::size_t resolve_workers(std::size_t requested);

  /// Upper bound resolve_workers accepts from the environment; far
  /// beyond any machine this runs on, but small enough that a typo'd
  /// value cannot ask for millions of threads.
  static constexpr std::size_t kMaxWorkers = 1024;

  /// Strict worker-count parse: the whole string must be a plain
  /// decimal integer in [1, kMaxWorkers] — no sign, no whitespace, no
  /// trailing characters, no overflow. Returns 0 for anything else
  /// (0 is never a valid worker count, so it doubles as "invalid").
  [[nodiscard]] static std::size_t parse_thread_count(const char* text);

  /// Enqueue a callable; returns a future for its result. Exceptions
  /// inside the task are captured and rethrown by future::get().
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<std::decay_t<F>>> submit(
      F&& fn) {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    if (workers_.empty()) {
      (*task)();
      return future;
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace repro::base
