#include "base/thread_pool.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#if defined(__linux__)
#include <sched.h>
#endif

namespace repro::base {

namespace {

/// Cores this process may actually run on. hardware_concurrency()
/// reports the host's core count even inside a container or cpuset that
/// pins the process to fewer — oversubscribing those time-slices one
/// core and turns the "parallel" path into pure overhead (the PR-1
/// speedup-below-1 regression). The affinity mask is the truth.
std::size_t usable_cores() {
  const std::size_t advertised =
      std::max(1u, std::thread::hardware_concurrency());
#if defined(__linux__)
  cpu_set_t set;
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int allowed = CPU_COUNT(&set);
    if (allowed > 0) {
      return std::min<std::size_t>(advertised,
                                   static_cast<std::size_t>(allowed));
    }
  }
#endif
  return advertised;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

std::size_t ThreadPool::hardware_workers() { return usable_cores(); }

std::size_t ThreadPool::parse_thread_count(const char* text) {
  if (text == nullptr) {
    return 0;
  }
  // Reject leading whitespace/signs ourselves: strtol would accept
  // " +8" and, worse, stop at trailing garbage ("8x" -> 8) or saturate
  // silently on overflow. The whole string must be plain digits.
  if (*text == '\0' || !std::isdigit(static_cast<unsigned char>(*text))) {
    return 0;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long parsed = std::strtoul(text, &end, 10);
  if (errno == ERANGE || end == nullptr || *end != '\0') {
    return 0;
  }
  if (parsed == 0 || parsed > kMaxWorkers) {
    return 0;
  }
  return static_cast<std::size_t>(parsed);
}

std::size_t ThreadPool::resolve_workers(std::size_t requested) {
  if (requested > 0) {
    return requested;
  }
  if (const char* env = std::getenv("FX8_THREADS")) {
    const std::size_t parsed = parse_thread_count(env);
    if (parsed > 0) {
      return parsed;
    }
    std::fprintf(stderr,
                 "fx8: ignoring invalid FX8_THREADS=\"%s\" "
                 "(want an integer in [1, %zu]); using %zu hardware "
                 "worker(s)\n",
                 env, kMaxWorkers, hardware_workers());
  }
  return hardware_workers();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and nothing left to run
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace repro::base
