#include "base/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace repro::base {

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

std::size_t ThreadPool::hardware_workers() {
  return std::max(1u, std::thread::hardware_concurrency());
}

std::size_t ThreadPool::resolve_workers(std::size_t requested) {
  if (requested > 0) {
    return requested;
  }
  if (const char* env = std::getenv("FX8_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  return hardware_workers();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and nothing left to run
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace repro::base
