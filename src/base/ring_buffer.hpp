// Fixed-capacity overwriting ring buffer.
//
// This is the storage discipline of the DAS 9100 acquisition memory: a
// 512-deep buffer that, while armed, keeps the most recent N samples and is
// frozen ("filled") some number of samples after the trigger fires.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/capsule.hpp"
#include "base/expect.hpp"

namespace repro {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : storage_(capacity), capacity_(capacity) {
    REPRO_EXPECT(capacity > 0, "ring buffer capacity must be positive");
  }

  /// Append one element, overwriting the oldest when full.
  void push(const T& value) {
    storage_[head_] = value;
    head_ = (head_ + 1) % capacity_;
    if (size_ < capacity_) {
      ++size_;
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == capacity_; }

  /// Element i counted from the *oldest* retained sample (0 = oldest).
  [[nodiscard]] const T& at(std::size_t i) const {
    REPRO_EXPECT(i < size_, "ring buffer index out of range");
    const std::size_t start = full() ? head_ : 0;
    return storage_[(start + i) % capacity_];
  }

  /// Copy out the retained samples, oldest first.
  [[nodiscard]] std::vector<T> snapshot() const {
    std::vector<T> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) {
      out.push_back(at(i));
    }
    return out;
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

  /// Capsule walk. `elem(io, slot)` serializes one storage slot; every
  /// slot travels (not just the live ones) so head/size round-trip
  /// exactly. Capacity is structural — it must match the constructed
  /// buffer — so a mismatch on load is rejected, not resized.
  template <typename Fn>
  void serialize(capsule::Io& io, Fn&& elem) {
    auto cap = static_cast<std::uint64_t>(capacity_);
    io.u64(cap);
    if (io.loading() && cap != capacity_) {
      throw capsule::CapsuleError(
          "capsule: ring buffer capacity mismatch");
    }
    auto head = static_cast<std::uint64_t>(head_);
    auto size = static_cast<std::uint64_t>(size_);
    io.u64(head);
    io.u64(size);
    if (io.loading() && (head >= cap || size > cap)) {
      throw capsule::CapsuleError(
          "capsule: ring buffer cursor out of range");
    }
    head_ = static_cast<std::size_t>(head);
    size_ = static_cast<std::size_t>(size);
    for (auto& slot : storage_) {
      elem(io, slot);
    }
  }

 private:
  std::vector<T> storage_;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace repro
