// State capsules: one serialization walk, three uses.
//
// Every deterministic component exposes `void serialize(capsule::Io&)`
// that visits its state through the same sequence of primitive calls
// whatever the mode. In kSave mode the walk encodes the state into a
// byte stream; in kLoad mode the identical walk decodes it back; in
// kDigest mode it folds the encoded bytes into a 64-bit FNV-1a digest
// without storing them. Because save and digest see the same byte
// stream, the digest of a saved capsule always equals the digest
// computed in place — bit-identity between two machines can therefore
// be asserted by comparing two 8-byte values instead of replaying
// traces (see docs/checkpointing.md).
//
// Capsule files wrap the payload in a sealed envelope (magic, format
// version, payload size, trailing digest). Unsealing validates all
// four and throws CapsuleError — a *recoverable* error, unlike
// ContractViolation — on any mismatch, so a stale or truncated
// checkpoint is rejected instead of loading garbage state.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "base/fnv1a.hpp"

namespace repro::capsule {

/// Recoverable capsule failure: bad magic, version skew, truncation,
/// digest mismatch, config fingerprint mismatch, unreadable file.
class CapsuleError : public std::runtime_error {
 public:
  explicit CapsuleError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Capsule payload format version. Bump on any change to a serialize()
/// walk; unseal() rejects every other version.
inline constexpr std::uint32_t kFormatVersion = 1;

enum class Mode : std::uint8_t { kSave, kLoad, kDigest };

class Io {
 public:
  /// Walk state into an internal byte buffer (and digest).
  [[nodiscard]] static Io saver() { return Io(Mode::kSave, {}); }
  /// Walk state folding the encoded bytes into digest() only.
  [[nodiscard]] static Io digester() { return Io(Mode::kDigest, {}); }
  /// Walk state out of `payload` (as produced by a saver).
  [[nodiscard]] static Io loader(std::vector<std::uint8_t> payload) {
    return Io(Mode::kLoad, std::move(payload));
  }

  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] bool loading() const noexcept { return mode_ == Mode::kLoad; }

  // Primitives. Each writes, reads, or digests the value in place
  // depending on the mode; integers are encoded little-endian so
  // capsules and digests are stable across hosts.
  void u8(std::uint8_t& v) { scalar(v); }
  void u16(std::uint16_t& v) { scalar(v); }
  void u32(std::uint32_t& v) { scalar(v); }
  void u64(std::uint64_t& v) { scalar(v); }

  void i64(std::int64_t& v) {
    auto bits = static_cast<std::uint64_t>(v);
    u64(bits);
    v = static_cast<std::int64_t>(bits);
  }

  /// Doubles travel as their bit pattern — exact, NaN-preserving.
  void f64(double& v);

  void boolean(bool& v) {
    std::uint8_t bits = v ? 1 : 0;
    u8(bits);
    if (loading() && bits > 1) {
      throw CapsuleError("capsule: corrupt bool encoding");
    }
    v = bits != 0;
  }

  void str(std::string& v);

  /// Enum of any underlying type, transported as u32.
  template <typename E>
  void enum32(E& v) {
    static_assert(std::is_enum_v<E>);
    auto bits = static_cast<std::uint32_t>(
        static_cast<std::underlying_type_t<E>>(v));
    u32(bits);
    v = static_cast<E>(static_cast<std::underlying_type_t<E>>(bits));
  }

  /// Container-size handshake: encodes `n` when saving/digesting and
  /// returns it; returns the decoded count when loading. Callers size
  /// their container from the return value.
  [[nodiscard]] std::uint64_t extent(std::uint64_t n) {
    u64(n);
    return n;
  }

  /// Saved payload (kSave mode only; empty otherwise).
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buf_;
  }
  /// FNV-1a 64 over every byte the walk encoded so far (kSave/kDigest).
  [[nodiscard]] std::uint64_t digest() const noexcept { return digest_; }
  /// True when a loader has consumed its whole payload.
  [[nodiscard]] bool exhausted() const noexcept {
    return cursor_ == buf_.size();
  }

 private:
  Io(Mode mode, std::vector<std::uint8_t> payload)
      : mode_(mode), buf_(std::move(payload)) {}

  template <typename T>
  void scalar(T& v) {
    static_assert(std::is_unsigned_v<T>);
    std::uint8_t bytes[sizeof(T)];
    if (loading()) {
      get(bytes, sizeof(T));
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < sizeof(T); ++i) {
        acc |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
      }
      v = static_cast<T>(acc);
      return;
    }
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    put(bytes, sizeof(T));
  }

  void put(const std::uint8_t* p, std::size_t n);
  void get(std::uint8_t* p, std::size_t n);

  Mode mode_;
  std::vector<std::uint8_t> buf_;
  std::size_t cursor_ = 0;
  std::uint64_t digest_ = base::kFnv1aOffset;
};

/// Wrap a payload in the capsule envelope:
/// magic "FX8CAPS\0" · u32 version · u64 payload size · payload ·
/// u64 FNV-1a digest of the payload.
[[nodiscard]] std::vector<std::uint8_t> seal(
    const std::vector<std::uint8_t>& payload);

/// Validate an envelope and return its payload. Throws CapsuleError on
/// bad magic, wrong version, truncation, or digest mismatch.
[[nodiscard]] std::vector<std::uint8_t> unseal(
    const std::vector<std::uint8_t>& sealed);

/// File I/O for sealed capsules; both throw CapsuleError on failure.
void write_file(const std::string& path,
                const std::vector<std::uint8_t>& sealed);
[[nodiscard]] std::vector<std::uint8_t> read_file(const std::string& path);

}  // namespace repro::capsule
