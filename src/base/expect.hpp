// Precondition / invariant checking used across the library.
//
// These are *logic* checks (programmer errors), so they throw
// std::logic_error rather than returning status codes; simulator state is
// never recoverable once an internal invariant breaks.
#pragma once

#include <stdexcept>
#include <string>

namespace repro {

/// Thrown when a REPRO_EXPECT / REPRO_ENSURE check fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void fail_contract(const char* kind, const char* expr,
                                const char* file, int line,
                                const std::string& message);
}  // namespace detail

}  // namespace repro

/// Check a precondition; throws repro::ContractViolation on failure.
#define REPRO_EXPECT(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::repro::detail::fail_contract("precondition", #cond, __FILE__,        \
                                     __LINE__, (msg));                       \
    }                                                                        \
  } while (false)

/// Check a postcondition / invariant; throws repro::ContractViolation.
#define REPRO_ENSURE(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::repro::detail::fail_contract("invariant", #cond, __FILE__, __LINE__, \
                                     (msg));                                 \
    }                                                                        \
  } while (false)
