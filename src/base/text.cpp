#include "base/text.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

namespace repro {

std::string fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string percent(double fraction, int decimals) {
  return fixed(fraction * 100.0, decimals);
}

std::string scientific(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", decimals, value);
  return buf;
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) {
    return s;
  }
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) {
    return s;
  }
  return s + std::string(width - s.size(), ' ');
}

std::string bar(std::size_t n, char fill) { return std::string(n, fill); }

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) {
    lead = 3;
  }
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) {
      out.push_back(',');
    }
    out.push_back(digits[i]);
  }
  return out;
}

std::size_t edit_distance(const std::string& a, const std::string& b) {
  // One rolling row of the classic DP table.
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) {
    row[j] = j;
  }
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitute =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({substitute, row[j] + 1, row[j - 1] + 1});
    }
  }
  return row[b.size()];
}

bool parse_u64_strict(const char* text, std::uint64_t& out, int base) {
  if (text == nullptr || *text == '\0' ||
      !std::isdigit(static_cast<unsigned char>(*text))) {
    return false;  // Rejects leading whitespace and signs outright.
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(text, &end, base);
  if (errno == ERANGE || end == nullptr || *end != '\0') {
    return false;
  }
  out = parsed;
  return true;
}

bool parse_u32_strict(const char* text, std::uint32_t& out) {
  std::uint64_t wide = 0;
  if (!parse_u64_strict(text, wide) ||
      wide > std::numeric_limits<std::uint32_t>::max()) {
    return false;
  }
  out = static_cast<std::uint32_t>(wide);
  return true;
}

}  // namespace repro
