#include "base/text.hpp"

#include <cstdio>
#include <string>

namespace repro {

std::string fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string percent(double fraction, int decimals) {
  return fixed(fraction * 100.0, decimals);
}

std::string scientific(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", decimals, value);
  return buf;
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) {
    return s;
  }
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) {
    return s;
  }
  return s + std::string(width - s.size(), ' ');
}

std::string bar(std::size_t n, char fill) { return std::string(n, fill); }

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) {
    lead = 3;
  }
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) {
      out.push_back(',');
    }
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace repro
