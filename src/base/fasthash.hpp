// Seeded 64-bit fast hash for content-addressed cache keys.
//
// This is the XXH64 construction: four parallel 64-bit accumulator
// lanes over 32-byte stripes, a lane merge, a short tail, and a final
// avalanche. It digests long canonical-config serializations an order
// of magnitude faster than FNV-1a and takes a seed, which is how the
// result cache derives its bloom-filter probe family and folds the
// code-version salt into every key (src/artifacts/result_store.hpp).
// FNV-1a remains the capsule digest (base/fnv1a.hpp); this hash is for
// keys, not for sealed-envelope integrity.
#pragma once

#include <cstddef>
#include <cstdint>

namespace repro::base {

/// Hash `n` bytes with the given seed. Deterministic across hosts (the
/// input is read little-endian), so keys derived from it are portable
/// cache-file names.
[[nodiscard]] std::uint64_t fasthash(const void* data, std::size_t n,
                                     std::uint64_t seed = 0);

/// Hash one 64-bit value (bloom probes, key mixing).
[[nodiscard]] std::uint64_t fasthash64(std::uint64_t value,
                                       std::uint64_t seed = 0);

}  // namespace repro::base
