#include "cache/ip_cache.hpp"

#include <utility>

#include "base/expect.hpp"

namespace repro::cache {

IpCache::IpCache(const IpCacheConfig& config, mem::MemoryBus& bus)
    : config_(config), bus_(bus) {
  REPRO_EXPECT(config.capacity_bytes >= kLineBytes,
               "IP cache must hold at least one line");
  REPRO_EXPECT(config.ways == 1, "IP cache model is direct mapped");
  tags_.assign(config.capacity_bytes / kLineBytes, 0);
}

void IpCache::set_snoop_hook(SnoopHook hook) { snoop_ = std::move(hook); }

bool IpCache::access(Addr addr, bool is_write) {
  ++stats_.accesses;
  const Addr line = addr / kLineBytes * kLineBytes;
  const std::size_t slot =
      static_cast<std::size_t>(line / kLineBytes) % tags_.size();
  const Addr stored = line | 1;  // Mark occupied (line addrs are 32B-aligned).

  if (is_write) {
    // The IP needs the unique copy; any CE-side copy is revoked.
    ++stats_.write_snoops;
    if (snoop_) {
      snoop_(line);
    }
  }

  if (tags_[slot] == stored) {
    return true;
  }
  ++stats_.misses;
  tags_[slot] = stored;
  bus_.submit_untracked(config_.bus, mem::MemBusOp::kIpTraffic, line);
  return false;
}

}  // namespace repro::cache
