#include "cache/icache.hpp"

#include "base/expect.hpp"
#include "base/rng.hpp"

namespace repro::cache {

InstructionCache::InstructionCache(std::uint64_t capacity_bytes)
    : capacity_(capacity_bytes) {
  REPRO_EXPECT(capacity_bytes > 0, "icache capacity must be positive");
}

bool InstructionCache::fits(std::uint64_t code_bytes) const {
  return code_bytes <= capacity_;
}

double InstructionCache::spill_fraction(std::uint64_t code_bytes) const {
  if (fits(code_bytes)) {
    return 0.0;
  }
  // With LRU and cyclic reuse, a loop of size S > C re-misses the excess
  // S - C (and, as S grows past 2C, effectively everything) each pass.
  const double excess = static_cast<double>(code_bytes - capacity_);
  const double frac = excess / static_cast<double>(code_bytes - capacity_ / 2);
  return frac > 1.0 ? 1.0 : frac;
}

bool InstructionCache::spills(std::uint64_t key,
                              std::uint64_t code_bytes) const {
  return spills_at(spill_fraction(code_bytes), key);
}

bool InstructionCache::spills_at(double frac, std::uint64_t key) {
  if (frac <= 0.0) {
    return false;
  }
  // Map the hash to [0,1) and compare; deterministic in `key`.
  const double u =
      static_cast<double>(mix64(key) >> 11) * 0x1.0p-53;
  return u < frac;
}

}  // namespace repro::cache
