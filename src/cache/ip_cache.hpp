// Interactive Processor cache model.
//
// Each IP owns a 32 KB cache on the system memory bus (Appendix C). IPs
// run interactive load, the operating system, and I/O; their cache filters
// most of that traffic, and their misses appear on the memory bus as
// kIpTraffic transactions. IP writes to pages a CE also touched revoke the
// CE cache's copy (the "unique copy" coherence rule), which we surface via
// a snoop hook so the machine can forward it to the shared cache.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "base/capsule.hpp"
#include "base/types.hpp"
#include "mem/bus_ops.hpp"
#include "mem/memory_bus.hpp"

namespace repro::cache {

struct IpCacheConfig {
  std::uint64_t capacity_bytes = 32 * 1024;
  std::uint32_t ways = 1;  ///< Direct mapped.
  /// Memory bus the IP cache's traffic rides on.
  std::uint32_t bus = 0;
};

struct IpCacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t write_snoops = 0;
};

class IpCache {
 public:
  using SnoopHook = std::function<void(Addr)>;

  IpCache(const IpCacheConfig& config, mem::MemoryBus& bus);

  /// Register the hook invoked when an IP write must revoke CE copies.
  void set_snoop_hook(SnoopHook hook);

  /// Present an access; returns true on hit. Misses queue untracked
  /// kIpTraffic on the memory bus (fire-and-forget: IPs are not the
  /// measured resource, so we model their bus load, not their stall
  /// time).
  bool access(Addr addr, bool is_write);

  [[nodiscard]] const IpCacheStats& stats() const { return stats_; }

  /// Capsule walk: tag array and stats. The snoop hook is wiring the
  /// owner (Machine) reinstalls at construction, not state.
  void serialize(capsule::Io& io) {
    const std::uint64_t tag_count = io.extent(tags_.size());
    if (io.loading() && tag_count != tags_.size()) {
      throw capsule::CapsuleError("capsule: IP cache geometry mismatch");
    }
    for (Addr& tag : tags_) {
      io.u64(tag);
    }
    io.u64(stats_.accesses);
    io.u64(stats_.misses);
    io.u64(stats_.write_snoops);
  }

 private:
  IpCacheConfig config_;
  mem::MemoryBus& bus_;
  std::vector<Addr> tags_;      ///< 0 = empty; tags are line addresses | 1.
  SnoopHook snoop_;
  IpCacheStats stats_;
};

}  // namespace repro::cache
