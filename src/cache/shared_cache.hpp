// Shared Computational-Element cache (the two CPC modules).
//
// The eight CEs share a 128 KB, four-way interleaved cache split into two
// Computational Element Cache modules, reached through a crossbar
// (Appendix C). Misses go to main memory over the module's memory bus.
// Coherence with the IP cache follows the machine's "unique copy before
// modify" rule: a write needs a unique copy, and obtaining one broadcasts
// an invalidate on the memory bus.
//
// Cross-CE locality is first-class here: concurrent-loop iterations on
// different CEs touch neighbouring addresses, so a line fetched for one CE
// hits for its neighbours — the mechanism the paper credits for miss rate
// being insensitive to Mean Concurrency Level (§5.1, §5.3).
#pragma once

#include <bit>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "base/capsule.hpp"
#include "base/expect.hpp"
#include "base/types.hpp"
#include "cache/hot.hpp"
#include "mem/bus_ops.hpp"
#include "mem/memory_bus.hpp"

namespace repro::cache {

enum class AccessType : std::uint8_t { kRead, kWrite, kInstrFetch };

enum class LineState : std::uint8_t { kInvalid, kShared, kUnique };

struct SharedCacheConfig {
  std::uint64_t total_bytes = 128 * 1024;
  std::uint32_t banks = 4;          ///< Interleave factor across modules.
  std::uint32_t modules = 2;        ///< CPC modules (one memory bus each).
  std::uint32_t ways = 2;           ///< Set associativity within a bank.
  /// Requesters tracked by the MSHRs — the machine's *total* CE count
  /// across clusters (global CE ids index the waiter masks). Machine
  /// raises this to the resolved topology width at construction.
  std::uint32_t max_ces = kMaxCes;
};

/// Outcome of presenting an access to the cache.
enum class AccessOutcome : std::uint8_t {
  kHit,         ///< Served this cycle.
  kMissStarted, ///< Miss; a fill was issued; requester must wait.
  kMissMerged,  ///< Miss on a line already being filled; requester waits.
};

struct SharedCacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t write_upgrades = 0;   ///< Shared->Unique ownership fetches.
  std::uint64_t write_backs = 0;
  std::uint64_t merged_misses = 0;    ///< Cross-CE fill sharing events.
  std::uint64_t snoop_invalidations = 0;
};

class SharedCache {
 public:
  SharedCache(const SharedCacheConfig& config, mem::MemoryBus& bus);

  [[nodiscard]] const SharedCacheConfig& config() const { return config_; }

  /// Present an access from `ce`. On kHit the access is complete. On a
  /// miss outcome the CE must stall until take_fill_ready(ce) is true.
  /// At most one outstanding miss per CE (enforced).
  AccessOutcome access(CeId ce, Addr addr, AccessType type);

  /// Progress outstanding fills; call once per machine cycle after the
  /// memory bus has ticked. A fill can only complete on a tick where a
  /// tracked bus transaction finished, so the poll loop is gated on the
  /// bus completion epoch: the common cycle is two loads and a compare.
  void tick() {
    if (fills_.empty() || bus_.completion_epoch() == seen_epoch_) {
      return;
    }
    drain_fills();
  }

  /// True (consuming the flag) once the CE's outstanding miss has filled.
  [[nodiscard]] bool take_fill_ready(CeId ce);

  /// True while the CE has a miss outstanding.
  [[nodiscard]] bool miss_outstanding(CeId ce) const {
    REPRO_EXPECT(ce < config_.max_ces, "CE index out of range");
    return (hot_->miss_outstanding_mask >> ce) & 1u;
  }

  /// Event-horizon fast-forward: always kHorizonNever. tick() only
  /// polls in-flight fills against the memory bus, and a fill can only
  /// complete on a bus-completion tick — which the bus's own horizon
  /// already forces to run naively. The cache keeps no per-cycle
  /// counters, so there is nothing to skip.
  [[nodiscard]] Cycle quiet_horizon() const { return kHorizonNever; }

  /// True while CE `ce` has a completed fill waiting to be consumed by
  /// take_fill_ready (const peek for the CE's quiet horizon).
  [[nodiscard]] bool fill_ready(CeId ce) const {
    return (hot_->fill_ready_mask >> ce) & 1u;
  }

  /// The whole fill-ready word (one bit per global CE id) — input to the
  /// batched lane pass (fx8/lane_kernel.hpp); each cluster shifts its
  /// own 8-lane window out of it.
  [[nodiscard]] LaneMask fill_ready_mask() const {
    return hot_->fill_ready_mask;
  }

  /// Coherence request from the IP side: drop any copy of this line.
  void snoop_invalidate(Addr addr);

  /// Bank serving an address (crossbar arbitration needs this). Banks are
  /// a power of two in every real configuration, so the modulo reduces to
  /// a shift-and-mask (this runs several times per machine cycle).
  [[nodiscard]] std::uint32_t bank_of(Addr addr) const {
    if (bank_mask_ != 0 || config_.banks == 1) {
      return static_cast<std::uint32_t>(addr >> kLineShift) & bank_mask_;
    }
    return static_cast<std::uint32_t>((addr / kLineBytes) % config_.banks);
  }
  /// Module (and hence memory bus) behind a bank.
  [[nodiscard]] std::uint32_t module_of_bank(std::uint32_t bank) const;

  [[nodiscard]] const SharedCacheStats& stats() const { return stats_; }

  /// True if the line holding `addr` is present (tests).
  [[nodiscard]] bool contains(Addr addr) const;

  /// Re-point the hot fields at an externally owned block (the machine's
  /// contiguous hot-state). Copies the current values across.
  void bind_hot(SharedCacheHot& hot);

  /// Capsule walk: every line, the in-flight fills (in issue order),
  /// stats, and the hot masks/LRU clock.
  void serialize(capsule::Io& io);

 private:
  struct Line {
    Addr tag = 0;
    LineState state = LineState::kInvalid;
    bool dirty = false;
    std::uint64_t last_use = 0;  ///< LRU stamp.
  };
  struct Fill {
    mem::TxnId txn = 0;
    LaneMask waiters = 0;      ///< Bitmask of stalled CEs (global ids).
    bool want_unique = false;  ///< Fill triggered by a write.
  };

  static constexpr std::uint32_t kLineShift =
      std::countr_zero(static_cast<std::uint32_t>(kLineBytes));

  [[nodiscard]] Addr line_addr(Addr addr) const;
  [[nodiscard]] std::size_t set_index(Addr addr) const;
  [[nodiscard]] Line* find_line(Addr addr);
  [[nodiscard]] const Line* find_line(Addr addr) const;
  Line& victim_for(Addr addr);
  /// The poll loop tick() guards: install completed fills, wake waiters.
  void drain_fills();

  SharedCacheConfig config_;
  mem::MemoryBus& bus_;
  std::vector<Line> lines_;          ///< sets_ * ways_, bank-major layout.
  std::size_t sets_per_bank_ = 0;
  /// Pow-2 fast-path masks; 0 disables (non-pow-2 geometry falls back to
  /// division). bank_mask_ doubles as the pow-2 flag for bank_of.
  std::uint32_t bank_mask_ = 0;
  std::uint32_t bank_shift_ = 0;
  std::size_t set_mask_ = 0;
  bool sets_pow2_ = false;
  /// In-flight fills keyed by line address, in issue order. A vector,
  /// not a hash map: drain order decides victim choice, LRU stamps, and
  /// write-back submit order, so it must be deterministic state a
  /// capsule can reproduce — and with at most one outstanding miss per
  /// CE the set never exceeds max_ces entries, where a linear scan wins
  /// anyway.
  std::vector<std::pair<Addr, Fill>> fills_;
  /// Bus completion epoch at the last drain; unchanged epoch = no fill
  /// can have completed.
  std::uint64_t seen_epoch_ = 0;
  SharedCacheStats stats_;
  SharedCacheHot own_hot_;
  SharedCacheHot* hot_ = &own_hot_;
};

}  // namespace repro::cache
