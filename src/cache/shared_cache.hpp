// Shared Computational-Element cache (the two CPC modules).
//
// The eight CEs share a 128 KB, four-way interleaved cache split into two
// Computational Element Cache modules, reached through a crossbar
// (Appendix C). Misses go to main memory over the module's memory bus.
// Coherence with the IP cache follows the machine's "unique copy before
// modify" rule: a write needs a unique copy, and obtaining one broadcasts
// an invalidate on the memory bus.
//
// Cross-CE locality is first-class here: concurrent-loop iterations on
// different CEs touch neighbouring addresses, so a line fetched for one CE
// hits for its neighbours — the mechanism the paper credits for miss rate
// being insensitive to Mean Concurrency Level (§5.1, §5.3).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "base/types.hpp"
#include "mem/bus_ops.hpp"
#include "mem/memory_bus.hpp"

namespace repro::cache {

enum class AccessType : std::uint8_t { kRead, kWrite, kInstrFetch };

enum class LineState : std::uint8_t { kInvalid, kShared, kUnique };

struct SharedCacheConfig {
  std::uint64_t total_bytes = 128 * 1024;
  std::uint32_t banks = 4;          ///< Interleave factor across modules.
  std::uint32_t modules = 2;        ///< CPC modules (one memory bus each).
  std::uint32_t ways = 2;           ///< Set associativity within a bank.
  std::uint32_t max_ces = kMaxCes;  ///< Requesters tracked by the MSHRs.
};

/// Outcome of presenting an access to the cache.
enum class AccessOutcome : std::uint8_t {
  kHit,         ///< Served this cycle.
  kMissStarted, ///< Miss; a fill was issued; requester must wait.
  kMissMerged,  ///< Miss on a line already being filled; requester waits.
};

struct SharedCacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t write_upgrades = 0;   ///< Shared->Unique ownership fetches.
  std::uint64_t write_backs = 0;
  std::uint64_t merged_misses = 0;    ///< Cross-CE fill sharing events.
  std::uint64_t snoop_invalidations = 0;
};

class SharedCache {
 public:
  SharedCache(const SharedCacheConfig& config, mem::MemoryBus& bus);

  [[nodiscard]] const SharedCacheConfig& config() const { return config_; }

  /// Present an access from `ce`. On kHit the access is complete. On a
  /// miss outcome the CE must stall until take_fill_ready(ce) is true.
  /// At most one outstanding miss per CE (enforced).
  AccessOutcome access(CeId ce, Addr addr, AccessType type);

  /// Progress outstanding fills; call once per machine cycle after the
  /// memory bus has ticked.
  void tick();

  /// True (consuming the flag) once the CE's outstanding miss has filled.
  [[nodiscard]] bool take_fill_ready(CeId ce);

  /// True while the CE has a miss outstanding.
  [[nodiscard]] bool miss_outstanding(CeId ce) const;

  /// Event-horizon fast-forward: always kHorizonNever. tick() only
  /// polls in-flight fills against the memory bus, and a fill can only
  /// complete on a bus-completion tick — which the bus's own horizon
  /// already forces to run naively. The cache keeps no per-cycle
  /// counters, so there is nothing to skip.
  [[nodiscard]] Cycle quiet_horizon() const { return kHorizonNever; }

  /// True while CE `ce` has a completed fill waiting to be consumed by
  /// take_fill_ready (const peek for the CE's quiet horizon).
  [[nodiscard]] bool fill_ready(CeId ce) const {
    return fill_ready_[ce] != 0;
  }

  /// Coherence request from the IP side: drop any copy of this line.
  void snoop_invalidate(Addr addr);

  /// Bank serving an address (crossbar arbitration needs this).
  [[nodiscard]] std::uint32_t bank_of(Addr addr) const;
  /// Module (and hence memory bus) behind a bank.
  [[nodiscard]] std::uint32_t module_of_bank(std::uint32_t bank) const;

  [[nodiscard]] const SharedCacheStats& stats() const { return stats_; }

  /// True if the line holding `addr` is present (tests).
  [[nodiscard]] bool contains(Addr addr) const;

 private:
  struct Line {
    Addr tag = 0;
    LineState state = LineState::kInvalid;
    bool dirty = false;
    std::uint64_t last_use = 0;  ///< LRU stamp.
  };
  struct Fill {
    mem::TxnId txn = 0;
    std::uint32_t waiters = 0;  ///< Bitmask of stalled CEs.
    bool want_unique = false;   ///< Fill triggered by a write.
  };

  [[nodiscard]] Addr line_addr(Addr addr) const;
  [[nodiscard]] std::size_t set_index(Addr addr) const;
  [[nodiscard]] Line* find_line(Addr addr);
  [[nodiscard]] const Line* find_line(Addr addr) const;
  Line& victim_for(Addr addr);

  SharedCacheConfig config_;
  mem::MemoryBus& bus_;
  std::vector<Line> lines_;          ///< sets_ * ways_, bank-major layout.
  std::size_t sets_per_bank_ = 0;
  std::unordered_map<Addr, Fill> fills_;  ///< Keyed by line address.
  std::vector<std::uint8_t> fill_ready_;  ///< Per-CE completion flags.
  SharedCacheStats stats_;
  std::uint64_t use_clock_ = 0;
};

}  // namespace repro::cache
