// Shared-cache per-tick hot state.
//
// The per-CE miss/fill flags the per-cycle path touches constantly, split
// out of SharedCache so the machine can pack them into its contiguous
// hot-state block (fx8/hot_state.hpp). Both flags are LaneMask bitmasks
// over *global* CE ids — wide enough for every cluster of the largest
// topology (base/types.hpp) — replacing a per-CE byte vector (fill ready)
// and a per-access walk of the in-flight fill map (miss outstanding) with
// single-word tests.
#pragma once

#include <cstdint>

#include "base/types.hpp"

namespace repro::cache {

struct SharedCacheHot {
  /// CEs whose outstanding miss has filled but not yet been consumed by
  /// take_fill_ready().
  LaneMask fill_ready_mask = 0;
  /// CEs with a miss outstanding (set at the missing access, cleared when
  /// take_fill_ready() consumes the fill).
  LaneMask miss_outstanding_mask = 0;
  /// LRU clock: bumped once per access and per line install.
  std::uint64_t use_clock = 0;
};

}  // namespace repro::cache
