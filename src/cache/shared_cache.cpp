#include "cache/shared_cache.hpp"

#include "base/expect.hpp"

namespace repro::cache {

SharedCache::SharedCache(const SharedCacheConfig& config, mem::MemoryBus& bus)
    : config_(config), bus_(bus) {
  REPRO_EXPECT(config.banks > 0 && config.modules > 0 && config.ways > 0,
               "cache geometry must be positive");
  REPRO_EXPECT(config.banks % config.modules == 0,
               "banks must divide evenly across modules");
  REPRO_EXPECT(config.max_ces > 0 && config.max_ces <= kMaxTopologyCes,
               "MSHR waiter mask supports up to 64 CEs");
  const std::uint64_t total_lines = config.total_bytes / kLineBytes;
  REPRO_EXPECT(total_lines % (config.banks * config.ways) == 0,
               "cache size must factor into banks*ways*sets");
  sets_per_bank_ = total_lines / (config.banks * config.ways);
  lines_.resize(total_lines);
  if (std::has_single_bit(config.banks)) {
    bank_mask_ = config.banks - 1;
    bank_shift_ = static_cast<std::uint32_t>(std::countr_zero(config.banks));
  }
  if (std::has_single_bit(sets_per_bank_)) {
    sets_pow2_ = true;
    set_mask_ = sets_per_bank_ - 1;
  }
}

void SharedCache::bind_hot(SharedCacheHot& hot) {
  hot = *hot_;
  hot_ = &hot;
}

Addr SharedCache::line_addr(Addr addr) const {
  return addr >> kLineShift << kLineShift;
}

std::uint32_t SharedCache::module_of_bank(std::uint32_t bank) const {
  REPRO_EXPECT(bank < config_.banks, "bank index out of range");
  return bank / (config_.banks / config_.modules);
}

std::size_t SharedCache::set_index(Addr addr) const {
  const std::uint32_t bank = bank_of(addr);
  std::size_t set_in_bank;
  if (bank_mask_ != 0 && sets_pow2_) {
    set_in_bank =
        static_cast<std::size_t>(addr >> kLineShift >> bank_shift_) &
        set_mask_;
  } else {
    set_in_bank = static_cast<std::size_t>(addr / kLineBytes / config_.banks) %
                  sets_per_bank_;
  }
  return (static_cast<std::size_t>(bank) * sets_per_bank_ + set_in_bank) *
         config_.ways;
}

SharedCache::Line* SharedCache::find_line(Addr addr) {
  const Addr tag = line_addr(addr);
  const std::size_t base = set_index(addr);
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    Line& line = lines_[base + w];
    if (line.state != LineState::kInvalid && line.tag == tag) {
      return &line;
    }
  }
  return nullptr;
}

const SharedCache::Line* SharedCache::find_line(Addr addr) const {
  return const_cast<SharedCache*>(this)->find_line(addr);
}

SharedCache::Line& SharedCache::victim_for(Addr addr) {
  const std::size_t base = set_index(addr);
  Line* victim = &lines_[base];
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    Line& line = lines_[base + w];
    if (line.state == LineState::kInvalid) {
      return line;
    }
    if (line.last_use < victim->last_use) {
      victim = &line;
    }
  }
  return *victim;
}

AccessOutcome SharedCache::access(CeId ce, Addr addr, AccessType type) {
  REPRO_EXPECT(ce < config_.max_ces, "CE index out of range");
  REPRO_EXPECT(!miss_outstanding(ce),
               "CE presented an access with a miss already outstanding");
  ++stats_.accesses;
  ++hot_->use_clock;
  const Addr tag = line_addr(addr);

  if (Line* line = find_line(addr)) {
    // Present. Writes need a unique copy; upgrading costs an invalidate
    // broadcast but the data is already here, so the CE is not stalled.
    line->last_use = hot_->use_clock;
    if (type == AccessType::kWrite) {
      if (line->state == LineState::kShared) {
        ++stats_.write_upgrades;
        const std::uint32_t module = module_of_bank(bank_of(addr));
        bus_.submit_untracked(module, mem::MemBusOp::kInvalidate, tag);
        line->state = LineState::kUnique;
      }
      line->dirty = true;
    }
    return AccessOutcome::kHit;
  }

  ++stats_.misses;
  const LaneMask ce_bit = LaneMask{1} << ce;
  hot_->miss_outstanding_mask |= ce_bit;

  // Merge with an in-flight fill of the same line if one exists: the
  // cross-CE sharing path.
  for (auto& [line_tag, fill] : fills_) {
    if (line_tag == tag) {
      fill.waiters |= ce_bit;
      fill.want_unique |= (type == AccessType::kWrite);
      ++stats_.merged_misses;
      return AccessOutcome::kMissMerged;
    }
  }

  // Fetch the line; the victim is chosen (and written back if dirty) when
  // the fill completes and the line is installed.
  const std::uint32_t module = module_of_bank(bank_of(addr));
  const mem::TxnId txn = bus_.submit(module, mem::MemBusOp::kLineFetch, tag);
  fills_.emplace_back(tag, Fill{txn, ce_bit, type == AccessType::kWrite});
  return AccessOutcome::kMissStarted;
}

void SharedCache::drain_fills() {
  for (auto it = fills_.begin(); it != fills_.end();) {
    if (!bus_.take_finished(it->second.txn)) {
      ++it;
      continue;
    }
    // Install the line (writing back the victim if needed) and wake every
    // waiter.
    Line& line = victim_for(it->first);
    if (line.state != LineState::kInvalid && line.dirty) {
      ++stats_.write_backs;
      bus_.submit_untracked(module_of_bank(bank_of(line.tag)),
                            mem::MemBusOp::kWriteBack, line.tag);
    }
    line.tag = it->first;
    line.state =
        it->second.want_unique ? LineState::kUnique : LineState::kShared;
    line.dirty = it->second.want_unique;
    line.last_use = ++hot_->use_clock;
    hot_->fill_ready_mask |= it->second.waiters;
    it = fills_.erase(it);
  }
  seen_epoch_ = bus_.completion_epoch();
}

bool SharedCache::take_fill_ready(CeId ce) {
  REPRO_EXPECT(ce < config_.max_ces, "CE index out of range");
  const LaneMask ce_bit = LaneMask{1} << ce;
  if (hot_->fill_ready_mask & ce_bit) {
    hot_->fill_ready_mask &= ~ce_bit;
    hot_->miss_outstanding_mask &= ~ce_bit;
    return true;
  }
  return false;
}

void SharedCache::snoop_invalidate(Addr addr) {
  if (Line* line = find_line(addr)) {
    // Coherence rule: the IP side needs the unique copy, ours is dropped.
    // A dirty victim would be written back by hardware; account for it.
    if (line->dirty) {
      ++stats_.write_backs;
      bus_.submit_untracked(module_of_bank(bank_of(line->tag)),
                            mem::MemBusOp::kWriteBack, line->tag);
    }
    line->state = LineState::kInvalid;
    line->dirty = false;
    ++stats_.snoop_invalidations;
  }
}

bool SharedCache::contains(Addr addr) const {
  return find_line(addr) != nullptr;
}

void SharedCache::serialize(capsule::Io& io) {
  const std::uint64_t line_count = io.extent(lines_.size());
  if (io.loading() && line_count != lines_.size()) {
    throw capsule::CapsuleError("capsule: cache geometry mismatch");
  }
  for (Line& line : lines_) {
    io.u64(line.tag);
    io.enum32(line.state);
    io.boolean(line.dirty);
    io.u64(line.last_use);
  }
  const std::uint64_t fill_count = io.extent(fills_.size());
  if (io.loading()) {
    fills_.assign(static_cast<std::size_t>(fill_count), {});
  }
  for (auto& [tag, fill] : fills_) {
    io.u64(tag);
    io.u64(fill.txn);
    io.u64(fill.waiters);
    io.boolean(fill.want_unique);
  }
  io.u64(seen_epoch_);
  io.u64(stats_.accesses);
  io.u64(stats_.misses);
  io.u64(stats_.write_upgrades);
  io.u64(stats_.write_backs);
  io.u64(stats_.merged_misses);
  io.u64(stats_.snoop_invalidations);
  io.u64(hot_->fill_ready_mask);
  io.u64(hot_->miss_outstanding_mask);
  io.u64(hot_->use_clock);
}

}  // namespace repro::cache
