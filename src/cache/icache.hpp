// Per-CE internal instruction cache model.
//
// Each CE contains a 16 KB instruction cache "for efficient handling of
// loops and other localized portions of code" (Appendix C). Loop bodies
// that fit generate no instruction traffic to the shared cache after the
// first pass (paper §5.1); larger bodies spill a fraction of their fetches.
//
// We model the steady-state spill fraction analytically instead of tags:
// the observable the study cares about is how much instruction traffic
// reaches the shared cache, not icache internals.
#pragma once

#include <cstdint>

#include "base/types.hpp"

namespace repro::cache {

class InstructionCache {
 public:
  explicit InstructionCache(std::uint64_t capacity_bytes = 16 * 1024);

  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }

  /// True when code of this footprint runs fully out of the icache.
  [[nodiscard]] bool fits(std::uint64_t code_bytes) const;

  /// Steady-state fraction of instruction fetches that spill to the shared
  /// cache for a loop of this code footprint: 0 when it fits, approaching
  /// 1 as the footprint grows (cyclic-reuse thrashing: a footprint of
  /// k*capacity re-misses the whole excess every pass).
  [[nodiscard]] double spill_fraction(std::uint64_t code_bytes) const;

  /// Deterministic per-step decision: does step `key` of code with this
  /// footprint issue a shared-cache instruction fetch? (Hashes `key`
  /// against the spill fraction so replays are reproducible.)
  [[nodiscard]] bool spills(std::uint64_t key, std::uint64_t code_bytes) const;

  /// The same decision against a precomputed spill fraction. Lets a CE
  /// evaluate spill_fraction() once per kernel instance (the footprint is
  /// fixed for its lifetime) instead of once per step.
  [[nodiscard]] static bool spills_at(double frac, std::uint64_t key);

 private:
  std::uint64_t capacity_;
};

}  // namespace repro::cache
