// Crossbar-of-crossbars: second-level bank arbitration across clusters.
//
// Each cluster keeps its own Crossbar (one CE per bank per cycle inside
// the cluster, as on the measured machine). When a machine has several
// clusters sharing the banked cache, a bank must additionally be granted
// to at most one cluster per cycle; this fabric is that second level. A
// CE's access routes through its cluster crossbar first (intra-cluster
// conflicts are charged there) and then through the fabric, whose
// rejections are the cross-cluster contention the width_scaling artifact
// reports. Single-cluster machines attach no fabric, so the FX/8 path is
// byte-for-byte the pre-topology behaviour.
#pragma once

#include <cstdint>

#include "base/capsule.hpp"
#include "base/expect.hpp"
#include "base/types.hpp"

namespace repro::fx8 {

class ClusterFabric {
 public:
  explicit ClusterFabric(std::uint32_t banks) : banks_(banks) {
    REPRO_EXPECT(banks >= 1 && banks <= 64,
                 "fabric arbitrates at most 64 banks (one grant word)");
  }

  /// Reset per-cycle grants. The machine calls this once per cycle,
  /// before any cluster ticks (clusters then contend in service order).
  void begin_cycle() { taken_ = 0; }

  /// True when no bank was granted since the last begin_cycle — i.e.
  /// begin_cycle() would be a no-op. Lets the machine elide the reset on
  /// cycles where no cluster touched a bank (the common case on wide
  /// machines running compute-heavy phases).
  [[nodiscard]] bool idle() const { return taken_ == 0; }

  /// Try to claim `bank` for the calling cluster this cycle.
  [[nodiscard]] bool try_acquire(std::uint32_t bank) {
    REPRO_EXPECT(bank < banks_, "bank index out of range");
    const std::uint64_t bit = std::uint64_t{1} << bank;
    if (taken_ & bit) {
      ++conflicts_;
      return false;
    }
    taken_ |= bit;
    return true;
  }

  /// Lifetime count of cross-cluster bank rejections.
  [[nodiscard]] std::uint64_t conflicts() const { return conflicts_; }

  /// Capsule walk: the per-cycle grant word and lifetime conflicts.
  void serialize(capsule::Io& io) {
    io.u64(taken_);
    io.u64(conflicts_);
  }

 private:
  std::uint32_t banks_;
  std::uint64_t taken_ = 0;
  std::uint64_t conflicts_ = 0;
};

}  // namespace repro::fx8
