// Crossbar between the CEs and the shared-cache banks.
//
// "Connection to these cache modules is accomplished through a crossbar
// switch which routes both address and data between cache and CE"
// (Appendix C). Each cycle a bank can serve one requester; contention
// shows up on the losing CE's bus as a wait cycle. Priority is positional:
// the cluster services CEs in its configured order, so the crossbar just
// enforces one-grant-per-bank bookkeeping.
#pragma once

#include <cstdint>

#include "base/capsule.hpp"
#include "base/expect.hpp"
#include "base/types.hpp"
#include "fx8/fabric.hpp"

namespace repro::fx8 {

class Crossbar {
 public:
  explicit Crossbar(std::uint32_t banks);

  /// Reset per-cycle grants. Call once per machine cycle before CEs act.
  /// Grants live in one bitmask so the per-cycle reset is a single store
  /// (this runs every machine cycle of every session).
  void begin_cycle() { *taken_ = 0; }

  /// Try to route an access to `bank` this cycle; true on success. An
  /// intra-cluster conflict (the bank already granted to a sibling CE)
  /// and a cross-cluster fabric rejection both count here — the losing
  /// CE retries next cycle either way.
  /// Inline: this sits on the per-access hot path of every CE.
  [[nodiscard]] bool try_acquire(std::uint32_t bank) {
    REPRO_EXPECT(bank < banks_, "bank index out of range");
    const std::uint64_t bit = std::uint64_t{1} << bank;
    if (*taken_ & bit) {
      ++conflicts_;
      return false;
    }
    if (fabric_ != nullptr && !fabric_->try_acquire(bank)) {
      ++conflicts_;
      return false;
    }
    *taken_ |= bit;
    return true;
  }

  /// Lifetime count of rejected (conflicted) acquisitions.
  [[nodiscard]] std::uint64_t conflicts() const { return conflicts_; }

  /// Attach the machine's second-level arbiter (multi-cluster machines
  /// only; nullptr detaches). Structural wiring, not evolving state: it
  /// stays out of the capsule walk, like the hot-state binding.
  void attach_fabric(ClusterFabric* fabric) { fabric_ = fabric; }

  /// Re-point the grant mask at an externally owned slot (the machine's
  /// contiguous hot-state). Copies the current value across.
  void bind_hot(std::uint64_t& taken) {
    taken = *taken_;
    taken_ = &taken;
  }

  /// Capsule walk: the grant mask (hot slot) and lifetime conflicts.
  void serialize(capsule::Io& io) {
    io.u64(*taken_);
    io.u64(conflicts_);
  }

 private:
  std::uint32_t banks_;
  std::uint64_t own_taken_ = 0;
  std::uint64_t* taken_ = &own_taken_;
  std::uint64_t conflicts_ = 0;
  ClusterFabric* fabric_ = nullptr;
};

}  // namespace repro::fx8
