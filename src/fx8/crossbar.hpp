// Crossbar between the CEs and the shared-cache banks.
//
// "Connection to these cache modules is accomplished through a crossbar
// switch which routes both address and data between cache and CE"
// (Appendix C). Each cycle a bank can serve one requester; contention
// shows up on the losing CE's bus as a wait cycle. Priority is positional:
// the cluster services CEs in its configured order, so the crossbar just
// enforces one-grant-per-bank bookkeeping.
#pragma once

#include <cstdint>

#include "base/types.hpp"

namespace repro::fx8 {

class Crossbar {
 public:
  explicit Crossbar(std::uint32_t banks);

  /// Reset per-cycle grants. Call once per machine cycle before CEs act.
  /// Grants live in one bitmask so the per-cycle reset is a single store
  /// (this runs every machine cycle of every session).
  void begin_cycle() { taken_ = 0; }

  /// Try to route an access to `bank` this cycle; true on success.
  [[nodiscard]] bool try_acquire(std::uint32_t bank);

  /// Lifetime count of rejected (conflicted) acquisitions.
  [[nodiscard]] std::uint64_t conflicts() const { return conflicts_; }

 private:
  std::uint32_t banks_;
  std::uint64_t taken_ = 0;
  std::uint64_t conflicts_ = 0;
};

}  // namespace repro::fx8
