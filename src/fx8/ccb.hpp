// Concurrency Control Bus.
//
// "Both synchronization and processor scheduling functions are handled in
// hardware, and make use of the Concurrency Control Bus" (§3.2). The CCB
// hands loop iterations to requesting CEs one grant per cycle
// (self-scheduling, [19] in the paper), tracks completion so
// dependence-carrying iterations can await their predecessor, and knows
// when the loop has drained. The CE that completes the final iteration
// continues serial execution (Figure 2).
#pragma once

#include <cstdint>
#include <array>
#include <optional>
#include <vector>

#include "base/capsule.hpp"
#include "base/expect.hpp"
#include "base/types.hpp"

namespace repro::fx8 {

/// How loop iterations are handed to processors. Self-scheduling is what
/// the FX/8 hardware does ([19] in the paper); static chunking is the
/// compile-time alternative the era's scheduling literature (the paper's
/// ref [8]) compares against — each CE owns a contiguous block.
enum class DispatchPolicy : std::uint8_t {
  kSelfScheduled,
  kStaticChunked,
};

class ConcurrencyControlBus {
 public:
  ConcurrencyControlBus() = default;

  /// Begin dispatching a loop of `trip_count` iterations. `width` is the
  /// number of participating CEs (chunked mode splits across it).
  void start_loop(std::uint64_t trip_count,
                  DispatchPolicy policy = DispatchPolicy::kSelfScheduled,
                  std::uint32_t width = kMaxCes);

  /// Reset per-cycle grant budget; call once per machine cycle.
  void begin_cycle();

  /// Try to obtain the next undispatched iteration for CE `ce`. At most
  /// `grants_per_cycle` (hardware serialization: 1) succeed per cycle.
  /// Self-scheduled mode ignores `ce` (one shared queue); chunked mode
  /// draws from the CE's own block.
  [[nodiscard]] std::optional<std::uint64_t> try_dispatch(CeId ce = 0);

  /// Record completion of iteration `iter`.
  void mark_complete(std::uint64_t iter);

  /// Dependence check: can iteration `iter` begin its body? True when it
  /// has no predecessor or the predecessor has completed.
  [[nodiscard]] bool predecessor_complete(std::uint64_t iter) const {
    REPRO_EXPECT(active_, "no loop being dispatched");
    if (iter == 0) {
      return true;
    }
    return complete_[iter - 1] != 0;
  }

  [[nodiscard]] bool loop_active() const { return active_; }
  // The cluster's per-cycle control scan polls these; keep them inline.
  [[nodiscard]] bool all_dispatched() const {
    REPRO_EXPECT(active_, "no loop being dispatched");
    return dispatched_count_ >= trip_;
  }
  [[nodiscard]] bool all_complete() const {
    REPRO_EXPECT(active_, "no loop being dispatched");
    return completed_count_ >= trip_;
  }
  [[nodiscard]] std::uint64_t trip_count() const { return trip_; }
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_count_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_count_; }
  [[nodiscard]] DispatchPolicy policy() const { return policy_; }

  /// Close out a drained loop; requires all_complete().
  void end_loop();

  /// Re-point the per-cycle grant budget at an externally owned slot
  /// (the machine's contiguous hot-state). Copies the current value.
  void bind_hot(std::uint32_t& grants_left) {
    grants_left = *grants_left_;
    grants_left_ = &grants_left;
  }

  /// Capsule walk over the dispatch state of the (possibly inactive)
  /// current loop, including the per-cycle grant budget hot slot.
  void serialize(capsule::Io& io) {
    io.boolean(active_);
    io.enum32(policy_);
    io.u64(trip_);
    io.u64(next_iter_);
    io.u64(dispatched_count_);
    io.u64(completed_count_);
    const std::uint64_t n = io.extent(complete_.size());
    if (io.loading()) {
      complete_.assign(static_cast<std::size_t>(n), 0);
    }
    for (std::uint8_t& done : complete_) {
      io.u8(done);
    }
    for (std::uint64_t& next : chunk_next_) {
      io.u64(next);
    }
    for (std::uint64_t& end : chunk_end_) {
      io.u64(end);
    }
    io.u32(*grants_left_);
  }

 private:
  bool active_ = false;
  DispatchPolicy policy_ = DispatchPolicy::kSelfScheduled;
  std::uint64_t trip_ = 0;
  std::uint64_t next_iter_ = 0;          ///< Self-scheduled queue head.
  std::uint64_t dispatched_count_ = 0;
  std::uint64_t completed_count_ = 0;
  std::vector<std::uint8_t> complete_;
  /// Chunked mode: per-CE [next, end) block cursors.
  std::array<std::uint64_t, kMaxCes> chunk_next_{};
  std::array<std::uint64_t, kMaxCes> chunk_end_{};
  std::uint32_t own_grants_left_ = 0;
  std::uint32_t* grants_left_ = &own_grants_left_;
  static constexpr std::uint32_t kGrantsPerCycle = 1;
};

}  // namespace repro::fx8
