#include "fx8/crossbar.hpp"

#include "base/expect.hpp"

namespace repro::fx8 {

Crossbar::Crossbar(std::uint32_t banks) : banks_(banks) {
  REPRO_EXPECT(banks > 0, "crossbar needs at least one bank");
  REPRO_EXPECT(banks <= 64, "grant bitmask holds at most 64 banks");
}

bool Crossbar::try_acquire(std::uint32_t bank) {
  REPRO_EXPECT(bank < banks_, "bank index out of range");
  const std::uint64_t bit = std::uint64_t{1} << bank;
  if (taken_ & bit) {
    ++conflicts_;
    return false;
  }
  taken_ |= bit;
  return true;
}

}  // namespace repro::fx8
