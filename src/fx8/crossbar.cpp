#include "fx8/crossbar.hpp"

#include <algorithm>

#include "base/expect.hpp"

namespace repro::fx8 {

Crossbar::Crossbar(std::uint32_t banks) : bank_taken_(banks, 0) {
  REPRO_EXPECT(banks > 0, "crossbar needs at least one bank");
}

void Crossbar::begin_cycle() {
  std::fill(bank_taken_.begin(), bank_taken_.end(), std::uint8_t{0});
}

bool Crossbar::try_acquire(std::uint32_t bank) {
  REPRO_EXPECT(bank < bank_taken_.size(), "bank index out of range");
  if (bank_taken_[bank]) {
    ++conflicts_;
    return false;
  }
  bank_taken_[bank] = 1;
  return true;
}

}  // namespace repro::fx8
