#include "fx8/crossbar.hpp"

#include "base/expect.hpp"

namespace repro::fx8 {

Crossbar::Crossbar(std::uint32_t banks) : banks_(banks) {
  REPRO_EXPECT(banks > 0, "crossbar needs at least one bank");
  REPRO_EXPECT(banks <= 64, "grant bitmask holds at most 64 banks");
}


}  // namespace repro::fx8
