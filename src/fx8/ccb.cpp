#include "fx8/ccb.hpp"

#include <algorithm>

#include "base/expect.hpp"

namespace repro::fx8 {

void ConcurrencyControlBus::start_loop(std::uint64_t trip_count,
                                       DispatchPolicy policy,
                                       std::uint32_t width) {
  REPRO_EXPECT(!active_, "CCB already dispatching a loop");
  REPRO_EXPECT(trip_count > 0, "loop must have at least one iteration");
  REPRO_EXPECT(width >= 1 && width <= kMaxCes, "width must be 1..8");
  active_ = true;
  policy_ = policy;
  trip_ = trip_count;
  next_iter_ = 0;
  dispatched_count_ = 0;
  completed_count_ = 0;
  complete_.assign(trip_count, 0);
  if (policy == DispatchPolicy::kStaticChunked) {
    // Contiguous blocks of ceil(trip/width); trailing CEs may own less
    // (or nothing) when the trip count does not divide evenly.
    const std::uint64_t chunk = (trip_count + width - 1) / width;
    for (std::uint32_t c = 0; c < kMaxCes; ++c) {
      if (c < width) {
        chunk_next_[c] = std::min<std::uint64_t>(c * chunk, trip_count);
        chunk_end_[c] = std::min<std::uint64_t>((c + 1) * chunk, trip_count);
      } else {
        chunk_next_[c] = 0;
        chunk_end_[c] = 0;
      }
    }
  }
  // The starting cycle gets a full grant budget so dispatch can begin in
  // the same cycle the cstart instruction executes.
  *grants_left_ = kGrantsPerCycle;
}

void ConcurrencyControlBus::begin_cycle() { *grants_left_ = kGrantsPerCycle; }

std::optional<std::uint64_t> ConcurrencyControlBus::try_dispatch(CeId ce) {
  REPRO_EXPECT(active_, "no loop being dispatched");
  if (*grants_left_ == 0) {
    return std::nullopt;
  }
  if (policy_ == DispatchPolicy::kStaticChunked) {
    REPRO_EXPECT(ce < kMaxCes, "CE index out of range");
    if (chunk_next_[ce] >= chunk_end_[ce]) {
      return std::nullopt;
    }
    --*grants_left_;
    ++dispatched_count_;
    return chunk_next_[ce]++;
  }
  if (next_iter_ >= trip_) {
    return std::nullopt;
  }
  --*grants_left_;
  ++dispatched_count_;
  return next_iter_++;
}

void ConcurrencyControlBus::mark_complete(std::uint64_t iter) {
  REPRO_EXPECT(active_, "no loop being dispatched");
  REPRO_EXPECT(iter < trip_, "iteration index out of range");
  REPRO_EXPECT(!complete_[iter], "iteration completed twice");
  complete_[iter] = 1;
  ++completed_count_;
}


void ConcurrencyControlBus::end_loop() {
  REPRO_EXPECT(active_ && all_complete(), "loop not drained");
  active_ = false;
  trip_ = 0;
  next_iter_ = 0;
  dispatched_count_ = 0;
  completed_count_ = 0;
  complete_.clear();
}

}  // namespace repro::fx8
