#include "fx8/lane_kernel.hpp"

#include <cstdlib>
#include <cstring>

namespace repro::fx8 {

LaneMask lane_pass_scalar(CeHot& hot, LaneMask fill_ready_mask,
                          std::uint32_t n_lanes) {
  LaneMask slow = 0;
  for (CeId c = 0; c < n_lanes; ++c) {
    const auto p = static_cast<CePhase>(hot.phase[c]);
    const bool compute_ok =
        p == CePhase::kCompute && hot.compute_left[c] > 0;
    const bool miss_ok =
        p == CePhase::kMissWait && ((fill_ready_mask >> c) & 1u) == 0;
    const bool fault_ok = p == CePhase::kFaultWait && hot.fault_left[c] > 1;
    const bool parked = p == CePhase::kIdle || p == CePhase::kDone;
    const bool fast = compute_ok || miss_ok || fault_ok;
    if (!fast && !parked) {
      slow |= LaneMask{1} << c;
      continue;
    }
    hot.bus_op[c] = miss_ok ? mem::CeBusOp::kWait : mem::CeBusOp::kIdle;
    hot.compute_left[c] -= compute_ok ? 1u : 0u;
    hot.fault_left[c] -= fault_ok ? 1u : 0u;
    hot.busy_cycles[c] += fast ? 1u : 0u;
    hot.compute_cycles[c] += compute_ok ? 1u : 0u;
    hot.miss_wait_cycles[c] += miss_ok ? 1u : 0u;
    hot.fault_wait_cycles[c] += fault_ok ? 1u : 0u;
  }
  return slow;
}

LanePassFn select_lane_pass() {
  const char* force = std::getenv("FX8_FORCE_SCALAR");
  const bool force_scalar =
      force != nullptr && std::strcmp(force, "0") != 0;
#if defined(FX8_HAVE_AVX2)
  if (!force_scalar && __builtin_cpu_supports("avx2")) {
    return &lane_pass_avx2;
  }
#else
  (void)force_scalar;
#endif
  return &lane_pass_scalar;
}

const char* lane_pass_name(LanePassFn pass) {
#if defined(FX8_HAVE_AVX2)
  if (pass == &lane_pass_avx2) {
    return "avx2";
  }
#endif
  return pass == &lane_pass_scalar ? "scalar" : "unknown";
}

}  // namespace repro::fx8
