// Wide fast pass over the machine's CE state lanes.
//
// The three steady-state CE behaviours (compute burn, miss wait, fault
// wait) touch only that lane's CeHot slots plus the cache's fill-ready
// word, so one pass can classify and advance every lane of a machine —
// all clusters, cluster-major over global CE ids — with straight-line
// arithmetic instead of per-CE dispatched switches. The wide machine
// paths (Machine::tick_block, fx8::RigBatch) run this pass first and
// drop only the returned slow lanes — phase transitions, access issue,
// stall pick-up — into each owning cluster's per-lane tick path, in
// exactly the service order Cluster::tick would have used. The pass
// leaves slow lanes completely untouched (their bus opcode is rewritten
// by tick_lane before dispatch), so fused and serial ticks are
// bit-identical by construction.
//
// Two implementations share the contract: a portable scalar version and,
// when the build detects -mavx2 support (FX8_HAVE_AVX2), an AVX2 version
// that maps the lane arrays onto 256-bit vectors, eight lanes per chunk
// (chunks may span cluster boundaries — the pass is cluster-agnostic).
// select_lane_pass() picks at runtime — AVX2 when compiled in and the
// CPU reports it, unless the FX8_FORCE_SCALAR environment variable is
// set to anything but "0" (so CI exercises both paths on any runner).
#pragma once

#include <cstdint>

#include "base/types.hpp"
#include "fx8/hot_state.hpp"

namespace repro::fx8 {

/// One fast pass over the first `n_lanes` lanes of a machine's CE block.
/// `fill_ready_mask` is the shared cache's current fill-ready word over
/// global CE ids (cache::SharedCacheHot) — the full grant word, no
/// per-cluster windowing. Returns the bitmask (bit = global CE id) of
/// lanes the pass could not advance — lanes in a transition the caller
/// must run through the per-lane slow path, in service order. Lanes that
/// are idle/done or that the pass advanced are fully updated (bus
/// opcode, countdown, the four per-cycle counters) and must not be
/// ticked again this cycle. Lanes at n_lanes and beyond are never
/// reported slow; implementations may store idle no-op values to them
/// inside the final 8-lane chunk (they are zero on any machine).
using LanePassFn = LaneMask (*)(CeHot& hot, LaneMask fill_ready_mask,
                                std::uint32_t n_lanes);

/// Portable reference implementation.
[[nodiscard]] LaneMask lane_pass_scalar(CeHot& hot, LaneMask fill_ready_mask,
                                        std::uint32_t n_lanes);

#if defined(FX8_HAVE_AVX2)
/// AVX2 implementation (lane_kernel_avx2.cpp, built with -mavx2). Only
/// call when the CPU supports AVX2 — select_lane_pass() checks.
[[nodiscard]] LaneMask lane_pass_avx2(CeHot& hot, LaneMask fill_ready_mask,
                                      std::uint32_t n_lanes);
#endif

/// The pass a machine should use on this host: AVX2 when compiled in and
/// supported by the CPU, scalar otherwise or when the FX8_FORCE_SCALAR
/// environment variable is set (to anything but "0").
[[nodiscard]] LanePassFn select_lane_pass();

/// "avx2" or "scalar" — for bench/report labels.
[[nodiscard]] const char* lane_pass_name(LanePassFn pass);

}  // namespace repro::fx8
