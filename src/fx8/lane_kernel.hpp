// Wide fast pass over the eight CE state lanes.
//
// The three steady-state CE behaviours (compute burn, miss wait, fault
// wait) touch only that lane's CeHot slots plus the cache's fill-ready
// word, so one pass can classify and advance all eight lanes of a rig
// with straight-line arithmetic instead of eight dispatched switches.
// Cluster::tick_batched runs this pass first and drops only the returned
// slow lanes — phase transitions, access issue, stall pick-up — into the
// per-lane tick_slow() path, in exactly the service order Cluster::tick
// would have used. The pass leaves slow lanes completely untouched (their
// bus opcode is rewritten by tick_lane before dispatch), so batched and
// serial ticks are bit-identical by construction.
//
// Two implementations share the contract: a portable scalar version and,
// when the build detects -mavx2 support (FX8_HAVE_AVX2), an AVX2 version
// that maps the lane arrays onto 256-bit vectors. select_lane_pass()
// picks at runtime — AVX2 when compiled in and the CPU reports it, unless
// the FX8_FORCE_SCALAR environment variable is set to anything but "0"
// (so CI exercises both paths on any runner).
#pragma once

#include <cstdint>

#include "fx8/hot_state.hpp"

namespace repro::fx8 {

/// One fast pass over a rig's CE lanes. `fill_ready_mask` is the shared
/// cache's current fill-ready word (cache::SharedCacheHot). Returns the
/// bitmask of lanes the pass could not advance — lanes in a transition
/// the caller must run through Ce::tick_slow(), in service order. Lanes
/// that are idle/done or that the pass advanced are fully updated (bus
/// opcode, countdown, the four per-cycle counters) and must not be
/// ticked again this cycle.
using LanePassFn = std::uint32_t (*)(CeHot& hot,
                                     std::uint32_t fill_ready_mask);

/// Portable reference implementation.
[[nodiscard]] std::uint32_t lane_pass_scalar(CeHot& hot,
                                             std::uint32_t fill_ready_mask);

#if defined(FX8_HAVE_AVX2)
/// AVX2 implementation (lane_kernel_avx2.cpp, built with -mavx2). Only
/// call when the CPU supports AVX2 — select_lane_pass() checks.
[[nodiscard]] std::uint32_t lane_pass_avx2(CeHot& hot,
                                           std::uint32_t fill_ready_mask);
#endif

/// The pass a batch should use on this host: AVX2 when compiled in and
/// supported by the CPU, scalar otherwise or when the FX8_FORCE_SCALAR
/// environment variable is set (to anything but "0").
[[nodiscard]] LanePassFn select_lane_pass();

/// "avx2" or "scalar" — for bench/report labels.
[[nodiscard]] const char* lane_pass_name(LanePassFn pass);

}  // namespace repro::fx8
