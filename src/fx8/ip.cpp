#include "fx8/ip.hpp"

#include <algorithm>

#include "base/expect.hpp"

namespace repro::fx8 {

Ip::Ip(IpId id, const IpConfig& config, Addr region_base,
       cache::IpCache& cache, std::uint64_t seed)
    : id_(id), config_(config), region_base_(region_base), cache_(cache),
      rng_(seed) {
  REPRO_EXPECT(config.duty >= 0.0 && config.duty <= 1.0,
               "IP duty must be a fraction");
  REPRO_EXPECT(config.access_interval > 0, "access interval must be positive");
  REPRO_EXPECT(config.working_set_bytes >= 8, "IP working set too small");
  enter_idle();
}

void Ip::enter_idle() {
  bursting_ = false;
  if (config_.duty >= 1.0) {
    state_left_ = 1;
    return;
  }
  const double idle_mean =
      config_.duty <= 0.0
          ? 1e9
          : config_.mean_burst_cycles * (1.0 - config_.duty) / config_.duty;
  state_left_ = std::max<Cycle>(1, static_cast<Cycle>(
                                       rng_.exponential(idle_mean)));
}

void Ip::enter_burst() {
  bursting_ = true;
  state_left_ = std::max<Cycle>(
      1, static_cast<Cycle>(
             rng_.exponential(static_cast<double>(config_.mean_burst_cycles))));
  access_countdown_ = config_.access_interval;
}

Cycle Ip::quiet_horizon() const {
  if (state_left_ == 0) {
    return 0;  // Period transition (an RNG draw) happens next tick.
  }
  if (!bursting_) {
    return state_left_;
  }
  // Bursting: the access_countdown_'th tick from now issues an access
  // (RNG draws, a cache touch), so stop one short of it.
  return std::min<Cycle>(state_left_, access_countdown_ - 1);
}

void Ip::skip(Cycle cycles) {
  REPRO_EXPECT(cycles <= quiet_horizon(), "IP skip beyond its horizon");
  state_left_ -= cycles;
  if (bursting_) {
    access_countdown_ -= static_cast<std::uint32_t>(cycles);
  }
}

void Ip::tick_slow() {
  if (state_left_ == 0) {
    if (bursting_ || config_.duty <= 0.0) {
      enter_idle();
    } else {
      enter_burst();
    }
  }
  --state_left_;
  if (!bursting_) {
    return;
  }
  if (--access_countdown_ != 0) {
    return;
  }
  access_countdown_ = config_.access_interval;
  if (rng_.bernoulli(config_.jump_prob)) {
    cursor_ = rng_.uniform(config_.working_set_bytes / 8) * 8;
  } else {
    cursor_ = (cursor_ + 8) % config_.working_set_bytes;
  }
  const bool is_write = rng_.bernoulli(config_.write_fraction);
  (void)cache_.access(region_base_ + cursor_, is_write);
  ++accesses_;
}

}  // namespace repro::fx8
