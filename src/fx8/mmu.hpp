// Memory-management interface between the machine and the OS layer.
//
// CEs present virtual addresses. The OS (src/os) supplies the policy —
// page tables, fault accounting, fault service time — through this
// interface, keeping the hardware model free of OS types. The simulator
// indexes the shared cache by virtual address (jobs get disjoint regions,
// so there is no aliasing); the MMU's observable contribution is the page
// faults the kernel counters log, exactly the software measurement the
// paper collected (§3.3).
#pragma once

#include <vector>

#include "base/capsule.hpp"
#include "base/expect.hpp"
#include "base/types.hpp"

namespace repro::fx8 {

class Mmu {
 public:
  virtual ~Mmu() = default;

  /// The CE-facing entry point: touch `addr` on behalf of `job` from
  /// processor `ce` of rig `rig`. A per-(rig, CE) single-entry memo of the
  /// last resident (job, page) skips the virtual touch() call entirely for
  /// the within-page streaming accesses that dominate saturated sessions;
  /// implementations must call invalidate_translations() whenever any
  /// mapping is removed. The memo works at kPageBytes granularity — the
  /// system page size every Mmu implementation shares.
  ///
  /// `rig` distinguishes machines sharing one Mmu inside an fx8::RigBatch
  /// (CE ids repeat across rigs, so a shared memo slot would let one rig's
  /// translation satisfy another's first touch). A machine that owns its
  /// Mmu — every os::System — keeps the default rig 0.
  Cycle translate(JobId job, CeId ce, Addr addr, std::uint32_t rig = 0) {
    Memo& memo = memo_[rig * lanes_ + ce];
    const Addr page = addr / kPageBytes;
    if (memo.epoch == epoch_ && memo.page == page && memo.job == job) {
      return 0;
    }
    const Cycle stall = touch(job, ce, addr, rig);
    // A non-zero return maps the page (see touch), so the page is
    // resident either way and the memo entry is valid.
    memo = {epoch_, job, page};
    return stall;
  }

  /// Touch `addr` on behalf of `job` from processor `ce` of rig `rig`.
  /// Returns the number of cycles the access must stall for fault service
  /// (0 when the page is already mapped). A non-zero return maps the page,
  /// so the retried access will not fault again.
  virtual Cycle touch(JobId job, CeId ce, Addr addr, std::uint32_t rig) = 0;

  /// Grow the per-rig memo stride to cover `n` CE lanes (a machine with
  /// global CE ids up to n-1). Called by Machine at construction; only
  /// ever grows, and the default kMaxCes stride means machines of width
  /// <= 8 never reallocate (keeping the capsule walk byte-stable for
  /// them). Growing wipes the memos — harmless before any activity, and
  /// behaviour-neutral anyway since a memo miss just re-touches a
  /// resident page. Virtual so implementations holding their own per-CE
  /// state (os::VirtualMemory) can widen it in the same call.
  virtual void ensure_lanes(std::uint32_t n) {
    REPRO_EXPECT(n <= kMaxTopologyCes, "lane count beyond topology maximum");
    if (n <= lanes_) {
      return;
    }
    lanes_ = n;
    memo_.assign(static_cast<std::size_t>(kMaxBatchRigs) * lanes_, Memo{});
  }

  /// CE lanes the translation memo currently covers.
  [[nodiscard]] std::uint32_t lanes() const { return lanes_; }

  /// Capsule walk over the per-(rig, CE) translation memos and their
  /// epoch. Derived classes call this from their own serialize().
  void serialize_translation_state(capsule::Io& io) {
    for (Memo& memo : memo_) {
      io.u64(memo.epoch);
      io.u64(memo.job);
      io.u64(memo.page);
    }
    io.u64(epoch_);
  }

 protected:
  /// Drop every memoized translation (some mapping was removed).
  void invalidate_translations() { ++epoch_; }

 private:
  struct Memo {
    std::uint64_t epoch = 0;
    JobId job = 0;
    Addr page = 0;
  };
  std::uint32_t lanes_ = kMaxCes;
  /// Rig-major: rig r's CE c memoizes at slot r * lanes_ + c.
  std::vector<Memo> memo_ =
      std::vector<Memo>(std::size_t{kMaxBatchRigs} * kMaxCes);
  std::uint64_t epoch_ = 1;
};

/// MMU that never faults; used by unit tests of the bare machine.
class NoFaultMmu final : public Mmu {
 public:
  Cycle touch(JobId, CeId, Addr, std::uint32_t) override { return 0; }
};

}  // namespace repro::fx8
