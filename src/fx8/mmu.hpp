// Memory-management interface between the machine and the OS layer.
//
// CEs present virtual addresses. The OS (src/os) supplies the policy —
// page tables, fault accounting, fault service time — through this
// interface, keeping the hardware model free of OS types. The simulator
// indexes the shared cache by virtual address (jobs get disjoint regions,
// so there is no aliasing); the MMU's observable contribution is the page
// faults the kernel counters log, exactly the software measurement the
// paper collected (§3.3).
#pragma once

#include "base/types.hpp"

namespace repro::fx8 {

class Mmu {
 public:
  virtual ~Mmu() = default;

  /// Touch `addr` on behalf of `job` from processor `ce`. Returns the
  /// number of cycles the access must stall for fault service (0 when the
  /// page is already mapped). A non-zero return maps the page, so the
  /// retried access will not fault again.
  virtual Cycle touch(JobId job, CeId ce, Addr addr) = 0;
};

/// MMU that never faults; used by unit tests of the bare machine.
class NoFaultMmu final : public Mmu {
 public:
  Cycle touch(JobId, CeId, Addr) override { return 0; }
};

}  // namespace repro::fx8
