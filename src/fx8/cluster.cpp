#include "fx8/cluster.hpp"

#include <algorithm>
#include <bit>

#include "base/expect.hpp"
#include "base/rng.hpp"

namespace repro::fx8 {

namespace {

double hash_frac(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::vector<CeId> make_order(ServicePolicy policy, std::uint32_t n) {
  std::vector<CeId> order;
  if (policy == ServicePolicy::kOuterFirst && n == kMaxCes) {
    order = {0, 7, 6, 3, 4, 2, 5, 1};
    return order;
  }
  // kAscending, kRotating, and narrow clusters start from 0..n-1;
  // kRotating applies its rotation at tick time.
  for (CeId c = 0; c < n; ++c) {
    order.push_back(c);
  }
  return order;
}

/// Bytes a kernel instance's streaming cursor advances per execution
/// (loads walk the stream; RMW stores revisit the last load).
std::uint64_t stream_bytes_per_instance(const isa::KernelSpec& k) {
  std::uint64_t accesses =
      static_cast<std::uint64_t>(k.steps) * k.loads_per_step;
  if (k.loads_per_step == 0) {
    accesses = static_cast<std::uint64_t>(k.steps) * k.stores_per_step;
  }
  return accesses * k.stride_bytes;
}

}  // namespace

Cluster::Cluster(const ClusterConfig& config, cache::SharedCache& cache,
                 Mmu& mmu, CeId ce_base)
    : config_(config), cache_(cache), ce_base_(ce_base),
      crossbar_(cache.config().banks),
      base_order_(make_order(config.policy, config.n_ces)) {
  REPRO_EXPECT(config.n_ces >= 1 && config.n_ces <= kMaxCes,
               "cluster width must be 1..8");
  REPRO_EXPECT(config.detached_ces < config.n_ces,
               "at least one CE must remain in the cluster");
  REPRO_EXPECT(ce_base + config.n_ces <= kMaxTopologyCes,
               "cluster CE ids exceed the LaneMask range");
  // Detached CEs (the highest ids) never take cluster work: drop them
  // from the service order.
  std::erase_if(base_order_,
                [&](CeId c) { return c >= cluster_width(); });
  ces_.reserve(config.n_ces);
  for (CeId c = 0; c < config.n_ces; ++c) {
    ces_.emplace_back(ce_base + c, cache, crossbar_, mmu,
                      config.icache_bytes);
    lanes_mask_ |= LaneMask{1} << (ce_base + c);
  }
  service_count_ = static_cast<std::uint32_t>(base_order_.size());
  std::copy(base_order_.begin(), base_order_.end(), service_order_.begin());
  rotating_ = config.policy == ServicePolicy::kRotating;
  has_detached_ = config.detached_ces != 0;
  for (const CeId c : base_order_) {
    service_lane_mask_ |= LaneMask{1} << (ce_base + c);
  }
  for (Ce& ce : ces_) {
    ce.bind_hot(own_ce_hot_);
  }
}

void Cluster::refresh_service_order() {
  // Non-rotating policies keep the constructor's copy; only kRotating
  // re-derives the order, once per cycle instead of once per CE visit.
  if (config_.policy != ServicePolicy::kRotating || service_count_ == 0) {
    return;
  }
  const auto rot = static_cast<std::uint32_t>(rotation_ % service_count_);
  for (std::uint32_t i = 0; i < service_count_; ++i) {
    service_order_[i] = base_order_[(i + rot) % service_count_];
  }
}

CeId Cluster::detached_ce(std::uint32_t slot) const {
  REPRO_EXPECT(slot < config_.detached_ces, "detached slot out of range");
  return config_.n_ces - 1 - slot;
}

bool Cluster::detached_busy(std::uint32_t slot) const {
  REPRO_EXPECT(slot < config_.detached_ces, "detached slot out of range");
  return detached_[slot].program != nullptr;
}

void Cluster::load_detached(std::uint32_t slot, const isa::Program* program,
                            JobId job) {
  REPRO_EXPECT(!detached_busy(slot), "detached slot already has a job");
  REPRO_EXPECT(program != nullptr, "cannot load a null program");
  program->validate();
  REPRO_EXPECT(!program->has_concurrency(),
               "detached processes are exclusively serial");
  detached_[slot] = DetachedJob{program, job, 0, 0};
  detached_live_ |= 1u << slot;
  horizon_valid_ = false;
}

void Cluster::run_detached(std::uint32_t slot) {
  DetachedJob& detached = detached_[slot];
  if (detached.program == nullptr) {
    return;
  }
  Ce& ce = ces_[detached_ce(slot)];
  if (ce.done()) {
    ce.take_completed();
    ++detached.reps_done;
    ++stats_.serial_reps_completed;
  }
  if (!ce.idle()) {
    return;
  }
  const auto& phase =
      std::get<isa::SerialPhase>(detached.program->phases[detached.phase_idx]);
  if (detached.reps_done >= phase.reps) {
    detached.reps_done = 0;
    ++detached.phase_idx;
    if (detached.phase_idx >= detached.program->phases.size()) {
      detached.program = nullptr;
      detached_live_ &= ~(1u << slot);
      ++stats_.jobs_completed;
      ++*events_;
      return;
    }
  }
  const auto& current = std::get<isa::SerialPhase>(
      detached.program->phases[detached.phase_idx]);
  KernelInstance inst;
  inst.spec = &current.body;
  inst.job = detached.job;
  inst.key = mix64(detached.program->seed ^
                   (static_cast<std::uint64_t>(detached.phase_idx) << 40) ^
                   (0xDE7AC4EDULL + detached.reps_done));
  inst.data_base = detached.program->data_base;
  inst.code_base = detached.program->data_base + 0x08000000ULL +
                   static_cast<Addr>(detached.phase_idx) * 0x100000ULL;
  inst.stream_start =
      detached.reps_done * stream_bytes_per_instance(current.body) %
      current.body.working_set_bytes;
  ces_[detached_ce(slot)].start(inst);
}

void Cluster::load(const isa::Program* program, JobId job) {
  REPRO_EXPECT(!busy(), "cluster already has a job loaded");
  REPRO_EXPECT(program != nullptr, "cannot load a null program");
  program->validate();
  program_ = program;
  job_ = job;
  phase_idx_ = 0;
  serial_reps_done_ = 0;
  in_loop_ = false;
  in_serial_phase_ = false;
  worker_.fill(WorkerState::kNone);
  deps_waiting_ = 0;
  horizon_valid_ = false;
  if (observer_) {
    observer_->on_job_start(job_, now_);
  }
}

std::uint64_t Cluster::phase_key(std::uint64_t salt) const {
  return mix64(program_->seed ^ (static_cast<std::uint64_t>(phase_idx_) << 40) ^
               salt);
}

Addr Cluster::code_base_for_phase() const {
  // Code images live in a region disjoint from data, one slot per phase.
  return program_->data_base + 0x08000000ULL +
         static_cast<Addr>(phase_idx_) * 0x100000ULL;
}

void Cluster::bind_hot(ClusterHot& hot, CeHot& lanes, std::uint64_t& events) {
  crossbar_.bind_hot(hot.crossbar_taken);
  ccb_.bind_hot(hot.ccb_grants_left);
  for (Ce& ce : ces_) {
    ce.bind_hot(lanes);
  }
  ce_hot_ = &lanes;
  events = *events_;
  events_ = &events;
}

void Cluster::serialize(capsule::Io& io) {
  if (io.loading()) {
    needs_program_rebind_ = false;
    detached_rebind_mask_ = 0;
    detached_live_ = 0;
    horizon_valid_ = false;
  }
  crossbar_.serialize(io);
  ccb_.serialize(io);
  for (Ce& ce : ces_) {
    ce.serialize(io);
  }
  io.u64(rotation_);
  bool busy_flag = program_ != nullptr;
  io.boolean(busy_flag);
  if (io.loading()) {
    program_ = nullptr;
    needs_program_rebind_ = busy_flag;
  }
  io.u64(job_);
  auto phase_idx = static_cast<std::uint64_t>(phase_idx_);
  io.u64(phase_idx);
  phase_idx_ = static_cast<std::size_t>(phase_idx);
  io.u64(serial_reps_done_);
  io.u32(serial_ce_);
  io.boolean(in_loop_);
  io.boolean(in_serial_phase_);
  for (WorkerState& worker : worker_) {
    io.enum32(worker);
  }
  for (std::uint64_t& iter : worker_iter_) {
    io.u64(iter);
  }
  for (std::uint32_t slot = 0; slot < kMaxCes; ++slot) {
    DetachedJob& detached = detached_[slot];
    bool slot_busy = detached.program != nullptr;
    io.boolean(slot_busy);
    if (io.loading()) {
      detached.program = nullptr;
      if (slot_busy) {
        detached_rebind_mask_ |= 1u << slot;
        detached_live_ |= 1u << slot;
      }
    }
    io.u64(detached.job);
    auto detached_phase = static_cast<std::uint64_t>(detached.phase_idx);
    io.u64(detached_phase);
    detached.phase_idx = static_cast<std::size_t>(detached_phase);
    io.u64(detached.reps_done);
  }
  io.u64(stats_.jobs_completed);
  io.u64(stats_.loops_completed);
  io.u64(stats_.iterations_completed);
  io.u64(stats_.serial_reps_completed);
  io.u64(stats_.dependence_wait_cycles);
  io.u32(deps_waiting_);
  io.u64(*events_);
  io.u64(now_);
}

void Cluster::rebind_program(const isa::Program* program) {
  REPRO_EXPECT(needs_program_rebind_, "no cluster program rebind pending");
  REPRO_EXPECT(program != nullptr, "cannot rebind a null program");
  program_ = program;
  needs_program_rebind_ = false;
}

bool Cluster::detached_needs_rebind(std::uint32_t slot) const {
  REPRO_EXPECT(slot < config_.detached_ces, "detached slot out of range");
  return ((detached_rebind_mask_ >> slot) & 1u) != 0;
}

void Cluster::rebind_detached_program(std::uint32_t slot,
                                      const isa::Program* program) {
  REPRO_EXPECT(detached_needs_rebind(slot), "no detached rebind pending");
  REPRO_EXPECT(program != nullptr, "cannot rebind a null program");
  detached_[slot].program = program;
  detached_rebind_mask_ &= ~(1u << slot);
}

void Cluster::finish_job() {
  if (observer_) {
    observer_->on_job_end(job_, now_);
  }
  program_ = nullptr;
  job_ = 0;
  ++stats_.jobs_completed;
  ++*events_;
}

void Cluster::run_serial_phase(const isa::SerialPhase& phase) {
  if (!in_serial_phase_) {
    in_serial_phase_ = true;
    if (observer_) {
      observer_->on_serial_phase_start(
          job_, static_cast<std::uint32_t>(phase_idx_), now_);
    }
  }
  Ce& ce = ces_[serial_ce_];
  if (ce.done()) {
    ce.take_completed();
    ++serial_reps_done_;
    ++stats_.serial_reps_completed;
  }
  if (!ce.idle()) {
    return;
  }
  if (serial_reps_done_ >= phase.reps) {
    serial_reps_done_ = 0;
    in_serial_phase_ = false;
    if (observer_) {
      observer_->on_serial_phase_end(
          job_, static_cast<std::uint32_t>(phase_idx_), now_);
    }
    ++phase_idx_;
    if (phase_idx_ >= program_->phases.size()) {
      finish_job();
    }
    return;
  }
  KernelInstance inst;
  inst.spec = &phase.body;
  inst.job = job_;
  inst.key = phase_key(0xABCD0000ULL + serial_reps_done_);
  inst.data_base = program_->data_base;
  inst.code_base = code_base_for_phase();
  inst.stream_start = serial_reps_done_ * stream_bytes_per_instance(phase.body);
  if (phase.body.working_set_bytes > 0) {
    inst.stream_start %= phase.body.working_set_bytes;
  }
  ce.start(inst);
}

bool Cluster::iteration_has_dependence(const isa::ConcurrentLoopPhase& loop,
                                       std::uint64_t iter) const {
  if (iter == 0 || loop.dependence_prob <= 0.0) {
    return false;
  }
  return hash_frac(mix64(phase_key(0xDE90000ULL) ^ iter)) <
         loop.dependence_prob;
}

void Cluster::start_iteration(CeId ce_id, const isa::ConcurrentLoopPhase& loop,
                              std::uint64_t iter) {
  if (observer_) {
    observer_->on_iteration_start(job_, iter, ce_id, now_);
  }
  KernelInstance inst;
  inst.spec = &loop.body;
  inst.job = job_;
  inst.key = phase_key(0x17E40000ULL) ^ mix64(iter);
  inst.data_base = program_->data_base;
  inst.code_base = code_base_for_phase();
  if (loop.shared_data) {
    // Cyclic element distribution: iteration i reads elements i, i+T,
    // i+2T... so concurrently executing iterations walk the same cache
    // lines together (paper §5.1's cross-CE locality).
    inst.stream_start =
        (iter * loop.body.stride_bytes) % loop.body.working_set_bytes;
    inst.stream_step_bytes = loop.trip_count * loop.body.stride_bytes;
  } else {
    inst.stream_start =
        mix64(inst.key ^ 0x0FF5E7ULL) % loop.body.working_set_bytes /
        loop.body.stride_bytes * loop.body.stride_bytes;
  }
  if (loop.long_path_prob > 0.0 &&
      hash_frac(mix64(inst.key ^ 0xA11CEULL)) < loop.long_path_prob) {
    inst.extra_steps = loop.long_path_extra_steps;
  }
  ces_[ce_id].start(inst);
}

void Cluster::run_concurrent_phase(const isa::ConcurrentLoopPhase& phase) {
  if (!in_loop_) {
    ccb_.start_loop(phase.trip_count, config_.dispatch, cluster_width());
    in_loop_ = true;
    worker_.fill(WorkerState::kNone);
    deps_waiting_ = 0;
    if (observer_) {
      observer_->on_loop_start(job_, static_cast<std::uint32_t>(phase_idx_),
                               phase.trip_count, now_);
    }
  }

  // Service CEs in priority order: completions first so freed iterations
  // unblock dependants within the same cycle, then dependence releases,
  // then dispatch (one CCB grant per cycle).
  for (std::uint32_t i = 0; i < service_count_; ++i) {
    const CeId c = service_order_[i];
    // A lane still executing its iteration (done bit clear) can need
    // nothing from this scan: reap, release, and dispatch all start from
    // another worker state. Skipping it preserves the service order for
    // every lane that does get serviced.
    if (worker_[c] == WorkerState::kExecuting &&
        ((ce_hot_->done_mask >> (ce_base_ + c)) & 1u) == 0) {
      continue;
    }
    Ce& ce = ces_[c];
    if (worker_[c] == WorkerState::kExecuting && ce.done()) {
      ce.take_completed();
      ccb_.mark_complete(worker_iter_[c]);
      if (observer_) {
        observer_->on_iteration_end(job_, worker_iter_[c], c, now_);
      }
      ++stats_.iterations_completed;
      worker_[c] = WorkerState::kNone;
      if (ccb_.all_complete()) {
        serial_ce_ = c;  // Last finisher continues serially (Figure 2).
      }
    }
    if (worker_[c] == WorkerState::kAwaitingDep) {
      ++stats_.dependence_wait_cycles;
      if (ccb_.predecessor_complete(worker_iter_[c])) {
        start_iteration(c, phase, worker_iter_[c]);
        worker_[c] = WorkerState::kExecuting;
        --deps_waiting_;
      }
    }
    if (worker_[c] == WorkerState::kNone && !ccb_.all_dispatched()) {
      if (const auto iter = ccb_.try_dispatch(c)) {
        worker_iter_[c] = *iter;
        if (iteration_has_dependence(phase, *iter) &&
            !ccb_.predecessor_complete(*iter)) {
          worker_[c] = WorkerState::kAwaitingDep;
          ++deps_waiting_;
        } else {
          start_iteration(c, phase, *iter);
          worker_[c] = WorkerState::kExecuting;
        }
      }
    }
  }

  if (ccb_.all_complete()) {
    ccb_.end_loop();
    in_loop_ = false;
    ++stats_.loops_completed;
    if (observer_) {
      observer_->on_loop_end(job_, static_cast<std::uint32_t>(phase_idx_),
                             now_);
    }
    ++phase_idx_;
    if (phase_idx_ >= program_->phases.size()) {
      finish_job();
    }
  }
}

void Cluster::advance_control() {
  if (!busy()) {
    return;
  }
  // Steady-state gate: mid-loop, with every iteration dispatched, nobody
  // awaiting a dependence, and no completion to reap, the concurrent
  // control scan provably does nothing — worker transitions only follow
  // a CE reaching kDone (tracked by the shared done mask), a dependence
  // release (only after a completion), or an undispatched iteration.
  if (in_loop_ && deps_waiting_ == 0 &&
      (ce_hot_->done_mask & service_lane_mask_) == 0 &&
      ccb_.all_dispatched()) {
    return;
  }
  const isa::Phase& phase = program_->phases[phase_idx_];
  if (const auto* serial = std::get_if<isa::SerialPhase>(&phase)) {
    run_serial_phase(*serial);
  } else {
    run_concurrent_phase(std::get<isa::ConcurrentLoopPhase>(phase));
  }
}

inline void Cluster::tick_lane(CeHot& hot, CeId c) {
  // `c` is the cluster-local lane; the hot block is machine-wide,
  // indexed by global CE id.
  const CeId g = ce_base_ + c;
  const CePhase p = static_cast<CePhase>(hot.phase[g]);
  hot.bus_op[g] = mem::CeBusOp::kIdle;
  switch (p) {
    case CePhase::kIdle:
    case CePhase::kDone:
      return;
    case CePhase::kCompute:
      if (hot.compute_left[g] > 0) {
        --hot.compute_left[g];
        ++hot.busy_cycles[g];
        ++hot.compute_cycles[g];
        return;
      }
      break;
    case CePhase::kMissWait:
      if (!cache_.fill_ready(g)) {
        hot.bus_op[g] = mem::CeBusOp::kWait;
        ++hot.busy_cycles[g];
        ++hot.miss_wait_cycles[g];
        return;
      }
      break;
    case CePhase::kFaultWait:
      if (hot.fault_left[g] > 1) {
        --hot.fault_left[g];
        ++hot.busy_cycles[g];
        ++hot.fault_wait_cycles[g];
        return;
      }
      break;
    default:
      break;
  }
  ces_[c].tick_slow();
}

void Cluster::tick_control() {
  if (program_ == nullptr && detached_live_ == 0) {
    // Idle cluster: control has provably nothing to do, every lane is
    // parked, and the crossbar grant word is already clear (the last
    // access any lane issued was followed by a live-cluster cycle whose
    // begin_cycle reset it before the cluster could drain). Only the
    // cycle counters advance; the cached horizon — necessarily
    // kHorizonNever — survives.
    ++rotation_;
    ++now_;
    return;
  }
  // Anything control can do this cycle makes the cached horizon stale.
  horizon_valid_ = false;
  if (rotating_) {
    refresh_service_order();
  }
  crossbar_.begin_cycle();
  if (in_loop_) {
    ccb_.begin_cycle();
  }
  advance_control();
  if (has_detached_ && detached_live_ != 0) {
    for (std::uint32_t slot = 0; slot < config_.detached_ces; ++slot) {
      run_detached(slot);
    }
  }
  // Nothing between here and the lane ticks reads these: the rotation
  // was consumed by refresh_service_order above and observers stamp now_
  // during control, so the counters pre-increment for the next cycle.
  ++rotation_;
  ++now_;
}

void Cluster::tick() {
  tick_control();
  if (program_ == nullptr && detached_live_ == 0) {
    // Every lane is parked with its bus opcode already latched kIdle;
    // ticking them is a provable no-op (the wide path skips these lanes
    // via its live prefix, and the two paths are bit-identical).
    return;
  }
  CeHot& hot = *ce_hot_;
  for (std::uint32_t i = 0; i < service_count_; ++i) {
    tick_lane(hot, service_order_[i]);
  }
  if (has_detached_) {
    for (std::uint32_t slot = 0; slot < config_.detached_ces; ++slot) {
      tick_lane(hot, detached_ce(slot));
    }
  }
}

void Cluster::tick_peel(LaneMask slow) {
  if ((slow & lanes_mask_) == 0) {
    return;
  }
  // Visit this cluster's slow lanes in exactly the order tick() would
  // have reached them: service lanes in service order, then detached.
  CeHot& hot = *ce_hot_;
  for (std::uint32_t i = 0; i < service_count_; ++i) {
    const CeId c = service_order_[i];
    if ((slow >> (ce_base_ + c)) & 1u) {
      tick_lane(hot, c);
    }
  }
  if (has_detached_) {
    for (std::uint32_t slot = 0; slot < config_.detached_ces; ++slot) {
      const CeId c = detached_ce(slot);
      if ((slow >> (ce_base_ + c)) & 1u) {
        tick_lane(hot, c);
      }
    }
  }
}

void Cluster::set_mmu_rig(std::uint32_t rig) {
  for (Ce& ce : ces_) {
    ce.set_mmu_rig(rig);
  }
}

Cycle Cluster::quiet_horizon() const {
  // Every machine advancement either invalidates this cache (a control
  // step on a busy cluster) or updates it exactly (skip), so a valid
  // entry is always the answer the walk below would recompute. Wide
  // machines mostly hold a few busy clusters and many idle ones; the
  // idle ones answer from here in O(1).
  if (horizon_valid_) {
    return horizon_cache_;
  }
  horizon_cache_ = compute_quiet_horizon();
  horizon_valid_ = true;
  return horizon_cache_;
}

Cycle Cluster::compute_quiet_horizon() const {
  Cycle horizon = kHorizonNever;
  if (busy()) {
    const isa::Phase& phase = program_->phases[phase_idx_];
    if (std::holds_alternative<isa::SerialPhase>(phase)) {
      // Serial control acts at phase entry and whenever the continuation
      // CE drains; in between it only watches the CE execute.
      if (!in_serial_phase_) {
        return 0;
      }
      const Ce& ce = ces_[serial_ce_];
      if (ce.done() || ce.idle()) {
        return 0;
      }
      horizon = std::min(horizon, ce.quiet_horizon());
    } else {
      if (!in_loop_) {
        return 0;  // Loop entry (CCB start_loop) happens next tick.
      }
      for (CeId c = 0; c < cluster_width(); ++c) {
        switch (worker_[c]) {
          case WorkerState::kExecuting: {
            const Ce& ce = ces_[c];
            if (ce.done()) {
              return 0;  // Completion to reap (and maybe a loop to end).
            }
            horizon = std::min(horizon, ce.quiet_horizon());
            break;
          }
          case WorkerState::kAwaitingDep:
            if (ccb_.predecessor_complete(worker_iter_[c])) {
              return 0;  // Dependence released; the CE starts next tick.
            }
            break;
          case WorkerState::kNone:
            if (!ccb_.all_dispatched()) {
              return 0;  // A CCB grant is due next tick.
            }
            break;
        }
      }
    }
  }
  if (has_detached_ && detached_live_ != 0) {
    for (std::uint32_t slot = 0; slot < config_.detached_ces; ++slot) {
      if (detached_[slot].program == nullptr) {
        continue;
      }
      const Ce& ce = ces_[detached_ce(slot)];
      if (ce.done() || ce.idle()) {
        return 0;  // Detached control reaps/starts a repetition.
      }
      horizon = std::min(horizon, ce.quiet_horizon());
    }
  }
  return horizon;
}

void Cluster::skip(Cycle cycles) {
  for (Ce& ce : ces_) {
    ce.skip(cycles);
  }
  // Each skipped cycle shrinks every finite member horizon by exactly
  // one (compute/fault countdowns decrement; miss waits and parked lanes
  // are kHorizonNever and cannot flip mid-skip — the bus horizon forces
  // completion ticks to run naively), so the cached minimum just slides.
  if (horizon_valid_ && horizon_cache_ != kHorizonNever) {
    horizon_cache_ -= cycles;
  }
  if (busy() && in_loop_) {
    // Naive ticks bump the dependence-wait counter once per waiting CE
    // per cycle; a quiet stretch cannot release a dependence, so the
    // waiter set is constant across it.
    std::uint64_t waiting = 0;
    for (CeId c = 0; c < cluster_width(); ++c) {
      if (worker_[c] == WorkerState::kAwaitingDep) {
        ++waiting;
      }
    }
    stats_.dependence_wait_cycles += waiting * cycles;
  }
  rotation_ += cycles;
  now_ += cycles;
}

std::uint32_t Cluster::active_mask() const {
  std::uint32_t mask = 0;
  // Detached processes show on the CCB probe as active processors even
  // though they are exclusively serial — the Figure-3 footnote's
  // measurement caveat.
  for (std::uint32_t slot = 0; slot < config_.detached_ces; ++slot) {
    if (detached_[slot].program != nullptr) {
      mask |= 1u << detached_ce(slot);
    }
  }
  if (!busy()) {
    return mask;
  }
  if (in_loop_) {
    const bool contending = !ccb_.all_dispatched();
    for (CeId c = 0; c < cluster_width(); ++c) {
      if (worker_[c] != WorkerState::kNone || contending) {
        mask |= 1u << c;
      }
    }
    return mask;
  }
  return mask | (1u << serial_ce_);
}

std::uint32_t Cluster::active_count() const {
  return static_cast<std::uint32_t>(std::popcount(active_mask()));
}

mem::CeBusOp Cluster::ce_bus_op(CeId ce) const {
  REPRO_EXPECT(ce < config_.n_ces, "CE index out of range");
  return ces_[ce].bus_op();
}

const Ce& Cluster::ce(CeId id) const {
  REPRO_EXPECT(id < config_.n_ces, "CE index out of range");
  return ces_[id];
}

}  // namespace repro::fx8
