// Interactive Processor activity model.
//
// "Interactive Processors handle interactive traffic, operating system
// functions, and I/O" (§3.1). IPs are not the measured resource — the
// study deliberately ran its own control software on an IP to keep
// measurement artifact off the cluster (§3.4) — but their cache misses
// load the shared memory bus and their writes revoke CE-cache copies, so
// the machine model needs their traffic.
//
// An IP alternates exponentially-distributed idle and burst periods; while
// bursting it issues an access to its working set every few cycles.
#pragma once

#include <cstdint>

#include "base/capsule.hpp"
#include "base/rng.hpp"
#include "base/types.hpp"
#include "cache/ip_cache.hpp"

namespace repro::fx8 {

struct IpConfig {
  /// Long-run fraction of time spent bursting.
  double duty = 0.25;
  /// Cycles between accesses within a burst.
  std::uint32_t access_interval = 6;
  /// Fraction of accesses that are writes (these snoop the CE cache).
  double write_fraction = 0.15;
  /// Bytes of the IP's working region.
  std::uint64_t working_set_bytes = 24 * 1024;
  /// Mean burst length in cycles (idle mean derives from duty).
  std::uint32_t mean_burst_cycles = 2000;
  /// Probability an access jumps to a random spot instead of streaming.
  double jump_prob = 0.1;
};

class Ip {
 public:
  Ip(IpId id, const IpConfig& config, Addr region_base,
     cache::IpCache& cache, std::uint64_t seed);

  [[nodiscard]] IpId id() const { return id_; }

  /// Advance one cycle. The steady-state behaviours (idle countdown,
  /// in-burst gap between accesses) are inlined; period transitions and
  /// access issue drop to tick_slow().
  void tick() {
    if (state_left_ > 0 && (!bursting_ || access_countdown_ > 1)) {
      --state_left_;
      if (bursting_) {
        --access_countdown_;
      }
      return;
    }
    tick_slow();
  }

  /// Event-horizon fast-forward: cycles until this IP can next touch the
  /// machine (its cache/bus) or draw randomness — the rest of an idle
  /// period, or the gap to the next in-burst access. 0 = tick naively.
  [[nodiscard]] Cycle quiet_horizon() const;
  /// Bulk-apply `cycles` quiet ticks (countdown bookkeeping only).
  /// Requires cycles <= quiet_horizon().
  void skip(Cycle cycles);

  [[nodiscard]] std::uint64_t accesses_issued() const { return accesses_; }

  /// Capsule walk: RNG stream plus burst/idle progress.
  void serialize(capsule::Io& io) {
    rng_.serialize(io);
    io.boolean(bursting_);
    io.u64(state_left_);
    io.u32(access_countdown_);
    io.u64(cursor_);
    io.u64(accesses_);
  }

 private:
  void tick_slow();
  void enter_idle();
  void enter_burst();

  IpId id_;
  IpConfig config_;
  Addr region_base_;
  cache::IpCache& cache_;
  Rng rng_;
  bool bursting_ = false;
  Cycle state_left_ = 0;
  std::uint32_t access_countdown_ = 0;
  std::uint64_t cursor_ = 0;
  std::uint64_t accesses_ = 0;
};

}  // namespace repro::fx8
