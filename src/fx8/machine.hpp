// Machine facade: the measured Alliant FX/8 (Figure 1).
//
// Wires main memory, the two memory buses, the shared CE cache, the
// cluster (CEs + crossbar + Concurrency Control Bus), and the Interactive
// Processors with their caches, and exposes the *probe surface* — the
// per-cycle signals the DAS 9100 was clipped onto (§3.3):
//   1. each CE's cache-bus opcode,
//   2. the memory-bus opcodes,
//   3. the Concurrency Control Bus activity state of every CE.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "base/types.hpp"
#include "cache/ip_cache.hpp"
#include "cache/shared_cache.hpp"
#include "fx8/cluster.hpp"
#include "fx8/fabric.hpp"
#include "fx8/hot_state.hpp"
#include "fx8/lane_kernel.hpp"
#include "fx8/ip.hpp"
#include "fx8/mmu.hpp"
#include "fx8/topology.hpp"
#include "mem/main_memory.hpp"
#include "mem/memory_bus.hpp"

namespace repro::fx8 {

struct MachineConfig {
  mem::MainMemoryConfig memory;
  mem::MemoryBusConfig membus;
  cache::SharedCacheConfig shared_cache;
  ClusterConfig cluster;
  IpConfig ip;
  std::uint32_t n_ips = 2;
  std::uint64_t seed = 0x1987;
  /// Machine topology: cluster count and total CE width (0-valued fields
  /// inherit the legacy single-cluster fields above — see
  /// fx8/topology.hpp). The default is the measured machine's one
  /// cluster.
  TopologyConfig topology;

  /// The measured machine: 8 CEs, 2 IPs, 128 KB shared cache (the CSRD
  /// configuration of Figure 1).
  static MachineConfig fx8();
  /// Entry configuration: 1 CE, 1 IP (the FX/1 of Appendix C).
  static MachineConfig fx1();
  /// Width-scaling presets: 2/4/8 FX/8-style clusters sharing a banked
  /// cache through the cluster fabric, with cache capacity, interleave,
  /// and memory buses scaled alongside (docs/topology.md).
  static MachineConfig fx16();
  static MachineConfig fx32();
  static MachineConfig fx64();
};

class Machine {
 public:
  Machine(const MachineConfig& config, Mmu& mmu);

  /// Advance the whole machine one cycle.
  void tick();
  /// Convenience: tick `cycles` times.
  void run(Cycle cycles);

  // --- Fused hot-tick kernel ------------------------------------------
  /// Advance up to `max_cycles` cycles through the fused per-cycle loop,
  /// stopping early at the end of the cycle that completes a cluster or
  /// detached job (a control event the OS layer reacts to). Returns the
  /// number of cycles actually advanced (>= 1 when max_cycles >= 1).
  /// Bit-identical to calling tick() that many times; the caller must
  /// guarantee no OS/workload action is due during the block, exactly as
  /// for the cycles a SessionController runs between probe latch points.
  Cycle tick_block(Cycle max_cycles);

  // --- Event-horizon fast-forward -------------------------------------
  /// Minimum quiet horizon across the cluster, the IPs, the memory buses,
  /// and the shared cache: the machine's externally visible behaviour is
  /// a pure repeat for this many cycles (docs/parallel_execution.md).
  [[nodiscard]] Cycle quiet_horizon() const;
  /// Bulk-advance `cycles` quiet cycles; bit-identical to run(cycles).
  /// Requires cycles <= quiet_horizon().
  void skip(Cycle cycles);

  [[nodiscard]] Cycle now() const { return hot_state_.now; }

  /// Cluster 0 — the whole machine on every width-<=8 configuration.
  /// Single-cluster call sites keep using this accessor unchanged.
  [[nodiscard]] Cluster& cluster() { return *clusters_[0]; }
  [[nodiscard]] const Cluster& cluster() const { return *clusters_[0]; }
  [[nodiscard]] Cluster& cluster(std::uint32_t i) { return *clusters_[i]; }
  [[nodiscard]] const Cluster& cluster(std::uint32_t i) const {
    return *clusters_[i];
  }
  [[nodiscard]] std::uint32_t n_clusters() const {
    return static_cast<std::uint32_t>(clusters_.size());
  }
  /// Total CE count across clusters (the machine width N).
  [[nodiscard]] std::uint32_t total_ces() const { return topology_.total_ces; }
  [[nodiscard]] const ResolvedTopology& topology() const { return topology_; }
  /// Second-level bank arbiter; nullptr on single-cluster machines.
  [[nodiscard]] const ClusterFabric* fabric() const { return fabric_.get(); }
  [[nodiscard]] cache::SharedCache& shared_cache() { return *shared_cache_; }
  [[nodiscard]] const cache::SharedCache& shared_cache() const {
    return *shared_cache_;
  }
  [[nodiscard]] mem::MemoryBus& membus() { return *membus_; }
  [[nodiscard]] mem::MainMemory& memory() { return *memory_; }
  [[nodiscard]] std::vector<Ip>& ips() { return ips_; }
  [[nodiscard]] const MachineConfig& config() const { return config_; }

  // --- Probe surface -------------------------------------------------
  /// `ce` is the machine-global id — also its lane index in the
  /// machine-wide hot block, so the probe reads the latched opcode
  /// straight out of the lane array (the DAS latches every CE channel
  /// each sample clock; a per-call cluster hop would dominate wide
  /// acquisitions).
  [[nodiscard]] mem::CeBusOp ce_bus_op(CeId ce) const {
    return hot_state_.lanes.bus_op[ce];
  }
  [[nodiscard]] mem::MemBusOp mem_bus_op(std::uint32_t bus) const {
    return membus_->op_on(bus);
  }
  /// Effective memory-bus count (after any topology override).
  [[nodiscard]] std::uint32_t mem_bus_count() const {
    return membus_->config().bus_count;
  }
  /// CCB probe: bitmask of concurrent/serial-active CEs over global ids
  /// (each cluster's local mask shifted to its ce_base).
  [[nodiscard]] LaneMask active_mask() const {
    LaneMask mask = 0;
    for (const auto& cluster : clusters_) {
      // A cluster with no job and no live detached slot contributes no
      // active lines — skip its worker/detached scan.
      if (cluster->lanes_live()) {
        mask |= static_cast<LaneMask>(cluster->active_mask())
                << cluster->ce_base();
      }
    }
    return mask;
  }

  /// Capsule walk over the full machine: memory, buses, caches, cluster,
  /// IPs, and the machine clock. Program pointers inside the cluster
  /// travel as rebind-pending flags (see Cluster::serialize).
  void serialize(capsule::Io& io);

  /// Lane pass the multi-cluster tick_block runs over the machine-wide
  /// hot block (select_lane_pass() by default). Exposed so differential
  /// tests can pin the scalar pass against the dispatched one.
  [[nodiscard]] LanePassFn lane_pass() const { return lane_pass_; }
  void set_lane_pass(LanePassFn pass) { lane_pass_ = pass; }

  /// Rig lane this machine's CEs present to the MMU translation memo.
  /// Machines sharing one Mmu inside a RigBatch must carry distinct
  /// indices (< kMaxBatchRigs) so their memo slots never cross-hit; a
  /// machine owning its Mmu keeps the default 0. See Ce::set_mmu_rig.
  void set_mmu_rig(std::uint32_t rig) {
    for (auto& cluster : clusters_) {
      cluster->set_mmu_rig(rig);
    }
  }

 private:
  /// The lockstep batch driver replays tick_block's loop across several
  /// machines and needs the per-cycle component sequence (fx8/rig_batch).
  friend class RigBatch;

  MachineConfig config_;
  ResolvedTopology topology_;
  std::unique_ptr<mem::MainMemory> memory_;
  std::unique_ptr<mem::MemoryBus> membus_;
  std::unique_ptr<cache::SharedCache> shared_cache_;
  /// Second-level bank arbiter; only constructed for n_clusters > 1 so
  /// the single-cluster machine is byte-for-byte the pre-topology path.
  std::unique_ptr<ClusterFabric> fabric_;
  std::vector<std::unique_ptr<Cluster>> clusters_;
  /// Raw mirror of clusters_ so the per-cycle loops index a flat pointer
  /// array instead of hopping through unique_ptr storage.
  std::vector<Cluster*> cluster_ptrs_;
  /// Machine-wide lane pass used by the multi-cluster tick_block.
  LanePassFn lane_pass_;
  std::vector<std::unique_ptr<cache::IpCache>> ip_caches_;
  std::vector<Ip> ips_;
  /// Contiguous per-tick hot state; every component's hot slice points in
  /// here after the constructor binds them (fx8/hot_state.hpp).
  HotState hot_state_;
};

}  // namespace repro::fx8
