// The Computational Cluster: eight CEs, the Concurrency Control Bus, and
// the program control that maps phases onto them.
//
// Serial phases run on the continuation CE; concurrent DO-loop phases are
// self-scheduled over the CCB (Figure 2). The CE that completes the last
// iteration of a loop becomes the continuation CE for the following serial
// phase — "and need not be the same processor that entered the loop
// serially" (§3.2).
//
// The service order in which CEs are polled each cycle doubles as the
// hardware priority: earlier CEs win crossbar routing and CCB grants on
// ties. The default order favours CE7 and CE0, the asymmetry the paper
// observed in transition periods (Figure 7); an evenly rotating order is
// available as the ablation.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "base/types.hpp"
#include "cache/shared_cache.hpp"
#include "fx8/ccb.hpp"
#include "fx8/ce.hpp"
#include "fx8/crossbar.hpp"
#include "fx8/hot_state.hpp"
#include "fx8/mmu.hpp"
#include "isa/program.hpp"

namespace repro::fx8 {

/// How CEs are prioritized when several contend in the same cycle.
enum class ServicePolicy : std::uint8_t {
  /// Fixed order favouring the outermost CEs: 7,0,6,1,5,2,4,3. This is the
  /// asymmetric priority the measured machine exhibits (Figure 7).
  kOuterFirst,
  /// Fixed ascending order 0..7 (every tie resolved identically).
  kAscending,
  /// Order rotates by one each cycle (fair round-robin) — the ablation
  /// that flattens the per-CE transition activity profile.
  kRotating,
};

struct ClusterConfig {
  std::uint32_t n_ces = kMaxCes;
  ServicePolicy policy = ServicePolicy::kOuterFirst;
  /// Loop-iteration dispatch: hardware self-scheduling (the machine's
  /// behaviour) or compile-time static chunking (the ablation).
  DispatchPolicy dispatch = DispatchPolicy::kSelfScheduled;
  std::uint64_t icache_bytes = 16 * 1024;
  /// CEs detached from the cluster to run exclusively-serial processes
  /// (the highest-numbered ids). The Figure-3 footnote: "Detached
  /// processes (exclusively serial) may constitute a portion of these
  /// states." Default 0 = the whole complex forms one cluster, the
  /// measured CSRD configuration.
  std::uint32_t detached_ces = 0;
};

struct ClusterStats {
  std::uint64_t jobs_completed = 0;
  std::uint64_t loops_completed = 0;
  std::uint64_t iterations_completed = 0;
  std::uint64_t serial_reps_completed = 0;
  std::uint64_t dependence_wait_cycles = 0;
};

/// Marker-event hook: the "special event marker instructions embedded in
/// programs" of the paper's related work (§2.1 [16][17]). The cluster
/// invokes these at job/phase/iteration boundaries; src/trace builds
/// composite traces from them. All callbacks default to no-ops.
class ClusterObserver {
 public:
  virtual ~ClusterObserver() = default;
  virtual void on_job_start(JobId, Cycle) {}
  virtual void on_job_end(JobId, Cycle) {}
  virtual void on_serial_phase_start(JobId, std::uint32_t /*phase*/, Cycle) {}
  virtual void on_serial_phase_end(JobId, std::uint32_t /*phase*/, Cycle) {}
  virtual void on_loop_start(JobId, std::uint32_t /*phase*/,
                             std::uint64_t /*trip*/, Cycle) {}
  virtual void on_loop_end(JobId, std::uint32_t /*phase*/, Cycle) {}
  virtual void on_iteration_start(JobId, std::uint64_t /*iter*/, CeId,
                                  Cycle) {}
  virtual void on_iteration_end(JobId, std::uint64_t /*iter*/, CeId,
                                Cycle) {}
};

class Cluster {
 public:
  /// `ce_base` is the machine-global id of the cluster's lane 0: member
  /// CEs get global ids ce_base..ce_base+n_ces-1 (cache MSHRs, MMU memos,
  /// probe channels) while every cluster-internal structure stays
  /// lane-indexed 0..n_ces-1. Single-cluster machines and standalone
  /// tests keep the default 0, where lane == global id.
  Cluster(const ClusterConfig& config, cache::SharedCache& cache, Mmu& mmu,
          CeId ce_base = 0);

  /// Load a job onto the cluster. Requires !busy().
  void load(const isa::Program* program, JobId job);

  /// True while a job is loaded and unfinished.
  [[nodiscard]] bool busy() const { return program_ != nullptr; }

  /// Advance one cycle (program control, CCB, crossbar, all CEs).
  void tick();

  /// The control half of tick(): service-order refresh, crossbar/CCB
  /// begin_cycle, program control, detached control, and the cycle
  /// counters — everything except the per-lane CE advancement. The wide
  /// machine paths (Machine::tick_block, fx8::RigBatch) run this for
  /// every cluster, then one machine-wide lane pass
  /// (fx8/lane_kernel.hpp), then tick_peel for the pass's slow lanes.
  /// tick() == tick_control() + every lane's tick_lane.
  void tick_control();

  /// Run the per-lane tick path for this cluster's lanes flagged in the
  /// machine-wide `slow` mask (bit = global CE id), in exactly the
  /// service order tick() would have used (service lanes first, then
  /// detached). No-op when none of this cluster's bits are set. Only
  /// valid right after tick_control() in the same cycle, with every
  /// other lane already advanced by the wide pass.
  void tick_peel(LaneMask slow);

  /// Forward Machine::set_mmu_rig to every CE (see Ce::set_mmu_rig).
  void set_mmu_rig(std::uint32_t rig);

  // --- Event-horizon fast-forward -------------------------------------
  /// Cycles for which the whole cluster (program control, CCB, detached
  /// slots, every CE) is guaranteed to repeat its current behaviour:
  /// the minimum of the member CE horizons, 0 whenever control would act
  /// (a completion to reap, an iteration to dispatch, a dependence to
  /// release, a phase to start). See docs/parallel_execution.md.
  [[nodiscard]] Cycle quiet_horizon() const;
  /// Bulk-apply `cycles` ticks of quiet behaviour: advances every CE,
  /// accumulates dependence-wait cycles, the rotation counter, and the
  /// cluster clock. Requires cycles <= quiet_horizon().
  void skip(Cycle cycles);

  /// Bitmask of CEs "active" in the paper's CCB-probe sense: executing
  /// serial code, or participating in a concurrent operation (holding an
  /// iteration, awaiting a dependence, or contending for one while
  /// undispatched iterations remain).
  [[nodiscard]] std::uint32_t active_mask() const;

  /// Number of active CEs this cycle (popcount of active_mask).
  [[nodiscard]] std::uint32_t active_count() const;

  [[nodiscard]] mem::CeBusOp ce_bus_op(CeId ce) const;
  [[nodiscard]] const Ce& ce(CeId id) const;
  [[nodiscard]] const ConcurrencyControlBus& ccb() const { return ccb_; }
  [[nodiscard]] Crossbar& crossbar() { return crossbar_; }
  [[nodiscard]] const ClusterStats& stats() const { return stats_; }
  [[nodiscard]] std::uint32_t width() const { return config_.n_ces; }
  [[nodiscard]] CeId continuation_ce() const { return serial_ce_; }
  /// Machine-global id of lane 0 (ce(lane).id() == ce_base() + lane).
  [[nodiscard]] CeId ce_base() const { return ce_base_; }

  /// Attach/detach a marker-event observer (nullptr detaches). The
  /// observer must outlive the cluster or be detached first.
  void set_observer(ClusterObserver* observer) { observer_ = observer; }

  /// Re-point the cluster's hot state at the machine's contiguous
  /// hot-state block: the crossbar grant mask and CCB grant budget at
  /// the cluster's slice, every CE's lanes at the machine-wide lane
  /// block (`lanes`, indexed by global CE id), and the control-event
  /// counter at the machine-wide counter (shared by all clusters).
  /// Copies current values.
  void bind_hot(ClusterHot& hot, CeHot& lanes, std::uint64_t& events);

  /// Monotone count of control events the OS layer can react to: a
  /// cluster job or a detached job completing. Machine::tick_block stops
  /// at the end of the cycle that bumps this (see fx8/hot_state.hpp).
  [[nodiscard]] std::uint64_t control_events() const { return *events_; }

  /// True while the cluster has any work (a cluster job or a live
  /// detached slot). While false, every lane is parked — phases
  /// kIdle/kDone with bus opcodes already latched kIdle — so the wide
  /// machine paths can drop the cluster's lanes from the per-cycle pass
  /// without changing a byte of state.
  [[nodiscard]] bool lanes_live() const {
    return program_ != nullptr || detached_live_ != 0;
  }
  /// One past this cluster's highest global CE id (the pass-prefix bound
  /// the wide paths take the max of over live clusters).
  [[nodiscard]] CeId lane_end() const { return ce_base_ + config_.n_ces; }

  // --- Detached CEs ---------------------------------------------------
  /// CEs participating in cluster (loop) execution.
  [[nodiscard]] std::uint32_t cluster_width() const {
    return config_.n_ces - config_.detached_ces;
  }
  [[nodiscard]] std::uint32_t detached_count() const {
    return config_.detached_ces;
  }
  /// The CE a detached slot owns (slot 0 = highest CE id).
  [[nodiscard]] CeId detached_ce(std::uint32_t slot) const;
  [[nodiscard]] bool detached_busy(std::uint32_t slot) const;
  /// Run an exclusively-serial program on a detached CE. Requires a free
  /// slot and a program with no concurrent phases.
  void load_detached(std::uint32_t slot, const isa::Program* program,
                     JobId job);

  // --- Capsules -------------------------------------------------------
  /// Capsule walk over the cluster's runtime state. Program pointers
  /// travel as busy flags: loading leaves them null with a rebind
  /// pending, and the program's owner (the scheduler, which serializes
  /// after the machine) re-attaches its storage via the rebind calls.
  void serialize(capsule::Io& io);

  /// True after a capsule load until rebind_program() re-attaches the
  /// running cluster job's program storage.
  [[nodiscard]] bool needs_program_rebind() const {
    return needs_program_rebind_;
  }
  void rebind_program(const isa::Program* program);
  [[nodiscard]] bool detached_needs_rebind(std::uint32_t slot) const;
  void rebind_detached_program(std::uint32_t slot,
                               const isa::Program* program);

 private:
  enum class WorkerState : std::uint8_t { kNone, kAwaitingDep, kExecuting };

  struct DetachedJob {
    const isa::Program* program = nullptr;
    JobId job = 0;
    std::size_t phase_idx = 0;
    std::uint64_t reps_done = 0;
  };

  void advance_control();
  /// The uncached horizon walk behind quiet_horizon().
  [[nodiscard]] Cycle compute_quiet_horizon() const;
  /// The fused per-lane fast path — the lane-resident mirror of
  /// Ce::tick(). Steady-state lanes touch only the shared CeHot block
  /// (plus the cache's fill-ready word); transitions drop into the
  /// owning Ce's tick_slow(). Defined inline in cluster.cpp.
  void tick_lane(CeHot& hot, CeId c);
  void refresh_service_order();
  void run_detached(std::uint32_t slot);
  void run_serial_phase(const isa::SerialPhase& phase);
  void run_concurrent_phase(const isa::ConcurrentLoopPhase& phase);
  void start_iteration(CeId ce, const isa::ConcurrentLoopPhase& loop,
                       std::uint64_t iter);
  [[nodiscard]] bool iteration_has_dependence(
      const isa::ConcurrentLoopPhase& loop, std::uint64_t iter) const;
  [[nodiscard]] std::uint64_t phase_key(std::uint64_t salt) const;
  [[nodiscard]] Addr code_base_for_phase() const;
  void finish_job();

  ClusterConfig config_;
  cache::SharedCache& cache_;
  /// Global CE id of lane 0 (cluster index * ces-per-cluster).
  CeId ce_base_ = 0;
  Crossbar crossbar_;
  ConcurrencyControlBus ccb_;
  std::vector<Ce> ces_;
  /// Hoisted feature flags so tick() skips whole branches when a feature
  /// is off (kRotating service order, detached slots) instead of
  /// re-deriving the answer every cycle.
  bool rotating_ = false;
  bool has_detached_ = false;
  std::vector<CeId> base_order_;
  std::uint64_t rotation_ = 0;
  /// This cycle's service order (base_order_ rotated for kRotating;
  /// refreshed once per tick so the hot loops index a flat array instead
  /// of recomputing the rotation per CE).
  std::array<CeId, kMaxCes> service_order_{};
  std::uint32_t service_count_ = 0;

  const isa::Program* program_ = nullptr;
  JobId job_ = 0;
  std::size_t phase_idx_ = 0;
  std::uint64_t serial_reps_done_ = 0;
  CeId serial_ce_ = 0;
  bool in_loop_ = false;
  bool in_serial_phase_ = false;
  std::array<WorkerState, kMaxCes> worker_{};
  std::array<std::uint64_t, kMaxCes> worker_iter_{};

  std::array<DetachedJob, kMaxCes> detached_{};
  /// Set by a capsule load while program pointers await re-attachment.
  bool needs_program_rebind_ = false;
  std::uint32_t detached_rebind_mask_ = 0;

  ClusterStats stats_;
  /// The cluster's CEs always share one CeHot block, indexed by global
  /// CE id (the constructor binds them to own_ce_hot_; Machine::bind_hot
  /// re-points them at the machine-wide block), so control can poll the
  /// shared done_mask instead of every CE.
  CeHot own_ce_hot_;
  CeHot* ce_hot_ = &own_ce_hot_;
  /// Bitmask (global CE ids) of the lanes participating in cluster
  /// (non-detached) work.
  LaneMask service_lane_mask_ = 0;
  /// Bitmask (global CE ids) of every lane this cluster owns — the
  /// cluster's window into a machine-wide slow mask.
  LaneMask lanes_mask_ = 0;
  /// Detached slots currently running a job (bit = slot index). Lets
  /// tick_control() and quiet_horizon() skip the slot walk (and keep the
  /// horizon cache valid) on clusters with nothing detached running.
  std::uint32_t detached_live_ = 0;
  /// Cached quiet_horizon() value. Valid until the next control step
  /// that can act (tick_control invalidates whenever the cluster has a
  /// program or a live detached job); skip() updates it exactly, since
  /// every skipped cycle shrinks each member horizon by exactly one.
  mutable Cycle horizon_cache_ = 0;
  mutable bool horizon_valid_ = false;
  /// Workers currently in WorkerState::kAwaitingDep. Together with the
  /// done mask and the CCB dispatch cursor this tells the concurrent
  /// control scan when it has provably nothing to do this cycle.
  std::uint32_t deps_waiting_ = 0;
  /// Control-event counter; points into HotState once bound.
  std::uint64_t own_events_ = 0;
  std::uint64_t* events_ = &own_events_;
  ClusterObserver* observer_ = nullptr;
  /// Cluster-local clock; advances with tick() and timestamps marker
  /// events (equals Machine::now() when ticked by the machine).
  Cycle now_ = 0;
};

}  // namespace repro::fx8
