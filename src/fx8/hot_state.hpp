// The machine's contiguous per-tick hot-state block.
//
// Everything the per-cycle simulation path mutates every machine cycle —
// the CE state lanes, the crossbar grant mask, the CCB grant budget, the
// shared-cache miss/fill masks, and the memory-bus countdowns — lives in
// this one structure-of-arrays block instead of being scattered across
// the component objects. The components keep their cold state (queues,
// line arrays, configs, lifetime counters) and hold a pointer into their
// slice of this block, so the fused tick kernel (Machine::tick_block)
// walks a few adjacent cache lines per cycle instead of eight-plus
// objects.
//
// Components constructed standalone (unit tests) fall back to a private
// instance of their hot struct; Machine::bind_hot re-points every member
// at this block right after construction. Binding copies the current
// values, so it is transparent at any point in a component's life.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "base/types.hpp"
#include "cache/hot.hpp"
#include "mem/bus_ops.hpp"
#include "mem/hot.hpp"

namespace repro::fx8 {

/// The CE execution phases. Lives here (not in Ce) so the cluster's
/// fused lane kernel can interpret the phase lanes directly.
enum class CePhase : std::uint8_t {
  kIdle,
  kStepSetup,   ///< Derive compute/access budget for the next step.
  kIFetch,      ///< Issue a spilled instruction fetch.
  kCompute,     ///< Burn compute cycles.
  kAccess,      ///< Issue data accesses.
  kMissWait,    ///< Outstanding shared-cache miss.
  kFaultWait,   ///< Page-fault service stall.
  kDone,
};

/// Machine-wide per-CE state lanes, one slot per *global CE id* —
/// cluster-major, 0..kMaxTopologyCes-1, matching base::LaneMask bit
/// positions (SoA). The values are the hot subset of Ce: the phase
/// discriminant the cluster polls, the bus opcode the probe latches, and
/// the countdowns the three stall fast paths decrement. Stats and the
/// streaming/pending cold state stay in Ce. Every cluster's lanes live
/// contiguously in one block (HotState::lanes) so a single wide pass
/// (fx8/lane_kernel.hpp) sweeps all clusters' steady-state lanes in one
/// call; unused lanes beyond the machine width stay zero (kIdle).
struct CeHot {
  std::array<std::uint8_t, kMaxTopologyCes> phase{};  ///< CePhase values.
  std::array<mem::CeBusOp, kMaxTopologyCes> bus_op{};
  std::array<std::uint32_t, kMaxTopologyCes> compute_left{};
  std::array<Cycle, kMaxTopologyCes> fault_left{};
  /// The four per-cycle CeStats counters. They live in lanes so a
  /// steady-state tick touches only this block — the Ce object itself
  /// stays untouched on the fast path.
  std::array<std::uint64_t, kMaxTopologyCes> busy_cycles{};
  std::array<std::uint64_t, kMaxTopologyCes> compute_cycles{};
  std::array<std::uint64_t, kMaxTopologyCes> miss_wait_cycles{};
  std::array<std::uint64_t, kMaxTopologyCes> fault_wait_cycles{};
  /// One bit per global CE id, set while that CE's phase is kDone.
  /// Maintained by Ce::set_phase so a cluster's control scan can test
  /// "any completion to reap?" in O(1) instead of polling every CE.
  LaneMask done_mask = 0;
};

/// One cluster's slice of the hot block: its crossbar grant word and its
/// CCB grant budget. The CE lanes live machine-wide in HotState::lanes.
struct ClusterHot {
  /// Crossbar: banks granted this cycle (one bit per bank).
  std::uint64_t crossbar_taken = 0;
  /// CCB: iteration-dispatch grants left this cycle.
  std::uint32_t ccb_grants_left = 0;
};

struct HotState {
  /// Every cluster's CE lanes in one cluster-major block (lane index =
  /// global CE id = ce_base + local lane), so the wide lane pass covers
  /// the whole machine in one call.
  CeHot lanes;
  /// One slice per cluster, sized at Machine construction from the
  /// resolved topology (default: the FX/8's single cluster).
  std::vector<ClusterHot> clusters = std::vector<ClusterHot>(1);
  cache::SharedCacheHot cache;
  mem::BusHot bus;
  /// Monotone count of cluster control events (job / detached-job
  /// completions) — everything the OS layer can react to. tick_block
  /// stops at the end of the cycle that bumps this so the scheduler's
  /// next tick runs naively, exactly as lockstep ticking would.
  std::uint64_t cluster_events = 0;
  /// The machine clock (Machine::now()).
  Cycle now = 0;
};

}  // namespace repro::fx8
