// AVX2 lane pass: the only translation unit built with -mavx2, so the
// vector kernel can inline intrinsics while the rest of the build stays
// baseline-ISA. Only reached through select_lane_pass(), which verifies
// CPU support at runtime.
#include "fx8/lane_kernel.hpp"

#if defined(FX8_HAVE_AVX2)

#include <immintrin.h>

namespace repro::fx8 {

namespace {

/// Widen the low/high four 32-bit lanes of a mask vector to 64-bit lanes
/// (lane masks are 0 or -1, so sign extension widens them exactly).
inline __m256i mask_lo64(__m256i m32) {
  return _mm256_cvtepi32_epi64(_mm256_castsi256_si128(m32));
}
inline __m256i mask_hi64(__m256i m32) {
  return _mm256_cvtepi32_epi64(_mm256_extracti128_si256(m32, 1));
}

/// counters[lane] += 1 on every lane whose mask is -1 (subtracting the
/// mask adds one exactly there).
inline void bump(std::uint64_t* counters, __m256i m_lo, __m256i m_hi) {
  auto* lo = reinterpret_cast<__m256i*>(counters);
  auto* hi = reinterpret_cast<__m256i*>(counters + 4);
  _mm256_storeu_si256(lo, _mm256_sub_epi64(_mm256_loadu_si256(lo), m_lo));
  _mm256_storeu_si256(hi, _mm256_sub_epi64(_mm256_loadu_si256(hi), m_hi));
}

/// One eight-lane chunk of the wide pass, at lane offset `base` (global
/// CE ids base..base+7). `fill_ready8` is the fill-ready word's 8-bit
/// window for those lanes. Returns the chunk's slow byte.
inline std::uint32_t lane_chunk_avx2(CeHot& hot, std::uint32_t base,
                                     std::uint32_t fill_ready8) {
  const __m256i zero = _mm256_setzero_si256();
  // Widen the phase bytes to one 32-bit lane per CE.
  const __m128i phase8 = _mm_loadl_epi64(
      reinterpret_cast<const __m128i*>(hot.phase.data() + base));
  const __m256i phase = _mm256_cvtepu8_epi32(phase8);
  const auto is_phase = [&phase](CePhase p) {
    return _mm256_cmpeq_epi32(phase,
                              _mm256_set1_epi32(static_cast<int>(p)));
  };

  // compute_ok: kCompute with a nonzero budget.
  auto* compute_left =
      reinterpret_cast<__m256i*>(hot.compute_left.data() + base);
  const __m256i cleft = _mm256_loadu_si256(compute_left);
  const __m256i compute_ok = _mm256_andnot_si256(
      _mm256_cmpeq_epi32(cleft, zero), is_phase(CePhase::kCompute));

  // miss_ok: kMissWait with no fill ready on that lane.
  const __m256i lane_bits = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  const __m256i fill_ready = _mm256_cmpeq_epi32(
      _mm256_and_si256(
          _mm256_set1_epi32(static_cast<int>(fill_ready8)), lane_bits),
      lane_bits);
  const __m256i miss_ok =
      _mm256_andnot_si256(fill_ready, is_phase(CePhase::kMissWait));

  // fault_ok: kFaultWait with fault_left > 1. fault_left is 64-bit
  // (Cycle) but holds small service times, so the signed compare is
  // exact.
  auto* fault_left = reinterpret_cast<__m256i*>(hot.fault_left.data() + base);
  const __m256i one64 = _mm256_set1_epi64x(1);
  const __m256i fl_lo = _mm256_loadu_si256(fault_left);
  const __m256i fl_hi = _mm256_loadu_si256(fault_left + 1);
  const __m256i is_fault = is_phase(CePhase::kFaultWait);
  const __m256i fault_lo = _mm256_and_si256(
      _mm256_cmpgt_epi64(fl_lo, one64), mask_lo64(is_fault));
  const __m256i fault_hi = _mm256_and_si256(
      _mm256_cmpgt_epi64(fl_hi, one64), mask_hi64(is_fault));
  // Narrow fault_ok to 32-bit lanes: each 64-bit mask is uniform, so the
  // even dwords carry it whole.
  const __m256i fault_ok = _mm256_blend_epi32(
      _mm256_permutevar8x32_epi32(
          fault_lo, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0)),
      _mm256_permutevar8x32_epi32(
          fault_hi, _mm256_setr_epi32(0, 0, 0, 0, 0, 2, 4, 6)),
      0xF0);

  const __m256i fast =
      _mm256_or_si256(_mm256_or_si256(compute_ok, miss_ok), fault_ok);
  const __m256i parked =
      _mm256_or_si256(is_phase(CePhase::kIdle), is_phase(CePhase::kDone));

  // Apply the fast-lane updates. Slow lanes have every mask clear, so
  // their slots store back unchanged.
  _mm256_storeu_si256(compute_left, _mm256_add_epi32(cleft, compute_ok));
  _mm256_storeu_si256(fault_left, _mm256_add_epi64(fl_lo, fault_lo));
  _mm256_storeu_si256(fault_left + 1, _mm256_add_epi64(fl_hi, fault_hi));
  bump(hot.busy_cycles.data() + base, mask_lo64(fast), mask_hi64(fast));
  bump(hot.compute_cycles.data() + base, mask_lo64(compute_ok),
       mask_hi64(compute_ok));
  bump(hot.miss_wait_cycles.data() + base, mask_lo64(miss_ok),
       mask_hi64(miss_ok));
  bump(hot.fault_wait_cycles.data() + base, mask_lo64(fault_ok),
       mask_hi64(fault_ok));

  const auto m_fast = static_cast<std::uint32_t>(
      _mm256_movemask_ps(_mm256_castsi256_ps(fast)));
  const auto m_parked = static_cast<std::uint32_t>(
      _mm256_movemask_ps(_mm256_castsi256_ps(parked)));
  const std::uint32_t slow = ~(m_fast | m_parked) & 0xFFu;

  // Latch the bus opcodes of the lanes this pass advanced (or parked) —
  // kWait on waiting misses, kIdle elsewhere — while slow lanes keep
  // theirs for tick_lane to rewrite. Byte-blend instead of a lane loop:
  // narrow the 32-bit lane masks to one byte per CE and select.
  const auto narrow8 = [](__m256i m32) {
    const __m128i w16 = _mm_packs_epi32(_mm256_castsi256_si128(m32),
                                        _mm256_extracti128_si256(m32, 1));
    return _mm_packs_epi16(w16, _mm_setzero_si128());
  };
  const __m128i keep8 = narrow8(_mm256_andnot_si256(
      _mm256_or_si256(fast, parked), _mm256_set1_epi32(-1)));
  const __m128i fresh = _mm_blendv_epi8(
      _mm_set1_epi8(static_cast<char>(mem::CeBusOp::kIdle)),
      _mm_set1_epi8(static_cast<char>(mem::CeBusOp::kWait)),
      narrow8(miss_ok));
  auto* bus_op = reinterpret_cast<__m128i*>(hot.bus_op.data() + base);
  const __m128i old_ops = _mm_loadl_epi64(bus_op);
  _mm_storel_epi64(bus_op, _mm_blendv_epi8(fresh, old_ops, keep8));
  return slow;
}

}  // namespace

LaneMask lane_pass_avx2(CeHot& hot, LaneMask fill_ready_mask,
                        std::uint32_t n_lanes) {
  static_assert(kMaxTopologyCes % 8 == 0,
                "chunks of eight must tile the lane block");
  // A machine narrower than a chunk multiple still runs whole chunks:
  // lanes past the width are permanently idle (phase zero), so the chunk
  // classifies them parked and stores back idle no-ops — value-identical
  // to the scalar pass leaving them untouched. The final mask guards the
  // slow word anyway.
  LaneMask slow = 0;
  for (std::uint32_t base = 0; base < n_lanes; base += 8) {
    const auto window =
        static_cast<std::uint32_t>((fill_ready_mask >> base) & 0xFFu);
    slow |= static_cast<LaneMask>(lane_chunk_avx2(hot, base, window)) << base;
  }
  if (n_lanes < kMaxTopologyCes) {
    slow &= (LaneMask{1} << n_lanes) - 1;
  }
  return slow;
}

}  // namespace repro::fx8

#endif  // FX8_HAVE_AVX2
