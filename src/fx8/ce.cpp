#include "fx8/ce.hpp"

#include "base/expect.hpp"
#include "base/rng.hpp"

namespace repro::fx8 {

namespace {
/// Map a hash to [0,1).
double hash_frac(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}
}  // namespace

Ce::Ce(CeId id, cache::SharedCache& cache, Crossbar& crossbar, Mmu& mmu,
       std::uint64_t icache_bytes)
    : id_(id), cache_(cache), crossbar_(crossbar), mmu_(mmu),
      icache_(icache_bytes) {}

void Ce::start(const KernelInstance& inst) {
  REPRO_EXPECT(idle(), "CE already has an instance loaded");
  REPRO_EXPECT(inst.spec != nullptr, "instance needs a kernel spec");
  inst_ = inst;
  phase_ = Phase::kStepSetup;
  resume_phase_ = Phase::kStepSetup;
  step_ = 0;
  total_steps_ = inst.spec->steps + inst.extra_steps;
  compute_left_ = 0;
  loads_left_ = 0;
  stores_left_ = 0;
  accesses_done_ = 0;
  last_load_addr_ = 0;
  fault_left_ = 0;
  pending_translated_ = false;
  pending_addr_ = 0;
}

Cycle Ce::quiet_horizon() const {
  switch (phase_) {
    case Phase::kIdle:
    case Phase::kDone:
      return kHorizonNever;
    case Phase::kCompute:
      // Each of the next compute_left_ ticks burns one bus-idle compute
      // cycle; the tick after that enters kAccess.
      return compute_left_;
    case Phase::kFaultWait:
      // The tick that drops fault_left_ to zero also transitions phases,
      // so it must run naively: skip at most fault_left_ - 1.
      return fault_left_ - 1;
    case Phase::kMissWait:
      // Waiting on a line fill: the shared cache flags readiness on a
      // bus-completion tick, which the bus horizon already forces to be
      // naive. Until the flag is up every wait tick is a pure repeat;
      // the pick-up tick itself must run naively.
      return cache_.fill_ready(id_) ? 0 : kHorizonNever;
    default:
      return 0;
  }
}

void Ce::skip(Cycle cycles) {
  if (phase_ == Phase::kIdle || phase_ == Phase::kDone) {
    return;
  }
  REPRO_EXPECT(cycles <= quiet_horizon(), "CE skip beyond its horizon");
  bus_op_ = mem::CeBusOp::kIdle;
  stats_.busy_cycles += cycles;
  if (phase_ == Phase::kCompute) {
    compute_left_ -= static_cast<std::uint32_t>(cycles);
    stats_.compute_cycles += cycles;
  } else if (phase_ == Phase::kMissWait) {
    bus_op_ = mem::CeBusOp::kWait;  // What each skipped tick would latch.
    stats_.miss_wait_cycles += cycles;
  } else {  // kFaultWait
    fault_left_ -= cycles;
    stats_.fault_wait_cycles += cycles;
  }
}

void Ce::take_completed() {
  REPRO_EXPECT(done(), "CE has not completed its instance");
  phase_ = Phase::kIdle;
}

void Ce::setup_step() {
  const isa::KernelSpec& k = *inst_.spec;
  const std::uint64_t h =
      mix64(inst_.key + 0x9E3779B97F4A7C15ULL * (step_ + 1));
  compute_left_ = k.compute_cycles;
  if (k.compute_jitter > 0) {
    compute_left_ = k.compute_cycles - k.compute_jitter +
                    static_cast<std::uint32_t>(
                        h % (2ULL * k.compute_jitter + 1));
  }
  // Vector steps sit at fixed positions in the compiled code, so the
  // decision hashes the phase's code image and step index — identical for
  // every iteration of a loop (iterations run the same instructions; only
  // data-dependent branching varies, modelled by extra_steps).
  if (k.vector_fraction > 0.0 &&
      hash_frac(mix64(inst_.code_base + 0x9E3779B97F4A7C15ULL * step_)) <
          k.vector_fraction) {
    compute_left_ += k.vector_cycles;
  }
  loads_left_ = k.loads_per_step;
  stores_left_ = k.stores_per_step;
}

Addr Ce::next_data_addr(bool is_store) {
  const isa::KernelSpec& k = *inst_.spec;
  if (is_store && k.loads_per_step > 0) {
    // Stores are read-modify-write of the most recently loaded datum, so
    // they nearly always hit (possibly upgrading Shared -> Unique).
    return last_load_addr_;
  }
  const std::uint64_t step_bytes =
      inst_.stream_step_bytes == 0 ? k.stride_bytes : inst_.stream_step_bytes;
  const std::uint64_t idx = accesses_done_++;
  if (k.pattern == isa::AccessPattern::kHotCold) {
    const std::uint64_t h = mix64(inst_.key ^ (0x5eed0000ULL + idx));
    if (hash_frac(h) < k.hot_fraction) {
      // Hot set lives at the base of the data region, 8B-aligned slots.
      return inst_.data_base + mix64(h) % k.hot_set_bytes / 8 * 8;
    }
    return inst_.data_base + k.hot_set_bytes +
           (inst_.stream_start + idx * step_bytes) % k.working_set_bytes;
  }
  return inst_.data_base +
         (inst_.stream_start + idx * step_bytes) % k.working_set_bytes;
}

void Ce::issue_access(cache::AccessType type, Addr addr) {
  const cache::AccessOutcome outcome = cache_.access(id_, addr, type);
  ++stats_.mem_accesses;
  const bool is_store = type == cache::AccessType::kWrite;
  switch (outcome) {
    case cache::AccessOutcome::kHit:
      switch (type) {
        case cache::AccessType::kRead:
          bus_op_ = mem::CeBusOp::kRead;
          break;
        case cache::AccessType::kWrite:
          bus_op_ = mem::CeBusOp::kWrite;
          break;
        case cache::AccessType::kInstrFetch:
          bus_op_ = mem::CeBusOp::kInstrFetch;
          break;
      }
      return;
    case cache::AccessOutcome::kMissStarted:
      // This CE's lookup initiated the line fetch: a miss on its bus.
      bus_op_ = is_store ? mem::CeBusOp::kWriteMiss : mem::CeBusOp::kReadMiss;
      phase_ = Phase::kMissWait;
      return;
    case cache::AccessOutcome::kMissMerged:
      // Another CE's fill is already in flight; this bus just waits on it
      // (a hit-in-flight, not a second miss — the cross-CE sharing path
      // of paper §5.1).
      bus_op_ = mem::CeBusOp::kWait;
      phase_ = Phase::kMissWait;
      return;
  }
}

void Ce::tick() {
  bus_op_ = mem::CeBusOp::kIdle;
  if (phase_ == Phase::kIdle || phase_ == Phase::kDone) {
    return;
  }
  ++stats_.busy_cycles;

  if (phase_ == Phase::kFaultWait) {
    ++stats_.fault_wait_cycles;
    if (--fault_left_ == 0) {
      phase_ = resume_phase_;
    }
    return;
  }

  if (phase_ == Phase::kMissWait) {
    ++stats_.miss_wait_cycles;
    bus_op_ = mem::CeBusOp::kWait;
    if (cache_.take_fill_ready(id_)) {
      // The stalled access completes with this fill.
      if (pending_is_ifetch_) {
        phase_ = Phase::kCompute;
      } else {
        if (pending_is_store_) {
          --stores_left_;
        } else {
          --loads_left_;
          last_load_addr_ = pending_addr_;
        }
        phase_ = Phase::kAccess;
      }
      pending_translated_ = false;
    }
    return;
  }

  // Control phases are combinational; loop until a cycle is consumed.
  for (;;) {
    switch (phase_) {
      case Phase::kStepSetup: {
        if (step_ >= total_steps_) {
          phase_ = Phase::kDone;
          ++stats_.instances_completed;
          --stats_.busy_cycles;  // This cycle did no work.
          return;
        }
        setup_step();
        if (icache_.spills(inst_.key ^ (0xF00DULL + step_),
                           inst_.spec->code_bytes)) {
          pending_is_ifetch_ = true;
          pending_addr_ = inst_.code_base +
                          (static_cast<std::uint64_t>(step_) * 64) %
                              inst_.spec->code_bytes;
          pending_translated_ = false;
          phase_ = Phase::kIFetch;
        } else {
          phase_ = Phase::kCompute;
        }
        continue;
      }
      case Phase::kCompute: {
        if (compute_left_ > 0) {
          --compute_left_;
          ++stats_.compute_cycles;
          return;  // Bus idle this cycle.
        }
        phase_ = Phase::kAccess;
        continue;
      }
      case Phase::kIFetch: {
        if (!pending_translated_) {
          const Cycle fault = mmu_.touch(inst_.job, id_, pending_addr_);
          pending_translated_ = true;
          if (fault > 0) {
            fault_left_ = fault;
            resume_phase_ = Phase::kIFetch;
            ++stats_.fault_wait_cycles;
            phase_ = Phase::kFaultWait;
            return;
          }
        }
        if (!crossbar_.try_acquire(cache_.bank_of(pending_addr_))) {
          bus_op_ = mem::CeBusOp::kWait;
          ++stats_.xbar_conflict_cycles;
          return;
        }
        issue_access(cache::AccessType::kInstrFetch, pending_addr_);
        if (phase_ != Phase::kMissWait) {
          phase_ = Phase::kCompute;
          pending_translated_ = false;
        }
        return;
      }
      case Phase::kAccess: {
        if (loads_left_ == 0 && stores_left_ == 0) {
          ++step_;
          phase_ = Phase::kStepSetup;
          continue;
        }
        pending_is_ifetch_ = false;
        if (!pending_translated_) {
          pending_is_store_ = loads_left_ == 0;
          pending_addr_ = next_data_addr(pending_is_store_);
          const Cycle fault = mmu_.touch(inst_.job, id_, pending_addr_);
          pending_translated_ = true;
          if (fault > 0) {
            fault_left_ = fault;
            resume_phase_ = Phase::kAccess;
            ++stats_.fault_wait_cycles;
            phase_ = Phase::kFaultWait;
            return;
          }
        }
        if (!crossbar_.try_acquire(cache_.bank_of(pending_addr_))) {
          bus_op_ = mem::CeBusOp::kWait;
          ++stats_.xbar_conflict_cycles;
          return;
        }
        issue_access(pending_is_store_ ? cache::AccessType::kWrite
                                       : cache::AccessType::kRead,
                     pending_addr_);
        if (phase_ != Phase::kMissWait) {
          if (pending_is_store_) {
            --stores_left_;
          } else {
            --loads_left_;
            last_load_addr_ = pending_addr_;
          }
          pending_translated_ = false;
        }
        return;
      }
      case Phase::kIdle:
      case Phase::kDone:
      case Phase::kMissWait:
      case Phase::kFaultWait:
        REPRO_ENSURE(false, "unreachable CE phase in run loop");
    }
  }
}

}  // namespace repro::fx8
