#include "fx8/ce.hpp"

#include "base/expect.hpp"
#include "base/rng.hpp"

namespace repro::fx8 {

namespace {
/// Map a hash to [0,1).
double hash_frac(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}
}  // namespace

Ce::Ce(CeId id, cache::SharedCache& cache, Crossbar& crossbar, Mmu& mmu,
       std::uint64_t icache_bytes)
    : id_(id), cache_(cache), crossbar_(crossbar), mmu_(mmu),
      icache_(icache_bytes) {
  REPRO_EXPECT(id < kMaxTopologyCes, "CE id out of LaneMask range");
}

void Ce::set_mmu_rig(std::uint32_t rig) {
  REPRO_EXPECT(rig < kMaxBatchRigs, "MMU rig index exceeds the batch cap");
  mmu_rig_ = rig;
}

void Ce::bind_hot(CeHot& hot) {
  hot.phase[id_] = hot_->phase[id_];
  hot.bus_op[id_] = hot_->bus_op[id_];
  hot.compute_left[id_] = hot_->compute_left[id_];
  hot.fault_left[id_] = hot_->fault_left[id_];
  hot.busy_cycles[id_] = hot_->busy_cycles[id_];
  hot.compute_cycles[id_] = hot_->compute_cycles[id_];
  hot.miss_wait_cycles[id_] = hot_->miss_wait_cycles[id_];
  hot.fault_wait_cycles[id_] = hot_->fault_wait_cycles[id_];
  const LaneMask bit = LaneMask{1} << id_;
  hot.done_mask = (hot.done_mask & ~bit) | (hot_->done_mask & bit);
  hot_ = &hot;
}

void Ce::start(const KernelInstance& inst) {
  REPRO_EXPECT(idle(), "CE already has an instance loaded");
  REPRO_EXPECT(inst.spec != nullptr, "instance needs a kernel spec");
  inst_ = inst;
  set_phase(Phase::kStepSetup);
  resume_phase_ = Phase::kStepSetup;
  step_ = 0;
  total_steps_ = inst.spec->steps + inst.extra_steps;
  compute_left() = 0;
  loads_left_ = 0;
  stores_left_ = 0;
  accesses_done_ = 0;
  const isa::KernelSpec& k = *inst.spec;
  const std::uint64_t step_bytes =
      inst.stream_step_bytes == 0 ? k.stride_bytes : inst.stream_step_bytes;
  if (k.working_set_bytes > 0) {
    stream_cursor_ = inst.stream_start % k.working_set_bytes;
    stream_step_mod_ = step_bytes % k.working_set_bytes;
  } else {
    stream_cursor_ = 0;  // Kernel issues no streamed accesses.
    stream_step_mod_ = 0;
  }
  last_load_addr_ = 0;
  fault_left() = 0;
  spill_frac_ = icache_.spill_fraction(inst.spec->code_bytes);
  pending_translated_ = false;
  pending_addr_ = 0;
}

void Ce::skip(Cycle cycles) {
  const Phase p = phase();
  if (p == Phase::kIdle || p == Phase::kDone) {
    return;
  }
  REPRO_EXPECT(cycles <= quiet_horizon(), "CE skip beyond its horizon");
  set_bus_op(mem::CeBusOp::kIdle);
  hot_->busy_cycles[id_] += cycles;
  if (p == Phase::kCompute) {
    compute_left() -= static_cast<std::uint32_t>(cycles);
    hot_->compute_cycles[id_] += cycles;
  } else if (p == Phase::kMissWait) {
    set_bus_op(mem::CeBusOp::kWait);  // What each skipped tick would latch.
    hot_->miss_wait_cycles[id_] += cycles;
  } else {  // kFaultWait
    fault_left() -= cycles;
    hot_->fault_wait_cycles[id_] += cycles;
  }
}

void Ce::take_completed() {
  REPRO_EXPECT(done(), "CE has not completed its instance");
  set_phase(Phase::kIdle);
  // Drop the spec pointer with the instance: it aims into the job's
  // program, which the scheduler destroys when the job is reaped, and a
  // stale pointer here would make the capsule walk read freed memory.
  inst_.spec = nullptr;
}

void Ce::serialize(capsule::Io& io) {
  bool has_spec = inst_.spec != nullptr;
  io.boolean(has_spec);
  if (has_spec) {
    if (io.loading()) {
      owned_spec_ = {};
      owned_spec_.serialize(io);
      inst_.spec = &owned_spec_;
    } else {
      isa::KernelSpec copy = *inst_.spec;
      copy.serialize(io);
    }
  } else if (io.loading()) {
    inst_.spec = nullptr;
  }
  io.u64(inst_.job);
  io.u64(inst_.key);
  io.u64(inst_.data_base);
  io.u64(inst_.code_base);
  io.u64(inst_.stream_start);
  io.u64(inst_.stream_step_bytes);
  io.u32(inst_.extra_steps);

  io.enum32(resume_phase_);
  io.u32(step_);
  io.u32(total_steps_);
  io.u32(loads_left_);
  io.u32(stores_left_);
  io.u64(accesses_done_);
  io.u64(stream_cursor_);
  io.u64(stream_step_mod_);
  io.u64(last_load_addr_);
  io.f64(spill_frac_);
  io.boolean(pending_is_store_);
  io.boolean(pending_is_ifetch_);
  io.u64(pending_addr_);
  io.boolean(pending_translated_);

  // Cold counters; the four per-cycle counters travel with the lanes.
  io.u64(stats_.mem_accesses);
  io.u64(stats_.xbar_conflict_cycles);
  io.u64(stats_.instances_completed);

  // This CE's hot-lane slots. Phase goes through set_phase so the
  // cluster's done_mask bit is rebuilt on load.
  CeHot& hot = *hot_;
  Phase p = phase();
  io.enum32(p);
  if (io.loading()) {
    set_phase(p);
  }
  io.enum32(hot.bus_op[id_]);
  io.u32(hot.compute_left[id_]);
  io.u64(hot.fault_left[id_]);
  io.u64(hot.busy_cycles[id_]);
  io.u64(hot.compute_cycles[id_]);
  io.u64(hot.miss_wait_cycles[id_]);
  io.u64(hot.fault_wait_cycles[id_]);
}

void Ce::setup_step() {
  const isa::KernelSpec& k = *inst_.spec;
  const std::uint64_t h =
      mix64(inst_.key + 0x9E3779B97F4A7C15ULL * (step_ + 1));
  std::uint32_t compute = k.compute_cycles;
  if (k.compute_jitter > 0) {
    compute = k.compute_cycles - k.compute_jitter +
              static_cast<std::uint32_t>(h % (2ULL * k.compute_jitter + 1));
  }
  // Vector steps sit at fixed positions in the compiled code, so the
  // decision hashes the phase's code image and step index — identical for
  // every iteration of a loop (iterations run the same instructions; only
  // data-dependent branching varies, modelled by extra_steps).
  if (k.vector_fraction > 0.0 &&
      hash_frac(mix64(inst_.code_base + 0x9E3779B97F4A7C15ULL * step_)) <
          k.vector_fraction) {
    compute += k.vector_cycles;
  }
  compute_left() = compute;
  loads_left_ = k.loads_per_step;
  stores_left_ = k.stores_per_step;
}

Addr Ce::next_data_addr(bool is_store) {
  const isa::KernelSpec& k = *inst_.spec;
  if (is_store && k.loads_per_step > 0) {
    // Stores are read-modify-write of the most recently loaded datum, so
    // they nearly always hit (possibly upgrading Shared -> Unique).
    return last_load_addr_;
  }
  const std::uint64_t idx = accesses_done_++;
  // The streaming offset equals (stream_start + idx*step) % working_set;
  // the cursor carries it incrementally (one add + conditional subtract),
  // and advances on every draw — the hot/cold split below only decides
  // which address family this particular draw uses.
  const std::uint64_t offset = stream_cursor_;
  stream_cursor_ += stream_step_mod_;
  if (stream_cursor_ >= k.working_set_bytes) {
    stream_cursor_ -= k.working_set_bytes;
  }
  if (k.pattern == isa::AccessPattern::kHotCold) {
    const std::uint64_t h = mix64(inst_.key ^ (0x5eed0000ULL + idx));
    if (hash_frac(h) < k.hot_fraction) {
      // Hot set lives at the base of the data region, 8B-aligned slots.
      return inst_.data_base + mix64(h) % k.hot_set_bytes / 8 * 8;
    }
    return inst_.data_base + k.hot_set_bytes + offset;
  }
  return inst_.data_base + offset;
}

void Ce::issue_access(cache::AccessType type, Addr addr) {
  const cache::AccessOutcome outcome = cache_.access(id_, addr, type);
  ++stats_.mem_accesses;
  const bool is_store = type == cache::AccessType::kWrite;
  switch (outcome) {
    case cache::AccessOutcome::kHit:
      switch (type) {
        case cache::AccessType::kRead:
          set_bus_op(mem::CeBusOp::kRead);
          break;
        case cache::AccessType::kWrite:
          set_bus_op(mem::CeBusOp::kWrite);
          break;
        case cache::AccessType::kInstrFetch:
          set_bus_op(mem::CeBusOp::kInstrFetch);
          break;
      }
      return;
    case cache::AccessOutcome::kMissStarted:
      // This CE's lookup initiated the line fetch: a miss on its bus.
      set_bus_op(is_store ? mem::CeBusOp::kWriteMiss
                          : mem::CeBusOp::kReadMiss);
      set_phase(Phase::kMissWait);
      return;
    case cache::AccessOutcome::kMissMerged:
      // Another CE's fill is already in flight; this bus just waits on it
      // (a hit-in-flight, not a second miss — the cross-CE sharing path
      // of paper §5.1).
      set_bus_op(mem::CeBusOp::kWait);
      set_phase(Phase::kMissWait);
      return;
  }
}

void Ce::tick_slow() {
  set_bus_op(mem::CeBusOp::kIdle);
  if (phase() == Phase::kIdle || phase() == Phase::kDone) {
    return;
  }
  ++hot_->busy_cycles[id_];

  if (phase() == Phase::kFaultWait) {
    ++hot_->fault_wait_cycles[id_];
    if (--fault_left() == 0) {
      set_phase(resume_phase_);
    }
    return;
  }

  if (phase() == Phase::kMissWait) {
    ++hot_->miss_wait_cycles[id_];
    set_bus_op(mem::CeBusOp::kWait);
    if (cache_.take_fill_ready(id_)) {
      // The stalled access completes with this fill.
      if (pending_is_ifetch_) {
        set_phase(Phase::kCompute);
      } else {
        if (pending_is_store_) {
          --stores_left_;
        } else {
          --loads_left_;
          last_load_addr_ = pending_addr_;
        }
        set_phase(Phase::kAccess);
      }
      pending_translated_ = false;
    }
    return;
  }

  // Control phases are combinational; loop until a cycle is consumed.
  for (;;) {
    switch (phase()) {
      case Phase::kStepSetup: {
        if (step_ >= total_steps_) {
          set_phase(Phase::kDone);
          ++stats_.instances_completed;
          --hot_->busy_cycles[id_];  // This cycle did no work.
          return;
        }
        setup_step();
        if (cache::InstructionCache::spills_at(
                spill_frac_, inst_.key ^ (0xF00DULL + step_))) {
          pending_is_ifetch_ = true;
          pending_addr_ = inst_.code_base +
                          (static_cast<std::uint64_t>(step_) * 64) %
                              inst_.spec->code_bytes;
          pending_translated_ = false;
          set_phase(Phase::kIFetch);
        } else {
          set_phase(Phase::kCompute);
        }
        continue;
      }
      case Phase::kCompute: {
        if (compute_left() > 0) {
          --compute_left();
          ++hot_->compute_cycles[id_];
          return;  // Bus idle this cycle.
        }
        set_phase(Phase::kAccess);
        continue;
      }
      case Phase::kIFetch: {
        if (!pending_translated_) {
          const Cycle fault =
              mmu_.translate(inst_.job, id_, pending_addr_, mmu_rig_);
          pending_translated_ = true;
          if (fault > 0) {
            fault_left() = fault;
            resume_phase_ = Phase::kIFetch;
            ++hot_->fault_wait_cycles[id_];
            set_phase(Phase::kFaultWait);
            return;
          }
        }
        if (!crossbar_.try_acquire(cache_.bank_of(pending_addr_))) {
          set_bus_op(mem::CeBusOp::kWait);
          ++stats_.xbar_conflict_cycles;
          return;
        }
        issue_access(cache::AccessType::kInstrFetch, pending_addr_);
        if (phase() != Phase::kMissWait) {
          set_phase(Phase::kCompute);
          pending_translated_ = false;
        }
        return;
      }
      case Phase::kAccess: {
        if (loads_left_ == 0 && stores_left_ == 0) {
          ++step_;
          set_phase(Phase::kStepSetup);
          continue;
        }
        pending_is_ifetch_ = false;
        if (!pending_translated_) {
          pending_is_store_ = loads_left_ == 0;
          pending_addr_ = next_data_addr(pending_is_store_);
          const Cycle fault =
              mmu_.translate(inst_.job, id_, pending_addr_, mmu_rig_);
          pending_translated_ = true;
          if (fault > 0) {
            fault_left() = fault;
            resume_phase_ = Phase::kAccess;
            ++hot_->fault_wait_cycles[id_];
            set_phase(Phase::kFaultWait);
            return;
          }
        }
        if (!crossbar_.try_acquire(cache_.bank_of(pending_addr_))) {
          set_bus_op(mem::CeBusOp::kWait);
          ++stats_.xbar_conflict_cycles;
          return;
        }
        issue_access(pending_is_store_ ? cache::AccessType::kWrite
                                       : cache::AccessType::kRead,
                     pending_addr_);
        if (phase() != Phase::kMissWait) {
          if (pending_is_store_) {
            --stores_left_;
          } else {
            --loads_left_;
            last_load_addr_ = pending_addr_;
          }
          pending_translated_ = false;
        }
        return;
      }
      case Phase::kIdle:
      case Phase::kDone:
      case Phase::kMissWait:
      case Phase::kFaultWait:
        REPRO_ENSURE(false, "unreachable CE phase in run loop");
    }
  }
}

}  // namespace repro::fx8
