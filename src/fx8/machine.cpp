#include "fx8/machine.hpp"

#include <algorithm>

#include "base/expect.hpp"
#include "base/rng.hpp"

namespace repro::fx8 {

MachineConfig MachineConfig::fx8() { return MachineConfig{}; }

MachineConfig MachineConfig::fx1() {
  MachineConfig config;
  config.cluster.n_ces = 1;
  config.cluster.policy = ServicePolicy::kAscending;
  config.n_ips = 1;
  config.shared_cache.total_bytes = 64 * 1024;
  config.shared_cache.modules = 1;
  config.shared_cache.banks = 2;
  config.membus.bus_count = 1;
  return config;
}

MachineConfig MachineConfig::fx16() {
  MachineConfig config;
  config.topology.n_clusters = 2;
  config.shared_cache.total_bytes = 256 * 1024;
  config.shared_cache.banks = 8;
  return config;
}

MachineConfig MachineConfig::fx32() {
  MachineConfig config;
  config.topology.n_clusters = 4;
  config.shared_cache.total_bytes = 512 * 1024;
  config.shared_cache.banks = 16;
  config.shared_cache.modules = 4;
  config.membus.bus_count = 4;
  return config;
}

MachineConfig MachineConfig::fx64() {
  MachineConfig config;
  config.topology.n_clusters = 8;
  config.shared_cache.total_bytes = 1024 * 1024;
  config.shared_cache.banks = 32;
  config.shared_cache.modules = 4;
  config.membus.bus_count = 4;
  return config;
}

Machine::Machine(const MachineConfig& config, Mmu& mmu)
    : config_(config),
      topology_(resolve_topology(config.topology, config.cluster.n_ces)),
      lane_pass_(select_lane_pass()) {
  memory_ = std::make_unique<mem::MainMemory>(config.memory);

  mem::MemoryBusConfig bus_config = config.membus;
  if (config.topology.mem_buses != 0) {
    bus_config.bus_count = config.topology.mem_buses;
  }
  membus_ = std::make_unique<mem::MemoryBus>(bus_config, *memory_);

  cache::SharedCacheConfig cache_config = config.shared_cache;
  if (config.topology.cache_banks != 0) {
    cache_config.banks = config.topology.cache_banks;
  }
  // Global CE ids index the MSHR waiter masks: cover every cluster.
  cache_config.max_ces = std::max(cache_config.max_ces, topology_.total_ces);
  shared_cache_ =
      std::make_unique<cache::SharedCache>(cache_config, *membus_);

  // MMU translation memos are keyed by global CE id as well.
  mmu.ensure_lanes(topology_.total_ces);

  ClusterConfig cluster_config = config.cluster;
  cluster_config.n_ces = topology_.ces_per_cluster;
  if (topology_.n_clusters > 1) {
    fabric_ = std::make_unique<ClusterFabric>(cache_config.banks);
  }
  clusters_.reserve(topology_.n_clusters);
  for (std::uint32_t i = 0; i < topology_.n_clusters; ++i) {
    clusters_.push_back(std::make_unique<Cluster>(
        cluster_config, *shared_cache_, mmu,
        /*ce_base=*/i * topology_.ces_per_cluster));
    if (fabric_) {
      clusters_.back()->crossbar().attach_fabric(fabric_.get());
    }
    cluster_ptrs_.push_back(clusters_.back().get());
  }

  std::uint64_t seed = config.seed;
  for (IpId ip = 0; ip < config.n_ips; ++ip) {
    cache::IpCacheConfig ipc;
    ipc.bus = ip % bus_config.bus_count;
    auto ip_cache = std::make_unique<cache::IpCache>(ipc, *membus_);
    ip_cache->set_snoop_hook(
        [this](Addr line) { shared_cache_->snoop_invalidate(line); });
    // IP regions sit far above job data regions so they never alias.
    const Addr region = 0xE0000000ULL + static_cast<Addr>(ip) * 0x100000ULL;
    ips_.emplace_back(ip, config.ip, region, *ip_cache, splitmix64(seed));
    ip_caches_.push_back(std::move(ip_cache));
  }

  // Pack every component's per-tick hot state into the machine's
  // contiguous block (fx8/hot_state.hpp).
  hot_state_.clusters.resize(topology_.n_clusters);
  membus_->bind_hot(hot_state_.bus);
  shared_cache_->bind_hot(hot_state_.cache);
  for (std::uint32_t i = 0; i < topology_.n_clusters; ++i) {
    clusters_[i]->bind_hot(hot_state_.clusters[i], hot_state_.lanes,
                           hot_state_.cluster_events);
  }
}

void Machine::tick() {
  if (fabric_ && !fabric_->idle()) {
    fabric_->begin_cycle();
  }
  for (auto& cluster : clusters_) {
    cluster->tick();
  }
  for (Ip& ip : ips_) {
    ip.tick();
  }
  membus_->tick(hot_state_.now);
  shared_cache_->tick();
  ++hot_state_.now;
}

Cycle Machine::quiet_horizon() const {
  Cycle horizon = kHorizonNever;
  for (const auto& cluster : clusters_) {
    horizon = std::min(horizon, cluster->quiet_horizon());
    if (horizon == 0) {
      return 0;
    }
  }
  horizon = std::min(horizon, membus_->quiet_horizon(hot_state_.now));
  if (horizon == 0) {
    return 0;
  }
  horizon = std::min(horizon, shared_cache_->quiet_horizon());
  for (const Ip& ip : ips_) {
    horizon = std::min(horizon, ip.quiet_horizon());
    if (horizon == 0) {
      return 0;
    }
  }
  return horizon;
}

void Machine::skip(Cycle cycles) {
  for (auto& cluster : clusters_) {
    cluster->skip(cycles);
  }
  for (Ip& ip : ips_) {
    ip.skip(cycles);
  }
  membus_->skip(cycles);
  hot_state_.now += cycles;
}

void Machine::run(Cycle cycles) {
  // tick_block is bit-identical to ticking (its early stops only split
  // the loop and it always advances >= 1 cycle per call), so run() is
  // just the block driven to completion — one loop body for every
  // topology instead of duplicated single/multi cluster copies.
  Cycle done = 0;
  while (done < cycles) {
    done += tick_block(cycles - done);
  }
}

void Machine::serialize(capsule::Io& io) {
  memory_->serialize(io);
  membus_->serialize(io);
  shared_cache_->serialize(io);
  for (auto& cluster : clusters_) {
    cluster->serialize(io);
  }
  if (fabric_) {
    // Gated on existence: the single-cluster walk stays byte-identical
    // to the pre-topology stream.
    fabric_->serialize(io);
  }
  for (auto& ip_cache : ip_caches_) {
    ip_cache->serialize(io);
  }
  for (Ip& ip : ips_) {
    ip.serialize(io);
  }
  // hot_state_.cluster_events travels inside Cluster::serialize (the
  // clusters share that counter); the machine clock is the one hot field
  // left.
  io.u64(hot_state_.now);
}

Cycle Machine::tick_block(Cycle max_cycles) {
  mem::MemoryBus& membus = *membus_;
  cache::SharedCache& shared_cache = *shared_cache_;
  HotState& hot = hot_state_;
  const std::uint64_t events_at_entry = hot.cluster_events;
  Cycle done = 0;
  if (clusters_.size() == 1) {
    Cluster& cluster = *clusters_[0];
    while (done < max_cycles) {
      cluster.tick();
      for (Ip& ip : ips_) {
        ip.tick();
      }
      membus.tick(hot.now);
      shared_cache.tick();
      ++hot.now;
      ++done;
      if (hot.cluster_events != events_at_entry) {
        // A job or detached job completed this cycle: stop so the OS
        // layer ticks naively next cycle, exactly as lockstep ticking
        // would.
        break;
      }
    }
    return done;
  }
  // Width-native path: run every cluster's control half, then ONE lane
  // pass over the whole machine-wide hot block, then peel only the slow
  // lanes into their owning cluster, cluster-major. Bit-identical to the
  // per-cluster tick() sequence because control is strictly
  // cluster-local (no cache/fabric/MMU touches), fast lanes touch only
  // their own CeHot slots plus the read-only fill-ready word (set only
  // by the end-of-cycle cache tick), and the peel preserves the exact
  // service order every slow lane would have seen.
  Cluster* const* clusters = cluster_ptrs_.data();
  const std::size_t n_clusters = cluster_ptrs_.size();
  ClusterFabric& fabric = *fabric_;
  const LanePassFn pass = lane_pass_;
  CeHot& lanes = hot.lanes;
  while (done < max_cycles) {
    if (!fabric.idle()) {
      fabric.begin_cycle();
    }
    for (std::size_t k = 0; k < n_clusters; ++k) {
      clusters[k]->tick_control();
    }
    // Pass only up to the highest live cluster: idle clusters' lanes are
    // parked with bus opcodes already latched kIdle, so dropping them
    // from the pass (and the scheduler fills clusters lowest-first)
    // changes no state and saves most of the wide sweep on
    // partially-loaded machines. A lane above the prefix can never be
    // slow or hold a pending fill — either would keep its cluster live.
    std::uint32_t live_lanes = 0;
    for (std::size_t k = n_clusters; k-- > 0;) {
      if (clusters[k]->lanes_live()) {
        live_lanes = clusters[k]->lane_end();
        break;
      }
    }
    if (live_lanes != 0) {
      const LaneMask slow =
          pass(lanes, shared_cache.fill_ready_mask(), live_lanes);
      if (slow != 0) {
        for (std::size_t k = 0; k < n_clusters; ++k) {
          clusters[k]->tick_peel(slow);
        }
      }
    }
    for (Ip& ip : ips_) {
      ip.tick();
    }
    membus.tick(hot.now);
    shared_cache.tick();
    ++hot.now;
    ++done;
    if (hot.cluster_events != events_at_entry) {
      break;
    }
  }
  return done;
}

}  // namespace repro::fx8