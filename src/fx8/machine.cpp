#include "fx8/machine.hpp"

#include <algorithm>

#include "base/expect.hpp"
#include "base/rng.hpp"

namespace repro::fx8 {

MachineConfig MachineConfig::fx8() { return MachineConfig{}; }

MachineConfig MachineConfig::fx1() {
  MachineConfig config;
  config.cluster.n_ces = 1;
  config.cluster.policy = ServicePolicy::kAscending;
  config.n_ips = 1;
  config.shared_cache.total_bytes = 64 * 1024;
  config.shared_cache.modules = 1;
  config.shared_cache.banks = 2;
  config.membus.bus_count = 1;
  return config;
}

Machine::Machine(const MachineConfig& config, Mmu& mmu) : config_(config) {
  memory_ = std::make_unique<mem::MainMemory>(config.memory);
  membus_ = std::make_unique<mem::MemoryBus>(config.membus, *memory_);
  shared_cache_ =
      std::make_unique<cache::SharedCache>(config.shared_cache, *membus_);
  cluster_ = std::make_unique<Cluster>(config.cluster, *shared_cache_, mmu);

  std::uint64_t seed = config.seed;
  for (IpId ip = 0; ip < config.n_ips; ++ip) {
    cache::IpCacheConfig ipc;
    ipc.bus = ip % config.membus.bus_count;
    auto ip_cache = std::make_unique<cache::IpCache>(ipc, *membus_);
    ip_cache->set_snoop_hook(
        [this](Addr line) { shared_cache_->snoop_invalidate(line); });
    // IP regions sit far above job data regions so they never alias.
    const Addr region = 0xE0000000ULL + static_cast<Addr>(ip) * 0x100000ULL;
    ips_.emplace_back(ip, config.ip, region, *ip_cache, splitmix64(seed));
    ip_caches_.push_back(std::move(ip_cache));
  }

  // Pack every component's per-tick hot state into the machine's
  // contiguous block (fx8/hot_state.hpp).
  membus_->bind_hot(hot_state_.bus);
  shared_cache_->bind_hot(hot_state_.cache);
  cluster_->bind_hot(hot_state_);
}

void Machine::tick() {
  cluster_->tick();
  for (Ip& ip : ips_) {
    ip.tick();
  }
  membus_->tick(hot_state_.now);
  shared_cache_->tick();
  ++hot_state_.now;
}

Cycle Machine::quiet_horizon() const {
  Cycle horizon = cluster_->quiet_horizon();
  if (horizon == 0) {
    return 0;
  }
  horizon = std::min(horizon, membus_->quiet_horizon(hot_state_.now));
  if (horizon == 0) {
    return 0;
  }
  horizon = std::min(horizon, shared_cache_->quiet_horizon());
  for (const Ip& ip : ips_) {
    horizon = std::min(horizon, ip.quiet_horizon());
    if (horizon == 0) {
      return 0;
    }
  }
  return horizon;
}

void Machine::skip(Cycle cycles) {
  cluster_->skip(cycles);
  for (Ip& ip : ips_) {
    ip.skip(cycles);
  }
  membus_->skip(cycles);
  hot_state_.now += cycles;
}

void Machine::run(Cycle cycles) {
  // Hoist the owning-pointer hops out of the loop: the components are
  // fixed for the machine's lifetime, so the per-cycle path needs no
  // re-deref of the unique_ptr members.
  Cluster& cluster = *cluster_;
  mem::MemoryBus& membus = *membus_;
  cache::SharedCache& shared_cache = *shared_cache_;
  Cycle& now = hot_state_.now;
  for (Cycle i = 0; i < cycles; ++i) {
    cluster.tick();
    for (Ip& ip : ips_) {
      ip.tick();
    }
    membus.tick(now);
    shared_cache.tick();
    ++now;
  }
}

void Machine::serialize(capsule::Io& io) {
  memory_->serialize(io);
  membus_->serialize(io);
  shared_cache_->serialize(io);
  cluster_->serialize(io);
  for (auto& ip_cache : ip_caches_) {
    ip_cache->serialize(io);
  }
  for (Ip& ip : ips_) {
    ip.serialize(io);
  }
  // hot_state_.cluster_events travels inside Cluster::serialize (the
  // cluster owns that lane); the machine clock is the one hot field left.
  io.u64(hot_state_.now);
}

Cycle Machine::tick_block(Cycle max_cycles) {
  Cluster& cluster = *cluster_;
  mem::MemoryBus& membus = *membus_;
  cache::SharedCache& shared_cache = *shared_cache_;
  HotState& hot = hot_state_;
  const std::uint64_t events_at_entry = hot.cluster_events;
  Cycle done = 0;
  while (done < max_cycles) {
    cluster.tick();
    for (Ip& ip : ips_) {
      ip.tick();
    }
    membus.tick(hot.now);
    shared_cache.tick();
    ++hot.now;
    ++done;
    if (hot.cluster_events != events_at_entry) {
      // A job or detached job completed this cycle: stop so the OS layer
      // ticks naively next cycle, exactly as lockstep ticking would.
      break;
    }
  }
  return done;
}

}  // namespace repro::fx8
