#include "fx8/machine.hpp"

#include <algorithm>

#include "base/expect.hpp"
#include "base/rng.hpp"

namespace repro::fx8 {

MachineConfig MachineConfig::fx8() { return MachineConfig{}; }

MachineConfig MachineConfig::fx1() {
  MachineConfig config;
  config.cluster.n_ces = 1;
  config.cluster.policy = ServicePolicy::kAscending;
  config.n_ips = 1;
  config.shared_cache.total_bytes = 64 * 1024;
  config.shared_cache.modules = 1;
  config.shared_cache.banks = 2;
  config.membus.bus_count = 1;
  return config;
}

MachineConfig MachineConfig::fx16() {
  MachineConfig config;
  config.topology.n_clusters = 2;
  config.shared_cache.total_bytes = 256 * 1024;
  config.shared_cache.banks = 8;
  return config;
}

MachineConfig MachineConfig::fx32() {
  MachineConfig config;
  config.topology.n_clusters = 4;
  config.shared_cache.total_bytes = 512 * 1024;
  config.shared_cache.banks = 16;
  config.shared_cache.modules = 4;
  config.membus.bus_count = 4;
  return config;
}

MachineConfig MachineConfig::fx64() {
  MachineConfig config;
  config.topology.n_clusters = 8;
  config.shared_cache.total_bytes = 1024 * 1024;
  config.shared_cache.banks = 32;
  config.shared_cache.modules = 4;
  config.membus.bus_count = 4;
  return config;
}

Machine::Machine(const MachineConfig& config, Mmu& mmu)
    : config_(config),
      topology_(resolve_topology(config.topology, config.cluster.n_ces)) {
  memory_ = std::make_unique<mem::MainMemory>(config.memory);

  mem::MemoryBusConfig bus_config = config.membus;
  if (config.topology.mem_buses != 0) {
    bus_config.bus_count = config.topology.mem_buses;
  }
  membus_ = std::make_unique<mem::MemoryBus>(bus_config, *memory_);

  cache::SharedCacheConfig cache_config = config.shared_cache;
  if (config.topology.cache_banks != 0) {
    cache_config.banks = config.topology.cache_banks;
  }
  // Global CE ids index the MSHR waiter masks: cover every cluster.
  cache_config.max_ces = std::max(cache_config.max_ces, topology_.total_ces);
  shared_cache_ =
      std::make_unique<cache::SharedCache>(cache_config, *membus_);

  // MMU translation memos are keyed by global CE id as well.
  mmu.ensure_lanes(topology_.total_ces);

  ClusterConfig cluster_config = config.cluster;
  cluster_config.n_ces = topology_.ces_per_cluster;
  if (topology_.n_clusters > 1) {
    fabric_ = std::make_unique<ClusterFabric>(cache_config.banks);
  }
  clusters_.reserve(topology_.n_clusters);
  for (std::uint32_t i = 0; i < topology_.n_clusters; ++i) {
    clusters_.push_back(std::make_unique<Cluster>(
        cluster_config, *shared_cache_, mmu,
        /*ce_base=*/i * topology_.ces_per_cluster));
    if (fabric_) {
      clusters_.back()->crossbar().attach_fabric(fabric_.get());
    }
  }

  std::uint64_t seed = config.seed;
  for (IpId ip = 0; ip < config.n_ips; ++ip) {
    cache::IpCacheConfig ipc;
    ipc.bus = ip % bus_config.bus_count;
    auto ip_cache = std::make_unique<cache::IpCache>(ipc, *membus_);
    ip_cache->set_snoop_hook(
        [this](Addr line) { shared_cache_->snoop_invalidate(line); });
    // IP regions sit far above job data regions so they never alias.
    const Addr region = 0xE0000000ULL + static_cast<Addr>(ip) * 0x100000ULL;
    ips_.emplace_back(ip, config.ip, region, *ip_cache, splitmix64(seed));
    ip_caches_.push_back(std::move(ip_cache));
  }

  // Pack every component's per-tick hot state into the machine's
  // contiguous block (fx8/hot_state.hpp).
  hot_state_.clusters.resize(topology_.n_clusters);
  membus_->bind_hot(hot_state_.bus);
  shared_cache_->bind_hot(hot_state_.cache);
  for (std::uint32_t i = 0; i < topology_.n_clusters; ++i) {
    clusters_[i]->bind_hot(hot_state_.clusters[i],
                           hot_state_.cluster_events);
  }
}

void Machine::tick() {
  if (fabric_) {
    fabric_->begin_cycle();
  }
  for (auto& cluster : clusters_) {
    cluster->tick();
  }
  for (Ip& ip : ips_) {
    ip.tick();
  }
  membus_->tick(hot_state_.now);
  shared_cache_->tick();
  ++hot_state_.now;
}

Cycle Machine::quiet_horizon() const {
  Cycle horizon = kHorizonNever;
  for (const auto& cluster : clusters_) {
    horizon = std::min(horizon, cluster->quiet_horizon());
    if (horizon == 0) {
      return 0;
    }
  }
  horizon = std::min(horizon, membus_->quiet_horizon(hot_state_.now));
  if (horizon == 0) {
    return 0;
  }
  horizon = std::min(horizon, shared_cache_->quiet_horizon());
  for (const Ip& ip : ips_) {
    horizon = std::min(horizon, ip.quiet_horizon());
    if (horizon == 0) {
      return 0;
    }
  }
  return horizon;
}

void Machine::skip(Cycle cycles) {
  for (auto& cluster : clusters_) {
    cluster->skip(cycles);
  }
  for (Ip& ip : ips_) {
    ip.skip(cycles);
  }
  membus_->skip(cycles);
  hot_state_.now += cycles;
}

void Machine::run(Cycle cycles) {
  // Hoist the owning-pointer hops out of the loop: the components are
  // fixed for the machine's lifetime, so the per-cycle path needs no
  // re-deref of the unique_ptr members. Single-cluster machines (every
  // width-<=8 configuration) keep the direct cluster reference; the
  // general loop only runs on multi-cluster topologies.
  mem::MemoryBus& membus = *membus_;
  cache::SharedCache& shared_cache = *shared_cache_;
  Cycle& now = hot_state_.now;
  if (clusters_.size() == 1) {
    Cluster& cluster = *clusters_[0];
    for (Cycle i = 0; i < cycles; ++i) {
      cluster.tick();
      for (Ip& ip : ips_) {
        ip.tick();
      }
      membus.tick(now);
      shared_cache.tick();
      ++now;
    }
    return;
  }
  for (Cycle i = 0; i < cycles; ++i) {
    fabric_->begin_cycle();
    for (auto& cluster : clusters_) {
      cluster->tick();
    }
    for (Ip& ip : ips_) {
      ip.tick();
    }
    membus.tick(now);
    shared_cache.tick();
    ++now;
  }
}

void Machine::serialize(capsule::Io& io) {
  memory_->serialize(io);
  membus_->serialize(io);
  shared_cache_->serialize(io);
  for (auto& cluster : clusters_) {
    cluster->serialize(io);
  }
  if (fabric_) {
    // Gated on existence: the single-cluster walk stays byte-identical
    // to the pre-topology stream.
    fabric_->serialize(io);
  }
  for (auto& ip_cache : ip_caches_) {
    ip_cache->serialize(io);
  }
  for (Ip& ip : ips_) {
    ip.serialize(io);
  }
  // hot_state_.cluster_events travels inside Cluster::serialize (the
  // clusters share that counter); the machine clock is the one hot field
  // left.
  io.u64(hot_state_.now);
}

Cycle Machine::tick_block(Cycle max_cycles) {
  mem::MemoryBus& membus = *membus_;
  cache::SharedCache& shared_cache = *shared_cache_;
  HotState& hot = hot_state_;
  const std::uint64_t events_at_entry = hot.cluster_events;
  Cycle done = 0;
  if (clusters_.size() == 1) {
    Cluster& cluster = *clusters_[0];
    while (done < max_cycles) {
      cluster.tick();
      for (Ip& ip : ips_) {
        ip.tick();
      }
      membus.tick(hot.now);
      shared_cache.tick();
      ++hot.now;
      ++done;
      if (hot.cluster_events != events_at_entry) {
        // A job or detached job completed this cycle: stop so the OS
        // layer ticks naively next cycle, exactly as lockstep ticking
        // would.
        break;
      }
    }
    return done;
  }
  while (done < max_cycles) {
    fabric_->begin_cycle();
    for (auto& cluster : clusters_) {
      cluster->tick();
    }
    for (Ip& ip : ips_) {
      ip.tick();
    }
    membus.tick(hot.now);
    shared_cache.tick();
    ++hot.now;
    ++done;
    if (hot.cluster_events != events_at_entry) {
      break;
    }
  }
  return done;
}

}  // namespace repro::fx8
