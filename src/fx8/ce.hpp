// Computational Element: the per-cycle interpreter of kernel instances.
//
// A CE executes one kernel instance at a time (a serial-phase repetition
// or one concurrent-loop iteration). Each cycle it either burns a compute
// cycle (bus idle), issues a data/instruction access through the crossbar
// to the shared cache (bus read/write/ifetch, or the miss variants), waits
// on an outstanding miss (bus wait), or stalls for page-fault service
// (bus idle — the fault is handled by the OS). The per-cycle bus opcode is
// what the logic-analyzer probe on this CE's cache bus latches.
#pragma once

#include <cstdint>
#include <optional>

#include "base/types.hpp"
#include "cache/icache.hpp"
#include "cache/shared_cache.hpp"
#include "fx8/crossbar.hpp"
#include "fx8/mmu.hpp"
#include "isa/kernel.hpp"
#include "mem/bus_ops.hpp"

namespace repro::fx8 {

/// Everything needed to run one execution of a kernel.
struct KernelInstance {
  const isa::KernelSpec* spec = nullptr;
  JobId job = 0;
  /// Deterministic key: all per-step randomness hashes off this.
  std::uint64_t key = 0;
  /// Base of the job's data region and of the kernel's code image.
  Addr data_base = 0;
  Addr code_base = 0;
  /// Starting byte offset of this instance's streaming walk within the
  /// working set (element-interleaved for shared-data loops).
  std::uint64_t stream_start = 0;
  /// Byte distance between this instance's successive streaming accesses.
  /// Serial code streams by the kernel's stride; a shared-data concurrent
  /// iteration i walks elements i, i+T, i+2T... of the loop's arrays
  /// (cyclic distribution), so its per-access jump is T*stride while
  /// concurrently executing iterations sit on the *same* cache lines —
  /// the cross-CE locality of paper §5.1. 0 means "use the spec stride".
  std::uint64_t stream_step_bytes = 0;
  /// Extra steps appended (conditional long path of an iteration).
  std::uint32_t extra_steps = 0;
};

struct CeStats {
  std::uint64_t busy_cycles = 0;       ///< Cycles executing an instance.
  std::uint64_t compute_cycles = 0;
  std::uint64_t mem_accesses = 0;
  std::uint64_t miss_wait_cycles = 0;
  std::uint64_t fault_wait_cycles = 0;
  std::uint64_t xbar_conflict_cycles = 0;
  std::uint64_t instances_completed = 0;
};

class Ce {
 public:
  Ce(CeId id, cache::SharedCache& cache, Crossbar& crossbar, Mmu& mmu,
     std::uint64_t icache_bytes = 16 * 1024);

  [[nodiscard]] CeId id() const { return id_; }

  /// Begin executing an instance. Requires idle().
  void start(const KernelInstance& inst);

  /// True when no instance is loaded (fresh, or the last one completed and
  /// take_completed() was called).
  [[nodiscard]] bool idle() const { return phase_ == Phase::kIdle; }

  /// True when the loaded instance has finished.
  [[nodiscard]] bool done() const { return phase_ == Phase::kDone; }

  /// Acknowledge completion, returning the CE to idle.
  void take_completed();

  /// Advance one cycle (only meaningful while an instance is loaded).
  /// Must be called after Crossbar::begin_cycle() for this cycle.
  void tick();

  /// Bus opcode latched by a probe for the cycle just ticked. Idle CEs
  /// latch kIdle.
  [[nodiscard]] mem::CeBusOp bus_op() const { return bus_op_; }

  // --- Event-horizon fast-forward -------------------------------------
  /// Cycles for which this CE's behaviour is a pure repeat that skip()
  /// can bulk-apply: an idle/done CE reports kHorizonNever, a computing
  /// CE its remaining compute budget, a fault-stalled CE its remaining
  /// service (minus the transition cycle). 0 means the next tick can
  /// change machine-visible state and must run naively.
  [[nodiscard]] Cycle quiet_horizon() const;
  /// Bulk-apply `cycles` ticks of the current uniform behaviour.
  /// Requires cycles <= quiet_horizon(); bit-identical to ticking.
  void skip(Cycle cycles);

  [[nodiscard]] const CeStats& stats() const { return stats_; }

 private:
  enum class Phase : std::uint8_t {
    kIdle,
    kStepSetup,   ///< Derive compute/access budget for the next step.
    kIFetch,      ///< Issue a spilled instruction fetch.
    kCompute,     ///< Burn compute cycles.
    kAccess,      ///< Issue data accesses.
    kMissWait,    ///< Outstanding shared-cache miss.
    kFaultWait,   ///< Page-fault service stall.
    kDone,
  };

  void setup_step();
  void issue_access(cache::AccessType type, Addr addr);
  [[nodiscard]] Addr next_data_addr(bool is_store);

  CeId id_;
  cache::SharedCache& cache_;
  Crossbar& crossbar_;
  Mmu& mmu_;
  cache::InstructionCache icache_;

  KernelInstance inst_;
  Phase phase_ = Phase::kIdle;
  Phase resume_phase_ = Phase::kIdle;  ///< Where to return after a stall.
  std::uint32_t step_ = 0;
  std::uint32_t total_steps_ = 0;
  std::uint32_t compute_left_ = 0;
  std::uint32_t loads_left_ = 0;
  std::uint32_t stores_left_ = 0;
  std::uint64_t accesses_done_ = 0;  ///< Streaming-cursor position.
  Addr last_load_addr_ = 0;          ///< Stores are read-modify-write.
  Cycle fault_left_ = 0;
  bool pending_is_store_ = false;    ///< What the stalled access was.
  bool pending_is_ifetch_ = false;
  Addr pending_addr_ = 0;
  bool pending_translated_ = false;  ///< Fault check already done.

  mem::CeBusOp bus_op_ = mem::CeBusOp::kIdle;
  CeStats stats_;
};

}  // namespace repro::fx8
