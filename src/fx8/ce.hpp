// Computational Element: the per-cycle interpreter of kernel instances.
//
// A CE executes one kernel instance at a time (a serial-phase repetition
// or one concurrent-loop iteration). Each cycle it either burns a compute
// cycle (bus idle), issues a data/instruction access through the crossbar
// to the shared cache (bus read/write/ifetch, or the miss variants), waits
// on an outstanding miss (bus wait), or stalls for page-fault service
// (bus idle — the fault is handled by the OS). The per-cycle bus opcode is
// what the logic-analyzer probe on this CE's cache bus latches.
//
// The per-tick hot state (phase, bus opcode, stall countdowns) lives in a
// machine-wide CeHot lane block (fx8/hot_state.hpp), indexed by the CE's
// global id, so the machine's fused kernel walks one contiguous array
// for every cluster's CEs; the three steady-state behaviours (compute
// burn, miss wait, fault wait) run as an inlined fast path and
// everything else drops to tick_slow().
#pragma once

#include <cstdint>
#include <optional>

#include "base/capsule.hpp"
#include "base/types.hpp"
#include "cache/icache.hpp"
#include "cache/shared_cache.hpp"
#include "fx8/crossbar.hpp"
#include "fx8/hot_state.hpp"
#include "fx8/mmu.hpp"
#include "isa/kernel.hpp"
#include "mem/bus_ops.hpp"

namespace repro::fx8 {

/// Everything needed to run one execution of a kernel.
struct KernelInstance {
  const isa::KernelSpec* spec = nullptr;
  JobId job = 0;
  /// Deterministic key: all per-step randomness hashes off this.
  std::uint64_t key = 0;
  /// Base of the job's data region and of the kernel's code image.
  Addr data_base = 0;
  Addr code_base = 0;
  /// Starting byte offset of this instance's streaming walk within the
  /// working set (element-interleaved for shared-data loops).
  std::uint64_t stream_start = 0;
  /// Byte distance between this instance's successive streaming accesses.
  /// Serial code streams by the kernel's stride; a shared-data concurrent
  /// iteration i walks elements i, i+T, i+2T... of the loop's arrays
  /// (cyclic distribution), so its per-access jump is T*stride while
  /// concurrently executing iterations sit on the *same* cache lines —
  /// the cross-CE locality of paper §5.1. 0 means "use the spec stride".
  std::uint64_t stream_step_bytes = 0;
  /// Extra steps appended (conditional long path of an iteration).
  std::uint32_t extra_steps = 0;
};

struct CeStats {
  std::uint64_t busy_cycles = 0;       ///< Cycles executing an instance.
  std::uint64_t compute_cycles = 0;
  std::uint64_t mem_accesses = 0;
  std::uint64_t miss_wait_cycles = 0;
  std::uint64_t fault_wait_cycles = 0;
  std::uint64_t xbar_conflict_cycles = 0;
  std::uint64_t instances_completed = 0;
};

class Ce {
 public:
  /// `id` is the machine-global CE id (indexes the shared cache's waiter
  /// masks, the MMU memos, the probe channels, and this CE's slots in
  /// the machine-wide CeHot lane block).
  Ce(CeId id, cache::SharedCache& cache, Crossbar& crossbar, Mmu& mmu,
     std::uint64_t icache_bytes = 16 * 1024);

  [[nodiscard]] CeId id() const { return id_; }

  /// Begin executing an instance. Requires idle().
  void start(const KernelInstance& inst);

  /// True when no instance is loaded (fresh, or the last one completed and
  /// take_completed() was called).
  [[nodiscard]] bool idle() const { return phase() == Phase::kIdle; }

  /// True when the loaded instance has finished.
  [[nodiscard]] bool done() const { return phase() == Phase::kDone; }

  /// Acknowledge completion, returning the CE to idle.
  void take_completed();

  /// Advance one cycle (only meaningful while an instance is loaded).
  /// Must be called after Crossbar::begin_cycle() for this cycle.
  /// The steady-state behaviours are inlined; control transitions
  /// (step setup, access issue, stall pick-up) run in tick_slow().
  void tick() {
    CeHot& hot = *hot_;
    const Phase p = static_cast<Phase>(hot.phase[id_]);
    hot.bus_op[id_] = mem::CeBusOp::kIdle;
    switch (p) {
      case Phase::kIdle:
      case Phase::kDone:
        return;
      case Phase::kCompute:
        if (hot.compute_left[id_] > 0) {
          --hot.compute_left[id_];
          ++hot.busy_cycles[id_];
          ++hot.compute_cycles[id_];
          return;
        }
        break;
      case Phase::kMissWait:
        if (!cache_.fill_ready(id_)) {
          hot.bus_op[id_] = mem::CeBusOp::kWait;
          ++hot.busy_cycles[id_];
          ++hot.miss_wait_cycles[id_];
          return;
        }
        break;
      case Phase::kFaultWait:
        if (hot.fault_left[id_] > 1) {
          --hot.fault_left[id_];
          ++hot.busy_cycles[id_];
          ++hot.fault_wait_cycles[id_];
          return;
        }
        break;
      default:
        break;
    }
    tick_slow();
  }

  /// Bus opcode latched by a probe for the cycle just ticked. Idle CEs
  /// latch kIdle.
  [[nodiscard]] mem::CeBusOp bus_op() const { return hot_->bus_op[id_]; }

  // --- Event-horizon fast-forward -------------------------------------
  /// Cycles for which this CE's behaviour is a pure repeat that skip()
  /// can bulk-apply: an idle/done CE reports kHorizonNever, a computing
  /// CE its remaining compute budget, a fault-stalled CE its remaining
  /// service (minus the transition cycle). 0 means the next tick can
  /// change machine-visible state and must run naively.
  [[nodiscard]] Cycle quiet_horizon() const {
    switch (static_cast<Phase>(hot_->phase[id_])) {
      case Phase::kIdle:
      case Phase::kDone:
        return kHorizonNever;
      case Phase::kCompute:
        // Each of the next compute_left ticks burns one bus-idle compute
        // cycle; the tick after that enters kAccess.
        return hot_->compute_left[id_];
      case Phase::kFaultWait:
        // The tick that drops fault_left to zero also transitions phases,
        // so it must run naively: skip at most fault_left - 1.
        return hot_->fault_left[id_] - 1;
      case Phase::kMissWait:
        // Waiting on a line fill: the shared cache flags readiness on a
        // bus-completion tick, which the bus horizon already forces to be
        // naive. Until the flag is up every wait tick is a pure repeat;
        // the pick-up tick itself must run naively.
        return cache_.fill_ready(id_) ? 0 : kHorizonNever;
      default:
        return 0;
    }
  }
  /// Bulk-apply `cycles` ticks of the current uniform behaviour.
  /// Requires cycles <= quiet_horizon(); bit-identical to ticking.
  void skip(Cycle cycles);

  /// Assembled from the cold counters kept here and the four per-cycle
  /// counters that live in the hot lanes.
  [[nodiscard]] CeStats stats() const {
    CeStats s = stats_;
    s.busy_cycles = hot_->busy_cycles[id_];
    s.compute_cycles = hot_->compute_cycles[id_];
    s.miss_wait_cycles = hot_->miss_wait_cycles[id_];
    s.fault_wait_cycles = hot_->fault_wait_cycles[id_];
    return s;
  }

  /// Re-point this CE's hot lanes at an externally owned block (the
  /// machine's contiguous hot-state). Copies only this CE's slots, so
  /// sibling CEs already bound to the block are untouched.
  void bind_hot(CeHot& hot);

  /// Rig lane this CE presents to the MMU translation memo. Machines that
  /// share one Mmu inside an fx8::RigBatch must carry distinct rig
  /// indices (Machine::set_mmu_rig) so their per-CE memo slots — CE ids
  /// repeat across rigs — never cross-hit. Structural wiring like the
  /// hot-state binding, not evolving state: it stays out of the capsule
  /// walk and the harness re-applies it after a rebuild.
  void set_mmu_rig(std::uint32_t rig);

  /// Capsule walk over the cold state, the loaded kernel instance (the
  /// spec travels by value; a loaded CE runs from its own copy), and
  /// this CE's hot-lane slots.
  void serialize(capsule::Io& io);

 private:
  /// The cluster's fused lane kernel mirrors tick()'s fast path over the
  /// shared CeHot block and drops into tick_slow() here.
  friend class Cluster;

  using Phase = CePhase;

  [[nodiscard]] Phase phase() const {
    return static_cast<Phase>(hot_->phase[id_]);
  }
  void set_phase(Phase p) {
    hot_->phase[id_] = static_cast<std::uint8_t>(p);
    const LaneMask bit = LaneMask{1} << id_;
    if (p == Phase::kDone) {
      hot_->done_mask |= bit;
    } else {
      hot_->done_mask &= ~bit;
    }
  }
  [[nodiscard]] std::uint32_t& compute_left() {
    return hot_->compute_left[id_];
  }
  [[nodiscard]] Cycle& fault_left() { return hot_->fault_left[id_]; }
  void set_bus_op(mem::CeBusOp op) { hot_->bus_op[id_] = op; }

  void tick_slow();
  void setup_step();
  void issue_access(cache::AccessType type, Addr addr);
  [[nodiscard]] Addr next_data_addr(bool is_store);

  /// Global CE id; also this CE's index (and done_mask bit) in the
  /// machine-wide CeHot lane block.
  CeId id_;
  cache::SharedCache& cache_;
  Crossbar& crossbar_;
  Mmu& mmu_;
  /// Rig lane for the MMU memo (see set_mmu_rig). 0 for owned MMUs.
  std::uint32_t mmu_rig_ = 0;
  cache::InstructionCache icache_;

  KernelInstance inst_;
  Phase resume_phase_ = Phase::kIdle;  ///< Where to return after a stall.
  std::uint32_t step_ = 0;
  std::uint32_t total_steps_ = 0;
  std::uint32_t loads_left_ = 0;
  std::uint32_t stores_left_ = 0;
  std::uint64_t accesses_done_ = 0;  ///< Streaming access count.
  /// Incremental streaming cursor: (stream_start + accesses_done_ *
  /// step_bytes) % working_set_bytes, maintained by one add and one
  /// conditional subtract per access instead of a 64-bit modulo (working
  /// sets are not powers of two).
  std::uint64_t stream_cursor_ = 0;
  /// step_bytes % working_set_bytes, fixed per instance.
  std::uint64_t stream_step_mod_ = 0;
  Addr last_load_addr_ = 0;          ///< Stores are read-modify-write.
  /// Icache spill fraction of the loaded instance's code footprint,
  /// computed once at start() instead of per step.
  double spill_frac_ = 0.0;
  bool pending_is_store_ = false;    ///< What the stalled access was.
  bool pending_is_ifetch_ = false;
  Addr pending_addr_ = 0;
  bool pending_translated_ = false;  ///< Fault check already done.

  /// Cold counters only (accesses, conflicts, completions); the four
  /// per-cycle counters live in the CeHot lanes. stats() merges them.
  CeStats stats_;
  CeHot own_hot_;
  CeHot* hot_ = &own_hot_;
  /// Backing storage for inst_.spec after a capsule load: the original
  /// spec lives inside scheduler-owned program storage that a freshly
  /// loaded System does not share, so the CE keeps its own copy (the
  /// interpreter only ever reads spec contents, never its address).
  isa::KernelSpec owned_spec_;
};

}  // namespace repro::fx8
