// Batch driver: several independent machines ("rigs") advanced through
// the fused tick kernel with one instruction stream.
//
// The bootstrap replicates of a study are embarrassingly rig-parallel:
// B machines tick the same preset with different RNG streams, and the
// dominant cycles are steady-state lanes. RigBatch runs the per-cycle
// component sequence of Machine::tick_block across its lanes — cluster
// (through the wide lane pass of fx8/lane_kernel.hpp), IPs, memory bus,
// shared cache — keeping each rig's own cycle order exactly serial.
//
// Lanes rotate at a coarse granularity rather than per cycle: a rig's
// per-block working set (cache tags, bank state, CE lanes, RNG) spans
// tens of kilobytes, so fine-grained interleaving evicts it on every
// turn and measures *slower* than serial, while the simulated misses of
// divergent rigs are too sparse for cross-rig overlap to pay that back.
// Long turns keep each rig cache-resident and leave the wide lane pass
// as the batch's per-cycle win (see docs/perf.md, "Rig-batched lanes").
//
// Two modes:
//  - run(): every lane advances one block window — until its budget is
//    exhausted or a cycle raises a cluster control event (peel-off).
//    Per rig this is bit-identical to Machine::tick_block(budget).
//  - run(refill): session mode. When a lane ends a block window, the
//    refill hook absorbs the consumed cycles (note_block_cycles), runs
//    the rig's scalar control decisions, and returns the next block
//    budget — so a lane stays hot across consecutive block windows and
//    only retires when its rig has no fused work left.
//
// Machines in a batch are normally fully independent. If they share one
// Mmu, give each a distinct Machine::set_mmu_rig lane first so the
// translation memos stay per-rig (see fx8/mmu.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "base/types.hpp"
#include "fx8/lane_kernel.hpp"

namespace repro::fx8 {

class Machine;

class RigBatch {
 public:
  /// Selects the lane pass for this host: AVX2 when compiled in and the
  /// CPU supports it, scalar otherwise or under FX8_FORCE_SCALAR (env).
  RigBatch() : pass_(select_lane_pass()) {}
  /// Pin a specific pass (differential tests drive scalar vs. AVX2).
  explicit RigBatch(LanePassFn pass) : pass_(pass) {}

  struct Lane {
    Machine* machine = nullptr;
    Cycle budget = 0;
    /// Caller's cookie for mapping lanes back to rigs after run().
    std::size_t tag = 0;
    /// Cycles actually advanced by the last run() (>= 1 for budget >= 1;
    /// less than budget when a control event peeled the lane off). In
    /// refill mode this is the progress of the lane's *current* block
    /// window only — the hook has already absorbed earlier windows.
    Cycle advanced = 0;
    std::uint64_t events_at_entry = 0;
  };

  /// Refill hook for run(refill): called when `tag`'s lane ends a block
  /// window, with the cycles consumed since the previous call. Returns
  /// the lane's next block budget; 0 retires the lane.
  using RefillFn = std::function<Cycle(std::size_t tag, Cycle advanced)>;

  void clear() { lanes_.clear(); }
  /// Enlist `machine` for up to `budget` fused cycles in the next run().
  void add(Machine& machine, Cycle budget, std::size_t tag = 0);
  [[nodiscard]] bool empty() const { return lanes_.empty(); }
  [[nodiscard]] std::size_t size() const { return lanes_.size(); }
  [[nodiscard]] std::span<const Lane> lanes() const { return lanes_; }
  [[nodiscard]] const char* pass_name() const {
    return lane_pass_name(pass_);
  }

  /// Advance every lane one block window: until its budget is exhausted
  /// or it ends a cycle that raised a cluster control event.
  void run();

  /// Session mode: advance every lane through consecutive block windows,
  /// drawing fresh budgets from `refill`, until every lane has retired.
  void run(const RefillFn& refill);

 private:
  /// One block window of Machine::tick_block's fused loop: up to `limit`
  /// cycles, stopping at the end of a cycle whose cluster_events moved
  /// off `events_at_entry` (sets `event`). Returns cycles advanced.
  static Cycle run_window(Machine& machine, LanePassFn pass, Cycle limit,
                          std::uint64_t events_at_entry, bool& event);

  LanePassFn pass_;
  std::vector<Lane> lanes_;
  std::vector<std::size_t> active_;  ///< run() scratch: live lane indices.
};

}  // namespace repro::fx8
