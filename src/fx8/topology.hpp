// Machine topology as a first-class runtime parameter.
//
// The measured machine is one 8-CE cluster, but the measurement pipeline
// is width-agnostic (§4.1: the measures "may be applied at any level of
// multiprocessing capability"). TopologyConfig names the knobs that grow
// the machine past the FX/8 — total CE count, cluster count, and
// overrides for the cache-bank and memory-bus fan-out — and
// resolve_topology() turns them into the shape Machine actually builds:
// n_clusters identical clusters of total/n_clusters CEs each, every
// cluster at most kMaxCes wide (the lane kernel's chunk width), sharing
// the banked cache and the memory buses through a second-level
// crossbar-of-crossbars (fx8/fabric.hpp). See docs/topology.md.
#pragma once

#include <cstdint>

#include "base/expect.hpp"
#include "base/types.hpp"
#include "mem/hot.hpp"

namespace repro::fx8 {

/// Topology knobs carried by MachineConfig. Zero means "inherit the
/// legacy single-cluster field" so every existing FX/1..FX/8 config —
/// which sets cluster.n_ces directly — keeps its exact meaning.
struct TopologyConfig {
  /// Total CE count across all clusters; 0 = n_clusters * cluster.n_ces.
  std::uint32_t n_ces = 0;
  /// Number of identical clusters sharing the cache and memory buses.
  std::uint32_t n_clusters = 1;
  /// Shared-cache bank override; 0 = shared_cache.banks.
  std::uint32_t cache_banks = 0;
  /// Memory-bus count override; 0 = membus.bus_count.
  std::uint32_t mem_buses = 0;
};

/// The shape resolve_topology() derives for Machine to build.
struct ResolvedTopology {
  std::uint32_t n_clusters = 1;
  std::uint32_t ces_per_cluster = kMaxCes;
  std::uint32_t total_ces = kMaxCes;
};

/// True iff the topology names a machine the lane kernel can chunk:
/// clusters of equal width 1..kMaxCes, at most kMaxTopologyCes CEs
/// total (the LaneMask capacity), and sane fan-out overrides.
[[nodiscard]] constexpr bool topology_valid(const TopologyConfig& t,
                                            std::uint32_t fallback_ces) {
  if (t.n_clusters < 1 || t.n_clusters > kMaxTopologyCes / kMaxCes) {
    return false;
  }
  const std::uint32_t total =
      t.n_ces != 0 ? t.n_ces : t.n_clusters * fallback_ces;
  if (total < 1 || total > kMaxTopologyCes) {
    return false;
  }
  if (total % t.n_clusters != 0) {
    return false;  // Clusters must be identical 8-lane-chunkable blocks.
  }
  const std::uint32_t per = total / t.n_clusters;
  if (per < 1 || per > kMaxCes) {
    return false;
  }
  if (t.cache_banks > 64) {
    return false;  // Crossbar grant masks are one 64-bit word.
  }
  return t.mem_buses <= mem::kMaxMemBuses;
}

/// Resolve (and validate) the topology against the per-cluster fallback
/// width (ClusterConfig::n_ces). Aborts on an invalid combination — CLI
/// front-ends validate with topology_valid() first and reject politely.
[[nodiscard]] inline ResolvedTopology resolve_topology(
    const TopologyConfig& t, std::uint32_t fallback_ces) {
  REPRO_EXPECT(topology_valid(t, fallback_ces),
               "invalid machine topology (clusters must be identical, "
               "1..8 CEs each, <= 64 CEs total)");
  ResolvedTopology r;
  r.n_clusters = t.n_clusters;
  r.total_ces = t.n_ces != 0 ? t.n_ces : t.n_clusters * fallback_ces;
  r.ces_per_cluster = r.total_ces / r.n_clusters;
  return r;
}

}  // namespace repro::fx8
