#include "fx8/rig_batch.hpp"

#include <algorithm>

#include "base/expect.hpp"
#include "fx8/machine.hpp"

namespace repro::fx8 {

namespace {
/// Cycles a lane runs per rotation turn in refill mode. Coarse on
/// purpose: a turn must amortize re-warming the rig's simulator working
/// set (tens of kilobytes of cache tags, bank state, and CE lanes), and
/// measured cross-rig miss overlap is too small to reward anything
/// finer. Lanes still rotate, so no rig falls more than one turn behind
/// its batch mates.
constexpr Cycle kLaneTurnCycles = 8192;
}  // namespace

void RigBatch::add(Machine& machine, Cycle budget, std::size_t tag) {
  REPRO_EXPECT(lanes_.size() < kMaxBatchRigs,
               "batch exceeds the rig cap (kMaxBatchRigs)");
  lanes_.push_back(Lane{&machine, budget, tag, 0, 0});
}

Cycle RigBatch::run_window(Machine& machine, LanePassFn pass, Cycle limit,
                          std::uint64_t events_at_entry, bool& event) {
  // Exactly Machine::tick_block's width-native loop body with the batch's
  // pinned pass; the owning-pointer hops are hoisted once per window.
  // Every cluster runs its control half, then ONE machine-wide lane pass
  // sweeps all lanes, then only slow lanes peel into their cluster — so
  // a 64-CE rig costs one pass per cycle, not eight.
  HotState& hot = machine.hot_state_;
  ClusterFabric* const fabric = machine.fabric_.get();
  Cluster* const* clusters = machine.cluster_ptrs_.data();
  const std::size_t n_clusters = machine.cluster_ptrs_.size();
  mem::MemoryBus& membus = *machine.membus_;
  cache::SharedCache& shared_cache = *machine.shared_cache_;
  Ip* const ips = machine.ips_.data();
  const std::size_t n_ips = machine.ips_.size();
  CeHot& lanes = hot.lanes;
  Cycle done = 0;
  event = false;
  while (done < limit) {
    if (fabric != nullptr && !fabric->idle()) {
      fabric->begin_cycle();
    }
    for (std::size_t k = 0; k < n_clusters; ++k) {
      clusters[k]->tick_control();
    }
    // Same live-prefix bound as Machine::tick_block: lanes above the
    // highest live cluster are parked and value-stable, so the pass
    // skips them.
    std::uint32_t live_lanes = 0;
    for (std::size_t k = n_clusters; k-- > 0;) {
      if (clusters[k]->lanes_live()) {
        live_lanes = clusters[k]->lane_end();
        break;
      }
    }
    if (live_lanes != 0) {
      const LaneMask slow =
          pass(lanes, shared_cache.fill_ready_mask(), live_lanes);
      if (slow != 0) {
        for (std::size_t k = 0; k < n_clusters; ++k) {
          clusters[k]->tick_peel(slow);
        }
      }
    }
    for (std::size_t p = 0; p < n_ips; ++p) {
      ips[p].tick();
    }
    membus.tick(hot.now);
    shared_cache.tick();
    ++hot.now;
    ++done;
    if (hot.cluster_events != events_at_entry) {
      // A control event ended this lane's block: the OS layer must react
      // before the rig can run fused again.
      event = true;
      break;
    }
  }
  return done;
}

void RigBatch::run() {
  const LanePassFn pass = pass_;
  for (Lane& lane : lanes_) {
    lane.events_at_entry = lane.machine->hot_state_.cluster_events;
    bool event = false;
    lane.advanced =
        run_window(*lane.machine, pass, lane.budget, lane.events_at_entry,
                   event);
  }
}

void RigBatch::run(const RefillFn& refill) {
  active_.clear();
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    Lane& lane = lanes_[i];
    lane.advanced = 0;
    lane.events_at_entry = lane.machine->hot_state_.cluster_events;
    if (lane.budget > 0) {
      active_.push_back(i);
    }
  }
  const LanePassFn pass = pass_;
  while (!active_.empty()) {
    std::size_t i = 0;
    while (i < active_.size()) {
      Lane& lane = lanes_[active_[i]];
      Machine& machine = *lane.machine;
      Cycle turn = 0;
      bool retire = false;
      while (turn < kLaneTurnCycles) {
        const Cycle limit =
            std::min(lane.budget - lane.advanced, kLaneTurnCycles - turn);
        bool event = false;
        const Cycle done =
            run_window(machine, pass, limit, lane.events_at_entry, event);
        lane.advanced += done;
        turn += done;
        if (!event && lane.advanced < lane.budget) {
          continue;  // Turn limit split the window; resume next turn.
        }
        // Block window over (budget spent or control event): hand the
        // consumed cycles to the refill hook, which runs the rig's
        // scalar control decisions and either retires the lane or hands
        // back the next block budget. The hook may tick the machine
        // itself (OS lockstep steps, acquisition windows), so the event
        // baseline is re-latched from the machine afterwards.
        const Cycle next = refill(lane.tag, lane.advanced);
        if (next == 0) {
          retire = true;
          break;
        }
        lane.budget = next;
        lane.advanced = 0;
        lane.events_at_entry = machine.hot_state_.cluster_events;
      }
      if (retire) {
        active_[i] = active_.back();
        active_.pop_back();
        continue;
      }
      ++i;
    }
  }
}

}  // namespace repro::fx8
