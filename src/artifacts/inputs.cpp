#include "artifacts/inputs.hpp"

#include "base/expect.hpp"
#include "workload/presets.hpp"

namespace repro::artifacts {

namespace {

/// Fetch-or-compute through the store: a hit deserializes the cold run's
/// result, a miss (of any kind — absent, truncated, tampered, stale
/// salt) runs the experiment and writes back. A blob that unseals but
/// fails the result walk is also just a miss.
template <typename T, typename Run>
T cached_result(ResultStore* store, std::uint64_t key, const Run& run) {
  if (store != nullptr) {
    if (auto payload = store->get(key)) {
      try {
        return decode_result<T>(std::move(*payload));
      } catch (const capsule::CapsuleError&) {
        // Walk-shape mismatch after a clean unseal: recompute below.
      }
    }
  }
  T result = run();
  if (store != nullptr) {
    store->put(key, encode_result(result));
  }
  return result;
}

}  // namespace

Inputs::Inputs(bool quick, const std::string& cache_dir)
    : quick_(quick),
      study_config_(quick ? core::presets::quick_study()
                          : core::presets::bench_study()),
      transition_config_(quick ? core::presets::quick_transition()
                               : core::presets::bench_transition()) {
  if (!cache_dir.empty()) {
    store_ = std::make_unique<ResultStore>(cache_dir);
  }
}

const core::StudyResult& Inputs::study() {
  if (!study_) {
    study_ = cached_result<core::StudyResult>(
        store_.get(), study_cache_key(study_config_), [this] {
          ++counts_.study_runs;
          return core::run_default_study(study_config_);
        });
  }
  return *study_;
}

const std::vector<core::AnalyzedSample>& Inputs::samples() {
  if (!samples_) {
    samples_ = study().all_samples();
  }
  return *samples_;
}

const std::vector<core::AnalyzedSample>& Inputs::samples_with_pc() {
  if (!samples_with_pc_) {
    samples_with_pc_ = core::with_defined_pc(samples());
  }
  return *samples_with_pc_;
}

const std::vector<core::MedianModel>& Inputs::models() {
  if (!models_) {
    models_ = core::fit_all_models(samples());
  }
  return *models_;
}

const core::MedianModel& Inputs::model(core::SystemMeasure measure,
                                       core::Regressor regressor) {
  for (const core::MedianModel& model : models()) {
    if (model.measure == measure && model.regressor == regressor) {
      return model;
    }
  }
  REPRO_EXPECT(false, "no fitted model for the requested measure/regressor");
}

const core::TransitionResult& Inputs::transition() {
  if (!transition_) {
    transition_ = cached_result<core::TransitionResult>(
        store_.get(), transition_cache_key(transition_config_), [this] {
          ++counts_.transition_runs;
          return core::run_transition_study(
              workload::high_concurrency_mix(), transition_config_,
              instr::TriggerMode::kTransitionFromFull);
        });
  }
  return *transition_;
}

const core::StudyResult* Inputs::study_for_report() {
  if (study_) {
    return &*study_;
  }
  if (store_ != nullptr) {
    if (auto payload = store_->get(study_cache_key(study_config_))) {
      try {
        study_ = decode_result<core::StudyResult>(std::move(*payload));
        return &*study_;
      } catch (const capsule::CapsuleError&) {
      }
    }
  }
  return nullptr;
}

}  // namespace repro::artifacts
