#include "artifacts/inputs.hpp"

#include "base/expect.hpp"
#include "workload/presets.hpp"

namespace repro::artifacts {

Inputs::Inputs(bool quick)
    : quick_(quick),
      study_config_(quick ? core::presets::quick_study()
                          : core::presets::bench_study()),
      transition_config_(quick ? core::presets::quick_transition()
                               : core::presets::bench_transition()) {}

const core::StudyResult& Inputs::study() {
  if (!study_) {
    study_ = core::run_default_study(study_config_);
    ++counts_.study_runs;
  }
  return *study_;
}

const std::vector<core::AnalyzedSample>& Inputs::samples() {
  if (!samples_) {
    samples_ = study().all_samples();
  }
  return *samples_;
}

const std::vector<core::AnalyzedSample>& Inputs::samples_with_pc() {
  if (!samples_with_pc_) {
    samples_with_pc_ = core::with_defined_pc(samples());
  }
  return *samples_with_pc_;
}

const std::vector<core::MedianModel>& Inputs::models() {
  if (!models_) {
    models_ = core::fit_all_models(samples());
  }
  return *models_;
}

const core::MedianModel& Inputs::model(core::SystemMeasure measure,
                                       core::Regressor regressor) {
  for (const core::MedianModel& model : models()) {
    if (model.measure == measure && model.regressor == regressor) {
      return model;
    }
  }
  REPRO_EXPECT(false, "no fitted model for the requested measure/regressor");
}

const core::TransitionResult& Inputs::transition() {
  if (!transition_) {
    transition_ = core::run_transition_study(
        workload::high_concurrency_mix(), transition_config_,
        instr::TriggerMode::kTransitionFromFull);
    ++counts_.transition_runs;
  }
  return *transition_;
}

}  // namespace repro::artifacts
