// Contention-scenario artifacts: the lock workload family under the
// measurement pipeline (lock_scaling) and the analytical coarse-grained
// locking predictor cross-checked against the simulator
// (predictor_validation). Extensions in the spirit of §6: the paper's
// methodology applied to synchronization-bound workloads.
#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "artifacts/inputs.hpp"
#include "artifacts/registry.hpp"
#include "base/text.hpp"
#include "base/types.hpp"
#include "core/measures.hpp"
#include "instr/session_controller.hpp"
#include "model/lock_model.hpp"
#include "os/system.hpp"
#include "workload/contention.hpp"
#include "workload/generator.hpp"
#include "workload/presets.hpp"

namespace repro::artifacts {

namespace {

// ---------------------------------------------------------------------
// lock_scaling: Cw / Pc / bus-busy / job throughput across machine
// widths 8..64 for both lock types. One concurrent loop runs on one
// cluster, so widening the machine adds lock *domains* (more clusters
// serving independent lock jobs), not more contenders per lock.

struct LockScalingRow {
  core::ConcurrencyMeasures measures;
  double bus_busy = 0.0;
  double jobs_per_mcycle = 0.0;
  std::uint64_t fabric_conflicts = 0;
  std::uint32_t clusters = 1;
};

os::SystemConfig width_config(std::uint32_t width) {
  os::SystemConfig config;
  switch (width) {
    case 16:
      config.machine = fx8::MachineConfig::fx16();
      break;
    case 32:
      config.machine = fx8::MachineConfig::fx32();
      break;
    case 64:
      config.machine = fx8::MachineConfig::fx64();
      break;
    default:
      break;  // the stock FX/8
  }
  return config;
}

LockScalingRow run_lock_width(Context& ctx, std::uint32_t width,
                              workload::LockType lock) {
  os::System system{width_config(width)};
  const std::uint32_t clusters = system.machine().n_clusters();
  workload::WorkloadMix mix = workload::lock_contention_mix(lock);
  // Clusters schedule independently off one FIFO queue; deepen the
  // arrival bursts so every cluster stays fed (the width_scaling idiom).
  mix.mean_burst_jobs *= clusters;
  workload::WorkloadGenerator generator(mix, 0x10C4);
  instr::SamplingConfig sampling;
  sampling.interval_cycles = 50000;
  instr::SessionController controller(system, generator, sampling, 0x10C4);
  ctx.in().note_private_run();

  instr::EventCounts totals;
  for (const instr::SampleRecord& record :
       controller.run_session(ctx.in().scaled(5, 2))) {
    totals.merge(record.hw);
  }
  LockScalingRow row;
  row.measures = core::ConcurrencyMeasures::from_counts(
      std::span(totals.num).first(width + 1));
  row.bus_busy = totals.bus_busy();
  row.clusters = clusters;
  const Cycle elapsed = system.now();
  row.jobs_per_mcycle =
      elapsed > 0 ? 1e6 * static_cast<double>(
                              system.scheduler().stats().jobs_completed) /
                        static_cast<double>(elapsed)
                  : 0.0;
  if (const fx8::ClusterFabric* fabric = system.machine().fabric()) {
    row.fabric_conflicts = fabric->conflicts();
  }
  return row;
}

void render_lock_scaling(Context& ctx) {
  const std::array<std::uint32_t, 4> widths = {8, 16, 32, 64};
  const std::array<workload::LockType, 2> locks = {
      workload::LockType::kTicket, workload::LockType::kMcs};
  ctx.printf("  %-7s %-6s %-9s %8s %8s %10s %12s %12s\n", "lock", "CEs",
             "clusters", "Cw", "Pc", "busbusy", "jobs/Mcyc", "xconflicts");
  // rows[lock][width index]
  std::array<std::array<LockScalingRow, 4>, 2> rows;
  for (std::size_t l = 0; l < locks.size(); ++l) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      rows[l][i] = run_lock_width(ctx, widths[i], locks[l]);
      const LockScalingRow& row = rows[l][i];
      ctx.printf("  %-7s %-6u %-9u %8.4f %8s %10.4f %12.2f %12llu\n",
                 workload::to_string(locks[l]), widths[i], row.clusters,
                 row.measures.cw,
                 row.measures.pc_defined
                     ? repro::fixed(row.measures.pc, 2).c_str()
                     : "n/a",
                 row.bus_busy, row.jobs_per_mcycle,
                 static_cast<unsigned long long>(row.fabric_conflicts));
    }
  }
  ctx.printf(
      "\n(each lock job runs its critical sections in FIFO order on one\n"
      "cluster — the CCB dependence chain is the queue lock — so wider\n"
      "machines add independent lock domains rather than contenders;\n"
      "job throughput scales with clusters while Cw stays set by the\n"
      "critical/parallel ratio)\n");

  // Structural invariants. Every configuration must complete work...
  double min_jobs = rows[0][0].jobs_per_mcycle;
  double worst_pc_over_width = 0.0;
  for (std::size_t l = 0; l < locks.size(); ++l) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      min_jobs = std::min(min_jobs, rows[l][i].jobs_per_mcycle);
      const double pc =
          rows[l][i].measures.pc_defined ? rows[l][i].measures.pc : 0.0;
      worst_pc_over_width = std::max(
          worst_pc_over_width, pc / static_cast<double>(widths[i]));
    }
  }
  ctx.check("min_jobs_per_mcycle", min_jobs, 2.0, 0.01, 1e6);
  // ...Pc never exceeds the machine width...
  ctx.check("max_pc_over_width", worst_pc_over_width, 0.9, 0.0, 1.0);
  // ...adding clusters scales lock-job throughput (more lock domains):
  // 8 -> 64 CEs should buy clearly more completed jobs per cycle.
  ctx.check("mcs_throughput_gain_8_to_64",
            rows[1][0].jobs_per_mcycle > 0.0
                ? rows[1][3].jobs_per_mcycle / rows[1][0].jobs_per_mcycle
                : NAN,
            4.0, 1.5, 16.0);
  // The MCS handoff is cheaper than the ticket lock's shared now-serving
  // bump, so at equal width MCS completes at least as many jobs. Noise
  // from arrival draws keeps this informational below a clear margin.
  ctx.note("mcs_over_ticket_throughput_width8",
           rows[0][0].jobs_per_mcycle > 0.0
               ? rows[1][0].jobs_per_mcycle / rows[0][0].jobs_per_mcycle
               : NAN,
           1.05, 0.95, 3.0);
  ctx.metric("ticket_cw_width8", rows[0][0].measures.cw);
  ctx.metric("mcs_cw_width8", rows[1][0].measures.cw);
  ctx.metric("ticket_jobs_per_mcycle_width64", rows[0][3].jobs_per_mcycle);
  ctx.metric("mcs_jobs_per_mcycle_width64", rows[1][3].jobs_per_mcycle);
  ctx.metric("fabric_conflicts_width64",
             static_cast<double>(rows[1][3].fabric_conflicts));
}

// ---------------------------------------------------------------------
// predictor_validation: the closed-form coarse-grained-locking round
// model against simulator ground truth, point by point, with a pruning
// mode that skips simulation wherever the model's own bounds already
// resolve the answer within the tolerance band.

/// The documented tolerance band: relative half-width within which the
/// model's [lo, hi] bracket counts as resolving a point, and the
/// maximum |predicted - measured| / measured accepted on simulated
/// points. (The calibration tests pin the model well inside this.)
constexpr double kToleranceBand = 0.10;

/// Cycles for one pinned-round lock job to drain through a stock FX/8.
Cycle drain_lock_job(const workload::LockJobParams& params,
                     std::uint32_t rounds) {
  os::System system{os::SystemConfig{}};
  Rng rng(0x5E5510);
  workload::LockJobParams pinned = params;
  pinned.min_rounds = rounds;
  pinned.max_rounds = rounds;
  system.scheduler().submit(workload::make_lock_job(1, rng, pinned, 0));
  constexpr Cycle kGuard = 50'000'000;
  while (!system.scheduler().idle() && system.now() < kGuard) {
    system.tick();
  }
  return system.now();
}

/// Simulator ground truth: marginal cycles per round between two round
/// counts, cancelling job load/teardown and cold-start cache misses.
double measured_round_cycles(const workload::LockJobParams& params) {
  constexpr std::uint32_t kLow = 2;
  constexpr std::uint32_t kHigh = 10;
  const Cycle t_low = drain_lock_job(params, kLow);
  const Cycle t_high = drain_lock_job(params, kHigh);
  return static_cast<double>(t_high - t_low) / (kHigh - kLow);
}

void render_predictor_validation(Context& ctx) {
  // The sweep: both lock types x contender counts x critical/parallel
  // ratios. The last scenario of each lock type is an anchor — always
  // simulated, even when the model resolves it, so a pruned run still
  // cross-checks the model against live cycles.
  struct Point {
    workload::LockJobParams params;
    bool anchor = false;
  };
  std::vector<Point> points;
  for (const workload::LockType lock :
       {workload::LockType::kTicket, workload::LockType::kMcs}) {
    for (const std::uint32_t contenders : {2u, 4u, 8u}) {
      for (const std::uint32_t critical : {6u, 24u}) {
        Point point;
        point.params.lock = lock;
        point.params.contenders = contenders;
        point.params.critical_steps = critical;
        point.params.parallel_steps = 48;
        point.anchor = contenders == 8 && critical == 24;
        points.push_back(point);
      }
    }
  }

  const bool prune = ctx.quick();
  ctx.printf("tolerance band: +/-%.0f%%; pruning %s\n\n",
             100.0 * kToleranceBand, prune ? "ON (quick)" : "off (full)");
  ctx.printf("  %-7s %3s %5s %10s %10s %20s %9s\n", "lock", "n", "crit",
             "predicted", "measured", "bounds", "err");

  std::uint32_t simulated = 0;
  std::uint32_t pruned = 0;
  std::uint32_t in_bracket = 0;
  double max_rel_err = 0.0;
  double sum_rel_err = 0.0;
  double ticket_n8 = 0.0;
  double mcs_n8 = 0.0;
  for (const Point& point : points) {
    const model::LockPrediction prediction =
        model::predict_lock_round(point.params);
    const bool resolved = prediction.resolves_within(kToleranceBand);
    if (prune && resolved && !point.anchor) {
      ++pruned;
      ctx.printf("  %-7s %3u %5u %10.1f %10s [%8.1f, %8.1f] %9s\n",
                 workload::to_string(point.params.lock),
                 point.params.contenders, point.params.critical_steps,
                 prediction.round_cycles, "pruned", prediction.lo_cycles,
                 prediction.hi_cycles, "-");
      continue;
    }
    ctx.in().note_private_run();
    const double measured = measured_round_cycles(point.params);
    ++simulated;
    const double rel_err =
        std::abs(prediction.round_cycles - measured) / measured;
    max_rel_err = std::max(max_rel_err, rel_err);
    sum_rel_err += rel_err;
    if (measured >= prediction.lo_cycles &&
        measured <= prediction.hi_cycles) {
      ++in_bracket;
    }
    if (point.params.contenders == 8 && point.params.critical_steps == 24) {
      (point.params.lock == workload::LockType::kTicket ? ticket_n8
                                                        : mcs_n8) = measured;
    }
    ctx.printf("  %-7s %3u %5u %10.1f %10.1f [%8.1f, %8.1f] %+8.2f%%\n",
               workload::to_string(point.params.lock),
               point.params.contenders, point.params.critical_steps,
               prediction.round_cycles, measured, prediction.lo_cycles,
               prediction.hi_cycles, 100.0 * rel_err);
  }
  ctx.printf(
      "\n(%u points: %u simulated, %u resolved by the model's bounds\n"
      "alone; measurements are marginal round times between two round\n"
      "counts, so cold-start effects cancel)\n",
      static_cast<std::uint32_t>(points.size()), simulated, pruned);

  ctx.metric("points_total", static_cast<double>(points.size()));
  ctx.metric("points_simulated", static_cast<double>(simulated));
  ctx.metric("points_pruned", static_cast<double>(pruned));
  // Every simulated point must sit inside the model's bracket and within
  // the documented band of the point estimate.
  ctx.check("bracket_coverage",
            simulated > 0
                ? static_cast<double>(in_bracket) / simulated
                : NAN,
            1.0, 0.999, 1.0);
  ctx.check("max_rel_err", max_rel_err, 0.02, 0.0, kToleranceBand);
  ctx.check("mean_rel_err", simulated > 0 ? sum_rel_err / simulated : NAN,
            0.01, 0.0, kToleranceBand / 2.0);
  // The anchors are always live: the ticket lock's shared now-serving
  // handoff must cost real cycles over MCS at full contention.
  ctx.check("ticket_over_mcs_round_n8",
            mcs_n8 > 0.0 ? ticket_n8 / mcs_n8 : NAN, 1.07, 1.0, 2.0);
}

}  // namespace

void register_contention(std::vector<ArtifactDef>& catalog) {
  catalog.push_back(
      {"lock_scaling", ArtifactKind::kExtension, "§6",
       "EXTENSION — lock-contention scenarios across FX/8..FX/64 machines",
       "coarse-grained lock jobs (ticket and MCS queue locks via the CCB "
       "dependence chain) keep completing as clusters are added; Pc stays "
       "bounded by the width and MCS hands off no slower than ticket",
       render_lock_scaling});
  catalog.push_back(
      {"predictor_validation", ArtifactKind::kExtension, "§6",
       "EXTENSION — analytical lock-throughput model vs. simulator",
       "the coarse-grained-locking round model T = D_par + N*(D_crit + "
       "handoff) brackets the simulator at every sweep point within the "
       "documented tolerance band, and its bounds prune simulation where "
       "they already resolve the answer",
       render_predictor_validation});
}

}  // namespace repro::artifacts
