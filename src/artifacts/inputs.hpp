// The shared study cache behind the artifact pipeline.
//
// Sixteen of the paper's artifacts read the same nine-session
// random-sampling study and two read the same triggered transition
// study; the old one-shot bench binaries re-ran them once each (~20
// study runs per full reproduction). Inputs memoizes each experiment
// the first time an artifact asks for it and hands every later artifact
// the cached result — the experiments run *at most once* per fx8bench
// invocation, which `run_counts()` makes auditable in the JSON report.
//
// Derived views (the flattened sample population, the Pc-defined subset,
// the six fitted regression models) are memoized too, since half the
// artifacts recompute them from the same study.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "artifacts/result_store.hpp"
#include "core/presets.hpp"
#include "core/regression_models.hpp"
#include "core/sample.hpp"
#include "core/study.hpp"
#include "core/transition.hpp"

namespace repro::artifacts {

struct RunCounts {
  int study_runs = 0;       ///< Shared nine-session studies executed.
  int transition_runs = 0;  ///< Shared transition studies executed.
  int private_runs = 0;     ///< Artifact-private simulations executed.
};

class Inputs {
 public:
  /// `quick` swaps the paper-scale populations for the CI-scale presets
  /// (core::presets::quick_*) and tells artifact-private simulations to
  /// shrink via scaled().
  ///
  /// A non-empty `cache_dir` opens (creating if needed) the persistent
  /// result store there: study() and transition() consult it before
  /// running and write back after, and the runner caches whole rendered
  /// artifacts through store(). Empty = in-process memoization only,
  /// exactly the pre-cache behaviour.
  explicit Inputs(bool quick = false, const std::string& cache_dir = {});

  [[nodiscard]] bool quick() const { return quick_; }
  [[nodiscard]] const core::StudyConfig& study_config() const {
    return study_config_;
  }
  [[nodiscard]] const core::TransitionConfig& transition_config() const {
    return transition_config_;
  }

  /// The shared nine-session study (memoized; runs on first call).
  const core::StudyResult& study();

  /// study().all_samples(), flattened once.
  const std::vector<core::AnalyzedSample>& samples();

  /// The Pc-defined subset of samples(), filtered once.
  const std::vector<core::AnalyzedSample>& samples_with_pc();

  /// The six Table 3/4 median models over samples(), fitted once.
  const std::vector<core::MedianModel>& models();

  /// One fitted model out of models().
  const core::MedianModel& model(core::SystemMeasure measure,
                                 core::Regressor regressor);

  /// The shared 8-active -> lower transition study (memoized).
  const core::TransitionResult& transition();

  /// The cached study if some artifact already forced it, else nullptr
  /// (for reporting — never triggers a run).
  [[nodiscard]] const core::StudyResult* study_if_run() const {
    return study_ ? &*study_ : nullptr;
  }

  /// study_if_run(), except a warm store may satisfy it without a run:
  /// on a fully cached invocation the report's `study_engine` section
  /// still matches the cold run's byte for byte. Never simulates.
  [[nodiscard]] const core::StudyResult* study_for_report();

  /// The persistent store, or nullptr when caching is disabled.
  [[nodiscard]] ResultStore* store() { return store_.get(); }
  [[nodiscard]] const ResultStore* store() const { return store_.get(); }

  /// Key of one rendered artifact under this Inputs' configs.
  [[nodiscard]] std::uint64_t artifact_key(const std::string& id) const {
    return artifact_cache_key(id, study_config_, transition_config_, quick_);
  }

  /// Scale an artifact-private population: `full` normally, `quick`
  /// under --quick. Call note_private_run() next to the simulation so
  /// the run accounting stays honest.
  [[nodiscard]] std::uint32_t scaled(std::uint32_t full,
                                     std::uint32_t quick) const {
    return quick_ ? quick : full;
  }

  void note_private_run() { ++counts_.private_runs; }

  [[nodiscard]] const RunCounts& run_counts() const { return counts_; }

 private:
  bool quick_;
  core::StudyConfig study_config_;
  core::TransitionConfig transition_config_;
  std::unique_ptr<ResultStore> store_;
  std::optional<core::StudyResult> study_;
  std::optional<std::vector<core::AnalyzedSample>> samples_;
  std::optional<std::vector<core::AnalyzedSample>> samples_with_pc_;
  std::optional<std::vector<core::MedianModel>> models_;
  std::optional<core::TransitionResult> transition_;
  RunCounts counts_;
};

}  // namespace repro::artifacts
