// The beyond-the-paper extensions: methodology validation and the §6
// future-work studies. Ported from the bench_trace_vs_sampling,
// bench_scheduling_policy, bench_width_sweep, bench_correlation_matrix,
// bench_detached_artifact and bench_high_concurrency_captures binaries.
#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "artifacts/inputs.hpp"
#include "artifacts/registry.hpp"
#include "base/text.hpp"
#include "base/types.hpp"
#include "core/sample.hpp"
#include "instr/session_controller.hpp"
#include "os/system.hpp"
#include "stats/correlation.hpp"
#include "trace/profile.hpp"
#include "trace/tracer.hpp"
#include "workload/generator.hpp"
#include "workload/presets.hpp"

namespace repro::artifacts {

namespace {

/// Time with >= 2 loop iterations in flight over [t0, t1], from marker
/// traces; also the mean overlap during that time when requested.
struct TraceTruth {
  double cw = 0.0;
  double pc = 0.0;
};

TraceTruth trace_ground_truth(std::span<const trace::TraceEvent> events,
                              Cycle t0, Cycle t1) {
  std::vector<std::pair<Cycle, int>> deltas;
  for (const trace::TraceEvent& event : events) {
    if (event.time < t0 || event.time > t1) {
      continue;
    }
    if (event.kind == trace::EventKind::kIterationStart) {
      deltas.emplace_back(event.time, +1);
    } else if (event.kind == trace::EventKind::kIterationEnd) {
      deltas.emplace_back(event.time, -1);
    }
  }
  std::sort(deltas.begin(), deltas.end());
  Cycle concurrent_time = 0;
  double overlap_integral = 0.0;
  int overlap = 0;
  Cycle prev = t0;
  for (const auto& [time, delta] : deltas) {
    if (overlap >= 2) {
      concurrent_time += time - prev;
      overlap_integral += static_cast<double>(overlap) *
                          static_cast<double>(time - prev);
    }
    overlap += delta;
    prev = time;
  }
  TraceTruth truth;
  truth.cw = static_cast<double>(concurrent_time) /
             static_cast<double>(t1 - t0);
  truth.pc = concurrent_time > 0
                 ? overlap_integral / static_cast<double>(concurrent_time)
                 : 0.0;
  return truth;
}

// ---------------------------------------------------------------------
// Methodology validation: sampling vs. marker tracing (§2.1).

void render_trace_vs_sampling(Context& ctx) {
  os::System system{os::SystemConfig{}};
  trace::EventTracer tracer;
  system.machine().cluster().set_observer(&tracer);

  workload::WorkloadMix mix = workload::session_presets()[2];  // busy mix
  workload::WorkloadGenerator generator(mix, 0xFACADE);
  instr::SamplingConfig sampling;
  sampling.interval_cycles = 60000;
  instr::SessionController controller(system, generator, sampling,
                                      0xFACADE);
  ctx.in().note_private_run();

  const Cycle t0 = system.now();
  const auto records = controller.run_session(ctx.in().scaled(10, 4));
  const Cycle t1 = system.now();

  // Sampling estimate: aggregate counts over the session.
  instr::EventCounts totals;
  for (const instr::SampleRecord& record : records) {
    totals.merge(record.hw);
  }
  const auto sampled = core::ConcurrencyMeasures::from_counts(totals.num);

  // Trace ground truth over the same wall-clock span.
  const TraceTruth exact = trace_ground_truth(tracer.events(), t0, t1);

  ctx.printf("                sampling   trace ground truth\n");
  ctx.printf("  Cw            %8.4f   %8.4f\n", sampled.cw, exact.cw);
  ctx.printf("  Pc            %8.2f   %8.2f\n", sampled.pc, exact.pc);
  ctx.printf("\n(agreement within a few percent validates the sampling "
             "methodology;\nsmall gaps come from dispatch/dependence "
             "states the CCB probe counts\nas active while no iteration "
             "body is in flight)\n");
  ctx.printf("\njobs traced: %zu, trace events: %zu\n",
             trace::profile_all(tracer.events()).size(),
             tracer.events().size());

  // "Within a few percent": the probe counts dispatch/dependence states
  // as active and misses sub-interval overlap, so the gap can land on
  // either side of zero, but it stays small.
  ctx.check("cw_gap", sampled.cw - exact.cw, 0.0, -0.12, 0.12);
  ctx.metric("sampled_cw", sampled.cw);
  ctx.metric("trace_cw", exact.cw);
  ctx.note("pc_gap", sampled.pc - exact.pc, 0.0, -2.0, 2.0);
}

// ---------------------------------------------------------------------
// Scheduling-parameter study (the paper's §6 future work).

struct PolicyResult {
  core::ConcurrencyMeasures measures;
  double mean_wait = 0.0;
  std::uint64_t jobs_completed = 0;
};

PolicyResult run_policy(Context& ctx, os::SchedulingPolicy policy) {
  os::SystemConfig config;
  config.scheduling = policy;
  os::System system{config};
  workload::WorkloadMix mix = workload::session_presets()[2];
  mix.mean_burst_jobs = 4.0;  // deep queues make the discipline matter
  workload::WorkloadGenerator generator(mix, 0x5CED);
  instr::SamplingConfig sampling;
  sampling.interval_cycles = 60000;
  instr::SessionController controller(system, generator, sampling, 0x5CED);
  ctx.in().note_private_run();

  instr::EventCounts totals;
  for (const instr::SampleRecord& record :
       controller.run_session(ctx.in().scaled(8, 3))) {
    totals.merge(record.hw);
  }
  PolicyResult result;
  result.measures = core::ConcurrencyMeasures::from_counts(totals.num);
  const auto& stats = system.scheduler().stats();
  result.jobs_completed = stats.jobs_completed;
  result.mean_wait = stats.jobs_completed == 0
                         ? 0.0
                         : static_cast<double>(stats.total_wait_cycles) /
                               static_cast<double>(stats.jobs_completed);
  return result;
}

const char* policy_name(os::SchedulingPolicy policy) {
  switch (policy) {
    case os::SchedulingPolicy::kFifo:
      return "fifo";
    case os::SchedulingPolicy::kConcurrentFirst:
      return "concurrent-first";
    case os::SchedulingPolicy::kSerialFirst:
      return "serial-first";
  }
  return "?";
}

void render_scheduling_policy(Context& ctx) {
  const std::array<os::SchedulingPolicy, 3> policies = {
      os::SchedulingPolicy::kFifo, os::SchedulingPolicy::kConcurrentFirst,
      os::SchedulingPolicy::kSerialFirst};

  ctx.printf("  %-18s %8s %8s %10s %8s\n", "policy", "Cw", "Pc",
             "mean-wait", "jobs");
  std::array<PolicyResult, 3> results;
  for (std::size_t p = 0; p < policies.size(); ++p) {
    results[p] = run_policy(ctx, policies[p]);
    ctx.printf("  %-18s %8.4f %8.2f %10.0f %8llu\n",
               policy_name(policies[p]), results[p].measures.cw,
               results[p].measures.pc_defined ? results[p].measures.pc
                                              : 0.0,
               results[p].mean_wait,
               static_cast<unsigned long long>(results[p].jobs_completed));
  }
  ctx.printf(
      "\n(the same programs, arrivals and machine; only the run-queue\n"
      "discipline differs — concurrent-first front-loads the concurrency,\n"
      "serial-first defers it)\n");

  ctx.check("fifo_cw", results[0].measures.cw, 0.5, 0.0, 1.0);
  ctx.metric("concurrent_first_cw", results[1].measures.cw);
  ctx.metric("serial_first_cw", results[2].measures.cw);
  // The knob moves *when* concurrency appears more than how much of it
  // there is; the Cw spread across disciplines stays modest.
  ctx.note("policy_cw_spread",
           std::abs(results[1].measures.cw - results[2].measures.cw), 0.0,
           0.0, 0.5);
}

// ---------------------------------------------------------------------
// Machine-width sweep: FX/1 .. FX/8 (§4.1, §6, Appendix C).

struct WidthRow {
  core::ConcurrencyMeasures measures;
  double miss_rate = 0.0;
  double bus_busy = 0.0;
};

WidthRow run_width(Context& ctx, std::uint32_t width) {
  os::SystemConfig config;
  config.machine.cluster.n_ces = width;
  if (width != kMaxCes) {
    config.machine.cluster.policy = fx8::ServicePolicy::kAscending;
  }
  os::System system{config};
  workload::WorkloadMix mix = workload::session_presets()[2];
  // Trip law widths follow the machine.
  mix.numeric.trip_law.width = width;
  workload::WorkloadGenerator generator(mix, 0x81D5);
  instr::SamplingConfig sampling;
  sampling.interval_cycles = 50000;
  instr::SessionController controller(system, generator, sampling, 0x81D5);
  ctx.in().note_private_run();

  instr::EventCounts totals;
  for (const instr::SampleRecord& record :
       controller.run_session(ctx.in().scaled(5, 2))) {
    totals.merge(record.hw);
  }
  WidthRow row;
  row.measures = core::ConcurrencyMeasures::from_counts(
      std::span(totals.num).first(width + 1));
  row.miss_rate = totals.miss_rate();
  row.bus_busy = totals.bus_busy();
  return row;
}

void render_width_sweep(Context& ctx) {
  ctx.printf("  %-6s %8s %8s %10s %10s\n", "CEs", "Cw", "Pc", "missrate",
             "busbusy");
  double cw_at_1 = 0.0;
  double pc_at_8 = 0.0;
  for (std::uint32_t width = 1; width <= 8; ++width) {
    const WidthRow row = run_width(ctx, width);
    ctx.printf("  %-6u %8.4f %8s %10.4f %10.4f\n", width, row.measures.cw,
               row.measures.pc_defined
                   ? repro::fixed(row.measures.pc, 2).c_str()
                   : "n/a",
               row.miss_rate, row.bus_busy);
    if (width == 1) {
      cw_at_1 = row.measures.cw;
    }
    if (width == 8) {
      pc_at_8 = row.measures.pc_defined ? row.measures.pc : 0.0;
    }
  }
  ctx.printf(
      "\n(a 1-CE machine can have no workload concurrency by definition;\n"
      "Pc tracks the width ceiling as processors are added)\n");

  // Structural invariants of the measures (§4.1): Cw needs >= 2 CEs,
  // and Pc is bounded by the cluster width.
  ctx.check("cw_at_width_1", cw_at_1, 0.0, 0.0, 0.0);
  ctx.check("pc_at_width_8", pc_at_8, 7.66, 2.0, 8.0);
}

// ---------------------------------------------------------------------
// Topology scale-out: multi-cluster FX/8..FX/64 machines (§6,
// docs/topology.md). Unlike width_sweep (which narrows one cluster),
// this widens the machine by ganging whole 8-CE clusters behind the
// second-level bank fabric.

struct ScalingRow {
  core::ConcurrencyMeasures measures;
  double miss_rate = 0.0;
  double bus_busy = 0.0;
  std::uint64_t fabric_conflicts = 0;
  std::uint32_t clusters = 1;
};

ScalingRow run_scaling_width(Context& ctx, std::uint32_t width) {
  os::SystemConfig config;
  switch (width) {
    case 16:
      config.machine = fx8::MachineConfig::fx16();
      break;
    case 32:
      config.machine = fx8::MachineConfig::fx32();
      break;
    case 64:
      config.machine = fx8::MachineConfig::fx64();
      break;
    default:
      break;  // the stock FX/8
  }
  os::System system{config};
  const std::uint32_t clusters = system.machine().n_clusters();
  workload::WorkloadMix mix = workload::session_presets()[2];  // busy mix
  // Clusters schedule independently off one FIFO queue; deepen the
  // arrival bursts so every cluster stays fed.
  mix.mean_burst_jobs *= clusters;
  workload::WorkloadGenerator generator(mix, 0x81D5);
  instr::SamplingConfig sampling;
  sampling.interval_cycles = 50000;
  instr::SessionController controller(system, generator, sampling, 0x81D5);
  ctx.in().note_private_run();

  instr::EventCounts totals;
  for (const instr::SampleRecord& record :
       controller.run_session(ctx.in().scaled(5, 2))) {
    totals.merge(record.hw);
  }
  ScalingRow row;
  row.measures = core::ConcurrencyMeasures::from_counts(
      std::span(totals.num).first(width + 1));
  row.miss_rate = totals.miss_rate();
  row.bus_busy = totals.bus_busy();
  row.clusters = clusters;
  if (const fx8::ClusterFabric* fabric = system.machine().fabric()) {
    row.fabric_conflicts = fabric->conflicts();
  }
  return row;
}

void render_width_scaling(Context& ctx) {
  const std::array<std::uint32_t, 4> widths = {8, 16, 32, 64};
  ctx.printf("  %-6s %-9s %8s %8s %10s %10s %12s\n", "CEs", "clusters",
             "Cw", "Pc", "missrate", "busbusy", "xconflicts");
  std::array<ScalingRow, 4> rows;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    rows[i] = run_scaling_width(ctx, widths[i]);
    ctx.printf("  %-6u %-9u %8.4f %8s %10.4f %10.4f %12llu\n", widths[i],
               rows[i].clusters, rows[i].measures.cw,
               rows[i].measures.pc_defined
                   ? repro::fixed(rows[i].measures.pc, 2).c_str()
                   : "n/a",
               rows[i].miss_rate, rows[i].bus_busy,
               static_cast<unsigned long long>(rows[i].fabric_conflicts));
  }
  ctx.printf(
      "\n(the width-8 row is the measured FX/8 and carries the paper's\n"
      "bands; wider rows gang 8-CE clusters behind a second-level bank\n"
      "fabric, so Pc keeps climbing while cross-cluster bank conflicts\n"
      "appear — the T3/T4-style scale-out the paper's §6 asks about)\n");

  // Paper bands on the width-8 column only: the stock FX/8 must land
  // where the study's busy sessions did (Table 3 Cw, §4.1 Pc near 8).
  ctx.check("cw_at_width_8", rows[0].measures.cw, 0.66, 0.30, 1.00);
  ctx.check("pc_at_width_8",
            rows[0].measures.pc_defined ? rows[0].measures.pc : 0.0, 7.66,
            2.0, 8.0);
  // Structural invariants of the scale-out: Pc never exceeds the
  // machine width, and mean concurrency does not shrink as whole
  // clusters are added.
  double worst_pc_over_width = 0.0;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    const double pc =
        rows[i].measures.pc_defined ? rows[i].measures.pc : 0.0;
    worst_pc_over_width = std::max(
        worst_pc_over_width, pc / static_cast<double>(widths[i]));
  }
  ctx.check("max_pc_over_width", worst_pc_over_width, 0.9, 0.0, 1.0);
  ctx.check("pc_gain_8_to_64",
            (rows[3].measures.pc_defined ? rows[3].measures.pc : 0.0) -
                (rows[0].measures.pc_defined ? rows[0].measures.pc : 0.0),
            24.0, 0.0, 56.0);
  ctx.metric("pc_at_width_16",
             rows[1].measures.pc_defined ? rows[1].measures.pc : 0.0);
  ctx.metric("pc_at_width_32",
             rows[2].measures.pc_defined ? rows[2].measures.pc : 0.0);
  ctx.metric("pc_at_width_64",
             rows[3].measures.pc_defined ? rows[3].measures.pc : 0.0);
  ctx.metric("miss_rate_at_width_64", rows[3].miss_rate);
  ctx.metric("bus_busy_at_width_64", rows[3].bus_busy);
  ctx.metric("fabric_conflicts_at_width_64",
             static_cast<double>(rows[3].fabric_conflicts));
}

// ---------------------------------------------------------------------
// Correlation matrix of the sampled measures (§5.3).

void render_correlation_matrix(Context& ctx) {
  // Use only Pc-defined samples so every series has equal length.
  const auto& samples = ctx.in().samples_with_pc();

  std::vector<stats::Series> series = {
      {"Cw", core::column_cw(samples)},
      {"Pc", core::column_pc(samples)},
      {"missrate", core::column_miss_rate(samples)},
      {"busbusy", core::column_bus_busy(samples)},
      {"pfrate", core::column_page_fault_rate(samples)},
  };

  ctx.printf("%zu concurrent samples\n\n", samples.size());
  ctx.printf("%s\n", stats::render_correlation_matrix(series).c_str());
  ctx.printf("%s\n",
             stats::render_correlation_matrix(series, /*rank=*/true)
                 .c_str());

  // A degenerate (constant) series leaves r undefined; NaN flows into
  // the tolerance checks as an out-of-band verdict and into the JSON
  // report as null, instead of crashing the run.
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  const double r_cw =
      stats::pearson(series[0].values, series[2].values).value_or(kNan);
  const double r_pc =
      stats::pearson(series[1].values, series[2].values).value_or(kNan);
  ctx.printf("missrate correlation: with Cw %.3f vs with Pc %.3f "
             "(paper: the former dominates)\n",
             r_cw, r_pc);

  // "Little correlation between Missrate and Pc is seen" (§5.3): the Cw
  // column dominates.
  ctx.check("missrate_cw_corr", r_cw, 0.86, 0.30, 1.00);
  ctx.check("cw_minus_pc_corr", r_cw - r_pc, 0.5, 0.05, 2.0);
  ctx.metric("missrate_pc_corr", r_pc);
}

// ---------------------------------------------------------------------
// The Figure-3 footnote, quantified: detached (exclusively serial)
// processors inflate the probe's apparent concurrency.

struct ArtifactPoint {
  double probe_cw = 0.0;  ///< Cw from the CCB activity histogram.
  double true_cw = 0.0;   ///< Concurrency from iteration-overlap traces.
};

ArtifactPoint run_detached_config(Context& ctx, std::uint32_t detached) {
  os::SystemConfig config;
  config.machine.cluster.detached_ces = detached;
  os::System system{config};
  trace::EventTracer tracer;
  system.machine().cluster().set_observer(&tracer);

  // A serial-heavy day: the cluster is often serial or idle, which is
  // when a busy detached CE turns 1-active states into apparent
  // 2-active "concurrency".
  workload::WorkloadMix mix = workload::session_presets()[8];
  mix.mean_idle_cycles = 8000;  // keep the detached CEs fed
  mix.numeric.trip_law.width = system.machine().cluster().cluster_width();
  workload::WorkloadGenerator generator(mix, 0xDE7AC4);
  instr::SamplingConfig sampling;
  sampling.interval_cycles = 60000;
  instr::SessionController controller(system, generator, sampling,
                                      0xDE7AC4);
  ctx.in().note_private_run();

  const Cycle t0 = system.now();
  instr::EventCounts totals;
  for (const instr::SampleRecord& record :
       controller.run_session(ctx.in().scaled(8, 3))) {
    totals.merge(record.hw);
  }
  const Cycle t1 = system.now();

  ArtifactPoint point{};
  point.probe_cw = core::ConcurrencyMeasures::from_counts(totals.num).cw;
  point.true_cw = trace_ground_truth(tracer.events(), t0, t1).cw;
  return point;
}

void render_detached_artifact(Context& ctx) {
  const ArtifactPoint attached = run_detached_config(ctx, 0);
  const ArtifactPoint detached = run_detached_config(ctx, 2);

  ctx.printf("  %-26s %12s %12s %12s\n", "configuration", "probe Cw",
             "true Cw", "inflation");
  ctx.printf("  %-26s %12.4f %12.4f %12.4f\n", "all 8 CEs clustered",
             attached.probe_cw, attached.true_cw,
             attached.probe_cw - attached.true_cw);
  ctx.printf("  %-26s %12.4f %12.4f %12.4f\n", "6 clustered + 2 detached",
             detached.probe_cw, detached.true_cw,
             detached.probe_cw - detached.true_cw);
  ctx.printf(
      "\n(with detached CEs the probe's activity histogram counts serial\n"
      "processes as concurrency — the measurement caveat the paper's\n"
      "footnote flags; the study's machine ran fully clustered)\n");

  const double attached_inflation = attached.probe_cw - attached.true_cw;
  const double detached_inflation = detached.probe_cw - detached.true_cw;
  // The footnote's caveat, made quantitative: detaching CEs inflates
  // the probe's Cw over the trace truth by more than full clustering.
  ctx.check("inflation_gain", detached_inflation - attached_inflation,
            0.1, 0.0, 1.0);
  ctx.metric("attached_inflation", attached_inflation);
  ctx.metric("detached_inflation", detached_inflation);
}

// ---------------------------------------------------------------------
// §3.5 second measurement group: all-8-active triggered captures.

void render_high_concurrency_captures(Context& ctx) {
  os::System system{os::SystemConfig{}};
  workload::WorkloadGenerator generator(workload::high_concurrency_mix(),
                                        0xA17AC);
  instr::SamplingConfig sampling;
  instr::SessionController controller(system, generator, sampling,
                                      0xA17AC);
  ctx.in().note_private_run();

  // Ten triggered captures, as in the study.
  const int wanted = static_cast<int>(ctx.in().scaled(10, 4));
  instr::EventCounts triggered;
  std::uint32_t completed = 0;
  for (int capture = 0; capture < wanted; ++capture) {
    const auto buffer = controller.capture_triggered(
        instr::TriggerMode::kAllActive, 400000);
    if (buffer) {
      triggered.merge(instr::reduce(*buffer));
      ++completed;
    }
  }

  // A random-sampled baseline over the same machine/mix.
  instr::EventCounts random;
  for (const instr::SampleRecord& record :
       controller.run_session(ctx.in().scaled(5, 2))) {
    random.merge(record.hw);
  }

  ctx.printf("captures completed: %u of %d\n\n", completed, wanted);
  ctx.printf("  %-26s %10s %10s\n", "", "miss rate", "bus busy");
  ctx.printf("  %-26s %10.4f %10.4f\n", "triggered (8-active)",
             triggered.miss_rate(), triggered.bus_busy());
  ctx.printf("  %-26s %10.4f %10.4f\n", "random sampling",
             random.miss_rate(), random.bus_busy());

  const auto triggered_measures =
      core::ConcurrencyMeasures::from_counts(triggered.num);
  ctx.printf("\nconcurrency inside the triggered buffers: Cw=%.3f "
             "(near 1 by construction), Pc=%.2f\n",
             triggered_measures.cw, triggered_measures.pc);
  ctx.printf(
      "(full-concurrency operation carries the high miss/bus activity the\n"
      "regression models attribute to Cw — conditioning on 8-active shows\n"
      "it without any model)\n");

  if (completed == 0) {
    ctx.fail("no all-active captures completed");
    return;
  }
  ctx.check("captures_completed", completed, 10.0, 1.0,
            static_cast<double>(wanted));
  ctx.check("triggered_cw", triggered_measures.cw, 1.0, 0.85, 1.0);
  // The Chapter-5 coupling, seen directly: conditioning on 8-active
  // carries higher miss activity than the workload average.
  ctx.check("miss_ratio_triggered_over_random",
            random.miss_rate() > 0.0
                ? triggered.miss_rate() / random.miss_rate()
                : NAN,
            2.0, 0.9, 100.0);
  ctx.metric("triggered_bus_busy", triggered.bus_busy());
}

}  // namespace

void register_extensions(std::vector<ArtifactDef>& catalog) {
  catalog.push_back(
      {"trace_vs_sampling", ArtifactKind::kExtension, "§2.1",
       "EXTENSION — sampling vs. marker-trace ground truth",
       "the thesis' sampling methodology should agree with exact traces "
       "(methodology validation, not a paper artifact)",
       render_trace_vs_sampling});
  catalog.push_back(
      {"scheduling_policy", ArtifactKind::kExtension, "§6",
       "EXTENSION — scheduling policy vs. workload concurrency",
       "a software scheduling knob shifts when concurrency appears; the "
       "paper flags this study as future work (§6)",
       render_scheduling_policy});
  catalog.push_back(
      {"width_sweep", ArtifactKind::kExtension, "§4.1",
       "EXTENSION — concurrency measures across FX/1..FX/8 widths",
       "the measures generalize to any cluster width (§4.1); Pc is "
       "bounded by the width and Cw needs at least two CEs",
       render_width_sweep});
  catalog.push_back(
      {"width_scaling", ArtifactKind::kExtension, "§6",
       "EXTENSION — topology scale-out across FX/8..FX/64 machines",
       "ganging 8-CE clusters behind a second-level bank fabric keeps Pc "
       "climbing with machine width while the width-8 column stays on the "
       "paper's measured bands (§6 scale-out)",
       render_width_scaling});
  catalog.push_back(
      {"correlation_matrix", ArtifactKind::kExtension, "§5.3",
       "EXTENSION — correlation matrix of the sampled measures",
       "strong Cw columns, weak missrate-vs-Pc entry (§5.3)",
       render_correlation_matrix});
  catalog.push_back(
      {"detached_artifact", ArtifactKind::kExtension, "Figure 3 footnote",
       "EXTENSION — detached processes and the Figure-3 footnote",
       "detached serial processes register as active on the CCB probe, "
       "inflating apparent concurrency over the true loop overlap",
       render_detached_artifact});
  catalog.push_back(
      {"high_concurrency_captures", ArtifactKind::kExtension, "§3.5",
       "EXTENSION — all-8-active triggered captures (second group)",
       "system measures conditioned on full concurrency exceed the "
       "workload averages (the Chapter-5 coupling, seen directly)",
       render_high_concurrency_captures});
}

}  // namespace repro::artifacts
