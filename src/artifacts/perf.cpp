// Simulator-performance artifact: the substrate self-check that used to
// live in the standalone bench_perf_simulator binary, registered so CI
// tracks cycles/sec datapoints like every other artifact.
//
// All timing metrics are recorded as informational notes — shared CI
// runners time-slice, so wall-clock bands would flake. The one enforced
// check is timing-independent: the fused Machine::tick_block path must
// leave the machine bit-identical to the naive tick loop.
#include <algorithm>
#include <chrono>
#include <cstdint>

#include "artifacts/inputs.hpp"
#include "artifacts/registry.hpp"
#include "fx8/machine.hpp"
#include "fx8/mmu.hpp"
#include "isa/program.hpp"
#include "workload/kernels.hpp"

namespace repro::artifacts {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

isa::Program saturated_program() {
  workload::KernelTuning tuning;
  isa::ConcurrentLoopPhase loop;
  loop.body = workload::matmul_row_body(tuning);
  loop.trip_count = 1u << 20;  // effectively endless for the measurement
  return isa::ProgramBuilder("perf")
      .data_base(0x01000000)
      .concurrent_loop(loop)
      .build();
}

/// A machine mid concurrent loop with every CE holding an iteration —
/// the steady state the saturated sessions spend their cycles in.
struct SaturatedMachine {
  fx8::NoFaultMmu mmu;
  fx8::Machine machine;
  isa::Program program;

  SaturatedMachine() : machine(fx8::MachineConfig::fx8(), mmu) {
    program = saturated_program();
    machine.cluster().load(&program, 1);
    machine.run(2000);  // past dispatch ramp-up
  }
};

/// Best-of-3 cycles/sec of `advance(machine, cycles)`.
template <typename Advance>
double measure(Cycle cycles, Advance&& advance) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    SaturatedMachine s;
    const auto start = std::chrono::steady_clock::now();
    advance(s.machine, cycles);
    const double seconds = seconds_since(start);
    if (seconds > 0.0) {
      best = std::max(best, static_cast<double>(cycles) / seconds);
    }
  }
  return best;
}

void render_perf_simulator(Context& ctx) {
  const Cycle cycles = ctx.quick() ? 100'000 : 400'000;

  const double naive_rate =
      measure(cycles, [](fx8::Machine& m, Cycle n) { m.run(n); });
  const double block_rate = measure(cycles, [](fx8::Machine& m, Cycle n) {
    Cycle done = 0;
    while (done < n) {
      done += m.tick_block(std::min<Cycle>(n - done, 256));
    }
  });

  // Idle machine: the floor cost of a cycle with nothing to simulate.
  double idle_rate = 0.0;
  {
    fx8::NoFaultMmu mmu;
    fx8::MachineConfig config = fx8::MachineConfig::fx8();
    config.ip.duty = 0.0;
    fx8::Machine machine(config, mmu);
    const auto start = std::chrono::steady_clock::now();
    machine.run(cycles);
    const double seconds = seconds_since(start);
    idle_rate = seconds > 0.0 ? static_cast<double>(cycles) / seconds : 0.0;
  }

  // The timing-independent gate: equal cycle budgets through tick() and
  // tick_block() must land on identical machines.
  bool identical = true;
  {
    SaturatedMachine a;
    SaturatedMachine b;
    const Cycle budget = 50'000;
    a.machine.run(budget);
    Cycle done = 0;
    while (done < budget) {
      done += b.machine.tick_block(budget - done);
    }
    identical = a.machine.now() == b.machine.now();
    for (CeId ce = 0; ce < 8 && identical; ++ce) {
      const fx8::CeStats sa = a.machine.cluster().ce(ce).stats();
      const fx8::CeStats sb = b.machine.cluster().ce(ce).stats();
      identical = sa.busy_cycles == sb.busy_cycles &&
                  sa.mem_accesses == sb.mem_accesses &&
                  sa.instances_completed == sb.instances_completed;
    }
    identical = identical && a.machine.shared_cache().stats().accesses ==
                                 b.machine.shared_cache().stats().accesses;
  }

  // The artifact body stays deterministic (fx8bench stdout is diffed
  // across runs); the wall-clock rates go only into the JSON metrics.
  ctx.printf("saturated machine, %llu cycles per measurement, best of 3\n",
             static_cast<unsigned long long>(cycles));
  ctx.printf("rates recorded as metrics: naive tick loop, fused\n");
  ctx.printf("tick_block, idle machine (cycles/sec)\n");
  ctx.printf("block-ticked machine bit-identical to naive: %s\n",
             identical ? "yes" : "NO");

  ctx.metric("naive_cycles_per_sec", naive_rate);
  ctx.metric("block_cycles_per_sec", block_rate);
  ctx.metric("idle_cycles_per_sec", idle_rate);
  // Informational: wall-clock on shared runners is too noisy to enforce,
  // but the datapoint rides the report so regressions leave a trail.
  ctx.note("block_vs_naive_speedup",
           naive_rate > 0.0 ? block_rate / naive_rate : 0.0,
           /*paper=*/1.0, /*lo=*/0.9, /*hi=*/100.0);
  ctx.check("block_bit_identical", identical ? 1.0 : 0.0, /*paper=*/1.0,
            /*lo=*/1.0, /*hi=*/1.0);
}

}  // namespace

void register_perf(std::vector<ArtifactDef>& catalog) {
  catalog.push_back(
      {"perf_simulator", ArtifactKind::kExtension, "—",
       "PERF — simulated-machine throughput (fused tick kernel)",
       "substrate self-check: cycles/sec of the naive and fused per-cycle "
       "paths (no paper claim; timing notes are informational)",
       render_perf_simulator});
}

}  // namespace repro::artifacts
