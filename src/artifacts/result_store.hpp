// Persistent content-addressed result store: incremental fx8bench.
//
// Every artifact of the reproduction is a deterministic function of its
// study/transition config, so its result can be addressed by a 64-bit
// content hash of that config and reused across processes. The store
// maps such a key to a sealed capsule-envelope blob (base/capsule.hpp)
// holding a serialized StudyResult, TransitionResult, or ArtifactResult;
// a warm `fx8bench --all` then only re-runs artifacts whose inputs
// actually changed.
//
// Key derivation (docs/benchmarks.md, "The result cache"):
//
//   key = fasthash( kind tag · code salt · config fingerprint ·
//                   canonical config walk , seed = code salt )
//
// The canonical walk covers EVERY config field — including knobs like
// `threads` that provably do not change results — so any field change
// misses the cache. The code salt folds the capsule format version, the
// store format version, and a manually bumped kCodeVersion; bumping any
// of them orphans every old key (a clean miss, never a stale hit).
//
// Robustness contract: the store can only ever *miss*, never return a
// wrong answer. A truncated, tampered, wrong-version, or stale-salt blob
// fails the envelope or header checks, is counted in CacheStats, deleted
// when possible, and recomputed. A missing or corrupt bloom sidecar is
// rebuilt from the object directory.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "base/capsule.hpp"
#include "core/study.hpp"
#include "core/transition.hpp"
#include "workload/generator.hpp"

namespace repro::artifacts {

/// Store directory format version: the envelope laid around blobs and
/// the bloom sidecar. Bump on layout changes.
inline constexpr std::uint32_t kStoreFormatVersion = 1;

/// Manually bumped experiment-semantics version. Bump whenever simulator
/// or artifact-render changes alter what any config would produce — the
/// cheap, honest alternative to hashing the binary. Folded into every
/// key, so a stale store degrades to a full miss.
/// v3: study keys fold the session workload mixes (the contention
/// family made mixes an experimental axis a key must cover).
inline constexpr std::uint32_t kCodeVersion = 3;

/// The salt every key is seeded with.
inline constexpr std::uint64_t kCodeSalt =
    (static_cast<std::uint64_t>(kCodeVersion) << 40) |
    (static_cast<std::uint64_t>(kStoreFormatVersion) << 20) |
    static_cast<std::uint64_t>(capsule::kFormatVersion);

/// Hit/miss accounting, reported in the fx8bench JSON (`cache` object)
/// and by --cache-stats.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;        ///< Includes bloom skips and corrupt blobs.
  std::uint64_t bloom_skips = 0;   ///< Misses resolved without touching disk.
  std::uint64_t corrupt_misses = 0;  ///< Blobs rejected by envelope/header.
  std::uint64_t puts = 0;
  std::uint64_t put_errors = 0;    ///< Failed blob writes (read-only dir, ...).
  /// Failed bloom-sidecar writes. Counted separately from put_errors:
  /// a lost sidecar never loses the blob (it is rebuilt from the object
  /// directory on reopen), and save_bloom also runs on reopen-rebuild,
  /// where no put is in flight to blame.
  std::uint64_t bloom_save_errors = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
};

/// Membership bloom over every key ever put: if it says "absent" the key
/// is definitely not stored and the open/stat path is skipped (the
/// negative cache of SNIPPETS 1-2). False positives cost one failed
/// open; false negatives cannot occur for keys inserted through this
/// process, and a stale sidecar only costs a spurious recompute.
class BloomFilter {
 public:
  static constexpr std::uint32_t kBits = 1u << 16;  // 8 KiB of bits.
  static constexpr int kProbes = 4;

  void insert(std::uint64_t key);
  [[nodiscard]] bool maybe_contains(std::uint64_t key) const;

  /// Capsule walk for the persisted sidecar.
  void serialize(capsule::Io& io);

 private:
  std::vector<std::uint8_t> bits_ = std::vector<std::uint8_t>(kBits / 8, 0);
};

class ResultStore {
 public:
  /// Opens (creating if needed) the store at `dir`. Layout:
  ///   <dir>/objects/<16-hex-key>.blob   sealed result blobs
  ///   <dir>/bloom.bin                   sealed bloom sidecar
  /// Throws capsule::CapsuleError if the directory cannot be created.
  explicit ResultStore(std::string dir);

  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// The unsealed result payload for `key`, or nullopt on any kind of
  /// miss (absent, truncated, tampered, wrong version, foreign key).
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> get(
      std::uint64_t key);

  /// Store `payload` under `key` (tmp-file + rename; failures are
  /// counted, never thrown) and persist the updated bloom.
  void put(std::uint64_t key, const std::vector<std::uint8_t>& payload);

  [[nodiscard]] const CacheStats& stats() const { return stats_; }

  [[nodiscard]] std::string object_path(std::uint64_t key) const;

 private:
  void load_or_rebuild_bloom();
  void save_bloom();

  std::string dir_;
  BloomFilter bloom_;
  CacheStats stats_;
};

// --- Key derivation ---------------------------------------------------

/// Key of the shared nine-session study result for `config`. The walk
/// covers the config AND the session mixes the study runs (the default
/// workload::session_presets()): a preset edit is a condition change
/// and must miss, never stale-hit.
[[nodiscard]] std::uint64_t study_cache_key(const core::StudyConfig& config,
                                            std::uint64_t salt = kCodeSalt);

/// Same key derivation over an explicit mix list (run_study overloads
/// that take caller-provided mixes, e.g. the contention scenarios).
[[nodiscard]] std::uint64_t study_cache_key(
    const core::StudyConfig& config,
    std::span<const workload::WorkloadMix> mixes,
    std::uint64_t salt = kCodeSalt);

/// Key of the shared triggered-transition result for `config` (the
/// high-concurrency mix, kTransitionFromFull trigger — the one
/// combination Inputs caches).
[[nodiscard]] std::uint64_t transition_cache_key(
    const core::TransitionConfig& config, std::uint64_t salt = kCodeSalt);

/// Key of one rendered artifact: its id plus both shared configs plus
/// the quick flag (which also scales artifact-private populations).
[[nodiscard]] std::uint64_t artifact_cache_key(
    const std::string& id, const core::StudyConfig& study,
    const core::TransitionConfig& transition, bool quick,
    std::uint64_t salt = kCodeSalt);

// --- Result blobs -----------------------------------------------------

/// Serialize a result (anything with a capsule `serialize` walk) into a
/// store payload.
template <typename T>
[[nodiscard]] std::vector<std::uint8_t> encode_result(const T& value) {
  capsule::Io io = capsule::Io::saver();
  T copy = value;  // The walk is mode-agnostic and takes a mutable ref.
  copy.serialize(io);
  return io.bytes();
}

/// Decode a store payload back into a result. Throws
/// capsule::CapsuleError on shape mismatch (callers treat it as a miss).
template <typename T>
[[nodiscard]] T decode_result(std::vector<std::uint8_t> payload) {
  capsule::Io io = capsule::Io::loader(std::move(payload));
  T value;
  value.serialize(io);
  if (!io.exhausted()) {
    throw capsule::CapsuleError("result capsule: trailing bytes");
  }
  return value;
}

}  // namespace repro::artifacts
