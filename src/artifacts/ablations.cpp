// The design-choice ablations (DESIGN.md §6): each tests the mechanism
// the paper offers for one of its findings. These run artifact-private
// simulations (different machines/mixes than the shared study), scaled
// down under --quick. Ported from the bench_ablation_* binaries.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "artifacts/inputs.hpp"
#include "artifacts/registry.hpp"
#include "core/regression_models.hpp"
#include "core/sample.hpp"
#include "core/transition.hpp"
#include "fx8/machine.hpp"
#include "fx8/mmu.hpp"
#include "instr/session_controller.hpp"
#include "isa/program.hpp"
#include "os/system.hpp"
#include "trace/profile.hpp"
#include "trace/tracer.hpp"
#include "workload/generator.hpp"
#include "workload/kernels.hpp"
#include "workload/presets.hpp"

namespace repro::artifacts {

namespace {

// ---------------------------------------------------------------------
// Ablation: fixed-priority vs. rotating CE service order (Figure 7's
// asymmetry).

double asymmetry(const core::TransitionResult& result) {
  // Max/min ratio over per-CE transition activity.
  std::uint64_t lo = result.processor_counts[0];
  std::uint64_t hi = result.processor_counts[0];
  for (const std::uint64_t count : result.processor_counts) {
    lo = std::min(lo, count);
    hi = std::max(hi, count);
  }
  return lo == 0 ? 0.0 : static_cast<double>(hi) / static_cast<double>(lo);
}

/// The Figure-7 shape: mean outer-CE (7, 0) activity over mean inner-CE
/// (2, 3, 4) activity. Fixed priority puts structure here; max/min
/// asymmetry also picks up capture noise, this does not.
double outer_over_inner(const core::TransitionResult& result) {
  const auto& proc = result.processor_counts;
  const double outer = static_cast<double>(proc[7] + proc[0]) / 2.0;
  const double inner =
      static_cast<double>(proc[2] + proc[3] + proc[4]) / 3.0;
  return inner > 0.0 ? outer / inner : 0.0;
}

core::TransitionResult run_with_policy(Context& ctx,
                                       fx8::ServicePolicy policy) {
  core::TransitionConfig config = ctx.in().transition_config();
  config.captures = ctx.in().scaled(40, 12);
  config.system.machine.cluster.policy = policy;
  ctx.in().note_private_run();
  return core::run_transition_study(workload::high_concurrency_mix(),
                                    config);
}

void render_ablation_service_order(Context& ctx) {
  const core::TransitionResult fixed =
      run_with_policy(ctx, fx8::ServicePolicy::kOuterFirst);
  const core::TransitionResult rotating =
      run_with_policy(ctx, fx8::ServicePolicy::kRotating);

  ctx.printf("per-CE transition activity (fixed priority):\n ");
  for (const std::uint64_t count : fixed.processor_counts) {
    ctx.printf(" %6llu", static_cast<unsigned long long>(count));
  }
  ctx.printf("\nper-CE transition activity (rotating):\n ");
  for (const std::uint64_t count : rotating.processor_counts) {
    ctx.printf(" %6llu", static_cast<unsigned long long>(count));
  }
  const double fixed_ratio = asymmetry(fixed);
  const double rotating_ratio = asymmetry(rotating);
  ctx.printf("\n\nmax/min activity ratio: fixed %.2f vs rotating %.2f\n",
             fixed_ratio, rotating_ratio);
  const double fixed_oi = outer_over_inner(fixed);
  const double rotating_oi = outer_over_inner(rotating);
  ctx.printf("outer/inner activity:   fixed %.2f vs rotating %.2f\n",
             fixed_oi, rotating_oi);
  ctx.printf("(expected: fixed > rotating — the asymmetry is a priority "
             "artifact)\n");

  // Supporting §4.3: fixed priority puts the activity on the outer CEs;
  // a fair arbiter flattens that structure. The max/min ratio also
  // counts capture noise, so it's informational only.
  ctx.check("fixed_outer_over_inner", fixed_oi, 2.0, 1.05, 10.0);
  ctx.check("fixed_minus_rotating_outer_bias", fixed_oi - rotating_oi,
            0.5, 0.0, 10.0);
  ctx.note("fixed_over_rotating_asymmetry",
           rotating_ratio > 0.0 ? fixed_ratio / rotating_ratio : 0.0, 1.3,
           1.0, 10.0);
  ctx.metric("fixed_asymmetry", fixed_ratio);
  ctx.metric("rotating_asymmetry", rotating_ratio);
}

// ---------------------------------------------------------------------
// Ablation: data-intensive vs. serial-like concurrent kernels (§5.3).

double missrate_rise(Context& ctx, const workload::WorkloadMix& base_mix) {
  // Build a 3-session mini-study spanning low/mid/high concurrency with
  // this mix's kernel tuning.
  std::vector<workload::WorkloadMix> mixes;
  const double fractions[] = {0.2, 0.55, 0.9};
  const double idles[] = {45000, 12000, 4000};
  for (int i = 0; i < 3; ++i) {
    workload::WorkloadMix mix = base_mix;
    mix.name = base_mix.name + "-" + std::to_string(i);
    mix.concurrent_job_fraction = fractions[i];
    mix.mean_idle_cycles = idles[i];
    mixes.push_back(mix);
  }
  core::StudyConfig config = ctx.in().study_config();
  config.samples_per_session = ctx.in().scaled(10, 5);
  ctx.in().note_private_run();
  const core::StudyResult study = core::run_study(mixes, config);
  const auto samples = study.all_samples();
  const core::MedianModel model = core::fit_model(
      samples, core::SystemMeasure::kMissRate, core::Regressor::kCw);
  return model.predict(1.0) - model.predict(0.1);
}

void render_ablation_locality(Context& ctx) {
  workload::WorkloadMix standard;
  standard.name = "standard";
  const double standard_rise = missrate_rise(ctx, standard);

  const workload::WorkloadMix equal = workload::equal_locality_mix();
  const double equal_rise = missrate_rise(ctx, equal);

  ctx.printf("missrate rise over Cw 0.1 -> 1.0:\n");
  ctx.printf("  data-intensive concurrent kernels: %+.4f\n", standard_rise);
  ctx.printf("  serial-like concurrent kernels:    %+.4f\n", equal_rise);
  ctx.printf("\n(expected: the serial-like variant's rise is a small "
             "fraction of the standard one's)\n");

  // §5.3: the coupling is the data intensity of parallel code, not
  // parallelism itself (measured +0.019 vs -0.001 at paper scale).
  ctx.check("standard_rise", standard_rise, 0.017, 0.004, 0.1);
  ctx.check("equal_locality_rise", equal_rise, 0.0, -0.01, 0.008);
}

// ---------------------------------------------------------------------
// Ablation: register-to-register vector fraction vs. bus traffic (§5.1).

struct SweepPoint {
  double vector_fraction;
  double cw;
  double bus_busy;
  double miss_rate;
};

SweepPoint run_vector_point(Context& ctx, double vector_fraction) {
  os::System system{os::SystemConfig{}};
  workload::WorkloadMix mix = workload::high_concurrency_mix();
  mix.numeric.tuning.vector_fraction = vector_fraction;
  workload::WorkloadGenerator generator(mix, 0x7EC70);
  instr::SamplingConfig sampling;
  sampling.interval_cycles = 60000;
  instr::SessionController controller(system, generator, sampling, 0x7EC70);
  ctx.in().note_private_run();

  instr::EventCounts totals;
  for (const instr::SampleRecord& record :
       controller.run_session(ctx.in().scaled(6, 3))) {
    totals.merge(record.hw);
  }
  const auto measures = core::ConcurrencyMeasures::from_counts(totals.num);
  return {vector_fraction, measures.cw, totals.bus_busy(),
          totals.miss_rate()};
}

void render_ablation_vector_traffic(Context& ctx) {
  ctx.printf("  %-10s %8s %10s %10s\n", "vec-frac", "Cw", "busbusy",
             "missrate");
  SweepPoint first{};
  SweepPoint last{};
  bool have_first = false;
  for (const double frac : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    const SweepPoint point = run_vector_point(ctx, frac);
    ctx.printf("  %-10.1f %8.4f %10.4f %10.4f\n", point.vector_fraction,
               point.cw, point.bus_busy, point.miss_rate);
    if (!have_first) {
      first = point;
      have_first = true;
    }
    last = point;
  }
  const double busy_drop_pct = 100.0 * (1.0 - last.bus_busy / first.bus_busy);
  const double miss_drop_pct =
      100.0 * (1.0 - last.miss_rate / first.miss_rate);
  ctx.printf("\nbus busy drops %.0f%%, missrate drops %.0f%% from "
             "vec=0.0 to vec=0.8\n",
             busy_drop_pct, miss_drop_pct);

  // §5.1: more vector operations -> less CE-to-cache traffic and fewer
  // misses (measured ~25% and ~12% drops at paper scale).
  ctx.check("bus_busy_drop_pct", busy_drop_pct, 25.0, 5.0, 80.0);
  ctx.check("miss_rate_drop_pct", miss_drop_pct, 12.0, 1.0, 80.0);
}

// ---------------------------------------------------------------------
// Ablation: self-scheduled vs. statically chunked loop dispatch
// (DESIGN.md §6.2 — why transitions stay short).

struct LoopRun {
  Cycle total = 0;
  Cycle drain = 0;  ///< Cycles from last full-overlap to loop end.
  double overlap = 0.0;
};

/// One imbalanced loop under a dispatch policy, profiled via the tracer.
LoopRun run_loop(Context& ctx, fx8::DispatchPolicy dispatch,
                 std::uint64_t seed) {
  fx8::NoFaultMmu mmu;
  fx8::MachineConfig config = fx8::MachineConfig::fx8();
  config.cluster.dispatch = dispatch;
  config.ip.duty = 0.0;
  fx8::Machine machine(config, mmu);
  trace::EventTracer tracer;
  machine.cluster().set_observer(&tracer);
  ctx.in().note_private_run();

  workload::KernelTuning tuning;
  isa::ConcurrentLoopPhase loop;
  loop.body = workload::matmul_row_body(tuning);
  loop.trip_count = 8 * 12 + 2;
  loop.long_path_prob = 0.25;  // iteration-dependent branching
  loop.long_path_extra_steps = 30;
  const isa::Program program = isa::ProgramBuilder("dispatch")
                                   .seed(seed)
                                   .data_base(0x01000000)
                                   .concurrent_loop(loop)
                                   .build();
  machine.cluster().load(&program, 1);
  while (machine.cluster().busy()) {
    machine.tick();
  }
  const trace::ProgramProfile profile =
      trace::profile_job(tracer.events(), 1);
  LoopRun run;
  run.total = machine.now();
  run.drain = profile.loops.at(0).drain_cycles;
  run.overlap = profile.loops.at(0).mean_overlap;
  return run;
}

void render_ablation_dispatch(Context& ctx) {
  double self_total = 0.0;
  double chunk_total = 0.0;
  double self_drain = 0.0;
  double chunk_drain = 0.0;
  double self_overlap = 0.0;
  double chunk_overlap = 0.0;
  const int loops = static_cast<int>(ctx.in().scaled(8, 3));
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(loops);
       ++seed) {
    const LoopRun self =
        run_loop(ctx, fx8::DispatchPolicy::kSelfScheduled, seed);
    const LoopRun chunk =
        run_loop(ctx, fx8::DispatchPolicy::kStaticChunked, seed);
    self_total += static_cast<double>(self.total);
    chunk_total += static_cast<double>(chunk.total);
    self_drain += static_cast<double>(self.drain);
    chunk_drain += static_cast<double>(chunk.drain);
    self_overlap += self.overlap;
    chunk_overlap += chunk.overlap;
  }
  ctx.printf("imbalanced 98-iteration loop, mean over %d seeds:\n", loops);
  ctx.printf("  %-16s %10s %10s %10s\n", "dispatch", "cycles", "drain",
             "overlap");
  ctx.printf("  %-16s %10.0f %10.0f %10.2f\n", "self-scheduled",
             self_total / loops, self_drain / loops, self_overlap / loops);
  ctx.printf("  %-16s %10.0f %10.0f %10.2f\n", "static-chunked",
             chunk_total / loops, chunk_drain / loops,
             chunk_overlap / loops);
  const double slowdown_pct = 100.0 * (chunk_total / self_total - 1.0);
  const double drain_ratio = chunk_drain / self_drain;
  ctx.printf("  (chunked is %.0f%% slower; its drain — the §4.3\n"
             "   transition period — is %.1fx longer)\n",
             slowdown_pct, drain_ratio);

  // Hardware self-scheduling absorbs imbalance (measured: chunked 10%
  // slower, drain 7.2x longer at paper scale).
  ctx.check("chunked_slowdown_pct", slowdown_pct, 10.0, 1.0, 100.0);
  ctx.check("chunked_drain_ratio", drain_ratio, 7.2, 1.5, 50.0);
  ctx.metric("self_overlap", self_overlap / loops);
  ctx.metric("chunked_overlap", chunk_overlap / loops);
}

}  // namespace

void register_ablations(std::vector<ArtifactDef>& catalog) {
  catalog.push_back(
      {"ablation_service_order", ArtifactKind::kAblation, "§4.3",
       "ABLATION — fixed-priority vs. rotating CE service order",
       "fixed hardware priority produces the Figure-7 asymmetry; a fair "
       "rotating arbiter flattens it",
       render_ablation_service_order});
  catalog.push_back(
      {"ablation_locality", ArtifactKind::kAblation, "§5.3",
       "ABLATION — data-intensive vs. serial-like concurrent kernels",
       "the Cw->missrate slope comes from the data intensity of parallel "
       "code (§5.3), not from parallelism itself",
       render_ablation_locality});
  catalog.push_back(
      {"ablation_vector_traffic", ArtifactKind::kAblation, "§5.1",
       "ABLATION — vector (register-to-register) fraction vs. bus traffic",
       "more vector operations -> less CE-to-cache traffic and fewer "
       "misses per bus cycle (§5.1)",
       render_ablation_vector_traffic});
  catalog.push_back(
      {"ablation_dispatch", ArtifactKind::kAblation, "§3.2",
       "ABLATION — self-scheduled vs. statically chunked dispatch",
       "hardware self-scheduling absorbs iteration imbalance; static "
       "chunks strand blocks behind slow iterations (DESIGN.md §6.2)",
       render_ablation_dispatch});
}

}  // namespace repro::artifacts
