// Figures 12-14: the Chapter 5 regression-model plots, off the shared
// fitted models. Ported from bench_fig12/13/14.
#include <cmath>

#include "artifacts/inputs.hpp"
#include "artifacts/registry.hpp"
#include "stats/scatter.hpp"

namespace repro::artifacts {

namespace {

// Figure 12: Plot of Regression Model, Missrate vs. Cw.
// Paper: median miss rate rises from 0.007 at Cw = 0.5 to 0.024 at
// Cw = 1.0 — "a greater than triple increase in Missrate".
void render_fig12(Context& ctx) {
  const core::MedianModel& model =
      ctx.in().model(core::SystemMeasure::kMissRate, core::Regressor::kCw);

  stats::ScatterOptions options;
  options.title = "fitted second-order model";
  options.x_label = "Cw";
  options.y_label = "missrate";
  ctx.printf("%s\n",
             stats::render_curve(0.0, 1.0, 44,
                                 [&](double x) { return model.predict(x); },
                                 options)
                 .c_str());

  const double at_half = model.predict(0.5);
  const double at_one = model.predict(1.0);
  ctx.printf("paper:    missrate(0.5)=0.0070  missrate(1.0)=0.0240  "
             "ratio=3.43\n");
  ctx.printf("measured: missrate(0.5)=%.4f  missrate(1.0)=%.4f  "
             "ratio=%.2f\n",
             at_half, at_one, at_one / at_half);
  ctx.printf("R^2 = %.2f (paper: 0.74)\n", model.r_squared());

  // The headline miss-rate tripling (paper 0.007 -> 0.024, ratio 3.43;
  // measured 0.0090 -> 0.0191, ratio 2.1 at paper scale).
  ctx.check("missrate_at_half", at_half, 0.007, 0.002, 0.03);
  ctx.check("missrate_at_one", at_one, 0.024, 0.008, 0.08);
  ctx.check("rise_ratio", at_half > 0.0 ? at_one / at_half : NAN, 3.43,
            1.4, 10.0);
  ctx.metric("r_squared", model.r_squared());
}

// Figure 13: Plot of Regression Model, CE Bus Busy vs. Cw.
// Paper: "almost linear increase in bus activity with Workload
// Concurrency", reaching roughly 0.33 at Cw = 1 (R^2 = 0.89).
void render_fig13(Context& ctx) {
  const core::MedianModel& model =
      ctx.in().model(core::SystemMeasure::kBusBusy, core::Regressor::kCw);

  stats::ScatterOptions options;
  options.title = "fitted second-order model";
  options.x_label = "Cw";
  options.y_label = "CE bus busy";
  ctx.printf("%s\n",
             stats::render_curve(0.0, 1.0, 44,
                                 [&](double x) { return model.predict(x); },
                                 options)
                 .c_str());

  ctx.printf("busbusy(0.0)=%.3f  busbusy(0.5)=%.3f  busbusy(1.0)=%.3f\n",
             model.predict(0.0), model.predict(0.5), model.predict(1.0));
  // Near-linearity check: the quadratic term's contribution at Cw=1
  // relative to the total rise.
  const double rise = model.predict(1.0) - model.predict(0.0);
  const double quad_share = 100.0 * model.coeff(2) / rise;
  ctx.printf("quadratic share of the rise: %.0f%% (paper: small)\n",
             quad_share);
  ctx.printf("R^2 = %.2f (paper: 0.89)\n", model.r_squared());

  ctx.check("busbusy_at_one", model.predict(1.0), 0.33, 0.15, 0.60);
  ctx.check("rise", rise, 0.33, 0.10, 0.60);
  // "almost linear": the quadratic term stays a modest share of the rise.
  ctx.check("quadratic_share_pct", quad_share, 0.0, -60.0, 60.0);
  ctx.check("r_squared", model.r_squared(), 0.89, 0.50, 1.00);
}

// Figure 14: Plot of Regression Model, CE Bus Busy vs. Pc.
// Paper: increases with Pc but levels off around Pc = 6 (R^2 = 0.66).
void render_fig14(Context& ctx) {
  const core::MedianModel& model =
      ctx.in().model(core::SystemMeasure::kBusBusy, core::Regressor::kPc);

  stats::ScatterOptions options;
  options.title = "fitted second-order model";
  options.x_label = "Pc";
  options.y_label = "CE bus busy";
  ctx.printf("%s\n",
             stats::render_curve(2.0, 8.0, 44,
                                 [&](double x) { return model.predict(x); },
                                 options)
                 .c_str());

  ctx.printf("busbusy(3)=%.3f  busbusy(6)=%.3f  busbusy(8)=%.3f\n",
             model.predict(3.0), model.predict(6.0), model.predict(8.0));
  const double early_rise = model.predict(6.0) - model.predict(3.0);
  const double late_rise = model.predict(8.0) - model.predict(6.0);
  ctx.printf("rise 3->6: %.3f   rise 6->8: %.3f  (paper: late rise ~ 0)\n",
             early_rise, late_rise);
  ctx.printf("R^2 = %.2f (paper: 0.66)\n", model.r_squared());

  // The saturation shape: bus activity rises to Pc = 6 and goes
  // relatively flat after (measured 0.190 vs 0.026 at paper scale).
  ctx.check("early_rise", early_rise, 0.2, 0.02, 1.0);
  ctx.check("late_minus_early_rise", late_rise - early_rise, -0.2, -1.0,
            0.0);
  ctx.metric("late_rise", late_rise);
  ctx.metric("r_squared", model.r_squared());
}

}  // namespace

void register_model_figures(std::vector<ArtifactDef>& catalog) {
  catalog.push_back(
      {"fig12", ArtifactKind::kFigure, "Figure 12",
       "FIGURE 12 — Regression model: Missrate vs. Cw",
       "missrate(0.5) = 0.007 -> missrate(1.0) = 0.024, a >3x increase",
       render_fig12});
  catalog.push_back(
      {"fig13", ArtifactKind::kFigure, "Figure 13",
       "FIGURE 13 — Regression model: CE Bus Busy vs. Cw",
       "near-linear increase with Cw (R^2 = 0.89)",
       render_fig13});
  catalog.push_back(
      {"fig14", ArtifactKind::kFigure, "Figure 14",
       "FIGURE 14 — Regression model: CE Bus Busy vs. Pc",
       "increases with Pc, levelling off near Pc = 6 (R^2 = 0.66)",
       render_fig14});
}

}  // namespace repro::artifacts
