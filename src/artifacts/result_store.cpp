#include "artifacts/result_store.hpp"

#include <cstdio>
#include <filesystem>
#include <functional>
#include <system_error>
#include <utility>

#include "base/fasthash.hpp"
#include "os/system.hpp"
#include "workload/presets.hpp"

namespace repro::artifacts {

namespace fs = std::filesystem;

namespace {

// Probe seeds for the bloom's hash family (independent seeded fasthash
// calls, the SNIPPETS 1-2 construction).
constexpr std::uint64_t kBloomSeeds[BloomFilter::kProbes] = {31, 47, 59, 67};

constexpr char kBloomFile[] = "bloom.bin";

/// Inner header laid in front of every blob payload before sealing:
/// the key echo catches renamed/collided files, the version catches
/// format skew that predates the envelope's own version field.
void append_header(std::vector<std::uint8_t>& out, std::uint64_t key) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(key >> (8 * i)));
  }
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(kStoreFormatVersion >> (8 * i)));
  }
}

constexpr std::size_t kHeaderBytes = 8 + 4;

std::uint64_t read_key(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

std::uint32_t read_version(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

std::string key_hex(std::uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

/// Parse an objects/ filename stem back into a key (bloom rebuild).
bool parse_key_hex(const std::string& stem, std::uint64_t& key) {
  if (stem.size() != 16) {
    return false;
  }
  key = 0;
  for (const char c : stem) {
    std::uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    key = (key << 4) | digit;
  }
  return true;
}

}  // namespace

// --- BloomFilter ------------------------------------------------------

void BloomFilter::insert(std::uint64_t key) {
  for (const std::uint64_t seed : kBloomSeeds) {
    const std::uint64_t bit = base::fasthash64(key, seed) % kBits;
    bits_[bit / 8] |= static_cast<std::uint8_t>(1u << (bit % 8));
  }
}

bool BloomFilter::maybe_contains(std::uint64_t key) const {
  for (const std::uint64_t seed : kBloomSeeds) {
    const std::uint64_t bit = base::fasthash64(key, seed) % kBits;
    if ((bits_[bit / 8] & (1u << (bit % 8))) == 0) {
      return false;
    }
  }
  return true;
}

void BloomFilter::serialize(capsule::Io& io) {
  const std::uint64_t count = io.extent(bits_.size());
  if (count != bits_.size()) {
    throw capsule::CapsuleError("bloom sidecar: wrong bit-array size");
  }
  for (std::uint8_t& byte : bits_) {
    io.u8(byte);
  }
}

// --- ResultStore ------------------------------------------------------

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(fs::path(dir_) / "objects", ec);
  if (ec) {
    throw capsule::CapsuleError("result store: cannot create " + dir_ +
                                ": " + ec.message());
  }
  load_or_rebuild_bloom();
}

std::string ResultStore::object_path(std::uint64_t key) const {
  return (fs::path(dir_) / "objects" / (key_hex(key) + ".blob")).string();
}

std::optional<std::vector<std::uint8_t>> ResultStore::get(std::uint64_t key) {
  if (!bloom_.maybe_contains(key)) {
    ++stats_.bloom_skips;
    ++stats_.misses;
    return std::nullopt;
  }
  const std::string path = object_path(key);
  try {
    std::vector<std::uint8_t> sealed = capsule::read_file(path);
    stats_.bytes_read += sealed.size();
    std::vector<std::uint8_t> payload = capsule::unseal(sealed);
    if (payload.size() < kHeaderBytes ||
        read_key(payload.data()) != key ||
        read_version(payload.data() + 8) != kStoreFormatVersion) {
      throw capsule::CapsuleError("result store: blob header mismatch");
    }
    ++stats_.hits;
    payload.erase(payload.begin(), payload.begin() + kHeaderBytes);
    return payload;
  } catch (const capsule::CapsuleError&) {
    // Absent file and corrupt blob both land here; only the latter has
    // bytes on disk worth counting and removing. Either way: a miss.
    std::error_code ec;
    if (fs::exists(path, ec) && !ec) {
      ++stats_.corrupt_misses;
      fs::remove(path, ec);  // Best effort; a survivor just misses again.
    }
    ++stats_.misses;
    return std::nullopt;
  }
}

void ResultStore::put(std::uint64_t key,
                      const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> framed;
  framed.reserve(kHeaderBytes + payload.size());
  append_header(framed, key);
  framed.insert(framed.end(), payload.begin(), payload.end());
  const std::vector<std::uint8_t> sealed = capsule::seal(framed);

  const std::string path = object_path(key);
  const std::string tmp = path + ".tmp";
  try {
    capsule::write_file(tmp, sealed);
    fs::rename(tmp, path);  // Atomic publish; readers never see torn blobs.
  } catch (...) {
    std::error_code ec;
    fs::remove(tmp, ec);
    ++stats_.put_errors;
    return;
  }
  ++stats_.puts;
  stats_.bytes_written += sealed.size();
  bloom_.insert(key);
  save_bloom();
}

void ResultStore::load_or_rebuild_bloom() {
  const std::string path = (fs::path(dir_) / kBloomFile).string();
  try {
    capsule::Io io =
        capsule::Io::loader(capsule::unseal(capsule::read_file(path)));
    bloom_.serialize(io);
    if (!io.exhausted()) {
      throw capsule::CapsuleError("bloom sidecar: trailing bytes");
    }
    return;
  } catch (const capsule::CapsuleError&) {
    // Missing or corrupt sidecar: rebuild membership from the object
    // directory so existing blobs stay reachable (a bloom that forgot a
    // key would skip a present object — wasted recompute, not wrongness,
    // but readdir is cheap and exact).
    bloom_ = BloomFilter();
    std::error_code ec;
    for (const auto& entry :
         fs::directory_iterator(fs::path(dir_) / "objects", ec)) {
      std::uint64_t key;
      if (entry.path().extension() == ".blob" &&
          parse_key_hex(entry.path().stem().string(), key)) {
        bloom_.insert(key);
      }
    }
    save_bloom();
  }
}

void ResultStore::save_bloom() {
  capsule::Io io = capsule::Io::saver();
  bloom_.serialize(io);
  const std::string path = (fs::path(dir_) / kBloomFile).string();
  const std::string tmp = path + ".tmp";
  try {
    capsule::write_file(tmp, capsule::seal(io.bytes()));
    fs::rename(tmp, path);
  } catch (...) {
    std::error_code ec;
    fs::remove(tmp, ec);
    // Not a put error: the blob (if any) landed fine, and this path also
    // runs from the reopen rebuild where no put is in flight. Counting
    // it against puts double-charged every sidecar failure.
    ++stats_.bloom_save_errors;
  }
}

// --- Key derivation ---------------------------------------------------

namespace {

std::uint64_t hash_walk(const char* tag, std::uint64_t salt,
                        std::uint64_t fingerprint,
                        const std::function<void(capsule::Io&)>& walk) {
  capsule::Io io = capsule::Io::saver();
  std::string tag_str = tag;
  io.str(tag_str);
  std::uint64_t salt_copy = salt;
  io.u64(salt_copy);
  io.u64(fingerprint);
  walk(io);
  return base::fasthash(io.bytes().data(), io.bytes().size(), salt);
}

}  // namespace

std::uint64_t study_cache_key(const core::StudyConfig& config,
                              std::uint64_t salt) {
  const auto mixes = workload::session_presets();
  return study_cache_key(config, mixes, salt);
}

std::uint64_t study_cache_key(const core::StudyConfig& config,
                              std::span<const workload::WorkloadMix> mixes,
                              std::uint64_t salt) {
  core::StudyConfig copy = config;
  std::vector<workload::WorkloadMix> mix_copies(mixes.begin(), mixes.end());
  return hash_walk("study-result/2", salt,
                   os::config_fingerprint(config.system),
                   [&copy, &mix_copies](capsule::Io& io) {
                     serialize_config(io, copy);
                     auto count = static_cast<std::uint64_t>(mix_copies.size());
                     io.u64(count);
                     for (workload::WorkloadMix& mix : mix_copies) {
                       workload::serialize_config(io, mix);
                     }
                   });
}

std::uint64_t transition_cache_key(const core::TransitionConfig& config,
                                   std::uint64_t salt) {
  core::TransitionConfig copy = config;
  return hash_walk("transition-result/1:high-concurrency:from-full", salt,
                   os::config_fingerprint(config.system),
                   [&copy](capsule::Io& io) { serialize_config(io, copy); });
}

std::uint64_t artifact_cache_key(const std::string& id,
                                 const core::StudyConfig& study,
                                 const core::TransitionConfig& transition,
                                 bool quick, std::uint64_t salt) {
  core::StudyConfig study_copy = study;
  core::TransitionConfig transition_copy = transition;
  return hash_walk(
      "artifact-result/1", salt, os::config_fingerprint(study.system),
      [&](capsule::Io& io) {
        std::string id_copy = id;
        io.str(id_copy);
        bool quick_copy = quick;
        io.boolean(quick_copy);
        serialize_config(io, study_copy);
        serialize_config(io, transition_copy);
      });
}

}  // namespace repro::artifacts
