// Figures 3-5 and 8-11: distributions and scatters over the shared
// random-sampling study. Ported from the one-shot bench_fig* binaries.
#include <cmath>
#include <vector>

#include "artifacts/inputs.hpp"
#include "artifacts/registry.hpp"
#include "core/report.hpp"
#include "stats/descriptive.hpp"
#include "stats/freq_table.hpp"
#include "stats/scatter.hpp"

namespace repro::artifacts {

namespace {

// Figure 3: Number of Records with N Processors Active / All Sessions.
// Paper shape: dominant peaks at 8, 1, and 0 processors active.
void render_fig3(Context& ctx) {
  const core::StudyResult& study = ctx.in().study();
  ctx.printf("%s\n",
             core::render_active_histogram(study.totals.num,
                                           "All sessions combined")
                 .c_str());

  const auto& num = study.totals.num;
  std::uint64_t corner = num[0] + num[1] + num[8];
  std::uint64_t total = 0;
  for (const std::uint64_t n : num) {
    total += n;
  }
  const double corner_share =
      100.0 * static_cast<double>(corner) / static_cast<double>(total);
  ctx.printf("idle+serial+full share: %.1f%% of records (paper: ~96%%)\n",
             corner_share);
  // "the CE Cluster spends the majority of its time in one of three
  // states" — measured 93% at paper scale.
  ctx.check("corner_share_pct", corner_share, 96.0, 80.0, 100.0);
}

// Figure 4: Distribution of Samples by Workload Concurrency.
// Paper: 44.6% of samples at Cw ~ 0; 55% show some concurrency.
void render_fig4(Context& ctx) {
  const auto& samples = ctx.in().samples();
  const auto cw = core::column_cw(samples);

  // The paper bins at midpoints 0, 0.125, ..., 1.0.
  std::vector<double> mids;
  for (int i = 0; i <= 8; ++i) {
    mids.push_back(static_cast<double>(i) / 8.0);
  }
  const auto table = stats::FreqTable::from_values(cw, mids, 3);
  ctx.printf("%s\n", table.render(44).c_str());

  std::size_t zeroish = 0;
  for (const double value : cw) {
    zeroish += value < 1.0 / 16.0;
  }
  const double zero_share =
      100.0 * static_cast<double>(zeroish) / static_cast<double>(cw.size());
  ctx.printf("samples with Cw ~ 0: %.1f%% (paper: 44.6%%)\n", zero_share);
  // Paper 44.6%; measured 36% at paper scale. Both serial/idle mass and
  // concurrent mass must be present.
  ctx.check("zero_cw_share_pct", zero_share, 44.6, 10.0, 70.0);
}

// Figure 5: Distribution of Samples by Mean Concurrency Level.
// Paper: >94% of concurrent samples have Pc above 6.5; 83% in the 8 bin.
void render_fig5(Context& ctx) {
  const auto pc = core::column_pc(ctx.in().samples());
  if (pc.empty()) {
    ctx.fail("no concurrent samples (unexpected)");
    return;
  }

  std::vector<double> mids;
  for (int i = 4; i <= 16; ++i) {
    mids.push_back(static_cast<double>(i) / 2.0);
  }
  const auto table = stats::FreqTable::from_values(pc, mids, 1);
  ctx.printf("%s\n", table.render(44).c_str());

  std::size_t high = 0;
  for (const double value : pc) {
    high += value > 6.5;
  }
  const double high_share =
      100.0 * static_cast<double>(high) / static_cast<double>(pc.size());
  ctx.printf("concurrent samples with Pc > 6.5: %.1f%% (paper: >94%%)\n",
             high_share);
  // Paper >94%; measured 77% at paper scale (the narrow-loop deficit,
  // EXPERIMENTS.md).
  ctx.check("pc_above_6_5_share_pct", high_share, 94.0, 50.0, 100.0);
}

// Figure 8: Missrate vs. Workload Concurrency (scatter).
// Paper: highest miss rates at max Cw; high Cw does not preclude low.
void render_fig8(Context& ctx) {
  const auto& samples = ctx.in().samples();
  const auto cw = core::column_cw(samples);
  const auto miss = core::column_miss_rate(samples);

  stats::ScatterOptions options;
  options.title = "Missrate vs. Cw  (SAS letters: A=1 obs, B=2, ...)";
  options.x_label = "Cw";
  options.y_label = "missrate";
  options.x_min = 0.0;
  options.x_max = 1.0;
  ctx.printf("%s\n", stats::render_scatter(cw, miss, options).c_str());

  // Split the claim into the testable halves.
  std::vector<double> low_cw_miss;
  std::vector<double> high_cw_miss;
  for (std::size_t i = 0; i < cw.size(); ++i) {
    (cw[i] < 0.4 ? low_cw_miss : high_cw_miss).push_back(miss[i]);
  }
  if (low_cw_miss.empty() || high_cw_miss.empty()) {
    ctx.fail("one of the Cw bands is empty");
    return;
  }
  const double max_low = stats::max_of(low_cw_miss);
  const double max_high = stats::max_of(high_cw_miss);
  const double min_high = stats::min_of(high_cw_miss);
  ctx.printf("max missrate:  Cw<0.4: %.4f   Cw>=0.4: %.4f\n", max_low,
             max_high);
  ctx.printf("min missrate at Cw>=0.4: %.4f (low values still occur)\n",
             min_high);
  // Both halves of the claim: the extremes live at high Cw, and high Cw
  // does not preclude a low miss rate.
  ctx.check("max_miss_high_over_low", max_high / max_low, 2.0, 1.0, 1e6);
  ctx.check("min_miss_at_high_cw", min_high, 0.001, 0.0, 0.02);
}

// Figure 9: Missrate vs. Mean Concurrency Level (scatter).
// Paper: mild increase with Pc; flat beyond Pc ~ 7.
void render_fig9(Context& ctx) {
  const auto& samples = ctx.in().samples_with_pc();
  const auto pc = core::column_pc(samples);
  const auto miss = core::column_miss_rate(samples);

  stats::ScatterOptions options;
  options.title = "Missrate vs. Pc  (SAS letters: A=1 obs, B=2, ...)";
  options.x_label = "Pc";
  options.y_label = "missrate";
  options.x_min = 2.0;
  options.x_max = 8.0;
  ctx.printf("%s\n", stats::render_scatter(pc, miss, options).c_str());

  std::vector<double> mid_band;
  std::vector<double> high_band;
  for (std::size_t i = 0; i < pc.size(); ++i) {
    if (pc[i] > 6.0 && pc[i] <= 7.5) {
      mid_band.push_back(miss[i]);
    } else if (pc[i] > 7.5) {
      high_band.push_back(miss[i]);
    }
  }
  if (!mid_band.empty() && !high_band.empty()) {
    const double mid_median = stats::median(mid_band);
    const double high_median = stats::median(high_band);
    ctx.printf(
        "median missrate, 6.0<Pc<=7.5: %.4f   Pc>7.5: %.4f  (paper: no "
        "increase between these bands)\n",
        mid_median, high_median);
    // "relatively unchanged after Pc > 7.0": the high band must not rise
    // meaningfully above the middle band.
    ctx.check("high_minus_mid_median", high_median - mid_median, 0.0,
              -1.0, 0.01);
  } else {
    ctx.note("high_minus_mid_median", NAN, 0.0, -1.0, 0.01);
  }
}

void banded_missrate(Context& ctx, const char* title,
                     const std::vector<double>& miss, double paper_median) {
  ctx.printf("--- %s ---\n", title);
  if (miss.empty()) {
    ctx.printf("(no samples in this band)\n\n");
    return;
  }
  std::vector<double> mids;
  for (int i = 0; i <= 10; ++i) {
    mids.push_back(static_cast<double>(i) / 100.0);
  }
  ctx.printf("%s",
             stats::FreqTable::from_values(miss, mids, 2).render(40)
                 .c_str());
  ctx.printf("mean: %.4f  median: %.4f  (paper median: %.3f)\n\n",
             stats::mean(miss), stats::median(miss), paper_median);
}

// Figure 10 (a)-(c): Distribution of Miss Rate banded by Cw.
// Paper medians 0.001 / 0.009 / 0.023 — the sharp jump across Cw bands.
void render_fig10(Context& ctx) {
  const auto& samples = ctx.in().samples();

  std::vector<double> low;
  std::vector<double> mid;
  std::vector<double> high;
  for (const core::AnalyzedSample& sample : samples) {
    if (sample.measures.cw <= 0.4) {
      low.push_back(sample.miss_rate);
    } else if (sample.measures.cw <= 0.8) {
      mid.push_back(sample.miss_rate);
    } else {
      high.push_back(sample.miss_rate);
    }
  }
  banded_missrate(ctx, "(a) Cw <= 0.4", low, 0.001);
  banded_missrate(ctx, "(b) 0.4 < Cw <= 0.8", mid, 0.009);
  banded_missrate(ctx, "(c) Cw > 0.8", high, 0.023);

  if (low.empty() || high.empty()) {
    ctx.fail("empty Cw band");
    return;
  }
  // The paper's key band fact: the median jumps sharply across the Cw
  // bands (0.001 -> 0.023; measured 0.0004 -> 0.0189 at paper scale).
  ctx.check("low_band_median", stats::median(low), 0.001, 0.0, 0.006);
  ctx.check("high_band_median", stats::median(high), 0.023, 0.006, 0.08);
}

// Figure 11 (a)-(c): Distribution of Miss Rate banded by Pc.
// Paper medians 0.004 / 0.017 / 0.017 — no increase between the middle
// and high ranges of Pc.
void render_fig11(Context& ctx) {
  const auto& samples = ctx.in().samples_with_pc();

  std::vector<double> low;
  std::vector<double> mid;
  std::vector<double> high;
  for (const core::AnalyzedSample& sample : samples) {
    if (sample.measures.pc <= 6.0) {
      low.push_back(sample.miss_rate);
    } else if (sample.measures.pc <= 7.5) {
      mid.push_back(sample.miss_rate);
    } else {
      high.push_back(sample.miss_rate);
    }
  }
  banded_missrate(ctx, "(a) Pc <= 6.0", low, 0.004);
  banded_missrate(ctx, "(b) 6.0 < Pc <= 7.5", mid, 0.017);
  banded_missrate(ctx, "(c) Pc > 7.5", high, 0.017);

  if (mid.empty() || high.empty()) {
    ctx.fail("empty Pc band");
    return;
  }
  // Less sensitivity to Pc than Cw: no median jump between the middle
  // and high Pc bands (measured 0.0118 vs 0.0077 at paper scale).
  ctx.check("high_minus_mid_median",
            stats::median(high) - stats::median(mid), 0.0, -1.0, 0.01);
}

}  // namespace

void register_study_figures(std::vector<ArtifactDef>& catalog) {
  catalog.push_back(
      {"fig3", ArtifactKind::kFigure, "Figure 3",
       "FIGURE 3 — Records with N Processors Active / All Sessions",
       "peaks at 8, 1 and 0 active; states 2..7 are slivers",
       render_fig3});
  catalog.push_back(
      {"fig4", ArtifactKind::kFigure, "Figure 4",
       "FIGURE 4 — Distribution of Samples by Workload Concurrency",
       "44.6% of samples at Cw ~ 0; 55% show some concurrency; mass up to "
       "Cw = 1.0",
       render_fig4});
  catalog.push_back(
      {"fig5", ArtifactKind::kFigure, "Figure 5",
       "FIGURE 5 — Distribution of Samples by Mean Concurrency Level",
       ">94% of concurrent samples have Pc > 6.5; 83% in the 8.0 bin",
       render_fig5});
  catalog.push_back(
      {"fig8", ArtifactKind::kFigure, "Figure 8",
       "FIGURE 8 — Missrate vs. Workload Concurrency (scatter)",
       "highest missrates at max Cw; high Cw does not preclude low "
       "missrate",
       render_fig8});
  catalog.push_back(
      {"fig9", ArtifactKind::kFigure, "Figure 9",
       "FIGURE 9 — Missrate vs. Mean Concurrency Level (scatter)",
       "mild increase with Pc; flat beyond Pc ~ 7",
       render_fig9});
  catalog.push_back(
      {"fig10", ArtifactKind::kFigure, "Figure 10",
       "FIGURE 10 — Distribution of Miss Rate by Cw band",
       "medians 0.001 / 0.009 / 0.023 for Cw <=0.4 / (0.4,0.8] / >0.8",
       render_fig10});
  catalog.push_back(
      {"fig11", ArtifactKind::kFigure, "Figure 11",
       "FIGURE 11 — Distribution of Miss Rate by Pc band",
       "medians 0.004 / 0.017 / 0.017: no increase between the middle and "
       "high Pc ranges",
       render_fig11});
}

}  // namespace repro::artifacts
