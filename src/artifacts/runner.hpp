// The artifact runner: executes a selection of the catalog against one
// shared input cache, times each render, and assembles the structured
// JSON report fx8bench emits.
#pragma once

#include <string>
#include <vector>

#include "artifacts/artifact.hpp"
#include "artifacts/inputs.hpp"
#include "core/json.hpp"

namespace repro::artifacts {

struct RunReport {
  std::vector<ArtifactResult> results;
  RunCounts run_counts;
  double total_seconds = 0.0;
  int ok = 0;
  int tolerance_failed = 0;
  int errors = 0;

  /// 0 when every artifact is kOk; 1 on any tolerance failure; 2 on any
  /// render error.
  [[nodiscard]] int exit_code() const;
};

/// The ===== header the old one-shot benches printed, off the def.
[[nodiscard]] std::string render_header(const ArtifactDef& def);

/// Render one artifact: wall-time the render, convert exceptions into
/// kError results.
[[nodiscard]] ArtifactResult run_artifact(const ArtifactDef& def,
                                          Inputs& inputs);

/// Run the given defs in catalog order against one shared cache.
[[nodiscard]] RunReport run_artifacts(
    const std::vector<const ArtifactDef*>& defs, Inputs& inputs);

/// The fx8bench JSON document (schema: docs/benchmarks.md).
[[nodiscard]] core::Json build_report_json(const RunReport& report,
                                           const Inputs& inputs,
                                           const core::StudyResult* study);

}  // namespace repro::artifacts
