#include "artifacts/runner.hpp"

#include <chrono>
#include <exception>

#include "artifacts/registry.hpp"
#include "core/study.hpp"

namespace repro::artifacts {

namespace {

constexpr const char* kRule =
    "=============================================================";

double seconds_since(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double>(elapsed).count();
}

core::Json check_json(const Check& check) {
  core::Json object = core::Json::object();
  object.set("name", check.name);
  object.set("measured", check.measured);
  object.set("paper", check.paper);
  object.set("lo", check.lo);
  object.set("hi", check.hi);
  object.set("pass", check.pass);
  object.set("enforced", check.enforced);
  return object;
}

core::Json result_json(const ArtifactResult& result,
                       const ArtifactDef* def) {
  core::Json object = core::Json::object();
  object.set("id", result.id);
  if (def != nullptr) {
    object.set("kind", to_string(def->kind));
    object.set("paper_ref", def->paper_ref);
    object.set("title", def->title);
    object.set("paper_claim", def->paper_claim);
  }
  object.set("status", to_string(result.status));
  if (!result.error.empty()) {
    object.set("error", result.error);
  }
  object.set("seconds", result.seconds);
  core::Json metrics = core::Json::object();
  for (const Metric& metric : result.metrics) {
    metrics.set(metric.name, metric.value);
  }
  object.set("metrics", metrics);
  core::Json checks = core::Json::array();
  for (const Check& check : result.checks) {
    checks.push_back(check_json(check));
  }
  object.set("checks", checks);
  return object;
}

}  // namespace

int RunReport::exit_code() const {
  if (errors > 0) {
    return 2;
  }
  return tolerance_failed > 0 ? 1 : 0;
}

std::string render_header(const ArtifactDef& def) {
  std::string header;
  header += kRule;
  header += '\n';
  header += def.title;
  header += "\nPaper: ";
  header += def.paper_claim;
  header += '\n';
  header += kRule;
  header += "\n\n";
  return header;
}

ArtifactResult run_artifact(const ArtifactDef& def, Inputs& inputs) {
  const auto start = std::chrono::steady_clock::now();

  // Warm path: a previously rendered artifact is restored whole from the
  // store (text, metrics, checks), skipping its simulations entirely. A
  // corrupt or stale blob is a miss and falls through to the render.
  ResultStore* store = inputs.store();
  const std::uint64_t key =
      store != nullptr ? inputs.artifact_key(def.id) : 0;
  if (store != nullptr) {
    if (auto payload = store->get(key)) {
      try {
        ArtifactResult cached =
            decode_result<ArtifactResult>(std::move(*payload));
        if (cached.id == def.id) {
          cached.seconds = seconds_since(start);
          return cached;
        }
      } catch (const capsule::CapsuleError&) {
      }
    }
  }

  Context ctx(inputs);
  try {
    def.render(ctx);
  } catch (const std::exception& error) {
    ctx.fail(error.what());
  } catch (...) {
    ctx.fail("unknown exception");
  }
  ArtifactResult result = ctx.take();
  result.id = def.id;
  result.seconds = seconds_since(start);
  // Only clean renders are cached: a tolerance failure or error is cheap
  // to reproduce and should never be served from disk once fixed.
  if (store != nullptr && result.status == ArtifactStatus::kOk) {
    store->put(key, encode_result(result));
  }
  return result;
}

RunReport run_artifacts(const std::vector<const ArtifactDef*>& defs,
                        Inputs& inputs) {
  RunReport report;
  const auto start = std::chrono::steady_clock::now();
  for (const ArtifactDef* def : defs) {
    ArtifactResult result = run_artifact(*def, inputs);
    switch (result.status) {
      case ArtifactStatus::kOk:
        ++report.ok;
        break;
      case ArtifactStatus::kToleranceFailed:
        ++report.tolerance_failed;
        break;
      case ArtifactStatus::kError:
        ++report.errors;
        break;
    }
    report.results.push_back(std::move(result));
  }
  report.run_counts = inputs.run_counts();
  report.total_seconds = seconds_since(start);
  return report;
}

core::Json build_report_json(const RunReport& report, const Inputs& inputs,
                             const core::StudyResult* study) {
  core::Json root = core::Json::object();
  root.set("schema", "fx8bench-report/1");
  root.set("paper",
           "McGuire 1987, A Measurement-Based Study of Concurrency in a "
           "Multiprocessor");
  root.set("quick", inputs.quick());

  core::Json config = core::Json::object();
  {
    const core::StudyConfig& sc = inputs.study_config();
    core::Json study_config = core::Json::object();
    study_config.set("samples_per_session",
                     static_cast<std::uint64_t>(sc.samples_per_session));
    study_config.set("interval_cycles",
                     static_cast<std::uint64_t>(sc.sampling.interval_cycles));
    study_config.set("warmup_cycles",
                     static_cast<std::uint64_t>(sc.warmup_cycles));
    study_config.set("seed", static_cast<std::uint64_t>(sc.seed));
    config.set("study", study_config);

    const core::TransitionConfig& tc = inputs.transition_config();
    core::Json transition_config = core::Json::object();
    transition_config.set("captures",
                          static_cast<std::uint64_t>(tc.captures));
    transition_config.set(
        "capture_timeout",
        static_cast<std::uint64_t>(tc.capture_timeout));
    transition_config.set("seed", static_cast<std::uint64_t>(tc.seed));
    config.set("transition", transition_config);
  }
  root.set("config", config);

  core::Json runs = core::Json::object();
  runs.set("study_runs", report.run_counts.study_runs);
  runs.set("transition_runs", report.run_counts.transition_runs);
  runs.set("private_runs", report.run_counts.private_runs);
  root.set("experiment_runs", runs);

  // Hit/miss accounting for the persistent result cache. Timing-like and
  // run-dependent by nature (a cold run puts, a warm run hits), so
  // scripts/report_diff.py excludes it — like `seconds` — when checking
  // cold-vs-warm report identity.
  if (const ResultStore* store = inputs.store()) {
    const CacheStats& stats = store->stats();
    core::Json cache = core::Json::object();
    cache.set("enabled", true);
    cache.set("dir", store->dir());
    cache.set("hits", stats.hits);
    cache.set("misses", stats.misses);
    cache.set("bloom_skips", stats.bloom_skips);
    cache.set("corrupt_misses", stats.corrupt_misses);
    cache.set("puts", stats.puts);
    cache.set("put_errors", stats.put_errors);
    cache.set("bloom_save_errors", stats.bloom_save_errors);
    cache.set("bytes_read", stats.bytes_read);
    cache.set("bytes_written", stats.bytes_written);
    root.set("cache", cache);
  }

  if (study != nullptr) {
    core::Json engine = core::Json::object();
    engine.set("threads",
               static_cast<std::uint64_t>(
                   core::resolve_threads(inputs.study_config())));
    engine.set("ff_skipped_cycles",
               static_cast<std::uint64_t>(study->ff.skipped_cycles));
    engine.set("ff_naive_cycles",
               static_cast<std::uint64_t>(study->ff.naive_cycles));
    engine.set("ff_block_cycles",
               static_cast<std::uint64_t>(study->ff.block_cycles));
    engine.set("ff_jumps", static_cast<std::uint64_t>(study->ff.jumps));
    const double total = static_cast<double>(study->ff.skipped_cycles +
                                             study->ff.naive_cycles +
                                             study->ff.block_cycles);
    engine.set("ff_skipped_share",
               total > 0.0
                   ? static_cast<double>(study->ff.skipped_cycles) / total
                   : 0.0);
    root.set("study_engine", engine);
  }

  core::Json summary = core::Json::object();
  summary.set("artifacts", static_cast<std::uint64_t>(report.results.size()));
  summary.set("ok", report.ok);
  summary.set("tolerance_failed", report.tolerance_failed);
  summary.set("errors", report.errors);
  summary.set("total_seconds", report.total_seconds);
  summary.set("exit_code", report.exit_code());
  root.set("summary", summary);

  core::Json artifacts = core::Json::array();
  for (const ArtifactResult& result : report.results) {
    artifacts.push_back(result_json(result, find_artifact(result.id)));
  }
  root.set("artifacts", artifacts);
  return root;
}

}  // namespace repro::artifacts
