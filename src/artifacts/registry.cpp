#include "artifacts/registry.hpp"

#include "base/text.hpp"

namespace repro::artifacts {

const std::vector<ArtifactDef>& catalog() {
  static const std::vector<ArtifactDef> all = [] {
    std::vector<ArtifactDef> defs;
    register_tables(defs);
    register_study_figures(defs);
    register_transition_figures(defs);
    register_model_figures(defs);
    register_appendices(defs);
    register_ablations(defs);
    register_extensions(defs);
    register_contention(defs);
    register_perf(defs);
    return defs;
  }();
  return all;
}

const ArtifactDef* find_artifact(const std::string& id) {
  for (const ArtifactDef& def : catalog()) {
    if (def.id == id) {
      return &def;
    }
  }
  return nullptr;
}

const ArtifactDef* suggest_artifact(const std::string& id) {
  const ArtifactDef* best = nullptr;
  std::size_t best_distance = 0;
  for (const ArtifactDef& def : catalog()) {
    const std::size_t distance = edit_distance(id, def.id);
    if (best == nullptr || distance < best_distance) {
      best = &def;
      best_distance = distance;
    }
  }
  return best;
}

}  // namespace repro::artifacts
