#include "artifacts/registry.hpp"

namespace repro::artifacts {

const std::vector<ArtifactDef>& catalog() {
  static const std::vector<ArtifactDef> all = [] {
    std::vector<ArtifactDef> defs;
    register_tables(defs);
    register_study_figures(defs);
    register_transition_figures(defs);
    register_model_figures(defs);
    register_appendices(defs);
    register_ablations(defs);
    register_extensions(defs);
    register_perf(defs);
    return defs;
  }();
  return all;
}

const ArtifactDef* find_artifact(const std::string& id) {
  for (const ArtifactDef& def : catalog()) {
    if (def.id == id) {
      return &def;
    }
  }
  return nullptr;
}

}  // namespace repro::artifacts
