// Tables 1-4: the paper's tabular artifacts.
//
// Ported from the one-shot bench_table*_event_counts/_overall_measures/
// _regression_vs_* binaries; the rendered text is unchanged, the study
// now comes from the shared input cache, and each table's headline
// numbers carry explicit paper-tolerance verdicts.
#include <cmath>

#include "artifacts/inputs.hpp"
#include "artifacts/registry.hpp"
#include "base/rng.hpp"
#include "core/report.hpp"
#include "instr/reduction.hpp"
#include "instr/session_controller.hpp"
#include "os/system.hpp"
#include "stats/bootstrap.hpp"
#include "workload/generator.hpp"
#include "workload/presets.hpp"

namespace repro::artifacts {

namespace {

// Table 1: Hardware Event Counts. One all-active triggered acquisition
// (a 512-deep DAS buffer) off a loaded machine, reduced — the exact
// artifact the measurement scripts produced per buffer (§3.4).
void render_table1(Context& ctx) {
  os::System system{os::SystemConfig{}};
  workload::WorkloadGenerator generator(workload::high_concurrency_mix(),
                                        0x7AB1E1);
  instr::SamplingConfig sampling;
  instr::SessionController controller(system, generator, sampling, 0x7AB1E1);
  ctx.in().note_private_run();

  const auto buffer =
      controller.capture_triggered(instr::TriggerMode::kAllActive, 500000);
  if (!buffer) {
    ctx.fail("trigger never fired (unexpected under this mix)");
    return;
  }
  const instr::EventCounts counts = instr::reduce(*buffer);
  ctx.printf("%s\n", counts.render().c_str());
  ctx.printf("derived: miss_rate=%.4f  bus_busy=%.4f  mem_bus_busy=%.4f\n",
             counts.miss_rate(), counts.bus_busy(), counts.mem_bus_busy());

  // Structural verdicts: an all-active buffer must be dominated by the
  // 8-active state and produce finite, sane derived measures.
  const double full_share =
      counts.records == 0
          ? 0.0
          : static_cast<double>(counts.num[kMaxCes]) /
                static_cast<double>(counts.records);
  ctx.check("full_active_share", full_share, 1.0, 0.5, 1.0);
  ctx.check("miss_rate", counts.miss_rate(), 0.02, 0.0, 0.5);
  ctx.check("bus_busy", counts.bus_busy(), 0.33, 0.0, 1.0);
  ctx.metric("mem_bus_busy", counts.mem_bus_busy());
}

// Table 2: Overall Concurrency Measures for All Sessions.
// Paper values: c8 = 0.2795, Cw = 0.3506, c(8|c) = 0.9278, Pc = 7.66.
void render_table2(Context& ctx) {
  const core::StudyResult& study = ctx.in().study();
  ctx.printf("%s\n", core::render_table2(study.overall).c_str());

  ctx.printf("paper vs measured:\n");
  ctx.printf("  Cw      %8.4f  %8.4f\n", 0.3506, study.overall.cw);
  ctx.printf("  c8      %8.4f  %8.4f\n", 0.2795, study.overall.c[8]);
  ctx.printf("  c(8|c)  %8.4f  %8.4f\n", 0.9278, study.overall.c_cond[8]);
  ctx.printf("  Pc      %8.2f  %8.2f\n", 7.66, study.overall.pc);

  // The headline concurrency measures, against tolerance bands around
  // the paper's Table 2 (EXPERIMENTS.md records the paper-scale values:
  // 0.334 / 0.266 / 0.80 / 7.27).
  ctx.check("cw", study.overall.cw, 0.3506, 0.20, 0.50);
  ctx.check("c8", study.overall.c[8], 0.2795, 0.15, 0.45);
  ctx.check("c8_given_c", study.overall.c_cond[8], 0.9278, 0.60, 1.00);
  ctx.check("pc", study.overall.pc, 7.66, 6.50, 8.00);

  // Sampling uncertainty (an extension: the thesis reports points only).
  const auto& samples = ctx.in().samples();
  Rng rng(0xB007);
  const auto cw_ci = stats::bootstrap_mean_ci(core::column_cw(samples), rng);
  const auto pc_ci = stats::bootstrap_mean_ci(core::column_pc(samples), rng);
  ctx.printf(
      "\n95%% bootstrap CIs over per-sample values (%zu samples):\n"
      "  mean Cw  %.4f [%.4f, %.4f]\n"
      "  mean Pc  %.2f [%.2f, %.2f]\n",
      samples.size(), cw_ci.point, cw_ci.lo, cw_ci.hi, pc_ci.point,
      pc_ci.lo, pc_ci.hi);
  ctx.metric("cw_ci_lo", cw_ci.lo);
  ctx.metric("cw_ci_hi", cw_ci.hi);
  ctx.metric("pc_ci_lo", pc_ci.lo);
  ctx.metric("pc_ci_hi", pc_ci.hi);
}

// Table 3: Regression Models versus Cw. Paper R^2: miss rate 0.74, CE
// bus busy 0.89, page fault rate 0.65; all medians increase with Cw.
void render_table3(Context& ctx) {
  const auto& models = ctx.in().models();
  ctx.printf("%s\n",
             core::render_regression_table(models, core::Regressor::kCw)
                 .c_str());

  for (const core::MedianModel& model : models) {
    if (model.regressor != core::Regressor::kCw) {
      continue;
    }
    ctx.printf("%s median points:", measure_name(model.measure).c_str());
    for (const auto& [mid, med] : model.median_points) {
      ctx.printf("  (%.1f, %.4g)", mid, med);
    }
    ctx.printf("\n");
  }

  // All three vs-Cw fits must stay strong (paper: 0.74/0.89/0.65;
  // measured at paper scale: 0.97/0.96/0.79) and rising.
  const auto& miss =
      ctx.in().model(core::SystemMeasure::kMissRate, core::Regressor::kCw);
  const auto& busy =
      ctx.in().model(core::SystemMeasure::kBusBusy, core::Regressor::kCw);
  const auto& fault = ctx.in().model(core::SystemMeasure::kPageFaultRate,
                                     core::Regressor::kCw);
  ctx.check("r2_miss_rate", miss.r_squared(), 0.74, 0.40, 1.00);
  ctx.check("r2_bus_busy", busy.r_squared(), 0.89, 0.50, 1.00);
  ctx.check("r2_page_fault_rate", fault.r_squared(), 0.65, 0.30, 1.00);
  ctx.check("miss_rise_over_cw", miss.predict(1.0) - miss.predict(0.1),
            0.017, 0.0, 1.0);
}

// Table 4: Regression Models versus Pc. Paper: miss rate shows
// essentially no relationship with Pc (R^2 = 0.07) while CE bus busy
// (0.66) and page fault rate (0.61) retain moderate fits.
void render_table4(Context& ctx) {
  const auto& models = ctx.in().models();
  ctx.printf("%s\n",
             core::render_regression_table(models, core::Regressor::kPc)
                 .c_str());

  // The effect-size view of "no relationship": compare each model's
  // range over the observed Pc span against the Cw model's range.
  for (const core::MedianModel& model : models) {
    if (model.regressor != core::Regressor::kPc) {
      continue;
    }
    const double spread = std::abs(model.predict(8.0) - model.predict(6.0));
    ctx.printf("%-26s prediction range over Pc in [6,8]: %.4g\n",
               measure_name(model.measure).c_str(), spread);
  }
  for (const core::MedianModel& model : models) {
    if (model.regressor == core::Regressor::kCw &&
        model.measure == core::SystemMeasure::kMissRate) {
      ctx.printf(
          "%-26s prediction range over Cw in [0,1]: %.4g  (the contrast)\n",
          "Median Miss Rate",
          std::abs(model.predict(1.0) - model.predict(0.0)));
    }
  }

  // The substantive claim survives on effect size (EXPERIMENTS.md): the
  // miss-rate model's range over the observed Pc span is a small
  // fraction of its range over the Cw span.
  const auto& miss_pc =
      ctx.in().model(core::SystemMeasure::kMissRate, core::Regressor::kPc);
  const auto& miss_cw =
      ctx.in().model(core::SystemMeasure::kMissRate, core::Regressor::kCw);
  const double pc_spread = std::abs(miss_pc.predict(8.0) - miss_pc.predict(6.0));
  const double cw_spread = std::abs(miss_cw.predict(1.0) - miss_cw.predict(0.0));
  const double ratio = cw_spread > 0.0 ? pc_spread / cw_spread : NAN;
  ctx.check("miss_pc_span_over_cw_span", ratio, 0.1, 0.0, 0.6);
  ctx.metric("r2_miss_rate_vs_pc", miss_pc.r_squared());
}

}  // namespace

void register_tables(std::vector<ArtifactDef>& catalog) {
  catalog.push_back(
      {"table1", ArtifactKind::kTable, "Table 1",
       "TABLE 1 — Hardware Measurement Event Counts",
       "defines num_j / proc_j / ceop_j / membop_j reduced from one "
       "512-deep monitor buffer",
       render_table1});
  catalog.push_back(
      {"table2", ArtifactKind::kTable, "Table 2",
       "TABLE 2 — Overall Concurrency Measures for All Sessions",
       "Cw = 0.3506, c8 = 0.2795, c(8|c) = 0.9278, Pc = 7.66",
       render_table2});
  catalog.push_back(
      {"table3", ArtifactKind::kTable, "Table 3",
       "TABLE 3 — Regression Models vs. Cw",
       "R^2: miss rate 0.74, CE bus busy 0.89, page fault rate 0.65; all "
       "medians increase with Cw",
       render_table3});
  catalog.push_back(
      {"table4", ArtifactKind::kTable, "Table 4",
       "TABLE 4 — Regression Models vs. Pc",
       "R^2: miss rate 0.07 (no relationship), CE bus busy 0.66, page "
       "fault rate 0.61",
       render_table4});
}

}  // namespace repro::artifacts
