// Figures 6-7: the Chapter 4.3 triggered transition captures, off the
// shared transition study. Ported from bench_fig6/_fig7.
#include <cmath>

#include "artifacts/inputs.hpp"
#include "artifacts/registry.hpp"
#include "core/report.hpp"
#include "core/transition.hpp"

namespace repro::artifacts {

namespace {

// Figure 6: Number of Records with N Processors Active / Concurrency
// Transition Periods. Paper: 2-active accounts for 52.4% of the
// transition records; 7..3 shares are 8.0/8.1/5.5/15.5/10.5%.
void render_fig6(Context& ctx) {
  const core::TransitionResult& result = ctx.in().transition();

  ctx.printf("captures: %u completed, %u timed out\n\n",
             result.captures_completed, result.captures_timed_out);
  const double paper_share[8] = {0, 0, 52.43, 10.49, 15.49, 5.48, 8.08,
                                 8.03};
  ctx.printf("  state    paper    measured\n");
  for (std::uint32_t j = 7; j >= 2; --j) {
    ctx.printf("  %u-active  %5.1f%%   %5.1f%%\n", j, paper_share[j],
               100.0 * result.transition_share(j));
  }

  std::uint32_t dominant = 2;
  for (std::uint32_t j = 3; j < 8; ++j) {
    if (result.state_counts[j] > result.state_counts[dominant]) {
      dominant = j;
    }
  }
  ctx.printf("\ndominant transition state: %u-active (paper: 2-active)\n",
             dominant);
  ctx.printf("idle overhead across transition records: %.1f%% of the\n"
             "processor-cycles an instantaneous drain would deliver "
             "(§4.3's multiprocessing overhead)\n",
             100.0 * result.idle_overhead());

  if (result.captures_completed == 0) {
    ctx.fail("no transition captures completed");
    return;
  }
  // 2-active dominates in both the paper and the reproduction (the 8j+2
  // leftover-iteration mode); 52.4% there, 29% here.
  ctx.check("dominant_state", dominant, 2.0, 2.0, 2.0);
  ctx.check("two_active_share_pct", 100.0 * result.transition_share(2),
            52.43, 15.0, 70.0);
  ctx.metric("idle_overhead", result.idle_overhead());
}

// Figure 7: Number of Records Active by Processor Number / Concurrency
// Transition Periods. Paper: CE7 and CE0 most active; CE2/3/4 least.
void render_fig7(Context& ctx) {
  const core::TransitionResult& result = ctx.in().transition();

  ctx.printf("%s\n",
             core::render_processor_histogram(result.processor_counts,
                                              "Transition records only")
                 .c_str());

  const auto& proc = result.processor_counts;
  const double outer = static_cast<double>(proc[7] + proc[0]) / 2.0;
  const double inner =
      static_cast<double>(proc[2] + proc[3] + proc[4]) / 3.0;
  const double ratio = inner > 0.0 ? outer / inner : NAN;
  ctx.printf("mean(CE7,CE0) / mean(CE2,CE3,CE4) = %.2f (paper: > 1)\n",
             ratio);
  // The fixed-priority asymmetry: outer CEs visibly above the inner
  // ones (measured 2.0 at paper scale).
  ctx.check("outer_over_inner_activity", ratio, 2.0, 1.05, 10.0);
}

}  // namespace

void register_transition_figures(std::vector<ArtifactDef>& catalog) {
  catalog.push_back(
      {"fig6", ArtifactKind::kFigure, "Figure 6",
       "FIGURE 6 — Transition-Period Activity Histogram",
       "2-active dominates at 52.4%; the 7->3 states drain quickly",
       render_fig6});
  catalog.push_back(
      {"fig7", ArtifactKind::kFigure, "Figure 7",
       "FIGURE 7 — Transition Activity by Processor Number",
       "CE7 and CE0 most active during transitions; CE2, CE3, CE4 least",
       render_fig7});
}

}  // namespace repro::artifacts
