// The artifact registry's vocabulary.
//
// Each table, figure, appendix, ablation, and extension of the paper
// registers one ArtifactDef: an id, what the paper claims for it, and a
// render function that regenerates it from the shared input cache
// (artifacts/inputs.hpp). Rendering produces an ArtifactResult — the
// human-readable text the old one-shot bench binaries printed, plus the
// machine-readable headline metrics and paper-tolerance checks that feed
// the fx8bench JSON document.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "base/capsule.hpp"

namespace repro::artifacts {

class Inputs;

enum class ArtifactKind { kTable, kFigure, kAppendix, kAblation, kExtension };

/// kOk           — rendered, every enforced check passed.
/// kToleranceFailed — rendered, but a headline value fell outside its
///                  paper-tolerance band or came out NaN.
/// kError        — the render threw (failed fit, missing capture, ...).
enum class ArtifactStatus { kOk, kToleranceFailed, kError };

[[nodiscard]] const char* to_string(ArtifactKind kind);
[[nodiscard]] const char* to_string(ArtifactStatus status);

/// A named headline number ("cw", "r_squared", ...).
struct Metric {
  std::string name;
  double value = 0.0;
};

/// A paper-tolerance verdict: measured against [lo, hi] around the
/// paper's reported value. Non-finite measurements never pass.
struct Check {
  std::string name;
  double measured = 0.0;
  double paper = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  bool pass = false;
  /// Informational checks are recorded in the JSON but do not fail the
  /// artifact (used for shape observations the simulator reproduces
  /// loosely, and for bands that only hold at paper-scale populations).
  bool enforced = true;
};

struct ArtifactResult {
  std::string id;
  ArtifactStatus status = ArtifactStatus::kOk;
  std::string error;  ///< What the render threw, when status == kError.
  std::string text;   ///< The human-readable artifact body.
  std::vector<Metric> metrics;
  std::vector<Check> checks;
  double seconds = 0.0;  ///< Render wall time (filled by the runner).

  /// Capsule walk over everything but `seconds` (wall time is a property
  /// of the run, not of the artifact): a cache hit restores the text,
  /// metrics, and checks the cold render produced, byte for byte.
  void serialize(capsule::Io& io);
};

/// Handed to a render function: the shared input cache plus the result
/// under construction.
class Context {
 public:
  explicit Context(Inputs& inputs) : inputs_(inputs) {}

  [[nodiscard]] Inputs& in() { return inputs_; }
  [[nodiscard]] bool quick() const;

  /// Append printf-formatted text to the artifact body.
  [[gnu::format(printf, 2, 3)]] void printf(const char* format, ...);

  /// Record a headline metric.
  void metric(const std::string& name, double value);

  /// Record an enforced paper-tolerance check (also records the metric).
  /// Returns the verdict; a failed or NaN check marks the artifact
  /// kToleranceFailed.
  bool check(const std::string& name, double measured, double paper,
             double lo, double hi);

  /// Record an informational check: shown in the JSON, never fails the
  /// artifact.
  bool note(const std::string& name, double measured, double paper,
            double lo, double hi);

  /// Hard failure (missing capture, degenerate fit): marks kError.
  void fail(const std::string& reason);

  [[nodiscard]] ArtifactResult take() { return std::move(result_); }

 private:
  bool record_check(const std::string& name, double measured, double paper,
                    double lo, double hi, bool enforced);

  Inputs& inputs_;
  ArtifactResult result_;
};

struct ArtifactDef {
  std::string id;           ///< Stable CLI id, e.g. "fig12".
  ArtifactKind kind = ArtifactKind::kFigure;
  std::string paper_ref;    ///< "Table 2", "Figure 12", "Appendix B", ...
  std::string title;        ///< Header line, as the old benches printed.
  std::string paper_claim;  ///< What the paper reports for this artifact.
  std::function<void(Context&)> render;
};

}  // namespace repro::artifacts
