// Appendices A and B: the per-session sampling data and the CE-bus-busy
// / page-fault companions to the Chapter 5 analysis. Ported from
// bench_appendix_a / bench_appendix_b_busbusy / bench_appendix_b_pagefault.
#include <algorithm>
#include <cmath>
#include <vector>

#include "artifacts/inputs.hpp"
#include "artifacts/registry.hpp"
#include "core/report.hpp"
#include "stats/descriptive.hpp"
#include "stats/freq_table.hpp"
#include "stats/scatter.hpp"

namespace repro::artifacts {

namespace {

// Appendix A: Table A.1 per-session measures, the contrasting per-session
// histograms (A.1/A.2-style), and the A.3-A.5 sample distributions.
void render_appendix_a(Context& ctx) {
  const core::StudyResult& study = ctx.in().study();
  ctx.printf("%s\n", core::render_session_table(study.sessions).c_str());

  // Figures A.1 / A.2: two contrasting sessions.
  const core::SessionResult* lightest = &study.sessions.front();
  const core::SessionResult* heaviest = &study.sessions.front();
  for (const core::SessionResult& session : study.sessions) {
    if (session.overall.cw < lightest->overall.cw) {
      lightest = &session;
    }
    if (session.overall.cw > heaviest->overall.cw) {
      heaviest = &session;
    }
  }
  ctx.printf("%s\n",
             core::render_active_histogram(
                 lightest->totals.num,
                 "Figure A.1-style: lightest session (" + lightest->name +
                     ")")
                 .c_str());
  ctx.printf("%s\n",
             core::render_active_histogram(
                 heaviest->totals.num,
                 "Figure A.2-style: heaviest session (" + heaviest->name +
                     ")")
                 .c_str());

  const auto& samples = ctx.in().samples();

  std::vector<double> mids;
  for (int i = 0; i <= 10; ++i) {
    mids.push_back(static_cast<double>(i) / 20.0);  // 0 .. 0.5
  }
  ctx.printf("Figure A.3. Distribution of Samples by CE Bus Busy\n%s\n",
             stats::FreqTable::from_values(core::column_bus_busy(samples),
                                           mids, 2)
                 .render(40)
                 .c_str());

  std::vector<double> miss_mids;
  for (int i = 0; i <= 10; ++i) {
    miss_mids.push_back(static_cast<double>(i) / 100.0);
  }
  ctx.printf("Figure A.4. Distribution of Samples by Miss Rate\n%s\n",
             stats::FreqTable::from_values(core::column_miss_rate(samples),
                                           miss_mids, 2)
                 .render(40)
                 .c_str());

  const auto faults = core::column_page_fault_rate(samples);
  double max_faults = 1.0;
  for (const double f : faults) {
    max_faults = std::max(max_faults, f);
  }
  std::vector<double> fault_mids;
  for (int i = 0; i <= 12; ++i) {
    fault_mids.push_back(max_faults * i / 12.0);
  }
  ctx.printf("Figure A.5. Distribution of Samples by Page Fault Rate\n%s\n",
             stats::FreqTable::from_values(faults, fault_mids, 0)
                 .render(40)
                 .c_str());

  // "Distributions of processor activity in individual sessions showed
  // significant variation" — the session Cw spread must be wide.
  ctx.check("session_cw_spread",
            heaviest->overall.cw - lightest->overall.cw, 0.5, 0.2, 1.0);
  ctx.metric("lightest_session_cw", lightest->overall.cw);
  ctx.metric("heaviest_session_cw", heaviest->overall.cw);
}

void banded_busy(Context& ctx, const char* title,
                 const std::vector<double>& values, double paper_median) {
  ctx.printf("--- %s ---\n", title);
  if (values.empty()) {
    ctx.printf("(no samples)\n\n");
    return;
  }
  std::vector<double> mids;
  for (int i = 0; i <= 10; ++i) {
    mids.push_back(static_cast<double>(i) / 10.0);
  }
  ctx.printf("%s",
             stats::FreqTable::from_values(values, mids, 1).render(36)
                 .c_str());
  ctx.printf("median: %.4f  (paper: %.4f)\n\n", stats::median(values),
             paper_median);
}

// Appendix B (CE Bus Busy): Figures B.1-B.4.
void render_appendix_b_busbusy(Context& ctx) {
  const auto& samples = ctx.in().samples();
  const auto cw = core::column_cw(samples);
  const auto busy = core::column_bus_busy(samples);

  stats::ScatterOptions b1;
  b1.title = "Figure B.1: CE Bus Busy vs. Cw";
  b1.x_label = "Cw";
  b1.y_label = "busy";
  b1.x_min = 0.0;
  b1.x_max = 1.0;
  ctx.printf("%s\n", stats::render_scatter(cw, busy, b1).c_str());

  const auto& with_pc = ctx.in().samples_with_pc();
  stats::ScatterOptions b2;
  b2.title = "Figure B.2: CE Bus Busy vs. Pc";
  b2.x_label = "Pc";
  b2.y_label = "busy";
  b2.x_min = 2.0;
  b2.x_max = 8.0;
  ctx.printf("%s\n",
             stats::render_scatter(core::column_pc(with_pc),
                                   core::column_bus_busy(with_pc), b2)
                 .c_str());

  std::vector<double> cw_low;
  std::vector<double> cw_mid;
  std::vector<double> cw_high;
  for (const core::AnalyzedSample& sample : samples) {
    if (sample.measures.cw <= 0.4) {
      cw_low.push_back(sample.bus_busy);
    } else if (sample.measures.cw <= 0.8) {
      cw_mid.push_back(sample.bus_busy);
    } else {
      cw_high.push_back(sample.bus_busy);
    }
  }
  banded_busy(ctx, "Figure B.3(a): Cw <= 0.4", cw_low, 0.0046);
  banded_busy(ctx, "Figure B.3(b): 0.4 < Cw <= 0.8", cw_mid, 0.115);
  banded_busy(ctx, "Figure B.3(c): Cw > 0.8", cw_high, 0.305);

  std::vector<double> pc_low;
  std::vector<double> pc_mid;
  std::vector<double> pc_high;
  for (const core::AnalyzedSample& sample : with_pc) {
    if (sample.measures.pc <= 6.0) {
      pc_low.push_back(sample.bus_busy);
    } else if (sample.measures.pc <= 7.5) {
      pc_mid.push_back(sample.bus_busy);
    } else {
      pc_high.push_back(sample.bus_busy);
    }
  }
  banded_busy(ctx, "Figure B.4(a): Pc <= 6.0", pc_low, 0.157);
  banded_busy(ctx, "Figure B.4(b): 6.0 < Pc <= 7.5", pc_mid, 0.282);
  banded_busy(ctx, "Figure B.4(c): Pc > 7.5", pc_high, 0.30);

  if (cw_low.empty() || cw_high.empty()) {
    ctx.fail("empty Cw band");
    return;
  }
  // Band medians must rise across the Cw bands in the paper's ordering
  // (0.005 / 0.115 / 0.305 there).
  ctx.check("cw_band_median_rise",
            stats::median(cw_high) - stats::median(cw_low), 0.3, 0.05,
            1.0);
}

// Appendix B (Page Fault Rate): Figures B.5-B.10.
void render_appendix_b_pagefault(Context& ctx) {
  const auto& samples = ctx.in().samples();
  const auto cw = core::column_cw(samples);
  const auto faults = core::column_page_fault_rate(samples);

  stats::ScatterOptions b5;
  b5.title = "Figure B.5: Page Fault Rate vs. Cw";
  b5.x_label = "Cw";
  b5.y_label = "faults";
  b5.x_min = 0.0;
  b5.x_max = 1.0;
  ctx.printf("%s\n", stats::render_scatter(cw, faults, b5).c_str());

  const auto& with_pc = ctx.in().samples_with_pc();
  stats::ScatterOptions b6;
  b6.title = "Figure B.6: Page Fault Rate vs. Pc";
  b6.x_label = "Pc";
  b6.y_label = "faults";
  b6.x_min = 2.0;
  b6.x_max = 8.0;
  ctx.printf("%s\n",
             stats::render_scatter(core::column_pc(with_pc),
                                   core::column_page_fault_rate(with_pc),
                                   b6)
                 .c_str());

  // B.7: banded by Cw.
  double max_rate = 1.0;
  for (const double f : faults) {
    max_rate = std::max(max_rate, f);
  }
  std::vector<double> mids;
  for (int i = 0; i <= 8; ++i) {
    mids.push_back(max_rate * i / 8.0);
  }
  std::vector<double> low;
  std::vector<double> mid;
  std::vector<double> high;
  for (const core::AnalyzedSample& sample : samples) {
    if (sample.measures.cw <= 0.4) {
      low.push_back(sample.page_fault_rate);
    } else if (sample.measures.cw <= 0.8) {
      mid.push_back(sample.page_fault_rate);
    } else {
      high.push_back(sample.page_fault_rate);
    }
  }
  auto banded = [&](const char* title, const std::vector<double>& values) {
    ctx.printf("--- %s ---\n", title);
    if (values.empty()) {
      ctx.printf("(no samples)\n\n");
      return;
    }
    ctx.printf("%s",
               stats::FreqTable::from_values(values, mids, 0).render(32)
                   .c_str());
    ctx.printf("median: %.0f\n\n", stats::median(values));
  };
  banded("Figure B.7(a): Cw <= 0.4", low);
  banded("Figure B.7(b): 0.4 < Cw <= 0.8", mid);
  banded("Figure B.7(c): Cw > 0.8", high);

  // B.9 / B.10: regression plots, off the shared fitted models.
  const core::MedianModel& vs_cw = ctx.in().model(
      core::SystemMeasure::kPageFaultRate, core::Regressor::kCw);
  stats::ScatterOptions b9;
  b9.title = "Figure B.9: model, Page Fault Rate vs. Cw";
  b9.x_label = "Cw";
  b9.y_label = "faults";
  ctx.printf("%s\n",
             stats::render_curve(0.0, 1.0, 44,
                                 [&](double x) { return vs_cw.predict(x); },
                                 b9)
                 .c_str());
  ctx.printf("R^2 vs Cw = %.2f (paper: 0.65)\n\n", vs_cw.r_squared());

  const core::MedianModel& vs_pc = ctx.in().model(
      core::SystemMeasure::kPageFaultRate, core::Regressor::kPc);
  stats::ScatterOptions b10;
  b10.title = "Figure B.10: model, Page Fault Rate vs. Pc";
  b10.x_label = "Pc";
  b10.y_label = "faults";
  ctx.printf("%s\n",
             stats::render_curve(2.0, 8.0, 44,
                                 [&](double x) { return vs_pc.predict(x); },
                                 b10)
                 .c_str());
  ctx.printf("R^2 vs Pc = %.2f (paper: 0.61)\n", vs_pc.r_squared());

  // The fault-rate model must keep a real fit against Cw (paper 0.65,
  // measured 0.79 at paper scale) and rise with it.
  ctx.check("r2_vs_cw", vs_cw.r_squared(), 0.65, 0.30, 1.00);
  ctx.check("rise_over_cw", vs_cw.predict(1.0) - vs_cw.predict(0.1), 100.0,
            0.0, 1e9);
  ctx.metric("r2_vs_pc", vs_pc.r_squared());
}

}  // namespace

void register_appendices(std::vector<ArtifactDef>& catalog) {
  catalog.push_back(
      {"appendix_a", ArtifactKind::kAppendix, "Appendix A",
       "APPENDIX A — Workload Sampling Data",
       "per-session measures vary widely; miss-rate samples concentrate "
       "near zero; bus-busy spreads to ~0.5",
       render_appendix_a});
  catalog.push_back(
      {"appendix_b_busbusy", ArtifactKind::kAppendix, "Appendix B",
       "APPENDIX B — CE Bus Busy vs. concurrency (Figures B.1-B.4)",
       "bus busy rises with Cw (band medians 0.005/0.115/0.305) and with "
       "Pc up to saturation",
       render_appendix_b_busbusy});
  catalog.push_back(
      {"appendix_b_pagefault", ArtifactKind::kAppendix, "Appendix B",
       "APPENDIX B — Page Fault Rate vs. concurrency (Figures B.5-B.10)",
       "page-fault rate rises with Cw (R^2 = 0.65) and more weakly with Pc "
       "(R^2 = 0.61)",
       render_appendix_b_pagefault});
}

}  // namespace repro::artifacts
