#include "artifacts/artifact.hpp"

#include <cmath>
#include <cstdarg>
#include <cstdio>

#include "artifacts/inputs.hpp"

namespace repro::artifacts {

const char* to_string(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kTable:
      return "table";
    case ArtifactKind::kFigure:
      return "figure";
    case ArtifactKind::kAppendix:
      return "appendix";
    case ArtifactKind::kAblation:
      return "ablation";
    case ArtifactKind::kExtension:
      return "extension";
  }
  return "?";
}

const char* to_string(ArtifactStatus status) {
  switch (status) {
    case ArtifactStatus::kOk:
      return "ok";
    case ArtifactStatus::kToleranceFailed:
      return "tolerance_failed";
    case ArtifactStatus::kError:
      return "error";
  }
  return "?";
}

void ArtifactResult::serialize(capsule::Io& io) {
  io.str(id);
  io.enum32(status);
  if (io.loading() && static_cast<std::uint32_t>(status) >
                          static_cast<std::uint32_t>(ArtifactStatus::kError)) {
    throw capsule::CapsuleError("artifact capsule: bad status encoding");
  }
  io.str(error);
  io.str(text);
  auto n_metrics = io.extent(metrics.size());
  metrics.resize(n_metrics);
  for (Metric& metric : metrics) {
    io.str(metric.name);
    io.f64(metric.value);
  }
  auto n_checks = io.extent(checks.size());
  checks.resize(n_checks);
  for (Check& check : checks) {
    io.str(check.name);
    io.f64(check.measured);
    io.f64(check.paper);
    io.f64(check.lo);
    io.f64(check.hi);
    io.boolean(check.pass);
    io.boolean(check.enforced);
  }
}

bool Context::quick() const { return inputs_.quick(); }

void Context::printf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list measure;
  va_copy(measure, args);
  const int needed = std::vsnprintf(nullptr, 0, format, measure);
  va_end(measure);
  if (needed > 0) {
    const std::size_t old_size = result_.text.size();
    result_.text.resize(old_size + static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(result_.text.data() + old_size,
                   static_cast<std::size_t>(needed) + 1, format, args);
    result_.text.resize(old_size + static_cast<std::size_t>(needed));
  }
  va_end(args);
}

void Context::metric(const std::string& name, double value) {
  result_.metrics.push_back({name, value});
}

bool Context::record_check(const std::string& name, double measured,
                           double paper, double lo, double hi,
                           bool enforced) {
  Check check;
  check.name = name;
  check.measured = measured;
  check.paper = paper;
  check.lo = lo;
  check.hi = hi;
  check.enforced = enforced;
  check.pass = std::isfinite(measured) && measured >= lo && measured <= hi;
  result_.checks.push_back(check);
  metric(name, measured);
  if (!check.pass && enforced &&
      result_.status == ArtifactStatus::kOk) {
    result_.status = ArtifactStatus::kToleranceFailed;
  }
  return check.pass;
}

bool Context::check(const std::string& name, double measured, double paper,
                    double lo, double hi) {
  return record_check(name, measured, paper, lo, hi, /*enforced=*/true);
}

bool Context::note(const std::string& name, double measured, double paper,
                   double lo, double hi) {
  return record_check(name, measured, paper, lo, hi, /*enforced=*/false);
}

void Context::fail(const std::string& reason) {
  result_.status = ArtifactStatus::kError;
  if (!result_.error.empty()) {
    result_.error += "; ";
  }
  result_.error += reason;
}

}  // namespace repro::artifacts
