// The artifact catalog: every paper table/figure/appendix plus the
// design ablations and §6 extensions, in paper order.
//
// Registration is explicit (no static-initializer tricks that a static
// library's linker could drop): registry.cpp calls each group's
// register_* function once, and the catalog order is the paper's order.
#pragma once

#include <string>
#include <vector>

#include "artifacts/artifact.hpp"

namespace repro::artifacts {

/// Every registered artifact, in catalog (paper) order.
[[nodiscard]] const std::vector<ArtifactDef>& catalog();

/// Lookup by id; nullptr when unknown.
[[nodiscard]] const ArtifactDef* find_artifact(const std::string& id);

/// The catalog id nearest to `id` by edit distance ("did you mean"),
/// preferring the earlier catalog entry on ties. Never nullptr while the
/// catalog is non-empty.
[[nodiscard]] const ArtifactDef* suggest_artifact(const std::string& id);

// Group registrars (one per artifacts/*.cpp registration file).
void register_tables(std::vector<ArtifactDef>& catalog);
void register_study_figures(std::vector<ArtifactDef>& catalog);
void register_transition_figures(std::vector<ArtifactDef>& catalog);
void register_model_figures(std::vector<ArtifactDef>& catalog);
void register_appendices(std::vector<ArtifactDef>& catalog);
void register_ablations(std::vector<ArtifactDef>& catalog);
void register_extensions(std::vector<ArtifactDef>& catalog);
void register_contention(std::vector<ArtifactDef>& catalog);
void register_perf(std::vector<ArtifactDef>& catalog);

}  // namespace repro::artifacts
