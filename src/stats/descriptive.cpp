#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "base/expect.hpp"

namespace repro::stats {

double mean(std::span<const double> values) {
  REPRO_EXPECT(!values.empty(), "mean of empty sample");
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

std::optional<double> variance(std::span<const double> values) {
  if (values.size() < 2) {
    return std::nullopt;
  }
  const double m = mean(values);
  double sq = 0.0;
  for (const double v : values) {
    sq += (v - m) * (v - m);
  }
  return sq / static_cast<double>(values.size() - 1);
}

std::optional<double> stddev(std::span<const double> values) {
  const std::optional<double> var = variance(values);
  if (!var) {
    return std::nullopt;
  }
  return std::sqrt(*var);
}

double quantile(std::span<const double> values, double q) {
  REPRO_EXPECT(!values.empty(), "quantile of empty sample");
  REPRO_EXPECT(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> values) {
  return quantile(values, 0.5);
}

double min_of(std::span<const double> values) {
  REPRO_EXPECT(!values.empty(), "min of empty sample");
  return *std::min_element(values.begin(), values.end());
}

double max_of(std::span<const double> values) {
  REPRO_EXPECT(!values.empty(), "max of empty sample");
  return *std::max_element(values.begin(), values.end());
}

}  // namespace repro::stats
