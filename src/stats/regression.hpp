// Polynomial least squares and the paper's median-binned model pipeline.
//
// "Second order linear models were determined to most accurately model the
// data. These models were of the form System Measure = β1·x + β2·x² + C"
// with fit quality reported as R² (§5.2). fit_polynomial solves the normal
// equations; median_by_midpoint implements the paper's binning ("the
// median of the system measure for the set of points clustered around
// their closest midpoint").
#pragma once

#include <optional>
#include <span>
#include <utility>
#include <vector>

namespace repro::stats {

struct PolyFit {
  /// coeffs[k] multiplies x^k (so coeffs[0] is the paper's C, coeffs[1]
  /// is β1, coeffs[2] is β2).
  std::vector<double> coeffs;
  double r_squared = 0.0;

  [[nodiscard]] double operator()(double x) const;
};

/// Least-squares fit of a degree-`degree` polynomial. Degenerate data —
/// fewer than degree+1 points, or a singular normal-equation matrix
/// (e.g. zero x-variance) — yields nullopt rather than NaN/Inf
/// coefficients, mirroring the stats::pearson contract: callers render
/// the absent fit as null.
[[nodiscard]] std::optional<PolyFit> fit_polynomial(std::span<const double> x,
                                                    std::span<const double> y,
                                                    int degree);

/// Cluster (x,y) points to their nearest midpoint and take the median of y
/// within each non-empty cluster. Returns (midpoint, median) pairs in
/// midpoint order.
[[nodiscard]] std::vector<std::pair<double, double>> median_by_midpoint(
    std::span<const double> x, std::span<const double> y,
    std::span<const double> midpoints);

/// The paper's full pipeline: median-bin, then fit a 2nd-order model to
/// the (midpoint, median) pairs. nullopt when fewer than three bins are
/// occupied or the 2nd-order fit itself degenerates.
[[nodiscard]] std::optional<PolyFit> fit_median_model(
    std::span<const double> x, std::span<const double> y,
    std::span<const double> midpoints);

/// Solve the square linear system A·z = b by Gaussian elimination with
/// partial pivoting (exposed for tests). A is row-major n×n. nullopt when
/// the matrix is singular (pivot below 1e-12).
[[nodiscard]] std::optional<std::vector<double>> solve_linear(
    std::vector<double> a, std::vector<double> b);

}  // namespace repro::stats
