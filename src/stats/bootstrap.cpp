#include "stats/bootstrap.hpp"

#include <algorithm>
#include <vector>

#include "base/expect.hpp"
#include "stats/descriptive.hpp"

namespace repro::stats {

ConfidenceInterval bootstrap_ci(
    std::span<const double> values,
    const std::function<double(std::span<const double>)>& statistic,
    Rng& rng, double level, std::size_t resamples) {
  REPRO_EXPECT(!values.empty(), "bootstrap needs data");
  REPRO_EXPECT(level > 0.0 && level < 1.0, "level must be in (0,1)");
  REPRO_EXPECT(resamples >= 100, "too few resamples for stable quantiles");

  ConfidenceInterval ci;
  ci.level = level;
  ci.point = statistic(values);

  std::vector<double> stats;
  stats.reserve(resamples);
  std::vector<double> resample(values.size());
  for (std::size_t r = 0; r < resamples; ++r) {
    for (double& v : resample) {
      v = values[rng.uniform(values.size())];
    }
    stats.push_back(statistic(resample));
  }
  const double alpha = (1.0 - level) / 2.0;
  ci.lo = quantile(stats, alpha);
  ci.hi = quantile(stats, 1.0 - alpha);
  return ci;
}

ConfidenceInterval bootstrap_mean_ci(std::span<const double> values,
                                     Rng& rng, double level,
                                     std::size_t resamples) {
  return bootstrap_ci(
      values, [](std::span<const double> v) { return mean(v); }, rng,
      level, resamples);
}

ConfidenceInterval bootstrap_median_ci(std::span<const double> values,
                                       Rng& rng, double level,
                                       std::size_t resamples) {
  return bootstrap_ci(
      values, [](std::span<const double> v) { return median(v); }, rng,
      level, resamples);
}

}  // namespace repro::stats
