#include "stats/bootstrap.hpp"

#include <algorithm>
#include <future>
#include <vector>

#include "base/expect.hpp"
#include "base/thread_pool.hpp"
#include "stats/descriptive.hpp"

namespace repro::stats {

namespace {

/// RNG for one replicate: an independent stream split from the base
/// seed, so replicate r draws the same values no matter which worker
/// (or how many workers) computes it.
Rng replicate_rng(std::uint64_t base_seed, std::size_t replicate) {
  return Rng(mix64(base_seed +
                   0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(
                                               replicate) +
                                           1)));
}

/// Compute replicate statistics [begin, end) into a task-local buffer.
/// Workers never write a shared array: adjacent chunks' slots would sit
/// on the same cache line and false-share; instead each task returns its
/// chunk and the caller copies them back in deterministic chunk order.
std::vector<double> run_replicates(
    std::span<const double> values,
    const std::function<double(std::span<const double>)>& statistic,
    std::uint64_t base_seed, std::size_t begin, std::size_t end) {
  std::vector<double> chunk;
  chunk.reserve(end - begin);
  std::vector<double> resample(values.size());
  for (std::size_t r = begin; r < end; ++r) {
    Rng rng = replicate_rng(base_seed, r);
    for (double& v : resample) {
      v = values[rng.uniform(values.size())];
    }
    chunk.push_back(statistic(resample));
  }
  return chunk;
}

}  // namespace

ConfidenceInterval bootstrap_ci(
    std::span<const double> values,
    const std::function<double(std::span<const double>)>& statistic,
    Rng& rng, double level, std::size_t resamples, std::uint32_t threads) {
  REPRO_EXPECT(!values.empty(), "bootstrap needs data");
  REPRO_EXPECT(level > 0.0 && level < 1.0, "level must be in (0,1)");
  REPRO_EXPECT(resamples >= 100, "too few resamples for stable quantiles");

  ConfidenceInterval ci;
  ci.level = level;
  ci.point = statistic(values);

  // One draw from the caller's stream seeds every replicate stream;
  // replicate r is a deterministic function of (base_seed, r) alone.
  const std::uint64_t base_seed = rng.next();
  std::vector<double> stats;
  stats.reserve(resamples);
  const std::size_t workers = std::min<std::size_t>(
      base::ThreadPool::resolve_workers(threads), resamples);
  if (workers <= 1) {
    stats = run_replicates(values, statistic, base_seed, 0, resamples);
  } else {
    // Finer-than-worker chunks keep the pool busy when statistic costs
    // vary; results concatenate in chunk order, which is replicate
    // order, so quantiles see the serial sequence exactly.
    base::ThreadPool pool(workers);
    const std::size_t chunks = std::min(resamples, workers * 4);
    const std::size_t per_chunk = (resamples + chunks - 1) / chunks;
    std::vector<std::future<std::vector<double>>> futures;
    futures.reserve(chunks);
    for (std::size_t begin = 0; begin < resamples; begin += per_chunk) {
      const std::size_t end = std::min(begin + per_chunk, resamples);
      futures.push_back(
          pool.submit([&values, &statistic, base_seed, begin, end] {
            return run_replicates(values, statistic, base_seed, begin, end);
          }));
    }
    for (std::future<std::vector<double>>& future : futures) {
      const std::vector<double> chunk = future.get();
      stats.insert(stats.end(), chunk.begin(), chunk.end());
    }
  }
  const double alpha = (1.0 - level) / 2.0;
  ci.lo = quantile(stats, alpha);
  ci.hi = quantile(stats, 1.0 - alpha);
  return ci;
}

ConfidenceInterval bootstrap_mean_ci(std::span<const double> values,
                                     Rng& rng, double level,
                                     std::size_t resamples,
                                     std::uint32_t threads) {
  return bootstrap_ci(
      values, [](std::span<const double> v) { return mean(v); }, rng,
      level, resamples, threads);
}

ConfidenceInterval bootstrap_median_ci(std::span<const double> values,
                                       Rng& rng, double level,
                                       std::size_t resamples,
                                       std::uint32_t threads) {
  return bootstrap_ci(
      values, [](std::span<const double> v) { return median(v); }, rng,
      level, resamples, threads);
}

}  // namespace repro::stats
