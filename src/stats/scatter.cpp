#include "stats/scatter.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "base/expect.hpp"
#include "base/text.hpp"

namespace repro::stats {

namespace {

struct Bounds {
  double lo;
  double hi;
};

Bounds resolve_bounds(double fixed_lo, double fixed_hi,
                      std::span<const double> values) {
  if (fixed_lo != fixed_hi) {
    return {fixed_lo, fixed_hi};
  }
  if (values.empty()) {
    return {0.0, 1.0};
  }
  double lo = values[0];
  double hi = values[0];
  for (const double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (lo == hi) {
    lo -= 0.5;
    hi += 0.5;
  }
  const double pad = (hi - lo) * 0.05;
  return {lo - pad, hi + pad};
}

std::string frame(const std::vector<std::string>& grid, const Bounds& xb,
                  const Bounds& yb, const ScatterOptions& options) {
  std::ostringstream os;
  if (!options.title.empty()) {
    os << options.title << '\n';
  }
  os << "  " << options.y_label << '\n';
  for (std::size_t row = 0; row < grid.size(); ++row) {
    // Y tick labels on first, middle, and last rows.
    std::string tick(10, ' ');
    if (row == 0 || row == grid.size() - 1 || row == grid.size() / 2) {
      const double frac = 1.0 - static_cast<double>(row) /
                                    static_cast<double>(grid.size() - 1);
      tick = pad_left(fixed(yb.lo + frac * (yb.hi - yb.lo), 3), 10);
    }
    os << tick << " |" << grid[row] << '\n';
  }
  os << pad_left("", 11) << '+' << bar(grid.empty() ? 0 : grid[0].size(), '-')
     << '\n';
  os << pad_left("", 12) << pad_right(fixed(xb.lo, 2), 30) << options.x_label
     << pad_left(fixed(xb.hi, 2), 30) << '\n';
  return os.str();
}

}  // namespace

std::string render_scatter(std::span<const double> x,
                           std::span<const double> y,
                           const ScatterOptions& options) {
  REPRO_EXPECT(x.size() == y.size(), "x/y size mismatch");
  REPRO_EXPECT(options.width >= 8 && options.height >= 4,
               "plot area too small");
  const Bounds xb = resolve_bounds(options.x_min, options.x_max, x);
  const Bounds yb = resolve_bounds(options.y_min, options.y_max, y);

  std::vector<std::vector<int>> counts(
      options.height, std::vector<int>(options.width, 0));
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double xf = (x[i] - xb.lo) / (xb.hi - xb.lo);
    const double yf = (y[i] - yb.lo) / (yb.hi - yb.lo);
    if (xf < 0.0 || xf > 1.0 || yf < 0.0 || yf > 1.0) {
      continue;  // Outside fixed bounds.
    }
    const auto col = std::min(options.width - 1,
                              static_cast<std::size_t>(
                                  xf * static_cast<double>(options.width)));
    const auto row_from_bottom =
        std::min(options.height - 1,
                 static_cast<std::size_t>(
                     yf * static_cast<double>(options.height)));
    ++counts[options.height - 1 - row_from_bottom][col];
  }

  std::vector<std::string> grid(options.height,
                                std::string(options.width, ' '));
  for (std::size_t r = 0; r < options.height; ++r) {
    for (std::size_t c = 0; c < options.width; ++c) {
      const int n = counts[r][c];
      if (n > 0) {
        // SAS convention: A = 1 obs, B = 2 obs, ..., Z = 26+.
        grid[r][c] = static_cast<char>('A' + std::min(n - 1, 25));
      }
    }
  }
  return frame(grid, xb, yb, options);
}

std::string render_curve(double x_min, double x_max, std::size_t points,
                         const std::function<double(double)>& f,
                         const ScatterOptions& options) {
  REPRO_EXPECT(points >= 2, "need at least two curve points");
  REPRO_EXPECT(x_max > x_min, "empty x range");
  std::vector<double> xs;
  std::vector<double> ys;
  xs.reserve(points);
  ys.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = x_min + (x_max - x_min) * static_cast<double>(i) /
                                 static_cast<double>(points - 1);
    xs.push_back(x);
    ys.push_back(f(x));
  }
  ScatterOptions curve_options = options;
  curve_options.x_min = x_min;
  curve_options.x_max = x_max;
  // Letter-scatter of the sampled curve reads fine ('A' marks).
  return render_scatter(xs, ys, curve_options);
}

}  // namespace repro::stats
