#include "stats/freq_table.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "base/expect.hpp"
#include "base/text.hpp"

namespace repro::stats {

std::size_t nearest_midpoint(double value, std::span<const double> midpoints) {
  REPRO_EXPECT(!midpoints.empty(), "need at least one midpoint");
  std::size_t best = 0;
  double best_dist = std::abs(value - midpoints[0]);
  for (std::size_t i = 1; i < midpoints.size(); ++i) {
    const double dist = std::abs(value - midpoints[i]);
    if (dist < best_dist) {
      best = i;
      best_dist = dist;
    }
  }
  return best;
}

FreqTable FreqTable::from_values(std::span<const double> values,
                                 std::span<const double> midpoints,
                                 int label_decimals) {
  REPRO_EXPECT(!midpoints.empty(), "need at least one midpoint");
  FreqTable table;
  table.rows_.resize(midpoints.size());
  for (std::size_t i = 0; i < midpoints.size(); ++i) {
    table.rows_[i].label = repro::fixed(midpoints[i], label_decimals);
  }
  for (const double v : values) {
    ++table.rows_[nearest_midpoint(v, midpoints)].freq;
  }
  table.finalize();
  return table;
}

FreqTable FreqTable::from_counts(std::span<const std::uint64_t> counts,
                                 std::span<const std::string> labels) {
  REPRO_EXPECT(counts.size() == labels.size(),
               "counts and labels must align");
  REPRO_EXPECT(!counts.empty(), "need at least one category");
  FreqTable table;
  table.rows_.resize(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    table.rows_[i].label = labels[i];
    table.rows_[i].freq = counts[i];
  }
  table.finalize();
  return table;
}

void FreqTable::finalize() {
  total_ = 0;
  for (const FreqRow& row : rows_) {
    total_ += row.freq;
  }
  std::uint64_t cum = 0;
  for (FreqRow& row : rows_) {
    cum += row.freq;
    row.cum_freq = cum;
    if (total_ > 0) {
      row.percent = 100.0 * static_cast<double>(row.freq) /
                    static_cast<double>(total_);
      row.cum_percent = 100.0 * static_cast<double>(cum) /
                        static_cast<double>(total_);
    }
  }
}

std::size_t FreqTable::median_row() const {
  REPRO_EXPECT(total_ > 0, "median of an empty table");
  const std::uint64_t half = (total_ + 1) / 2;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i].cum_freq >= half) {
      return i;
    }
  }
  return rows_.size() - 1;
}

std::string FreqTable::render(std::size_t bar_width) const {
  std::uint64_t max_freq = 0;
  std::size_t label_width = 8;
  for (const FreqRow& row : rows_) {
    max_freq = std::max(max_freq, row.freq);
    label_width = std::max(label_width, row.label.size());
  }
  const double scale =
      max_freq == 0 ? 0.0
                    : static_cast<double>(bar_width) /
                          static_cast<double>(max_freq);

  std::ostringstream os;
  os << pad_right("MIDPOINT", label_width + 2)
     << pad_right("", bar_width + 2) << pad_left("FREQ", 8)
     << pad_left("CUM.FREQ", 10) << pad_left("PERCENT", 9)
     << pad_left("CUM.PCT", 9) << '\n';
  for (const FreqRow& row : rows_) {
    const auto len = static_cast<std::size_t>(
        std::llround(static_cast<double>(row.freq) * scale));
    os << pad_right(row.label, label_width + 2) << '|'
       << pad_right(bar(len), bar_width + 1) << pad_left(
              std::to_string(row.freq), 8)
       << pad_left(std::to_string(row.cum_freq), 10)
       << pad_left(repro::fixed(row.percent, 2), 9)
       << pad_left(repro::fixed(row.cum_percent, 2), 9) << '\n';
  }
  os << "TOTAL: " << total_ << '\n';
  return os.str();
}

}  // namespace repro::stats
