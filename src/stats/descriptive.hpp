// Descriptive statistics (the SAS replacement, part 1).
#pragma once

#include <optional>
#include <span>
#include <vector>

namespace repro::stats {

[[nodiscard]] double mean(std::span<const double> values);

/// Sample variance (n-1 denominator). A sample of fewer than two values
/// has no dispersion estimate: nullopt (rendered as null in JSON), never
/// a silent 0 or NaN.
[[nodiscard]] std::optional<double> variance(std::span<const double> values);

/// sqrt(variance); nullopt under the same degenerate inputs.
[[nodiscard]] std::optional<double> stddev(std::span<const double> values);

/// Median (average of the two central order statistics for even n).
[[nodiscard]] double median(std::span<const double> values);

/// Linear-interpolated quantile, q in [0,1].
[[nodiscard]] double quantile(std::span<const double> values, double q);

[[nodiscard]] double min_of(std::span<const double> values);
[[nodiscard]] double max_of(std::span<const double> values);

}  // namespace repro::stats
