// Descriptive statistics (the SAS replacement, part 1).
#pragma once

#include <span>
#include <vector>

namespace repro::stats {

[[nodiscard]] double mean(std::span<const double> values);

/// Sample variance (n-1 denominator); 0 for fewer than two values.
[[nodiscard]] double variance(std::span<const double> values);

[[nodiscard]] double stddev(std::span<const double> values);

/// Median (average of the two central order statistics for even n).
[[nodiscard]] double median(std::span<const double> values);

/// Linear-interpolated quantile, q in [0,1].
[[nodiscard]] double quantile(std::span<const double> values, double q);

[[nodiscard]] double min_of(std::span<const double> values);
[[nodiscard]] double max_of(std::span<const double> values);

}  // namespace repro::stats
