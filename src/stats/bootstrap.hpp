// Bootstrap confidence intervals.
//
// The thesis reports point estimates (Cw = 0.3506, Pc = 7.66) without
// sampling error; with only ~65 five-minute samples behind them, the
// uncertainty is material. Percentile-bootstrap intervals quantify it:
// resample the sample set with replacement, recompute the statistic, and
// take the empirical quantiles.
//
// Replicates run in parallel: one draw from the caller's Rng seeds an
// independent per-replicate stream, so the interval is a deterministic
// function of (data, rng state, resamples) — identical for any worker
// count, including the serial path (docs/parallel_execution.md).
#pragma once

#include <functional>
#include <span>

#include "base/rng.hpp"

namespace repro::stats {

struct ConfidenceInterval {
  double point = 0.0;   ///< Statistic on the original sample.
  double lo = 0.0;      ///< Lower percentile bound.
  double hi = 0.0;      ///< Upper percentile bound.
  double level = 0.95;  ///< Nominal coverage.
};

/// Percentile bootstrap for an arbitrary statistic of a double sample.
/// `statistic` must accept any non-empty sample and be safe to invoke
/// concurrently (a pure function of its argument). `resamples` >= 100.
/// `threads`: 0 = auto (FX8_THREADS env var, else hardware
/// concurrency), 1 = serial; the result is bit-identical either way.
[[nodiscard]] ConfidenceInterval bootstrap_ci(
    std::span<const double> values,
    const std::function<double(std::span<const double>)>& statistic,
    Rng& rng, double level = 0.95, std::size_t resamples = 1000,
    std::uint32_t threads = 0);

/// Convenience: bootstrap CI of the mean.
[[nodiscard]] ConfidenceInterval bootstrap_mean_ci(
    std::span<const double> values, Rng& rng, double level = 0.95,
    std::size_t resamples = 1000, std::uint32_t threads = 0);

/// Convenience: bootstrap CI of the median.
[[nodiscard]] ConfidenceInterval bootstrap_median_ci(
    std::span<const double> values, Rng& rng, double level = 0.95,
    std::size_t resamples = 1000, std::uint32_t threads = 0);

}  // namespace repro::stats
