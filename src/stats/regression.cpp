#include "stats/regression.hpp"

#include <algorithm>
#include <cmath>

#include "base/expect.hpp"
#include "stats/descriptive.hpp"
#include "stats/freq_table.hpp"

namespace repro::stats {

double PolyFit::operator()(double x) const {
  double result = 0.0;
  double power = 1.0;
  for (const double c : coeffs) {
    result += c * power;
    power *= x;
  }
  return result;
}

std::optional<std::vector<double>> solve_linear(std::vector<double> a,
                                                std::vector<double> b) {
  const std::size_t n = b.size();
  REPRO_EXPECT(a.size() == n * n, "matrix/vector size mismatch");
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row * n + col]) > std::abs(a[pivot * n + col])) {
        pivot = row;
      }
    }
    if (std::abs(a[pivot * n + col]) <= 1e-12) {
      return std::nullopt;  // Singular (e.g. zero x-variance).
    }
    if (pivot != col) {
      for (std::size_t k = 0; k < n; ++k) {
        std::swap(a[col * n + k], a[pivot * n + k]);
      }
      std::swap(b[col], b[pivot]);
    }
    // Eliminate below.
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] / a[col * n + col];
      for (std::size_t k = col; k < n; ++k) {
        a[row * n + k] -= factor * a[col * n + k];
      }
      b[row] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> z(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t k = i + 1; k < n; ++k) {
      sum -= a[i * n + k] * z[k];
    }
    z[i] = sum / a[i * n + i];
  }
  return z;
}

std::optional<PolyFit> fit_polynomial(std::span<const double> x,
                                      std::span<const double> y, int degree) {
  REPRO_EXPECT(degree >= 0, "degree must be non-negative");
  REPRO_EXPECT(x.size() == y.size(), "x/y size mismatch");
  const auto terms = static_cast<std::size_t>(degree) + 1;
  if (x.size() < terms) {
    return std::nullopt;  // Underdetermined system.
  }

  // Normal equations: (X'X) beta = X'y with X_{ij} = x_i^j.
  std::vector<double> xtx(terms * terms, 0.0);
  std::vector<double> xty(terms, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    std::vector<double> powers(terms, 1.0);
    for (std::size_t j = 1; j < terms; ++j) {
      powers[j] = powers[j - 1] * x[i];
    }
    for (std::size_t r = 0; r < terms; ++r) {
      for (std::size_t c = 0; c < terms; ++c) {
        xtx[r * terms + c] += powers[r] * powers[c];
      }
      xty[r] += powers[r] * y[i];
    }
  }

  std::optional<std::vector<double>> coeffs =
      solve_linear(std::move(xtx), std::move(xty));
  if (!coeffs) {
    return std::nullopt;  // Collinear regressors (zero x-variance).
  }
  PolyFit fit;
  fit.coeffs = std::move(*coeffs);

  // R^2 = 1 - SSE/SST.
  const double y_mean = mean(y);
  double sse = 0.0;
  double sst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pred = fit(x[i]);
    sse += (y[i] - pred) * (y[i] - pred);
    sst += (y[i] - y_mean) * (y[i] - y_mean);
  }
  fit.r_squared = sst <= 1e-300 ? 1.0 : 1.0 - sse / sst;
  return fit;
}

std::vector<std::pair<double, double>> median_by_midpoint(
    std::span<const double> x, std::span<const double> y,
    std::span<const double> midpoints) {
  REPRO_EXPECT(x.size() == y.size(), "x/y size mismatch");
  std::vector<std::vector<double>> buckets(midpoints.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    buckets[nearest_midpoint(x[i], midpoints)].push_back(y[i]);
  }
  std::vector<std::pair<double, double>> result;
  for (std::size_t m = 0; m < midpoints.size(); ++m) {
    if (!buckets[m].empty()) {
      result.emplace_back(midpoints[m], median(buckets[m]));
    }
  }
  return result;
}

std::optional<PolyFit> fit_median_model(std::span<const double> x,
                                        std::span<const double> y,
                                        std::span<const double> midpoints) {
  const auto medians = median_by_midpoint(x, y, midpoints);
  if (medians.size() < 3) {
    return std::nullopt;  // A 2nd-order model needs three occupied bins.
  }
  std::vector<double> mx;
  std::vector<double> my;
  for (const auto& [mid, med] : medians) {
    mx.push_back(mid);
    my.push_back(med);
  }
  return fit_polynomial(mx, my, 2);
}

}  // namespace repro::stats
