// Correlation coefficients (SAS replacement, part 2).
//
// Chapter 5 reasons about which pairs of measures are related ("Little
// correlation between Missrate and Pc is seen"); Pearson's r quantifies
// that directly, and Spearman's rank variant guards against the
// nonlinearity the second-order models exist for.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

namespace repro::stats {

/// Pearson product-moment correlation. Series sizes must match (a
/// logic error). Returns nullopt when the correlation is undefined —
/// fewer than 2 points, or zero variance in either series — so a
/// degenerate (e.g. constant quick-preset) series degrades instead of
/// aborting the run.
[[nodiscard]] std::optional<double> pearson(std::span<const double> x,
                                            std::span<const double> y);

/// Spearman rank correlation (Pearson over fractional ranks); nullopt
/// under the same degeneracies as pearson.
[[nodiscard]] std::optional<double> spearman(std::span<const double> x,
                                             std::span<const double> y);

/// Render a labelled correlation matrix for several series.
struct Series {
  std::string name;
  std::vector<double> values;
};
[[nodiscard]] std::string render_correlation_matrix(
    std::span<const Series> series, bool rank = false);

}  // namespace repro::stats
