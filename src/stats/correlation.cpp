#include "stats/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "base/expect.hpp"
#include "base/text.hpp"
#include "stats/descriptive.hpp"

namespace repro::stats {

std::optional<double> pearson(std::span<const double> x,
                              std::span<const double> y) {
  REPRO_EXPECT(x.size() == y.size(), "series size mismatch");
  if (x.size() < 2) {
    return std::nullopt;
  }
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) {
    return std::nullopt;  // Constant series: r is undefined.
  }
  return sxy / std::sqrt(sxx * syy);
}

namespace {

/// Fractional ranks (ties get the average rank).
std::vector<double> ranks(std::span<const double> values) {
  std::vector<std::size_t> index(values.size());
  std::iota(index.begin(), index.end(), 0);
  std::sort(index.begin(), index.end(), [&](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });
  std::vector<double> out(values.size(), 0.0);
  std::size_t i = 0;
  while (i < index.size()) {
    std::size_t j = i;
    while (j + 1 < index.size() &&
           values[index[j + 1]] == values[index[i]]) {
      ++j;
    }
    const double avg_rank =
        (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) {
      out[index[k]] = avg_rank;
    }
    i = j + 1;
  }
  return out;
}

}  // namespace

std::optional<double> spearman(std::span<const double> x,
                               std::span<const double> y) {
  const std::vector<double> rx = ranks(x);
  const std::vector<double> ry = ranks(y);
  return pearson(rx, ry);
}

std::string render_correlation_matrix(std::span<const Series> series,
                                      bool rank) {
  REPRO_EXPECT(series.size() >= 2, "matrix needs at least two series");
  std::size_t label_width = 6;
  for (const Series& s : series) {
    label_width = std::max(label_width, s.name.size());
  }
  std::ostringstream os;
  os << pad_right(rank ? "rank-r" : "r", label_width + 2);
  for (const Series& s : series) {
    os << pad_left(s.name, 10);
  }
  os << '\n';
  for (const Series& row : series) {
    os << pad_right(row.name, label_width + 2);
    for (const Series& col : series) {
      const std::optional<double> r =
          rank ? spearman(row.values, col.values)
               : pearson(row.values, col.values);
      os << pad_left(r ? fixed(*r, 3) : "n/a", 10);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace repro::stats
