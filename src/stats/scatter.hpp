// SAS letter-scatter rendering.
//
// The paper's scatter plots (Figures 8-9, B.1-B.2, B.5-B.6) use the SAS
// convention "A = 1 obs, B = 2 obs, etc." — each character cell shows how
// many observations landed there.
#pragma once

#include <functional>
#include <span>
#include <string>

namespace repro::stats {

struct ScatterOptions {
  std::size_t width = 72;   ///< Character columns for the plot area.
  std::size_t height = 24;  ///< Character rows for the plot area.
  std::string title;
  std::string x_label = "x";
  std::string y_label = "y";
  /// Fixed axis bounds; when min == max the data range (padded) is used.
  double x_min = 0.0, x_max = 0.0;
  double y_min = 0.0, y_max = 0.0;
};

/// Render points as an ASCII letter-scatter. Empty input yields an empty
/// plot frame.
[[nodiscard]] std::string render_scatter(std::span<const double> x,
                                         std::span<const double> y,
                                         const ScatterOptions& options);

/// Render a fitted curve (sampled at `points` x positions) as a line plot
/// using 'o' marks — used for the regression-model figures (12-14, B.9-10).
[[nodiscard]] std::string render_curve(double x_min, double x_max,
                                       std::size_t points,
                                       const std::function<double(double)>& f,
                                       const ScatterOptions& options);

}  // namespace repro::stats
