// Frequency tables and SAS PROC CHART-style ASCII rendering.
//
// Every distribution figure in the paper (Figures 3-7, 10-11, A.1-A.5,
// B.3-B.4, B.7-B.8) is a SAS frequency chart: one row per midpoint with a
// bar of asterisks and FREQ / CUM.FREQ / PERCENT / CUM.PERCENT columns.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace repro::stats {

struct FreqRow {
  std::string label;       ///< Midpoint or category label.
  std::uint64_t freq = 0;
  std::uint64_t cum_freq = 0;
  double percent = 0.0;
  double cum_percent = 0.0;
};

class FreqTable {
 public:
  /// Build by clustering values to the *nearest* midpoint — the paper's
  /// binning rule for its regression medians and distributions (§5.2).
  static FreqTable from_values(std::span<const double> values,
                               std::span<const double> midpoints,
                               int label_decimals = 2);

  /// Build from pre-counted categories (e.g. records per processor count).
  static FreqTable from_counts(std::span<const std::uint64_t> counts,
                               std::span<const std::string> labels);

  [[nodiscard]] const std::vector<FreqRow>& rows() const { return rows_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Frequency-weighted median label index (rows are in bin order).
  [[nodiscard]] std::size_t median_row() const;

  /// SAS-style ASCII chart. `bar_width` bounds the longest bar.
  [[nodiscard]] std::string render(std::size_t bar_width = 60) const;

 private:
  void finalize();

  std::vector<FreqRow> rows_;
  std::uint64_t total_ = 0;
};

/// Index of the midpoint nearest to `value` (ties resolve to the lower).
[[nodiscard]] std::size_t nearest_midpoint(double value,
                                           std::span<const double> midpoints);

}  // namespace repro::stats
