#include "trace/timeline.hpp"

#include <algorithm>
#include <array>
#include <sstream>
#include <vector>

#include "base/expect.hpp"

namespace repro::trace {

std::string render_timeline(std::span<const TraceEvent> events, JobId job,
                            const TimelineOptions& options) {
  REPRO_EXPECT(options.columns >= 8, "timeline needs at least 8 columns");
  REPRO_EXPECT(options.width >= 1 && options.width <= kMaxCes,
               "width must be 1..8");

  Cycle start = 0;
  Cycle end = 0;
  bool saw_start = false;
  bool saw_end = false;
  for (const TraceEvent& event : events) {
    if (event.job != job) {
      continue;
    }
    if (event.kind == EventKind::kJobStart) {
      start = event.time;
      saw_start = true;
    } else if (event.kind == EventKind::kJobEnd) {
      end = event.time;
      saw_end = true;
    }
  }
  REPRO_EXPECT(saw_start && saw_end, "job markers missing from trace");
  REPRO_EXPECT(end > start, "job has zero duration");

  const double scale = static_cast<double>(options.columns) /
                       static_cast<double>(end - start);
  auto column = [&](Cycle t) {
    const auto c = static_cast<std::size_t>(
        static_cast<double>(t - start) * scale);
    return std::min(c, options.columns - 1);
  };

  // Rows: one per CE ('#' while executing an iteration) plus a serial row.
  std::vector<std::string> ce_rows(options.width,
                                   std::string(options.columns, ' '));
  std::string serial_row(options.columns, ' ');

  std::array<Cycle, kMaxCes> iter_start{};
  std::array<bool, kMaxCes> in_iter{};
  Cycle serial_start = 0;
  bool in_serial = false;

  auto fill = [&](std::string& row, Cycle a, Cycle b, char mark) {
    for (std::size_t c = column(a); c <= column(b); ++c) {
      row[c] = mark;
    }
  };

  for (const TraceEvent& event : events) {
    if (event.job != job) {
      continue;
    }
    switch (event.kind) {
      case EventKind::kIterationStart:
        if (event.ce < options.width) {
          iter_start[event.ce] = event.time;
          in_iter[event.ce] = true;
        }
        break;
      case EventKind::kIterationEnd:
        if (event.ce < options.width && in_iter[event.ce]) {
          fill(ce_rows[event.ce], iter_start[event.ce], event.time, '#');
          in_iter[event.ce] = false;
        }
        break;
      case EventKind::kSerialPhaseStart:
        serial_start = event.time;
        in_serial = true;
        break;
      case EventKind::kSerialPhaseEnd:
        if (in_serial) {
          fill(serial_row, serial_start, event.time, '.');
          in_serial = false;
        }
        break;
      default:
        break;
    }
  }

  std::ostringstream os;
  os << "job " << job << " timeline (" << (end - start) << " cycles, '"
     << '#' << "'=iteration, '.'=serial)\n";
  for (std::uint32_t ce = 0; ce < options.width; ++ce) {
    os << "CE" << ce << " |" << ce_rows[ce] << "|\n";
  }
  os << "ser |" << serial_row << "|\n";
  return os.str();
}

}  // namespace repro::trace
