// ASCII timeline rendering of a composite trace.
//
// Renders concurrency-over-time for a job the way an engineer would
// sketch it from a logic-analyzer screen: one row per CE, time bucketed
// into columns, '#' where the CE executes an iteration, '.' where the
// cluster is in a serial phase, ' ' where idle.
#pragma once

#include <span>
#include <string>

#include "base/types.hpp"
#include "trace/events.hpp"

namespace repro::trace {

struct TimelineOptions {
  std::size_t columns = 72;       ///< Time buckets across the page.
  std::uint32_t width = kMaxCes;  ///< CE rows.
};

/// Render the job's execution as a per-CE activity chart. Requires the
/// job's start/end markers to be present.
[[nodiscard]] std::string render_timeline(std::span<const TraceEvent> events,
                                          JobId job,
                                          const TimelineOptions& options);

}  // namespace repro::trace
