#include "trace/profile.hpp"

#include <algorithm>
#include <sstream>

#include "base/expect.hpp"
#include "base/text.hpp"

namespace repro::trace {

namespace {

/// Sweep the iteration intervals of one loop: integral of overlap over
/// time, and the last instant the overlap equalled the cluster width
/// (the start of the final drain).
struct OverlapSweep {
  double integral = 0.0;
  Cycle last_full = 0;
  bool reached_full = false;
};

OverlapSweep sweep_overlap(const std::vector<std::pair<Cycle, int>>& deltas,
                           std::uint32_t width) {
  OverlapSweep sweep;
  int overlap = 0;
  Cycle prev = deltas.empty() ? 0 : deltas.front().first;
  for (const auto& [time, delta] : deltas) {
    sweep.integral +=
        static_cast<double>(overlap) * static_cast<double>(time - prev);
    overlap += delta;
    prev = time;
    if (overlap == static_cast<int>(width)) {
      sweep.last_full = time;
      sweep.reached_full = true;
    }
  }
  return sweep;
}

}  // namespace

std::string ProgramProfile::describe() const {
  std::ostringstream os;
  os << "job " << job << ": " << duration() << " cycles, cw=" << fixed(cw, 3)
     << ", pc=" << (pc_defined ? fixed(pc, 2) : "n/a") << ", "
     << loops.size() << " loops";
  return os.str();
}

ProgramProfile profile_job(std::span<const TraceEvent> events, JobId job,
                           std::uint32_t width) {
  REPRO_EXPECT(width >= 1 && width <= kMaxCes, "width must be 1..8");
  ProgramProfile profile;
  profile.job = job;

  bool saw_start = false;
  bool saw_end = false;
  Cycle serial_start = 0;

  LoopProfile* open_loop = nullptr;
  std::vector<std::pair<Cycle, int>> deltas;
  double total_overlap_integral = 0.0;

  auto close_loop = [&](Cycle end_time) {
    REPRO_ENSURE(open_loop != nullptr, "loop end without a loop start");
    open_loop->end = end_time;
    std::sort(deltas.begin(), deltas.end(),
              [](const auto& a, const auto& b) {
                // Process ends before starts at equal times so overlap
                // never over-counts.
                return a.first != b.first ? a.first < b.first
                                          : a.second < b.second;
              });
    const OverlapSweep sweep = sweep_overlap(deltas, width);
    const Cycle duration = open_loop->duration();
    if (duration > 0) {
      open_loop->mean_overlap =
          sweep.integral / static_cast<double>(duration);
    }
    open_loop->drain_cycles = sweep.reached_full
                                  ? end_time - sweep.last_full
                                  : duration;
    total_overlap_integral += sweep.integral;
    profile.concurrent_cycles += duration;
    deltas.clear();
    open_loop = nullptr;
  };

  for (const TraceEvent& event : events) {
    if (event.job != job) {
      continue;
    }
    switch (event.kind) {
      case EventKind::kJobStart:
        profile.start = event.time;
        saw_start = true;
        break;
      case EventKind::kJobEnd:
        profile.end = event.time;
        saw_end = true;
        break;
      case EventKind::kSerialPhaseStart:
        serial_start = event.time;
        break;
      case EventKind::kSerialPhaseEnd:
        profile.serial_cycles += event.time - serial_start;
        break;
      case EventKind::kLoopStart: {
        LoopProfile loop;
        loop.phase = event.phase;
        loop.trip_count = event.arg;
        loop.start = event.time;
        loop.iterations_per_ce.assign(width, 0);
        profile.loops.push_back(loop);
        open_loop = &profile.loops.back();
        break;
      }
      case EventKind::kLoopEnd:
        close_loop(event.time);
        break;
      case EventKind::kIterationStart:
        deltas.emplace_back(event.time, +1);
        break;
      case EventKind::kIterationEnd:
        deltas.emplace_back(event.time, -1);
        if (open_loop != nullptr && event.ce < width) {
          ++open_loop->iterations_per_ce[event.ce];
        }
        break;
    }
  }
  REPRO_EXPECT(saw_start && saw_end,
               "trace does not contain the job's start/end markers");
  REPRO_EXPECT(open_loop == nullptr, "trace ends inside a loop");

  const Cycle duration = profile.duration();
  if (duration > 0) {
    profile.cw = static_cast<double>(profile.concurrent_cycles) /
                 static_cast<double>(duration);
  }
  if (profile.concurrent_cycles > 0) {
    profile.pc_defined = true;
    profile.pc = total_overlap_integral /
                 static_cast<double>(profile.concurrent_cycles);
  }
  return profile;
}

std::vector<ProgramProfile> profile_all(std::span<const TraceEvent> events,
                                        std::uint32_t width) {
  // Find jobs with both markers, in start order.
  std::vector<std::pair<Cycle, JobId>> jobs;
  std::vector<JobId> ended;
  for (const TraceEvent& event : events) {
    if (event.kind == EventKind::kJobStart) {
      jobs.emplace_back(event.time, event.job);
    } else if (event.kind == EventKind::kJobEnd) {
      ended.push_back(event.job);
    }
  }
  std::sort(jobs.begin(), jobs.end());
  std::vector<ProgramProfile> profiles;
  for (const auto& [time, job] : jobs) {
    if (std::find(ended.begin(), ended.end(), job) != ended.end()) {
      profiles.push_back(profile_job(events, job, width));
    }
  }
  return profiles;
}

}  // namespace repro::trace
