// EventTracer: a ClusterObserver that builds composite traces.
//
// Attach to a cluster with Machine::cluster().set_observer(&tracer); the
// resulting event stream is the "composite trace [that] yields
// information about the overlapping operations (concurrency) in the
// program" of §2.1. The paper notes this technique "requires specific
// code insertion in programs [and] is difficult to apply to the
// observation of a real workload" — here it serves as ground truth
// against which the sampling methodology can be validated (see
// trace_vs_sampling).
#pragma once

#include <cstdint>
#include <vector>

#include "fx8/cluster.hpp"
#include "trace/events.hpp"

namespace repro::trace {

class EventTracer final : public fx8::ClusterObserver {
 public:
  /// `capacity` bounds the retained trace (0 = unbounded). When bounded,
  /// recording stops once full (the overflow count keeps tallying).
  explicit EventTracer(std::size_t capacity = 0);

  void on_job_start(JobId job, Cycle now) override;
  void on_job_end(JobId job, Cycle now) override;
  void on_serial_phase_start(JobId job, std::uint32_t phase,
                             Cycle now) override;
  void on_serial_phase_end(JobId job, std::uint32_t phase,
                           Cycle now) override;
  void on_loop_start(JobId job, std::uint32_t phase, std::uint64_t trip,
                     Cycle now) override;
  void on_loop_end(JobId job, std::uint32_t phase, Cycle now) override;
  void on_iteration_start(JobId job, std::uint64_t iter, CeId ce,
                          Cycle now) override;
  void on_iteration_end(JobId job, std::uint64_t iter, CeId ce,
                        Cycle now) override;

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  void clear();

 private:
  void record(TraceEvent event);

  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
  std::uint32_t current_phase_ = 0;
};

}  // namespace repro::trace
