// Program-level concurrency profiles from composite traces.
//
// The paper's closing suggestion: "Future research in the measurement of
// concurrency should include evaluation of individual programs, to
// determine their behavior within the workload environment" (§6). A
// ProgramProfile is exactly that: the per-job counterparts of Cw and Pc,
// plus per-loop drain (transition) overheads, computed exactly from the
// marker trace rather than estimated by sampling.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "base/types.hpp"
#include "trace/events.hpp"

namespace repro::trace {

struct LoopProfile {
  std::uint32_t phase = 0;
  std::uint64_t trip_count = 0;
  Cycle start = 0;
  Cycle end = 0;

  /// Average number of iterations in flight while the loop ran — the
  /// per-loop analogue of Pc.
  double mean_overlap = 0.0;
  /// Cycles between the first iteration completing the final batch-drain
  /// (last dispatch wave) and loop end — the transition overhead of §4.3.
  Cycle drain_cycles = 0;
  /// Iterations executed per CE (unevenness shows scheduling skew).
  std::vector<std::uint64_t> iterations_per_ce;

  [[nodiscard]] Cycle duration() const { return end - start; }
};

struct ProgramProfile {
  JobId job = 0;
  Cycle start = 0;
  Cycle end = 0;
  /// Cycles inside serial phases / concurrent loops.
  Cycle serial_cycles = 0;
  Cycle concurrent_cycles = 0;

  /// Program-level Workload Concurrency: fraction of the job's lifetime
  /// spent inside concurrent loops.
  double cw = 0.0;
  /// Program-level Mean Concurrency Level: mean iteration overlap over
  /// the concurrent spans (undefined = 0 when no loops).
  double pc = 0.0;
  bool pc_defined = false;

  std::vector<LoopProfile> loops;

  [[nodiscard]] Cycle duration() const { return end - start; }
  [[nodiscard]] std::string describe() const;
};

/// Build the profile of one job from a composite trace. The trace must
/// contain the job's start/end markers; throws ContractViolation
/// otherwise.
[[nodiscard]] ProgramProfile profile_job(std::span<const TraceEvent> events,
                                         JobId job,
                                         std::uint32_t width = kMaxCes);

/// All jobs with complete start/end markers in the trace, in start order.
[[nodiscard]] std::vector<ProgramProfile> profile_all(
    std::span<const TraceEvent> events, std::uint32_t width = kMaxCes);

}  // namespace repro::trace
