#include "trace/tracer.hpp"

namespace repro::trace {

std::string_view name(EventKind kind) {
  switch (kind) {
    case EventKind::kJobStart:
      return "job-start";
    case EventKind::kJobEnd:
      return "job-end";
    case EventKind::kSerialPhaseStart:
      return "serial-start";
    case EventKind::kSerialPhaseEnd:
      return "serial-end";
    case EventKind::kLoopStart:
      return "loop-start";
    case EventKind::kLoopEnd:
      return "loop-end";
    case EventKind::kIterationStart:
      return "iter-start";
    case EventKind::kIterationEnd:
      return "iter-end";
  }
  return "?";
}

EventTracer::EventTracer(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ > 0) {
    events_.reserve(capacity_);
  }
}

void EventTracer::record(TraceEvent event) {
  if (capacity_ > 0 && events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(event);
}

void EventTracer::clear() {
  events_.clear();
  dropped_ = 0;
}

void EventTracer::on_job_start(JobId job, Cycle now) {
  record({now, EventKind::kJobStart, job, 0, 0, 0});
}

void EventTracer::on_job_end(JobId job, Cycle now) {
  record({now, EventKind::kJobEnd, job, 0, 0, 0});
}

void EventTracer::on_serial_phase_start(JobId job, std::uint32_t phase,
                                        Cycle now) {
  current_phase_ = phase;
  record({now, EventKind::kSerialPhaseStart, job, phase, 0, 0});
}

void EventTracer::on_serial_phase_end(JobId job, std::uint32_t phase,
                                      Cycle now) {
  record({now, EventKind::kSerialPhaseEnd, job, phase, 0, 0});
}

void EventTracer::on_loop_start(JobId job, std::uint32_t phase,
                                std::uint64_t trip, Cycle now) {
  current_phase_ = phase;
  record({now, EventKind::kLoopStart, job, phase, 0, trip});
}

void EventTracer::on_loop_end(JobId job, std::uint32_t phase, Cycle now) {
  record({now, EventKind::kLoopEnd, job, phase, 0, 0});
}

void EventTracer::on_iteration_start(JobId job, std::uint64_t iter, CeId ce,
                                     Cycle now) {
  record({now, EventKind::kIterationStart, job, current_phase_, ce, iter});
}

void EventTracer::on_iteration_end(JobId job, std::uint64_t iter, CeId ce,
                                   Cycle now) {
  record({now, EventKind::kIterationEnd, job, current_phase_, ce, iter});
}

}  // namespace repro::trace
