// Time-stamped execution events.
//
// The paper contrasts its non-intrusive sampling with the event-marker
// tracing of its related work: "hardware monitoring and special event
// marker instructions embedded in programs to acquire execution traces.
// Captured events on different processors are time-stamped, and the
// composite trace yields information about the overlapping operations
// (concurrency) in the program" (§2.1, refs [16][17]). It also names
// program-level evaluation as future research (§6).
//
// This module provides that second methodology: the cluster emits marker
// events, and trace/profile.hpp derives exact per-program concurrency —
// the ground truth the sampling methodology estimates.
#pragma once

#include <cstdint>
#include <string_view>

#include "base/types.hpp"

namespace repro::trace {

enum class EventKind : std::uint8_t {
  kJobStart = 0,
  kJobEnd,
  kSerialPhaseStart,
  kSerialPhaseEnd,
  kLoopStart,       ///< arg = trip count.
  kLoopEnd,
  kIterationStart,  ///< arg = iteration index, ce = executing CE.
  kIterationEnd,    ///< arg = iteration index, ce = executing CE.
};
inline constexpr std::size_t kNumEventKinds = 8;

[[nodiscard]] std::string_view name(EventKind kind);

struct TraceEvent {
  Cycle time = 0;
  EventKind kind = EventKind::kJobStart;
  JobId job = 0;
  /// Phase index within the program (phases are serial/loop sections).
  std::uint32_t phase = 0;
  /// CE for iteration events; 0 otherwise.
  CeId ce = 0;
  /// Kind-specific argument (trip count, iteration index).
  std::uint64_t arg = 0;
};

}  // namespace repro::trace
