// Analytical throughput model for the coarse-grained-locking scenarios.
//
// Under coarse-grained locking the round time of N contenders decomposes
// into the parallel section, which all N execute concurrently, plus N
// serialized critical sections: T = D_par + N * (D_crit + handoff). The
// asymptotic throughput of a coarse-grained structure is therefore set
// by the critical path alone and degrades as 1/N — the closed form this
// module cross-checks against the simulator (the predictor_validation
// artifact), following the analytical-vs-measured methodology of
// Aksenov et al. for lock-based concurrency levels.
//
// The model prices the exact kernels the workload executes (the body
// factories in workload/contention.hpp are shared), using the CE
// interpreter's deterministic all-hit step cost. Cold-start cache misses
// are not modelled; measurements cancel them by differencing two round
// counts (see predictor_validation).
#pragma once

#include <cstdint>

#include "isa/kernel.hpp"
#include "workload/contention.hpp"

namespace repro::model {

/// One point of the validation sweep.
struct LockScenario {
  workload::LockJobParams params;

  [[nodiscard]] const char* lock_name() const {
    return workload::to_string(params.lock);
  }
};

/// Predicted steady-state cost of one lock round (parallel section +
/// every contender's critical section), with uncertainty bounds from
/// the parts of the machine the closed form does not model exactly
/// (dispatch ramp overlap, CCB handoff latency, phase-turn cost).
struct LockPrediction {
  /// Point estimate, cycles per round.
  double round_cycles = 0.0;
  /// Bounds: [lo, hi] brackets the simulator's steady-state round time.
  double lo_cycles = 0.0;
  double hi_cycles = 0.0;
  /// Lock acquisitions per 1000 cycles (contenders / round_cycles).
  double throughput_per_kcycle = 0.0;

  /// True when the bounds pin the round time within `band` (relative
  /// half-width), i.e. simulation would not tell us anything the model
  /// does not already resolve — the pruning criterion.
  [[nodiscard]] bool resolves_within(double band) const {
    return round_cycles > 0.0 &&
           (hi_cycles - lo_cycles) / (2.0 * round_cycles) <= band;
  }
};

/// Deterministic all-hit duration of one kernel instance in CE cycles:
/// steps * (compute + loads + stores) plus the completion-detection
/// cycle. Valid only for jitter-free scalar bodies (the contention
/// family); REPRO_EXPECTs otherwise.
[[nodiscard]] double kernel_duration_cycles(const isa::KernelSpec& body);

/// Closed-form round-time prediction for a lock scenario.
[[nodiscard]] LockPrediction predict_lock_round(
    const workload::LockJobParams& params);

}  // namespace repro::model
