#include "model/lock_model.hpp"

#include "base/expect.hpp"

namespace repro::model {

namespace {

// Cluster control costs the closed form cannot collapse to zero:
//
//  * Handoff: a critical-section dependence release is serviced in the
//    same control scan that reaps the predecessor's completion, so the
//    successor starts between 0 and a few cycles after the release.
//  * Phase turn: all_complete -> end_loop advances the phase the same
//    cycle; the next phase's first dispatch grant lands on a following
//    scan.
//
// The point estimates are the typical-case values observed from the
// interpreter; the lo/hi spreads bracket the scheduling variance.
constexpr double kHandoff = 1.0;
constexpr double kHandoffLo = 0.0;
constexpr double kHandoffHi = 3.0;
constexpr double kPhaseTurn = 2.0;
constexpr double kPhaseTurnLo = 0.0;
constexpr double kPhaseTurnHi = 4.0;

}  // namespace

double kernel_duration_cycles(const isa::KernelSpec& body) {
  REPRO_EXPECT(body.compute_jitter == 0,
               "lock model prices only jitter-free bodies");
  REPRO_EXPECT(body.vector_fraction == 0.0,
               "lock model prices only scalar bodies");
  // Step setup is combinational; every all-hit access costs one cycle,
  // and instance completion is detected one cycle after the last step.
  const double per_step = static_cast<double>(
      body.compute_cycles + body.loads_per_step + body.stores_per_step);
  return static_cast<double>(body.steps) * per_step + 1.0;
}

LockPrediction predict_lock_round(const workload::LockJobParams& params) {
  const auto n = static_cast<double>(params.contenders);
  const double d_par =
      kernel_duration_cycles(workload::lock_parallel_body(params));
  const double d_crit =
      kernel_duration_cycles(workload::lock_critical_body(params));

  // Parallel section: one CCB dispatch grant per cycle ramps the N
  // contenders in, so the last finishes (N-1) + D_par after the phase
  // opens. Critical section: iteration 0 dispatches immediately, every
  // successor starts `handoff` after its predecessor completes, so the
  // N critical sections serialize end to end — the Aksenov coarse-
  // grained bound T = D_par + N * (D_crit + handoff).
  const auto round = [&](double handoff, double turn, double ramp) {
    return ramp + d_par + turn + n * (d_crit + handoff) + turn;
  };
  LockPrediction out;
  out.round_cycles = round(kHandoff, kPhaseTurn, n - 1.0);
  out.lo_cycles = round(kHandoffLo, kPhaseTurnLo, 0.0);
  out.hi_cycles = round(kHandoffHi, kPhaseTurnHi, n - 1.0);
  out.throughput_per_kcycle = 1000.0 * n / out.round_cycles;
  return out;
}

}  // namespace repro::model
