#include "os/vm.hpp"

#include <algorithm>
#include <vector>

#include "base/expect.hpp"
#include "base/rng.hpp"

namespace repro::os {

VirtualMemory::VirtualMemory(const VmConfig& config, KernelCounters& counters)
    : config_(config), counters_(counters),
      frames_(config.physical_bytes) {
  REPRO_EXPECT(config.segments > 0 && config.pages_per_segment > 0,
               "address space must be non-empty");
  REPRO_EXPECT(config.system_fault_fraction >= 0.0 &&
                   config.system_fault_fraction <= 1.0,
               "system fault fraction must be a probability");
}

void VirtualMemory::unmap(JobPages& pages, Addr page) {
  drop_memo();
  const auto it = pages.resident.find(page);
  if (it == pages.resident.end()) {
    return;
  }
  frames_.free(it->second);
  pages.resident.erase(it);
  counters_.increment(KernelCounter::kPagesEvicted);
}

bool VirtualMemory::reclaim_one() {
  while (!global_fifo_.empty()) {
    const auto [job, page] = global_fifo_.front();
    global_fifo_.pop_front();
    const auto job_it = jobs_.find(job);
    if (job_it == jobs_.end()) {
      continue;  // Job released; entry stale.
    }
    if (!job_it->second.resident.contains(page)) {
      continue;  // Evicted earlier; entry stale.
    }
    unmap(job_it->second, page);
    ++stats_.global_reclaims;
    return true;
  }
  return false;
}

Cycle VirtualMemory::touch(JobId job, CeId ce, Addr addr,
                           std::uint32_t /*rig*/) {
  ++stats_.translations;
  const Addr page = addr / kPageBytes;
  // Memo hit: this exact (job, page) resolved resident for this CE
  // recently and no unmap/release has happened since. Same page means the
  // bounds check below already passed for it, so the early return is
  // behaviour-neutral.
  const std::size_t slot = page & (kMemoSlots - 1);
  if (memo_valid_[ce][slot] && memo_page_[ce][slot] == page &&
      memo_job_[ce][slot] == job) {
    return 0;
  }
  const Addr limit =
      config_.segments * config_.pages_per_segment * kPageBytes;
  REPRO_EXPECT(addr < limit, "virtual address beyond the segmented space");

  JobPages& pages = jobs_[job];
  if (pages.resident.contains(page)) {
    remember(ce, job, page);
    return 0;
  }

  // Page fault: find a frame (reclaiming under exhaustion), map, account.
  std::optional<mem::FrameId> frame = frames_.allocate();
  while (!frame) {
    REPRO_ENSURE(reclaim_one(),
                 "physical memory exhausted with nothing reclaimable");
    frame = frames_.allocate();
  }
  pages.resident.emplace(page, *frame);
  pages.fifo.push_back(page);
  global_fifo_.emplace_back(job, page);
  ++stats_.faults;
  counters_.increment(KernelCounter::kPagesMapped);

  // Deterministically classify user vs system mode from the fault site.
  const bool system_mode =
      static_cast<double>(mix64(page ^ (job << 20) ^ ce) >> 11) * 0x1.0p-53 <
      config_.system_fault_fraction;
  counters_.increment(system_mode ? KernelCounter::kCePageFaultsSystem
                                  : KernelCounter::kCePageFaultsUser);

  if (config_.resident_limit_pages > 0 &&
      pages.resident.size() > config_.resident_limit_pages) {
    // Per-job FIFO cap: skip stale queue entries.
    while (!pages.fifo.empty()) {
      const Addr victim = pages.fifo.front();
      pages.fifo.pop_front();
      if (pages.resident.contains(victim)) {
        unmap(pages, victim);
        ++stats_.evictions;
        break;
      }
    }
  }
  // The freshly mapped page survives any cap eviction above (FIFO evicts
  // the oldest; with a positive cap that is never the page just pushed —
  // and the eviction's unmap() has already wiped the memos by this point).
  remember(ce, job, page);
  return config_.fault_service_cycles;
}

void VirtualMemory::release_job(JobId job) {
  drop_memo();
  const auto it = jobs_.find(job);
  if (it == jobs_.end()) {
    return;
  }
  for (const auto& [page, frame] : it->second.resident) {
    frames_.free(frame);
  }
  jobs_.erase(it);
}

std::uint64_t VirtualMemory::resident_pages(JobId job) const {
  const auto it = jobs_.find(job);
  return it == jobs_.end() ? 0 : it->second.resident.size();
}

void VirtualMemory::serialize(capsule::Io& io) {
  // Page tables. The unordered_maps are only ever iterated in
  // release_job's frame frees (order-independent), so serializing them in
  // sorted key order is behaviour-neutral and makes save/digest canonical.
  const std::uint64_t job_count = io.extent(jobs_.size());
  if (io.loading()) {
    jobs_.clear();
    for (std::uint64_t j = 0; j < job_count; ++j) {
      JobId job = 0;
      io.u64(job);
      JobPages& pages = jobs_[job];
      const std::uint64_t resident = io.extent(0);
      for (std::uint64_t p = 0; p < resident; ++p) {
        Addr page = 0;
        mem::FrameId frame = 0;
        io.u64(page);
        io.u64(frame);
        pages.resident.emplace(page, frame);
      }
      const std::uint64_t fifo_depth = io.extent(0);
      pages.fifo.assign(static_cast<std::size_t>(fifo_depth), 0);
      for (Addr& page : pages.fifo) {
        io.u64(page);
      }
    }
  } else {
    std::vector<JobId> job_ids;
    job_ids.reserve(jobs_.size());
    for (const auto& [job, pages] : jobs_) {
      job_ids.push_back(job);
    }
    std::sort(job_ids.begin(), job_ids.end());
    for (JobId job : job_ids) {
      io.u64(job);
      JobPages& pages = jobs_[job];
      std::vector<Addr> resident_pages_sorted;
      resident_pages_sorted.reserve(pages.resident.size());
      for (const auto& [page, frame] : pages.resident) {
        resident_pages_sorted.push_back(page);
      }
      std::sort(resident_pages_sorted.begin(), resident_pages_sorted.end());
      std::uint64_t resident = io.extent(resident_pages_sorted.size());
      (void)resident;
      for (Addr page : resident_pages_sorted) {
        io.u64(page);
        io.u64(pages.resident.at(page));
      }
      std::uint64_t fifo_depth = io.extent(pages.fifo.size());
      (void)fifo_depth;
      for (Addr& page : pages.fifo) {
        io.u64(page);
      }
    }
  }

  // Global reclaim FIFO.
  const std::uint64_t global_depth = io.extent(global_fifo_.size());
  if (io.loading()) {
    global_fifo_.assign(static_cast<std::size_t>(global_depth), {0, 0});
  }
  for (auto& [job, page] : global_fifo_) {
    io.u64(job);
    io.u64(page);
  }

  // VM-side translation memos (one row per lane — kMaxCes by default,
  // more on wide machines), the Mmu base's memos, stats, frame pool.
  for (CeId ce = 0; ce < memo_job_.size(); ++ce) {
    for (std::size_t slot = 0; slot < kMemoSlots; ++slot) {
      io.u64(memo_job_[ce][slot]);
      io.u64(memo_page_[ce][slot]);
      io.boolean(memo_valid_[ce][slot]);
    }
  }
  serialize_translation_state(io);
  io.u64(stats_.faults);
  io.u64(stats_.evictions);
  io.u64(stats_.global_reclaims);
  io.u64(stats_.translations);
  frames_.serialize(io);
}

}  // namespace repro::os
