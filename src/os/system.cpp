#include "os/system.hpp"

#include <algorithm>

namespace repro::os {

System::System(const SystemConfig& config) {
  vm_ = std::make_unique<VirtualMemory>(config.vm, counters_);
  machine_ = std::make_unique<fx8::Machine>(config.machine, *vm_);
  scheduler_ = std::make_unique<Scheduler>(*machine_, *vm_, counters_,
                                           config.scheduling);
}

void System::tick() {
  scheduler_->tick(machine_->now());
  machine_->tick();
}

Cycle System::quiet_horizon() const {
  const Cycle sched = scheduler_->quiet_horizon();
  if (sched == 0) {
    return 0;
  }
  return std::min(sched, machine_->quiet_horizon());
}

void System::skip(Cycle cycles) {
  // The scheduler and kernel counters are event-driven (no per-cycle
  // state), so skipping the quiet stretch is entirely a machine affair.
  machine_->skip(cycles);
}

void System::run(Cycle cycles) {
  Scheduler& scheduler = *scheduler_;
  fx8::Machine& machine = *machine_;
  for (Cycle i = 0; i < cycles; ++i) {
    scheduler.tick(machine.now());
    machine.tick();
  }
}

}  // namespace repro::os
