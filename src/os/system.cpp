#include "os/system.hpp"

#include <algorithm>
#include <utility>

namespace repro::os {

System::System(const SystemConfig& config) : config_(config) {
  vm_ = std::make_unique<VirtualMemory>(config.vm, counters_);
  machine_ = std::make_unique<fx8::Machine>(config.machine, *vm_);
  scheduler_ = std::make_unique<Scheduler>(*machine_, *vm_, counters_,
                                           config.scheduling);
}

void System::tick() {
  scheduler_->tick(machine_->now());
  machine_->tick();
}

Cycle System::quiet_horizon() const {
  const Cycle sched = scheduler_->quiet_horizon();
  if (sched == 0) {
    return 0;
  }
  return std::min(sched, machine_->quiet_horizon());
}

void System::skip(Cycle cycles) {
  // The scheduler and kernel counters are event-driven (no per-cycle
  // state), so skipping the quiet stretch is entirely a machine affair.
  machine_->skip(cycles);
}

void System::run(Cycle cycles) {
  Scheduler& scheduler = *scheduler_;
  fx8::Machine& machine = *machine_;
  for (Cycle i = 0; i < cycles; ++i) {
    scheduler.tick(machine.now());
    machine.tick();
  }
}

void System::serialize(capsule::Io& io) {
  counters_.serialize(io);
  vm_->serialize(io);
  machine_->serialize(io);
  scheduler_->serialize(io);  // Last: its load pass rebinds the cluster.
}

std::uint64_t System::state_digest() {
  capsule::Io io = capsule::Io::digester();
  serialize(io);
  return io.digest();
}

void serialize_config(capsule::Io& io, SystemConfig& c) {
  io.u64(c.machine.memory.capacity_bytes);
  io.u32(c.machine.memory.interleave);
  io.u32(c.machine.memory.bank_busy_cycles);
  io.u32(c.machine.membus.bus_count);
  io.u32(c.machine.membus.transfer_cycles);
  io.u32(c.machine.membus.invalidate_cycles);
  io.u64(c.machine.shared_cache.total_bytes);
  io.u32(c.machine.shared_cache.banks);
  io.u32(c.machine.shared_cache.modules);
  io.u32(c.machine.shared_cache.ways);
  io.u32(c.machine.shared_cache.max_ces);
  io.u32(c.machine.cluster.n_ces);
  io.enum32(c.machine.cluster.policy);
  io.enum32(c.machine.cluster.dispatch);
  io.u64(c.machine.cluster.icache_bytes);
  io.u32(c.machine.cluster.detached_ces);
  io.f64(c.machine.ip.duty);
  io.u32(c.machine.ip.access_interval);
  io.f64(c.machine.ip.write_fraction);
  io.u64(c.machine.ip.working_set_bytes);
  io.u32(c.machine.ip.mean_burst_cycles);
  io.f64(c.machine.ip.jump_prob);
  io.u32(c.machine.n_ips);
  io.u64(c.machine.seed);
  io.u32(c.machine.topology.n_ces);
  io.u32(c.machine.topology.n_clusters);
  io.u32(c.machine.topology.cache_banks);
  io.u32(c.machine.topology.mem_buses);
  io.u64(c.vm.segments);
  io.u64(c.vm.pages_per_segment);
  io.u64(c.vm.fault_service_cycles);
  io.f64(c.vm.system_fault_fraction);
  io.u64(c.vm.resident_limit_pages);
  io.u64(c.vm.physical_bytes);
  io.enum32(c.scheduling);
}

std::uint64_t config_fingerprint(const SystemConfig& config) {
  // Walk a mutable copy of the config through a digester: structure is
  // what the state walk assumes, so structure is what the capsule pins.
  capsule::Io io = capsule::Io::digester();
  SystemConfig c = config;
  serialize_config(io, c);
  return io.digest();
}

std::uint64_t System::config_fingerprint() const {
  return os::config_fingerprint(config_);
}

std::vector<std::uint8_t> System::save_capsule() {
  capsule::Io io = capsule::Io::saver();
  std::uint64_t fingerprint = config_fingerprint();
  io.u64(fingerprint);
  serialize(io);
  return capsule::seal(io.bytes());
}

void System::load_capsule(const std::vector<std::uint8_t>& sealed) {
  capsule::Io io = capsule::Io::loader(capsule::unseal(sealed));
  std::uint64_t fingerprint = 0;
  io.u64(fingerprint);
  if (fingerprint != config_fingerprint()) {
    throw capsule::CapsuleError(
        "capsule: config fingerprint mismatch (capsule was saved from a "
        "system with a different configuration)");
  }
  serialize(io);
  if (!io.exhausted()) {
    throw capsule::CapsuleError("capsule: trailing bytes after state walk");
  }
}

}  // namespace repro::os
