#include "os/system.hpp"

namespace repro::os {

System::System(const SystemConfig& config) {
  vm_ = std::make_unique<VirtualMemory>(config.vm, counters_);
  machine_ = std::make_unique<fx8::Machine>(config.machine, *vm_);
  scheduler_ = std::make_unique<Scheduler>(*machine_, *vm_, counters_,
                                           config.scheduling);
}

void System::tick() {
  scheduler_->tick(machine_->now());
  machine_->tick();
}

void System::run(Cycle cycles) {
  Scheduler& scheduler = *scheduler_;
  fx8::Machine& machine = *machine_;
  for (Cycle i = 0; i < cycles; ++i) {
    scheduler.tick(machine.now());
    machine.tick();
  }
}

}  // namespace repro::os
