// Cluster job scheduler.
//
// A single FIFO run queue feeds the Computational Cluster: the next job is
// loaded as soon as the cluster drains, its pages are released and the
// kernel counters bumped when it finishes. (Concentrix timesliced; our
// jobs are short relative to the 5-minute sampling interval, so
// run-to-completion produces the same sampled mixture with less
// machinery — see DESIGN.md.)
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "base/types.hpp"
#include "fx8/machine.hpp"
#include "os/job.hpp"
#include "os/kernel_counters.hpp"
#include "os/vm.hpp"

namespace repro::os {

struct SchedulerStats {
  std::uint64_t jobs_completed = 0;
  std::uint64_t cluster_jobs_completed = 0;
  std::uint64_t serial_jobs_completed = 0;
  std::uint64_t total_wait_cycles = 0;  ///< Queue time across jobs.
};

/// Run-queue discipline. The paper's closing chapter flags "the
/// relationship of concurrency and software-level parameters (such as
/// those related to job scheduling)" as future work (§6); the
/// non-FIFO policies let that experiment run (scheduling_policy).
enum class SchedulingPolicy : std::uint8_t {
  kFifo,             ///< Arrival order (the baseline everywhere else).
  kConcurrentFirst,  ///< Cluster (concurrent) jobs preempt queue order.
  kSerialFirst,      ///< Detached serial jobs preempt queue order.
};

class Scheduler {
 public:
  Scheduler(fx8::Machine& machine, VirtualMemory& vm,
            KernelCounters& counters,
            SchedulingPolicy policy = SchedulingPolicy::kFifo);

  /// Queue a job for execution.
  void submit(Job job);

  /// Reap a finished job / start the next queued one. Call once per cycle
  /// before the machine ticks. Serial jobs prefer free detached CEs when
  /// the machine has them (ClusterConfig::detached_ces).
  void tick(Cycle now);

  /// True when nothing is running and nothing is queued.
  [[nodiscard]] bool idle() const;

  /// Event-horizon fast-forward: 0 when the next tick would reap or
  /// start a job, kHorizonNever otherwise (the scheduler only reacts to
  /// cluster state, whose changes the cluster horizon already bounds).
  /// The scheduler keeps no per-cycle counters, so there is no skip().
  [[nodiscard]] Cycle quiet_horizon() const;

  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  /// True while any cluster has a job loaded.
  [[nodiscard]] bool job_running() const {
    for (const std::optional<Job>& job : running_) {
      if (job) {
        return true;
      }
    }
    return false;
  }
  [[nodiscard]] const SchedulerStats& stats() const { return stats_; }
  [[nodiscard]] SchedulingPolicy policy() const { return policy_; }

  /// Capsule walk: run queue, the running jobs, and stats. Must run
  /// *after* the machine's walk — on load it rebinds the cluster's
  /// program pointers to the freshly deserialized jobs (the cluster
  /// flags which slots need it; see Cluster::serialize).
  void serialize(capsule::Io& io);

 private:
  /// Pop the next job per the policy.
  [[nodiscard]] Job pop_next();

  /// Detached CEs each cluster contributes (identical clusters).
  [[nodiscard]] std::uint32_t detached_per_cluster() const {
    return machine_.cluster().detached_count();
  }

  fx8::Machine& machine_;
  VirtualMemory& vm_;
  KernelCounters& counters_;
  SchedulingPolicy policy_;
  std::deque<Job> queue_;
  /// One running cluster job per cluster (index = cluster index). The
  /// single FIFO queue feeds every cluster; cluster 0 fills first.
  std::vector<std::optional<Job>> running_;
  /// Serial jobs running on detached CEs, flattened cluster-major:
  /// global slot = cluster * detached_per_cluster() + local slot.
  std::vector<std::optional<Job>> detached_running_;
  SchedulerStats stats_;
};

}  // namespace repro::os
