// Concentrix-style kernel event counters.
//
// "The operating system logs counts continuously for a variety of memory
// management, scheduling, and interrupt variables" (§3.3). The study's
// software instrumentation simply read those counters; this table is the
// counterpart the software sampler (src/instr) reads. Counters only ever
// increase; samplers take deltas between snapshots.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "base/capsule.hpp"

namespace repro::os {

enum class KernelCounter : std::uint8_t {
  kCePageFaultsUser = 0,   ///< User-mode page faults taken by CEs.
  kCePageFaultsSystem,     ///< System-mode page faults taken by CEs.
  kContextSwitches,        ///< Cluster job switches.
  kJobsCompleted,
  kJobsSubmitted,
  kPagesMapped,
  kPagesEvicted,
};
inline constexpr std::size_t kNumKernelCounters = 7;

[[nodiscard]] std::string_view name(KernelCounter counter);

class KernelCounters {
 public:
  void increment(KernelCounter counter, std::uint64_t by = 1) {
    values_[static_cast<std::size_t>(counter)] += by;
  }

  [[nodiscard]] std::uint64_t read(KernelCounter counter) const {
    return values_[static_cast<std::size_t>(counter)];
  }

  /// Total CE page faults (user + system), the paper's Page Fault Rate
  /// numerator (§5).
  [[nodiscard]] std::uint64_t ce_page_faults() const {
    return read(KernelCounter::kCePageFaultsUser) +
           read(KernelCounter::kCePageFaultsSystem);
  }

  [[nodiscard]] std::array<std::uint64_t, kNumKernelCounters> snapshot()
      const {
    return values_;
  }

  /// Capsule walk: the whole counter table.
  void serialize(capsule::Io& io) {
    for (std::uint64_t& value : values_) {
      io.u64(value);
    }
  }

 private:
  std::array<std::uint64_t, kNumKernelCounters> values_{};
};

}  // namespace repro::os
