// System facade: the machine plus its operating system.
//
// This is the integration point the instrumentation layer attaches to: it
// owns the FX/8 model, the virtual-memory/fault machinery, the kernel
// counters, and the scheduler, and advances them in the right order each
// cycle.
#pragma once

#include <memory>

#include "base/types.hpp"
#include "fx8/machine.hpp"
#include "os/kernel_counters.hpp"
#include "os/scheduler.hpp"
#include "os/vm.hpp"

namespace repro::os {

struct SystemConfig {
  fx8::MachineConfig machine;
  VmConfig vm;
  SchedulingPolicy scheduling = SchedulingPolicy::kFifo;
};

class System {
 public:
  explicit System(const SystemConfig& config);

  /// Advance the whole system one cycle (scheduler, then hardware).
  void tick();
  void run(Cycle cycles);

  // --- Event-horizon fast-forward -------------------------------------
  /// Minimum quiet horizon of the scheduler and the machine: the number
  /// of cycles the whole system is guaranteed to repeat its current
  /// behaviour (docs/parallel_execution.md). 0 = must tick naively.
  [[nodiscard]] Cycle quiet_horizon() const;
  /// Bulk-advance `cycles` quiet cycles; bit-identical to run(cycles).
  /// Requires cycles <= quiet_horizon().
  void skip(Cycle cycles);

  [[nodiscard]] Cycle now() const { return machine_->now(); }

  [[nodiscard]] fx8::Machine& machine() { return *machine_; }
  [[nodiscard]] const fx8::Machine& machine() const { return *machine_; }
  [[nodiscard]] Scheduler& scheduler() { return *scheduler_; }
  [[nodiscard]] const Scheduler& scheduler() const { return *scheduler_; }
  [[nodiscard]] KernelCounters& counters() { return counters_; }
  [[nodiscard]] const KernelCounters& counters() const { return counters_; }
  [[nodiscard]] VirtualMemory& vm() { return *vm_; }

 private:
  KernelCounters counters_;
  std::unique_ptr<VirtualMemory> vm_;
  std::unique_ptr<fx8::Machine> machine_;
  std::unique_ptr<Scheduler> scheduler_;
};

}  // namespace repro::os
