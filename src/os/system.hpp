// System facade: the machine plus its operating system.
//
// This is the integration point the instrumentation layer attaches to: it
// owns the FX/8 model, the virtual-memory/fault machinery, the kernel
// counters, and the scheduler, and advances them in the right order each
// cycle.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "base/capsule.hpp"
#include "base/types.hpp"
#include "fx8/machine.hpp"
#include "os/kernel_counters.hpp"
#include "os/scheduler.hpp"
#include "os/vm.hpp"

namespace repro::os {

struct SystemConfig {
  fx8::MachineConfig machine;
  VmConfig vm;
  SchedulingPolicy scheduling = SchedulingPolicy::kFifo;
};

/// Canonical walk over every structural field of a SystemConfig. This is
/// the byte stream behind System::config_fingerprint() and the result
/// cache's key derivation (src/artifacts/result_store.hpp): two configs
/// hash equal iff every field matches.
void serialize_config(capsule::Io& io, SystemConfig& config);

/// 64-bit FNV-1a digest of serialize_config's walk, without needing a
/// constructed System.
[[nodiscard]] std::uint64_t config_fingerprint(const SystemConfig& config);

class System {
 public:
  explicit System(const SystemConfig& config);

  /// Advance the whole system one cycle (scheduler, then hardware).
  void tick();
  void run(Cycle cycles);

  // --- Event-horizon fast-forward -------------------------------------
  /// Minimum quiet horizon of the scheduler and the machine: the number
  /// of cycles the whole system is guaranteed to repeat its current
  /// behaviour (docs/parallel_execution.md). 0 = must tick naively.
  [[nodiscard]] Cycle quiet_horizon() const;
  /// Bulk-advance `cycles` quiet cycles; bit-identical to run(cycles).
  /// Requires cycles <= quiet_horizon().
  void skip(Cycle cycles);

  [[nodiscard]] Cycle now() const { return machine_->now(); }

  [[nodiscard]] fx8::Machine& machine() { return *machine_; }
  [[nodiscard]] const fx8::Machine& machine() const { return *machine_; }
  [[nodiscard]] Scheduler& scheduler() { return *scheduler_; }
  [[nodiscard]] const Scheduler& scheduler() const { return *scheduler_; }
  [[nodiscard]] KernelCounters& counters() { return counters_; }
  [[nodiscard]] const KernelCounters& counters() const { return counters_; }
  [[nodiscard]] VirtualMemory& vm() { return *vm_; }
  [[nodiscard]] const SystemConfig& config() const { return config_; }

  // --- State capsules --------------------------------------------------
  /// One walk over the entire deterministic state, in dependency order:
  /// counters, VM, machine, then the scheduler (whose load pass rebinds
  /// the cluster's program pointers). The same walk serves save, load,
  /// and digest (base/capsule.hpp).
  void serialize(capsule::Io& io);

  /// 64-bit FNV-1a digest over the full state walk. Two systems built
  /// from the same config are bit-identical iff their digests match.
  [[nodiscard]] std::uint64_t state_digest();

  /// Structural fingerprint of the config this system was built from.
  /// Stored in every capsule; load_capsule rejects a capsule whose
  /// fingerprint differs (the walk only carries state, not structure).
  [[nodiscard]] std::uint64_t config_fingerprint() const;

  /// Sealed capsule (envelope + payload) of the current state.
  [[nodiscard]] std::vector<std::uint8_t> save_capsule();
  /// Restore state from a sealed capsule. Throws capsule::CapsuleError on
  /// version/digest/fingerprint mismatch; the system is unchanged in the
  /// fingerprint case and must be discarded on a mid-walk failure.
  void load_capsule(const std::vector<std::uint8_t>& sealed);

 private:
  SystemConfig config_;
  KernelCounters counters_;
  std::unique_ptr<VirtualMemory> vm_;
  std::unique_ptr<fx8::Machine> machine_;
  std::unique_ptr<Scheduler> scheduler_;
};

}  // namespace repro::os
