#include "os/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "base/expect.hpp"

namespace repro::os {

Scheduler::Scheduler(fx8::Machine& machine, VirtualMemory& vm,
                     KernelCounters& counters, SchedulingPolicy policy)
    : machine_(machine), vm_(vm), counters_(counters), policy_(policy),
      running_(machine.n_clusters()),
      detached_running_(static_cast<std::size_t>(machine.n_clusters()) *
                        machine.cluster().detached_count()) {}

Job Scheduler::pop_next() {
  auto it = queue_.begin();
  if (policy_ != SchedulingPolicy::kFifo) {
    const JobClass preferred = policy_ == SchedulingPolicy::kConcurrentFirst
                                   ? JobClass::kCluster
                                   : JobClass::kSerialDetached;
    for (auto candidate = queue_.begin(); candidate != queue_.end();
         ++candidate) {
      if (candidate->cls == preferred) {
        it = candidate;
        break;
      }
    }
  }
  Job job = std::move(*it);
  queue_.erase(it);
  return job;
}

void Scheduler::submit(Job job) {
  job.program.validate();
  counters_.increment(KernelCounter::kJobsSubmitted);
  queue_.push_back(std::move(job));
}

void Scheduler::tick(Cycle now) {
  const std::uint32_t per = detached_per_cluster();
  // Reap drained detached jobs.
  for (std::uint32_t slot = 0; slot < detached_running_.size(); ++slot) {
    if (detached_running_[slot] &&
        !machine_.cluster(slot / per).detached_busy(slot % per)) {
      detached_running_[slot]->finished_at = now;
      vm_.release_job(detached_running_[slot]->id);
      counters_.increment(KernelCounter::kJobsCompleted);
      ++stats_.jobs_completed;
      ++stats_.serial_jobs_completed;
      detached_running_[slot].reset();
    }
  }
  // Route queued serial jobs onto free detached CEs.
  for (std::uint32_t slot = 0; slot < detached_running_.size(); ++slot) {
    if (detached_running_[slot]) {
      continue;
    }
    const auto candidate = std::find_if(
        queue_.begin(), queue_.end(), [](const Job& job) {
          return job.cls == JobClass::kSerialDetached;
        });
    if (candidate == queue_.end()) {
      break;
    }
    Job job = std::move(*candidate);
    queue_.erase(candidate);
    job.started_at = now;
    stats_.total_wait_cycles += now - job.submitted_at;
    counters_.increment(KernelCounter::kContextSwitches);
    detached_running_[slot] = std::move(job);
    machine_.cluster(slot / per).load_detached(
        slot % per, &detached_running_[slot]->program,
        detached_running_[slot]->id);
  }

  // Reap drained cluster jobs.
  for (std::uint32_t k = 0; k < running_.size(); ++k) {
    std::optional<Job>& running = running_[k];
    if (running && !machine_.cluster(k).busy()) {
      running->finished_at = now;
      vm_.release_job(running->id);
      counters_.increment(KernelCounter::kJobsCompleted);
      ++stats_.jobs_completed;
      if (running->cls == JobClass::kCluster) {
        ++stats_.cluster_jobs_completed;
      } else {
        ++stats_.serial_jobs_completed;
      }
      running.reset();
    }
  }
  // Start the next ones (cluster 0 first, matching hardware priority).
  for (std::uint32_t k = 0; k < running_.size(); ++k) {
    if (!running_[k] && !queue_.empty()) {
      running_[k] = pop_next();
      running_[k]->started_at = now;
      stats_.total_wait_cycles += now - running_[k]->submitted_at;
      counters_.increment(KernelCounter::kContextSwitches);
      machine_.cluster(k).load(&running_[k]->program, running_[k]->id);
    }
  }
}

Cycle Scheduler::quiet_horizon() const {
  for (std::uint32_t k = 0; k < running_.size(); ++k) {
    if (running_[k] && !machine_.cluster(k).busy()) {
      return 0;  // A cluster job to reap.
    }
    if (!running_[k] && !queue_.empty()) {
      return 0;  // A job to start.
    }
  }
  const std::uint32_t per = detached_per_cluster();
  bool free_slot = false;
  for (std::uint32_t slot = 0; slot < detached_running_.size(); ++slot) {
    if (detached_running_[slot]) {
      if (!machine_.cluster(slot / per).detached_busy(slot % per)) {
        return 0;  // A detached job to reap.
      }
    } else {
      free_slot = true;
    }
  }
  if (free_slot && !queue_.empty() &&
      std::any_of(queue_.begin(), queue_.end(), [](const Job& job) {
        return job.cls == JobClass::kSerialDetached;
      })) {
    return 0;  // A serial job to route onto a free detached CE.
  }
  return kHorizonNever;
}

void Scheduler::serialize(capsule::Io& io) {
  const auto job = [&io](Job& j) {
    io.u64(j.id);
    io.enum32(j.cls);
    j.program.serialize(io);
    io.u64(j.submitted_at);
    io.u64(j.started_at);
    io.u64(j.finished_at);
  };
  const auto optional_job = [&io, &job](std::optional<Job>& slot) {
    bool present = slot.has_value();
    io.boolean(present);
    if (io.loading()) {
      slot.reset();
      if (present) {
        slot.emplace();
      }
    }
    if (present) {
      job(*slot);
    }
  };

  const std::uint64_t depth = io.extent(queue_.size());
  if (io.loading()) {
    queue_.assign(static_cast<std::size_t>(depth), Job{});
  }
  for (Job& queued : queue_) {
    job(queued);
  }
  // One slot per cluster, no extent: the slot count is structural (it
  // must match the machine), so the single-cluster stream stays
  // byte-identical to the pre-topology one-optional walk.
  for (std::optional<Job>& running : running_) {
    optional_job(running);
  }
  const std::uint64_t detached = io.extent(detached_running_.size());
  if (io.loading() && detached != detached_running_.size()) {
    throw capsule::CapsuleError("capsule: detached slot count mismatch");
  }
  for (std::optional<Job>& slot : detached_running_) {
    optional_job(slot);
  }
  io.u64(stats_.jobs_completed);
  io.u64(stats_.cluster_jobs_completed);
  io.u64(stats_.serial_jobs_completed);
  io.u64(stats_.total_wait_cycles);

  if (io.loading()) {
    // The machine's walk left each cluster's program pointers null with
    // rebind-pending flags for every slot that was mid-job; point them at
    // the programs that now live inside this scheduler's Job storage.
    const std::uint32_t per = detached_per_cluster();
    for (std::uint32_t k = 0; k < running_.size(); ++k) {
      fx8::Cluster& cluster = machine_.cluster(k);
      if (cluster.needs_program_rebind()) {
        REPRO_ENSURE(running_[k].has_value(),
                     "capsule: cluster busy but no running job");
        cluster.rebind_program(&running_[k]->program);
      }
      for (std::uint32_t slot = 0; slot < per; ++slot) {
        if (cluster.detached_needs_rebind(slot)) {
          const std::uint32_t flat = k * per + slot;
          REPRO_ENSURE(detached_running_[flat].has_value(),
                       "capsule: detached CE busy but no running job");
          cluster.rebind_detached_program(
              slot, &detached_running_[flat]->program);
        }
      }
    }
  }
}

bool Scheduler::idle() const {
  if (job_running() || !queue_.empty()) {
    return false;
  }
  for (const std::optional<Job>& job : detached_running_) {
    if (job) {
      return false;
    }
  }
  return true;
}

}  // namespace repro::os
