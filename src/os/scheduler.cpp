#include "os/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "base/expect.hpp"

namespace repro::os {

Scheduler::Scheduler(fx8::Machine& machine, VirtualMemory& vm,
                     KernelCounters& counters, SchedulingPolicy policy)
    : machine_(machine), vm_(vm), counters_(counters), policy_(policy),
      detached_running_(machine.cluster().detached_count()) {}

Job Scheduler::pop_next() {
  auto it = queue_.begin();
  if (policy_ != SchedulingPolicy::kFifo) {
    const JobClass preferred = policy_ == SchedulingPolicy::kConcurrentFirst
                                   ? JobClass::kCluster
                                   : JobClass::kSerialDetached;
    for (auto candidate = queue_.begin(); candidate != queue_.end();
         ++candidate) {
      if (candidate->cls == preferred) {
        it = candidate;
        break;
      }
    }
  }
  Job job = std::move(*it);
  queue_.erase(it);
  return job;
}

void Scheduler::submit(Job job) {
  job.program.validate();
  counters_.increment(KernelCounter::kJobsSubmitted);
  queue_.push_back(std::move(job));
}

void Scheduler::tick(Cycle now) {
  // Reap drained detached jobs.
  for (std::uint32_t slot = 0; slot < detached_running_.size(); ++slot) {
    if (detached_running_[slot] &&
        !machine_.cluster().detached_busy(slot)) {
      detached_running_[slot]->finished_at = now;
      vm_.release_job(detached_running_[slot]->id);
      counters_.increment(KernelCounter::kJobsCompleted);
      ++stats_.jobs_completed;
      ++stats_.serial_jobs_completed;
      detached_running_[slot].reset();
    }
  }
  // Route queued serial jobs onto free detached CEs.
  for (std::uint32_t slot = 0; slot < detached_running_.size(); ++slot) {
    if (detached_running_[slot]) {
      continue;
    }
    const auto candidate = std::find_if(
        queue_.begin(), queue_.end(), [](const Job& job) {
          return job.cls == JobClass::kSerialDetached;
        });
    if (candidate == queue_.end()) {
      break;
    }
    Job job = std::move(*candidate);
    queue_.erase(candidate);
    job.started_at = now;
    stats_.total_wait_cycles += now - job.submitted_at;
    counters_.increment(KernelCounter::kContextSwitches);
    detached_running_[slot] = std::move(job);
    machine_.cluster().load_detached(
        slot, &detached_running_[slot]->program,
        detached_running_[slot]->id);
  }

  // Reap a drained job.
  if (running_ && !machine_.cluster().busy()) {
    running_->finished_at = now;
    vm_.release_job(running_->id);
    counters_.increment(KernelCounter::kJobsCompleted);
    ++stats_.jobs_completed;
    if (running_->cls == JobClass::kCluster) {
      ++stats_.cluster_jobs_completed;
    } else {
      ++stats_.serial_jobs_completed;
    }
    running_.reset();
  }
  // Start the next one.
  if (!running_ && !queue_.empty()) {
    running_ = pop_next();
    running_->started_at = now;
    stats_.total_wait_cycles += now - running_->submitted_at;
    counters_.increment(KernelCounter::kContextSwitches);
    machine_.cluster().load(&running_->program, running_->id);
  }
}

Cycle Scheduler::quiet_horizon() const {
  if (running_ && !machine_.cluster().busy()) {
    return 0;  // A cluster job to reap.
  }
  if (!running_ && !queue_.empty()) {
    return 0;  // A job to start.
  }
  bool free_slot = false;
  for (std::uint32_t slot = 0; slot < detached_running_.size(); ++slot) {
    if (detached_running_[slot]) {
      if (!machine_.cluster().detached_busy(slot)) {
        return 0;  // A detached job to reap.
      }
    } else {
      free_slot = true;
    }
  }
  if (free_slot && !queue_.empty() &&
      std::any_of(queue_.begin(), queue_.end(), [](const Job& job) {
        return job.cls == JobClass::kSerialDetached;
      })) {
    return 0;  // A serial job to route onto a free detached CE.
  }
  return kHorizonNever;
}

bool Scheduler::idle() const {
  if (running_ || !queue_.empty()) {
    return false;
  }
  for (const std::optional<Job>& job : detached_running_) {
    if (job) {
      return false;
    }
  }
  return true;
}

}  // namespace repro::os
