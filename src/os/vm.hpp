// Concentrix-style virtual memory: the Mmu implementation.
//
// "The system's virtual address spaces are organized as 1024 segments of
// 1024 pages per segment; pages are 4 Kbytes in length" (Appendix C). Each
// job owns a sparse resident set backed by physical frames from the
// machine's 64 MB pool; the first CE touch of a page takes a fault whose
// service time stalls the touching CE and whose occurrence bumps the
// kernel counters the software sampler reads. Reclaim happens at two
// levels: an optional per-job resident-set cap (FIFO), and global FIFO
// reclaim when physical memory is exhausted — the pressure that makes
// page-fault rate a system measure.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "base/types.hpp"
#include "fx8/mmu.hpp"
#include "mem/frame_allocator.hpp"
#include "os/kernel_counters.hpp"

namespace repro::os {

struct VmConfig {
  std::uint64_t segments = 1024;
  std::uint64_t pages_per_segment = 1024;
  /// CE stall for one fault service (OS handler + disk/zero-fill mix).
  Cycle fault_service_cycles = 40;
  /// Fraction of faults booked as system-mode (rest are user-mode).
  double system_fault_fraction = 0.2;
  /// Per-job resident-set cap in pages; 0 disables the per-job cap.
  std::uint64_t resident_limit_pages = 4096;
  /// Physical memory backing the frames (Appendix C: up to 64 MB).
  std::uint64_t physical_bytes = 64ULL * 1024 * 1024;
};

struct VmStats {
  std::uint64_t faults = 0;
  std::uint64_t evictions = 0;        ///< Per-job cap evictions.
  std::uint64_t global_reclaims = 0;  ///< Evictions forced by exhaustion.
  std::uint64_t translations = 0;
};

class VirtualMemory final : public fx8::Mmu {
 public:
  VirtualMemory(const VmConfig& config, KernelCounters& counters);

  /// fx8::Mmu: first touch of a page faults (service time returned) and
  /// maps it to a physical frame; later touches are free. The rig index is
  /// unused — a System-owned VM serves exactly one machine (rig 0); only
  /// batch harnesses sharing a bare Mmu across rigs key on it.
  Cycle touch(JobId job, CeId ce, Addr addr, std::uint32_t rig = 0) override;

  /// fx8::Mmu: widen the VM-side per-CE memos alongside the base memo
  /// when the machine resolves to more than kMaxCes global CEs.
  void ensure_lanes(std::uint32_t n) override {
    fx8::Mmu::ensure_lanes(n);
    if (memo_job_.size() < lanes()) {
      memo_job_.assign(lanes(), {});
      memo_page_.assign(lanes(), {});
      memo_valid_.assign(lanes(), {});
    }
  }

  /// Drop a finished job's resident set (frames return to the pool).
  void release_job(JobId job);

  [[nodiscard]] std::uint64_t resident_pages(JobId job) const;
  [[nodiscard]] const VmStats& stats() const { return stats_; }
  [[nodiscard]] const VmConfig& config() const { return config_; }
  [[nodiscard]] const mem::FrameAllocator& frames() const { return frames_; }

  /// Capsule walk: page tables (in sorted key order — the hash maps are
  /// never iterated on behaviour-relevant paths, so the stored order is a
  /// free choice and sorting keeps the digest canonical), FIFO queues,
  /// translation memos, stats, and the frame pool.
  void serialize(capsule::Io& io);

 private:
  struct JobPages {
    std::unordered_map<Addr, mem::FrameId> resident;
    std::deque<Addr> fifo;
  };

  /// Unmap one page of one job, returning its frame to the pool.
  void unmap(JobPages& pages, Addr page);
  /// Invalidate the translation memos — both the VM-side slots and the
  /// Mmu base's per-CE fast-path memo (any unmap or job release could
  /// remove the memoized pages).
  void drop_memo() {
    invalidate_translations();
    for (auto& lanes : memo_valid_) {
      lanes.fill(false);
    }
  }
  /// Install (job, page) into `ce`'s memo slot for that page.
  void remember(CeId ce, JobId job, Addr page) {
    const std::size_t slot = page & (kMemoSlots - 1);
    memo_job_[ce][slot] = job;
    memo_page_[ce][slot] = page;
    memo_valid_[ce][slot] = true;
  }
  /// Global FIFO reclaim of one page from any job; false if none left.
  bool reclaim_one();

  VmConfig config_;
  KernelCounters& counters_;
  mem::FrameAllocator frames_;
  std::unordered_map<JobId, JobPages> jobs_;
  /// Global mapping order for exhaustion reclaim (entries may be stale;
  /// validated lazily).
  std::deque<std::pair<JobId, Addr>> global_fifo_;
  /// Per-CE translation memo: recent (job, page) pairs that resolved
  /// resident for that CE, direct-mapped by the page's low bits (one
  /// compare per lookup). CEs stream within a page for many consecutive
  /// accesses and interleave a handful of hot-set pages, so four slots
  /// short-circuit the hash lookup on the hot path. Invalidated
  /// wholesale on any unmap or job release.
  static constexpr std::size_t kMemoSlots = 4;
  /// Lane-count entries (default kMaxCes; ensure_lanes grows them for
  /// wider machines, keeping the capsule walk byte-stable at width <= 8).
  std::vector<std::array<JobId, kMemoSlots>> memo_job_ =
      std::vector<std::array<JobId, kMemoSlots>>(kMaxCes);
  std::vector<std::array<Addr, kMemoSlots>> memo_page_ =
      std::vector<std::array<Addr, kMemoSlots>>(kMaxCes);
  std::vector<std::array<bool, kMemoSlots>> memo_valid_ =
      std::vector<std::array<bool, kMemoSlots>>(kMaxCes);
  VmStats stats_;
};

}  // namespace repro::os
