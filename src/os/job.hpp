// Job model: a schedulable program with Concentrix resource-class tagging.
//
// "Programs may be specified to run on either the CE or the IP ... or on
// the Cluster with a particular number of processors" (Appendix C / [21]).
// In this reproduction the cluster is the measured resource, so cluster
// and detached-serial jobs both execute there (a detached serial job is a
// program with no concurrent phases — exactly the footnote under Figure 3);
// IP-class work is modelled statistically inside fx8::Ip.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "base/types.hpp"
#include "isa/program.hpp"

namespace repro::os {

enum class JobClass : std::uint8_t {
  kCluster,         ///< Numeric job using loop concurrency.
  kSerialDetached,  ///< Serial-only process (editor, compiler, shell).
};

struct Job {
  JobId id = 0;
  JobClass cls = JobClass::kCluster;
  isa::Program program;
  Cycle submitted_at = 0;
  Cycle started_at = 0;
  Cycle finished_at = 0;
};

}  // namespace repro::os
