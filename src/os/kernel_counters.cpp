#include "os/kernel_counters.hpp"

namespace repro::os {

std::string_view name(KernelCounter counter) {
  switch (counter) {
    case KernelCounter::kCePageFaultsUser:
      return "ce-page-faults-user";
    case KernelCounter::kCePageFaultsSystem:
      return "ce-page-faults-system";
    case KernelCounter::kContextSwitches:
      return "context-switches";
    case KernelCounter::kJobsCompleted:
      return "jobs-completed";
    case KernelCounter::kJobsSubmitted:
      return "jobs-submitted";
    case KernelCounter::kPagesMapped:
      return "pages-mapped";
    case KernelCounter::kPagesEvicted:
      return "pages-evicted";
  }
  return "?";
}

}  // namespace repro::os
