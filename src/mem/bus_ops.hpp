// Bus opcode vocabularies observed by the logic-analyzer probes.
//
// The DAS 9100 probes in the study watched (1) each CE's bus to the shared
// cache, (2) the shared memory bus, and (3) the Concurrency Control Bus
// (paper §3.3). These enums are the signal alphabet those probes see; the
// instrumentation layer reduces per-cycle opcode streams to the event
// counts of Table 1 (ceop_j, membop_j).
#pragma once

#include <cstdint>
#include <string_view>

namespace repro::mem {

/// Opcode on a CE <-> shared-cache bus for one cycle.
enum class CeBusOp : std::uint8_t {
  kIdle = 0,       ///< No transaction (compute, idle, or sync wait).
  kRead,           ///< Data read that hits in the shared cache.
  kWrite,          ///< Data write that hits (cache owns a unique copy).
  kReadMiss,       ///< Data read whose lookup missed; fill in flight.
  kWriteMiss,      ///< Data write whose lookup missed (ownership fetch).
  kInstrFetch,     ///< Instruction fetch spilling from the CE icache.
  kWait,           ///< Bus held while an outstanding miss completes.
};
inline constexpr std::size_t kNumCeBusOps = 7;

/// Opcode on one of the two cache <-> memory buses for one cycle.
enum class MemBusOp : std::uint8_t {
  kIdle = 0,       ///< Bus idle.
  kLineFetch,      ///< Cache-line fill from main memory.
  kWriteBack,      ///< Dirty-line write back to main memory.
  kIpTraffic,      ///< IP-cache traffic (interactive / OS / I/O work).
  kInvalidate,     ///< Coherence: revoking a copy so a writer gets a
                   ///< "unique" copy (Appendix C coherence rule).
};
inline constexpr std::size_t kNumMemBusOps = 5;

[[nodiscard]] std::string_view name(CeBusOp op);
[[nodiscard]] std::string_view name(MemBusOp op);

/// True for CE bus opcodes that correspond to a cache miss. The paper's
/// Missrate is "the fraction of total bus cycles corresponding to cache
/// misses" (§5).
[[nodiscard]] constexpr bool is_miss(CeBusOp op) {
  return op == CeBusOp::kReadMiss || op == CeBusOp::kWriteMiss;
}

/// True for CE bus opcodes that occupy the bus. CE Bus Busy is "the
/// fraction of processor-to-cache bus cycles that are not idle" (§5).
[[nodiscard]] constexpr bool is_busy(CeBusOp op) {
  return op != CeBusOp::kIdle;
}

}  // namespace repro::mem
