// Dual memory-bus model.
//
// Traffic between the caches and main memory runs over two 64-bit buses
// (Appendix C). Each cache module owns one bus. A transaction occupies its
// bus for a fixed transfer time once its memory bank is free; queued
// transactions wait. Each cycle every bus exposes the opcode a probe
// would latch, which is what membop_j in Table 1 counts.
//
// Transactions come in two flavours: *tracked* ones (cache-line fills)
// whose requester polls take_finished(), and *untracked* fire-and-forget
// ones (invalidate broadcasts, write-backs, IP traffic) that only load
// the bus. Keeping the flavours apart keeps the finished set small and
// lets take_finished() consumers gate on the completion epoch instead of
// polling every cycle.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "base/capsule.hpp"
#include "base/types.hpp"
#include "mem/bus_ops.hpp"
#include "mem/hot.hpp"
#include "mem/main_memory.hpp"

namespace repro::mem {

using TxnId = std::uint64_t;

struct MemoryBusConfig {
  std::uint32_t bus_count = 2;
  std::uint32_t transfer_cycles = 4;    ///< Bus occupancy of a line move.
  std::uint32_t invalidate_cycles = 1;  ///< Bus occupancy of an invalidate.
};

class MemoryBus {
 public:
  MemoryBus(const MemoryBusConfig& config, MainMemory& memory);

  [[nodiscard]] const MemoryBusConfig& config() const { return config_; }

  /// Queue a tracked transaction on bus `bus`. Returns a token to poll
  /// with take_finished(). `addr` selects the memory bank for ops that
  /// touch memory (fetch, write-back, IP traffic); ignored for
  /// invalidates.
  TxnId submit(std::uint32_t bus, MemBusOp op, Addr addr);

  /// Queue a fire-and-forget transaction: occupies the bus and books its
  /// opcode cycles exactly like submit(), but completion is dropped on
  /// the floor (no token, no epoch bump). For traffic nobody stalls on.
  void submit_untracked(std::uint32_t bus, MemBusOp op, Addr addr);

  /// Advance one cycle. Must be called exactly once per machine cycle with
  /// a strictly increasing `now`.
  void tick(Cycle now);

  /// True (and consumes the completion) if the transaction has finished.
  [[nodiscard]] bool take_finished(TxnId id);

  /// Monotone count of tracked completions (see mem/hot.hpp). While this
  /// is unchanged, every take_finished() call would return false.
  [[nodiscard]] std::uint64_t completion_epoch() const {
    return hot_->completion_epoch;
  }

  /// Event-horizon fast-forward: cycles of guaranteed pure repetition.
  /// An idle bus contributes kHorizonNever; an active transaction
  /// contributes remaining - 1 (its completion tick must run naively); a
  /// bank-blocked queue head contributes the wait until its bank frees.
  [[nodiscard]] Cycle quiet_horizon(Cycle now) const;
  /// Bulk-apply `cycles` quiet ticks: idle buses book idle opcode
  /// cycles, active transactions count down without completing.
  /// Requires cycles <= quiet_horizon(now).
  void skip(Cycle cycles);

  /// Opcode a probe on bus `bus` would latch for the cycle just ticked.
  [[nodiscard]] MemBusOp op_on(std::uint32_t bus) const;

  /// Number of queued-but-unstarted transactions on a bus (tests).
  [[nodiscard]] std::size_t queue_depth(std::uint32_t bus) const;

  /// Lifetime opcode-cycle counts per bus (op indexed by MemBusOp value).
  [[nodiscard]] std::uint64_t op_cycles(std::uint32_t bus, MemBusOp op) const;

  /// Re-point the hot fields at an externally owned block (the machine's
  /// contiguous hot-state). Copies the current values across, so binding
  /// is transparent at any point in the bus's life.
  void bind_hot(BusHot& hot);

  /// Capsule walk: per-bus queues/latches/opcode counters, the tracked
  /// completion set, and the quiescent fold.
  void serialize(capsule::Io& io);

 private:
  struct PendingTxn {
    TxnId id = 0;  ///< 0 = untracked (fire-and-forget).
    MemBusOp op = MemBusOp::kIdle;
    Addr addr = 0;
  };
  struct BusState {
    std::deque<PendingTxn> queue;
    PendingTxn active;
    std::vector<std::uint64_t> op_cycle_counts =
        std::vector<std::uint64_t>(kNumMemBusOps, 0);
  };

  void start_next(BusState& bus, std::uint32_t index, Cycle now);

  MemoryBusConfig config_;
  MainMemory& memory_;
  std::vector<BusState> buses_;
  /// Outstanding tracked completions. A plain vector: at most one fill
  /// per CE can be in flight, so the set stays tiny and a linear scan
  /// beats hashing (and never grows unboundedly the way a set fed by
  /// fire-and-forget traffic did).
  std::vector<TxnId> finished_;
  TxnId next_id_ = 1;
  /// True when the last tick left every bus idle with an empty queue:
  /// until the next submit, a tick can only book one idle cycle per bus.
  /// Those cycles accumulate here and are folded into op_cycles() on
  /// read, turning the (dominant) fully-idle tick into a single branch.
  bool quiescent_ = false;
  Cycle quiescent_ticks_ = 0;
  BusHot own_hot_;
  BusHot* hot_ = &own_hot_;
};

}  // namespace repro::mem
