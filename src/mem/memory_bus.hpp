// Dual memory-bus model.
//
// Traffic between the caches and main memory runs over two 64-bit buses
// (Appendix C). Each cache module owns one bus. A transaction occupies its
// bus for a fixed transfer time once its memory bank is free; queued
// transactions wait. Each cycle every bus exposes the opcode a probe
// would latch, which is what membop_j in Table 1 counts.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "base/types.hpp"
#include "mem/bus_ops.hpp"
#include "mem/main_memory.hpp"

namespace repro::mem {

using TxnId = std::uint64_t;

struct MemoryBusConfig {
  std::uint32_t bus_count = 2;
  std::uint32_t transfer_cycles = 4;    ///< Bus occupancy of a line move.
  std::uint32_t invalidate_cycles = 1;  ///< Bus occupancy of an invalidate.
};

class MemoryBus {
 public:
  MemoryBus(const MemoryBusConfig& config, MainMemory& memory);

  [[nodiscard]] const MemoryBusConfig& config() const { return config_; }

  /// Queue a transaction on bus `bus`. Returns a token to poll with
  /// take_finished(). `addr` selects the memory bank for ops that touch
  /// memory (fetch, write-back, IP traffic); ignored for invalidates.
  TxnId submit(std::uint32_t bus, MemBusOp op, Addr addr);

  /// Advance one cycle. Must be called exactly once per machine cycle with
  /// a strictly increasing `now`.
  void tick(Cycle now);

  /// True (and consumes the completion) if the transaction has finished.
  [[nodiscard]] bool take_finished(TxnId id);

  /// Event-horizon fast-forward: cycles of guaranteed pure repetition.
  /// An idle bus contributes kHorizonNever; an active transaction
  /// contributes remaining - 1 (its completion tick must run naively); a
  /// bank-blocked queue head contributes the wait until its bank frees.
  [[nodiscard]] Cycle quiet_horizon(Cycle now) const;
  /// Bulk-apply `cycles` quiet ticks: idle buses book idle opcode
  /// cycles, active transactions count down without completing.
  /// Requires cycles <= quiet_horizon(now).
  void skip(Cycle cycles);

  /// Opcode a probe on bus `bus` would latch for the cycle just ticked.
  [[nodiscard]] MemBusOp op_on(std::uint32_t bus) const;

  /// Number of queued-but-unstarted transactions on a bus (tests).
  [[nodiscard]] std::size_t queue_depth(std::uint32_t bus) const;

  /// Lifetime opcode-cycle counts per bus (op indexed by MemBusOp value).
  [[nodiscard]] std::uint64_t op_cycles(std::uint32_t bus, MemBusOp op) const;

 private:
  struct PendingTxn {
    TxnId id = 0;
    MemBusOp op = MemBusOp::kIdle;
    Addr addr = 0;
  };
  struct BusState {
    std::deque<PendingTxn> queue;
    PendingTxn active;
    std::uint32_t remaining = 0;  ///< Bus cycles left on the active txn.
    MemBusOp current_op = MemBusOp::kIdle;
    std::vector<std::uint64_t> op_cycle_counts =
        std::vector<std::uint64_t>(kNumMemBusOps, 0);
  };

  void start_next(BusState& bus, Cycle now);

  MemoryBusConfig config_;
  MainMemory& memory_;
  std::vector<BusState> buses_;
  std::unordered_set<TxnId> finished_;
  TxnId next_id_ = 1;
};

}  // namespace repro::mem
