// Interleaved main memory model.
//
// The FX/8 main memory is four-way interleaved with up to 64 MB capacity
// (Appendix C). We model bank occupancy: a line access engages one bank
// for a fixed busy time; a second access to a busy bank must wait, which
// is how memory contention shows up as extra memory-bus cycles.
#pragma once

#include <array>
#include <cstdint>

#include "base/capsule.hpp"
#include "base/types.hpp"

namespace repro::mem {

struct MainMemoryConfig {
  std::uint64_t capacity_bytes = 64ULL * 1024 * 1024;
  std::uint32_t interleave = 4;     ///< Number of banks.
  std::uint32_t bank_busy_cycles = 4;  ///< Bank occupancy per line access.
};

class MainMemory {
 public:
  explicit MainMemory(const MainMemoryConfig& config);

  [[nodiscard]] const MainMemoryConfig& config() const { return config_; }

  /// Bank index serving the line containing `addr`.
  [[nodiscard]] std::uint32_t bank_of(Addr addr) const;

  /// Earliest cycle (>= now) at which the bank for `addr` can begin a new
  /// access; does not reserve the bank.
  [[nodiscard]] Cycle earliest_start(Addr addr, Cycle now) const;

  /// Reserve the bank for an access starting at `start`; returns the cycle
  /// at which the access completes (bank data available).
  Cycle begin_access(Addr addr, Cycle start);

  /// Total accesses served, for statistics/tests.
  [[nodiscard]] std::uint64_t access_count() const { return accesses_; }

  /// Capsule walk: bank occupancy deadlines and the access counter.
  void serialize(capsule::Io& io) {
    for (Cycle& free_at : bank_free_at_) {
      io.u64(free_at);
    }
    io.u64(accesses_);
  }

 private:
  MainMemoryConfig config_;
  // Cycle until which each bank is busy. Sized at construction.
  std::array<Cycle, 16> bank_free_at_{};
  std::uint64_t accesses_ = 0;
};

}  // namespace repro::mem
