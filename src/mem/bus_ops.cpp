#include "mem/bus_ops.hpp"

namespace repro::mem {

std::string_view name(CeBusOp op) {
  switch (op) {
    case CeBusOp::kIdle:
      return "idle";
    case CeBusOp::kRead:
      return "read";
    case CeBusOp::kWrite:
      return "write";
    case CeBusOp::kReadMiss:
      return "read-miss";
    case CeBusOp::kWriteMiss:
      return "write-miss";
    case CeBusOp::kInstrFetch:
      return "ifetch";
    case CeBusOp::kWait:
      return "wait";
  }
  return "?";
}

std::string_view name(MemBusOp op) {
  switch (op) {
    case MemBusOp::kIdle:
      return "idle";
    case MemBusOp::kLineFetch:
      return "line-fetch";
    case MemBusOp::kWriteBack:
      return "write-back";
    case MemBusOp::kIpTraffic:
      return "ip-traffic";
    case MemBusOp::kInvalidate:
      return "invalidate";
  }
  return "?";
}

}  // namespace repro::mem
