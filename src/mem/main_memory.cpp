#include "mem/main_memory.hpp"

#include <algorithm>

#include "base/expect.hpp"

namespace repro::mem {

MainMemory::MainMemory(const MainMemoryConfig& config) : config_(config) {
  REPRO_EXPECT(config.interleave > 0 &&
                   config.interleave <= bank_free_at_.size(),
               "interleave factor out of range");
  REPRO_EXPECT(config.bank_busy_cycles > 0, "bank busy time must be positive");
  REPRO_EXPECT(config.capacity_bytes >= kLineBytes,
               "memory must hold at least one line");
}

std::uint32_t MainMemory::bank_of(Addr addr) const {
  return static_cast<std::uint32_t>((addr / kLineBytes) % config_.interleave);
}

Cycle MainMemory::earliest_start(Addr addr, Cycle now) const {
  return std::max(now, bank_free_at_[bank_of(addr)]);
}

Cycle MainMemory::begin_access(Addr addr, Cycle start) {
  const std::uint32_t bank = bank_of(addr);
  REPRO_EXPECT(start >= bank_free_at_[bank],
               "access scheduled while bank still busy");
  const Cycle done = start + config_.bank_busy_cycles;
  bank_free_at_[bank] = done;
  ++accesses_;
  return done;
}

}  // namespace repro::mem
