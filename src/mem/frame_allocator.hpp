// Physical frame allocator.
//
// Main memory holds up to 64 MB in 4 KB frames (Appendix C). The VM
// layer maps virtual pages onto frames from this pool; when the pool is
// exhausted the kernel must reclaim (the global replacement pressure
// that makes page-fault rate a *system* measure rather than a per-job
// counter).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "base/capsule.hpp"
#include "base/types.hpp"

namespace repro::mem {

using FrameId = std::uint64_t;

struct FrameAllocatorStats {
  std::uint64_t allocations = 0;
  std::uint64_t frees = 0;
  std::uint64_t exhaustions = 0;  ///< Allocation attempts that found none.
};

class FrameAllocator {
 public:
  /// Pool sized for `capacity_bytes` of physical memory.
  explicit FrameAllocator(std::uint64_t capacity_bytes);

  /// Grab a free frame; nullopt when physical memory is exhausted.
  [[nodiscard]] std::optional<FrameId> allocate();

  /// Return a frame to the pool. Double frees are contract violations.
  void free(FrameId frame);

  [[nodiscard]] std::uint64_t total_frames() const { return total_; }
  [[nodiscard]] std::uint64_t free_frames() const { return free_count_; }
  [[nodiscard]] std::uint64_t used_frames() const {
    return total_ - free_count_;
  }
  [[nodiscard]] bool is_allocated(FrameId frame) const;
  [[nodiscard]] const FrameAllocatorStats& stats() const { return stats_; }

  /// Capsule walk: the occupancy bitmap, scan cursor, and stats. Pool
  /// size is structural (it comes from the config) and must match.
  void serialize(capsule::Io& io) {
    const std::uint64_t total = io.extent(total_);
    if (io.loading() && total != total_) {
      throw capsule::CapsuleError("capsule: frame pool size mismatch");
    }
    io.u64(free_count_);
    for (std::uint8_t& used : used_) {
      io.u8(used);
    }
    io.u64(cursor_);
    io.u64(stats_.allocations);
    io.u64(stats_.frees);
    io.u64(stats_.exhaustions);
  }

 private:
  std::uint64_t total_ = 0;
  std::uint64_t free_count_ = 0;
  /// Bitmap + rotating scan cursor (frames are interchangeable; the
  /// cursor keeps allocation O(1) amortized).
  std::vector<std::uint8_t> used_;
  std::uint64_t cursor_ = 0;
  FrameAllocatorStats stats_;
};

}  // namespace repro::mem
