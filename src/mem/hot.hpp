// Memory-bus per-tick hot state.
//
// The fields the per-cycle path reads and writes every machine cycle,
// split out of MemoryBus so the machine can pack them into its contiguous
// hot-state block (fx8/hot_state.hpp) next to the other components' hot
// lanes. A standalone MemoryBus (unit tests) binds to a private instance;
// inside a Machine every component's hot struct shares one allocation.
#pragma once

#include <array>
#include <cstdint>

#include "base/types.hpp"
#include "mem/bus_ops.hpp"

namespace repro::mem {

/// Hard cap on modelled buses (the FX/8 has two; FX/1 one). Bounds the
/// hot arrays so the block's size is a compile-time constant.
inline constexpr std::uint32_t kMaxMemBuses = 4;

struct BusHot {
  /// Bus cycles left on each bus's active transaction (0 = idle).
  std::array<std::uint32_t, kMaxMemBuses> remaining{};
  /// Opcode a probe would latch on each bus for the cycle just ticked.
  std::array<MemBusOp, kMaxMemBuses> current_op{};
  /// Monotone count of *tracked* transaction completions. Consumers that
  /// poll take_finished() (the shared cache) can skip their poll loop
  /// entirely while this is unchanged: no tracked transaction can have
  /// finished in between.
  std::uint64_t completion_epoch = 0;
};

}  // namespace repro::mem
