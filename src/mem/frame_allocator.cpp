#include "mem/frame_allocator.hpp"

#include "base/expect.hpp"

namespace repro::mem {

FrameAllocator::FrameAllocator(std::uint64_t capacity_bytes)
    : total_(capacity_bytes / kPageBytes), free_count_(total_),
      used_(total_, 0) {
  REPRO_EXPECT(total_ > 0, "pool must hold at least one frame");
}

std::optional<FrameId> FrameAllocator::allocate() {
  if (free_count_ == 0) {
    ++stats_.exhaustions;
    return std::nullopt;
  }
  while (used_[cursor_]) {
    cursor_ = (cursor_ + 1) % total_;
  }
  used_[cursor_] = 1;
  --free_count_;
  ++stats_.allocations;
  const FrameId frame = cursor_;
  cursor_ = (cursor_ + 1) % total_;
  return frame;
}

void FrameAllocator::free(FrameId frame) {
  REPRO_EXPECT(frame < total_, "frame id out of range");
  REPRO_EXPECT(used_[frame], "double free of a physical frame");
  used_[frame] = 0;
  ++free_count_;
  ++stats_.frees;
}

bool FrameAllocator::is_allocated(FrameId frame) const {
  REPRO_EXPECT(frame < total_, "frame id out of range");
  return used_[frame] != 0;
}

}  // namespace repro::mem
