#include "mem/memory_bus.hpp"

#include "base/expect.hpp"

namespace repro::mem {

MemoryBus::MemoryBus(const MemoryBusConfig& config, MainMemory& memory)
    : config_(config), memory_(memory), buses_(config.bus_count) {
  REPRO_EXPECT(config.bus_count > 0, "need at least one memory bus");
  REPRO_EXPECT(config.transfer_cycles > 0, "transfer time must be positive");
  REPRO_EXPECT(config.invalidate_cycles > 0,
               "invalidate time must be positive");
}

TxnId MemoryBus::submit(std::uint32_t bus, MemBusOp op, Addr addr) {
  REPRO_EXPECT(bus < buses_.size(), "bus index out of range");
  REPRO_EXPECT(op != MemBusOp::kIdle, "cannot submit an idle transaction");
  const TxnId id = next_id_++;
  buses_[bus].queue.push_back(PendingTxn{id, op, addr});
  return id;
}

void MemoryBus::start_next(BusState& bus, Cycle now) {
  if (bus.queue.empty()) {
    return;
  }
  const PendingTxn& head = bus.queue.front();
  if (head.op == MemBusOp::kInvalidate) {
    bus.active = head;
    bus.remaining = config_.invalidate_cycles;
    bus.queue.pop_front();
    return;
  }
  // Memory-touching transaction: only start when the bank can serve it.
  if (memory_.earliest_start(head.addr, now) > now) {
    return;  // Bank conflict: bus idles this cycle.
  }
  memory_.begin_access(head.addr, now);
  bus.active = head;
  bus.remaining = config_.transfer_cycles;
  bus.queue.pop_front();
}

void MemoryBus::tick(Cycle now) {
  for (BusState& bus : buses_) {
    if (bus.remaining == 0) {
      start_next(bus, now);
    }
    if (bus.remaining > 0) {
      bus.current_op = bus.active.op;
      --bus.remaining;
      if (bus.remaining == 0) {
        finished_.insert(bus.active.id);
      }
    } else {
      bus.current_op = MemBusOp::kIdle;
    }
    ++bus.op_cycle_counts[static_cast<std::size_t>(bus.current_op)];
  }
}

Cycle MemoryBus::quiet_horizon(Cycle now) const {
  Cycle horizon = kHorizonNever;
  for (const BusState& bus : buses_) {
    if (bus.remaining > 0) {
      // Counting down an active transaction is a pure repeat of the same
      // opcode; the tick that completes it (inserting into finished_ and
      // starting the next queued txn) must run naively.
      horizon = std::min<Cycle>(horizon, bus.remaining - 1);
    } else if (!bus.queue.empty()) {
      const PendingTxn& head = bus.queue.front();
      if (head.op == MemBusOp::kInvalidate) {
        return 0;  // Starts unconditionally on the next tick.
      }
      // Head is blocked on its memory bank: the bus idles until the
      // bank frees, and the tick that can start it must run naively.
      const Cycle start = memory_.earliest_start(head.addr, now);
      if (start <= now) {
        return 0;
      }
      horizon = std::min(horizon, start - now);
    }
    if (horizon == 0) {
      return 0;
    }
  }
  return horizon;
}

void MemoryBus::skip(Cycle cycles) {
  for (BusState& bus : buses_) {
    if (bus.remaining > 0) {
      REPRO_EXPECT(cycles < bus.remaining,
                   "memory bus skip past a transaction completion");
      bus.current_op = bus.active.op;
      bus.remaining -= static_cast<std::uint32_t>(cycles);
      bus.op_cycle_counts[static_cast<std::size_t>(bus.active.op)] += cycles;
    } else {
      bus.current_op = MemBusOp::kIdle;
      bus.op_cycle_counts[static_cast<std::size_t>(MemBusOp::kIdle)] +=
          cycles;
    }
  }
}

bool MemoryBus::take_finished(TxnId id) {
  const auto it = finished_.find(id);
  if (it == finished_.end()) {
    return false;
  }
  finished_.erase(it);
  return true;
}

MemBusOp MemoryBus::op_on(std::uint32_t bus) const {
  REPRO_EXPECT(bus < buses_.size(), "bus index out of range");
  return buses_[bus].current_op;
}

std::size_t MemoryBus::queue_depth(std::uint32_t bus) const {
  REPRO_EXPECT(bus < buses_.size(), "bus index out of range");
  return buses_[bus].queue.size();
}

std::uint64_t MemoryBus::op_cycles(std::uint32_t bus, MemBusOp op) const {
  REPRO_EXPECT(bus < buses_.size(), "bus index out of range");
  return buses_[bus].op_cycle_counts[static_cast<std::size_t>(op)];
}

}  // namespace repro::mem
