#include "mem/memory_bus.hpp"

#include <algorithm>

#include "base/expect.hpp"

namespace repro::mem {

MemoryBus::MemoryBus(const MemoryBusConfig& config, MainMemory& memory)
    : config_(config), memory_(memory), buses_(config.bus_count) {
  REPRO_EXPECT(config.bus_count > 0, "need at least one memory bus");
  REPRO_EXPECT(config.bus_count <= kMaxMemBuses,
               "bus count exceeds the hot-state bus cap");
  REPRO_EXPECT(config.transfer_cycles > 0, "transfer time must be positive");
  REPRO_EXPECT(config.invalidate_cycles > 0,
               "invalidate time must be positive");
}

void MemoryBus::bind_hot(BusHot& hot) {
  hot = *hot_;
  hot_ = &hot;
}

TxnId MemoryBus::submit(std::uint32_t bus, MemBusOp op, Addr addr) {
  REPRO_EXPECT(bus < buses_.size(), "bus index out of range");
  REPRO_EXPECT(op != MemBusOp::kIdle, "cannot submit an idle transaction");
  const TxnId id = next_id_++;
  buses_[bus].queue.push_back(PendingTxn{id, op, addr});
  quiescent_ = false;
  return id;
}

void MemoryBus::submit_untracked(std::uint32_t bus, MemBusOp op, Addr addr) {
  REPRO_EXPECT(bus < buses_.size(), "bus index out of range");
  REPRO_EXPECT(op != MemBusOp::kIdle, "cannot submit an idle transaction");
  buses_[bus].queue.push_back(PendingTxn{0, op, addr});
  quiescent_ = false;
}

void MemoryBus::start_next(BusState& bus, std::uint32_t index, Cycle now) {
  if (bus.queue.empty()) {
    return;
  }
  const PendingTxn& head = bus.queue.front();
  if (head.op == MemBusOp::kInvalidate) {
    bus.active = head;
    hot_->remaining[index] = config_.invalidate_cycles;
    bus.queue.pop_front();
    return;
  }
  // Memory-touching transaction: only start when the bank can serve it.
  if (memory_.earliest_start(head.addr, now) > now) {
    return;  // Bank conflict: bus idles this cycle.
  }
  memory_.begin_access(head.addr, now);
  bus.active = head;
  hot_->remaining[index] = config_.transfer_cycles;
  bus.queue.pop_front();
}

void MemoryBus::tick(Cycle now) {
  if (quiescent_) {
    // Every bus latched kIdle last tick with an empty queue; nothing can
    // change until the next submit. Book one idle cycle per bus (lazily,
    // see op_cycles()) and keep the latched opcodes as they are.
    ++quiescent_ticks_;
    return;
  }
  BusHot& hot = *hot_;
  bool all_idle = true;
  for (std::uint32_t b = 0; b < buses_.size(); ++b) {
    BusState& bus = buses_[b];
    if (hot.remaining[b] == 0 && !bus.queue.empty()) {
      start_next(bus, b, now);
    }
    if (hot.remaining[b] > 0) {
      hot.current_op[b] = bus.active.op;
      --hot.remaining[b];
      if (hot.remaining[b] == 0 && bus.active.id != 0) {
        finished_.push_back(bus.active.id);
        ++hot.completion_epoch;
      }
      all_idle = false;
    } else {
      hot.current_op[b] = MemBusOp::kIdle;
      if (!bus.queue.empty()) {
        all_idle = false;  // Bank-blocked head can start without a submit.
      }
    }
    ++bus.op_cycle_counts[static_cast<std::size_t>(hot.current_op[b])];
  }
  quiescent_ = all_idle;
}

Cycle MemoryBus::quiet_horizon(Cycle now) const {
  Cycle horizon = kHorizonNever;
  for (std::uint32_t b = 0; b < buses_.size(); ++b) {
    const BusState& bus = buses_[b];
    const std::uint32_t remaining = hot_->remaining[b];
    if (remaining > 0) {
      // Counting down an active transaction is a pure repeat of the same
      // opcode; the tick that completes it (recording the completion and
      // starting the next queued txn) must run naively.
      horizon = std::min<Cycle>(horizon, remaining - 1);
    } else if (!bus.queue.empty()) {
      const PendingTxn& head = bus.queue.front();
      if (head.op == MemBusOp::kInvalidate) {
        return 0;  // Starts unconditionally on the next tick.
      }
      // Head is blocked on its memory bank: the bus idles until the
      // bank frees, and the tick that can start it must run naively.
      const Cycle start = memory_.earliest_start(head.addr, now);
      if (start <= now) {
        return 0;
      }
      horizon = std::min(horizon, start - now);
    }
    if (horizon == 0) {
      return 0;
    }
  }
  return horizon;
}

void MemoryBus::skip(Cycle cycles) {
  BusHot& hot = *hot_;
  for (std::uint32_t b = 0; b < buses_.size(); ++b) {
    BusState& bus = buses_[b];
    if (hot.remaining[b] > 0) {
      REPRO_EXPECT(cycles < hot.remaining[b],
                   "memory bus skip past a transaction completion");
      hot.current_op[b] = bus.active.op;
      hot.remaining[b] -= static_cast<std::uint32_t>(cycles);
      bus.op_cycle_counts[static_cast<std::size_t>(bus.active.op)] += cycles;
    } else {
      hot.current_op[b] = MemBusOp::kIdle;
      bus.op_cycle_counts[static_cast<std::size_t>(MemBusOp::kIdle)] +=
          cycles;
    }
  }
}

bool MemoryBus::take_finished(TxnId id) {
  const auto it = std::find(finished_.begin(), finished_.end(), id);
  if (it == finished_.end()) {
    return false;
  }
  *it = finished_.back();
  finished_.pop_back();
  return true;
}

MemBusOp MemoryBus::op_on(std::uint32_t bus) const {
  REPRO_EXPECT(bus < buses_.size(), "bus index out of range");
  return hot_->current_op[bus];
}

std::size_t MemoryBus::queue_depth(std::uint32_t bus) const {
  REPRO_EXPECT(bus < buses_.size(), "bus index out of range");
  return buses_[bus].queue.size();
}

void MemoryBus::serialize(capsule::Io& io) {
  const auto txn = [&io](PendingTxn& t) {
    io.u64(t.id);
    io.enum32(t.op);
    io.u64(t.addr);
  };
  for (std::uint32_t b = 0; b < buses_.size(); ++b) {
    BusState& bus = buses_[b];
    const std::uint64_t depth = io.extent(bus.queue.size());
    if (io.loading()) {
      bus.queue.assign(static_cast<std::size_t>(depth), PendingTxn{});
    }
    for (PendingTxn& queued : bus.queue) {
      txn(queued);
    }
    txn(bus.active);
    for (std::uint64_t& count : bus.op_cycle_counts) {
      io.u64(count);
    }
    io.u32(hot_->remaining[b]);
    io.enum32(hot_->current_op[b]);
  }
  const std::uint64_t finished = io.extent(finished_.size());
  if (io.loading()) {
    finished_.assign(static_cast<std::size_t>(finished), 0);
  }
  for (TxnId& id : finished_) {
    io.u64(id);
  }
  io.u64(next_id_);
  io.boolean(quiescent_);
  io.u64(quiescent_ticks_);
  io.u64(hot_->completion_epoch);
}

std::uint64_t MemoryBus::op_cycles(std::uint32_t bus, MemBusOp op) const {
  if (op == MemBusOp::kIdle) {
    REPRO_EXPECT(bus < buses_.size(), "bus index out of range");
    return buses_[bus].op_cycle_counts[static_cast<std::size_t>(op)] +
           quiescent_ticks_;
  }
  REPRO_EXPECT(bus < buses_.size(), "bus index out of range");
  return buses_[bus].op_cycle_counts[static_cast<std::size_t>(op)];
}

}  // namespace repro::mem
