#include "mem/memory_bus.hpp"

#include "base/expect.hpp"

namespace repro::mem {

MemoryBus::MemoryBus(const MemoryBusConfig& config, MainMemory& memory)
    : config_(config), memory_(memory), buses_(config.bus_count) {
  REPRO_EXPECT(config.bus_count > 0, "need at least one memory bus");
  REPRO_EXPECT(config.transfer_cycles > 0, "transfer time must be positive");
  REPRO_EXPECT(config.invalidate_cycles > 0,
               "invalidate time must be positive");
}

TxnId MemoryBus::submit(std::uint32_t bus, MemBusOp op, Addr addr) {
  REPRO_EXPECT(bus < buses_.size(), "bus index out of range");
  REPRO_EXPECT(op != MemBusOp::kIdle, "cannot submit an idle transaction");
  const TxnId id = next_id_++;
  buses_[bus].queue.push_back(PendingTxn{id, op, addr});
  return id;
}

void MemoryBus::start_next(BusState& bus, Cycle now) {
  if (bus.queue.empty()) {
    return;
  }
  const PendingTxn& head = bus.queue.front();
  if (head.op == MemBusOp::kInvalidate) {
    bus.active = head;
    bus.remaining = config_.invalidate_cycles;
    bus.queue.pop_front();
    return;
  }
  // Memory-touching transaction: only start when the bank can serve it.
  if (memory_.earliest_start(head.addr, now) > now) {
    return;  // Bank conflict: bus idles this cycle.
  }
  memory_.begin_access(head.addr, now);
  bus.active = head;
  bus.remaining = config_.transfer_cycles;
  bus.queue.pop_front();
}

void MemoryBus::tick(Cycle now) {
  for (BusState& bus : buses_) {
    if (bus.remaining == 0) {
      start_next(bus, now);
    }
    if (bus.remaining > 0) {
      bus.current_op = bus.active.op;
      --bus.remaining;
      if (bus.remaining == 0) {
        finished_.insert(bus.active.id);
      }
    } else {
      bus.current_op = MemBusOp::kIdle;
    }
    ++bus.op_cycle_counts[static_cast<std::size_t>(bus.current_op)];
  }
}

bool MemoryBus::take_finished(TxnId id) {
  const auto it = finished_.find(id);
  if (it == finished_.end()) {
    return false;
  }
  finished_.erase(it);
  return true;
}

MemBusOp MemoryBus::op_on(std::uint32_t bus) const {
  REPRO_EXPECT(bus < buses_.size(), "bus index out of range");
  return buses_[bus].current_op;
}

std::size_t MemoryBus::queue_depth(std::uint32_t bus) const {
  REPRO_EXPECT(bus < buses_.size(), "bus index out of range");
  return buses_[bus].queue.size();
}

std::uint64_t MemoryBus::op_cycles(std::uint32_t bus, MemBusOp op) const {
  REPRO_EXPECT(bus < buses_.size(), "bus index out of range");
  return buses_[bus].op_cycle_counts[static_cast<std::size_t>(op)];
}

}  // namespace repro::mem
