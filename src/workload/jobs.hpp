// Job factories: compose kernel-palette bodies into schedulable programs.
#pragma once

#include <cstdint>

#include "base/rng.hpp"
#include "base/types.hpp"
#include "os/job.hpp"
#include "workload/kernels.hpp"
#include "workload/trip_law.hpp"

namespace repro::workload {

struct NumericJobParams {
  KernelTuning tuning;
  TripLaw trip_law;
  std::uint32_t min_loops = 2;
  std::uint32_t max_loops = 5;
  /// Reps of the serial setup section before each loop.
  std::uint32_t min_setup_reps = 1;
  std::uint32_t max_setup_reps = 2;
  double dependence_prob = 0.05;
  double long_path_prob = 0.15;
  std::uint32_t long_path_extra_steps = 10;
};

struct SerialJobParams {
  KernelTuning tuning;
  std::uint32_t min_reps = 3;
  std::uint32_t max_reps = 12;
};

/// A FORTRAN-style numeric job: serial setup alternating with concurrent
/// DO loops whose trip counts follow the law.
[[nodiscard]] os::Job make_numeric_job(JobId id, Rng& rng,
                                       const NumericJobParams& params,
                                       Cycle now);

/// A detached serial process (editor/compiler/shell): serial phases only.
[[nodiscard]] os::Job make_serial_job(JobId id, Rng& rng,
                                      const SerialJobParams& params,
                                      Cycle now);

/// Disjoint per-job data region base (jobs never share cache lines).
[[nodiscard]] Addr job_data_base(JobId id);

}  // namespace repro::workload
