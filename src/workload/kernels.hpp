// The kernel palette: FORTRAN-style numeric bodies and serial/interactive
// code, parameterized the way the measured CSRD workload was composed.
//
// "Programs developed on the machine range from high level software
// (FORTRAN), such as structural mechanics and circuit simulation, to
// assembly-level kernels for linear system solving" (§1). The decisive
// contrast for the paper's results is data intensity: "the kinds of
// functions which are suitable for parallel encoding, such as matrix and
// concurrent vector operations, are usually much more data intensive than
// general serial code" (§5.3). Concurrent bodies here stream large arrays
// with little compute per access; serial bodies run mostly out of a hot
// set.
#pragma once

#include <cstdint>
#include <vector>

#include "base/rng.hpp"
#include "isa/kernel.hpp"

namespace repro::workload {

/// Scales the data intensity of the concurrent kernels (1.0 = the
/// calibrated default; the equal-locality ablation uses intensity that
/// matches serial code).
struct KernelTuning {
  /// Extra compute cycles per access for concurrent bodies (higher =>
  /// less data intensive).
  std::uint32_t concurrent_compute_cycles = 6;
  /// Fraction of concurrent steps that are register-vector operations.
  double vector_fraction = 0.3;
  /// Working set of one concurrent loop's shared array region.
  std::uint64_t concurrent_working_set = 256 * 1024;
  /// Streaming stride of concurrent bodies.
  std::uint64_t concurrent_stride = 8;
  /// Multiplier on the steps per concurrent iteration. Iteration duration
  /// must dominate the skew self-scheduling accumulates for loop drains
  /// to show the paper's long 2-active leftover tail (§4.3).
  std::uint32_t concurrent_steps_scale = 1;
  /// Hot-set fraction for serial bodies (higher => better locality).
  double serial_hot_fraction = 0.93;
};

// --- Concurrent DO-loop bodies (one iteration of the parallelized loop) --

/// Inner rows of a blocked matrix multiply: 2 loads + 1 RMW store per
/// step, heavy vector use.
[[nodiscard]] isa::KernelSpec matmul_row_body(const KernelTuning& tuning);

/// 5-point Jacobi relaxation row: reads neighbours, writes centre.
[[nodiscard]] isa::KernelSpec jacobi_row_body(const KernelTuning& tuning);

/// STREAM-triad-like vector update a(i) = b(i) + s*c(i).
[[nodiscard]] isa::KernelSpec triad_body(const KernelTuning& tuning);

/// Dot-product / reduction chunk: pure loads.
[[nodiscard]] isa::KernelSpec reduction_body(const KernelTuning& tuning);

/// Forward-elimination sweep of a linear solver: loads a pivot row,
/// updates a target row; bodies carry a dependence in the enclosing loop.
[[nodiscard]] isa::KernelSpec solver_sweep_body(const KernelTuning& tuning);

/// FFT butterfly stage: paired strided loads, heavy vector use.
[[nodiscard]] isa::KernelSpec fft_stage_body(const KernelTuning& tuning);

/// LU trailing-matrix update row: read pivot row, update target row.
[[nodiscard]] isa::KernelSpec lu_update_body(const KernelTuning& tuning);

/// All concurrent bodies (for random palette draws).
[[nodiscard]] std::vector<isa::KernelSpec> concurrent_palette(
    const KernelTuning& tuning);

// --- Serial code -----------------------------------------------------

/// Scalar setup/teardown around parallel loops (index arithmetic, small
/// tables): hot/cold with good locality.
[[nodiscard]] isa::KernelSpec scalar_setup_body(const KernelTuning& tuning);

/// Interactive editor burst: tiny working set, almost no misses.
[[nodiscard]] isa::KernelSpec editor_body(const KernelTuning& tuning);

/// Compiler pass: hot/cold with a code footprint larger than the CE
/// icache, so it spills instruction fetches to the shared cache.
[[nodiscard]] isa::KernelSpec compiler_body(const KernelTuning& tuning);

/// Shell / command processing: short bursts, moderate locality.
[[nodiscard]] isa::KernelSpec shell_body(const KernelTuning& tuning);

/// Circuit-simulation model evaluation: hot device models, cold sparse
/// matrix walks (the intro's "circuit simulation" workload, serial part).
[[nodiscard]] isa::KernelSpec circuit_sim_body(const KernelTuning& tuning);

/// All serial bodies (for random palette draws).
[[nodiscard]] std::vector<isa::KernelSpec> serial_palette(
    const KernelTuning& tuning);

/// Draw a random spec from a palette.
[[nodiscard]] isa::KernelSpec draw(const std::vector<isa::KernelSpec>& palette,
                                   Rng& rng);

}  // namespace repro::workload
