#include "workload/mix_io.hpp"

#include <charconv>
#include <sstream>

#include "base/expect.hpp"

namespace repro::workload {

namespace {

void emit(std::ostringstream& os, const char* key, double value) {
  os << key << " = " << value << '\n';
}

void emit(std::ostringstream& os, const char* key, std::uint64_t value) {
  os << key << " = " << value << '\n';
}

double parse_double(const std::string& value, const std::string& line) {
  double out = 0.0;
  const char* begin = value.data();
  const char* end = begin + value.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  REPRO_EXPECT(ec == std::errc{} && ptr == end,
               "malformed numeric value in: " + line);
  return out;
}

std::uint64_t parse_u64(const std::string& value, const std::string& line) {
  std::uint64_t out = 0;
  const char* begin = value.data();
  const char* end = begin + value.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  REPRO_EXPECT(ec == std::errc{} && ptr == end,
               "malformed integer value in: " + line);
  return out;
}

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) {
    return "";
  }
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

}  // namespace

std::string mix_to_text(const WorkloadMix& mix) {
  std::ostringstream os;
  os.precision(17);
  os << "# fx8-concurrency workload mix\n";
  os << "name = " << mix.name << '\n';
  emit(os, "concurrent_job_fraction", mix.concurrent_job_fraction);
  emit(os, "mean_idle_cycles", mix.mean_idle_cycles);
  emit(os, "mean_burst_jobs", mix.mean_burst_jobs);

  emit(os, "contention_job_fraction", mix.contention_job_fraction);
  emit(os, "contention.rcu_fraction", mix.contention.rcu_fraction);
  const LockJobParams& cl = mix.contention.lock;
  os << "contention.lock.type = " << to_string(cl.lock) << '\n';
  emit(os, "contention.lock.contenders", std::uint64_t{cl.contenders});
  emit(os, "contention.lock.min_rounds", std::uint64_t{cl.min_rounds});
  emit(os, "contention.lock.max_rounds", std::uint64_t{cl.max_rounds});
  emit(os, "contention.lock.critical_steps",
       std::uint64_t{cl.critical_steps});
  emit(os, "contention.lock.parallel_steps",
       std::uint64_t{cl.parallel_steps});
  emit(os, "contention.lock.ticket_handoff_steps",
       std::uint64_t{cl.ticket_handoff_steps});
  const RcuJobParams& cr = mix.contention.rcu;
  emit(os, "contention.rcu.readers", std::uint64_t{cr.readers});
  emit(os, "contention.rcu.min_rounds", std::uint64_t{cr.min_rounds});
  emit(os, "contention.rcu.max_rounds", std::uint64_t{cr.max_rounds});
  emit(os, "contention.rcu.reader_steps", std::uint64_t{cr.reader_steps});
  emit(os, "contention.rcu.writer_steps", std::uint64_t{cr.writer_steps});
  emit(os, "contention.rcu.writer_every", std::uint64_t{cr.writer_every});

  const NumericJobParams& n = mix.numeric;
  emit(os, "numeric.min_loops", std::uint64_t{n.min_loops});
  emit(os, "numeric.max_loops", std::uint64_t{n.max_loops});
  emit(os, "numeric.min_setup_reps", std::uint64_t{n.min_setup_reps});
  emit(os, "numeric.max_setup_reps", std::uint64_t{n.max_setup_reps});
  emit(os, "numeric.dependence_prob", n.dependence_prob);
  emit(os, "numeric.long_path_prob", n.long_path_prob);
  emit(os, "numeric.long_path_extra_steps",
       std::uint64_t{n.long_path_extra_steps});

  const TripLaw& t = n.trip_law;
  emit(os, "trip.weight_multiple_of_width", t.weight_multiple_of_width);
  emit(os, "trip.weight_two_leftover", t.weight_two_leftover);
  emit(os, "trip.weight_uniform", t.weight_uniform);
  emit(os, "trip.weight_narrow", t.weight_narrow);
  emit(os, "trip.min_batches", t.min_batches);
  emit(os, "trip.max_batches", t.max_batches);
  emit(os, "trip.width", std::uint64_t{t.width});

  const KernelTuning& k = n.tuning;
  emit(os, "tuning.concurrent_compute_cycles",
       std::uint64_t{k.concurrent_compute_cycles});
  emit(os, "tuning.vector_fraction", k.vector_fraction);
  emit(os, "tuning.concurrent_working_set", k.concurrent_working_set);
  emit(os, "tuning.concurrent_stride", k.concurrent_stride);
  emit(os, "tuning.concurrent_steps_scale",
       std::uint64_t{k.concurrent_steps_scale});
  emit(os, "tuning.serial_hot_fraction", k.serial_hot_fraction);

  emit(os, "serial.min_reps", std::uint64_t{mix.serial.min_reps});
  emit(os, "serial.max_reps", std::uint64_t{mix.serial.max_reps});
  return os.str();
}

WorkloadMix parse_mix(const std::string& text) {
  WorkloadMix mix;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#') {
      continue;
    }
    const auto eq = stripped.find('=');
    REPRO_EXPECT(eq != std::string::npos, "missing '=' in: " + line);
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    REPRO_EXPECT(!key.empty() && !value.empty(),
                 "empty key or value in: " + line);

    NumericJobParams& n = mix.numeric;
    TripLaw& t = n.trip_law;
    KernelTuning& k = n.tuning;
    if (key == "name") {
      mix.name = value;
    } else if (key == "concurrent_job_fraction") {
      mix.concurrent_job_fraction = parse_double(value, line);
    } else if (key == "mean_idle_cycles") {
      mix.mean_idle_cycles = parse_double(value, line);
    } else if (key == "mean_burst_jobs") {
      mix.mean_burst_jobs = parse_double(value, line);
    } else if (key == "contention_job_fraction") {
      mix.contention_job_fraction = parse_double(value, line);
    } else if (key == "contention.rcu_fraction") {
      mix.contention.rcu_fraction = parse_double(value, line);
    } else if (key == "contention.lock.type") {
      if (value == "ticket") {
        mix.contention.lock.lock = LockType::kTicket;
      } else if (value == "mcs") {
        mix.contention.lock.lock = LockType::kMcs;
      } else {
        REPRO_EXPECT(false, "unknown lock type in: " + line);
      }
    } else if (key == "contention.lock.contenders") {
      mix.contention.lock.contenders =
          static_cast<std::uint32_t>(parse_u64(value, line));
    } else if (key == "contention.lock.min_rounds") {
      mix.contention.lock.min_rounds =
          static_cast<std::uint32_t>(parse_u64(value, line));
    } else if (key == "contention.lock.max_rounds") {
      mix.contention.lock.max_rounds =
          static_cast<std::uint32_t>(parse_u64(value, line));
    } else if (key == "contention.lock.critical_steps") {
      mix.contention.lock.critical_steps =
          static_cast<std::uint32_t>(parse_u64(value, line));
    } else if (key == "contention.lock.parallel_steps") {
      mix.contention.lock.parallel_steps =
          static_cast<std::uint32_t>(parse_u64(value, line));
    } else if (key == "contention.lock.ticket_handoff_steps") {
      mix.contention.lock.ticket_handoff_steps =
          static_cast<std::uint32_t>(parse_u64(value, line));
    } else if (key == "contention.rcu.readers") {
      mix.contention.rcu.readers =
          static_cast<std::uint32_t>(parse_u64(value, line));
    } else if (key == "contention.rcu.min_rounds") {
      mix.contention.rcu.min_rounds =
          static_cast<std::uint32_t>(parse_u64(value, line));
    } else if (key == "contention.rcu.max_rounds") {
      mix.contention.rcu.max_rounds =
          static_cast<std::uint32_t>(parse_u64(value, line));
    } else if (key == "contention.rcu.reader_steps") {
      mix.contention.rcu.reader_steps =
          static_cast<std::uint32_t>(parse_u64(value, line));
    } else if (key == "contention.rcu.writer_steps") {
      mix.contention.rcu.writer_steps =
          static_cast<std::uint32_t>(parse_u64(value, line));
    } else if (key == "contention.rcu.writer_every") {
      mix.contention.rcu.writer_every =
          static_cast<std::uint32_t>(parse_u64(value, line));
    } else if (key == "numeric.min_loops") {
      n.min_loops = static_cast<std::uint32_t>(parse_u64(value, line));
    } else if (key == "numeric.max_loops") {
      n.max_loops = static_cast<std::uint32_t>(parse_u64(value, line));
    } else if (key == "numeric.min_setup_reps") {
      n.min_setup_reps = static_cast<std::uint32_t>(parse_u64(value, line));
    } else if (key == "numeric.max_setup_reps") {
      n.max_setup_reps = static_cast<std::uint32_t>(parse_u64(value, line));
    } else if (key == "numeric.dependence_prob") {
      n.dependence_prob = parse_double(value, line);
    } else if (key == "numeric.long_path_prob") {
      n.long_path_prob = parse_double(value, line);
    } else if (key == "numeric.long_path_extra_steps") {
      n.long_path_extra_steps =
          static_cast<std::uint32_t>(parse_u64(value, line));
    } else if (key == "trip.weight_multiple_of_width") {
      t.weight_multiple_of_width = parse_double(value, line);
    } else if (key == "trip.weight_two_leftover") {
      t.weight_two_leftover = parse_double(value, line);
    } else if (key == "trip.weight_uniform") {
      t.weight_uniform = parse_double(value, line);
    } else if (key == "trip.weight_narrow") {
      t.weight_narrow = parse_double(value, line);
    } else if (key == "trip.min_batches") {
      t.min_batches = parse_u64(value, line);
    } else if (key == "trip.max_batches") {
      t.max_batches = parse_u64(value, line);
    } else if (key == "trip.width") {
      t.width = static_cast<std::uint32_t>(parse_u64(value, line));
    } else if (key == "tuning.concurrent_compute_cycles") {
      k.concurrent_compute_cycles =
          static_cast<std::uint32_t>(parse_u64(value, line));
    } else if (key == "tuning.vector_fraction") {
      k.vector_fraction = parse_double(value, line);
    } else if (key == "tuning.concurrent_working_set") {
      k.concurrent_working_set = parse_u64(value, line);
    } else if (key == "tuning.concurrent_stride") {
      k.concurrent_stride = parse_u64(value, line);
    } else if (key == "tuning.concurrent_steps_scale") {
      k.concurrent_steps_scale =
          static_cast<std::uint32_t>(parse_u64(value, line));
    } else if (key == "tuning.serial_hot_fraction") {
      k.serial_hot_fraction = parse_double(value, line);
    } else if (key == "serial.min_reps") {
      mix.serial.min_reps = static_cast<std::uint32_t>(parse_u64(value, line));
    } else if (key == "serial.max_reps") {
      mix.serial.max_reps = static_cast<std::uint32_t>(parse_u64(value, line));
    } else {
      REPRO_EXPECT(false, "unknown key in: " + line);
    }
  }
  mix.validate();
  return mix;
}

}  // namespace repro::workload
