// WorkloadMix text serialization.
//
// Session mixtures are the study's experimental conditions; being able
// to write them down, share them, and reload them is what makes a
// measurement campaign repeatable. The format is a flat key=value file
// ('#' comments, blank lines ignored) covering every calibration knob a
// mix carries.
#pragma once

#include <string>

#include "workload/generator.hpp"

namespace repro::workload {

/// Serialize a mix to the key=value format (round-trips exactly through
/// parse_mix).
[[nodiscard]] std::string mix_to_text(const WorkloadMix& mix);

/// Parse a mix from the key=value format. Unknown keys and malformed
/// lines throw ContractViolation with the offending line; missing keys
/// keep their defaults. The result is validated before return.
[[nodiscard]] WorkloadMix parse_mix(const std::string& text);

}  // namespace repro::workload
