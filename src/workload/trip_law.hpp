// Trip-count distribution for parallelized DO loops.
//
// The paper's transition analysis hinges on how loop trip counts relate to
// the cluster width: "A simple reason for uneven distribution of processor
// activity is a loop count which is I = 8*j + 2" (§4.3). The law mixes
// three populations: counts that are a multiple of the cluster width
// (clean drains), counts with exactly two leftover iterations (the
// dominant 2-active transition mode), and uniform counts.
#pragma once

#include <cstdint>

#include "base/rng.hpp"

namespace repro::workload {

struct TripLaw {
  double weight_multiple_of_width = 0.36;
  double weight_two_leftover = 0.32;
  double weight_uniform = 0.22;
  /// Outer-parallelized loops with fewer iterations than processors
  /// (trip 2..width-1): these run the cluster at a lower concurrency
  /// level for their whole duration, decoupling Pc from the code's
  /// locality — the population behind the paper's Figure 11a band and
  /// the near-zero missrate-vs-Pc R² of Table 4.
  double weight_narrow = 0.10;
  /// Batches per loop (j in 8*j): trip counts span width*min..width*max.
  std::uint64_t min_batches = 3;
  std::uint64_t max_batches = 20;
  std::uint32_t width = 8;

  /// True when `trip` came from the narrow population.
  [[nodiscard]] bool is_narrow(std::uint64_t trip) const {
    return trip < width;
  }

  /// Draw a trip count.
  [[nodiscard]] std::uint64_t sample(Rng& rng) const;

  void validate() const;
};

}  // namespace repro::workload
