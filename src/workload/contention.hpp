// Contention-scenario workload family: synchronization-bound jobs.
//
// The paper's workload is numeric kernels, but the measurement pipeline
// is workload-agnostic (ROADMAP item 5). This family expresses classic
// shared-memory contention scenarios through the existing Job/phase
// machinery, so the study engine, rig batching, fast-forward, capsules,
// the result cache, and topology scale-out all apply unmodified:
//
//  * Coarse-grained locking (ticket and MCS-style queue locks): each
//    round is a dependence-free concurrent "parallel section" phase
//    followed by a fully dependence-chained "critical section" phase.
//    With dependence_prob = 1 every iteration i waits for iteration i-1
//    to complete over the CCB, so the critical sections execute in
//    strict FIFO ticket order — exactly a queue lock's admission order.
//    The two lock types differ in handoff cost: a ticket lock's release
//    bumps a shared now-serving line that every spinner re-reads (extra
//    shared-line RMW steps in the critical body), while an MCS lock
//    hands off through a single per-waiter flag (the CCB dependence
//    release is the local spin — no extra steps).
//  * RCU-style concurrent search: rounds of read-only concurrent
//    lookups over a shared structure, with a periodic serial writer
//    phase standing in for the update + grace period.
//
// The bodies are deliberately deterministic (no jitter, no vector
// steps, icache-resident, cache-sized working sets) so the analytical
// throughput predictor in src/model/lock_model.hpp shares these exact
// factories and can price a round in closed form.
#pragma once

#include <cstdint>

#include "base/rng.hpp"
#include "base/types.hpp"
#include "isa/kernel.hpp"
#include "os/job.hpp"

namespace repro::workload {

enum class LockType : std::uint8_t { kTicket, kMcs };

[[nodiscard]] const char* to_string(LockType lock);

struct LockJobParams {
  LockType lock = LockType::kTicket;
  /// Contending CEs (the trip count of both phases); 1..8, one cluster.
  std::uint32_t contenders = 8;
  /// Lock-acquisition rounds per job (min == max pins the count, which
  /// the artifacts rely on for exact throughput accounting).
  std::uint32_t min_rounds = 2;
  std::uint32_t max_rounds = 4;
  /// Steps inside the critical section / the parallel section between
  /// acquisitions (the tunable critical/parallel ratio).
  std::uint32_t critical_steps = 12;
  std::uint32_t parallel_steps = 48;
  /// Extra shared now-serving-line steps a ticket release pays and an
  /// MCS handoff does not.
  std::uint32_t ticket_handoff_steps = 2;
};

struct RcuJobParams {
  /// Concurrent readers per round; 1..8, one cluster.
  std::uint32_t readers = 8;
  std::uint32_t min_rounds = 2;
  std::uint32_t max_rounds = 4;
  /// Steps per read-side lookup and per writer update.
  std::uint32_t reader_steps = 24;
  std::uint32_t writer_steps = 30;
  /// A serial writer phase runs after every `writer_every` reader rounds.
  std::uint32_t writer_every = 2;
};

struct ContentionParams {
  /// Share of contention jobs that are RCU searches (the rest are lock
  /// jobs). Guarded like contention_job_fraction: 0 draws no RNG.
  double rcu_fraction = 0.25;
  LockJobParams lock;
  RcuJobParams rcu;

  void validate() const;
};

// Body factories, shared with the analytical predictor so the priced
// kernel and the executed kernel can never drift apart.
[[nodiscard]] isa::KernelSpec lock_parallel_body(const LockJobParams& params);
[[nodiscard]] isa::KernelSpec lock_critical_body(const LockJobParams& params);
[[nodiscard]] isa::KernelSpec rcu_reader_body(const RcuJobParams& params);
[[nodiscard]] isa::KernelSpec rcu_writer_body(const RcuJobParams& params);

/// A coarse-grained-locking job: `rounds` repetitions of parallel
/// section then FIFO-serialized critical section, all on one cluster.
[[nodiscard]] os::Job make_lock_job(JobId id, Rng& rng,
                                    const LockJobParams& params, Cycle now);

/// An RCU-style concurrent-search job: read-mostly concurrent rounds
/// with a periodic serial writer phase.
[[nodiscard]] os::Job make_rcu_job(JobId id, Rng& rng,
                                   const RcuJobParams& params, Cycle now);

}  // namespace repro::workload
