// Workload generator: keeps the system fed according to a mixture.
//
// A WorkloadMix describes one measurement session's environment: how
// likely the next submission is a concurrent numeric job vs. a detached
// serial process, how bursty submissions are, and how long the machine
// idles between bursts. The generator drives an os::System the way the
// user population drove the CSRD machine: it watches the run queue and
// submits new work when the machine drains.
#pragma once

#include <cstdint>
#include <string>

#include "base/rng.hpp"
#include "base/types.hpp"
#include "os/system.hpp"
#include "workload/contention.hpp"
#include "workload/jobs.hpp"

namespace repro::workload {

struct WorkloadMix {
  std::string name = "default";
  /// Probability the next submitted job is a concurrent numeric job.
  double concurrent_job_fraction = 0.5;
  /// Mean idle gap (cycles) between the queue draining and new arrivals.
  double mean_idle_cycles = 30000;
  /// Mean number of jobs per arrival burst (>= 1).
  double mean_burst_jobs = 1.6;
  /// Probability the next submitted job is a synchronization-bound
  /// contention job (drawn before the concurrent/serial split). Exactly
  /// 0.0 draws no RNG, so legacy mixes keep their job streams
  /// bit-identical to builds that predate the contention family.
  double contention_job_fraction = 0.0;
  ContentionParams contention;
  NumericJobParams numeric;
  SerialJobParams serial;

  void validate() const;
};

/// Capsule walk over every WorkloadMix knob. The mix is config, not
/// state — generators never capsule it — but cache fingerprints must
/// fold it in so that editing a preset can never stale-hit a study
/// result computed under the old conditions (see study_cache_key).
void serialize_config(capsule::Io& io, WorkloadMix& mix);

class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadMix mix, std::uint64_t seed);

  /// Call once per cycle before System::tick(); submits jobs when the
  /// machine has drained and the idle gap has elapsed.
  void tick(os::System& system);

  /// Event-horizon fast-forward: cycles for which tick(system) is
  /// guaranteed to be a no-op — forever while the system is busy (the
  /// system horizon bounds the drain), the rest of the idle gap while it
  /// is drained. 0 = the next tick may draw randomness or submit.
  [[nodiscard]] Cycle quiet_horizon(const os::System& system) const;

  [[nodiscard]] std::uint64_t jobs_generated() const { return next_job_id_; }
  [[nodiscard]] const WorkloadMix& mix() const { return mix_; }

  /// Capsule walk: RNG stream and arrival progress. The mix itself is
  /// config, pinned by the session's fingerprint rather than capsuled.
  void serialize(capsule::Io& io) {
    rng_.serialize(io);
    io.u64(next_job_id_);
    io.u64(next_arrival_);
    io.boolean(waiting_for_drain_);
  }

 private:
  void submit_burst(os::System& system);

  WorkloadMix mix_;
  Rng rng_;
  JobId next_job_id_ = 0;
  Cycle next_arrival_ = 0;
  bool waiting_for_drain_ = false;
};

}  // namespace repro::workload
