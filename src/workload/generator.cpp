#include "workload/generator.hpp"

#include <algorithm>
#include <utility>

#include "base/expect.hpp"

namespace repro::workload {

void WorkloadMix::validate() const {
  REPRO_EXPECT(concurrent_job_fraction >= 0.0 &&
                   concurrent_job_fraction <= 1.0,
               "concurrent job fraction must be a probability");
  REPRO_EXPECT(mean_idle_cycles >= 0.0, "idle gap cannot be negative");
  REPRO_EXPECT(mean_burst_jobs >= 1.0, "bursts contain at least one job");
  numeric.trip_law.validate();
}

WorkloadGenerator::WorkloadGenerator(WorkloadMix mix, std::uint64_t seed)
    : mix_(std::move(mix)), rng_(seed) {
  mix_.validate();
}

void WorkloadGenerator::submit_burst(os::System& system) {
  // Geometric-ish burst size with the configured mean.
  std::uint64_t burst = 1;
  const double p_more = 1.0 - 1.0 / mix_.mean_burst_jobs;
  while (burst < 8 && rng_.bernoulli(p_more)) {
    ++burst;
  }
  for (std::uint64_t i = 0; i < burst; ++i) {
    const JobId id = next_job_id_++;
    if (rng_.bernoulli(mix_.concurrent_job_fraction)) {
      system.scheduler().submit(
          make_numeric_job(id, rng_, mix_.numeric, system.now()));
    } else {
      system.scheduler().submit(
          make_serial_job(id, rng_, mix_.serial, system.now()));
    }
  }
}

Cycle WorkloadGenerator::quiet_horizon(const os::System& system) const {
  if (!system.scheduler().idle()) {
    // Busy system: ticks are no-ops once the drain flag is latched (the
    // first busy tick must run naively to latch it).
    return waiting_for_drain_ ? kHorizonNever : 0;
  }
  if (waiting_for_drain_) {
    return 0;  // The idle-gap draw (an RNG call) happens next tick.
  }
  const Cycle now = system.now();
  return now < next_arrival_ ? next_arrival_ - now : 0;
}

void WorkloadGenerator::tick(os::System& system) {
  if (!system.scheduler().idle()) {
    waiting_for_drain_ = true;
    return;
  }
  if (waiting_for_drain_) {
    // The machine just drained: draw the idle gap before the next burst.
    waiting_for_drain_ = false;
    const Cycle gap = mix_.mean_idle_cycles <= 0.0
                          ? 0
                          : static_cast<Cycle>(
                                rng_.exponential(mix_.mean_idle_cycles));
    next_arrival_ = system.now() + gap;
  }
  if (system.now() >= next_arrival_) {
    submit_burst(system);
  }
}

}  // namespace repro::workload
