#include "workload/generator.hpp"

#include <algorithm>
#include <utility>

#include "base/expect.hpp"

namespace repro::workload {

void WorkloadMix::validate() const {
  REPRO_EXPECT(concurrent_job_fraction >= 0.0 &&
                   concurrent_job_fraction <= 1.0,
               "concurrent job fraction must be a probability");
  REPRO_EXPECT(mean_idle_cycles >= 0.0, "idle gap cannot be negative");
  REPRO_EXPECT(mean_burst_jobs >= 1.0, "bursts contain at least one job");
  REPRO_EXPECT(contention_job_fraction >= 0.0 &&
                   contention_job_fraction <= 1.0,
               "contention job fraction must be a probability");
  contention.validate();
  numeric.trip_law.validate();
}

namespace {

void serialize_tuning(capsule::Io& io, KernelTuning& k) {
  io.u32(k.concurrent_compute_cycles);
  io.f64(k.vector_fraction);
  io.u64(k.concurrent_working_set);
  io.u64(k.concurrent_stride);
  io.u32(k.concurrent_steps_scale);
  io.f64(k.serial_hot_fraction);
}

}  // namespace

void serialize_config(capsule::Io& io, WorkloadMix& mix) {
  io.str(mix.name);
  io.f64(mix.concurrent_job_fraction);
  io.f64(mix.mean_idle_cycles);
  io.f64(mix.mean_burst_jobs);
  io.f64(mix.contention_job_fraction);
  io.f64(mix.contention.rcu_fraction);
  LockJobParams& lock = mix.contention.lock;
  io.enum32(lock.lock);
  io.u32(lock.contenders);
  io.u32(lock.min_rounds);
  io.u32(lock.max_rounds);
  io.u32(lock.critical_steps);
  io.u32(lock.parallel_steps);
  io.u32(lock.ticket_handoff_steps);
  RcuJobParams& rcu = mix.contention.rcu;
  io.u32(rcu.readers);
  io.u32(rcu.min_rounds);
  io.u32(rcu.max_rounds);
  io.u32(rcu.reader_steps);
  io.u32(rcu.writer_steps);
  io.u32(rcu.writer_every);
  NumericJobParams& n = mix.numeric;
  serialize_tuning(io, n.tuning);
  TripLaw& t = n.trip_law;
  io.f64(t.weight_multiple_of_width);
  io.f64(t.weight_two_leftover);
  io.f64(t.weight_uniform);
  io.f64(t.weight_narrow);
  io.u64(t.min_batches);
  io.u64(t.max_batches);
  io.u32(t.width);
  io.u32(n.min_loops);
  io.u32(n.max_loops);
  io.u32(n.min_setup_reps);
  io.u32(n.max_setup_reps);
  io.f64(n.dependence_prob);
  io.f64(n.long_path_prob);
  io.u32(n.long_path_extra_steps);
  serialize_tuning(io, mix.serial.tuning);
  io.u32(mix.serial.min_reps);
  io.u32(mix.serial.max_reps);
}

WorkloadGenerator::WorkloadGenerator(WorkloadMix mix, std::uint64_t seed)
    : mix_(std::move(mix)), rng_(seed) {
  mix_.validate();
}

void WorkloadGenerator::submit_burst(os::System& system) {
  // Geometric-ish burst size with the configured mean.
  std::uint64_t burst = 1;
  const double p_more = 1.0 - 1.0 / mix_.mean_burst_jobs;
  while (burst < 8 && rng_.bernoulli(p_more)) {
    ++burst;
  }
  for (std::uint64_t i = 0; i < burst; ++i) {
    const JobId id = next_job_id_++;
    // The > 0 guard keeps legacy mixes off this branch without drawing,
    // preserving their RNG streams bit for bit.
    if (mix_.contention_job_fraction > 0.0 &&
        rng_.bernoulli(mix_.contention_job_fraction)) {
      if (mix_.contention.rcu_fraction > 0.0 &&
          rng_.bernoulli(mix_.contention.rcu_fraction)) {
        system.scheduler().submit(
            make_rcu_job(id, rng_, mix_.contention.rcu, system.now()));
      } else {
        system.scheduler().submit(
            make_lock_job(id, rng_, mix_.contention.lock, system.now()));
      }
    } else if (rng_.bernoulli(mix_.concurrent_job_fraction)) {
      system.scheduler().submit(
          make_numeric_job(id, rng_, mix_.numeric, system.now()));
    } else {
      system.scheduler().submit(
          make_serial_job(id, rng_, mix_.serial, system.now()));
    }
  }
}

Cycle WorkloadGenerator::quiet_horizon(const os::System& system) const {
  if (!system.scheduler().idle()) {
    // Busy system: ticks are no-ops once the drain flag is latched (the
    // first busy tick must run naively to latch it).
    return waiting_for_drain_ ? kHorizonNever : 0;
  }
  if (waiting_for_drain_) {
    return 0;  // The idle-gap draw (an RNG call) happens next tick.
  }
  const Cycle now = system.now();
  return now < next_arrival_ ? next_arrival_ - now : 0;
}

void WorkloadGenerator::tick(os::System& system) {
  if (!system.scheduler().idle()) {
    waiting_for_drain_ = true;
    return;
  }
  if (waiting_for_drain_) {
    // The machine just drained: draw the idle gap before the next burst.
    waiting_for_drain_ = false;
    const Cycle gap = mix_.mean_idle_cycles <= 0.0
                          ? 0
                          : static_cast<Cycle>(
                                rng_.exponential(mix_.mean_idle_cycles));
    next_arrival_ = system.now() + gap;
  }
  if (system.now() >= next_arrival_) {
    submit_burst(system);
  }
}

}  // namespace repro::workload
