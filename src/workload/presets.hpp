// Session presets: the nine measurement sessions.
//
// "Nine sessions of this type were performed on seven different midweek
// days, when the machine is used most heavily. Each session lasted between
// four and eight hours" (§3.5), and "Distributions of processor activity
// in individual sessions showed significant variation" (§4.2, Appendix A).
// The presets vary the concurrent-job fraction and load so the per-sample
// Workload Concurrency spans 0..1 while the all-session aggregate lands
// near the paper's Cw ≈ 0.35.
#pragma once

#include <vector>

#include "workload/generator.hpp"

namespace repro::workload {

/// The nine random-sampling session mixes (§3.5, Table 2 / Table A.1).
[[nodiscard]] std::vector<WorkloadMix> session_presets();

/// A single heavily-concurrent mix used for the triggered high-concurrency
/// and transition captures (§3.5, second measurement group).
[[nodiscard]] WorkloadMix high_concurrency_mix();

/// Ablation: concurrent kernels rebuilt with serial-like locality, used to
/// show the Cw–missrate coupling comes from data intensity (DESIGN.md §6.4).
[[nodiscard]] WorkloadMix equal_locality_mix();

/// Contention scenario: every job is a coarse-grained-locking job of the
/// given lock type (ticket or MCS queue lock), back-to-back bursts. The
/// lock_scaling and predictor_validation artifacts sweep this mix.
[[nodiscard]] WorkloadMix lock_contention_mix(LockType lock);

/// Contention scenario: RCU-style concurrent searches with a periodic
/// serial writer.
[[nodiscard]] WorkloadMix rcu_search_mix();

}  // namespace repro::workload
