#include "workload/presets.hpp"

namespace repro::workload {

namespace {

WorkloadMix base_mix() {
  WorkloadMix mix;
  mix.concurrent_job_fraction = 0.5;
  mix.mean_idle_cycles = 30000;
  mix.mean_burst_jobs = 1.6;
  return mix;
}

}  // namespace

std::vector<WorkloadMix> session_presets() {
  // (concurrent fraction, mean idle cycles, burst) per session; the spread
  // mirrors the day-to-day variation of Appendix A.
  struct Knobs {
    const char* name;
    double concurrent;
    double idle;
    double burst;
    /// Share of the session's loops that are outer-parallelized (narrow):
    /// different application codebases favour different loop shapes, which
    /// is what spreads samples across the (Cw, Pc) plane independently.
    double narrow;
  };
  const Knobs knobs[] = {
      {"session-1-light-interactive", 0.25, 95000, 1.2, 0.10},
      {"session-2-mixed", 0.50, 15000, 1.6, 0.08},
      {"session-3-numeric-heavy", 0.75, 6000, 2.2, 0.15},
      {"session-4-idle-morning", 0.40, 130000, 1.2, 0.05},
      {"session-5-steady-dev", 0.55, 12000, 1.8, 0.12},
      {"session-6-batch-numeric", 0.85, 5000, 2.4, 0.04},
      {"session-7-compile-test", 0.35, 38000, 1.8, 0.12},
      {"session-8-mixed-busy", 0.55, 10000, 2.0, 0.12},
      {"session-9-serial-day", 0.18, 85000, 1.3, 0.10},
  };
  std::vector<WorkloadMix> sessions;
  for (const Knobs& k : knobs) {
    WorkloadMix mix = base_mix();
    mix.name = k.name;
    mix.concurrent_job_fraction = k.concurrent;
    mix.mean_idle_cycles = k.idle;
    mix.mean_burst_jobs = k.burst;
    // Reweight the narrow population, keeping the other modes in their
    // default proportion.
    const double rest = 1.0 - k.narrow;
    mix.numeric.trip_law.weight_narrow = k.narrow;
    mix.numeric.trip_law.weight_multiple_of_width = rest * 0.40;
    mix.numeric.trip_law.weight_two_leftover = rest * 0.36;
    mix.numeric.trip_law.weight_uniform = rest * 0.24;
    sessions.push_back(mix);
  }
  return sessions;
}

WorkloadMix high_concurrency_mix() {
  WorkloadMix mix = base_mix();
  mix.name = "high-concurrency-trigger";
  mix.concurrent_job_fraction = 0.95;
  mix.mean_idle_cycles = 4000;
  mix.mean_burst_jobs = 2.0;
  // The transition sessions observed wide loops draining; the trip law
  // leans on the 8j+2 leftover mode the paper singles out (§4.3).
  mix.numeric.trip_law.weight_multiple_of_width = 0.10;
  mix.numeric.trip_law.weight_two_leftover = 0.78;
  mix.numeric.trip_law.weight_uniform = 0.12;
  mix.numeric.trip_law.weight_narrow = 0.0;
  mix.numeric.trip_law.min_batches = 2;
  mix.numeric.trip_law.max_batches = 8;
  // Long iterations relative to drain skew: the leftover pair's final
  // iteration is what the monitor sees as the dominant 2-active state.
  mix.numeric.tuning.concurrent_steps_scale = 3;
  mix.numeric.long_path_prob = 0.02;
  mix.numeric.dependence_prob = 0.0;
  return mix;
}

WorkloadMix lock_contention_mix(LockType lock) {
  WorkloadMix mix = base_mix();
  mix.name = std::string("lock-contention-") + to_string(lock);
  mix.contention_job_fraction = 1.0;
  mix.contention.rcu_fraction = 0.0;
  mix.contention.lock.lock = lock;
  // Keep the machine under sustained lock pressure: short idle gaps,
  // multi-job bursts.
  mix.mean_idle_cycles = 5000;
  mix.mean_burst_jobs = 2.0;
  return mix;
}

WorkloadMix rcu_search_mix() {
  WorkloadMix mix = base_mix();
  mix.name = "rcu-search";
  mix.contention_job_fraction = 1.0;
  mix.contention.rcu_fraction = 1.0;
  mix.mean_idle_cycles = 5000;
  mix.mean_burst_jobs = 2.0;
  return mix;
}

WorkloadMix equal_locality_mix() {
  WorkloadMix mix = base_mix();
  mix.name = "ablation-equal-locality";
  // Concurrent kernels rebuilt to look like serial code: small effective
  // footprint via a large stride-reuse hot set and much more compute per
  // access. The parallel/serial locality contrast disappears.
  mix.numeric.tuning.concurrent_compute_cycles = 8;
  mix.numeric.tuning.vector_fraction = 0.1;
  mix.numeric.tuning.concurrent_working_set = 8 * 1024;
  mix.numeric.tuning.concurrent_stride = 8;
  return mix;
}

}  // namespace repro::workload
