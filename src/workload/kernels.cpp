#include "workload/kernels.hpp"

#include "base/expect.hpp"

namespace repro::workload {

isa::KernelSpec matmul_row_body(const KernelTuning& tuning) {
  isa::KernelSpec k;
  k.name = "matmul-row";
  k.steps = 24 * tuning.concurrent_steps_scale;
  k.compute_cycles = tuning.concurrent_compute_cycles;
  k.compute_jitter = 0;  // vectorized bodies run uniform iterations
  k.loads_per_step = 2;
  k.stores_per_step = 1;
  k.pattern = isa::AccessPattern::kStreaming;
  k.stride_bytes = tuning.concurrent_stride;
  k.working_set_bytes = tuning.concurrent_working_set;
  k.code_bytes = 3 * 1024;
  k.vector_fraction = tuning.vector_fraction;
  k.vector_cycles = 10;
  k.validate();
  return k;
}

isa::KernelSpec jacobi_row_body(const KernelTuning& tuning) {
  isa::KernelSpec k;
  k.name = "jacobi-row";
  k.steps = 32 * tuning.concurrent_steps_scale;
  k.compute_cycles = tuning.concurrent_compute_cycles + 1;
  k.compute_jitter = 0;  // vectorized bodies run uniform iterations
  k.loads_per_step = 4;  // N/S/E/W neighbours
  k.stores_per_step = 1;
  k.pattern = isa::AccessPattern::kStreaming;
  k.stride_bytes = tuning.concurrent_stride;
  k.working_set_bytes = tuning.concurrent_working_set;
  k.code_bytes = 4 * 1024;
  k.vector_fraction = tuning.vector_fraction * 0.5;
  k.vector_cycles = 8;
  k.validate();
  return k;
}

isa::KernelSpec triad_body(const KernelTuning& tuning) {
  isa::KernelSpec k;
  k.name = "triad";
  k.steps = 16 * tuning.concurrent_steps_scale;
  k.compute_cycles = tuning.concurrent_compute_cycles;
  k.loads_per_step = 2;
  k.stores_per_step = 1;
  k.pattern = isa::AccessPattern::kStreaming;
  k.stride_bytes = tuning.concurrent_stride;
  k.working_set_bytes = tuning.concurrent_working_set;
  k.code_bytes = 2 * 1024;
  k.vector_fraction = tuning.vector_fraction * 1.5 > 1.0
                          ? 1.0
                          : tuning.vector_fraction * 1.5;
  k.vector_cycles = 12;
  k.validate();
  return k;
}

isa::KernelSpec reduction_body(const KernelTuning& tuning) {
  isa::KernelSpec k;
  k.name = "reduction";
  k.steps = 20 * tuning.concurrent_steps_scale;
  k.compute_cycles = tuning.concurrent_compute_cycles;
  k.loads_per_step = 2;
  k.stores_per_step = 0;
  k.pattern = isa::AccessPattern::kStreaming;
  k.stride_bytes = tuning.concurrent_stride;
  k.working_set_bytes = tuning.concurrent_working_set;
  k.code_bytes = 2 * 1024;
  k.vector_fraction = tuning.vector_fraction;
  k.vector_cycles = 8;
  k.validate();
  return k;
}

isa::KernelSpec solver_sweep_body(const KernelTuning& tuning) {
  isa::KernelSpec k;
  k.name = "solver-sweep";
  k.steps = 28 * tuning.concurrent_steps_scale;
  k.compute_cycles = tuning.concurrent_compute_cycles + 2;
  k.compute_jitter = 1;  // mild: pivot-row length varies
  k.loads_per_step = 2;
  k.stores_per_step = 1;
  k.pattern = isa::AccessPattern::kStreaming;
  k.stride_bytes = tuning.concurrent_stride;
  k.working_set_bytes = tuning.concurrent_working_set;
  k.code_bytes = 5 * 1024;
  k.vector_fraction = tuning.vector_fraction * 0.7;
  k.vector_cycles = 10;
  k.validate();
  return k;
}

isa::KernelSpec fft_stage_body(const KernelTuning& tuning) {
  isa::KernelSpec k;
  k.name = "fft-stage";
  k.steps = 20 * tuning.concurrent_steps_scale;
  k.compute_cycles = tuning.concurrent_compute_cycles + 2;
  k.loads_per_step = 2;   // butterfly pair
  k.stores_per_step = 1;  // in-place update
  k.pattern = isa::AccessPattern::kStreaming;
  k.stride_bytes = tuning.concurrent_stride * 2;  // complex elements
  k.working_set_bytes = tuning.concurrent_working_set;
  k.code_bytes = 3 * 1024;
  k.vector_fraction =
      tuning.vector_fraction * 1.3 > 1.0 ? 1.0 : tuning.vector_fraction * 1.3;
  k.vector_cycles = 12;
  k.validate();
  return k;
}

isa::KernelSpec lu_update_body(const KernelTuning& tuning) {
  isa::KernelSpec k;
  k.name = "lu-update";
  k.steps = 26 * tuning.concurrent_steps_scale;
  k.compute_cycles = tuning.concurrent_compute_cycles;
  k.loads_per_step = 2;   // pivot element + target element
  k.stores_per_step = 1;
  k.pattern = isa::AccessPattern::kStreaming;
  k.stride_bytes = tuning.concurrent_stride;
  k.working_set_bytes = tuning.concurrent_working_set;
  k.code_bytes = 4 * 1024;
  k.vector_fraction = tuning.vector_fraction;
  k.vector_cycles = 10;
  k.validate();
  return k;
}

std::vector<isa::KernelSpec> concurrent_palette(const KernelTuning& tuning) {
  return {matmul_row_body(tuning), jacobi_row_body(tuning),
          triad_body(tuning),      reduction_body(tuning),
          solver_sweep_body(tuning), fft_stage_body(tuning),
          lu_update_body(tuning)};
}

isa::KernelSpec scalar_setup_body(const KernelTuning& tuning) {
  isa::KernelSpec k;
  k.name = "scalar-setup";
  k.steps = 40;
  k.compute_cycles = 6;
  k.compute_jitter = 2;
  k.loads_per_step = 1;
  k.stores_per_step = 0;
  k.pattern = isa::AccessPattern::kHotCold;
  k.hot_fraction = tuning.serial_hot_fraction;
  k.hot_set_bytes = 4 * 1024;
  k.stride_bytes = 16;
  k.working_set_bytes = 64 * 1024;
  k.code_bytes = 6 * 1024;
  k.validate();
  return k;
}

isa::KernelSpec editor_body(const KernelTuning& tuning) {
  isa::KernelSpec k;
  k.name = "editor";
  k.steps = 60;
  k.compute_cycles = 8;
  k.compute_jitter = 3;
  k.loads_per_step = 1;
  k.stores_per_step = 0;
  k.pattern = isa::AccessPattern::kHotCold;
  k.hot_fraction = tuning.serial_hot_fraction + 0.05 > 1.0
                       ? 1.0
                       : tuning.serial_hot_fraction + 0.05;
  k.hot_set_bytes = 2 * 1024;
  k.stride_bytes = 16;
  k.working_set_bytes = 32 * 1024;
  k.code_bytes = 10 * 1024;
  k.validate();
  return k;
}

isa::KernelSpec compiler_body(const KernelTuning& tuning) {
  isa::KernelSpec k;
  k.name = "compiler";
  k.steps = 48;
  k.compute_cycles = 5;
  k.compute_jitter = 2;
  k.loads_per_step = 2;
  k.stores_per_step = 1;
  k.pattern = isa::AccessPattern::kHotCold;
  k.hot_fraction = tuning.serial_hot_fraction - 0.08;
  k.hot_set_bytes = 8 * 1024;
  k.stride_bytes = 24;
  k.working_set_bytes = 128 * 1024;
  k.code_bytes = 40 * 1024;  // spills the 16 KB icache
  k.validate();
  return k;
}

isa::KernelSpec shell_body(const KernelTuning& tuning) {
  isa::KernelSpec k;
  k.name = "shell";
  k.steps = 24;
  k.compute_cycles = 7;
  k.compute_jitter = 3;
  k.loads_per_step = 1;
  k.stores_per_step = 1;
  k.pattern = isa::AccessPattern::kHotCold;
  k.hot_fraction = tuning.serial_hot_fraction;
  k.hot_set_bytes = 3 * 1024;
  k.stride_bytes = 16;
  k.working_set_bytes = 48 * 1024;
  k.code_bytes = 12 * 1024;
  k.validate();
  return k;
}

isa::KernelSpec circuit_sim_body(const KernelTuning& tuning) {
  isa::KernelSpec k;
  k.name = "circuit-sim";
  k.steps = 56;
  k.compute_cycles = 9;  // device-model evaluation is compute heavy
  k.compute_jitter = 4;  // model complexity varies per device
  k.loads_per_step = 2;
  k.stores_per_step = 1;
  k.pattern = isa::AccessPattern::kHotCold;
  k.hot_fraction = tuning.serial_hot_fraction - 0.15;  // sparse walks
  k.hot_set_bytes = 6 * 1024;   // device model tables
  k.stride_bytes = 40;          // sparse matrix entries
  k.working_set_bytes = 192 * 1024;
  k.code_bytes = 24 * 1024;     // spills the icache a little
  k.validate();
  return k;
}

std::vector<isa::KernelSpec> serial_palette(const KernelTuning& tuning) {
  return {scalar_setup_body(tuning), editor_body(tuning),
          compiler_body(tuning), shell_body(tuning),
          circuit_sim_body(tuning)};
}

isa::KernelSpec draw(const std::vector<isa::KernelSpec>& palette, Rng& rng) {
  REPRO_EXPECT(!palette.empty(), "cannot draw from an empty palette");
  return palette[rng.uniform(palette.size())];
}

}  // namespace repro::workload
