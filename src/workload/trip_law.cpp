#include "workload/trip_law.hpp"

#include <array>

#include "base/expect.hpp"

namespace repro::workload {

void TripLaw::validate() const {
  REPRO_EXPECT(weight_multiple_of_width >= 0.0 && weight_two_leftover >= 0.0 &&
                   weight_uniform >= 0.0 && weight_narrow >= 0.0,
               "trip law weights must be non-negative");
  REPRO_EXPECT(weight_multiple_of_width + weight_two_leftover +
                       weight_uniform + weight_narrow >
                   0.0,
               "trip law weights must not all be zero");
  REPRO_EXPECT(min_batches > 0 && min_batches <= max_batches,
               "batch range must be non-empty");
  REPRO_EXPECT(width >= 1, "cluster width must be at least 1");
}

std::uint64_t TripLaw::sample(Rng& rng) const {
  validate();
  const std::array<double, 4> weights = {weight_multiple_of_width,
                                         weight_two_leftover, weight_uniform,
                                         weight_narrow};
  const std::size_t mode = rng.discrete(weights);
  const std::uint64_t batches = static_cast<std::uint64_t>(
      rng.uniform_in(static_cast<std::int64_t>(min_batches),
                     static_cast<std::int64_t>(max_batches)));
  switch (mode) {
    case 0:
      return batches * width;
    case 1:
      return batches * width + 2;
    case 2:
      // Uniform over the same span, never below one batch.
      return width * min_batches +
             rng.uniform(width * (max_batches - min_batches) + width - 1);
    default:
      // Narrow: fewer iterations than processors (2..width-1); width 1
      // degenerates to a single iteration.
      return width <= 2 ? 1 : 2 + rng.uniform(width - 2);
  }
}

}  // namespace repro::workload
