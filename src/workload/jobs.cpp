#include "workload/jobs.hpp"

#include <utility>

#include "isa/program.hpp"

namespace repro::workload {

Addr job_data_base(JobId id) {
  // 16 MB slots rotating through a 3.1 GB window, clear of the IP regions
  // at 0xE0000000 and of the per-phase code images (+128 MB per base).
  return 0x01000000ULL + (id % 180) * 0x01000000ULL;
}

os::Job make_numeric_job(JobId id, Rng& rng, const NumericJobParams& params,
                         Cycle now) {
  const auto palette = concurrent_palette(params.tuning);
  isa::ProgramBuilder builder("numeric-" + std::to_string(id));
  builder.seed(rng.next()).data_base(job_data_base(id));

  const auto loops = static_cast<std::uint32_t>(
      rng.uniform_in(params.min_loops, params.max_loops));
  const isa::KernelSpec setup = scalar_setup_body(params.tuning);
  for (std::uint32_t i = 0; i < loops; ++i) {
    const auto reps = static_cast<std::uint64_t>(
        rng.uniform_in(params.min_setup_reps, params.max_setup_reps));
    builder.serial(setup, reps);

    isa::ConcurrentLoopPhase loop;
    loop.body = draw(palette, rng);
    loop.trip_count = params.trip_law.sample(rng);
    if (params.trip_law.is_narrow(loop.trip_count)) {
      // Outer-parallelized loop: few iterations, each doing the work of a
      // whole batch, so the cluster runs at trip_count-active for a
      // comparable duration. Each iteration covers correspondingly more
      // of the arrays, striding across rows — per-access locality is
      // worse by roughly the width deficit, which keeps the loop's
      // aggregate cache-miss volume independent of how many processors
      // the compiler spread it over (paper §5.1/§5.3: miss behaviour
      // follows the code's data intensity, not its processor count).
      loop.body.steps *= 10;
      loop.body.stride_bytes *=
          8 / static_cast<std::uint32_t>(loop.trip_count);
    }
    loop.shared_data = true;
    loop.dependence_prob =
        loop.body.name == "solver-sweep" ? params.dependence_prob * 4
                                         : params.dependence_prob;
    if (loop.dependence_prob > 1.0) {
      loop.dependence_prob = 1.0;
    }
    loop.long_path_prob = params.long_path_prob;
    loop.long_path_extra_steps = params.long_path_extra_steps;
    builder.concurrent_loop(loop);
  }
  // Teardown: write out results serially.
  builder.serial(setup, 1);

  os::Job job;
  job.id = id;
  job.cls = os::JobClass::kCluster;
  job.program = builder.build();
  job.submitted_at = now;
  return job;
}

os::Job make_serial_job(JobId id, Rng& rng, const SerialJobParams& params,
                        Cycle now) {
  const auto palette = serial_palette(params.tuning);
  isa::ProgramBuilder builder("serial-" + std::to_string(id));
  builder.seed(rng.next()).data_base(job_data_base(id));
  const auto reps = static_cast<std::uint64_t>(
      rng.uniform_in(params.min_reps, params.max_reps));
  builder.serial(draw(palette, rng), reps);

  os::Job job;
  job.id = id;
  job.cls = os::JobClass::kSerialDetached;
  job.program = builder.build();
  job.submitted_at = now;
  return job;
}

}  // namespace repro::workload
