#include "workload/contention.hpp"

#include <string>

#include "base/expect.hpp"
#include "isa/program.hpp"
#include "workload/jobs.hpp"

namespace repro::workload {

const char* to_string(LockType lock) {
  switch (lock) {
    case LockType::kTicket:
      return "ticket";
    case LockType::kMcs:
      return "mcs";
  }
  return "unknown";
}

void ContentionParams::validate() const {
  REPRO_EXPECT(rcu_fraction >= 0.0 && rcu_fraction <= 1.0,
               "rcu_fraction must be in [0, 1]");
  REPRO_EXPECT(lock.contenders >= 1 && lock.contenders <= 8,
               "lock contenders must be 1..8 (one cluster)");
  REPRO_EXPECT(lock.min_rounds >= 1, "lock rounds must be >= 1");
  REPRO_EXPECT(lock.min_rounds <= lock.max_rounds,
               "lock min_rounds must be <= max_rounds");
  REPRO_EXPECT(lock.critical_steps >= 1, "critical_steps must be >= 1");
  REPRO_EXPECT(lock.parallel_steps >= 1, "parallel_steps must be >= 1");
  REPRO_EXPECT(rcu.readers >= 1 && rcu.readers <= 8,
               "rcu readers must be 1..8 (one cluster)");
  REPRO_EXPECT(rcu.min_rounds >= 1, "rcu rounds must be >= 1");
  REPRO_EXPECT(rcu.min_rounds <= rcu.max_rounds,
               "rcu min_rounds must be <= max_rounds");
  REPRO_EXPECT(rcu.reader_steps >= 1, "reader_steps must be >= 1");
  REPRO_EXPECT(rcu.writer_steps >= 1, "writer_steps must be >= 1");
  REPRO_EXPECT(rcu.writer_every >= 1, "writer_every must be >= 1");
}

namespace {

// Contention bodies are deliberately predictor-friendly: no jitter, no
// vector steps, icache-resident code, and a working set small enough to
// stay cache-resident after the first round, so the analytical model's
// all-hit step cost (compute + loads + stores) holds in steady state.
isa::KernelSpec contention_body(const char* name, std::uint32_t steps,
                                std::uint32_t loads, std::uint32_t stores) {
  isa::KernelSpec k;
  k.name = name;
  k.steps = steps;
  k.compute_cycles = 3;
  k.compute_jitter = 0;
  k.loads_per_step = loads;
  k.stores_per_step = stores;
  k.pattern = isa::AccessPattern::kStreaming;
  k.stride_bytes = 8;
  k.working_set_bytes = 2 * 1024;
  k.code_bytes = 2 * 1024;
  k.vector_fraction = 0.0;
  k.validate();
  return k;
}

}  // namespace

isa::KernelSpec lock_parallel_body(const LockJobParams& params) {
  // Private per-thread work between acquisitions: mostly compute with a
  // light read stream.
  return contention_body("lock-parallel", params.parallel_steps, 1, 0);
}

isa::KernelSpec lock_critical_body(const LockJobParams& params) {
  // Shared-structure update under the lock: read-modify-write traffic.
  // A ticket lock's release additionally bumps the shared now-serving
  // line, and every still-queued spinner re-reads it — modelled as extra
  // RMW steps per critical section. An MCS handoff writes one private
  // per-waiter flag (the CCB dependence release), costing nothing extra.
  std::uint32_t steps = params.critical_steps;
  if (params.lock == LockType::kTicket) {
    steps += params.ticket_handoff_steps;
  }
  return contention_body("lock-critical", steps, 1, 1);
}

isa::KernelSpec rcu_reader_body(const RcuJobParams& params) {
  // Read-side lookup: pointer-chase reads, no stores (no write-side
  // synchronization on the read path is the whole point of RCU).
  return contention_body("rcu-reader", params.reader_steps, 2, 0);
}

isa::KernelSpec rcu_writer_body(const RcuJobParams& params) {
  // Copy + publish + grace-period stand-in, run as a serial phase.
  return contention_body("rcu-writer", params.writer_steps, 1, 1);
}

os::Job make_lock_job(JobId id, Rng& rng, const LockJobParams& params,
                      Cycle now) {
  isa::ProgramBuilder builder(std::string("lock-") + to_string(params.lock) +
                              "-" + std::to_string(id));
  builder.seed(rng.next()).data_base(job_data_base(id));

  const auto rounds = static_cast<std::uint32_t>(
      rng.uniform_in(params.min_rounds, params.max_rounds));
  const isa::KernelSpec parallel = lock_parallel_body(params);
  const isa::KernelSpec critical = lock_critical_body(params);
  for (std::uint32_t r = 0; r < rounds; ++r) {
    isa::ConcurrentLoopPhase section;
    section.trip_count = params.contenders;
    section.body = parallel;
    section.shared_data = false;  // private per-thread work
    section.dependence_prob = 0.0;
    builder.concurrent_loop(section);

    isa::ConcurrentLoopPhase acquire;
    acquire.trip_count = params.contenders;
    acquire.body = critical;
    acquire.shared_data = true;  // the lock-protected structure
    // dependence_prob = 1 chains every iteration on its predecessor, so
    // critical sections run one at a time in FIFO ticket order — the
    // CCB's dependence release is the lock handoff.
    acquire.dependence_prob = 1.0;
    builder.concurrent_loop(acquire);
  }

  os::Job job;
  job.id = id;
  job.cls = os::JobClass::kCluster;
  job.program = builder.build();
  job.submitted_at = now;
  return job;
}

os::Job make_rcu_job(JobId id, Rng& rng, const RcuJobParams& params,
                     Cycle now) {
  isa::ProgramBuilder builder("rcu-search-" + std::to_string(id));
  builder.seed(rng.next()).data_base(job_data_base(id));

  const auto rounds = static_cast<std::uint32_t>(
      rng.uniform_in(params.min_rounds, params.max_rounds));
  const isa::KernelSpec reader = rcu_reader_body(params);
  const isa::KernelSpec writer = rcu_writer_body(params);
  for (std::uint32_t r = 0; r < rounds; ++r) {
    isa::ConcurrentLoopPhase lookup;
    lookup.trip_count = params.readers;
    lookup.body = reader;
    lookup.shared_data = true;  // all readers walk the shared structure
    lookup.dependence_prob = 0.0;  // readers never block each other
    builder.concurrent_loop(lookup);
    if ((r + 1) % params.writer_every == 0) {
      builder.serial(writer, 1);
    }
  }

  os::Job job;
  job.id = id;
  job.cls = os::JobClass::kCluster;
  job.program = builder.build();
  job.submitted_at = now;
  return job;
}

}  // namespace repro::workload
