// WorkloadStudy: the full Chapter 3-4 random-sampling experiment.
//
// Runs the nine measurement sessions (or any set of mixes) end-to-end:
// build a system, drive it with the session's workload mixture, sample it
// with the logic analyzer + kernel counters, and return the analyzed
// samples plus aggregate measures.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/measures.hpp"
#include "core/sample.hpp"
#include "instr/session_controller.hpp"
#include "os/system.hpp"
#include "workload/generator.hpp"
#include "workload/presets.hpp"

namespace repro::core {

struct StudyConfig {
  os::SystemConfig system;
  instr::SamplingConfig sampling;
  /// Samples per session. The paper groups ~65 five-minute samples over
  /// nine sessions (Figure 4 shows 65); we default to ~8 per session.
  std::uint32_t samples_per_session = 8;
  /// Warm-up cycles before sampling starts (machine reaches steady state).
  Cycle warmup_cycles = 20000;
  std::uint64_t seed = 0x19870301;
  /// Worker threads for the per-mix sessions. 0 = auto (the FX8_THREADS
  /// environment variable if set, else the usable-core count); 1 = the
  /// serial code path. Results are bit-identical for every value — see
  /// docs/parallel_execution.md for the seeding contract.
  std::uint32_t threads = 0;
  /// Event-horizon fast-forward: advance deterministic quiet stretches
  /// of the simulation in one jump instead of cycle-by-cycle. Results
  /// are bit-identical either way; false forces the naive path
  /// (differential testing). See docs/parallel_execution.md.
  bool fast_forward = true;
  /// Independent simulator replicates per session; each replicate warms
  /// up its own os::System and takes an even share of the session's
  /// samples. 1 = the classic single-system session. Higher values give
  /// the thread pool finer tasks (9 sessions become 9*R units) at the
  /// cost of extra warmups. The decomposition — and therefore the sample
  /// population — is a pure function of this config value, never of the
  /// thread count, so bit-identity across thread counts is preserved.
  std::uint32_t replicates_per_session = 1;
  /// Rig batching: advance up to this many of a session's replicate rigs
  /// in lockstep through the wide lane kernel (fx8::RigBatch +
  /// instr::run_session_batch) instead of one at a time. 0 = auto
  /// (min(replicates, 8)); 1 = the serial per-rig path. Same-session
  /// replicates are grouped into consecutive chunks of this size, and a
  /// group is the thread pool's task unit. Per-rig results are
  /// bit-identical for every value; checkpoint-sharded studies
  /// (checkpoint_every_samples != 0) always take the serial path, since
  /// capsule round-trips happen at per-rig sample boundaries.
  std::uint32_t rig_batch = 0;
  /// Checkpoint sharding: 0 = off; N > 0 breaks every replicate into
  /// shards of N samples, and at each shard boundary the whole session
  /// rig (system, generator, controller) is capsuled, torn down, rebuilt
  /// from config, and restored from the capsule before continuing. The
  /// restored rig is bit-identical to the uninterrupted one (the restore
  /// is digest-checked), so results match the N = 0 run exactly — this is
  /// the in-engine proof that checkpoints carry the entire state.
  std::uint32_t checkpoint_every_samples = 0;
};

/// The worker count a config resolves to: `threads` if nonzero, else
/// FX8_THREADS from the environment, else hardware_concurrency.
[[nodiscard]] std::uint32_t resolve_threads(const StudyConfig& config);

/// Canonical walk over EVERY StudyConfig field (system, sampling,
/// populations, seed, and the perf-only knobs). The result cache hashes
/// this walk into its keys, so changing any field — even one that is
/// proven not to change results, like `threads` — misses the cache and
/// recomputes. Conservative by design: a key must never alias two
/// configs (docs/benchmarks.md, "The result cache").
void serialize_config(capsule::Io& io, StudyConfig& config);

struct SessionResult {
  std::string name;
  std::vector<AnalyzedSample> samples;
  /// Session-total hardware counts (sum over samples).
  instr::EventCounts totals;
  /// Measures over the session totals.
  ConcurrencyMeasures overall;
  /// Fast-forward accounting summed over the session's replicates
  /// (bookkeeping only — identical simulation state either way).
  instr::FastForwardStats ff;

  void serialize(capsule::Io& io);
};

struct StudyResult {
  std::vector<SessionResult> sessions;
  instr::EventCounts totals;        ///< All-session aggregate.
  ConcurrencyMeasures overall;      ///< Table 2.
  instr::FastForwardStats ff;       ///< All-session fast-forward totals.

  /// Every analyzed sample across all sessions.
  [[nodiscard]] std::vector<AnalyzedSample> all_samples() const;

  /// Capsule walk over the whole result — sessions, totals, aggregate
  /// measures, fast-forward accounting — so the result cache restores a
  /// study bit-identically without re-running it.
  void serialize(capsule::Io& io);
};

/// Run one session with the given mix.
[[nodiscard]] SessionResult run_session(const workload::WorkloadMix& mix,
                                        const StudyConfig& config,
                                        std::uint64_t session_seed);

/// Run a whole study over the given mixes (defaults to the nine presets).
[[nodiscard]] StudyResult run_study(
    std::span<const workload::WorkloadMix> mixes, const StudyConfig& config);

/// Convenience: the paper's nine-session study.
[[nodiscard]] StudyResult run_default_study(const StudyConfig& config);

}  // namespace repro::core
