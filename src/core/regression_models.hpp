// The Chapter 5 regression pipeline: median-binned second-order models of
// system measures against the concurrency measures (Tables 3 and 4).
#pragma once

#include <cmath>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/sample.hpp"
#include "stats/regression.hpp"

namespace repro::core {

/// Which system measure a model explains.
enum class SystemMeasure : std::uint8_t {
  kMissRate,
  kBusBusy,
  kPageFaultRate,
};

[[nodiscard]] std::string measure_name(SystemMeasure measure);

/// Which concurrency measure is the regressor.
enum class Regressor : std::uint8_t { kCw, kPc };

struct MedianModel {
  SystemMeasure measure{};
  Regressor regressor{};
  /// The (midpoint, median) pairs the model was fitted to.
  std::vector<std::pair<double, double>> median_points;
  /// coeffs[0] = C, coeffs[1] = beta1, coeffs[2] = beta2. Absent when the
  /// fit degenerated (too few occupied bins or zero regressor variance);
  /// the NaN accessors below feed the JSON writer's null path.
  std::optional<stats::PolyFit> fit;

  [[nodiscard]] double predict(double x) const {
    return fit ? (*fit)(x) : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double r_squared() const {
    return fit ? fit->r_squared : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double coeff(std::size_t k) const {
    return fit && k < fit->coeffs.size()
               ? fit->coeffs[k]
               : std::numeric_limits<double>::quiet_NaN();
  }
};

/// Cw midpoints "(0.0, 0.1, ... 1.0)" (§5.2).
[[nodiscard]] std::vector<double> cw_midpoints();
/// Pc midpoints "(2.0, 3.0 ... 8.0)" (§5.2).
[[nodiscard]] std::vector<double> pc_midpoints();

/// Fit one model. For Regressor::kPc only samples with defined Pc enter.
[[nodiscard]] MedianModel fit_model(std::span<const AnalyzedSample> samples,
                                    SystemMeasure measure,
                                    Regressor regressor);

/// All six models of Tables 3-4.
[[nodiscard]] std::vector<MedianModel> fit_all_models(
    std::span<const AnalyzedSample> samples);

}  // namespace repro::core
