#include "core/checkpoint.hpp"

namespace repro::core {

void serialize_session(capsule::Io& io, os::System& system,
                       workload::WorkloadGenerator& generator,
                       instr::SessionController& controller) {
  system.serialize(io);
  generator.serialize(io);
  controller.serialize(io);
}

std::uint64_t session_digest(os::System& system,
                             workload::WorkloadGenerator& generator,
                             instr::SessionController& controller) {
  capsule::Io io = capsule::Io::digester();
  serialize_session(io, system, generator, controller);
  return io.digest();
}

std::vector<std::uint8_t> save_session(
    os::System& system, workload::WorkloadGenerator& generator,
    instr::SessionController& controller) {
  capsule::Io io = capsule::Io::saver();
  std::uint64_t fingerprint = system.config_fingerprint();
  io.u64(fingerprint);
  serialize_session(io, system, generator, controller);
  return capsule::seal(io.bytes());
}

void load_session(const std::vector<std::uint8_t>& sealed,
                  os::System& system,
                  workload::WorkloadGenerator& generator,
                  instr::SessionController& controller) {
  capsule::Io io = capsule::Io::loader(capsule::unseal(sealed));
  std::uint64_t fingerprint = 0;
  io.u64(fingerprint);
  if (fingerprint != system.config_fingerprint()) {
    throw capsule::CapsuleError(
        "capsule: session config fingerprint mismatch");
  }
  serialize_session(io, system, generator, controller);
  if (!io.exhausted()) {
    throw capsule::CapsuleError(
        "capsule: trailing bytes after session walk");
  }
}

void StudyCheckpoint::serialize(capsule::Io& io) {
  io.u32(samples_done);
  io.u32(samples_total);
  const std::uint64_t count = io.extent(records.size());
  if (io.loading()) {
    records.assign(static_cast<std::size_t>(count), instr::SampleRecord{});
  }
  for (instr::SampleRecord& record : records) {
    record.serialize(io);
  }
}

std::vector<std::uint8_t> save_study_checkpoint(
    const StudyCheckpoint& progress, os::System& system,
    workload::WorkloadGenerator& generator,
    instr::SessionController& controller) {
  capsule::Io io = capsule::Io::saver();
  std::uint64_t fingerprint = system.config_fingerprint();
  io.u64(fingerprint);
  StudyCheckpoint copy = progress;
  copy.serialize(io);
  serialize_session(io, system, generator, controller);
  return capsule::seal(io.bytes());
}

StudyCheckpoint load_study_checkpoint(
    const std::vector<std::uint8_t>& sealed, os::System& system,
    workload::WorkloadGenerator& generator,
    instr::SessionController& controller) {
  capsule::Io io = capsule::Io::loader(capsule::unseal(sealed));
  std::uint64_t fingerprint = 0;
  io.u64(fingerprint);
  if (fingerprint != system.config_fingerprint()) {
    throw capsule::CapsuleError(
        "capsule: study checkpoint config fingerprint mismatch");
  }
  StudyCheckpoint progress;
  progress.serialize(io);
  serialize_session(io, system, generator, controller);
  if (!io.exhausted()) {
    throw capsule::CapsuleError(
        "capsule: trailing bytes after study checkpoint");
  }
  return progress;
}

}  // namespace repro::core
