#include "core/transition.hpp"

#include <memory>

#include "base/expect.hpp"
#include "base/rng.hpp"
#include "core/checkpoint.hpp"

namespace repro::core {

double TransitionResult::transition_share(std::uint32_t j) const {
  const std::uint64_t total = transition_records();
  if (total == 0) {
    return 0.0;
  }
  return static_cast<double>(state_counts[j]) / static_cast<double>(total);
}

std::uint64_t TransitionResult::transition_records() const {
  std::uint64_t total = 0;
  for (std::uint32_t j = 2; j < width; ++j) {
    total += state_counts[j];
  }
  return total;
}

double TransitionResult::idle_overhead(std::uint32_t at_width) const {
  std::uint64_t lost = 0;
  std::uint64_t possible = 0;
  for (std::uint32_t j = 2; j < at_width; ++j) {
    lost += static_cast<std::uint64_t>(at_width - j) * state_counts[j];
    possible += static_cast<std::uint64_t>(at_width) * state_counts[j];
  }
  return possible == 0 ? 0.0
                       : static_cast<double>(lost) /
                             static_cast<double>(possible);
}

namespace {

/// The transition experiment's measurement rig; member order matters
/// (the controller references the system and the generator).
struct CaptureRig {
  os::System system;
  workload::WorkloadGenerator generator;
  instr::SessionController controller;

  CaptureRig(const workload::WorkloadMix& mix,
             const TransitionConfig& config)
      : system(config.system),
        generator(mix, mix64(config.seed ^ 0x777)),
        controller(system, generator, config.sampling,
                   mix64(config.seed ^ 0x888)) {}
};

}  // namespace

TransitionResult run_transition_study(const workload::WorkloadMix& mix,
                                      const TransitionConfig& config,
                                      instr::TriggerMode trigger) {
  auto rig = std::make_unique<CaptureRig>(mix, config);

  for (Cycle c = 0; c < config.warmup_cycles; ++c) {
    rig->generator.tick(rig->system);
    rig->system.tick();
  }

  TransitionResult result;
  const std::uint32_t width = rig->system.machine().total_ces();
  result.width = width;
  for (std::uint32_t cap = 0; cap < config.captures; ++cap) {
    if (config.checkpoint_between_captures && cap > 0) {
      // Round-trip the rig through a capsule between captures; the
      // restored copy must digest-match the one torn down, so the
      // capture stream continues bit-identically.
      const std::uint64_t before =
          session_digest(rig->system, rig->generator, rig->controller);
      const auto sealed =
          save_session(rig->system, rig->generator, rig->controller);
      rig = std::make_unique<CaptureRig>(mix, config);
      load_session(sealed, rig->system, rig->generator, rig->controller);
      REPRO_ENSURE(session_digest(rig->system, rig->generator,
                                  rig->controller) == before,
                   "checkpoint restore diverged from the saved capture rig");
    }
    const auto buffer =
        rig->controller.capture_triggered(trigger, config.capture_timeout);
    if (!buffer) {
      ++result.captures_timed_out;
      continue;
    }
    ++result.captures_completed;
    for (const instr::ProbeRecord& record : *buffer) {
      const std::uint32_t active = record.active_count();
      ++result.state_counts[active];
      // Per-processor tallies over the transition states proper, the
      // population Figure 7 describes.
      if (active >= 2 && active < width) {
        for (CeId ce = 0; ce < width; ++ce) {
          if (record.ce_active(ce)) {
            ++result.processor_counts[ce];
          }
        }
      }
    }
  }
  return result;
}

void serialize_config(capsule::Io& io, TransitionConfig& config) {
  os::serialize_config(io, config.system);
  instr::serialize_config(io, config.sampling);
  io.u32(config.captures);
  io.u64(config.capture_timeout);
  io.u64(config.warmup_cycles);
  io.u64(config.seed);
  io.boolean(config.checkpoint_between_captures);
}

}  // namespace repro::core
