#include "core/speedup.hpp"

#include <sstream>

#include "base/expect.hpp"
#include "base/text.hpp"
#include "fx8/mmu.hpp"
#include "isa/program.hpp"

namespace repro::core {

namespace {

Cycle run_on_width(const isa::KernelSpec& body, std::uint64_t trip_count,
                   std::uint32_t width, const SpeedupOptions& options) {
  fx8::NoFaultMmu mmu;
  fx8::MachineConfig config = options.machine;
  config.cluster.n_ces = width;
  if (width != kMaxCes) {
    // The calibrated outer-first order is an 8-wide artifact.
    config.cluster.policy = fx8::ServicePolicy::kAscending;
  }
  if (options.quiesce_ips) {
    config.ip.duty = 0.0;
  }
  fx8::Machine machine(config, mmu);

  isa::ConcurrentLoopPhase loop;
  loop.body = body;
  loop.trip_count = trip_count;
  const isa::Program program = isa::ProgramBuilder("speedup")
                                   .data_base(0x01000000)
                                   .concurrent_loop(loop)
                                   .build();
  machine.cluster().load(&program, 1);
  while (machine.cluster().busy()) {
    machine.tick();
  }
  return machine.now();
}

}  // namespace

SpeedupCurve measure_speedup(const isa::KernelSpec& body,
                             std::uint64_t trip_count,
                             const SpeedupOptions& options) {
  REPRO_EXPECT(trip_count > 0, "speedup needs at least one iteration");
  REPRO_EXPECT(options.max_processors >= 1 &&
                   options.max_processors <= kMaxCes,
               "processor range must be 1..8");
  body.validate();

  SpeedupCurve curve;
  curve.kernel = body.name;
  curve.trip_count = trip_count;
  curve.t1 = run_on_width(body, trip_count, 1, options);

  for (std::uint32_t p = 1; p <= options.max_processors; ++p) {
    SpeedupPoint point;
    point.processors = p;
    point.time = p == 1 ? curve.t1
                        : run_on_width(body, trip_count, p, options);
    point.speedup =
        static_cast<double>(curve.t1) / static_cast<double>(point.time);
    point.efficiency = point.speedup / static_cast<double>(p);
    curve.points.push_back(point);
  }
  return curve;
}

std::string render_speedup_table(const SpeedupCurve& curve) {
  std::ostringstream os;
  os << curve.kernel << " (trip " << curve.trip_count << ", T1 = "
     << curve.t1 << " cycles)\n";
  os << "  p   ";
  for (const SpeedupPoint& point : curve.points) {
    os << pad_left(std::to_string(point.processors), 7);
  }
  os << "\n  S_p ";
  for (const SpeedupPoint& point : curve.points) {
    os << pad_left(fixed(point.speedup, 2), 7);
  }
  os << "\n  E_p ";
  for (const SpeedupPoint& point : curve.points) {
    os << pad_left(fixed(point.efficiency, 2), 7);
  }
  os << '\n';
  return os.str();
}

}  // namespace repro::core
