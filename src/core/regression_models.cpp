#include "core/regression_models.hpp"

#include "base/expect.hpp"

namespace repro::core {

std::string measure_name(SystemMeasure measure) {
  switch (measure) {
    case SystemMeasure::kMissRate:
      return "Median Miss Rate";
    case SystemMeasure::kBusBusy:
      return "Median CE Bus Busy";
    case SystemMeasure::kPageFaultRate:
      return "Median Page Fault Rate";
  }
  return "?";
}

std::vector<double> cw_midpoints() {
  std::vector<double> mids;
  for (int i = 0; i <= 10; ++i) {
    mids.push_back(static_cast<double>(i) / 10.0);
  }
  return mids;
}

std::vector<double> pc_midpoints() {
  std::vector<double> mids;
  for (int i = 2; i <= 8; ++i) {
    mids.push_back(static_cast<double>(i));
  }
  return mids;
}

namespace {

std::vector<double> measure_column(std::span<const AnalyzedSample> samples,
                                   SystemMeasure measure) {
  switch (measure) {
    case SystemMeasure::kMissRate:
      return column_miss_rate(samples);
    case SystemMeasure::kBusBusy:
      return column_bus_busy(samples);
    case SystemMeasure::kPageFaultRate:
      return column_page_fault_rate(samples);
  }
  return {};
}

}  // namespace

MedianModel fit_model(std::span<const AnalyzedSample> samples,
                      SystemMeasure measure, Regressor regressor) {
  MedianModel model;
  model.measure = measure;
  model.regressor = regressor;

  std::vector<AnalyzedSample> filtered;
  std::span<const AnalyzedSample> used = samples;
  if (regressor == Regressor::kPc) {
    filtered = with_defined_pc(samples);
    used = filtered;
  }
  REPRO_EXPECT(!used.empty(), "no samples to fit a model to");

  const std::vector<double> x =
      regressor == Regressor::kCw ? column_cw(used) : column_pc(used);
  const std::vector<double> y = measure_column(used, measure);
  const std::vector<double> mids =
      regressor == Regressor::kCw ? cw_midpoints() : pc_midpoints();

  model.median_points = stats::median_by_midpoint(x, y, mids);
  model.fit = stats::fit_median_model(x, y, mids);
  return model;
}

std::vector<MedianModel> fit_all_models(
    std::span<const AnalyzedSample> samples) {
  std::vector<MedianModel> models;
  for (const Regressor regressor : {Regressor::kCw, Regressor::kPc}) {
    for (const SystemMeasure measure :
         {SystemMeasure::kMissRate, SystemMeasure::kBusBusy,
          SystemMeasure::kPageFaultRate}) {
      models.push_back(fit_model(samples, measure, regressor));
    }
  }
  return models;
}

}  // namespace repro::core
