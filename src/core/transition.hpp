// TransitionStudy: the Chapter 4.3 triggered-capture experiments.
//
// "monitoring began when processor activity changed from all processors
// active (full-concurrency) to a lower concurrency level". The analysis
// keeps the transition states proper — records with 2..P-1 processors
// active — and tallies per-processor activity across them (Figures 6, 7).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "base/types.hpp"
#include "core/study.hpp"
#include "instr/logic_analyzer.hpp"
#include "instr/session_controller.hpp"
#include "workload/generator.hpp"

namespace repro::core {

struct TransitionConfig {
  os::SystemConfig system;
  instr::SamplingConfig sampling;  ///< buffer_depth reused for captures.
  std::uint32_t captures = 40;     ///< Triggered acquisitions to gather.
  Cycle capture_timeout = 400000;  ///< Per-capture trigger wait bound.
  Cycle warmup_cycles = 20000;
  std::uint64_t seed = 0x19870402;
  /// Capsule the whole rig between captures and restore it into a
  /// freshly built one (digest-checked). Results are bit-identical with
  /// the uninterrupted run; true exercises the checkpoint path.
  bool checkpoint_between_captures = false;
};

/// Canonical walk over EVERY TransitionConfig field, for the result
/// cache's key derivation: any field change changes the key.
void serialize_config(capsule::Io& io, TransitionConfig& config);

struct TransitionResult {
  /// Records with exactly j processors active, j = 0..P, across captures
  /// (sized for the widest topology; rows past the machine width stay 0).
  std::array<std::uint64_t, kMaxTopologyCes + 1> state_counts{};
  /// Records in which processor j was active (transition records only).
  std::array<std::uint64_t, kMaxTopologyCes> processor_counts{};
  std::uint32_t captures_completed = 0;
  std::uint32_t captures_timed_out = 0;
  /// Machine width P the captures ran at (bounds the transition states).
  std::uint32_t width = kMaxCes;

  /// Fraction of transition-state records (2..P-1 active) at exactly j.
  [[nodiscard]] double transition_share(std::uint32_t j) const;
  /// Total transition-state records.
  [[nodiscard]] std::uint64_t transition_records() const;

  /// The §4.3 multiprocessing overhead: processor-cycles lost to idling
  /// during captured transition records, as a fraction of the processor-
  /// cycles those records could have delivered. "If the transition from
  /// P processors to one is instantaneous, processors do not incur any
  /// idle time" — this measures how far the machine is from that ideal.
  [[nodiscard]] double idle_overhead(std::uint32_t at_width = kMaxCes) const;

  /// Capsule walk over the whole result, for the result cache.
  void serialize(capsule::Io& io) {
    for (std::uint64_t& n : state_counts) {
      io.u64(n);
    }
    for (std::uint64_t& n : processor_counts) {
      io.u64(n);
    }
    io.u32(captures_completed);
    io.u32(captures_timed_out);
    io.u32(width);
  }
};

/// Run the transition experiment with the given mix (defaults used by the
/// benches: workload::high_concurrency_mix()).
[[nodiscard]] TransitionResult run_transition_study(
    const workload::WorkloadMix& mix, const TransitionConfig& config,
    instr::TriggerMode trigger =
        instr::TriggerMode::kTransitionFromFull);

}  // namespace repro::core
