#include "core/presets.hpp"

namespace repro::core::presets {

StudyConfig bench_study() {
  StudyConfig config;
  config.samples_per_session = 12;
  config.sampling.interval_cycles = 80000;
  config.warmup_cycles = 20000;
  config.seed = 0x19870301;
  return config;
}

StudyConfig quick_study() {
  StudyConfig config = bench_study();
  config.samples_per_session = 6;
  config.sampling.interval_cycles = 40000;
  config.warmup_cycles = 10000;
  return config;
}

TransitionConfig bench_transition() {
  TransitionConfig config;
  config.captures = 60;
  config.capture_timeout = 400000;
  config.warmup_cycles = 20000;
  config.seed = 0x19870402;
  return config;
}

TransitionConfig quick_transition() {
  TransitionConfig config = bench_transition();
  config.captures = 20;
  return config;
}

StudyConfig example_study() {
  StudyConfig config;
  config.samples_per_session = 6;
  config.sampling.interval_cycles = 60000;
  return config;
}

TransitionConfig example_transition() {
  TransitionConfig config;
  config.captures = 25;
  return config;
}

StudyConfig small_study() {
  StudyConfig config;
  config.samples_per_session = 3;
  config.sampling.interval_cycles = 25000;
  config.warmup_cycles = 5000;
  return config;
}

StudyConfig tiny_study() {
  StudyConfig config;
  config.samples_per_session = 2;
  config.sampling.interval_cycles = 15000;
  config.warmup_cycles = 3000;
  return config;
}

TransitionConfig tiny_transition() {
  TransitionConfig config;
  config.captures = 3;
  config.capture_timeout = 300000;
  config.warmup_cycles = 3000;
  return config;
}

}  // namespace repro::core::presets
