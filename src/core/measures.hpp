// The paper's concurrency measures (§4.1).
//
//   c_j      = P(number of active processors = j)                    (4.1)
//   Cw       = Σ_{j=2..P} c_j          — Workload Concurrency        (4.2)
//   c_{j|c}  = P(active = j | active > 1)                            (4.3)
//   Pc       = Σ_{j=2..P} j · c_{j|c}  — Mean Concurrency Level      (4.4)
//
// "The above measures may be applied at any level of multiprocessing
// capability of a given machine" — they are computed from nothing but the
// active-processor histogram (num_j of Table 1), at whatever scope that
// histogram was collected (sample, session, or the whole study).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "base/capsule.hpp"
#include "base/types.hpp"

namespace repro::core {

struct ConcurrencyMeasures {
  /// Machine width P the measures were computed against (total CEs
  /// across clusters on wide topologies).
  std::uint32_t width = kMaxCes;

  /// c_j for j = 0..P (entries above `width` are zero).
  std::array<double, kMaxTopologyCes + 1> c{};

  /// Workload Concurrency, eq. 4.2.
  double cw = 0.0;

  /// c_{j|c} for j = 2..P; undefined (all zero) when cw == 0.
  std::array<double, kMaxTopologyCes + 1> c_cond{};

  /// Mean Concurrency Level, eq. 4.4; only meaningful if pc_defined.
  double pc = 0.0;
  /// "If all c_j values from 2 to P are 0, this value is undefined."
  bool pc_defined = false;

  /// Compute from an active-processor histogram: counts[j] = number of
  /// records with j processors active, j = 0..width.
  static ConcurrencyMeasures from_counts(
      std::span<const std::uint64_t> counts);

  /// One-line summary for reports.
  [[nodiscard]] std::string describe() const;

  /// Capsule walk: derived measures travel whole inside cached results
  /// (src/artifacts/result_store.hpp) rather than being refit on load.
  void serialize(capsule::Io& io) {
    io.u32(width);
    for (double& v : c) {
      io.f64(v);
    }
    io.f64(cw);
    for (double& v : c_cond) {
      io.f64(v);
    }
    io.f64(pc);
    io.boolean(pc_defined);
  }
};

}  // namespace repro::core
