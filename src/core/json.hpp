// Minimal structured-JSON writer for the export surface.
//
// The artifact suite emits one machine-readable document per run
// (fx8bench --json); the CSV exporter next door covers per-sample data.
// This is a writer, not a parser: ordered objects, arrays, strings,
// numbers, booleans, null. Non-finite numbers serialize as null so the
// document stays valid JSON even when a metric is undefined (NaN metrics
// additionally fail their artifact's checks — see artifacts/artifact.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace repro::core {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  Json(bool value) : kind_(Kind::kBool), bool_(value) {}  // NOLINT
  Json(double value) : kind_(Kind::kNumber), number_(value) {}  // NOLINT
  Json(int value) : Json(static_cast<double>(value)) {}  // NOLINT
  Json(std::uint64_t value)  // NOLINT
      : Json(static_cast<double>(value)) {}
  Json(std::string value)  // NOLINT
      : kind_(Kind::kString), string_(std::move(value)) {}
  Json(const char* value) : Json(std::string(value)) {}  // NOLINT

  [[nodiscard]] static Json array();
  [[nodiscard]] static Json object();

  [[nodiscard]] Kind kind() const { return kind_; }

  /// Append to an array (kind must be kArray).
  void push_back(Json value);
  /// Set a key on an object (kind must be kObject). Keys keep insertion
  /// order; setting an existing key overwrites in place.
  void set(const std::string& key, Json value);

  /// Object lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(const std::string& key) const;
  [[nodiscard]] std::size_t size() const { return children_.size(); }
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& items()
      const {
    return children_;
  }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return number_; }
  [[nodiscard]] const std::string& as_string() const { return string_; }

  /// Serialize. `indent` > 0 pretty-prints with that many spaces.
  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  /// Array elements carry empty keys; object entries carry their key.
  std::vector<std::pair<std::string, Json>> children_;
};

/// JSON string escaping (quotes not included).
[[nodiscard]] std::string json_escape(const std::string& raw);

}  // namespace repro::core
