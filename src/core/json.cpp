#include "core/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "base/expect.hpp"

namespace repro::core {

Json Json::array() {
  Json value;
  value.kind_ = Kind::kArray;
  return value;
}

Json Json::object() {
  Json value;
  value.kind_ = Kind::kObject;
  return value;
}

void Json::push_back(Json value) {
  REPRO_EXPECT(kind_ == Kind::kArray, "push_back on a non-array Json value");
  children_.emplace_back(std::string(), std::move(value));
}

void Json::set(const std::string& key, Json value) {
  REPRO_EXPECT(kind_ == Kind::kObject, "set on a non-object Json value");
  for (auto& [existing, child] : children_) {
    if (existing == key) {
      child = std::move(value);
      return;
    }
  }
  children_.emplace_back(key, std::move(value));
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [existing, child] : children_) {
    if (existing == key) {
      return &child;
    }
  }
  return nullptr;
}

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string number_repr(double value) {
  if (!std::isfinite(value)) {
    return "null";  // NaN/inf are not representable in JSON.
  }
  // Integers print exactly; everything else gets the shortest decimal
  // that parses back to the same double. Most doubles round-trip at 15
  // or 16 significant digits; 17 always does (IEEE 754 binary64).
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) {
      break;
    }
  }
  return buf;
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent * (depth + 1)), ' ');
  const std::string close_pad(static_cast<std::size_t>(indent * depth), ' ');
  const char* newline = indent > 0 ? "\n" : "";
  const char* key_sep = indent > 0 ? ": " : ":";
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      out += number_repr(number_);
      break;
    case Kind::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      break;
    case Kind::kArray: {
      if (children_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += newline;
      for (std::size_t i = 0; i < children_.size(); ++i) {
        out += pad;
        children_[i].second.dump_to(out, indent, depth + 1);
        if (i + 1 < children_.size()) {
          out += ',';
        }
        out += newline;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (children_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += newline;
      for (std::size_t i = 0; i < children_.size(); ++i) {
        out += pad;
        out += '"';
        out += json_escape(children_[i].first);
        out += '"';
        out += key_sep;
        children_[i].second.dump_to(out, indent, depth + 1);
        if (i + 1 < children_.size()) {
          out += ',';
        }
        out += newline;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace repro::core
