// Analyzed samples: raw instrumentation records plus the derived
// concurrency and system measures of Chapters 4-5.
#pragma once

#include <span>
#include <vector>

#include "core/measures.hpp"
#include "instr/session_controller.hpp"

namespace repro::core {

struct AnalyzedSample {
  instr::SampleRecord raw;
  ConcurrencyMeasures measures;
  /// Missrate: miss cycles / total CE bus cycles (§5).
  double miss_rate = 0.0;
  /// CE Bus Busy: non-idle fraction averaged over the CE buses (§5).
  double bus_busy = 0.0;
  /// Page Fault Rate: CE page faults in the measurement interval (§5).
  double page_fault_rate = 0.0;

  /// Capsule walk: raw record plus the derived measures, so a cached
  /// study restores exactly what analyze() produced.
  void serialize(capsule::Io& io) {
    raw.serialize(io);
    measures.serialize(io);
    io.f64(miss_rate);
    io.f64(bus_busy);
    io.f64(page_fault_rate);
  }
};

/// Derive the analysis measures from one sample record.
[[nodiscard]] AnalyzedSample analyze(const instr::SampleRecord& record,
                                     std::uint32_t width = kMaxCes);

/// Analyze a whole session.
[[nodiscard]] std::vector<AnalyzedSample> analyze_all(
    std::span<const instr::SampleRecord> records,
    std::uint32_t width = kMaxCes);

// Column extractors used by the regression/figure pipelines.
[[nodiscard]] std::vector<double> column_cw(
    std::span<const AnalyzedSample> samples);
/// Pc values for samples where Pc is defined (undefined samples skipped).
[[nodiscard]] std::vector<double> column_pc(
    std::span<const AnalyzedSample> samples);
[[nodiscard]] std::vector<double> column_miss_rate(
    std::span<const AnalyzedSample> samples);
[[nodiscard]] std::vector<double> column_bus_busy(
    std::span<const AnalyzedSample> samples);
[[nodiscard]] std::vector<double> column_page_fault_rate(
    std::span<const AnalyzedSample> samples);

/// Keep only samples with defined Pc (for the vs-Pc analyses).
[[nodiscard]] std::vector<AnalyzedSample> with_defined_pc(
    std::span<const AnalyzedSample> samples);

}  // namespace repro::core
