// Session checkpoints: save, restore, and digest a whole measurement rig.
//
// A "session" here is the unit the study engine schedules: one os::System
// plus the workload generator feeding it and the session controller
// sampling it. One capsule walk covers all three, so a session can be
// stopped at a sample boundary, written to disk, and resumed later — on
// the same rig or a freshly constructed one — bit-identically. The same
// walk yields a 64-bit digest, which is how the tests (and the sharded
// study engine) assert bit-identity without comparing traces. See
// docs/checkpointing.md for the format and the deliberate exclusions.
#pragma once

#include <cstdint>
#include <vector>

#include "base/capsule.hpp"
#include "instr/session_controller.hpp"
#include "os/system.hpp"
#include "workload/generator.hpp"

namespace repro::core {

/// One walk over the full session state: the system (counters, VM,
/// machine, scheduler), the workload generator, and the controller's
/// persistent state, in that order.
void serialize_session(capsule::Io& io, os::System& system,
                       workload::WorkloadGenerator& generator,
                       instr::SessionController& controller);

/// FNV-1a 64 digest of the full session state. Equal digests ⇔ the two
/// rigs are bit-identical (for rigs built from the same configs).
[[nodiscard]] std::uint64_t session_digest(
    os::System& system, workload::WorkloadGenerator& generator,
    instr::SessionController& controller);

/// Sealed capsule of the session state, prefixed with the system's
/// config fingerprint.
[[nodiscard]] std::vector<std::uint8_t> save_session(
    os::System& system, workload::WorkloadGenerator& generator,
    instr::SessionController& controller);

/// Restore a session from a sealed capsule into an already-constructed
/// rig (built from the same configs — the fingerprint enforces the
/// system's half of that contract). Throws capsule::CapsuleError on
/// envelope, fingerprint, or payload-shape mismatch.
void load_session(const std::vector<std::uint8_t>& sealed,
                  os::System& system,
                  workload::WorkloadGenerator& generator,
                  instr::SessionController& controller);

/// Progress of a resumable single-session study (fx8meter --checkpoint):
/// how many samples are done and the completed records themselves, so a
/// resumed run re-reports the whole session, not just its tail.
struct StudyCheckpoint {
  std::uint32_t samples_done = 0;
  std::uint32_t samples_total = 0;
  std::vector<instr::SampleRecord> records;

  void serialize(capsule::Io& io);
};

/// Sealed capsule bundling study progress with the live session state.
[[nodiscard]] std::vector<std::uint8_t> save_study_checkpoint(
    const StudyCheckpoint& progress, os::System& system,
    workload::WorkloadGenerator& generator,
    instr::SessionController& controller);

/// Counterpart of save_study_checkpoint: restores the session rig and
/// returns the recorded progress.
[[nodiscard]] StudyCheckpoint load_study_checkpoint(
    const std::vector<std::uint8_t>& sealed, os::System& system,
    workload::WorkloadGenerator& generator,
    instr::SessionController& controller);

}  // namespace repro::core
