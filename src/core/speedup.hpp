// Speedup and Efficiency (paper §2).
//
// "Speedup is defined as S = T1/Tp, where T1 is the execution time
// required for a program on a single processor, and Tp is the execution
// of the program on P processors. Efficiency is given by the ratio
// Ep = Sp/P, 0 < Ep < 1." The thesis contrasts these program-level
// measures — which "are unable to provide a detailed characterization"
// and have "no direct applicability" to a production workload — with its
// own workload measures; this harness produces them for any loop body on
// 1..8-CE configurations of the simulated machine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hpp"
#include "fx8/machine.hpp"
#include "isa/kernel.hpp"

namespace repro::core {

struct SpeedupPoint {
  std::uint32_t processors = 1;
  Cycle time = 0;
  double speedup = 1.0;     ///< S_p = T1 / Tp.
  double efficiency = 1.0;  ///< E_p = S_p / p.
};

struct SpeedupCurve {
  std::string kernel;
  std::uint64_t trip_count = 0;
  Cycle t1 = 0;
  std::vector<SpeedupPoint> points;  ///< One per processor count 1..P.
};

struct SpeedupOptions {
  std::uint32_t max_processors = kMaxCes;
  /// Disable IP background traffic to isolate the kernel (default on:
  /// speedup is a program measure, not a workload measure).
  bool quiesce_ips = true;
  /// Base machine configuration (cluster width is overridden per point).
  fx8::MachineConfig machine = fx8::MachineConfig::fx8();
};

/// Execute a concurrent loop of `body` x `trip_count` on machines of
/// width 1..max_processors and measure S_p and E_p.
[[nodiscard]] SpeedupCurve measure_speedup(const isa::KernelSpec& body,
                                           std::uint64_t trip_count,
                                           const SpeedupOptions& options = {});

/// Render the curve as a two-row table (S_p / E_p per processor count).
[[nodiscard]] std::string render_speedup_table(const SpeedupCurve& curve);

}  // namespace repro::core
