#include "core/export.hpp"

#include <sstream>

#include "base/text.hpp"

namespace repro::core {

namespace {

void header(std::ostringstream& os, bool with_session) {
  if (with_session) {
    os << "session,";
  }
  os << "sample,cw,pc,pc_defined,miss_rate,bus_busy,page_fault_rate,"
        "records";
  for (int j = 0; j <= 8; ++j) {
    os << ",num" << j;
  }
  os << '\n';
}

void row(std::ostringstream& os, const AnalyzedSample& sample,
         const std::string* session) {
  if (session != nullptr) {
    os << *session << ',';
  }
  os << sample.raw.index << ',' << fixed(sample.measures.cw, 6) << ','
     << (sample.measures.pc_defined ? fixed(sample.measures.pc, 4) : "")
     << ',' << (sample.measures.pc_defined ? 1 : 0) << ','
     << fixed(sample.miss_rate, 6) << ',' << fixed(sample.bus_busy, 6)
     << ',' << fixed(sample.page_fault_rate, 1) << ','
     << sample.raw.hw.records;
  for (int j = 0; j <= 8; ++j) {
    os << ',' << sample.raw.hw.num[static_cast<std::size_t>(j)];
  }
  os << '\n';
}

}  // namespace

std::string samples_to_csv(std::span<const SessionResult> sessions) {
  std::ostringstream os;
  header(os, true);
  for (const SessionResult& session : sessions) {
    for (const AnalyzedSample& sample : session.samples) {
      row(os, sample, &session.name);
    }
  }
  return os.str();
}

std::string samples_to_csv(std::span<const AnalyzedSample> samples) {
  std::ostringstream os;
  header(os, false);
  for (const AnalyzedSample& sample : samples) {
    row(os, sample, nullptr);
  }
  return os.str();
}

}  // namespace repro::core
