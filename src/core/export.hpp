// Tabular export of analyzed samples.
//
// The study moved its reduced data to an IBM 4381 for SAS analysis
// (§3.5); the modern equivalent is a CSV a downstream user can load into
// any stats package to re-run or extend the Chapter 4/5 analyses.
#pragma once

#include <span>
#include <string>

#include "core/sample.hpp"
#include "core/study.hpp"

namespace repro::core {

/// One row per sample: session, index, measures, system measures, and
/// the raw active-processor histogram.
[[nodiscard]] std::string samples_to_csv(
    std::span<const SessionResult> sessions);

/// One row per sample from a flat sample list (session column omitted).
[[nodiscard]] std::string samples_to_csv(
    std::span<const AnalyzedSample> samples);

}  // namespace repro::core
