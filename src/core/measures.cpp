#include "core/measures.hpp"

#include <sstream>

#include "base/expect.hpp"
#include "base/text.hpp"

namespace repro::core {

ConcurrencyMeasures ConcurrencyMeasures::from_counts(
    std::span<const std::uint64_t> counts) {
  REPRO_EXPECT(counts.size() >= 2 && counts.size() <= kMaxTopologyCes + 1,
               "histogram must cover 0..P with P in 1..64");
  ConcurrencyMeasures m;
  m.width = static_cast<std::uint32_t>(counts.size() - 1);

  std::uint64_t total = 0;
  for (const std::uint64_t count : counts) {
    total += count;
  }
  REPRO_EXPECT(total > 0, "cannot derive measures from zero records");

  for (std::size_t j = 0; j < counts.size(); ++j) {
    m.c[j] = static_cast<double>(counts[j]) / static_cast<double>(total);
  }

  // Workload Concurrency: mass at 2 or more active processors (eq 4.2).
  std::uint64_t concurrent_records = 0;
  for (std::size_t j = 2; j < counts.size(); ++j) {
    concurrent_records += counts[j];
  }
  m.cw = static_cast<double>(concurrent_records) / static_cast<double>(total);

  if (concurrent_records > 0) {
    m.pc_defined = true;
    double pc = 0.0;
    for (std::size_t j = 2; j < counts.size(); ++j) {
      m.c_cond[j] = static_cast<double>(counts[j]) /
                    static_cast<double>(concurrent_records);
      pc += static_cast<double>(j) * m.c_cond[j];
    }
    m.pc = pc;
    REPRO_ENSURE(m.pc >= 2.0 && m.pc <= static_cast<double>(m.width) + 1e-9,
                 "Pc must lie in [2, P]");
  }
  return m;
}

std::string ConcurrencyMeasures::describe() const {
  std::ostringstream os;
  os << "Cw=" << fixed(cw, 4);
  if (pc_defined) {
    os << " Pc=" << fixed(pc, 2) << " c(" << width
       << "|c)=" << fixed(c_cond[width], 4);
  } else {
    os << " Pc=undefined";
  }
  return os.str();
}

}  // namespace repro::core
