// Report renderers: the paper's tables and figure-style charts as text.
#pragma once

#include <span>
#include <string>

#include "core/measures.hpp"
#include "core/regression_models.hpp"
#include "core/sample.hpp"
#include "core/study.hpp"
#include "core/transition.hpp"

namespace repro::core {

/// Table 2: "Overall Concurrency Measures for All Sessions" — c_0..c_8,
/// Cw, c_{8|c}, Pc.
[[nodiscard]] std::string render_table2(const ConcurrencyMeasures& overall);

/// Tables 3/4: regression coefficients (beta1, beta2, C) and R^2 per
/// system measure, against one regressor.
[[nodiscard]] std::string render_regression_table(
    std::span<const MedianModel> models, Regressor regressor);

/// Figure 3 style: records with N processors active, bar chart (rows 8..0
/// like the paper).
[[nodiscard]] std::string render_active_histogram(
    std::span<const std::uint64_t> counts, const std::string& title);

/// Figure 7 style: records active by processor number.
[[nodiscard]] std::string render_processor_histogram(
    std::span<const std::uint64_t> counts, const std::string& title);

/// Table A.1 style: per-session mean concurrency measures.
[[nodiscard]] std::string render_session_table(
    std::span<const SessionResult> sessions);

}  // namespace repro::core
