#include "core/report.hpp"

#include <algorithm>
#include <sstream>

#include "base/text.hpp"
#include "stats/freq_table.hpp"

namespace repro::core {

std::string render_table2(const ConcurrencyMeasures& overall) {
  std::ostringstream os;
  os << "TABLE 2. Overall Concurrency Measures for All Sessions.\n";
  os << "  ";
  for (std::uint32_t j = 0; j <= overall.width; ++j) {
    std::string label = "c";
    label += std::to_string(j);
    os << pad_left(label, 8);
  }
  os << pad_left("Cw", 8)
     << pad_left("c(" + std::to_string(overall.width) + "|c)", 8)
     << pad_left("Pc", 8) << '\n';
  os << "  ";
  for (std::uint32_t j = 0; j <= overall.width; ++j) {
    os << pad_left(fixed(overall.c[j], 4), 8);
  }
  os << pad_left(fixed(overall.cw, 4), 8)
     << pad_left(
            overall.pc_defined ? fixed(overall.c_cond[overall.width], 4)
                               : "n/a",
            8)
     << pad_left(overall.pc_defined ? fixed(overall.pc, 2) : "n/a", 8)
     << '\n';
  return os.str();
}

std::string render_regression_table(std::span<const MedianModel> models,
                                    Regressor regressor) {
  std::ostringstream os;
  os << "Regression Models — System Measure vs. "
     << (regressor == Regressor::kCw ? "Cw" : "Pc") << '\n';
  os << "  " << pad_right("System Measure", 26) << pad_left("beta1", 12)
     << pad_left("beta2", 12) << pad_left("C", 12) << pad_left("R^2", 8)
     << '\n';
  for (const MedianModel& model : models) {
    if (model.regressor != regressor) {
      continue;
    }
    os << "  " << pad_right(measure_name(model.measure), 26);
    if (model.fit) {
      os << pad_left(scientific(model.fit->coeffs[1], 2), 12)
         << pad_left(scientific(model.fit->coeffs[2], 2), 12)
         << pad_left(scientific(model.fit->coeffs[0], 2), 12)
         << pad_left(fixed(model.fit->r_squared, 2), 8) << '\n';
    } else {
      os << pad_left("n/a", 12) << pad_left("n/a", 12) << pad_left("n/a", 12)
         << pad_left("n/a", 8) << '\n';
    }
  }
  return os.str();
}

std::string render_active_histogram(std::span<const std::uint64_t> counts,
                                    const std::string& title) {
  // The paper lists rows top-down from the highest processor count.
  std::vector<std::uint64_t> reversed(counts.rbegin(), counts.rend());
  std::vector<std::string> labels;
  for (std::size_t j = counts.size(); j-- > 0;) {
    labels.push_back(std::to_string(j));
  }
  std::ostringstream os;
  os << title << '\n'
     << "NUMBER OF PROCESSORS\n"
     << stats::FreqTable::from_counts(reversed, labels).render();
  return os.str();
}

std::string render_processor_histogram(std::span<const std::uint64_t> counts,
                                       const std::string& title) {
  std::vector<std::string> labels;
  for (std::size_t j = 0; j < counts.size(); ++j) {
    labels.push_back("CE" + std::to_string(j));
  }
  std::ostringstream os;
  os << title << '\n'
     << "PROCESSOR NUMBER\n"
     << stats::FreqTable::from_counts(counts, labels).render();
  return os.str();
}

std::string render_session_table(std::span<const SessionResult> sessions) {
  std::ostringstream os;
  os << "Table A.1. Mean Concurrency Measures for Random Samples.\n";
  const std::uint32_t width =
      sessions.empty() ? kMaxCes : sessions.front().overall.width;
  os << "  " << pad_right("Session", 30) << pad_left("samples", 9)
     << pad_left("Cw", 9) << pad_left("Pc", 9)
     << pad_left("c(" + std::to_string(width) + "|c)", 9) << '\n';
  for (const SessionResult& session : sessions) {
    os << "  " << pad_right(session.name, 30)
       << pad_left(std::to_string(session.samples.size()), 9)
       << pad_left(fixed(session.overall.cw, 4), 9)
       << pad_left(
              session.overall.pc_defined ? fixed(session.overall.pc, 2)
                                         : "n/a",
              9)
       << pad_left(session.overall.pc_defined
                       ? fixed(session.overall.c_cond[session.overall.width],
                               3)
                       : "n/a",
                   9)
       << '\n';
  }
  return os.str();
}

}  // namespace repro::core
