#include "core/sample.hpp"

namespace repro::core {

AnalyzedSample analyze(const instr::SampleRecord& record,
                       std::uint32_t width) {
  AnalyzedSample sample;
  sample.raw = record;
  sample.measures = ConcurrencyMeasures::from_counts(
      std::span(record.hw.num).first(width + 1));
  sample.miss_rate = record.hw.miss_rate();
  sample.bus_busy = record.hw.bus_busy();
  sample.page_fault_rate =
      static_cast<double>(record.sw.ce_page_faults());
  return sample;
}

std::vector<AnalyzedSample> analyze_all(
    std::span<const instr::SampleRecord> records, std::uint32_t width) {
  std::vector<AnalyzedSample> samples;
  samples.reserve(records.size());
  for (const instr::SampleRecord& record : records) {
    samples.push_back(analyze(record, width));
  }
  return samples;
}

std::vector<double> column_cw(std::span<const AnalyzedSample> samples) {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const AnalyzedSample& s : samples) {
    out.push_back(s.measures.cw);
  }
  return out;
}

std::vector<double> column_pc(std::span<const AnalyzedSample> samples) {
  std::vector<double> out;
  for (const AnalyzedSample& s : samples) {
    if (s.measures.pc_defined) {
      out.push_back(s.measures.pc);
    }
  }
  return out;
}

std::vector<double> column_miss_rate(
    std::span<const AnalyzedSample> samples) {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const AnalyzedSample& s : samples) {
    out.push_back(s.miss_rate);
  }
  return out;
}

std::vector<double> column_bus_busy(std::span<const AnalyzedSample> samples) {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const AnalyzedSample& s : samples) {
    out.push_back(s.bus_busy);
  }
  return out;
}

std::vector<double> column_page_fault_rate(
    std::span<const AnalyzedSample> samples) {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const AnalyzedSample& s : samples) {
    out.push_back(s.page_fault_rate);
  }
  return out;
}

std::vector<AnalyzedSample> with_defined_pc(
    std::span<const AnalyzedSample> samples) {
  std::vector<AnalyzedSample> out;
  for (const AnalyzedSample& s : samples) {
    if (s.measures.pc_defined) {
      out.push_back(s);
    }
  }
  return out;
}

}  // namespace repro::core
