#include "core/study.hpp"

#include <algorithm>
#include <future>
#include <memory>
#include <utility>

#include "base/expect.hpp"
#include "base/rng.hpp"
#include "base/thread_pool.hpp"
#include "core/checkpoint.hpp"
#include "instr/session_batch.hpp"

namespace repro::core {

namespace {

/// One replicate's share of a session: the task unit of the parallel
/// study engine (docs/parallel_execution.md). Splitting sessions into
/// replicates turns 9 coarse tasks into 9*R finer ones, which is what
/// keeps every worker busy through the tail of the run.
struct SessionPart {
  std::vector<AnalyzedSample> samples;
  instr::EventCounts totals;
  instr::FastForwardStats ff;
  std::uint32_t width = kMaxCes;
};

/// Replicate count a config resolves to (always >= 1, never more than
/// one replicate per sample).
std::uint32_t resolve_replicates(const StudyConfig& config) {
  const std::uint32_t requested = std::max(1u, config.replicates_per_session);
  return std::min(requested, std::max(1u, config.samples_per_session));
}

/// Rig-batch width a config resolves to: how many same-session replicate
/// rigs advance in lockstep per group. Auto (0) batches up to eight —
/// the lane kernel's sweet spot — and checkpoint sharding forces the
/// serial path (capsule round-trips land at per-rig sample boundaries).
/// Like the replicate decomposition, this is a pure function of the
/// config, never of the thread count.
std::uint32_t resolve_rig_batch(const StudyConfig& config,
                                std::uint32_t replicates) {
  if (config.checkpoint_every_samples != 0) {
    return 1;
  }
  const std::uint32_t requested =
      config.rig_batch == 0 ? 8u : config.rig_batch;
  return std::min({requested, replicates, kMaxBatchRigs});
}

/// Seed for replicate `r` of a session. Replicate 0 consumes the session
/// seed unchanged, so replicates_per_session=1 reproduces the classic
/// single-system session stream bit-for-bit.
std::uint64_t replicate_seed(std::uint64_t session_seed,
                             std::uint32_t replicate) {
  return replicate == 0
             ? session_seed
             : mix64(session_seed ^ (0xFA57F00DULL + replicate));
}

/// Samples replicate `r` takes: an even split, earlier replicates taking
/// the remainder.
std::uint32_t replicate_samples(const StudyConfig& config,
                                std::uint32_t replicate,
                                std::uint32_t replicates) {
  return config.samples_per_session / replicates +
         (replicate < config.samples_per_session % replicates ? 1 : 0);
}

/// One replicate's complete measurement rig. Members are declared in
/// construction-dependency order: the controller holds references to the
/// system and the generator.
struct SessionRig {
  os::System system;
  workload::WorkloadGenerator generator;
  instr::SessionController controller;

  SessionRig(const workload::WorkloadMix& mix, const StudyConfig& config,
             const instr::SamplingConfig& sampling, std::uint64_t seed)
      : system(config.system),
        generator(mix, mix64(seed ^ 0xABCD)),
        controller(system, generator, sampling, mix64(seed ^ 0x5A5A)) {}
};

/// Run one replicate: its own system, generator, and controller, warmed
/// up and sampled. A pure function of (mix, config, seed, n_samples).
/// With checkpoint sharding on, the rig is capsuled, destroyed, rebuilt,
/// and restored at every shard boundary — digest-checked bit-identity
/// with the uninterrupted run, so the sample stream is unchanged.
SessionPart run_replicate(const workload::WorkloadMix& mix,
                          const StudyConfig& config, std::uint64_t seed,
                          std::uint32_t n_samples) {
  instr::SamplingConfig sampling = config.sampling;
  sampling.fast_forward = sampling.fast_forward && config.fast_forward;
  auto rig = std::make_unique<SessionRig>(mix, config, sampling, seed);

  // Warm up: let the workload reach steady state before sampling.
  rig->controller.advance(config.warmup_cycles);

  SessionPart part;
  part.width = rig->system.machine().total_ces();
  part.samples.reserve(n_samples);
  const std::uint32_t shard = config.checkpoint_every_samples;
  std::uint32_t taken = 0;
  while (taken < n_samples) {
    const std::uint32_t batch =
        shard == 0 ? n_samples - taken : std::min(shard, n_samples - taken);
    const auto records = rig->controller.run_session(batch);
    for (const instr::SampleRecord& record : records) {
      part.samples.push_back(analyze(record, part.width));
      part.totals.merge(record.hw);
    }
    taken += batch;
    if (shard != 0 && taken < n_samples) {
      // Shard boundary: round-trip the whole rig through a capsule and
      // assert the restored copy is bit-identical to the one torn down.
      const std::uint64_t before =
          session_digest(rig->system, rig->generator, rig->controller);
      const auto sealed =
          save_session(rig->system, rig->generator, rig->controller);
      rig = std::make_unique<SessionRig>(mix, config, sampling, seed);
      load_session(sealed, rig->system, rig->generator, rig->controller);
      REPRO_ENSURE(session_digest(rig->system, rig->generator,
                                  rig->controller) == before,
                   "checkpoint restore diverged from the saved session");
    }
  }
  part.ff = rig->controller.ff_stats();
  return part;
}

/// Run a consecutive group of a session's replicates through the batched
/// lockstep driver (instr::run_session_batch). Each rig still owns its
/// own system/generator/controller seeded exactly as the serial path
/// seeds it; only the fused-kernel bursts advance together, through one
/// fx8::RigBatch. Returns one SessionPart per replicate, in replicate
/// order, bit-identical to calling run_replicate on each.
std::vector<SessionPart> run_replicate_group(
    const workload::WorkloadMix& mix, const StudyConfig& config,
    std::uint64_t session_seed, std::uint32_t first, std::uint32_t count,
    std::uint32_t replicates) {
  instr::SamplingConfig sampling = config.sampling;
  sampling.fast_forward = sampling.fast_forward && config.fast_forward;
  std::vector<std::unique_ptr<SessionRig>> rigs;
  std::vector<instr::BatchRig> members;
  rigs.reserve(count);
  members.reserve(count);
  for (std::uint32_t r = 0; r < count; ++r) {
    rigs.push_back(std::make_unique<SessionRig>(
        mix, config, sampling, replicate_seed(session_seed, first + r)));
    members.push_back(
        instr::BatchRig{&rigs.back()->controller, config.warmup_cycles,
                        replicate_samples(config, first + r, replicates)});
  }
  const auto record_streams = instr::run_session_batch(members);

  std::vector<SessionPart> parts;
  parts.reserve(count);
  for (std::uint32_t r = 0; r < count; ++r) {
    SessionPart part;
    part.width = rigs[r]->system.machine().total_ces();
    part.samples.reserve(record_streams[r].size());
    for (const instr::SampleRecord& record : record_streams[r]) {
      part.samples.push_back(analyze(record, part.width));
      part.totals.merge(record.hw);
    }
    part.ff = rigs[r]->controller.ff_stats();
    parts.push_back(std::move(part));
  }
  return parts;
}

/// The session's task decomposition under rig batching: consecutive
/// replicate chunks of `batch` rigs. Each chunk is one thread-pool task
/// (and one lockstep batch); batch == 1 degenerates to one replicate per
/// task, the pre-batching decomposition.
struct ReplicateGroup {
  std::uint32_t first = 0;
  std::uint32_t count = 0;
};

std::vector<ReplicateGroup> replicate_groups(std::uint32_t replicates,
                                             std::uint32_t batch) {
  std::vector<ReplicateGroup> groups;
  for (std::uint32_t first = 0; first < replicates; first += batch) {
    groups.push_back(
        ReplicateGroup{first, std::min(batch, replicates - first)});
  }
  return groups;
}

/// Run one group: a single-rig group takes the classic serial path
/// (which also carries checkpoint sharding); wider groups go through the
/// lockstep driver. Either way the parts come back in replicate order.
std::vector<SessionPart> run_group(const workload::WorkloadMix& mix,
                                   const StudyConfig& config,
                                   std::uint64_t session_seed,
                                   ReplicateGroup group,
                                   std::uint32_t replicates) {
  if (group.count == 1) {
    std::vector<SessionPart> parts;
    parts.push_back(
        run_replicate(mix, config, replicate_seed(session_seed, group.first),
                      replicate_samples(config, group.first, replicates)));
    return parts;
  }
  return run_replicate_group(mix, config, session_seed, group.first,
                             group.count, replicates);
}

/// Fold a session's replicate parts, in replicate order, into the
/// SessionResult — the same arithmetic whether the parts were computed
/// serially or on the pool.
SessionResult merge_parts(const workload::WorkloadMix& mix,
                          std::vector<SessionPart> parts) {
  SessionResult result;
  result.name = mix.name;
  std::uint32_t width = kMaxCes;
  std::size_t total = 0;
  for (const SessionPart& part : parts) {
    total += part.samples.size();
  }
  result.samples.reserve(total);
  for (SessionPart& part : parts) {
    width = part.width;
    result.samples.insert(result.samples.end(),
                          std::make_move_iterator(part.samples.begin()),
                          std::make_move_iterator(part.samples.end()));
    result.totals.merge(part.totals);
    result.ff.skipped_cycles += part.ff.skipped_cycles;
    result.ff.naive_cycles += part.ff.naive_cycles;
    result.ff.block_cycles += part.ff.block_cycles;
    result.ff.jumps += part.ff.jumps;
  }
  result.overall = ConcurrencyMeasures::from_counts(
      std::span(result.totals.num).first(width + 1));
  return result;
}

}  // namespace

std::vector<AnalyzedSample> StudyResult::all_samples() const {
  std::size_t total = 0;
  for (const SessionResult& session : sessions) {
    total += session.samples.size();
  }
  std::vector<AnalyzedSample> all;
  all.reserve(total);
  for (const SessionResult& session : sessions) {
    all.insert(all.end(), session.samples.begin(), session.samples.end());
  }
  return all;
}

std::uint32_t resolve_threads(const StudyConfig& config) {
  return static_cast<std::uint32_t>(
      base::ThreadPool::resolve_workers(config.threads));
}

SessionResult run_session(const workload::WorkloadMix& mix,
                          const StudyConfig& config,
                          std::uint64_t session_seed) {
  const std::uint32_t replicates = resolve_replicates(config);
  const auto groups =
      replicate_groups(replicates, resolve_rig_batch(config, replicates));
  std::vector<SessionPart> parts;
  parts.reserve(replicates);
  for (const ReplicateGroup& group : groups) {
    auto group_parts = run_group(mix, config, session_seed, group, replicates);
    for (SessionPart& part : group_parts) {
      parts.push_back(std::move(part));
    }
  }
  return merge_parts(mix, std::move(parts));
}

StudyResult run_study(std::span<const workload::WorkloadMix> mixes,
                      const StudyConfig& config) {
  StudyResult study;
  // Session seeds are derived serially, in mix order, *before* any
  // dispatch: the seed stream is identical however many workers run.
  std::uint64_t seed_state = config.seed;
  std::vector<std::uint64_t> seeds;
  seeds.reserve(mixes.size());
  for (std::size_t i = 0; i < mixes.size(); ++i) {
    seeds.push_back(splitmix64(seed_state));
  }

  study.sessions.reserve(mixes.size());
  const std::uint32_t replicates = resolve_replicates(config);
  const auto groups =
      replicate_groups(replicates, resolve_rig_batch(config, replicates));
  const std::size_t tasks = mixes.size() * groups.size();
  const std::uint32_t threads = resolve_threads(config);
  if (threads <= 1 || tasks <= 1) {
    for (std::size_t i = 0; i < mixes.size(); ++i) {
      study.sessions.push_back(run_session(mixes[i], config, seeds[i]));
    }
  } else {
    // Each (session, group) task owns its group's independent
    // os::Systems; the only shared state is the read-only mixes/config.
    // Futures are collected in (mix, group) order and groups cover the
    // replicates consecutively, so the merge arithmetic — and therefore
    // every bit of the result — matches the serial path.
    base::ThreadPool pool(std::min<std::size_t>(threads, tasks));
    std::vector<std::future<std::vector<SessionPart>>> futures;
    futures.reserve(tasks);
    for (std::size_t i = 0; i < mixes.size(); ++i) {
      for (const ReplicateGroup& group : groups) {
        futures.push_back(
            pool.submit([&mixes, &config, &seeds, i, group, replicates] {
              return run_group(mixes[i], config, seeds[i], group, replicates);
            }));
      }
    }
    for (std::size_t i = 0; i < mixes.size(); ++i) {
      std::vector<SessionPart> parts;
      parts.reserve(replicates);
      for (std::size_t g = 0; g < groups.size(); ++g) {
        auto group_parts = futures[i * groups.size() + g].get();
        for (SessionPart& part : group_parts) {
          parts.push_back(std::move(part));
        }
      }
      study.sessions.push_back(merge_parts(mixes[i], std::move(parts)));
    }
  }
  for (const SessionResult& session : study.sessions) {
    study.totals.merge(session.totals);
    study.ff.skipped_cycles += session.ff.skipped_cycles;
    study.ff.naive_cycles += session.ff.naive_cycles;
    study.ff.block_cycles += session.ff.block_cycles;
    study.ff.jumps += session.ff.jumps;
  }
  const std::uint32_t width =
      study.sessions.empty() ? kMaxCes
                             : study.sessions.front().overall.width;
  study.overall = ConcurrencyMeasures::from_counts(
      std::span(study.totals.num).first(width + 1));
  return study;
}

StudyResult run_default_study(const StudyConfig& config) {
  const auto mixes = workload::session_presets();
  return run_study(mixes, config);
}

void serialize_config(capsule::Io& io, StudyConfig& config) {
  os::serialize_config(io, config.system);
  instr::serialize_config(io, config.sampling);
  io.u32(config.samples_per_session);
  io.u64(config.warmup_cycles);
  io.u64(config.seed);
  io.u32(config.threads);
  io.boolean(config.fast_forward);
  io.u32(config.replicates_per_session);
  io.u32(config.rig_batch);
  io.u32(config.checkpoint_every_samples);
}

void SessionResult::serialize(capsule::Io& io) {
  io.str(name);
  auto count = io.extent(samples.size());
  samples.resize(count);
  for (AnalyzedSample& sample : samples) {
    sample.serialize(io);
  }
  totals.serialize(io);
  overall.serialize(io);
  ff.serialize(io);
}

void StudyResult::serialize(capsule::Io& io) {
  auto count = io.extent(sessions.size());
  sessions.resize(count);
  for (SessionResult& session : sessions) {
    session.serialize(io);
  }
  totals.serialize(io);
  overall.serialize(io);
  ff.serialize(io);
}

}  // namespace repro::core
