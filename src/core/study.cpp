#include "core/study.hpp"

#include <algorithm>
#include <future>

#include "base/rng.hpp"
#include "base/thread_pool.hpp"

namespace repro::core {

std::vector<AnalyzedSample> StudyResult::all_samples() const {
  std::size_t total = 0;
  for (const SessionResult& session : sessions) {
    total += session.samples.size();
  }
  std::vector<AnalyzedSample> all;
  all.reserve(total);
  for (const SessionResult& session : sessions) {
    all.insert(all.end(), session.samples.begin(), session.samples.end());
  }
  return all;
}

std::uint32_t resolve_threads(const StudyConfig& config) {
  return static_cast<std::uint32_t>(
      base::ThreadPool::resolve_workers(config.threads));
}

SessionResult run_session(const workload::WorkloadMix& mix,
                          const StudyConfig& config,
                          std::uint64_t session_seed) {
  os::System system(config.system);
  workload::WorkloadGenerator generator(mix, mix64(session_seed ^ 0xABCD));
  instr::SessionController controller(system, generator, config.sampling,
                                      mix64(session_seed ^ 0x5A5A));

  // Warm up: let the workload reach steady state before sampling.
  for (Cycle c = 0; c < config.warmup_cycles; ++c) {
    generator.tick(system);
    system.tick();
  }

  SessionResult result;
  result.name = mix.name;
  const std::uint32_t width = system.machine().cluster().width();
  const auto records = controller.run_session(config.samples_per_session);
  result.samples.reserve(records.size());
  for (const instr::SampleRecord& record : records) {
    result.samples.push_back(analyze(record, width));
    result.totals.merge(record.hw);
  }
  result.overall = ConcurrencyMeasures::from_counts(
      std::span(result.totals.num).first(width + 1));
  return result;
}

StudyResult run_study(std::span<const workload::WorkloadMix> mixes,
                      const StudyConfig& config) {
  StudyResult study;
  // Session seeds are derived serially, in mix order, *before* any
  // dispatch: the seed stream is identical however many workers run.
  std::uint64_t seed_state = config.seed;
  std::vector<std::uint64_t> seeds;
  seeds.reserve(mixes.size());
  for (std::size_t i = 0; i < mixes.size(); ++i) {
    seeds.push_back(splitmix64(seed_state));
  }

  study.sessions.reserve(mixes.size());
  const std::uint32_t threads = resolve_threads(config);
  if (threads <= 1 || mixes.size() <= 1) {
    for (std::size_t i = 0; i < mixes.size(); ++i) {
      study.sessions.push_back(run_session(mixes[i], config, seeds[i]));
    }
  } else {
    // Each session owns an independent os::System; the only shared state
    // is the read-only mixes/config, so sessions run concurrently and are
    // merged back in mix order below.
    base::ThreadPool pool(std::min<std::size_t>(threads, mixes.size()));
    std::vector<std::future<SessionResult>> futures;
    futures.reserve(mixes.size());
    for (std::size_t i = 0; i < mixes.size(); ++i) {
      futures.push_back(pool.submit([&mixes, &config, &seeds, i] {
        return run_session(mixes[i], config, seeds[i]);
      }));
    }
    for (std::future<SessionResult>& future : futures) {
      study.sessions.push_back(future.get());
    }
  }
  for (const SessionResult& session : study.sessions) {
    study.totals.merge(session.totals);
  }
  const std::uint32_t width =
      study.sessions.empty() ? kMaxCes
                             : study.sessions.front().overall.width;
  study.overall = ConcurrencyMeasures::from_counts(
      std::span(study.totals.num).first(width + 1));
  return study;
}

StudyResult run_default_study(const StudyConfig& config) {
  const auto mixes = workload::session_presets();
  return run_study(mixes, config);
}

}  // namespace repro::core
