#include "core/study.hpp"

#include "base/rng.hpp"

namespace repro::core {

std::vector<AnalyzedSample> StudyResult::all_samples() const {
  std::vector<AnalyzedSample> all;
  for (const SessionResult& session : sessions) {
    all.insert(all.end(), session.samples.begin(), session.samples.end());
  }
  return all;
}

SessionResult run_session(const workload::WorkloadMix& mix,
                          const StudyConfig& config,
                          std::uint64_t session_seed) {
  os::System system(config.system);
  workload::WorkloadGenerator generator(mix, mix64(session_seed ^ 0xABCD));
  instr::SessionController controller(system, generator, config.sampling,
                                      mix64(session_seed ^ 0x5A5A));

  // Warm up: let the workload reach steady state before sampling.
  for (Cycle c = 0; c < config.warmup_cycles; ++c) {
    generator.tick(system);
    system.tick();
  }

  SessionResult result;
  result.name = mix.name;
  const std::uint32_t width = system.machine().cluster().width();
  const auto records = controller.run_session(config.samples_per_session);
  result.samples = analyze_all(records, width);
  for (const instr::SampleRecord& record : records) {
    result.totals.merge(record.hw);
  }
  result.overall = ConcurrencyMeasures::from_counts(
      std::span(result.totals.num).first(width + 1));
  return result;
}

StudyResult run_study(std::span<const workload::WorkloadMix> mixes,
                      const StudyConfig& config) {
  StudyResult study;
  std::uint64_t seed_state = config.seed;
  for (const workload::WorkloadMix& mix : mixes) {
    const std::uint64_t session_seed = splitmix64(seed_state);
    study.sessions.push_back(run_session(mix, config, session_seed));
    study.totals.merge(study.sessions.back().totals);
  }
  const std::uint32_t width =
      study.sessions.empty() ? kMaxCes
                             : study.sessions.front().overall.width;
  study.overall = ConcurrencyMeasures::from_counts(
      std::span(study.totals.num).first(width + 1));
  return study;
}

StudyResult run_default_study(const StudyConfig& config) {
  const auto mixes = workload::session_presets();
  return run_study(mixes, config);
}

}  // namespace repro::core
