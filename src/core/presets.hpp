// Canonical experiment configurations (one source of truth).
//
// Every consumer of the study/transition engines — the fx8bench artifact
// suite, the examples, and the integration tests — used to copy-paste its
// own seed/sample-count/warmup literals. They live here now, at three
// scales:
//
//   bench_*   — the paper-scale populations the artifact suite and
//               EXPERIMENTS.md numbers are produced from,
//   example_* — reduced counts that keep the example binaries snappy,
//   small_* / tiny_* — integration- and unit-test scales.
//
// `quick` variants shrink the populations for CI (fx8bench --quick);
// they keep the same seeds so the workload mixture is unchanged, only
// the sample/capture counts drop.
#pragma once

#include "core/study.hpp"
#include "core/transition.hpp"

namespace repro::core::presets {

/// The nine-session random-sampling study used by every Table/Figure
/// artifact (larger than the examples for stabler medians).
[[nodiscard]] StudyConfig bench_study();

/// CI-scale variant of `bench_study()`: same seed and mixes, half the
/// samples over shorter intervals (fx8bench --quick).
[[nodiscard]] StudyConfig quick_study();

/// The triggered-capture configuration for the transition artifacts
/// (Figures 6/7 and the service-order ablation).
[[nodiscard]] TransitionConfig bench_transition();

/// CI-scale variant of `bench_transition()`.
[[nodiscard]] TransitionConfig quick_transition();

/// Example-binary scale (examples/workload_study, regression_models).
[[nodiscard]] StudyConfig example_study();

/// Example-binary scale (examples/transition_capture).
[[nodiscard]] TransitionConfig example_transition();

/// Integration-test scale (tests/integration/end_to_end_test).
[[nodiscard]] StudyConfig small_study();

/// Unit-test scale (tests/core/*): two samples per session, short
/// intervals — just enough signal to assert structure.
[[nodiscard]] StudyConfig tiny_study();

/// Unit-test transition scale (tests/core/study_test).
[[nodiscard]] TransitionConfig tiny_transition();

}  // namespace repro::core::presets
