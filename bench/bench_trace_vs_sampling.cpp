// Methodology validation: sampling vs. marker tracing.
//
// The thesis chose non-intrusive sampling because marker tracing
// "requires specific code insertion in programs [and] is difficult to
// apply to the observation of a real workload" (§2.1). This bench runs
// ONE workload with BOTH instruments attached — the DAS-style sampler
// and the event tracer — and compares their concurrency estimates. If
// the sampling methodology is sound, the two must agree.
#include <cstdio>

#include "common.hpp"
#include "core/sample.hpp"
#include "instr/session_controller.hpp"
#include "os/system.hpp"
#include "trace/profile.hpp"
#include "trace/tracer.hpp"
#include "workload/generator.hpp"
#include "workload/presets.hpp"

int main() {
  using namespace repro;
  bench::print_header(
      "EXTENSION — sampling vs. marker-trace ground truth",
      "the thesis' sampling methodology should agree with exact traces "
      "(methodology validation, not a paper artifact)");

  os::System system{os::SystemConfig{}};
  trace::EventTracer tracer;
  system.machine().cluster().set_observer(&tracer);

  workload::WorkloadMix mix = workload::session_presets()[2];  // busy mix
  workload::WorkloadGenerator generator(mix, 0xFACADE);
  instr::SamplingConfig sampling;
  sampling.interval_cycles = 60000;
  instr::SessionController controller(system, generator, sampling,
                                      0xFACADE);

  const Cycle t0 = system.now();
  const auto records = controller.run_session(10);
  const Cycle t1 = system.now();
  const auto samples = core::analyze_all(records);

  // Sampling estimate: aggregate counts over the session.
  instr::EventCounts totals;
  for (const instr::SampleRecord& record : records) {
    totals.merge(record.hw);
  }
  const auto sampled =
      core::ConcurrencyMeasures::from_counts(totals.num);

  // Trace ground truth: global sweep over iteration intervals across all
  // completed jobs, measured over the same wall-clock span.
  std::vector<std::pair<Cycle, int>> deltas;
  for (const trace::TraceEvent& event : tracer.events()) {
    if (event.time < t0 || event.time > t1) {
      continue;
    }
    if (event.kind == trace::EventKind::kIterationStart) {
      deltas.emplace_back(event.time, +1);
    } else if (event.kind == trace::EventKind::kIterationEnd) {
      deltas.emplace_back(event.time, -1);
    }
  }
  std::sort(deltas.begin(), deltas.end());
  Cycle concurrent_time = 0;  // overlap >= 2
  double overlap_integral = 0.0;
  int overlap = 0;
  Cycle prev = t0;
  for (const auto& [time, delta] : deltas) {
    if (overlap >= 2) {
      concurrent_time += time - prev;
      overlap_integral += static_cast<double>(overlap) *
                          static_cast<double>(time - prev);
    }
    overlap += delta;
    prev = time;
  }
  const double exact_cw = static_cast<double>(concurrent_time) /
                          static_cast<double>(t1 - t0);
  const double exact_pc =
      concurrent_time > 0
          ? overlap_integral / static_cast<double>(concurrent_time)
          : 0.0;

  std::printf("                sampling   trace ground truth\n");
  std::printf("  Cw            %8.4f   %8.4f\n", sampled.cw, exact_cw);
  std::printf("  Pc            %8.2f   %8.2f\n", sampled.pc, exact_pc);
  std::printf("\n(agreement within a few percent validates the sampling "
              "methodology;\nsmall gaps come from dispatch/dependence "
              "states the CCB probe counts\nas active while no iteration "
              "body is in flight)\n");
  std::printf("\njobs traced: %zu, trace events: %zu\n",
              trace::profile_all(tracer.events()).size(),
              tracer.events().size());
  return 0;
}
