// Ablation (DESIGN.md §6.3): what produces the per-processor asymmetry of
// Figure 7?
//
// The default machine services CEs in a fixed hardware priority order;
// the ablation rotates the order fairly every cycle. The paper attributes
// the CE7/CE0 dominance to priority asymmetry in shared-resource
// scheduling (§4.3) — a fair arbiter should flatten the profile.
#include <cstdio>

#include "common.hpp"
#include "core/transition.hpp"
#include "workload/presets.hpp"

namespace {

using namespace repro;

double asymmetry(const core::TransitionResult& result) {
  // Max/min ratio over per-CE transition activity.
  std::uint64_t lo = result.processor_counts[0];
  std::uint64_t hi = result.processor_counts[0];
  for (const std::uint64_t count : result.processor_counts) {
    lo = std::min(lo, count);
    hi = std::max(hi, count);
  }
  return lo == 0 ? 0.0 : static_cast<double>(hi) / static_cast<double>(lo);
}

core::TransitionResult run_with_policy(fx8::ServicePolicy policy) {
  core::TransitionConfig config = bench::transition_config();
  config.captures = 40;
  config.system.machine.cluster.policy = policy;
  return core::run_transition_study(workload::high_concurrency_mix(),
                                    config);
}

}  // namespace

int main() {
  bench::print_header(
      "ABLATION — fixed-priority vs. rotating CE service order",
      "fixed hardware priority produces the Figure-7 asymmetry; a fair "
      "rotating arbiter flattens it");

  const core::TransitionResult fixed =
      run_with_policy(fx8::ServicePolicy::kOuterFirst);
  const core::TransitionResult rotating =
      run_with_policy(fx8::ServicePolicy::kRotating);

  std::printf("per-CE transition activity (fixed priority):\n ");
  for (const std::uint64_t count : fixed.processor_counts) {
    std::printf(" %6llu", static_cast<unsigned long long>(count));
  }
  std::printf("\nper-CE transition activity (rotating):\n ");
  for (const std::uint64_t count : rotating.processor_counts) {
    std::printf(" %6llu", static_cast<unsigned long long>(count));
  }
  std::printf("\n\nmax/min activity ratio: fixed %.2f vs rotating %.2f\n",
              asymmetry(fixed), asymmetry(rotating));
  std::printf("(expected: fixed > rotating — the asymmetry is a priority "
              "artifact)\n");
  return 0;
}
