// Appendix B (Page Fault Rate): Figures B.5-B.10.
//
//   B.5/B.6 — scatter vs. Cw and Pc,
//   B.7/B.8 — banded distributions (most mass at low rates for serial
//             bands; concurrent bands spread),
//   B.9/B.10 — regression model plots (rate rises with Cw, R^2 = 0.65;
//             weaker vs. Pc, R^2 = 0.61).
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/regression_models.hpp"
#include "stats/descriptive.hpp"
#include "stats/freq_table.hpp"
#include "stats/scatter.hpp"

int main() {
  using namespace repro;
  bench::print_header(
      "APPENDIX B — Page Fault Rate vs. concurrency (Figures B.5-B.10)",
      "page-fault rate rises with Cw (R^2 = 0.65) and more weakly with Pc "
      "(R^2 = 0.61)");

  const core::StudyResult study = bench::run_full_study();
  const auto samples = study.all_samples();
  const auto cw = core::column_cw(samples);
  const auto faults = core::column_page_fault_rate(samples);

  stats::ScatterOptions b5;
  b5.title = "Figure B.5: Page Fault Rate vs. Cw";
  b5.x_label = "Cw";
  b5.y_label = "faults";
  b5.x_min = 0.0;
  b5.x_max = 1.0;
  std::printf("%s\n", stats::render_scatter(cw, faults, b5).c_str());

  const auto with_pc = core::with_defined_pc(samples);
  stats::ScatterOptions b6;
  b6.title = "Figure B.6: Page Fault Rate vs. Pc";
  b6.x_label = "Pc";
  b6.y_label = "faults";
  b6.x_min = 2.0;
  b6.x_max = 8.0;
  std::printf("%s\n",
              stats::render_scatter(core::column_pc(with_pc),
                                    core::column_page_fault_rate(with_pc),
                                    b6)
                  .c_str());

  // B.7: banded by Cw.
  double max_rate = 1.0;
  for (const double f : faults) {
    max_rate = std::max(max_rate, f);
  }
  std::vector<double> mids;
  for (int i = 0; i <= 8; ++i) {
    mids.push_back(max_rate * i / 8.0);
  }
  std::vector<double> low;
  std::vector<double> mid;
  std::vector<double> high;
  for (const core::AnalyzedSample& sample : samples) {
    if (sample.measures.cw <= 0.4) {
      low.push_back(sample.page_fault_rate);
    } else if (sample.measures.cw <= 0.8) {
      mid.push_back(sample.page_fault_rate);
    } else {
      high.push_back(sample.page_fault_rate);
    }
  }
  auto banded = [&](const char* title, const std::vector<double>& values) {
    std::printf("--- %s ---\n", title);
    if (values.empty()) {
      std::printf("(no samples)\n\n");
      return;
    }
    std::printf("%s",
                stats::FreqTable::from_values(values, mids, 0).render(32)
                    .c_str());
    std::printf("median: %.0f\n\n", stats::median(values));
  };
  banded("Figure B.7(a): Cw <= 0.4", low);
  banded("Figure B.7(b): 0.4 < Cw <= 0.8", mid);
  banded("Figure B.7(c): Cw > 0.8", high);

  // B.9 / B.10: regression plots.
  const core::MedianModel vs_cw = core::fit_model(
      samples, core::SystemMeasure::kPageFaultRate, core::Regressor::kCw);
  stats::ScatterOptions b9;
  b9.title = "Figure B.9: model, Page Fault Rate vs. Cw";
  b9.x_label = "Cw";
  b9.y_label = "faults";
  std::printf("%s\n",
              stats::render_curve(0.0, 1.0, 44,
                                  [&](double x) { return vs_cw.predict(x); },
                                  b9)
                  .c_str());
  std::printf("R^2 vs Cw = %.2f (paper: 0.65)\n\n", vs_cw.fit.r_squared);

  const core::MedianModel vs_pc = core::fit_model(
      samples, core::SystemMeasure::kPageFaultRate, core::Regressor::kPc);
  stats::ScatterOptions b10;
  b10.title = "Figure B.10: model, Page Fault Rate vs. Pc";
  b10.x_label = "Pc";
  b10.y_label = "faults";
  std::printf("%s\n",
              stats::render_curve(2.0, 8.0, 44,
                                  [&](double x) { return vs_pc.predict(x); },
                                  b10)
                  .c_str());
  std::printf("R^2 vs Pc = %.2f (paper: 0.61)\n", vs_pc.fit.r_squared);
  return 0;
}
