// Figure 13: Plot of Regression Model, CE Bus Busy vs. Cw.
//
// Paper: "the model predicts almost linear increase in bus activity with
// Workload Concurrency", reaching roughly 0.33 at Cw = 1 (R^2 = 0.89).
#include <cstdio>

#include "common.hpp"
#include "core/regression_models.hpp"
#include "stats/scatter.hpp"

int main() {
  using namespace repro;
  bench::print_header(
      "FIGURE 13 — Regression model: CE Bus Busy vs. Cw",
      "near-linear increase with Cw (R^2 = 0.89)");

  const core::StudyResult study = bench::run_full_study();
  const auto samples = study.all_samples();
  const core::MedianModel model = core::fit_model(
      samples, core::SystemMeasure::kBusBusy, core::Regressor::kCw);

  stats::ScatterOptions options;
  options.title = "fitted second-order model";
  options.x_label = "Cw";
  options.y_label = "CE bus busy";
  std::printf("%s\n",
              stats::render_curve(0.0, 1.0, 44,
                                  [&](double x) { return model.predict(x); },
                                  options)
                  .c_str());

  std::printf("busbusy(0.0)=%.3f  busbusy(0.5)=%.3f  busbusy(1.0)=%.3f\n",
              model.predict(0.0), model.predict(0.5), model.predict(1.0));
  // Near-linearity check: the quadratic term's contribution at Cw=1
  // relative to the total rise.
  const double rise = model.predict(1.0) - model.predict(0.0);
  std::printf("quadratic share of the rise: %.0f%% (paper: small)\n",
              100.0 * model.fit.coeffs[2] / rise);
  std::printf("R^2 = %.2f (paper: 0.89)\n", model.fit.r_squared);
  return 0;
}
