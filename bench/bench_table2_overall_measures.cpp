// Table 2: Overall Concurrency Measures for All Sessions.
//
// Paper values: c8 = 0.2795, Cw = 0.3506, c(8|c) = 0.9278, Pc = 7.66;
// the c2..c7 entries are all below 0.01.
#include <cstdio>

#include "common.hpp"
#include "core/report.hpp"
#include "stats/bootstrap.hpp"

int main() {
  using namespace repro;
  bench::print_header(
      "TABLE 2 — Overall Concurrency Measures for All Sessions",
      "Cw = 0.3506, c8 = 0.2795, c(8|c) = 0.9278, Pc = 7.66");

  const core::StudyResult study = bench::run_full_study();
  std::printf("%s\n", core::render_table2(study.overall).c_str());

  std::printf("paper vs measured:\n");
  std::printf("  Cw      %8.4f  %8.4f\n", 0.3506, study.overall.cw);
  std::printf("  c8      %8.4f  %8.4f\n", 0.2795, study.overall.c[8]);
  std::printf("  c(8|c)  %8.4f  %8.4f\n", 0.9278,
              study.overall.c_cond[8]);
  std::printf("  Pc      %8.2f  %8.2f\n", 7.66, study.overall.pc);

  // Sampling uncertainty (an extension: the thesis reports points only).
  const auto samples = study.all_samples();
  Rng rng(0xB007);
  const auto cw_ci =
      stats::bootstrap_mean_ci(core::column_cw(samples), rng);
  const auto pc_ci =
      stats::bootstrap_mean_ci(core::column_pc(samples), rng);
  std::printf(
      "\n95%% bootstrap CIs over per-sample values (%zu samples):\n"
      "  mean Cw  %.4f [%.4f, %.4f]\n"
      "  mean Pc  %.2f [%.2f, %.2f]\n",
      samples.size(), cw_ci.point, cw_ci.lo, cw_ci.hi, pc_ci.point,
      pc_ci.lo, pc_ci.hi);
  return 0;
}
