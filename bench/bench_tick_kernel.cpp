// Fused hot-tick kernel microbenchmarks (google-benchmark).
//
// The per-cycle simulation path is the floor under every study's runtime:
// concurrency-saturated sessions have 0-3 cycle horizons, so nearly every
// cycle runs through Machine::tick() or its fused batch form
// Machine::tick_block(n). These benchmarks pin the cost of both on a
// machine held in the saturated steady state (eight CEs contending mid
// concurrent loop) so a regression in the lane kernel, the hot-state
// layout, or the block loop shows up as items/sec, not as a slow CI run.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "fx8/machine.hpp"
#include "fx8/mmu.hpp"
#include "fx8/rig_batch.hpp"
#include "isa/program.hpp"
#include "workload/kernels.hpp"

namespace {

using namespace repro;

/// A machine mid concurrent loop with all eight CEs holding iterations —
/// the saturated state sessions 3 and 6 spend most of their time in.
struct SaturatedMachine {
  fx8::NoFaultMmu mmu;
  fx8::Machine machine;
  isa::Program program;

  SaturatedMachine() : machine(fx8::MachineConfig::fx8(), mmu) {
    workload::KernelTuning tuning;
    isa::ConcurrentLoopPhase loop;
    loop.body = workload::matmul_row_body(tuning);
    loop.trip_count = 1u << 20;  // effectively endless for the bench
    program = isa::ProgramBuilder("bench")
                  .data_base(0x01000000)
                  .concurrent_loop(loop)
                  .build();
    machine.cluster().load(&program, 1);
    machine.run(2000);  // past dispatch ramp-up, into the steady state
  }
};

void BM_SaturatedNaiveTick(benchmark::State& state) {
  SaturatedMachine s;
  for (auto _ : state) {
    s.machine.tick();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SaturatedNaiveTick);

void BM_SaturatedTickBlock(benchmark::State& state) {
  SaturatedMachine s;
  const auto block = static_cast<Cycle>(state.range(0));
  Cycle cycles = 0;
  while (state.KeepRunningBatch(static_cast<benchmark::IterationCount>(
      block))) {
    Cycle done = 0;
    while (done < block) {
      done += s.machine.tick_block(block - done);
    }
    cycles += done;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
}
// Block sizes bracketing the controller's kBlockChunk cap (256): the gap
// between n=1 and large n is the per-call overhead the fusion removes.
BENCHMARK(BM_SaturatedTickBlock)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);

// Rig-batch width sweep: B saturated machines advanced in lockstep
// through the wide lane pass (fx8::RigBatch). Items = aggregate machine
// cycles across all lanes, so items/sec is directly comparable to
// BM_SaturatedTickBlock — the B=1 row measures the lane-pass kernel
// without cross-rig interleaving, wider rows add it.
void BM_RigBatchTickBlock(benchmark::State& state) {
  const auto rigs = static_cast<std::size_t>(state.range(0));
  std::vector<std::unique_ptr<SaturatedMachine>> machines;
  for (std::size_t r = 0; r < rigs; ++r) {
    machines.push_back(std::make_unique<SaturatedMachine>());
    // Desynchronize the lanes: freshly built machines are bit-identical
    // twins whose perfectly repeating branch pattern flatters the batch
    // (~1.8x); real bootstrap replicates diverge, so stagger each rig
    // into a different point of the loop before measuring.
    machines.back()->machine.run(101 * r);
  }
  const Cycle block = 256;  // the controller's kBlockChunk cap
  fx8::RigBatch batch;
  Cycle cycles = 0;
  while (state.KeepRunningBatch(
      static_cast<benchmark::IterationCount>(block * rigs))) {
    Cycle done = 0;
    while (done < block * rigs) {
      batch.clear();
      for (std::size_t r = 0; r < rigs; ++r) {
        batch.add(machines[r]->machine, block, r);
      }
      batch.run();
      for (const fx8::RigBatch::Lane& lane : batch.lanes()) {
        done += lane.advanced;
      }
    }
    cycles += done;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
  state.SetLabel(batch.pass_name());
}
BENCHMARK(BM_RigBatchTickBlock)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// Machine-width sweep: a saturated machine at each width preset (every
// cluster mid concurrent loop), advanced through tick_block. Items =
// machine cycles, so items/sec across the rows shows how the per-cycle
// cost scales with width — the width-native kernel's target is one wide
// lane pass per cycle regardless of cluster count.
void BM_WidthTickBlock(benchmark::State& state) {
  const auto width = state.range(0);
  fx8::MachineConfig config =
      width == 8    ? fx8::MachineConfig::fx8()
      : width == 16 ? fx8::MachineConfig::fx16()
      : width == 32 ? fx8::MachineConfig::fx32()
                    : fx8::MachineConfig::fx64();
  fx8::NoFaultMmu mmu;
  fx8::Machine machine(config, mmu);
  workload::KernelTuning tuning;
  std::vector<isa::Program> programs;
  for (std::uint32_t i = 0; i < machine.n_clusters(); ++i) {
    isa::ConcurrentLoopPhase loop;
    loop.body = workload::matmul_row_body(tuning);
    loop.trip_count = 1u << 20;
    programs.push_back(isa::ProgramBuilder("bench-wide")
                           .data_base(0x01000000 + Addr{i} * 0x02000000)
                           .concurrent_loop(loop)
                           .build());
  }
  for (std::uint32_t i = 0; i < machine.n_clusters(); ++i) {
    machine.cluster(i).load(&programs[i], i + 1);
  }
  machine.run(2000);  // past dispatch ramp-up, into the steady state
  const Cycle block = 4096;
  Cycle cycles = 0;
  while (state.KeepRunningBatch(static_cast<benchmark::IterationCount>(
      block))) {
    Cycle done = 0;
    while (done < block) {
      done += machine.tick_block(block - done);
    }
    cycles += done;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
}
BENCHMARK(BM_WidthTickBlock)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_IdleTickBlock(benchmark::State& state) {
  fx8::NoFaultMmu mmu;
  fx8::MachineConfig config = fx8::MachineConfig::fx8();
  config.ip.duty = 0.0;
  fx8::Machine machine(config, mmu);
  const Cycle block = 4096;
  Cycle cycles = 0;
  while (state.KeepRunningBatch(static_cast<benchmark::IterationCount>(
      block))) {
    Cycle done = 0;
    while (done < block) {
      done += machine.tick_block(block - done);
    }
    cycles += done;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
}
BENCHMARK(BM_IdleTickBlock);

}  // namespace
