// Substrate microbenchmarks (google-benchmark): how fast is the simulated
// machine itself? These guard against performance regressions in the
// cycle-stepped core — the measurement studies run millions of cycles, so
// cycles/second here bounds every other bench's runtime.
#include <benchmark/benchmark.h>

#include "base/rng.hpp"
#include "cache/shared_cache.hpp"
#include "fx8/machine.hpp"
#include "fx8/mmu.hpp"
#include "instr/reduction.hpp"
#include "instr/signals.hpp"
#include "isa/program.hpp"
#include "mem/main_memory.hpp"
#include "mem/memory_bus.hpp"
#include "os/system.hpp"
#include "stats/regression.hpp"
#include "workload/generator.hpp"
#include "workload/kernels.hpp"
#include "workload/presets.hpp"

namespace {

using namespace repro;

void BM_IdleMachineTick(benchmark::State& state) {
  fx8::NoFaultMmu mmu;
  fx8::MachineConfig config = fx8::MachineConfig::fx8();
  config.ip.duty = 0.0;
  fx8::Machine machine(config, mmu);
  for (auto _ : state) {
    machine.tick();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IdleMachineTick);

void BM_LoadedMachineTick(benchmark::State& state) {
  fx8::NoFaultMmu mmu;
  fx8::Machine machine(fx8::MachineConfig::fx8(), mmu);
  workload::KernelTuning tuning;
  isa::ConcurrentLoopPhase loop;
  loop.body = workload::matmul_row_body(tuning);
  loop.trip_count = 1u << 20;  // effectively endless for the bench
  const isa::Program program = isa::ProgramBuilder("bench")
                                   .data_base(0x01000000)
                                   .concurrent_loop(loop)
                                   .build();
  machine.cluster().load(&program, 1);
  for (auto _ : state) {
    machine.tick();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LoadedMachineTick);

void BM_FullSystemTick(benchmark::State& state) {
  os::System system{os::SystemConfig{}};
  workload::WorkloadGenerator generator(workload::high_concurrency_mix(),
                                        42);
  for (auto _ : state) {
    generator.tick(system);
    system.tick();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullSystemTick);

void BM_SharedCacheHit(benchmark::State& state) {
  mem::MainMemory memory{mem::MainMemoryConfig{}};
  mem::MemoryBus bus{mem::MemoryBusConfig{}, memory};
  cache::SharedCache cache{cache::SharedCacheConfig{}, bus};
  // Warm one line.
  (void)cache.access(0, 0x1000, cache::AccessType::kRead);
  Cycle now = 0;
  while (!cache.take_fill_ready(0)) {
    bus.tick(now++);
    cache.tick();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.access(0, 0x1000, cache::AccessType::kRead));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SharedCacheHit);

void BM_ProbeLatchAndReduce(benchmark::State& state) {
  fx8::NoFaultMmu mmu;
  fx8::Machine machine(fx8::MachineConfig::fx8(), mmu);
  instr::EventCounts counts;
  for (auto _ : state) {
    counts.accumulate(instr::latch(machine));
  }
  benchmark::DoNotOptimize(counts.records);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProbeLatchAndReduce);

void BM_MedianModelFit(benchmark::State& state) {
  Rng rng(7);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    const double cw = rng.uniform01();
    x.push_back(cw);
    y.push_back(0.002 + 0.02 * cw * cw + rng.normal(0, 0.002));
  }
  std::vector<double> mids;
  for (int i = 0; i <= 10; ++i) {
    mids.push_back(i / 10.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::fit_median_model(x, y, mids));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MedianModelFit);

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNext);

}  // namespace
