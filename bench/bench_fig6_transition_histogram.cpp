// Figure 6: Number of Records with N Processors Active / Concurrency
// Transition Periods.
//
// Paper (triggered captures of 8-active -> lower): 2-active accounts for
// 52.4% of the transition records; 7..3 shares are 8.0/8.1/5.5/15.5/10.5%.
// "transitions between 7 and 2 processors active occur significantly
// faster than the transition from 2 processors to serial operation."
#include <cstdio>

#include "common.hpp"
#include "core/transition.hpp"
#include "workload/presets.hpp"

int main() {
  using namespace repro;
  bench::print_header(
      "FIGURE 6 — Transition-Period Activity Histogram",
      "2-active dominates at 52.4%; the 7->3 states drain quickly");

  const core::TransitionResult result = core::run_transition_study(
      workload::high_concurrency_mix(), bench::transition_config(),
      instr::TriggerMode::kTransitionFromFull);

  std::printf("captures: %u completed, %u timed out\n\n",
              result.captures_completed, result.captures_timed_out);
  const double paper_share[8] = {0, 0, 52.43, 10.49, 15.49, 5.48, 8.08,
                                 8.03};
  std::printf("  state    paper    measured\n");
  for (std::uint32_t j = 7; j >= 2; --j) {
    std::printf("  %u-active  %5.1f%%   %5.1f%%\n", j, paper_share[j],
                100.0 * result.transition_share(j));
  }

  std::uint32_t dominant = 2;
  for (std::uint32_t j = 3; j < 8; ++j) {
    if (result.state_counts[j] > result.state_counts[dominant]) {
      dominant = j;
    }
  }
  std::printf("\ndominant transition state: %u-active (paper: 2-active)\n",
              dominant);
  std::printf("idle overhead across transition records: %.1f%% of the\n"
              "processor-cycles an instantaneous drain would deliver "
              "(§4.3's multiprocessing overhead)\n",
              100.0 * result.idle_overhead());
  return 0;
}
