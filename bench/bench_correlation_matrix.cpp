// Correlation matrix of the study's measures.
//
// A compact numerical summary of Chapter 5's qualitative statements:
// miss rate, bus busy and page-fault rate should correlate strongly with
// Cw; miss rate's correlation with Pc should be visibly weaker ("Little
// correlation between Missrate and Pc is seen", §5.3). Reported both as
// Pearson r and Spearman rank-r over the per-sample values.
#include <cstdio>

#include "common.hpp"
#include "core/sample.hpp"
#include "stats/correlation.hpp"

int main() {
  using namespace repro;
  bench::print_header(
      "EXTENSION — correlation matrix of the sampled measures",
      "strong Cw columns, weak missrate-vs-Pc entry (§5.3)");

  const core::StudyResult study = bench::run_full_study();
  // Use only Pc-defined samples so every series has equal length.
  const auto samples = core::with_defined_pc(study.all_samples());

  std::vector<stats::Series> series = {
      {"Cw", core::column_cw(samples)},
      {"Pc", core::column_pc(samples)},
      {"missrate", core::column_miss_rate(samples)},
      {"busbusy", core::column_bus_busy(samples)},
      {"pfrate", core::column_page_fault_rate(samples)},
  };

  std::printf("%zu concurrent samples\n\n", samples.size());
  std::printf("%s\n", stats::render_correlation_matrix(series).c_str());
  std::printf("%s\n",
              stats::render_correlation_matrix(series, /*rank=*/true)
                  .c_str());

  const double r_cw = stats::pearson(series[0].values, series[2].values);
  const double r_pc = stats::pearson(series[1].values, series[2].values);
  std::printf("missrate correlation: with Cw %.3f vs with Pc %.3f "
              "(paper: the former dominates)\n",
              r_cw, r_pc);
  return 0;
}
