// Parallel study engine throughput: serial vs thread-pooled sessions.
//
// The nine measurement sessions are independent simulations, so the
// study pipeline parallelizes across them (docs/parallel_execution.md).
// This bench runs the same default study with threads=1 and threads=N,
// verifies the results are bit-identical, and reports simulated
// cycles/sec plus the wall-clock speedup as JSON — both to stdout and to
// BENCH_parallel_study.json — so perf regressions in the simulator tick
// or the pool show up as a datapoint, not an anecdote.
#include <chrono>
#include <cstdio>
#include <string>

#include "base/thread_pool.hpp"
#include "common.hpp"
#include "core/regression_models.hpp"
#include "core/study.hpp"

namespace {

using namespace repro;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Bit-exact equality of everything a study reports: aggregate counts,
/// per-session measures, and the Table 3/4 regression coefficients.
bool identical(const core::StudyResult& a, const core::StudyResult& b) {
  if (a.totals.num != b.totals.num || a.totals.proc != b.totals.proc ||
      a.totals.ceop != b.totals.ceop || a.totals.membop != b.totals.membop ||
      a.overall.cw != b.overall.cw || a.overall.pc != b.overall.pc ||
      a.sessions.size() != b.sessions.size()) {
    return false;
  }
  for (std::size_t s = 0; s < a.sessions.size(); ++s) {
    const core::SessionResult& sa = a.sessions[s];
    const core::SessionResult& sb = b.sessions[s];
    if (sa.name != sb.name || sa.totals.num != sb.totals.num ||
        sa.overall.cw != sb.overall.cw || sa.overall.pc != sb.overall.pc ||
        sa.samples.size() != sb.samples.size()) {
      return false;
    }
  }
  const auto models_a = core::fit_all_models(a.all_samples());
  const auto models_b = core::fit_all_models(b.all_samples());
  if (models_a.size() != models_b.size()) {
    return false;
  }
  for (std::size_t m = 0; m < models_a.size(); ++m) {
    if (models_a[m].fit.coeffs != models_b[m].fit.coeffs) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  bench::print_header(
      "PERF — parallel study engine (thread-pooled sessions)",
      "nine independent sampling sessions ran the study (§3.5); they are "
      "embarrassingly parallel and must stay bit-reproducible");

  core::StudyConfig config = bench::study_config();
  config.samples_per_session = 6;
  config.sampling.interval_cycles = 40000;
  config.warmup_cycles = 10000;

  const std::size_t sessions = workload::session_presets().size();
  const double cycles_per_session = static_cast<double>(
      config.warmup_cycles +
      static_cast<Cycle>(config.samples_per_session) *
          config.sampling.interval_cycles);
  const double total_cycles =
      cycles_per_session * static_cast<double>(sessions);

  config.threads = 1;
  const auto serial_start = std::chrono::steady_clock::now();
  const core::StudyResult serial = core::run_default_study(config);
  const double serial_seconds = seconds_since(serial_start);

  config.threads = 0;  // auto: FX8_THREADS or hardware_concurrency
  const std::uint32_t threads = core::resolve_threads(config);
  config.threads = threads;
  const auto parallel_start = std::chrono::steady_clock::now();
  const core::StudyResult parallel = core::run_default_study(config);
  const double parallel_seconds = seconds_since(parallel_start);

  const bool bit_identical = identical(serial, parallel);
  const double speedup =
      parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;

  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\": \"parallel_study\", \"sessions\": %zu, "
      "\"threads\": %u, \"total_cycles\": %.0f, "
      "\"serial_seconds\": %.4f, \"parallel_seconds\": %.4f, "
      "\"serial_cycles_per_sec\": %.0f, \"parallel_cycles_per_sec\": %.0f, "
      "\"speedup\": %.3f, \"bit_identical\": %s}",
      sessions, threads, total_cycles, serial_seconds, parallel_seconds,
      serial_seconds > 0.0 ? total_cycles / serial_seconds : 0.0,
      parallel_seconds > 0.0 ? total_cycles / parallel_seconds : 0.0,
      speedup, bit_identical ? "true" : "false");

  std::printf("%s\n", json);
  if (std::FILE* out = std::fopen("BENCH_parallel_study.json", "w")) {
    std::fprintf(out, "%s\n", json);
    std::fclose(out);
    std::printf("\nwrote BENCH_parallel_study.json\n");
  }

  if (!bit_identical) {
    std::fprintf(stderr,
                 "FAIL: threads=%u study differs from the serial study\n",
                 threads);
    return 1;
  }
  return 0;
}
