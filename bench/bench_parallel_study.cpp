// Study engine throughput: event-horizon fast-forward and the
// thread-pooled parallel path.
//
// The nine measurement sessions are independent simulations, so the
// study pipeline parallelizes across (session, replicate) tasks
// (docs/parallel_execution.md). Independently, the simulator core can
// fast-forward deterministic quiet stretches in one jump instead of
// ticking cycle-by-cycle (the event-horizon contract). This bench runs
// the same default study three ways —
//
//   1. serial, fast-forward off (the naive reference),
//   2. serial, fast-forward on,
//   3. parallel (auto threads), fast-forward on, finer replicate tasks,
//   4. bootstrap-heavy: eight replicate rigs per session on one thread,
//      advanced serially and then in lockstep (rig_batch = 8) through
//      the wide lane kernel,
//
// verifies all runs are bit-identical, and reports simulated
// cycles/sec for each plus the fast-forward and parallel speedups as
// JSON — both to stdout and to BENCH_parallel_study.json — so perf
// regressions in the tick loop, the horizon logic, or the pool show up
// as a datapoint, not an anecdote.
//
// With --baseline, only run 1 executes (no comparisons): a self-check
// mode for measuring the naive path alone, e.g. before/after a horizon
// change, writing the same JSON shape with the other fields zeroed.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "base/thread_pool.hpp"
#include "core/presets.hpp"
#include "fx8/lane_kernel.hpp"
#include "fx8/machine.hpp"
#include "core/regression_models.hpp"
#include "core/study.hpp"
#include "workload/presets.hpp"

namespace {

using namespace repro;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Bit-exact equality of everything a study reports: aggregate counts,
/// per-session measures, and the Table 3/4 regression coefficients.
bool identical(const core::StudyResult& a, const core::StudyResult& b) {
  if (a.totals.num != b.totals.num || a.totals.proc != b.totals.proc ||
      a.totals.ceop != b.totals.ceop || a.totals.membop != b.totals.membop ||
      a.overall.cw != b.overall.cw || a.overall.pc != b.overall.pc ||
      a.sessions.size() != b.sessions.size()) {
    return false;
  }
  for (std::size_t s = 0; s < a.sessions.size(); ++s) {
    const core::SessionResult& sa = a.sessions[s];
    const core::SessionResult& sb = b.sessions[s];
    if (sa.name != sb.name || sa.totals.num != sb.totals.num ||
        sa.overall.cw != sb.overall.cw || sa.overall.pc != sb.overall.pc ||
        sa.samples.size() != sb.samples.size()) {
      return false;
    }
  }
  const auto models_a = core::fit_all_models(a.all_samples());
  const auto models_b = core::fit_all_models(b.all_samples());
  if (models_a.size() != models_b.size()) {
    return false;
  }
  for (std::size_t m = 0; m < models_a.size(); ++m) {
    if (models_a[m].fit.has_value() != models_b[m].fit.has_value()) {
      return false;
    }
    if (models_a[m].fit && models_a[m].fit->coeffs != models_b[m].fit->coeffs) {
      return false;
    }
  }
  return true;
}

struct TimedRun {
  core::StudyResult result;
  double seconds = 0.0;
};

/// Run the study `reps` times and keep the best wall-clock: the study
/// itself is deterministic, so the minimum is the least-interfered
/// measurement (this box time-slices with other work).
TimedRun timed_study(const core::StudyConfig& config, int reps = 3) {
  TimedRun run;
  run.seconds = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    core::StudyResult result = core::run_default_study(config);
    const double seconds = seconds_since(start);
    if (rep == 0 || seconds < run.seconds) {
      run.seconds = seconds;
    }
    if (rep == 0) {
      run.result = std::move(result);
    }
  }
  return run;
}

double rate(double cycles, double seconds) {
  return seconds > 0.0 ? cycles / seconds : 0.0;
}

/// Serial fast-forward cycles/sec of one session, best of `reps` (the
/// per-session numbers that make the fused-kernel gain on the saturated
/// presets a datapoint rather than an anecdote).
double session_rate(const workload::WorkloadMix& mix,
                    const core::StudyConfig& config, double session_cycles,
                    int reps = 3) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const core::SessionResult result = core::run_session(mix, config, 12345);
    const double seconds = seconds_since(start);
    (void)result;
    best = std::max(best, rate(session_cycles, seconds));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bool baseline_only =
      argc > 1 && std::strcmp(argv[1], "--baseline") == 0;

  std::printf(
      "=============================================================\n"
      "PERF — study engine (event-horizon fast-forward + thread pool)\n"
      "Paper: nine independent sampling sessions ran the study (§3.5); "
      "they are\nembarrassingly parallel and must stay bit-reproducible\n"
      "=============================================================\n\n");

  // The CI-scale study population (core/presets.hpp) — big enough to
  // time, small enough for the perf-smoke job.
  core::StudyConfig config = core::presets::quick_study();

  const std::size_t sessions = workload::session_presets().size();
  const double cycles_per_session = static_cast<double>(
      config.warmup_cycles +
      static_cast<Cycle>(config.samples_per_session) *
          config.sampling.interval_cycles);
  const double total_cycles =
      cycles_per_session * static_cast<double>(sessions);

  // Run 1: serial, naive tick loop — the reference for everything else.
  config.threads = 1;
  config.fast_forward = false;
  const TimedRun naive = timed_study(config);

  TimedRun ff;
  TimedRun parallel;
  std::uint32_t threads = 1;
  std::uint32_t replicates = 1;
  bool bit_identical = true;
  if (!baseline_only) {
    // Run 2: serial, fast-forward on. Same decomposition, same seeds —
    // any deviation from run 1 is a horizon-contract bug.
    config.fast_forward = true;
    ff = timed_study(config);

    // Run 3: pooled (session, replicate) tasks, fast-forward on.
    config.threads = 0;  // auto: FX8_THREADS or usable cores
    threads = core::resolve_threads(config);
    config.threads = threads;
    config.replicates_per_session = 3;
    replicates = config.replicates_per_session;
    parallel = timed_study(config);

    // Replicate decomposition changes the sample population (each
    // replicate warms its own system), so the parallel run is compared
    // against a serial run of the *same* config, not against run 1.
    core::StudyConfig serial_replicated = config;
    serial_replicated.threads = 1;
    const core::StudyResult reference =
        core::run_default_study(serial_replicated);

    bit_identical = identical(naive.result, ff.result) &&
                    identical(reference, parallel.result);
  }

  // Run 4: the bootstrap-heavy datapoint — eight replicate rigs per
  // session on one thread, advanced serially (rig_batch = 1) and then
  // in lockstep through the wide lane kernel (rig_batch = 8). Same
  // decomposition, same seeds: the two runs must be bit-identical, and
  // their wall-clock ratio is the rig-batching speedup on top of the
  // fused serial kernel.
  TimedRun batch_serial;
  TimedRun batched;
  std::uint32_t batch_rigs = 0;
  double batch_total_cycles = 0.0;
  if (!baseline_only) {
    core::StudyConfig bootstrap = core::presets::quick_study();
    bootstrap.threads = 1;
    bootstrap.fast_forward = true;
    bootstrap.replicates_per_session = 8;
    bootstrap.rig_batch = 1;
    batch_serial = timed_study(bootstrap);
    bootstrap.rig_batch = 8;
    batch_rigs = bootstrap.rig_batch;
    batched = timed_study(bootstrap);
    bit_identical =
        bit_identical && identical(batch_serial.result, batched.result);
    // Every replicate warms its own rig, so the simulated-cycle total
    // grows with the replicate count.
    batch_total_cycles =
        static_cast<double>(sessions) *
        (static_cast<double>(bootstrap.replicates_per_session) *
             static_cast<double>(bootstrap.warmup_cycles) +
         static_cast<double>(bootstrap.samples_per_session) *
             static_cast<double>(bootstrap.sampling.interval_cycles));
  }
  const double batch_speedup = !baseline_only && batched.seconds > 0.0
                                   ? batch_serial.seconds / batched.seconds
                                   : 0.0;

  // Run 5: the width-16 topology datapoint — the same quick study on a
  // two-cluster fx16 machine (serial, fast-forward on), plus a
  // batched-vs-serial identity check at that width, so scale-out
  // throughput and correctness regressions land on the dashboard too.
  TimedRun width16;
  if (!baseline_only) {
    core::StudyConfig wide = core::presets::quick_study();
    wide.threads = 1;
    wide.fast_forward = true;
    wide.system.machine = fx8::MachineConfig::fx16();
    width16 = timed_study(wide);
    core::StudyConfig wide_batched = wide;
    wide_batched.replicates_per_session = 4;
    wide_batched.rig_batch = 4;
    core::StudyConfig wide_serial = wide_batched;
    wide_serial.rig_batch = 1;
    bit_identical = bit_identical &&
                    identical(core::run_default_study(wide_serial),
                              core::run_default_study(wide_batched));
  }

  // Run 6: the width-64 datapoint — eight clusters through the
  // machine-wide lane pass. The widest preset is where the width-native
  // kernel (one pass per cycle instead of one per cluster) pays most, so
  // its cycles/sec rides the dashboard next to width16.
  TimedRun width64;
  if (!baseline_only) {
    core::StudyConfig widest = core::presets::quick_study();
    widest.threads = 1;
    widest.fast_forward = true;
    widest.system.machine = fx8::MachineConfig::fx64();
    width64 = timed_study(widest);
  }

  // Per-session serial fast-forward rates (the fused-kernel headline:
  // concurrency-saturated sessions 3 and 6 are the slowest per cycle).
  core::StudyConfig per_session = config;
  per_session.threads = 1;
  per_session.fast_forward = true;
  per_session.replicates_per_session = 1;
  std::string session_json;
  if (!baseline_only) {
    const auto mixes = workload::session_presets();
    for (std::size_t m = 0; m < mixes.size(); ++m) {
      const double cps =
          session_rate(mixes[m], per_session, cycles_per_session);
      char entry[160];
      std::snprintf(entry, sizeof(entry), "%s\"%s\": %.0f",
                    m == 0 ? "" : ", ", mixes[m].name.c_str(), cps);
      session_json += entry;
    }
  }

  const double ff_speedup =
      !baseline_only && ff.seconds > 0.0 ? naive.seconds / ff.seconds : 0.0;
  const double parallel_speedup = !baseline_only && parallel.seconds > 0.0
                                      ? ff.seconds / parallel.seconds
                                      : 0.0;

  // A parallel-vs-serial speedup needs at least two workers to mean
  // anything: on a one-core box the "parallel" run is the serial run
  // with pool overhead, and reporting its ratio would record a bogus
  // ~1.0 datapoint that perf dashboards then treat as a regression.
  // The field is omitted entirely in that case; consumers must probe
  // for it (the CI perf-smoke gate does).
  std::string speedup_json;
  if (!baseline_only && threads >= 2) {
    char entry[48];
    std::snprintf(entry, sizeof(entry), "\"speedup\": %.3f, ",
                  parallel_speedup);
    speedup_json = entry;
  }

  char head[1536];
  std::snprintf(
      head, sizeof(head),
      "{\"bench\": \"parallel_study\", \"sessions\": %zu, "
      "\"threads\": %u, \"replicates\": %u, \"total_cycles\": %.0f, "
      "\"baseline_only\": %s, "
      "\"serial_seconds\": %.4f, \"parallel_seconds\": %.4f, "
      "\"serial_cycles_per_sec\": %.0f, \"parallel_cycles_per_sec\": %.0f, "
      "\"ff_off_seconds\": %.4f, \"ff_on_seconds\": %.4f, "
      "\"ff_off_cycles_per_sec\": %.0f, \"ff_on_cycles_per_sec\": %.0f, "
      "\"ff_speedup\": %.3f, ",
      sessions, threads, replicates, total_cycles,
      baseline_only ? "true" : "false", ff.seconds, parallel.seconds,
      rate(total_cycles, ff.seconds), rate(total_cycles, parallel.seconds),
      naive.seconds, ff.seconds, rate(total_cycles, naive.seconds),
      rate(total_cycles, ff.seconds), ff_speedup);
  char batch_json[384];
  std::snprintf(
      batch_json, sizeof(batch_json),
      "\"batch_rigs\": %u, \"lane_kernel\": \"%s\", "
      "\"batch_total_cycles\": %.0f, "
      "\"batch_serial_seconds\": %.4f, \"batch_seconds\": %.4f, "
      "\"batch_serial_cycles_per_sec\": %.0f, "
      "\"batch_cycles_per_sec\": %.0f, \"batch_speedup\": %.3f, ",
      batch_rigs, fx8::lane_pass_name(fx8::select_lane_pass()),
      batch_total_cycles, batch_serial.seconds, batched.seconds,
      rate(batch_total_cycles, batch_serial.seconds),
      rate(batch_total_cycles, batched.seconds), batch_speedup);
  char width_json[320];
  std::snprintf(
      width_json, sizeof(width_json),
      "\"width16_seconds\": %.4f, \"width16_cycles_per_sec\": %.0f, "
      "\"width64_seconds\": %.4f, \"width64_cycles_per_sec\": %.0f, ",
      width16.seconds, rate(total_cycles, width16.seconds),
      width64.seconds, rate(total_cycles, width64.seconds));

  char tail[512];
  std::snprintf(
      tail, sizeof(tail),
      "\"ff_skipped_cycles\": %llu, \"ff_block_cycles\": %llu, "
      "\"ff_naive_cycles\": %llu, "
      "\"bit_identical\": %s, \"session_cycles_per_sec\": {",
      static_cast<unsigned long long>(ff.result.ff.skipped_cycles),
      static_cast<unsigned long long>(ff.result.ff.block_cycles),
      static_cast<unsigned long long>(ff.result.ff.naive_cycles),
      bit_identical ? "true" : "false");
  const std::string json = std::string(head) + speedup_json + batch_json +
                           width_json + tail + session_json + "}}";

  std::printf("%s\n", json.c_str());
  if (std::FILE* out = std::fopen("BENCH_parallel_study.json", "w")) {
    std::fprintf(out, "%s\n", json.c_str());
    std::fclose(out);
    std::printf("\nwrote BENCH_parallel_study.json\n");
  }

  if (!bit_identical) {
    std::fprintf(stderr,
                 "FAIL: fast-forward or threads=%u study differs from the "
                 "naive serial study\n",
                 threads);
    return 1;
  }
  return 0;
}
