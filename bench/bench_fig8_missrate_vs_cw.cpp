// Figure 8: Missrate vs. Workload Concurrency (scatter).
//
// Paper: the highest miss-rate values occur at maximum Cw; increasing Cw
// increases the probability of a high miss rate, but high Cw does not
// preclude a low miss rate (well-behaved locality, icache fits, vector
// register reuse, cross-CE sharing — §5.1).
#include <cstdio>

#include "common.hpp"
#include "stats/descriptive.hpp"
#include "stats/scatter.hpp"

int main() {
  using namespace repro;
  bench::print_header(
      "FIGURE 8 — Missrate vs. Workload Concurrency (scatter)",
      "highest missrates at max Cw; high Cw does not preclude low "
      "missrate");

  const core::StudyResult study = bench::run_full_study();
  const auto samples = study.all_samples();
  const auto cw = core::column_cw(samples);
  const auto miss = core::column_miss_rate(samples);

  stats::ScatterOptions options;
  options.title = "Missrate vs. Cw  (SAS letters: A=1 obs, B=2, ...)";
  options.x_label = "Cw";
  options.y_label = "missrate";
  options.x_min = 0.0;
  options.x_max = 1.0;
  std::printf("%s\n", stats::render_scatter(cw, miss, options).c_str());

  // Split the claim into the testable halves.
  std::vector<double> low_cw_miss;
  std::vector<double> high_cw_miss;
  for (std::size_t i = 0; i < cw.size(); ++i) {
    (cw[i] < 0.4 ? low_cw_miss : high_cw_miss).push_back(miss[i]);
  }
  if (!low_cw_miss.empty() && !high_cw_miss.empty()) {
    std::printf("max missrate:  Cw<0.4: %.4f   Cw>=0.4: %.4f\n",
                stats::max_of(low_cw_miss), stats::max_of(high_cw_miss));
    std::printf("min missrate at Cw>=0.4: %.4f (low values still occur)\n",
                stats::min_of(high_cw_miss));
  }
  return 0;
}
