// fx8bench — the one reproduction harness.
//
// Every table, figure and appendix of the paper (plus the design
// ablations and §6 extensions) is registered in the artifact catalog
// (src/artifacts/); this binary selects artifacts, runs them against ONE
// shared input cache — the nine-session study and the transition study
// execute at most once per invocation, however many artifacts read them
// — prints the same human-readable text the old one-shot bench binaries
// did, and optionally writes a structured JSON report.
//
// Usage:
//   fx8bench --list                 catalog ids, one per line
//   fx8bench --all                  run everything, paper-scale
//   fx8bench --only fig12,table2    run a comma-separated selection
//   fx8bench --quick                CI-scale populations (~seconds)
//   fx8bench --json report.json     write the structured report
//   fx8bench --cache-dir <dir>      persistent result cache: artifacts
//                                   whose inputs are unchanged load from
//                                   disk instead of re-running (also via
//                                   the FX8BENCH_CACHE_DIR environment
//                                   variable; see docs/benchmarks.md)
//   fx8bench --no-cache             ignore any configured cache
//   fx8bench --cache-stats          print hit/miss/bytes counters
//
// Exit code: 0 all artifacts ok; 1 a headline metric fell outside its
// paper-tolerance band (or came out NaN); 2 a render failed outright.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "artifacts/inputs.hpp"
#include "artifacts/registry.hpp"
#include "artifacts/result_store.hpp"
#include "artifacts/runner.hpp"
#include "core/json.hpp"

namespace {

using namespace repro;

void print_usage() {
  std::printf(
      "usage: fx8bench [--list] [--all | --only id1,id2,...]\n"
      "                [--quick] [--json <path>]\n"
      "                [--cache-dir <dir>] [--no-cache] [--cache-stats]\n");
}

std::vector<std::string> split_ids(const std::string& arg) {
  std::vector<std::string> ids;
  std::string current;
  for (const char ch : arg) {
    if (ch == ',') {
      if (!current.empty()) {
        ids.push_back(current);
        current.clear();
      }
    } else {
      current.push_back(ch);
    }
  }
  if (!current.empty()) {
    ids.push_back(current);
  }
  return ids;
}

void print_list() {
  std::printf("%-28s %-10s %s\n", "id", "kind", "paper reference");
  for (const artifacts::ArtifactDef& def : artifacts::catalog()) {
    std::printf("%-28s %-10s %s\n", def.id.c_str(),
                artifacts::to_string(def.kind), def.paper_ref.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool list = false;
  bool all = false;
  bool quick = false;
  bool no_cache = false;
  bool cache_stats = false;
  std::string cache_dir;
  std::string json_path;
  std::vector<std::string> only_ids;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list = true;
    } else if (arg == "--all") {
      all = true;
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--no-cache") {
      no_cache = true;
    } else if (arg == "--cache-stats") {
      cache_stats = true;
    } else if (arg == "--cache-dir") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fx8bench: --cache-dir needs a path\n");
        return 2;
      }
      cache_dir = argv[++i];
    } else if (arg == "--only") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fx8bench: --only needs an id list\n");
        return 2;
      }
      const auto ids = split_ids(argv[++i]);
      only_ids.insert(only_ids.end(), ids.begin(), ids.end());
    } else if (arg == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fx8bench: --json needs a path\n");
        return 2;
      }
      json_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else {
      std::fprintf(stderr, "fx8bench: unknown argument '%s'\n", arg.c_str());
      print_usage();
      return 2;
    }
  }

  if (list) {
    print_list();
    return 0;
  }
  if (!all && only_ids.empty()) {
    print_usage();
    return 2;
  }

  // Resolve the selection in catalog order; --only keeps the caller's
  // order so `--only fig7,fig6` renders fig7 first.
  std::vector<const artifacts::ArtifactDef*> selection;
  if (all) {
    for (const artifacts::ArtifactDef& def : artifacts::catalog()) {
      selection.push_back(&def);
    }
  } else {
    for (const std::string& id : only_ids) {
      const artifacts::ArtifactDef* def = artifacts::find_artifact(id);
      if (def == nullptr) {
        const artifacts::ArtifactDef* nearest =
            artifacts::suggest_artifact(id);
        if (nearest != nullptr) {
          std::fprintf(stderr,
                       "fx8bench: unknown artifact '%s' — did you mean "
                       "'%s'? (see --list)\n",
                       id.c_str(), nearest->id.c_str());
        } else {
          std::fprintf(stderr,
                       "fx8bench: unknown artifact '%s' (see --list)\n",
                       id.c_str());
        }
        return 2;
      }
      selection.push_back(def);
    }
  }

  // Cache resolution: --no-cache beats everything; otherwise --cache-dir,
  // falling back to the FX8BENCH_CACHE_DIR environment variable. With
  // neither, results are only memoized in-process (the pre-cache
  // behaviour).
  if (cache_dir.empty()) {
    if (const char* env = std::getenv("FX8BENCH_CACHE_DIR")) {
      cache_dir = env;
    }
  }
  if (no_cache) {
    cache_dir.clear();
  }

  std::optional<artifacts::Inputs> inputs_storage;
  try {
    inputs_storage.emplace(quick, cache_dir);
  } catch (const capsule::CapsuleError& error) {
    std::fprintf(stderr, "fx8bench: %s\n", error.what());
    return 2;
  }
  artifacts::Inputs& inputs = *inputs_storage;
  artifacts::RunReport report;
  {
    // Stream per-artifact output as it renders rather than waiting for
    // the whole run.
    const auto start_counts = [](artifacts::RunReport& out,
                                 const artifacts::ArtifactResult& result) {
      switch (result.status) {
        case artifacts::ArtifactStatus::kOk:
          ++out.ok;
          break;
        case artifacts::ArtifactStatus::kToleranceFailed:
          ++out.tolerance_failed;
          break;
        case artifacts::ArtifactStatus::kError:
          ++out.errors;
          break;
      }
    };
    for (const artifacts::ArtifactDef* def : selection) {
      std::fputs(artifacts::render_header(*def).c_str(), stdout);
      artifacts::ArtifactResult result =
          artifacts::run_artifact(*def, inputs);
      std::fputs(result.text.c_str(), stdout);
      if (result.status == artifacts::ArtifactStatus::kError) {
        std::printf("\n[%s] ERROR: %s\n", result.id.c_str(),
                    result.error.c_str());
      } else {
        for (const artifacts::Check& check : result.checks) {
          if (check.enforced && !check.pass) {
            std::printf("\n[%s] TOLERANCE: %s = %g outside [%g, %g] "
                        "(paper %g)\n",
                        result.id.c_str(), check.name.c_str(),
                        check.measured, check.lo, check.hi, check.paper);
          }
        }
      }
      std::printf("\n");
      report.total_seconds += result.seconds;
      start_counts(report, result);
      report.results.push_back(std::move(result));
      std::fflush(stdout);
    }
    report.run_counts = inputs.run_counts();
  }

  // Summary footer.
  std::printf("=============================================================\n");
  std::printf("fx8bench: %zu artifacts, %d ok, %d tolerance-failed, "
              "%d errors (%.1fs%s)\n",
              report.results.size(), report.ok, report.tolerance_failed,
              report.errors, report.total_seconds,
              quick ? ", quick" : "");
  std::printf("experiments: %d study run(s), %d transition run(s), "
              "%d artifact-private run(s)\n",
              report.run_counts.study_runs,
              report.run_counts.transition_runs,
              report.run_counts.private_runs);
  if (const artifacts::ResultStore* store = inputs.store()) {
    const artifacts::CacheStats& stats = store->stats();
    std::printf("cache: %llu hit(s), %llu miss(es) (%llu bloom-skipped, "
                "%llu corrupt), %llu put(s), %llu B read, %llu B written "
                "[%s]\n",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                static_cast<unsigned long long>(stats.bloom_skips),
                static_cast<unsigned long long>(stats.corrupt_misses),
                static_cast<unsigned long long>(stats.puts),
                static_cast<unsigned long long>(stats.bytes_read),
                static_cast<unsigned long long>(stats.bytes_written),
                store->dir().c_str());
  } else if (cache_stats) {
    std::printf("cache: disabled (pass --cache-dir or set "
                "FX8BENCH_CACHE_DIR)\n");
  }

  if (!json_path.empty()) {
    const core::Json doc = artifacts::build_report_json(
        report, inputs, inputs.study_for_report());
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "fx8bench: cannot write '%s'\n",
                   json_path.c_str());
      return 2;
    }
    out << doc.dump(2) << '\n';
    std::printf("report: %s\n", json_path.c_str());
  }
  return report.exit_code();
}
