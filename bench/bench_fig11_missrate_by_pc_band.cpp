// Figure 11 (a)-(c): Distribution of Miss Rate banded by Pc.
//
// Paper medians: Pc <= 6.0: 0.004; 6.0 < Pc <= 7.5: 0.017; Pc > 7.5:
// 0.017. "Median value of Missrate shows no increase between the middle
// and high ranges of Pc, indicating less sensitivity to this measure
// than Cw."
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "stats/descriptive.hpp"
#include "stats/freq_table.hpp"

namespace {

void print_band(const char* title, const std::vector<double>& miss,
                double paper_median) {
  using namespace repro;
  std::printf("--- %s ---\n", title);
  if (miss.empty()) {
    std::printf("(no samples in this band)\n\n");
    return;
  }
  std::vector<double> mids;
  for (int i = 0; i <= 10; ++i) {
    mids.push_back(static_cast<double>(i) / 100.0);
  }
  std::printf("%s",
              stats::FreqTable::from_values(miss, mids, 2).render(40)
                  .c_str());
  std::printf("mean: %.4f  median: %.4f  (paper median: %.3f)\n\n",
              stats::mean(miss), stats::median(miss), paper_median);
}

}  // namespace

int main() {
  using namespace repro;
  bench::print_header(
      "FIGURE 11 — Distribution of Miss Rate by Pc band",
      "medians 0.004 / 0.017 / 0.017: no increase between the middle and "
      "high Pc ranges");

  const core::StudyResult study = bench::run_full_study();
  const auto samples = core::with_defined_pc(study.all_samples());

  std::vector<double> low;
  std::vector<double> mid;
  std::vector<double> high;
  for (const core::AnalyzedSample& sample : samples) {
    if (sample.measures.pc <= 6.0) {
      low.push_back(sample.miss_rate);
    } else if (sample.measures.pc <= 7.5) {
      mid.push_back(sample.miss_rate);
    } else {
      high.push_back(sample.miss_rate);
    }
  }
  print_band("(a) Pc <= 6.0", low, 0.004);
  print_band("(b) 6.0 < Pc <= 7.5", mid, 0.017);
  print_band("(c) Pc > 7.5", high, 0.017);
  return 0;
}
