// Appendix B (CE Bus Busy): Figures B.1-B.4.
//
//   B.1 — scatter, bus busy vs. Cw (rising wedge),
//   B.2 — scatter, bus busy vs. Pc,
//   B.3 (a-c) — banded distributions by Cw (medians 0.0046 / 0.115 / 0.305),
//   B.4 (a-c) — banded distributions by Pc (means 0.144 / 0.29 / rising).
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "stats/descriptive.hpp"
#include "stats/freq_table.hpp"
#include "stats/scatter.hpp"

namespace {

void banded(const char* title, const std::vector<double>& values,
            double paper_median) {
  using namespace repro;
  std::printf("--- %s ---\n", title);
  if (values.empty()) {
    std::printf("(no samples)\n\n");
    return;
  }
  std::vector<double> mids;
  for (int i = 0; i <= 10; ++i) {
    mids.push_back(static_cast<double>(i) / 10.0);
  }
  std::printf("%s",
              stats::FreqTable::from_values(values, mids, 1).render(36)
                  .c_str());
  std::printf("median: %.4f  (paper: %.4f)\n\n", stats::median(values),
              paper_median);
}

}  // namespace

int main() {
  using namespace repro;
  bench::print_header(
      "APPENDIX B — CE Bus Busy vs. concurrency (Figures B.1-B.4)",
      "bus busy rises with Cw (band medians 0.005/0.115/0.305) and with "
      "Pc up to saturation");

  const core::StudyResult study = bench::run_full_study();
  const auto samples = study.all_samples();
  const auto cw = core::column_cw(samples);
  const auto busy = core::column_bus_busy(samples);

  stats::ScatterOptions b1;
  b1.title = "Figure B.1: CE Bus Busy vs. Cw";
  b1.x_label = "Cw";
  b1.y_label = "busy";
  b1.x_min = 0.0;
  b1.x_max = 1.0;
  std::printf("%s\n", stats::render_scatter(cw, busy, b1).c_str());

  const auto with_pc = core::with_defined_pc(samples);
  stats::ScatterOptions b2;
  b2.title = "Figure B.2: CE Bus Busy vs. Pc";
  b2.x_label = "Pc";
  b2.y_label = "busy";
  b2.x_min = 2.0;
  b2.x_max = 8.0;
  std::printf("%s\n",
              stats::render_scatter(core::column_pc(with_pc),
                                    core::column_bus_busy(with_pc), b2)
                  .c_str());

  std::vector<double> cw_low;
  std::vector<double> cw_mid;
  std::vector<double> cw_high;
  for (const core::AnalyzedSample& sample : samples) {
    if (sample.measures.cw <= 0.4) {
      cw_low.push_back(sample.bus_busy);
    } else if (sample.measures.cw <= 0.8) {
      cw_mid.push_back(sample.bus_busy);
    } else {
      cw_high.push_back(sample.bus_busy);
    }
  }
  banded("Figure B.3(a): Cw <= 0.4", cw_low, 0.0046);
  banded("Figure B.3(b): 0.4 < Cw <= 0.8", cw_mid, 0.115);
  banded("Figure B.3(c): Cw > 0.8", cw_high, 0.305);

  std::vector<double> pc_low;
  std::vector<double> pc_mid;
  std::vector<double> pc_high;
  for (const core::AnalyzedSample& sample : with_pc) {
    if (sample.measures.pc <= 6.0) {
      pc_low.push_back(sample.bus_busy);
    } else if (sample.measures.pc <= 7.5) {
      pc_mid.push_back(sample.bus_busy);
    } else {
      pc_high.push_back(sample.bus_busy);
    }
  }
  banded("Figure B.4(a): Pc <= 6.0", pc_low, 0.157);
  banded("Figure B.4(b): 6.0 < Pc <= 7.5", pc_mid, 0.282);
  banded("Figure B.4(c): Pc > 7.5", pc_high, 0.30);
  return 0;
}
