// Figure 3: Number of Records with N Processors Active / All Sessions.
//
// Paper shape: dominant peaks at 8, 1, and 0 processors active ("full
// concurrency, serial, or idle"), with only slivers at 2..7.
#include <cstdio>

#include "common.hpp"
#include "core/report.hpp"

int main() {
  using namespace repro;
  bench::print_header(
      "FIGURE 3 — Records with N Processors Active / All Sessions",
      "peaks at 8, 1 and 0 active; states 2..7 are slivers");

  const core::StudyResult study = bench::run_full_study();
  std::printf("%s\n",
              core::render_active_histogram(study.totals.num,
                                            "All sessions combined")
                  .c_str());

  const auto& num = study.totals.num;
  std::uint64_t corner = num[0] + num[1] + num[8];
  std::uint64_t total = 0;
  for (const std::uint64_t n : num) {
    total += n;
  }
  std::printf("idle+serial+full share: %.1f%% of records (paper: ~96%%)\n",
              100.0 * static_cast<double>(corner) /
                  static_cast<double>(total));
  return 0;
}
