// Table 3: Regression Models versus Cw.
//
// Paper: second-order median models with R^2 0.74 (miss rate), 0.89 (CE
// bus busy), 0.65 (page fault rate); all three measures increase with Cw.
#include <cstdio>

#include "common.hpp"
#include "core/regression_models.hpp"
#include "core/report.hpp"

int main() {
  using namespace repro;
  bench::print_header(
      "TABLE 3 — Regression Models vs. Cw",
      "R^2: miss rate 0.74, CE bus busy 0.89, page fault rate 0.65; all "
      "medians increase with Cw");

  const core::StudyResult study = bench::run_full_study();
  const auto samples = study.all_samples();
  const auto models = core::fit_all_models(samples);
  std::printf("%s\n",
              core::render_regression_table(models, core::Regressor::kCw)
                  .c_str());

  for (const core::MedianModel& model : models) {
    if (model.regressor != core::Regressor::kCw) {
      continue;
    }
    std::printf("%s median points:", measure_name(model.measure).c_str());
    for (const auto& [mid, med] : model.median_points) {
      std::printf("  (%.1f, %.4g)", mid, med);
    }
    std::printf("\n");
  }
  return 0;
}
