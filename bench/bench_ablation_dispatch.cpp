// Ablation: self-scheduled vs. statically chunked loop dispatch.
//
// The FX/8 self-schedules iterations in hardware ("assignments ... in a
// self-scheduled fashion [19]", §3.2); the era's compile-time
// alternative gives each CE a contiguous block. With iteration-dependent
// path lengths (the §4.3 imbalance source), static chunks strand whole
// blocks behind slow iterations: loops finish later and transition
// periods stretch — the reason the hardware does what it does.
#include <cstdio>

#include "common.hpp"
#include "fx8/machine.hpp"
#include "fx8/mmu.hpp"
#include "isa/program.hpp"
#include "trace/profile.hpp"
#include "trace/tracer.hpp"
#include "workload/kernels.hpp"

namespace {

using namespace repro;

struct LoopRun {
  Cycle total = 0;
  Cycle drain = 0;   ///< Cycles from last full-overlap to loop end.
  double overlap = 0.0;
};

/// One imbalanced loop under a dispatch policy, profiled via the tracer.
LoopRun run_loop(fx8::DispatchPolicy dispatch, std::uint64_t seed) {
  fx8::NoFaultMmu mmu;
  fx8::MachineConfig config = fx8::MachineConfig::fx8();
  config.cluster.dispatch = dispatch;
  config.ip.duty = 0.0;
  fx8::Machine machine(config, mmu);
  trace::EventTracer tracer;
  machine.cluster().set_observer(&tracer);

  workload::KernelTuning tuning;
  isa::ConcurrentLoopPhase loop;
  loop.body = workload::matmul_row_body(tuning);
  loop.trip_count = 8 * 12 + 2;
  loop.long_path_prob = 0.25;  // iteration-dependent branching
  loop.long_path_extra_steps = 30;
  const isa::Program program = isa::ProgramBuilder("dispatch")
                                   .seed(seed)
                                   .data_base(0x01000000)
                                   .concurrent_loop(loop)
                                   .build();
  machine.cluster().load(&program, 1);
  while (machine.cluster().busy()) {
    machine.tick();
  }
  const trace::ProgramProfile profile =
      trace::profile_job(tracer.events(), 1);
  LoopRun run;
  run.total = machine.now();
  run.drain = profile.loops.at(0).drain_cycles;
  run.overlap = profile.loops.at(0).mean_overlap;
  return run;
}

}  // namespace

int main() {
  bench::print_header(
      "ABLATION — self-scheduled vs. statically chunked dispatch",
      "hardware self-scheduling absorbs iteration imbalance; static "
      "chunks strand blocks behind slow iterations (DESIGN.md §6.2)");

  double self_total = 0.0;
  double chunk_total = 0.0;
  double self_drain = 0.0;
  double chunk_drain = 0.0;
  double self_overlap = 0.0;
  double chunk_overlap = 0.0;
  constexpr int kLoops = 8;
  for (std::uint64_t seed = 1; seed <= kLoops; ++seed) {
    const LoopRun self =
        run_loop(fx8::DispatchPolicy::kSelfScheduled, seed);
    const LoopRun chunk =
        run_loop(fx8::DispatchPolicy::kStaticChunked, seed);
    self_total += static_cast<double>(self.total);
    chunk_total += static_cast<double>(chunk.total);
    self_drain += static_cast<double>(self.drain);
    chunk_drain += static_cast<double>(chunk.drain);
    self_overlap += self.overlap;
    chunk_overlap += chunk.overlap;
  }
  std::printf("imbalanced 98-iteration loop, mean over %d seeds:\n",
              kLoops);
  std::printf("  %-16s %10s %10s %10s\n", "dispatch", "cycles", "drain",
              "overlap");
  std::printf("  %-16s %10.0f %10.0f %10.2f\n", "self-scheduled",
              self_total / kLoops, self_drain / kLoops,
              self_overlap / kLoops);
  std::printf("  %-16s %10.0f %10.0f %10.2f\n", "static-chunked",
              chunk_total / kLoops, chunk_drain / kLoops,
              chunk_overlap / kLoops);
  std::printf("  (chunked is %.0f%% slower; its drain — the §4.3\n"
              "   transition period — is %.1fx longer)\n",
              100.0 * (chunk_total / self_total - 1.0),
              chunk_drain / self_drain);

  return 0;
}
