// Figure 10 (a)-(c): Distribution of Miss Rate banded by Cw.
//
// Paper medians: Cw <= 0.4: 0.001; 0.4 < Cw <= 0.8: 0.009 (mean 0.011);
// Cw > 0.8: 0.023 (mean 0.034). "the median Missrate value for
// 0.4 < Cw <= 0.8 is .009, and increases sharply to 0.023 for Cw > 0.8."
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "stats/descriptive.hpp"
#include "stats/freq_table.hpp"

namespace {

void print_band(const char* title, const std::vector<double>& miss,
                double paper_median) {
  using namespace repro;
  std::printf("--- %s ---\n", title);
  if (miss.empty()) {
    std::printf("(no samples in this band)\n\n");
    return;
  }
  std::vector<double> mids;
  for (int i = 0; i <= 10; ++i) {
    mids.push_back(static_cast<double>(i) / 100.0);
  }
  std::printf("%s",
              stats::FreqTable::from_values(miss, mids, 2).render(40)
                  .c_str());
  std::printf("mean: %.4f  median: %.4f  (paper median: %.3f)\n\n",
              stats::mean(miss), stats::median(miss), paper_median);
}

}  // namespace

int main() {
  using namespace repro;
  bench::print_header(
      "FIGURE 10 — Distribution of Miss Rate by Cw band",
      "medians 0.001 / 0.009 / 0.023 for Cw <=0.4 / (0.4,0.8] / >0.8");

  const core::StudyResult study = bench::run_full_study();
  const auto samples = study.all_samples();

  std::vector<double> low;
  std::vector<double> mid;
  std::vector<double> high;
  for (const core::AnalyzedSample& sample : samples) {
    if (sample.measures.cw <= 0.4) {
      low.push_back(sample.miss_rate);
    } else if (sample.measures.cw <= 0.8) {
      mid.push_back(sample.miss_rate);
    } else {
      high.push_back(sample.miss_rate);
    }
  }
  print_band("(a) Cw <= 0.4", low, 0.001);
  print_band("(b) 0.4 < Cw <= 0.8", mid, 0.009);
  print_band("(c) Cw > 0.8", high, 0.023);
  return 0;
}
