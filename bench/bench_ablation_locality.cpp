// Ablation (DESIGN.md §6.4): why does miss rate track Cw?
//
// The paper's explanation (§5.3): parallel code is much more data
// intensive than serial code. If concurrent kernels are rebuilt with
// serial-like locality (small working set, high compute per access), the
// Cw–missrate coupling should collapse even though Cw itself is
// unchanged — showing the relationship is about *what* parallel code
// does, not parallelism per se.
#include <cstdio>

#include "common.hpp"
#include "core/regression_models.hpp"
#include "workload/presets.hpp"

namespace {

using namespace repro;

double missrate_rise(const workload::WorkloadMix& base_mix) {
  // Build a 3-session mini-study spanning low/mid/high concurrency with
  // this mix's kernel tuning.
  std::vector<workload::WorkloadMix> mixes;
  const double fractions[] = {0.2, 0.55, 0.9};
  const double idles[] = {45000, 12000, 4000};
  for (int i = 0; i < 3; ++i) {
    workload::WorkloadMix mix = base_mix;
    mix.name = base_mix.name + "-" + std::to_string(i);
    mix.concurrent_job_fraction = fractions[i];
    mix.mean_idle_cycles = idles[i];
    mixes.push_back(mix);
  }
  core::StudyConfig config = bench::study_config();
  config.samples_per_session = 10;
  const core::StudyResult study = core::run_study(mixes, config);
  const auto samples = study.all_samples();
  const core::MedianModel model = core::fit_model(
      samples, core::SystemMeasure::kMissRate, core::Regressor::kCw);
  return model.predict(1.0) - model.predict(0.1);
}

}  // namespace

int main() {
  bench::print_header(
      "ABLATION — data-intensive vs. serial-like concurrent kernels",
      "the Cw->missrate slope comes from the data intensity of parallel "
      "code (§5.3), not from parallelism itself");

  workload::WorkloadMix standard;
  standard.name = "standard";
  const double standard_rise = missrate_rise(standard);

  const workload::WorkloadMix equal = workload::equal_locality_mix();
  const double equal_rise = missrate_rise(equal);

  std::printf("missrate rise over Cw 0.1 -> 1.0:\n");
  std::printf("  data-intensive concurrent kernels: %+.4f\n", standard_rise);
  std::printf("  serial-like concurrent kernels:    %+.4f\n", equal_rise);
  std::printf("\n(expected: the serial-like variant's rise is a small "
              "fraction of the standard one's)\n");
  return 0;
}
