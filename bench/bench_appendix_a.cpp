// Appendix A: workload sampling data.
//
//   Table A.1 — mean concurrency measures per random-sample session,
//   Figures A.1/A.2 — per-session N-active histograms (sessions vary),
//   Figure A.3 — distribution of samples by CE Bus Busy,
//   Figure A.4 — distribution of samples by Miss Rate (63% below 0.005),
//   Figure A.5 — distribution of samples by Page Fault Rate.
#include <cstdio>

#include "common.hpp"
#include "core/report.hpp"
#include "stats/freq_table.hpp"

int main() {
  using namespace repro;
  bench::print_header(
      "APPENDIX A — Workload Sampling Data",
      "per-session measures vary widely; miss-rate samples concentrate "
      "near zero; bus-busy spreads to ~0.5");

  const core::StudyResult study = bench::run_full_study();
  std::printf("%s\n", core::render_session_table(study.sessions).c_str());

  // Figures A.1 / A.2: two contrasting sessions.
  const core::SessionResult* lightest = &study.sessions.front();
  const core::SessionResult* heaviest = &study.sessions.front();
  for (const core::SessionResult& session : study.sessions) {
    if (session.overall.cw < lightest->overall.cw) {
      lightest = &session;
    }
    if (session.overall.cw > heaviest->overall.cw) {
      heaviest = &session;
    }
  }
  std::printf("%s\n",
              core::render_active_histogram(
                  lightest->totals.num,
                  "Figure A.1-style: lightest session (" + lightest->name +
                      ")")
                  .c_str());
  std::printf("%s\n",
              core::render_active_histogram(
                  heaviest->totals.num,
                  "Figure A.2-style: heaviest session (" + heaviest->name +
                      ")")
                  .c_str());

  const auto samples = study.all_samples();

  std::vector<double> mids;
  for (int i = 0; i <= 10; ++i) {
    mids.push_back(static_cast<double>(i) / 20.0);  // 0 .. 0.5
  }
  std::printf("Figure A.3. Distribution of Samples by CE Bus Busy\n%s\n",
              stats::FreqTable::from_values(core::column_bus_busy(samples),
                                            mids, 2)
                  .render(40)
                  .c_str());

  std::vector<double> miss_mids;
  for (int i = 0; i <= 10; ++i) {
    miss_mids.push_back(static_cast<double>(i) / 100.0);
  }
  std::printf("Figure A.4. Distribution of Samples by Miss Rate\n%s\n",
              stats::FreqTable::from_values(
                  core::column_miss_rate(samples), miss_mids, 2)
                  .render(40)
                  .c_str());

  const auto faults = core::column_page_fault_rate(samples);
  double max_faults = 1.0;
  for (const double f : faults) {
    max_faults = std::max(max_faults, f);
  }
  std::vector<double> fault_mids;
  for (int i = 0; i <= 12; ++i) {
    fault_mids.push_back(max_faults * i / 12.0);
  }
  std::printf("Figure A.5. Distribution of Samples by Page Fault Rate\n%s\n",
              stats::FreqTable::from_values(faults, fault_mids, 0)
                  .render(40)
                  .c_str());
  return 0;
}
