// Figure 14: Plot of Regression Model, CE Bus Busy vs. Pc.
//
// Paper: bus activity increases with Pc but levels off around Pc = 6
// ("relatively constant bus activity after Pc = 6.0 is likely a
// reflection of a higher degree of dependence-related waiting in periods
// of maximum concurrency"); R^2 = 0.66.
#include <cstdio>

#include "common.hpp"
#include "core/regression_models.hpp"
#include "stats/scatter.hpp"

int main() {
  using namespace repro;
  bench::print_header(
      "FIGURE 14 — Regression model: CE Bus Busy vs. Pc",
      "increases with Pc, levelling off near Pc = 6 (R^2 = 0.66)");

  const core::StudyResult study = bench::run_full_study();
  const auto samples = study.all_samples();
  const core::MedianModel model = core::fit_model(
      samples, core::SystemMeasure::kBusBusy, core::Regressor::kPc);

  stats::ScatterOptions options;
  options.title = "fitted second-order model";
  options.x_label = "Pc";
  options.y_label = "CE bus busy";
  std::printf("%s\n",
              stats::render_curve(2.0, 8.0, 44,
                                  [&](double x) { return model.predict(x); },
                                  options)
                  .c_str());

  std::printf("busbusy(3)=%.3f  busbusy(6)=%.3f  busbusy(8)=%.3f\n",
              model.predict(3.0), model.predict(6.0), model.predict(8.0));
  const double early_rise = model.predict(6.0) - model.predict(3.0);
  const double late_rise = model.predict(8.0) - model.predict(6.0);
  std::printf("rise 3->6: %.3f   rise 6->8: %.3f  (paper: late rise ~ 0)\n",
              early_rise, late_rise);
  std::printf("R^2 = %.2f (paper: 0.66)\n", model.fit.r_squared);
  return 0;
}
