// Figure 9: Missrate vs. Mean Concurrency Level (scatter).
//
// Paper: "some increasing probability of high Missrate as Pc increases,
// although the Missrate is relatively unchanged after Pc > 7.0."
#include <cstdio>

#include "common.hpp"
#include "stats/descriptive.hpp"
#include "stats/scatter.hpp"

int main() {
  using namespace repro;
  bench::print_header(
      "FIGURE 9 — Missrate vs. Mean Concurrency Level (scatter)",
      "mild increase with Pc; flat beyond Pc ~ 7");

  const core::StudyResult study = bench::run_full_study();
  const auto samples = core::with_defined_pc(study.all_samples());
  const auto pc = core::column_pc(samples);
  const auto miss = core::column_miss_rate(samples);

  stats::ScatterOptions options;
  options.title = "Missrate vs. Pc  (SAS letters: A=1 obs, B=2, ...)";
  options.x_label = "Pc";
  options.y_label = "missrate";
  options.x_min = 2.0;
  options.x_max = 8.0;
  std::printf("%s\n", stats::render_scatter(pc, miss, options).c_str());

  std::vector<double> mid_band;
  std::vector<double> high_band;
  for (std::size_t i = 0; i < pc.size(); ++i) {
    if (pc[i] > 6.0 && pc[i] <= 7.5) {
      mid_band.push_back(miss[i]);
    } else if (pc[i] > 7.5) {
      high_band.push_back(miss[i]);
    }
  }
  if (!mid_band.empty() && !high_band.empty()) {
    std::printf(
        "median missrate, 6.0<Pc<=7.5: %.4f   Pc>7.5: %.4f  (paper: no "
        "increase between these bands)\n",
        stats::median(mid_band), stats::median(high_band));
  }
  return 0;
}
