// Figure 5: Distribution of Samples by Mean Concurrency Level.
//
// Paper: for samples with non-zero Cw, over 94% have Pc above 6.5 —
// "concurrency which does appear in the measured workload has a
// characteristically high utilization of the total available concurrency
// resource." (83.3% of samples land in the 8.0 bin.)
#include <cstdio>

#include "common.hpp"
#include "stats/freq_table.hpp"

int main() {
  using namespace repro;
  bench::print_header(
      "FIGURE 5 — Distribution of Samples by Mean Concurrency Level",
      ">94% of concurrent samples have Pc > 6.5; 83% in the 8.0 bin");

  const core::StudyResult study = bench::run_full_study();
  const auto samples = study.all_samples();
  const auto pc = core::column_pc(samples);
  if (pc.empty()) {
    std::printf("no concurrent samples (unexpected)\n");
    return 1;
  }

  std::vector<double> mids;
  for (int i = 4; i <= 16; ++i) {
    mids.push_back(static_cast<double>(i) / 2.0);
  }
  const auto table = stats::FreqTable::from_values(pc, mids, 1);
  std::printf("%s\n", table.render(44).c_str());

  std::size_t high = 0;
  for (const double value : pc) {
    high += value > 6.5;
  }
  std::printf("concurrent samples with Pc > 6.5: %.1f%% (paper: >94%%)\n",
              100.0 * static_cast<double>(high) /
                  static_cast<double>(pc.size()));
  return 0;
}
