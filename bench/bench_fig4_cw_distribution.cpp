// Figure 4: Distribution of Samples by Workload Concurrency.
//
// Paper: 44.6% of five-minute samples have Cw ~ 0 (serial/idle periods);
// "some concurrency in the workload exists for 55% of the samples"; the
// non-zero mass is spread with a visible tail at Cw = 1.
#include <cstdio>

#include "common.hpp"
#include "stats/freq_table.hpp"

int main() {
  using namespace repro;
  bench::print_header(
      "FIGURE 4 — Distribution of Samples by Workload Concurrency",
      "44.6% of samples at Cw ~ 0; 55% show some concurrency; mass up to "
      "Cw = 1.0");

  const core::StudyResult study = bench::run_full_study();
  const auto samples = study.all_samples();
  const auto cw = core::column_cw(samples);

  // The paper bins at midpoints 0, 0.125, ..., 1.0.
  std::vector<double> mids;
  for (int i = 0; i <= 8; ++i) {
    mids.push_back(static_cast<double>(i) / 8.0);
  }
  const auto table = stats::FreqTable::from_values(cw, mids, 3);
  std::printf("%s\n", table.render(44).c_str());

  std::size_t zeroish = 0;
  for (const double value : cw) {
    zeroish += value < 1.0 / 16.0;
  }
  std::printf("samples with Cw ~ 0: %.1f%% (paper: 44.6%%)\n",
              100.0 * static_cast<double>(zeroish) /
                  static_cast<double>(cw.size()));
  return 0;
}
