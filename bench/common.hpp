// Shared configuration for the reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper from a
// fresh simulation. They share one study configuration so their sample
// populations are comparable, and a fixed seed so reruns are identical.
#pragma once

#include <cstdio>

#include "core/study.hpp"
#include "core/transition.hpp"
#include "workload/presets.hpp"

namespace repro::bench {

/// The nine-session random-sampling study configuration used by all
/// Table/Figure benches (larger than the examples for stabler medians).
inline core::StudyConfig study_config() {
  core::StudyConfig config;
  config.samples_per_session = 12;
  config.sampling.interval_cycles = 80000;
  config.warmup_cycles = 20000;
  config.seed = 0x19870301;
  return config;
}

/// The study itself (each bench runs its own copy; ~2s).
inline core::StudyResult run_full_study() {
  return core::run_default_study(study_config());
}

/// The triggered-capture configuration for the transition benches.
inline core::TransitionConfig transition_config() {
  core::TransitionConfig config;
  config.captures = 60;
  config.capture_timeout = 400000;
  config.warmup_cycles = 20000;
  config.seed = 0x19870402;
  return config;
}

/// Header every bench prints: what the paper reports for this artifact.
inline void print_header(const char* artifact, const char* paper_claim) {
  std::printf("=============================================================\n");
  std::printf("%s\n", artifact);
  std::printf("Paper: %s\n", paper_claim);
  std::printf("=============================================================\n\n");
}

}  // namespace repro::bench
