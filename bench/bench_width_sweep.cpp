// Machine-width sweep: the measures applied across configurations.
//
// "The above measures may be applied at any level of multiprocessing
// capability of a given machine" (§4.1), and the methodology "can be
// applied to other parallel processing systems" (§6). The Alliant line
// itself spanned FX/1 (1 CE) to FX/8 (8 CEs, Appendix C); this bench
// runs the same workload on every width and reports the measures.
#include <algorithm>
#include <cstdio>
#include <future>
#include <vector>

#include "base/text.hpp"
#include "base/thread_pool.hpp"
#include "common.hpp"
#include "core/sample.hpp"
#include "instr/session_controller.hpp"
#include "os/system.hpp"
#include "workload/generator.hpp"
#include "workload/presets.hpp"

namespace {

using namespace repro;

struct WidthRow {
  core::ConcurrencyMeasures measures;
  double miss_rate = 0.0;
  double bus_busy = 0.0;
};

WidthRow run_width(std::uint32_t width) {
  os::SystemConfig config;
  config.machine.cluster.n_ces = width;
  if (width != kMaxCes) {
    config.machine.cluster.policy = fx8::ServicePolicy::kAscending;
  }
  os::System system{config};
  workload::WorkloadMix mix = workload::session_presets()[2];
  // Trip law widths follow the machine.
  mix.numeric.trip_law.width = width;
  workload::WorkloadGenerator generator(mix, 0x81D5);
  instr::SamplingConfig sampling;
  sampling.interval_cycles = 50000;
  instr::SessionController controller(system, generator, sampling, 0x81D5);

  instr::EventCounts totals;
  for (const instr::SampleRecord& record : controller.run_session(5)) {
    totals.merge(record.hw);
  }
  WidthRow row;
  row.measures = core::ConcurrencyMeasures::from_counts(
      std::span(totals.num).first(width + 1));
  row.miss_rate = totals.miss_rate();
  row.bus_busy = totals.bus_busy();
  return row;
}

}  // namespace

int main() {
  bench::print_header(
      "EXTENSION — concurrency measures across FX/1..FX/8 widths",
      "the measures generalize to any cluster width (§4.1); Pc is bounded "
      "by the width and Cw needs at least two CEs");

  // Each width is an independent simulation with its own fixed seed, so
  // the sweep fans out over the pool and prints in width order.
  base::ThreadPool pool(
      std::min<std::size_t>(base::ThreadPool::resolve_workers(0), 8));
  std::vector<std::future<WidthRow>> rows;
  for (std::uint32_t width = 1; width <= 8; ++width) {
    rows.push_back(pool.submit([width] { return run_width(width); }));
  }

  std::printf("  %-6s %8s %8s %10s %10s\n", "CEs", "Cw", "Pc", "missrate",
              "busbusy");
  for (std::uint32_t width = 1; width <= 8; ++width) {
    const WidthRow row = rows[width - 1].get();
    std::printf("  %-6u %8.4f %8s %10.4f %10.4f\n", width, row.measures.cw,
                row.measures.pc_defined
                    ? repro::fixed(row.measures.pc, 2).c_str()
                    : "n/a",
                row.miss_rate, row.bus_busy);
  }
  std::printf(
      "\n(a 1-CE machine can have no workload concurrency by definition;\n"
      "Pc tracks the width ceiling as processors are added)\n");
  return 0;
}
