// The Figure-3 footnote, quantified.
//
// "Idle in this context is with respect to Concurrent-Mode operation.
// Detached processes (exclusively serial) may constitute a portion of
// these states." When CEs are detached to run serial processes, the CCB
// activity probe counts them as active processors — so the *apparent*
// Workload Concurrency (>= 2 CEs active) inflates relative to the true
// loop-level concurrency. This bench runs the same mixture with 0 and 2
// detached CEs and compares the probe's Cw against the marker-trace
// ground truth.
#include <cstdio>

#include "common.hpp"
#include "core/sample.hpp"
#include "instr/session_controller.hpp"
#include "os/system.hpp"
#include "trace/tracer.hpp"
#include "workload/generator.hpp"
#include "workload/presets.hpp"

namespace {

using namespace repro;

struct ArtifactPoint {
  double probe_cw;     ///< Cw from the CCB activity histogram.
  double true_cw;      ///< Concurrency from iteration-overlap traces.
};

ArtifactPoint run_config(std::uint32_t detached) {
  os::SystemConfig config;
  config.machine.cluster.detached_ces = detached;
  os::System system{config};
  trace::EventTracer tracer;
  system.machine().cluster().set_observer(&tracer);

  // A serial-heavy day: the cluster is often serial or idle, which is
  // when a busy detached CE turns 1-active states into apparent
  // 2-active "concurrency".
  workload::WorkloadMix mix = workload::session_presets()[8];
  mix.mean_idle_cycles = 8000;  // keep the detached CEs fed
  mix.numeric.trip_law.width = system.machine().cluster().cluster_width();
  workload::WorkloadGenerator generator(mix, 0xDE7AC4);
  instr::SamplingConfig sampling;
  sampling.interval_cycles = 60000;
  instr::SessionController controller(system, generator, sampling,
                                      0xDE7AC4);

  const Cycle t0 = system.now();
  instr::EventCounts totals;
  for (const instr::SampleRecord& record : controller.run_session(8)) {
    totals.merge(record.hw);
  }
  const Cycle t1 = system.now();

  ArtifactPoint point{};
  point.probe_cw =
      core::ConcurrencyMeasures::from_counts(totals.num).cw;

  // Ground truth: time with >= 2 loop iterations in flight.
  std::vector<std::pair<Cycle, int>> deltas;
  for (const trace::TraceEvent& event : tracer.events()) {
    if (event.time < t0 || event.time > t1) {
      continue;
    }
    if (event.kind == trace::EventKind::kIterationStart) {
      deltas.emplace_back(event.time, +1);
    } else if (event.kind == trace::EventKind::kIterationEnd) {
      deltas.emplace_back(event.time, -1);
    }
  }
  std::sort(deltas.begin(), deltas.end());
  Cycle concurrent_time = 0;
  int overlap = 0;
  Cycle prev = t0;
  for (const auto& [time, delta] : deltas) {
    if (overlap >= 2) {
      concurrent_time += time - prev;
    }
    overlap += delta;
    prev = time;
  }
  point.true_cw = static_cast<double>(concurrent_time) /
                  static_cast<double>(t1 - t0);
  return point;
}

}  // namespace

int main() {
  bench::print_header(
      "EXTENSION — detached processes and the Figure-3 footnote",
      "detached serial processes register as active on the CCB probe, "
      "inflating apparent concurrency over the true loop overlap");

  const ArtifactPoint attached = run_config(0);
  const ArtifactPoint detached = run_config(2);

  std::printf("  %-26s %12s %12s %12s\n", "configuration", "probe Cw",
              "true Cw", "inflation");
  std::printf("  %-26s %12.4f %12.4f %12.4f\n", "all 8 CEs clustered",
              attached.probe_cw, attached.true_cw,
              attached.probe_cw - attached.true_cw);
  std::printf("  %-26s %12.4f %12.4f %12.4f\n", "6 clustered + 2 detached",
              detached.probe_cw, detached.true_cw,
              detached.probe_cw - detached.true_cw);
  std::printf(
      "\n(with detached CEs the probe's activity histogram counts serial\n"
      "processes as concurrency — the measurement caveat the paper's\n"
      "footnote flags; the study's machine ran fully clustered)\n");
  return 0;
}
