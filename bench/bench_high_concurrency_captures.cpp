// The second measurement group (§3.5): all-active triggered captures.
//
// "In ten of the experiment sessions, the monitor was triggered when all
// eight processors in the Cluster were active." These captures feed the
// Chapter-5 analysis of system behaviour *during* full concurrency; this
// bench reports the conditional system measures they give — miss rate
// and bus activity inside 8-active operation vs. the workload average.
#include <cstdio>

#include "common.hpp"
#include "core/sample.hpp"
#include "instr/session_controller.hpp"
#include "os/system.hpp"
#include "workload/generator.hpp"
#include "workload/presets.hpp"

int main() {
  using namespace repro;
  bench::print_header(
      "§3.5 second group — all-8-active triggered captures",
      "system measures conditioned on full concurrency exceed the "
      "workload averages (the Chapter-5 coupling, seen directly)");

  os::System system{os::SystemConfig{}};
  workload::WorkloadGenerator generator(workload::high_concurrency_mix(),
                                        0xA17AC);
  instr::SamplingConfig sampling;
  instr::SessionController controller(system, generator, sampling, 0xA17AC);

  // Ten triggered captures, as in the study.
  instr::EventCounts triggered;
  std::uint32_t completed = 0;
  for (int capture = 0; capture < 10; ++capture) {
    const auto buffer = controller.capture_triggered(
        instr::TriggerMode::kAllActive, 400000);
    if (buffer) {
      triggered.merge(instr::reduce(*buffer));
      ++completed;
    }
  }

  // A random-sampled baseline over the same machine/mix.
  instr::EventCounts random;
  for (const instr::SampleRecord& record : controller.run_session(5)) {
    random.merge(record.hw);
  }

  std::printf("captures completed: %u of 10\n\n", completed);
  std::printf("  %-26s %10s %10s\n", "", "miss rate", "bus busy");
  std::printf("  %-26s %10.4f %10.4f\n", "triggered (8-active)",
              triggered.miss_rate(), triggered.bus_busy());
  std::printf("  %-26s %10.4f %10.4f\n", "random sampling",
              random.miss_rate(), random.bus_busy());

  const auto triggered_measures =
      core::ConcurrencyMeasures::from_counts(triggered.num);
  std::printf("\nconcurrency inside the triggered buffers: Cw=%.3f "
              "(near 1 by construction), Pc=%.2f\n",
              triggered_measures.cw, triggered_measures.pc);
  std::printf(
      "(full-concurrency operation carries the high miss/bus activity the\n"
      "regression models attribute to Cw — conditioning on 8-active shows\n"
      "it without any model)\n");
  return 0;
}
