// Ablation: register-to-register vector operations vs. bus traffic.
//
// Paper §5.1: "A high degree of register-to-register operations (which
// may include 32-element vector operations) will reduce data traffic
// between CE and cache, and consequently the average number of cache
// misses." Sweeping the kernels' vector fraction should lower both CE
// bus busy and miss rate at fixed workload concurrency.
#include <cstdio>

#include "common.hpp"
#include "core/sample.hpp"
#include "instr/session_controller.hpp"
#include "os/system.hpp"
#include "workload/generator.hpp"
#include "workload/presets.hpp"

namespace {

using namespace repro;

struct SweepPoint {
  double vector_fraction;
  double cw;
  double bus_busy;
  double miss_rate;
};

SweepPoint run_point(double vector_fraction) {
  os::System system{os::SystemConfig{}};
  workload::WorkloadMix mix = workload::high_concurrency_mix();
  mix.numeric.tuning.vector_fraction = vector_fraction;
  workload::WorkloadGenerator generator(mix, 0x7EC70);
  instr::SamplingConfig sampling;
  sampling.interval_cycles = 60000;
  instr::SessionController controller(system, generator, sampling, 0x7EC70);

  instr::EventCounts totals;
  for (const instr::SampleRecord& record : controller.run_session(6)) {
    totals.merge(record.hw);
  }
  const auto measures = core::ConcurrencyMeasures::from_counts(totals.num);
  return {vector_fraction, measures.cw, totals.bus_busy(),
          totals.miss_rate()};
}

}  // namespace

int main() {
  bench::print_header(
      "ABLATION — vector (register-to-register) fraction vs. bus traffic",
      "more vector operations -> less CE-to-cache traffic and fewer "
      "misses per bus cycle (§5.1)");

  std::printf("  %-10s %8s %10s %10s\n", "vec-frac", "Cw", "busbusy",
              "missrate");
  SweepPoint first{};
  SweepPoint last{};
  bool have_first = false;
  for (const double frac : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    const SweepPoint point = run_point(frac);
    std::printf("  %-10.1f %8.4f %10.4f %10.4f\n", point.vector_fraction,
                point.cw, point.bus_busy, point.miss_rate);
    if (!have_first) {
      first = point;
      have_first = true;
    }
    last = point;
  }
  std::printf("\nbus busy drops %.0f%%, missrate drops %.0f%% from "
              "vec=0.0 to vec=0.8\n",
              100.0 * (1.0 - last.bus_busy / first.bus_busy),
              100.0 * (1.0 - last.miss_rate / first.miss_rate));
  return 0;
}
