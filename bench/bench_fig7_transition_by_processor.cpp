// Figure 7: Number of Records Active by Processor Number / Concurrency
// Transition Periods.
//
// Paper: "Processors 7 and 0 appear to be active significantly more often
// than the other processors ... while processors 2, 3, and 4 are
// significantly less active than the others."
#include <cstdio>

#include "common.hpp"
#include "core/report.hpp"
#include "core/transition.hpp"
#include "workload/presets.hpp"

int main() {
  using namespace repro;
  bench::print_header(
      "FIGURE 7 — Transition Activity by Processor Number",
      "CE7 and CE0 most active during transitions; CE2, CE3, CE4 least");

  const core::TransitionResult result = core::run_transition_study(
      workload::high_concurrency_mix(), bench::transition_config(),
      instr::TriggerMode::kTransitionFromFull);

  std::printf("%s\n",
              core::render_processor_histogram(result.processor_counts,
                                               "Transition records only")
                  .c_str());

  const auto& proc = result.processor_counts;
  const double outer = static_cast<double>(proc[7] + proc[0]) / 2.0;
  const double inner =
      static_cast<double>(proc[2] + proc[3] + proc[4]) / 3.0;
  std::printf("mean(CE7,CE0) / mean(CE2,CE3,CE4) = %.2f (paper: > 1)\n",
              outer / inner);
  return 0;
}
