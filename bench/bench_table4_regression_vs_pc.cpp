// Table 4: Regression Models versus Pc.
//
// Paper: miss rate shows essentially no relationship with Pc (R^2 = 0.07)
// while CE bus busy (0.66) and page fault rate (0.61) retain moderate
// fits. The headline contrast: miss rate depends on the fraction of
// parallel code (Cw), not the processor count within parallel operations.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "core/regression_models.hpp"
#include "core/report.hpp"

int main() {
  using namespace repro;
  bench::print_header(
      "TABLE 4 — Regression Models vs. Pc",
      "R^2: miss rate 0.07 (no relationship), CE bus busy 0.66, page "
      "fault rate 0.61");

  const core::StudyResult study = bench::run_full_study();
  const auto samples = study.all_samples();
  const auto models = core::fit_all_models(samples);
  std::printf("%s\n",
              core::render_regression_table(models, core::Regressor::kPc)
                  .c_str());

  // The effect-size view of "no relationship": compare each model's
  // range over the observed Pc span against the Cw model's range.
  for (const core::MedianModel& model : models) {
    if (model.regressor != core::Regressor::kPc) {
      continue;
    }
    const double spread = std::abs(model.predict(8.0) - model.predict(6.0));
    std::printf("%-26s prediction range over Pc in [6,8]: %.4g\n",
                measure_name(model.measure).c_str(), spread);
  }
  for (const core::MedianModel& model : models) {
    if (model.regressor == core::Regressor::kCw &&
        model.measure == core::SystemMeasure::kMissRate) {
      std::printf(
          "%-26s prediction range over Cw in [0,1]: %.4g  (the contrast)\n",
          "Median Miss Rate", std::abs(model.predict(1.0) - model.predict(0.0)));
    }
  }
  return 0;
}
