// Table 1: Hardware Event Counts.
//
// The paper's Table 1 defines the reduced event vocabulary (num_j, proc_j,
// ceop_j, membop_j). This bench takes one all-active triggered acquisition
// (a 512-deep DAS buffer) off a loaded machine and prints its reduction —
// the exact artifact the measurement scripts produced per buffer (§3.4).
#include <cstdio>

#include "common.hpp"
#include "instr/reduction.hpp"
#include "instr/session_controller.hpp"
#include "os/system.hpp"
#include "workload/generator.hpp"

int main() {
  using namespace repro;
  bench::print_header(
      "TABLE 1 — Hardware Measurement Event Counts",
      "defines num_j / proc_j / ceop_j / membop_j reduced from one "
      "512-deep monitor buffer");

  os::System system{os::SystemConfig{}};
  workload::WorkloadGenerator generator(workload::high_concurrency_mix(),
                                        0x7AB1E1);
  instr::SamplingConfig sampling;
  instr::SessionController controller(system, generator, sampling, 0x7AB1E1);

  const auto buffer =
      controller.capture_triggered(instr::TriggerMode::kAllActive, 500000);
  if (!buffer) {
    std::printf("trigger never fired (unexpected under this mix)\n");
    return 1;
  }
  const instr::EventCounts counts = instr::reduce(*buffer);
  std::printf("%s\n", counts.render().c_str());
  std::printf("derived: miss_rate=%.4f  bus_busy=%.4f  mem_bus_busy=%.4f\n",
              counts.miss_rate(), counts.bus_busy(), counts.mem_bus_busy());
  return 0;
}
