// Scheduling-parameter study (the paper's §6 future work).
//
// "the relationship of concurrency and software-level parameters (such
// as those related to job scheduling) deserves attention." The same job
// population runs under three run-queue disciplines; the sampled
// concurrency measures show how a purely software knob moves Cw while
// the programs themselves are unchanged.
#include <algorithm>
#include <array>
#include <cstdio>
#include <future>
#include <vector>

#include "base/thread_pool.hpp"
#include "common.hpp"
#include "core/sample.hpp"
#include "instr/session_controller.hpp"
#include "os/system.hpp"
#include "workload/generator.hpp"
#include "workload/presets.hpp"

namespace {

using namespace repro;

struct PolicyResult {
  core::ConcurrencyMeasures measures;
  double mean_wait = 0.0;
  std::uint64_t jobs_completed = 0;
};

PolicyResult run_policy(os::SchedulingPolicy policy) {
  os::SystemConfig config;
  config.scheduling = policy;
  os::System system{config};
  workload::WorkloadMix mix = workload::session_presets()[2];
  mix.mean_burst_jobs = 4.0;  // deep queues make the discipline matter
  workload::WorkloadGenerator generator(mix, 0x5CED);
  instr::SamplingConfig sampling;
  sampling.interval_cycles = 60000;
  instr::SessionController controller(system, generator, sampling, 0x5CED);

  instr::EventCounts totals;
  for (const instr::SampleRecord& record : controller.run_session(8)) {
    totals.merge(record.hw);
  }
  PolicyResult result;
  result.measures = core::ConcurrencyMeasures::from_counts(totals.num);
  const auto& stats = system.scheduler().stats();
  result.jobs_completed = stats.jobs_completed;
  result.mean_wait = stats.jobs_completed == 0
                         ? 0.0
                         : static_cast<double>(stats.total_wait_cycles) /
                               static_cast<double>(stats.jobs_completed);
  return result;
}

const char* policy_name(os::SchedulingPolicy policy) {
  switch (policy) {
    case os::SchedulingPolicy::kFifo:
      return "fifo";
    case os::SchedulingPolicy::kConcurrentFirst:
      return "concurrent-first";
    case os::SchedulingPolicy::kSerialFirst:
      return "serial-first";
  }
  return "?";
}

}  // namespace

int main() {
  bench::print_header(
      "EXTENSION — scheduling policy vs. workload concurrency",
      "a software scheduling knob shifts when concurrency appears; the "
      "paper flags this study as future work (§6)");

  // The three disciplines are independent simulations: run them
  // concurrently, print in policy order.
  const std::array<os::SchedulingPolicy, 3> policies = {
      os::SchedulingPolicy::kFifo, os::SchedulingPolicy::kConcurrentFirst,
      os::SchedulingPolicy::kSerialFirst};
  base::ThreadPool pool(std::min<std::size_t>(
      base::ThreadPool::resolve_workers(0), policies.size()));
  std::vector<std::future<PolicyResult>> futures;
  for (const os::SchedulingPolicy policy : policies) {
    futures.push_back(pool.submit([policy] { return run_policy(policy); }));
  }

  std::printf("  %-18s %8s %8s %10s %8s\n", "policy", "Cw", "Pc",
              "mean-wait", "jobs");
  for (std::size_t p = 0; p < policies.size(); ++p) {
    const PolicyResult result = futures[p].get();
    std::printf("  %-18s %8.4f %8.2f %10.0f %8llu\n",
                policy_name(policies[p]), result.measures.cw,
                result.measures.pc_defined ? result.measures.pc : 0.0,
                result.mean_wait,
                static_cast<unsigned long long>(result.jobs_completed));
  }
  std::printf(
      "\n(the same programs, arrivals and machine; only the run-queue\n"
      "discipline differs — concurrent-first front-loads the concurrency,\n"
      "serial-first defers it)\n");
  return 0;
}
