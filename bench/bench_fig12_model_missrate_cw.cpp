// Figure 12: Plot of Regression Model, Missrate vs. Cw.
//
// Paper: the model predicts the median miss rate rising from 0.007 at
// Cw = 0.5 to 0.024 at Cw = 1.0 — "an increase in Cw from 0.5 to 1.0 will
// be accompanied by a greater than triple increase in Missrate".
#include <cstdio>

#include "common.hpp"
#include "core/regression_models.hpp"
#include "stats/scatter.hpp"

int main() {
  using namespace repro;
  bench::print_header(
      "FIGURE 12 — Regression model: Missrate vs. Cw",
      "missrate(0.5) = 0.007 -> missrate(1.0) = 0.024, a >3x increase");

  const core::StudyResult study = bench::run_full_study();
  const auto samples = study.all_samples();
  const core::MedianModel model = core::fit_model(
      samples, core::SystemMeasure::kMissRate, core::Regressor::kCw);

  stats::ScatterOptions options;
  options.title = "fitted second-order model";
  options.x_label = "Cw";
  options.y_label = "missrate";
  std::printf("%s\n",
              stats::render_curve(0.0, 1.0, 44,
                                  [&](double x) { return model.predict(x); },
                                  options)
                  .c_str());

  const double at_half = model.predict(0.5);
  const double at_one = model.predict(1.0);
  std::printf("paper:    missrate(0.5)=0.0070  missrate(1.0)=0.0240  "
              "ratio=3.43\n");
  std::printf("measured: missrate(0.5)=%.4f  missrate(1.0)=%.4f  "
              "ratio=%.2f\n",
              at_half, at_one, at_one / at_half);
  std::printf("R^2 = %.2f (paper: 0.74)\n", model.fit.r_squared);
  return 0;
}
