# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_workload_study]=] "/root/repo/build/examples/workload_study")
set_tests_properties([=[example_workload_study]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_transition_capture]=] "/root/repo/build/examples/transition_capture")
set_tests_properties([=[example_transition_capture]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_regression_models]=] "/root/repo/build/examples/regression_models")
set_tests_properties([=[example_regression_models]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_speedup_efficiency]=] "/root/repo/build/examples/speedup_efficiency")
set_tests_properties([=[example_speedup_efficiency]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_program_profile]=] "/root/repo/build/examples/program_profile")
set_tests_properties([=[example_program_profile]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_fx8meter]=] "/root/repo/build/examples/fx8meter" "--sessions" "1" "--samples" "2" "--interval" "20000" "--mix" "2" "--report" "table2")
set_tests_properties([=[example_fx8meter]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
