# Empty compiler generated dependencies file for speedup_efficiency.
# This may be replaced when dependencies are built.
