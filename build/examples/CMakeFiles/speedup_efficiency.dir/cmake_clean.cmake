file(REMOVE_RECURSE
  "CMakeFiles/speedup_efficiency.dir/speedup_efficiency.cpp.o"
  "CMakeFiles/speedup_efficiency.dir/speedup_efficiency.cpp.o.d"
  "speedup_efficiency"
  "speedup_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedup_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
