file(REMOVE_RECURSE
  "CMakeFiles/regression_models.dir/regression_models.cpp.o"
  "CMakeFiles/regression_models.dir/regression_models.cpp.o.d"
  "regression_models"
  "regression_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regression_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
