# Empty compiler generated dependencies file for regression_models.
# This may be replaced when dependencies are built.
