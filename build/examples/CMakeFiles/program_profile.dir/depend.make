# Empty dependencies file for program_profile.
# This may be replaced when dependencies are built.
