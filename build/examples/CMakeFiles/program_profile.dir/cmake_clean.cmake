file(REMOVE_RECURSE
  "CMakeFiles/program_profile.dir/program_profile.cpp.o"
  "CMakeFiles/program_profile.dir/program_profile.cpp.o.d"
  "program_profile"
  "program_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/program_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
