# Empty dependencies file for transition_capture.
# This may be replaced when dependencies are built.
