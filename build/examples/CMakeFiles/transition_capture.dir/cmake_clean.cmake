file(REMOVE_RECURSE
  "CMakeFiles/transition_capture.dir/transition_capture.cpp.o"
  "CMakeFiles/transition_capture.dir/transition_capture.cpp.o.d"
  "transition_capture"
  "transition_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transition_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
