# Empty dependencies file for fx8meter.
# This may be replaced when dependencies are built.
