file(REMOVE_RECURSE
  "CMakeFiles/fx8meter.dir/fx8meter.cpp.o"
  "CMakeFiles/fx8meter.dir/fx8meter.cpp.o.d"
  "fx8meter"
  "fx8meter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fx8meter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
