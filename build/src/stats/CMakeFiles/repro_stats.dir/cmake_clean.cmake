file(REMOVE_RECURSE
  "CMakeFiles/repro_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/repro_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/repro_stats.dir/correlation.cpp.o"
  "CMakeFiles/repro_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/repro_stats.dir/descriptive.cpp.o"
  "CMakeFiles/repro_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/repro_stats.dir/freq_table.cpp.o"
  "CMakeFiles/repro_stats.dir/freq_table.cpp.o.d"
  "CMakeFiles/repro_stats.dir/regression.cpp.o"
  "CMakeFiles/repro_stats.dir/regression.cpp.o.d"
  "CMakeFiles/repro_stats.dir/scatter.cpp.o"
  "CMakeFiles/repro_stats.dir/scatter.cpp.o.d"
  "librepro_stats.a"
  "librepro_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
