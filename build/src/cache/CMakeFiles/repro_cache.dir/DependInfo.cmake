
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/icache.cpp" "src/cache/CMakeFiles/repro_cache.dir/icache.cpp.o" "gcc" "src/cache/CMakeFiles/repro_cache.dir/icache.cpp.o.d"
  "/root/repo/src/cache/ip_cache.cpp" "src/cache/CMakeFiles/repro_cache.dir/ip_cache.cpp.o" "gcc" "src/cache/CMakeFiles/repro_cache.dir/ip_cache.cpp.o.d"
  "/root/repo/src/cache/shared_cache.cpp" "src/cache/CMakeFiles/repro_cache.dir/shared_cache.cpp.o" "gcc" "src/cache/CMakeFiles/repro_cache.dir/shared_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/repro_base.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/repro_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
