file(REMOVE_RECURSE
  "CMakeFiles/repro_cache.dir/icache.cpp.o"
  "CMakeFiles/repro_cache.dir/icache.cpp.o.d"
  "CMakeFiles/repro_cache.dir/ip_cache.cpp.o"
  "CMakeFiles/repro_cache.dir/ip_cache.cpp.o.d"
  "CMakeFiles/repro_cache.dir/shared_cache.cpp.o"
  "CMakeFiles/repro_cache.dir/shared_cache.cpp.o.d"
  "librepro_cache.a"
  "librepro_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
