file(REMOVE_RECURSE
  "CMakeFiles/repro_trace.dir/profile.cpp.o"
  "CMakeFiles/repro_trace.dir/profile.cpp.o.d"
  "CMakeFiles/repro_trace.dir/timeline.cpp.o"
  "CMakeFiles/repro_trace.dir/timeline.cpp.o.d"
  "CMakeFiles/repro_trace.dir/tracer.cpp.o"
  "CMakeFiles/repro_trace.dir/tracer.cpp.o.d"
  "librepro_trace.a"
  "librepro_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
