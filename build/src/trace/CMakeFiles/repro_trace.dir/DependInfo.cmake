
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/profile.cpp" "src/trace/CMakeFiles/repro_trace.dir/profile.cpp.o" "gcc" "src/trace/CMakeFiles/repro_trace.dir/profile.cpp.o.d"
  "/root/repo/src/trace/timeline.cpp" "src/trace/CMakeFiles/repro_trace.dir/timeline.cpp.o" "gcc" "src/trace/CMakeFiles/repro_trace.dir/timeline.cpp.o.d"
  "/root/repo/src/trace/tracer.cpp" "src/trace/CMakeFiles/repro_trace.dir/tracer.cpp.o" "gcc" "src/trace/CMakeFiles/repro_trace.dir/tracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/repro_base.dir/DependInfo.cmake"
  "/root/repo/build/src/fx8/CMakeFiles/repro_fx8.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/repro_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/repro_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/repro_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
