file(REMOVE_RECURSE
  "CMakeFiles/repro_core.dir/export.cpp.o"
  "CMakeFiles/repro_core.dir/export.cpp.o.d"
  "CMakeFiles/repro_core.dir/measures.cpp.o"
  "CMakeFiles/repro_core.dir/measures.cpp.o.d"
  "CMakeFiles/repro_core.dir/regression_models.cpp.o"
  "CMakeFiles/repro_core.dir/regression_models.cpp.o.d"
  "CMakeFiles/repro_core.dir/report.cpp.o"
  "CMakeFiles/repro_core.dir/report.cpp.o.d"
  "CMakeFiles/repro_core.dir/sample.cpp.o"
  "CMakeFiles/repro_core.dir/sample.cpp.o.d"
  "CMakeFiles/repro_core.dir/speedup.cpp.o"
  "CMakeFiles/repro_core.dir/speedup.cpp.o.d"
  "CMakeFiles/repro_core.dir/study.cpp.o"
  "CMakeFiles/repro_core.dir/study.cpp.o.d"
  "CMakeFiles/repro_core.dir/transition.cpp.o"
  "CMakeFiles/repro_core.dir/transition.cpp.o.d"
  "librepro_core.a"
  "librepro_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
