
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/export.cpp" "src/core/CMakeFiles/repro_core.dir/export.cpp.o" "gcc" "src/core/CMakeFiles/repro_core.dir/export.cpp.o.d"
  "/root/repo/src/core/measures.cpp" "src/core/CMakeFiles/repro_core.dir/measures.cpp.o" "gcc" "src/core/CMakeFiles/repro_core.dir/measures.cpp.o.d"
  "/root/repo/src/core/regression_models.cpp" "src/core/CMakeFiles/repro_core.dir/regression_models.cpp.o" "gcc" "src/core/CMakeFiles/repro_core.dir/regression_models.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/repro_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/repro_core.dir/report.cpp.o.d"
  "/root/repo/src/core/sample.cpp" "src/core/CMakeFiles/repro_core.dir/sample.cpp.o" "gcc" "src/core/CMakeFiles/repro_core.dir/sample.cpp.o.d"
  "/root/repo/src/core/speedup.cpp" "src/core/CMakeFiles/repro_core.dir/speedup.cpp.o" "gcc" "src/core/CMakeFiles/repro_core.dir/speedup.cpp.o.d"
  "/root/repo/src/core/study.cpp" "src/core/CMakeFiles/repro_core.dir/study.cpp.o" "gcc" "src/core/CMakeFiles/repro_core.dir/study.cpp.o.d"
  "/root/repo/src/core/transition.cpp" "src/core/CMakeFiles/repro_core.dir/transition.cpp.o" "gcc" "src/core/CMakeFiles/repro_core.dir/transition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/repro_base.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/repro_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/repro_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/repro_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/fx8/CMakeFiles/repro_fx8.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/repro_os.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/repro_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/instr/CMakeFiles/repro_instr.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/repro_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
