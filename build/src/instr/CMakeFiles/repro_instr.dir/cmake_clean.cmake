file(REMOVE_RECURSE
  "CMakeFiles/repro_instr.dir/buffer_io.cpp.o"
  "CMakeFiles/repro_instr.dir/buffer_io.cpp.o.d"
  "CMakeFiles/repro_instr.dir/das_controller.cpp.o"
  "CMakeFiles/repro_instr.dir/das_controller.cpp.o.d"
  "CMakeFiles/repro_instr.dir/logic_analyzer.cpp.o"
  "CMakeFiles/repro_instr.dir/logic_analyzer.cpp.o.d"
  "CMakeFiles/repro_instr.dir/reduction.cpp.o"
  "CMakeFiles/repro_instr.dir/reduction.cpp.o.d"
  "CMakeFiles/repro_instr.dir/session_controller.cpp.o"
  "CMakeFiles/repro_instr.dir/session_controller.cpp.o.d"
  "CMakeFiles/repro_instr.dir/signals.cpp.o"
  "CMakeFiles/repro_instr.dir/signals.cpp.o.d"
  "CMakeFiles/repro_instr.dir/software_sampler.cpp.o"
  "CMakeFiles/repro_instr.dir/software_sampler.cpp.o.d"
  "librepro_instr.a"
  "librepro_instr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_instr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
