
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/instr/buffer_io.cpp" "src/instr/CMakeFiles/repro_instr.dir/buffer_io.cpp.o" "gcc" "src/instr/CMakeFiles/repro_instr.dir/buffer_io.cpp.o.d"
  "/root/repo/src/instr/das_controller.cpp" "src/instr/CMakeFiles/repro_instr.dir/das_controller.cpp.o" "gcc" "src/instr/CMakeFiles/repro_instr.dir/das_controller.cpp.o.d"
  "/root/repo/src/instr/logic_analyzer.cpp" "src/instr/CMakeFiles/repro_instr.dir/logic_analyzer.cpp.o" "gcc" "src/instr/CMakeFiles/repro_instr.dir/logic_analyzer.cpp.o.d"
  "/root/repo/src/instr/reduction.cpp" "src/instr/CMakeFiles/repro_instr.dir/reduction.cpp.o" "gcc" "src/instr/CMakeFiles/repro_instr.dir/reduction.cpp.o.d"
  "/root/repo/src/instr/session_controller.cpp" "src/instr/CMakeFiles/repro_instr.dir/session_controller.cpp.o" "gcc" "src/instr/CMakeFiles/repro_instr.dir/session_controller.cpp.o.d"
  "/root/repo/src/instr/signals.cpp" "src/instr/CMakeFiles/repro_instr.dir/signals.cpp.o" "gcc" "src/instr/CMakeFiles/repro_instr.dir/signals.cpp.o.d"
  "/root/repo/src/instr/software_sampler.cpp" "src/instr/CMakeFiles/repro_instr.dir/software_sampler.cpp.o" "gcc" "src/instr/CMakeFiles/repro_instr.dir/software_sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/repro_base.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/repro_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/fx8/CMakeFiles/repro_fx8.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/repro_os.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/repro_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/repro_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/repro_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
