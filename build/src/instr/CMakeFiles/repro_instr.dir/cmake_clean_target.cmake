file(REMOVE_RECURSE
  "librepro_instr.a"
)
