# Empty compiler generated dependencies file for repro_instr.
# This may be replaced when dependencies are built.
