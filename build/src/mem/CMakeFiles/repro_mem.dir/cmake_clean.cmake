file(REMOVE_RECURSE
  "CMakeFiles/repro_mem.dir/bus_ops.cpp.o"
  "CMakeFiles/repro_mem.dir/bus_ops.cpp.o.d"
  "CMakeFiles/repro_mem.dir/frame_allocator.cpp.o"
  "CMakeFiles/repro_mem.dir/frame_allocator.cpp.o.d"
  "CMakeFiles/repro_mem.dir/main_memory.cpp.o"
  "CMakeFiles/repro_mem.dir/main_memory.cpp.o.d"
  "CMakeFiles/repro_mem.dir/memory_bus.cpp.o"
  "CMakeFiles/repro_mem.dir/memory_bus.cpp.o.d"
  "librepro_mem.a"
  "librepro_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
