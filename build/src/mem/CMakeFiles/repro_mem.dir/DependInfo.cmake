
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/bus_ops.cpp" "src/mem/CMakeFiles/repro_mem.dir/bus_ops.cpp.o" "gcc" "src/mem/CMakeFiles/repro_mem.dir/bus_ops.cpp.o.d"
  "/root/repo/src/mem/frame_allocator.cpp" "src/mem/CMakeFiles/repro_mem.dir/frame_allocator.cpp.o" "gcc" "src/mem/CMakeFiles/repro_mem.dir/frame_allocator.cpp.o.d"
  "/root/repo/src/mem/main_memory.cpp" "src/mem/CMakeFiles/repro_mem.dir/main_memory.cpp.o" "gcc" "src/mem/CMakeFiles/repro_mem.dir/main_memory.cpp.o.d"
  "/root/repo/src/mem/memory_bus.cpp" "src/mem/CMakeFiles/repro_mem.dir/memory_bus.cpp.o" "gcc" "src/mem/CMakeFiles/repro_mem.dir/memory_bus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/repro_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
