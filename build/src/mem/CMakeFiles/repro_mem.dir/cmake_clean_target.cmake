file(REMOVE_RECURSE
  "librepro_mem.a"
)
