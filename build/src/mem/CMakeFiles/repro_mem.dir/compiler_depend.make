# Empty compiler generated dependencies file for repro_mem.
# This may be replaced when dependencies are built.
