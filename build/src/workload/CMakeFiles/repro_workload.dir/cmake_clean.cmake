file(REMOVE_RECURSE
  "CMakeFiles/repro_workload.dir/generator.cpp.o"
  "CMakeFiles/repro_workload.dir/generator.cpp.o.d"
  "CMakeFiles/repro_workload.dir/jobs.cpp.o"
  "CMakeFiles/repro_workload.dir/jobs.cpp.o.d"
  "CMakeFiles/repro_workload.dir/kernels.cpp.o"
  "CMakeFiles/repro_workload.dir/kernels.cpp.o.d"
  "CMakeFiles/repro_workload.dir/mix_io.cpp.o"
  "CMakeFiles/repro_workload.dir/mix_io.cpp.o.d"
  "CMakeFiles/repro_workload.dir/presets.cpp.o"
  "CMakeFiles/repro_workload.dir/presets.cpp.o.d"
  "CMakeFiles/repro_workload.dir/trip_law.cpp.o"
  "CMakeFiles/repro_workload.dir/trip_law.cpp.o.d"
  "librepro_workload.a"
  "librepro_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
