
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/repro_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/repro_workload.dir/generator.cpp.o.d"
  "/root/repo/src/workload/jobs.cpp" "src/workload/CMakeFiles/repro_workload.dir/jobs.cpp.o" "gcc" "src/workload/CMakeFiles/repro_workload.dir/jobs.cpp.o.d"
  "/root/repo/src/workload/kernels.cpp" "src/workload/CMakeFiles/repro_workload.dir/kernels.cpp.o" "gcc" "src/workload/CMakeFiles/repro_workload.dir/kernels.cpp.o.d"
  "/root/repo/src/workload/mix_io.cpp" "src/workload/CMakeFiles/repro_workload.dir/mix_io.cpp.o" "gcc" "src/workload/CMakeFiles/repro_workload.dir/mix_io.cpp.o.d"
  "/root/repo/src/workload/presets.cpp" "src/workload/CMakeFiles/repro_workload.dir/presets.cpp.o" "gcc" "src/workload/CMakeFiles/repro_workload.dir/presets.cpp.o.d"
  "/root/repo/src/workload/trip_law.cpp" "src/workload/CMakeFiles/repro_workload.dir/trip_law.cpp.o" "gcc" "src/workload/CMakeFiles/repro_workload.dir/trip_law.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/repro_base.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/repro_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/repro_os.dir/DependInfo.cmake"
  "/root/repo/build/src/fx8/CMakeFiles/repro_fx8.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/repro_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/repro_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
