file(REMOVE_RECURSE
  "CMakeFiles/repro_fx8.dir/ccb.cpp.o"
  "CMakeFiles/repro_fx8.dir/ccb.cpp.o.d"
  "CMakeFiles/repro_fx8.dir/ce.cpp.o"
  "CMakeFiles/repro_fx8.dir/ce.cpp.o.d"
  "CMakeFiles/repro_fx8.dir/cluster.cpp.o"
  "CMakeFiles/repro_fx8.dir/cluster.cpp.o.d"
  "CMakeFiles/repro_fx8.dir/crossbar.cpp.o"
  "CMakeFiles/repro_fx8.dir/crossbar.cpp.o.d"
  "CMakeFiles/repro_fx8.dir/ip.cpp.o"
  "CMakeFiles/repro_fx8.dir/ip.cpp.o.d"
  "CMakeFiles/repro_fx8.dir/machine.cpp.o"
  "CMakeFiles/repro_fx8.dir/machine.cpp.o.d"
  "librepro_fx8.a"
  "librepro_fx8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_fx8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
