
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fx8/ccb.cpp" "src/fx8/CMakeFiles/repro_fx8.dir/ccb.cpp.o" "gcc" "src/fx8/CMakeFiles/repro_fx8.dir/ccb.cpp.o.d"
  "/root/repo/src/fx8/ce.cpp" "src/fx8/CMakeFiles/repro_fx8.dir/ce.cpp.o" "gcc" "src/fx8/CMakeFiles/repro_fx8.dir/ce.cpp.o.d"
  "/root/repo/src/fx8/cluster.cpp" "src/fx8/CMakeFiles/repro_fx8.dir/cluster.cpp.o" "gcc" "src/fx8/CMakeFiles/repro_fx8.dir/cluster.cpp.o.d"
  "/root/repo/src/fx8/crossbar.cpp" "src/fx8/CMakeFiles/repro_fx8.dir/crossbar.cpp.o" "gcc" "src/fx8/CMakeFiles/repro_fx8.dir/crossbar.cpp.o.d"
  "/root/repo/src/fx8/ip.cpp" "src/fx8/CMakeFiles/repro_fx8.dir/ip.cpp.o" "gcc" "src/fx8/CMakeFiles/repro_fx8.dir/ip.cpp.o.d"
  "/root/repo/src/fx8/machine.cpp" "src/fx8/CMakeFiles/repro_fx8.dir/machine.cpp.o" "gcc" "src/fx8/CMakeFiles/repro_fx8.dir/machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/repro_base.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/repro_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/repro_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/repro_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
