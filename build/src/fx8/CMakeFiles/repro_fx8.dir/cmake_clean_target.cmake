file(REMOVE_RECURSE
  "librepro_fx8.a"
)
