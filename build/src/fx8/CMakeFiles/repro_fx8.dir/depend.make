# Empty dependencies file for repro_fx8.
# This may be replaced when dependencies are built.
