file(REMOVE_RECURSE
  "librepro_base.a"
)
