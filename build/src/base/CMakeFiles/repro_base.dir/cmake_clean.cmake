file(REMOVE_RECURSE
  "CMakeFiles/repro_base.dir/expect.cpp.o"
  "CMakeFiles/repro_base.dir/expect.cpp.o.d"
  "CMakeFiles/repro_base.dir/rng.cpp.o"
  "CMakeFiles/repro_base.dir/rng.cpp.o.d"
  "CMakeFiles/repro_base.dir/text.cpp.o"
  "CMakeFiles/repro_base.dir/text.cpp.o.d"
  "librepro_base.a"
  "librepro_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
