# Empty dependencies file for repro_base.
# This may be replaced when dependencies are built.
