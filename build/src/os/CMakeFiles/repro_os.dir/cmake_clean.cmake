file(REMOVE_RECURSE
  "CMakeFiles/repro_os.dir/kernel_counters.cpp.o"
  "CMakeFiles/repro_os.dir/kernel_counters.cpp.o.d"
  "CMakeFiles/repro_os.dir/scheduler.cpp.o"
  "CMakeFiles/repro_os.dir/scheduler.cpp.o.d"
  "CMakeFiles/repro_os.dir/system.cpp.o"
  "CMakeFiles/repro_os.dir/system.cpp.o.d"
  "CMakeFiles/repro_os.dir/vm.cpp.o"
  "CMakeFiles/repro_os.dir/vm.cpp.o.d"
  "librepro_os.a"
  "librepro_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
