file(REMOVE_RECURSE
  "CMakeFiles/test_workload.dir/workload/generator_test.cpp.o"
  "CMakeFiles/test_workload.dir/workload/generator_test.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/jobs_test.cpp.o"
  "CMakeFiles/test_workload.dir/workload/jobs_test.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/kernels_test.cpp.o"
  "CMakeFiles/test_workload.dir/workload/kernels_test.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/mix_io_test.cpp.o"
  "CMakeFiles/test_workload.dir/workload/mix_io_test.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/trip_law_test.cpp.o"
  "CMakeFiles/test_workload.dir/workload/trip_law_test.cpp.o.d"
  "test_workload"
  "test_workload.pdb"
  "test_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
