
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/os/kernel_counters_test.cpp" "tests/CMakeFiles/test_os.dir/os/kernel_counters_test.cpp.o" "gcc" "tests/CMakeFiles/test_os.dir/os/kernel_counters_test.cpp.o.d"
  "/root/repo/tests/os/scheduler_policy_test.cpp" "tests/CMakeFiles/test_os.dir/os/scheduler_policy_test.cpp.o" "gcc" "tests/CMakeFiles/test_os.dir/os/scheduler_policy_test.cpp.o.d"
  "/root/repo/tests/os/scheduler_test.cpp" "tests/CMakeFiles/test_os.dir/os/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/test_os.dir/os/scheduler_test.cpp.o.d"
  "/root/repo/tests/os/vm_test.cpp" "tests/CMakeFiles/test_os.dir/os/vm_test.cpp.o" "gcc" "tests/CMakeFiles/test_os.dir/os/vm_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/repro_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/repro_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/instr/CMakeFiles/repro_instr.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/repro_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/repro_os.dir/DependInfo.cmake"
  "/root/repo/build/src/fx8/CMakeFiles/repro_fx8.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/repro_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/repro_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/repro_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/repro_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/repro_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
