file(REMOVE_RECURSE
  "CMakeFiles/test_os.dir/os/kernel_counters_test.cpp.o"
  "CMakeFiles/test_os.dir/os/kernel_counters_test.cpp.o.d"
  "CMakeFiles/test_os.dir/os/scheduler_policy_test.cpp.o"
  "CMakeFiles/test_os.dir/os/scheduler_policy_test.cpp.o.d"
  "CMakeFiles/test_os.dir/os/scheduler_test.cpp.o"
  "CMakeFiles/test_os.dir/os/scheduler_test.cpp.o.d"
  "CMakeFiles/test_os.dir/os/vm_test.cpp.o"
  "CMakeFiles/test_os.dir/os/vm_test.cpp.o.d"
  "test_os"
  "test_os.pdb"
  "test_os[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
