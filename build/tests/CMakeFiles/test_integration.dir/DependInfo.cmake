
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/calibration_mechanisms_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/calibration_mechanisms_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/calibration_mechanisms_test.cpp.o.d"
  "/root/repo/tests/integration/coherence_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/coherence_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/coherence_test.cpp.o.d"
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/integration/nonintrusive_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/nonintrusive_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/nonintrusive_test.cpp.o.d"
  "/root/repo/tests/integration/stress_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/stress_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/stress_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/repro_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/repro_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/instr/CMakeFiles/repro_instr.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/repro_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/repro_os.dir/DependInfo.cmake"
  "/root/repo/build/src/fx8/CMakeFiles/repro_fx8.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/repro_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/repro_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/repro_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/repro_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/repro_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
