file(REMOVE_RECURSE
  "CMakeFiles/test_instr.dir/instr/buffer_io_test.cpp.o"
  "CMakeFiles/test_instr.dir/instr/buffer_io_test.cpp.o.d"
  "CMakeFiles/test_instr.dir/instr/das_controller_test.cpp.o"
  "CMakeFiles/test_instr.dir/instr/das_controller_test.cpp.o.d"
  "CMakeFiles/test_instr.dir/instr/logic_analyzer_test.cpp.o"
  "CMakeFiles/test_instr.dir/instr/logic_analyzer_test.cpp.o.d"
  "CMakeFiles/test_instr.dir/instr/reduction_test.cpp.o"
  "CMakeFiles/test_instr.dir/instr/reduction_test.cpp.o.d"
  "CMakeFiles/test_instr.dir/instr/session_controller_test.cpp.o"
  "CMakeFiles/test_instr.dir/instr/session_controller_test.cpp.o.d"
  "test_instr"
  "test_instr.pdb"
  "test_instr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_instr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
