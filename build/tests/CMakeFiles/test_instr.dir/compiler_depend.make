# Empty compiler generated dependencies file for test_instr.
# This may be replaced when dependencies are built.
