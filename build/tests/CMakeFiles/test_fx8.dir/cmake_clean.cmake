file(REMOVE_RECURSE
  "CMakeFiles/test_fx8.dir/fx8/appendix_c_test.cpp.o"
  "CMakeFiles/test_fx8.dir/fx8/appendix_c_test.cpp.o.d"
  "CMakeFiles/test_fx8.dir/fx8/ccb_chunked_test.cpp.o"
  "CMakeFiles/test_fx8.dir/fx8/ccb_chunked_test.cpp.o.d"
  "CMakeFiles/test_fx8.dir/fx8/ccb_test.cpp.o"
  "CMakeFiles/test_fx8.dir/fx8/ccb_test.cpp.o.d"
  "CMakeFiles/test_fx8.dir/fx8/ce_accounting_test.cpp.o"
  "CMakeFiles/test_fx8.dir/fx8/ce_accounting_test.cpp.o.d"
  "CMakeFiles/test_fx8.dir/fx8/ce_test.cpp.o"
  "CMakeFiles/test_fx8.dir/fx8/ce_test.cpp.o.d"
  "CMakeFiles/test_fx8.dir/fx8/cluster_property_test.cpp.o"
  "CMakeFiles/test_fx8.dir/fx8/cluster_property_test.cpp.o.d"
  "CMakeFiles/test_fx8.dir/fx8/cluster_test.cpp.o"
  "CMakeFiles/test_fx8.dir/fx8/cluster_test.cpp.o.d"
  "CMakeFiles/test_fx8.dir/fx8/crossbar_test.cpp.o"
  "CMakeFiles/test_fx8.dir/fx8/crossbar_test.cpp.o.d"
  "CMakeFiles/test_fx8.dir/fx8/detached_test.cpp.o"
  "CMakeFiles/test_fx8.dir/fx8/detached_test.cpp.o.d"
  "CMakeFiles/test_fx8.dir/fx8/ip_test.cpp.o"
  "CMakeFiles/test_fx8.dir/fx8/ip_test.cpp.o.d"
  "CMakeFiles/test_fx8.dir/fx8/machine_test.cpp.o"
  "CMakeFiles/test_fx8.dir/fx8/machine_test.cpp.o.d"
  "test_fx8"
  "test_fx8.pdb"
  "test_fx8[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fx8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
