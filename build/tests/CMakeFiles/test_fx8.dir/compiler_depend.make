# Empty compiler generated dependencies file for test_fx8.
# This may be replaced when dependencies are built.
