file(REMOVE_RECURSE
  "CMakeFiles/test_stats.dir/stats/bootstrap_test.cpp.o"
  "CMakeFiles/test_stats.dir/stats/bootstrap_test.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/correlation_test.cpp.o"
  "CMakeFiles/test_stats.dir/stats/correlation_test.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/descriptive_test.cpp.o"
  "CMakeFiles/test_stats.dir/stats/descriptive_test.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/freq_table_test.cpp.o"
  "CMakeFiles/test_stats.dir/stats/freq_table_test.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/regression_test.cpp.o"
  "CMakeFiles/test_stats.dir/stats/regression_test.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/scatter_test.cpp.o"
  "CMakeFiles/test_stats.dir/stats/scatter_test.cpp.o.d"
  "test_stats"
  "test_stats.pdb"
  "test_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
