# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_base[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_fx8[1]_include.cmake")
include("/root/repo/build/tests/test_os[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_instr[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
