# Empty dependencies file for bench_fig13_model_busbusy_cw.
# This may be replaced when dependencies are built.
