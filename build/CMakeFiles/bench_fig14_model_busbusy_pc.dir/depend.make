# Empty dependencies file for bench_fig14_model_busbusy_pc.
# This may be replaced when dependencies are built.
