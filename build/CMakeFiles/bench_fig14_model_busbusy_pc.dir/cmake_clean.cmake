file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_model_busbusy_pc.dir/bench/bench_fig14_model_busbusy_pc.cpp.o"
  "CMakeFiles/bench_fig14_model_busbusy_pc.dir/bench/bench_fig14_model_busbusy_pc.cpp.o.d"
  "bench/bench_fig14_model_busbusy_pc"
  "bench/bench_fig14_model_busbusy_pc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_model_busbusy_pc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
