file(REMOVE_RECURSE
  "CMakeFiles/bench_correlation_matrix.dir/bench/bench_correlation_matrix.cpp.o"
  "CMakeFiles/bench_correlation_matrix.dir/bench/bench_correlation_matrix.cpp.o.d"
  "bench/bench_correlation_matrix"
  "bench/bench_correlation_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_correlation_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
