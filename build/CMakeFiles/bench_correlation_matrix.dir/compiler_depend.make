# Empty compiler generated dependencies file for bench_correlation_matrix.
# This may be replaced when dependencies are built.
