# Empty compiler generated dependencies file for bench_fig11_missrate_by_pc_band.
# This may be replaced when dependencies are built.
