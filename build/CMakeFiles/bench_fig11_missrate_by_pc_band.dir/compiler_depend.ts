# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_fig11_missrate_by_pc_band.
