file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_missrate_by_pc_band.dir/bench/bench_fig11_missrate_by_pc_band.cpp.o"
  "CMakeFiles/bench_fig11_missrate_by_pc_band.dir/bench/bench_fig11_missrate_by_pc_band.cpp.o.d"
  "bench/bench_fig11_missrate_by_pc_band"
  "bench/bench_fig11_missrate_by_pc_band.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_missrate_by_pc_band.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
