file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_a.dir/bench/bench_appendix_a.cpp.o"
  "CMakeFiles/bench_appendix_a.dir/bench/bench_appendix_a.cpp.o.d"
  "bench/bench_appendix_a"
  "bench/bench_appendix_a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
