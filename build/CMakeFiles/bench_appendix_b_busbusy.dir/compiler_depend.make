# Empty compiler generated dependencies file for bench_appendix_b_busbusy.
# This may be replaced when dependencies are built.
