file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_b_busbusy.dir/bench/bench_appendix_b_busbusy.cpp.o"
  "CMakeFiles/bench_appendix_b_busbusy.dir/bench/bench_appendix_b_busbusy.cpp.o.d"
  "bench/bench_appendix_b_busbusy"
  "bench/bench_appendix_b_busbusy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_b_busbusy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
