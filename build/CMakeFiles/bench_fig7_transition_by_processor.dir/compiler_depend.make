# Empty compiler generated dependencies file for bench_fig7_transition_by_processor.
# This may be replaced when dependencies are built.
