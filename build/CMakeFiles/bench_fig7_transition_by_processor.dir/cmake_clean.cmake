file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_transition_by_processor.dir/bench/bench_fig7_transition_by_processor.cpp.o"
  "CMakeFiles/bench_fig7_transition_by_processor.dir/bench/bench_fig7_transition_by_processor.cpp.o.d"
  "bench/bench_fig7_transition_by_processor"
  "bench/bench_fig7_transition_by_processor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_transition_by_processor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
