file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_service_order.dir/bench/bench_ablation_service_order.cpp.o"
  "CMakeFiles/bench_ablation_service_order.dir/bench/bench_ablation_service_order.cpp.o.d"
  "bench/bench_ablation_service_order"
  "bench/bench_ablation_service_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_service_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
