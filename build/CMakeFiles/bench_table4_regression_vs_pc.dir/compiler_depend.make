# Empty compiler generated dependencies file for bench_table4_regression_vs_pc.
# This may be replaced when dependencies are built.
