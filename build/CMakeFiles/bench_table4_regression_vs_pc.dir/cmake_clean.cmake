file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_regression_vs_pc.dir/bench/bench_table4_regression_vs_pc.cpp.o"
  "CMakeFiles/bench_table4_regression_vs_pc.dir/bench/bench_table4_regression_vs_pc.cpp.o.d"
  "bench/bench_table4_regression_vs_pc"
  "bench/bench_table4_regression_vs_pc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_regression_vs_pc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
