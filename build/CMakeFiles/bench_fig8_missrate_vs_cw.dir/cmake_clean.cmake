file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_missrate_vs_cw.dir/bench/bench_fig8_missrate_vs_cw.cpp.o"
  "CMakeFiles/bench_fig8_missrate_vs_cw.dir/bench/bench_fig8_missrate_vs_cw.cpp.o.d"
  "bench/bench_fig8_missrate_vs_cw"
  "bench/bench_fig8_missrate_vs_cw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_missrate_vs_cw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
