# Empty compiler generated dependencies file for bench_fig8_missrate_vs_cw.
# This may be replaced when dependencies are built.
