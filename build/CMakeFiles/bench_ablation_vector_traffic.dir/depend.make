# Empty dependencies file for bench_ablation_vector_traffic.
# This may be replaced when dependencies are built.
