file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_vector_traffic.dir/bench/bench_ablation_vector_traffic.cpp.o"
  "CMakeFiles/bench_ablation_vector_traffic.dir/bench/bench_ablation_vector_traffic.cpp.o.d"
  "bench/bench_ablation_vector_traffic"
  "bench/bench_ablation_vector_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vector_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
