file(REMOVE_RECURSE
  "CMakeFiles/bench_high_concurrency_captures.dir/bench/bench_high_concurrency_captures.cpp.o"
  "CMakeFiles/bench_high_concurrency_captures.dir/bench/bench_high_concurrency_captures.cpp.o.d"
  "bench/bench_high_concurrency_captures"
  "bench/bench_high_concurrency_captures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_high_concurrency_captures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
