# Empty compiler generated dependencies file for bench_high_concurrency_captures.
# This may be replaced when dependencies are built.
