file(REMOVE_RECURSE
  "CMakeFiles/bench_width_sweep.dir/bench/bench_width_sweep.cpp.o"
  "CMakeFiles/bench_width_sweep.dir/bench/bench_width_sweep.cpp.o.d"
  "bench/bench_width_sweep"
  "bench/bench_width_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_width_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
