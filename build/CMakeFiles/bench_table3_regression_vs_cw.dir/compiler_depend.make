# Empty compiler generated dependencies file for bench_table3_regression_vs_cw.
# This may be replaced when dependencies are built.
