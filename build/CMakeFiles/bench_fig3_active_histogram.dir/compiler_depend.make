# Empty compiler generated dependencies file for bench_fig3_active_histogram.
# This may be replaced when dependencies are built.
