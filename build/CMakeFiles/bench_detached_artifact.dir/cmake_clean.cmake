file(REMOVE_RECURSE
  "CMakeFiles/bench_detached_artifact.dir/bench/bench_detached_artifact.cpp.o"
  "CMakeFiles/bench_detached_artifact.dir/bench/bench_detached_artifact.cpp.o.d"
  "bench/bench_detached_artifact"
  "bench/bench_detached_artifact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_detached_artifact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
