# Empty dependencies file for bench_detached_artifact.
# This may be replaced when dependencies are built.
