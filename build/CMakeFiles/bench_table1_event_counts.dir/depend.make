# Empty dependencies file for bench_table1_event_counts.
# This may be replaced when dependencies are built.
