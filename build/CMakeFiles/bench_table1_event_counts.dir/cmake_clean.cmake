file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_event_counts.dir/bench/bench_table1_event_counts.cpp.o"
  "CMakeFiles/bench_table1_event_counts.dir/bench/bench_table1_event_counts.cpp.o.d"
  "bench/bench_table1_event_counts"
  "bench/bench_table1_event_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_event_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
