file(REMOVE_RECURSE
  "CMakeFiles/bench_scheduling_policy.dir/bench/bench_scheduling_policy.cpp.o"
  "CMakeFiles/bench_scheduling_policy.dir/bench/bench_scheduling_policy.cpp.o.d"
  "bench/bench_scheduling_policy"
  "bench/bench_scheduling_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scheduling_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
