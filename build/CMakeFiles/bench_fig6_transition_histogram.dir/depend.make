# Empty dependencies file for bench_fig6_transition_histogram.
# This may be replaced when dependencies are built.
