file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_missrate_vs_pc.dir/bench/bench_fig9_missrate_vs_pc.cpp.o"
  "CMakeFiles/bench_fig9_missrate_vs_pc.dir/bench/bench_fig9_missrate_vs_pc.cpp.o.d"
  "bench/bench_fig9_missrate_vs_pc"
  "bench/bench_fig9_missrate_vs_pc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_missrate_vs_pc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
