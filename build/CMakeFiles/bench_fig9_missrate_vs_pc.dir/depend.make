# Empty dependencies file for bench_fig9_missrate_vs_pc.
# This may be replaced when dependencies are built.
