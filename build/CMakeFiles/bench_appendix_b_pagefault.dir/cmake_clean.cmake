file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_b_pagefault.dir/bench/bench_appendix_b_pagefault.cpp.o"
  "CMakeFiles/bench_appendix_b_pagefault.dir/bench/bench_appendix_b_pagefault.cpp.o.d"
  "bench/bench_appendix_b_pagefault"
  "bench/bench_appendix_b_pagefault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_b_pagefault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
