# Empty compiler generated dependencies file for bench_appendix_b_pagefault.
# This may be replaced when dependencies are built.
