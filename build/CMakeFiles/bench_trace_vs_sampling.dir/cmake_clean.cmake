file(REMOVE_RECURSE
  "CMakeFiles/bench_trace_vs_sampling.dir/bench/bench_trace_vs_sampling.cpp.o"
  "CMakeFiles/bench_trace_vs_sampling.dir/bench/bench_trace_vs_sampling.cpp.o.d"
  "bench/bench_trace_vs_sampling"
  "bench/bench_trace_vs_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trace_vs_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
