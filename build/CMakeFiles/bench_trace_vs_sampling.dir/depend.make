# Empty dependencies file for bench_trace_vs_sampling.
# This may be replaced when dependencies are built.
