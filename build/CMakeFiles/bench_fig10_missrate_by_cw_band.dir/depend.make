# Empty dependencies file for bench_fig10_missrate_by_cw_band.
# This may be replaced when dependencies are built.
