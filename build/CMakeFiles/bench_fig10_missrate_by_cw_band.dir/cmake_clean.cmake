file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_missrate_by_cw_band.dir/bench/bench_fig10_missrate_by_cw_band.cpp.o"
  "CMakeFiles/bench_fig10_missrate_by_cw_band.dir/bench/bench_fig10_missrate_by_cw_band.cpp.o.d"
  "bench/bench_fig10_missrate_by_cw_band"
  "bench/bench_fig10_missrate_by_cw_band.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_missrate_by_cw_band.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
