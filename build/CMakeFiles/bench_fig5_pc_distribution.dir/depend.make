# Empty dependencies file for bench_fig5_pc_distribution.
# This may be replaced when dependencies are built.
