file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_overall_measures.dir/bench/bench_table2_overall_measures.cpp.o"
  "CMakeFiles/bench_table2_overall_measures.dir/bench/bench_table2_overall_measures.cpp.o.d"
  "bench/bench_table2_overall_measures"
  "bench/bench_table2_overall_measures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_overall_measures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
