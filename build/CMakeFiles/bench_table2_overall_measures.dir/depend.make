# Empty dependencies file for bench_table2_overall_measures.
# This may be replaced when dependencies are built.
