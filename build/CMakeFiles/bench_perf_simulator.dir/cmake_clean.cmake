file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_simulator.dir/bench/bench_perf_simulator.cpp.o"
  "CMakeFiles/bench_perf_simulator.dir/bench/bench_perf_simulator.cpp.o.d"
  "bench/bench_perf_simulator"
  "bench/bench_perf_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
