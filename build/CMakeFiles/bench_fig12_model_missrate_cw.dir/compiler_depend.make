# Empty compiler generated dependencies file for bench_fig12_model_missrate_cw.
# This may be replaced when dependencies are built.
