file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_model_missrate_cw.dir/bench/bench_fig12_model_missrate_cw.cpp.o"
  "CMakeFiles/bench_fig12_model_missrate_cw.dir/bench/bench_fig12_model_missrate_cw.cpp.o.d"
  "bench/bench_fig12_model_missrate_cw"
  "bench/bench_fig12_model_missrate_cw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_model_missrate_cw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
