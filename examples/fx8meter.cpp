// fx8meter — command-line driver for the measurement methodology.
//
// The closest thing in this repository to the study's C-Shell control
// scripts (§3.4): pick a workload mixture, run sampled sessions, print
// the report. Usage:
//
//   fx8meter [--sessions N] [--samples M] [--interval CYCLES]
//            [--mix 0..8|high|presets] [--mix-file FILE]
//            [--policy fifo|concurrent|serial] [--seed S]
//            [--threads N] [--replicates R] [--rig-batch B]
//            [--ces N] [--clusters K]
//            [--report table2|models|histogram|all]
//            [--csv FILE] [--checkpoint FILE] [--resume FILE]
//
// --threads 0 (the default) picks FX8_THREADS or the hardware
// concurrency; results are bit-identical for every thread count.
//
// --replicates splits each session across R independent rigs;
// --rig-batch advances up to B of them in lockstep through the wide
// lane kernel (0 = auto). Both leave results bit-identical — see
// docs/perf.md ("Rig-batched lanes").
//
// --checkpoint FILE writes a sealed state capsule after every completed
// sample; --resume FILE continues a run from such a capsule. Both
// restrict the run to one session (the capsule holds one measurement
// rig) and produce output bit-identical to an uninterrupted run — see
// docs/checkpointing.md.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <fstream>
#include <sstream>

#include "base/capsule.hpp"
#include "base/rng.hpp"
#include "base/text.hpp"
#include "fx8/topology.hpp"
#include "core/checkpoint.hpp"
#include "core/export.hpp"
#include "core/regression_models.hpp"
#include "core/report.hpp"
#include "core/study.hpp"
#include "workload/mix_io.hpp"
#include "workload/presets.hpp"

namespace {

using namespace repro;

struct Options {
  std::uint32_t sessions = 9;
  std::uint32_t samples = 8;
  Cycle interval = 60000;
  std::string mix = "presets";
  std::string policy = "fifo";
  std::string report = "all";
  std::string mix_file;
  std::string csv_file;
  std::string checkpoint_file;
  std::string resume_file;
  std::uint64_t seed = 0x19870301;
  std::uint32_t threads = 0;
  std::uint32_t replicates = 1;
  std::uint32_t rig_batch = 0;
  std::uint32_t ces = 0;       ///< 0 = the stock FX/8 width.
  std::uint32_t clusters = 0;  ///< 0 = derive from --ces.
};

/// Strict flag-value parses (the shared repro::parse_u{32,64}_strict
/// rules): plain digits only — no whitespace, signs, trailing garbage
/// or silent overflow saturation. Missing or malformed values print
/// which flag rejected what and fail the parse (exit 2).
bool parse_u32_flag(const char* flag, const char* value,
                    std::uint32_t& out) {
  if (value == nullptr || !repro::parse_u32_strict(value, out)) {
    std::fprintf(stderr, "%s wants a plain non-negative integer, got '%s'\n",
                 flag, value == nullptr ? "(nothing)" : value);
    return false;
  }
  return true;
}

bool parse_u64_flag(const char* flag, const char* value, std::uint64_t& out,
                    int base = 10) {
  if (value == nullptr || !repro::parse_u64_strict(value, out, base)) {
    std::fprintf(stderr, "%s wants a plain non-negative integer, got '%s'\n",
                 flag, value == nullptr ? "(nothing)" : value);
    return false;
  }
  return true;
}

bool parse(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--sessions") {
      if (!parse_u32_flag("--sessions", next(), options.sessions))
        return false;
    } else if (arg == "--samples") {
      if (!parse_u32_flag("--samples", next(), options.samples))
        return false;
    } else if (arg == "--interval") {
      if (!parse_u64_flag("--interval", next(), options.interval))
        return false;
    } else if (arg == "--mix") {
      const char* v = next();
      if (!v) return false;
      options.mix = v;
    } else if (arg == "--policy") {
      const char* v = next();
      if (!v) return false;
      options.policy = v;
    } else if (arg == "--seed") {
      // Base 0: seeds are documented as hex-friendly (0x...).
      if (!parse_u64_flag("--seed", next(), options.seed, 0)) return false;
    } else if (arg == "--threads") {
      if (!parse_u32_flag("--threads", next(), options.threads))
        return false;
    } else if (arg == "--replicates") {
      if (!parse_u32_flag("--replicates", next(), options.replicates))
        return false;
    } else if (arg == "--rig-batch") {
      if (!parse_u32_flag("--rig-batch", next(), options.rig_batch))
        return false;
    } else if (arg == "--ces") {
      if (!parse_u32_flag("--ces", next(), options.ces)) return false;
      if (options.ces == 0) {
        std::fprintf(stderr, "--ces wants a positive integer\n");
        return false;
      }
    } else if (arg == "--clusters") {
      if (!parse_u32_flag("--clusters", next(), options.clusters))
        return false;
      if (options.clusters == 0) {
        std::fprintf(stderr, "--clusters wants a positive integer\n");
        return false;
      }
    } else if (arg == "--report") {
      const char* v = next();
      if (!v) return false;
      options.report = v;
    } else if (arg == "--mix-file") {
      const char* v = next();
      if (!v) return false;
      options.mix_file = v;
    } else if (arg == "--csv") {
      const char* v = next();
      if (!v) return false;
      options.csv_file = v;
    } else if (arg == "--checkpoint") {
      const char* v = next();
      if (!v) return false;
      options.checkpoint_file = v;
    } else if (arg == "--resume") {
      const char* v = next();
      if (!v) return false;
      options.resume_file = v;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return options.sessions > 0 && options.samples > 0 &&
         options.interval >= 5 * 512;
}

/// Single-session run with sample-granular checkpointing: the rig is
/// capsuled after every completed sample, and a resumed run continues
/// the stream bit-identically. Mirrors the seeding of core::run_study
/// with one session so the output matches the uninterrupted engine run.
int run_checkpointed(const Options& options, const workload::WorkloadMix& mix,
                     const core::StudyConfig& config,
                     core::StudyResult& study) {
  std::uint64_t seed_state = config.seed;
  const std::uint64_t session_seed = splitmix64(seed_state);

  os::System system(config.system);
  workload::WorkloadGenerator generator(mix, mix64(session_seed ^ 0xABCD));
  instr::SamplingConfig sampling = config.sampling;
  sampling.fast_forward = sampling.fast_forward && config.fast_forward;
  instr::SessionController controller(system, generator, sampling,
                                      mix64(session_seed ^ 0x5A5A));

  core::StudyCheckpoint progress;
  progress.samples_total = config.samples_per_session;
  if (!options.resume_file.empty()) {
    try {
      progress = core::load_study_checkpoint(
          capsule::read_file(options.resume_file), system, generator,
          controller);
    } catch (const capsule::CapsuleError& error) {
      std::fprintf(stderr, "fx8meter: cannot resume: %s\n", error.what());
      return 2;
    }
    // The capsule pins the system config; the sample target is the
    // user's call (the same --samples resumes, a larger one extends).
    progress.samples_total = config.samples_per_session;
    std::printf("resumed from %s at sample %u/%u\n\n",
                options.resume_file.c_str(), progress.samples_done,
                progress.samples_total);
  } else {
    controller.advance(config.warmup_cycles);
  }

  while (progress.samples_done < progress.samples_total) {
    const auto records = controller.run_session(1);
    progress.records.push_back(records.front());
    ++progress.samples_done;
    if (!options.checkpoint_file.empty()) {
      try {
        capsule::write_file(options.checkpoint_file,
                            core::save_study_checkpoint(progress, system,
                                                        generator,
                                                        controller));
      } catch (const capsule::CapsuleError& error) {
        std::fprintf(stderr, "fx8meter: cannot checkpoint: %s\n",
                     error.what());
        return 2;
      }
    }
  }

  core::SessionResult session;
  session.name = mix.name;
  const std::uint32_t width = system.machine().total_ces();
  session.samples.reserve(progress.records.size());
  for (const instr::SampleRecord& record : progress.records) {
    session.samples.push_back(core::analyze(record, width));
    session.totals.merge(record.hw);
  }
  session.ff = controller.ff_stats();
  session.overall = core::ConcurrencyMeasures::from_counts(
      std::span(session.totals.num).first(width + 1));
  study.totals = session.totals;
  study.overall = session.overall;
  study.ff = session.ff;
  study.sessions.push_back(std::move(session));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse(argc, argv, options)) {
    std::fprintf(
        stderr,
        "usage: fx8meter [--sessions N] [--samples M] [--interval CYCLES]\n"
        "                [--mix 0..8|high|presets] [--policy "
        "fifo|concurrent|serial]\n"
        "                [--seed S] [--threads N] [--replicates R]\n"
        "                [--rig-batch B] [--ces N] [--clusters K]\n"
        "                [--report table2|models|histogram|all]\n"
        "                [--checkpoint FILE] [--resume FILE]\n");
    return 2;
  }

  // Assemble the session mixes.
  std::vector<workload::WorkloadMix> mixes;
  const auto presets = workload::session_presets();
  if (!options.mix_file.empty()) {
    std::ifstream in(options.mix_file);
    if (!in) {
      std::fprintf(stderr, "cannot open mix file: %s\n",
                   options.mix_file.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const workload::WorkloadMix mix = workload::parse_mix(text.str());
    for (std::uint32_t s = 0; s < options.sessions; ++s) {
      mixes.push_back(mix);
    }
  } else if (options.mix == "presets") {
    for (std::uint32_t s = 0; s < options.sessions; ++s) {
      mixes.push_back(presets[s % presets.size()]);
    }
  } else if (options.mix == "high") {
    for (std::uint32_t s = 0; s < options.sessions; ++s) {
      mixes.push_back(workload::high_concurrency_mix());
    }
  } else {
    std::uint32_t index = 0;
    if (!repro::parse_u32_strict(options.mix.c_str(), index)) {
      std::fprintf(stderr, "--mix wants a preset name or index, got '%s'\n",
                   options.mix.c_str());
      return 2;
    }
    if (index >= presets.size()) {
      std::fprintf(stderr, "mix index out of range (0..8)\n");
      return 2;
    }
    for (std::uint32_t s = 0; s < options.sessions; ++s) {
      mixes.push_back(presets[index]);
    }
  }

  core::StudyConfig config;
  if (options.ces != 0 || options.clusters != 0) {
    fx8::TopologyConfig topology;
    topology.n_ces = options.ces;
    // --ces alone spreads over as few whole clusters as fit; --clusters
    // alone gangs stock 8-CE clusters.
    topology.n_clusters =
        options.clusters != 0
            ? options.clusters
            : std::max<std::uint32_t>(1, (options.ces + kMaxCes - 1) /
                                             kMaxCes);
    if (!fx8::topology_valid(topology,
                             config.system.machine.cluster.n_ces)) {
      std::fprintf(stderr,
                   "fx8meter: invalid topology (--ces %u --clusters %u): "
                   "need 1..%u clusters of 1..%u CEs each (the lane "
                   "kernel's chunk), evenly divided, %u CEs total at "
                   "most\n",
                   options.ces, topology.n_clusters, kMaxCes, kMaxCes,
                   kMaxTopologyCes);
      return 2;
    }
    config.system.machine.topology = topology;
  }
  config.samples_per_session = options.samples;
  config.sampling.interval_cycles = options.interval;
  config.seed = options.seed;
  config.threads = options.threads;
  config.replicates_per_session = options.replicates;
  config.rig_batch = options.rig_batch;
  if (options.policy == "concurrent") {
    config.system.scheduling = os::SchedulingPolicy::kConcurrentFirst;
  } else if (options.policy == "serial") {
    config.system.scheduling = os::SchedulingPolicy::kSerialFirst;
  } else if (options.policy != "fifo") {
    std::fprintf(stderr, "unknown policy: %s\n", options.policy.c_str());
    return 2;
  }

  std::printf("fx8meter: %zu session(s), %u sample(s) x %llu cycles, "
              "policy %s, seed %#llx, %u thread(s)\n\n",
              mixes.size(), options.samples,
              static_cast<unsigned long long>(options.interval),
              options.policy.c_str(),
              static_cast<unsigned long long>(options.seed),
              core::resolve_threads(config));

  core::StudyResult study;
  if (!options.checkpoint_file.empty() || !options.resume_file.empty()) {
    if (mixes.size() != 1) {
      std::fprintf(stderr,
                   "fx8meter: --checkpoint/--resume hold one measurement "
                   "rig; run with --sessions 1\n");
      return 2;
    }
    const int rc = run_checkpointed(options, mixes[0], config, study);
    if (rc != 0) {
      return rc;
    }
  } else {
    study = core::run_study(mixes, config);
  }

  const bool all = options.report == "all";
  if (all || options.report == "table2") {
    std::printf("%s\n", core::render_table2(study.overall).c_str());
    std::printf("%s\n", core::render_session_table(study.sessions).c_str());
  }
  if (all || options.report == "histogram") {
    std::printf("%s\n",
                core::render_active_histogram(
                    study.totals.num, "Records with N processors active")
                    .c_str());
  }
  if (all || options.report == "models") {
    const auto samples = study.all_samples();
    const auto models = core::fit_all_models(samples);
    std::printf("%s\n",
                core::render_regression_table(models, core::Regressor::kCw)
                    .c_str());
    std::printf("%s\n",
                core::render_regression_table(models, core::Regressor::kPc)
                    .c_str());
  }
  if (!options.csv_file.empty()) {
    std::ofstream out(options.csv_file);
    if (!out) {
      std::fprintf(stderr, "cannot write csv: %s\n",
                   options.csv_file.c_str());
      return 2;
    }
    out << core::samples_to_csv(study.sessions);
    std::printf("wrote %s\n", options.csv_file.c_str());
  }
  return 0;
}
