// Chapter 4 end-to-end: nine random-sampling sessions over the preset
// workload mixes, reported the way the thesis reports them — Table 2,
// Table A.1, and the Figure 3/4/5 distributions.
#include <cstdio>

#include "core/presets.hpp"
#include "core/report.hpp"
#include "core/study.hpp"
#include "stats/freq_table.hpp"

int main() {
  using namespace repro;

  // The snappy example-scale population (core/presets.hpp).
  const core::StudyConfig config = core::presets::example_study();

  std::printf("Running the nine measurement sessions...\n\n");
  const core::StudyResult study = core::run_default_study(config);

  // Table 2 and the all-sessions activity histogram (Figure 3).
  std::printf("%s\n", core::render_table2(study.overall).c_str());
  std::printf("%s\n",
              core::render_active_histogram(
                  study.totals.num,
                  "Figure 3. Number of Records with N Processors Active / "
                  "All Sessions")
                  .c_str());

  // Figure 4: distribution of samples by Workload Concurrency.
  const auto samples = study.all_samples();
  const std::vector<double> cw = core::column_cw(samples);
  std::vector<double> cw_mids;
  for (int i = 0; i <= 8; ++i) {
    cw_mids.push_back(static_cast<double>(i) / 8.0);
  }
  std::printf(
      "Figure 4. Distribution of Samples by Workload Concurrency\n%s\n",
      stats::FreqTable::from_values(cw, cw_mids, 3).render(40).c_str());

  // Figure 5: distribution of samples by Mean Concurrency Level.
  const std::vector<double> pc = core::column_pc(samples);
  std::vector<double> pc_mids;
  for (int i = 4; i <= 16; ++i) {
    pc_mids.push_back(static_cast<double>(i) / 2.0);
  }
  if (!pc.empty()) {
    std::printf(
        "Figure 5. Distribution of Samples by Mean Concurrency Level\n%s\n",
        stats::FreqTable::from_values(pc, pc_mids, 1).render(40).c_str());
  }

  // Table A.1: per-session measures.
  std::printf("%s", core::render_session_table(study.sessions).c_str());
  return 0;
}
