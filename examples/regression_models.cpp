// Chapter 5: regression models of system measures vs. concurrency.
//
// Gathers samples across the session presets, fits the six median-binned
// second-order models of Tables 3-4, and plots the miss-rate model the
// way Figure 12 does.
#include <cstdio>

#include "core/presets.hpp"
#include "core/regression_models.hpp"
#include "core/report.hpp"
#include "core/study.hpp"
#include "stats/scatter.hpp"

int main() {
  using namespace repro;

  const core::StudyConfig config = core::presets::example_study();

  std::printf("Gathering samples across the nine sessions...\n\n");
  const core::StudyResult study = core::run_default_study(config);
  const auto samples = study.all_samples();

  const auto models = core::fit_all_models(samples);
  std::printf("%s\n",
              core::render_regression_table(models, core::Regressor::kCw)
                  .c_str());
  std::printf("%s\n",
              core::render_regression_table(models, core::Regressor::kPc)
                  .c_str());

  // Figure 8-style scatter of the raw points.
  stats::ScatterOptions scatter_options;
  scatter_options.title = "Missrate vs. Workload Concurrency (raw samples)";
  scatter_options.x_label = "Cw";
  scatter_options.y_label = "missrate";
  scatter_options.x_min = 0.0;
  scatter_options.x_max = 1.0;
  const auto cw = core::column_cw(samples);
  const auto miss = core::column_miss_rate(samples);
  std::printf("%s\n", stats::render_scatter(cw, miss, scatter_options)
                          .c_str());

  // Figure 12-style plot of the fitted model.
  for (const core::MedianModel& model : models) {
    if (model.measure == core::SystemMeasure::kMissRate &&
        model.regressor == core::Regressor::kCw) {
      stats::ScatterOptions curve_options;
      curve_options.title =
          "Figure 12. Regression model, Missrate vs. Cw";
      curve_options.x_label = "Cw";
      curve_options.y_label = "missrate";
      std::printf("%s", stats::render_curve(
                            0.0, 1.0, 40,
                            [&](double x) { return model.predict(x); },
                            curve_options)
                            .c_str());
      std::printf(
          "model prediction: missrate(0.5) = %.4f -> missrate(1.0) = %.4f\n",
          model.predict(0.5), model.predict(1.0));
      std::printf(
          "(the thesis: 0.007 -> 0.024, a >3x increase for a 2x increase "
          "in Cw)\n");
    }
  }
  return 0;
}
