// Background §2: Speedup and Efficiency on the simulated cluster.
//
// "Speedup is defined as S = T1/Tp ... Efficiency is given by the ratio
// Ep = Sp/P". The thesis contrasts these program-level measures with its
// workload-level concurrency measures; this example computes them for
// the kernel palette via core::measure_speedup, which runs the same loop
// on 1..8-CE machines.
#include <cstdio>

#include "core/speedup.hpp"
#include "workload/kernels.hpp"

int main() {
  using namespace repro;

  workload::KernelTuning tuning;
  const isa::KernelSpec kernels[] = {
      workload::matmul_row_body(tuning),
      workload::jacobi_row_body(tuning),
      workload::triad_body(tuning),
      workload::reduction_body(tuning),
      workload::solver_sweep_body(tuning),
  };
  constexpr std::uint64_t kTrip = 128;

  std::printf("Speedup and efficiency per kernel (trip = %llu):\n\n",
              static_cast<unsigned long long>(kTrip));
  for (const isa::KernelSpec& kernel : kernels) {
    const core::SpeedupCurve curve = core::measure_speedup(kernel, kTrip);
    std::printf("%s\n", core::render_speedup_table(curve).c_str());
  }
  std::printf(
      "As the thesis notes (§2), speedup characterizes a *program*; it\n"
      "says nothing about how much of a production workload is concurrent\n"
      "— that is what the workload measures Cw and Pc add.\n");
  return 0;
}
