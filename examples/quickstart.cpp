// Quickstart: build an FX/8, run one concurrent job, measure it.
//
// Demonstrates the three layers of the public API:
//   1. fx8/os  — a simulated Alliant FX/8 under a Concentrix-like kernel,
//   2. instr   — the DAS-9100-style logic analyzer and event reduction,
//   3. core    — the paper's concurrency measures.
#include <cstdio>
#include <span>

#include "core/measures.hpp"
#include "instr/reduction.hpp"
#include "instr/signals.hpp"
#include "isa/program.hpp"
#include "os/system.hpp"
#include "workload/kernels.hpp"

int main() {
  using namespace repro;

  // 1. A machine with the measured CSRD configuration (Figure 1).
  os::System system(os::SystemConfig{});

  // 2. A numeric job: serial setup, one parallelized DO loop of 66
  //    iterations (8*8+2: two "leftover" iterations, §4.3), serial tail.
  workload::KernelTuning tuning;
  isa::ConcurrentLoopPhase loop;
  loop.body = workload::matmul_row_body(tuning);
  loop.trip_count = 66;
  const isa::Program program =
      isa::ProgramBuilder("quickstart-job")
          .seed(7)
          .data_base(0x01000000)
          .serial(workload::scalar_setup_body(tuning), 2)
          .concurrent_loop(loop)
          .serial(workload::scalar_setup_body(tuning), 1)
          .build();

  os::Job job;
  job.id = 1;
  job.program = program;
  system.scheduler().submit(std::move(job));

  // 3. Probe every cycle while the job runs, reducing to event counts the
  //    way the measurement scripts did (Table 1).
  instr::EventCounts counts;
  while (!system.scheduler().idle()) {
    system.tick();
    counts.accumulate(instr::latch(system.machine()));
  }

  std::printf("%s\n", counts.render().c_str());

  const auto measures = core::ConcurrencyMeasures::from_counts(
      std::span(counts.num).first(counts.width + 1));
  std::printf("Concurrency measures over the job's lifetime:\n  %s\n",
              measures.describe().c_str());
  std::printf("Derived system measures:\n");
  std::printf("  CE bus busy:  %.4f\n", counts.bus_busy());
  std::printf("  miss rate:    %.4f\n", counts.miss_rate());
  std::printf("  CE page faults: %llu\n",
              static_cast<unsigned long long>(
                  system.counters().ce_page_faults()));
  std::printf("  cycles:       %llu\n",
              static_cast<unsigned long long>(system.now()));
  return 0;
}
