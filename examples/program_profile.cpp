// Program-level concurrency evaluation (the paper's §6 future work).
//
// Attaches the marker-event tracer to the cluster, runs one numeric job,
// and prints its exact concurrency profile — per-job Cw and Pc, per-loop
// overlap and drain overhead — plus an ASCII execution timeline. This is
// the trace-based methodology of the paper's related work ([16][17]),
// provided alongside the thesis' sampling methodology.
#include <cstdio>

#include "fx8/machine.hpp"
#include "fx8/mmu.hpp"
#include "isa/program.hpp"
#include "trace/profile.hpp"
#include "trace/timeline.hpp"
#include "trace/tracer.hpp"
#include "workload/kernels.hpp"

int main() {
  using namespace repro;

  fx8::NoFaultMmu mmu;
  fx8::Machine machine(fx8::MachineConfig::fx8(), mmu);
  trace::EventTracer tracer;
  machine.cluster().set_observer(&tracer);

  // A structural-mechanics-flavoured job: setup, a big matmul loop, a
  // dependence-free triad, and a solver sweep with a 2-leftover trip.
  workload::KernelTuning tuning;
  isa::ConcurrentLoopPhase matmul;
  matmul.body = workload::matmul_row_body(tuning);
  matmul.trip_count = 64;
  isa::ConcurrentLoopPhase triad;
  triad.body = workload::triad_body(tuning);
  triad.trip_count = 48;
  isa::ConcurrentLoopPhase solver;
  solver.body = workload::solver_sweep_body(tuning);
  solver.trip_count = 8 * 4 + 2;
  solver.dependence_prob = 0.2;

  const isa::Program program =
      isa::ProgramBuilder("structural-mechanics")
          .seed(11)
          .data_base(0x01000000)
          .serial(workload::scalar_setup_body(tuning), 2)
          .concurrent_loop(matmul)
          .serial(workload::scalar_setup_body(tuning), 1)
          .concurrent_loop(triad)
          .serial(workload::scalar_setup_body(tuning), 1)
          .concurrent_loop(solver)
          .serial(workload::scalar_setup_body(tuning), 1)
          .build();

  machine.cluster().load(&program, 1);
  while (machine.cluster().busy()) {
    machine.tick();
  }

  const trace::ProgramProfile profile =
      trace::profile_job(tracer.events(), 1);
  std::printf("%s\n\n", profile.describe().c_str());
  std::printf("serial cycles:     %llu\n",
              static_cast<unsigned long long>(profile.serial_cycles));
  std::printf("concurrent cycles: %llu\n\n",
              static_cast<unsigned long long>(profile.concurrent_cycles));

  std::printf("per-loop profile:\n");
  std::printf("  %-8s %-6s %-9s %-9s %-7s %s\n", "phase", "trip", "cycles",
              "overlap", "drain", "iterations/CE");
  for (const trace::LoopProfile& loop : profile.loops) {
    std::printf("  %-8u %-6llu %-9llu %-9.2f %-7llu [",
                loop.phase, static_cast<unsigned long long>(loop.trip_count),
                static_cast<unsigned long long>(loop.duration()),
                loop.mean_overlap,
                static_cast<unsigned long long>(loop.drain_cycles));
    for (std::size_t ce = 0; ce < loop.iterations_per_ce.size(); ++ce) {
      std::printf("%s%llu", ce ? " " : "",
                  static_cast<unsigned long long>(
                      loop.iterations_per_ce[ce]));
    }
    std::printf("]\n");
  }

  std::printf("\n%s",
              trace::render_timeline(tracer.events(), 1,
                                     trace::TimelineOptions{})
                  .c_str());
  std::printf(
      "\nNote how the dependence-carrying solver loop shows lower overlap\n"
      "and a longer drain than the dependence-free loops — the §4.3\n"
      "overheads, measured per program instead of sampled per workload.\n");
  return 0;
}
