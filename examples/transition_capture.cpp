// Chapter 4.3: triggered captures of concurrency transitions.
//
// Arms the logic analyzer with the 8-active -> fewer transition trigger,
// gathers captures over a high-concurrency workload, and reports the
// Figure 6 / Figure 7 histograms plus the paper's headline transition
// statistics.
#include <cstdio>

#include "core/presets.hpp"
#include "core/report.hpp"
#include "core/transition.hpp"
#include "workload/presets.hpp"

int main() {
  using namespace repro;

  // The snappy example-scale capture count (core/presets.hpp).
  const core::TransitionConfig config = core::presets::example_transition();

  std::printf("Capturing 8-active -> lower transitions...\n\n");
  const core::TransitionResult result = core::run_transition_study(
      workload::high_concurrency_mix(), config,
      instr::TriggerMode::kTransitionFromFull);

  std::printf("captures completed: %u (timed out: %u)\n\n",
              result.captures_completed, result.captures_timed_out);

  // Figure 6: only the transition states 7..2 are of interest.
  std::vector<std::uint64_t> transition_states;
  std::vector<std::string> labels;
  for (std::uint32_t j = 7; j >= 2; --j) {
    transition_states.push_back(result.state_counts[j]);
    labels.push_back(std::to_string(j));
  }
  std::printf(
      "Figure 6. Number of Records with N Processors Active / Concurrency "
      "Transition Periods\n");
  for (std::size_t i = 0; i < transition_states.size(); ++i) {
    std::printf("  %s-active: %8llu (%.1f%% of transition records)\n",
                labels[i].c_str(),
                static_cast<unsigned long long>(transition_states[i]),
                100.0 * result.transition_share(
                            static_cast<std::uint32_t>(7 - i)));
  }

  // Figure 7: per-processor activity during transitions.
  std::printf("\n%s",
              core::render_processor_histogram(
                  result.processor_counts,
                  "Figure 7. Number of Records Active by Processor Number / "
                  "Concurrency Transition Periods")
                  .c_str());

  std::printf(
      "\nPaper's observation: the 2-active state dominates (52%% in the "
      "thesis),\nand CEs 7 and 0 stay active longer than CEs 2-4.\n");
  return 0;
}
