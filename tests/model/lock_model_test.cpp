// The analytical lock model must price exactly what the interpreter
// executes: for every sweep point the simulator's steady-state marginal
// round time has to land inside the model's [lo, hi] bracket, and the
// point estimate has to be close. Measurements difference two round
// counts so cold-start cache misses and job load/teardown cancel.
#include "model/lock_model.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "base/rng.hpp"
#include "os/system.hpp"
#include "workload/contention.hpp"

namespace repro::model {
namespace {

/// Cycles for one lock job with a pinned round count to drain through a
/// default (single-cluster fx8) system.
Cycle run_lock_job(const workload::LockJobParams& params,
                   std::uint32_t rounds) {
  os::SystemConfig config;
  os::System system{config};
  Rng rng(0x5E5510);
  workload::LockJobParams pinned = params;
  pinned.min_rounds = rounds;
  pinned.max_rounds = rounds;
  system.scheduler().submit(workload::make_lock_job(1, rng, pinned, 0));
  constexpr Cycle kGuard = 50'000'000;
  while (!system.scheduler().idle() && system.now() < kGuard) {
    system.tick();
  }
  EXPECT_LT(system.now(), kGuard) << "lock job failed to drain";
  return system.now();
}

/// Simulator ground truth: steady-state cycles per round.
double measured_round_cycles(const workload::LockJobParams& params) {
  constexpr std::uint32_t kLow = 2;
  constexpr std::uint32_t kHigh = 10;
  const Cycle t_low = run_lock_job(params, kLow);
  const Cycle t_high = run_lock_job(params, kHigh);
  return static_cast<double>(t_high - t_low) / (kHigh - kLow);
}

workload::LockJobParams scenario(workload::LockType lock,
                                 std::uint32_t contenders,
                                 std::uint32_t critical_steps,
                                 std::uint32_t parallel_steps) {
  workload::LockJobParams params;
  params.lock = lock;
  params.contenders = contenders;
  params.critical_steps = critical_steps;
  params.parallel_steps = parallel_steps;
  return params;
}

TEST(LockModel, KernelDurationMatchesInterpreter) {
  // One contender, one round: no contention, no handoff — the phase
  // durations alone should dominate, pinning kernel_duration_cycles.
  workload::LockJobParams params = scenario(workload::LockType::kMcs, 1, 8, 8);
  const double measured = measured_round_cycles(params);
  const double d_par =
      kernel_duration_cycles(workload::lock_parallel_body(params));
  const double d_crit =
      kernel_duration_cycles(workload::lock_critical_body(params));
  // Uncontended round = both bodies back to back plus phase turns.
  EXPECT_NEAR(measured, d_par + d_crit, 10.0)
      << "d_par=" << d_par << " d_crit=" << d_crit;
}

TEST(LockModel, BracketsSimulatorAcrossSweep) {
  const workload::LockType locks[] = {workload::LockType::kTicket,
                                      workload::LockType::kMcs};
  for (const workload::LockType lock : locks) {
    for (const std::uint32_t contenders : {2u, 4u, 8u}) {
      for (const std::uint32_t critical : {6u, 24u}) {
        const workload::LockJobParams params =
            scenario(lock, contenders, critical, 48);
        const double measured = measured_round_cycles(params);
        const LockPrediction prediction = predict_lock_round(params);
        const double rel_err =
            (prediction.round_cycles - measured) / measured;
        std::printf(
            "lock=%s n=%u crit=%u: measured=%.1f predicted=%.1f "
            "[%.1f, %.1f] err=%+.2f%%\n",
            workload::to_string(lock), contenders, critical, measured,
            prediction.round_cycles, prediction.lo_cycles,
            prediction.hi_cycles, 100.0 * rel_err);
        EXPECT_GE(measured, prediction.lo_cycles)
            << to_string(lock) << " n=" << contenders << " crit=" << critical;
        EXPECT_LE(measured, prediction.hi_cycles)
            << to_string(lock) << " n=" << contenders << " crit=" << critical;
        // The documented tolerance band of predictor_validation.
        EXPECT_LT(std::abs(rel_err), 0.10)
            << to_string(lock) << " n=" << contenders << " crit=" << critical;
      }
    }
  }
}

TEST(LockModel, TicketCostsMoreThanMcs) {
  // Identical scenarios except the lock type: the ticket lock's shared
  // now-serving handoff steps must show up in both model and simulator.
  const auto ticket = scenario(workload::LockType::kTicket, 8, 12, 48);
  const auto mcs = scenario(workload::LockType::kMcs, 8, 12, 48);
  EXPECT_GT(predict_lock_round(ticket).round_cycles,
            predict_lock_round(mcs).round_cycles);
  EXPECT_GT(measured_round_cycles(ticket), measured_round_cycles(mcs));
}

TEST(LockModel, ThroughputDegradesWithContenders) {
  // Coarse-grained locking: per-cycle round throughput is set by the
  // serialized critical path, so acquisitions/cycle saturates while
  // cycles-per-acquisition grows ~linearly in N.
  const auto n2 = predict_lock_round(scenario(workload::LockType::kMcs, 2, 24, 12));
  const auto n8 = predict_lock_round(scenario(workload::LockType::kMcs, 8, 24, 12));
  const double per_acquire_2 = n2.round_cycles / 2.0;
  const double per_acquire_8 = n8.round_cycles / 8.0;
  EXPECT_GT(n8.round_cycles, n2.round_cycles);
  EXPECT_GT(per_acquire_8 / per_acquire_2, 0.8);  // approaching flat
}

TEST(LockModel, ResolvesWithinReflectsBounds) {
  const auto params = scenario(workload::LockType::kMcs, 8, 12, 48);
  const LockPrediction prediction = predict_lock_round(params);
  const double half_width = (prediction.hi_cycles - prediction.lo_cycles) /
                            (2.0 * prediction.round_cycles);
  EXPECT_TRUE(prediction.resolves_within(half_width + 1e-9));
  EXPECT_FALSE(prediction.resolves_within(half_width - 1e-9));
  LockPrediction degenerate;
  EXPECT_FALSE(degenerate.resolves_within(1.0));
}

TEST(LockModel, RejectsUnpriceableBodies) {
  isa::KernelSpec jittery;
  jittery.compute_jitter = 2;
  EXPECT_THROW((void)kernel_duration_cycles(jittery), ContractViolation);
  isa::KernelSpec vectored;
  vectored.vector_fraction = 0.5;
  EXPECT_THROW((void)kernel_duration_cycles(vectored), ContractViolation);
}

}  // namespace
}  // namespace repro::model
