#include "fx8/ccb.hpp"

#include <gtest/gtest.h>

#include "base/expect.hpp"

namespace repro::fx8 {
namespace {

TEST(Ccb, DispatchesAllIterationsExactlyOnce) {
  ConcurrencyControlBus ccb;
  ccb.start_loop(10);
  std::vector<std::uint64_t> got;
  while (!ccb.all_dispatched()) {
    ccb.begin_cycle();
    if (const auto it = ccb.try_dispatch()) {
      got.push_back(*it);
    }
  }
  ASSERT_EQ(got.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(got[i], i);
  }
}

TEST(Ccb, OneGrantPerCycle) {
  ConcurrencyControlBus ccb;
  ccb.start_loop(10);
  ccb.begin_cycle();
  EXPECT_TRUE(ccb.try_dispatch().has_value());
  EXPECT_FALSE(ccb.try_dispatch().has_value());
  ccb.begin_cycle();
  EXPECT_TRUE(ccb.try_dispatch().has_value());
}

TEST(Ccb, StartLoopGrantsInStartingCycle) {
  ConcurrencyControlBus ccb;
  ccb.start_loop(4);
  // No begin_cycle yet: the cstart cycle itself can dispatch.
  EXPECT_TRUE(ccb.try_dispatch().has_value());
}

TEST(Ccb, CompletionTracking) {
  ConcurrencyControlBus ccb;
  ccb.start_loop(3);
  ccb.begin_cycle();
  (void)ccb.try_dispatch();
  ccb.begin_cycle();
  (void)ccb.try_dispatch();
  ccb.begin_cycle();
  (void)ccb.try_dispatch();
  EXPECT_TRUE(ccb.all_dispatched());
  EXPECT_FALSE(ccb.all_complete());
  ccb.mark_complete(1);
  ccb.mark_complete(0);
  ccb.mark_complete(2);
  EXPECT_TRUE(ccb.all_complete());
  ccb.end_loop();
  EXPECT_FALSE(ccb.loop_active());
}

TEST(Ccb, DoubleCompletionIsContractViolation) {
  ConcurrencyControlBus ccb;
  ccb.start_loop(2);
  ccb.mark_complete(0);
  EXPECT_THROW(ccb.mark_complete(0), ContractViolation);
}

TEST(Ccb, PredecessorDependence) {
  ConcurrencyControlBus ccb;
  ccb.start_loop(4);
  EXPECT_TRUE(ccb.predecessor_complete(0));   // no predecessor
  EXPECT_FALSE(ccb.predecessor_complete(2));  // 1 not complete
  ccb.mark_complete(1);
  EXPECT_TRUE(ccb.predecessor_complete(2));
}

TEST(Ccb, EndLoopRequiresDrain) {
  ConcurrencyControlBus ccb;
  ccb.start_loop(1);
  EXPECT_THROW(ccb.end_loop(), ContractViolation);
}

TEST(Ccb, CannotStartTwoLoops) {
  ConcurrencyControlBus ccb;
  ccb.start_loop(1);
  EXPECT_THROW(ccb.start_loop(1), ContractViolation);
}

TEST(Ccb, ReusableAfterEndLoop) {
  ConcurrencyControlBus ccb;
  ccb.start_loop(1);
  ccb.begin_cycle();
  (void)ccb.try_dispatch();
  ccb.mark_complete(0);
  ccb.end_loop();
  EXPECT_NO_THROW(ccb.start_loop(5));
  EXPECT_EQ(ccb.trip_count(), 5u);
}

}  // namespace
}  // namespace repro::fx8
