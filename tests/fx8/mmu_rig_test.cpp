// Rig-indexed translation memos.
//
// Mmu::translate keeps a single-entry memo per (rig, CE). CE ids repeat
// across the machines of an fx8::RigBatch, so before the memos were
// rig-indexed, two rigs sharing one Mmu could cross-hit: rig 1's first
// touch of a page rig 0 had already memoized would be silently skipped,
// and rig 1 would never fault, map, or account the page. These tests pin
// the isolation down at the Mmu level and through two machines sharing
// one Mmu via Machine::set_mmu_rig.
#include "fx8/mmu.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fx8/machine.hpp"

namespace repro::fx8 {
namespace {

/// Records every touch() it serves, keyed by (rig, job, ce, addr).
class SpyMmu final : public Mmu {
 public:
  struct Touch {
    std::uint32_t rig;
    JobId job;
    CeId ce;
    Addr addr;
  };

  Cycle touch(JobId job, CeId ce, Addr addr, std::uint32_t rig) override {
    touches.push_back(Touch{rig, job, ce, addr});
    return 0;
  }

  using Mmu::invalidate_translations;

  std::vector<Touch> touches;
};

// The regression: rig 1's first translate of a page rig 0 already
// memoized must still reach touch() — the memo never crosses rigs.
TEST(MmuRig, FirstTouchPerRigAlwaysReachesMmu) {
  SpyMmu mmu;
  constexpr JobId kJob = 7;
  constexpr CeId kCe = 3;
  constexpr Addr kAddr = 0x200040;

  EXPECT_EQ(mmu.translate(kJob, kCe, kAddr, /*rig=*/0), 0u);
  ASSERT_EQ(mmu.touches.size(), 1u);

  // Same (job, ce, page) from rig 1: a fresh first touch, not a memo hit.
  EXPECT_EQ(mmu.translate(kJob, kCe, kAddr, /*rig=*/1), 0u);
  ASSERT_EQ(mmu.touches.size(), 2u);
  EXPECT_EQ(mmu.touches[0].rig, 0u);
  EXPECT_EQ(mmu.touches[1].rig, 1u);

  // Repeats within each rig memo-hit as before.
  EXPECT_EQ(mmu.translate(kJob, kCe, kAddr + 8, /*rig=*/0), 0u);
  EXPECT_EQ(mmu.translate(kJob, kCe, kAddr + 8, /*rig=*/1), 0u);
  EXPECT_EQ(mmu.touches.size(), 2u);
}

// Every rig slot is independent, and invalidation drops them all.
TEST(MmuRig, InvalidationClearsEveryRigSlot) {
  SpyMmu mmu;
  for (std::uint32_t rig = 0; rig < kMaxBatchRigs; ++rig) {
    (void)mmu.translate(1, 0, 0x1000, rig);
  }
  EXPECT_EQ(mmu.touches.size(), kMaxBatchRigs);
  for (std::uint32_t rig = 0; rig < kMaxBatchRigs; ++rig) {
    (void)mmu.translate(1, 0, 0x1000, rig);
  }
  EXPECT_EQ(mmu.touches.size(), kMaxBatchRigs);  // All memo hits.

  mmu.invalidate_translations();
  for (std::uint32_t rig = 0; rig < kMaxBatchRigs; ++rig) {
    (void)mmu.translate(1, 0, 0x1000, rig);
  }
  EXPECT_EQ(mmu.touches.size(), 2 * kMaxBatchRigs);
}

// Two machines sharing one Mmu with distinct set_mmu_rig lanes: each
// machine's translations carry its own rig index, so per-rig page maps
// in the implementation can never cross-serve. With identical programs,
// both rigs must generate the same first-touch set, each under its own
// rig id.
TEST(MmuRig, TwoMachinesSharingOneMmuStayIsolated) {
  isa::KernelSpec k;
  k.steps = 4;
  k.compute_cycles = 3;
  k.loads_per_step = 2;
  k.stores_per_step = 1;
  k.working_set_bytes = 16 * 1024;
  const isa::Program prog = isa::ProgramBuilder("mmu-rig")
                                .data_base(0x400000)
                                .serial(k, 2)
                                .build();

  SpyMmu mmu;
  Machine rig0(MachineConfig::fx8(), mmu);
  Machine rig1(MachineConfig::fx8(), mmu);
  rig0.set_mmu_rig(0);
  rig1.set_mmu_rig(1);
  rig0.cluster().load(&prog, 1);
  rig1.cluster().load(&prog, 1);

  while (rig0.cluster().busy() || rig1.cluster().busy()) {
    if (rig0.cluster().busy()) {
      rig0.tick();
    }
    if (rig1.cluster().busy()) {
      rig1.tick();
    }
  }

  std::vector<SpyMmu::Touch> from0;
  std::vector<SpyMmu::Touch> from1;
  for (const SpyMmu::Touch& t : mmu.touches) {
    (t.rig == 0 ? from0 : from1).push_back(t);
    EXPECT_LE(t.rig, 1u);
  }
  // Identical deterministic programs: the same touch stream per rig —
  // neither rig's stream was swallowed by the other's memo.
  ASSERT_FALSE(from0.empty());
  ASSERT_EQ(from0.size(), from1.size());
  for (std::size_t i = 0; i < from0.size(); ++i) {
    EXPECT_EQ(from0[i].job, from1[i].job);
    EXPECT_EQ(from0[i].ce, from1[i].ce);
    EXPECT_EQ(from0[i].addr, from1[i].addr);
  }
}

}  // namespace
}  // namespace repro::fx8
