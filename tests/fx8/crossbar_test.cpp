#include "fx8/crossbar.hpp"

#include <gtest/gtest.h>

#include "base/expect.hpp"

namespace repro::fx8 {
namespace {

TEST(Crossbar, OneGrantPerBankPerCycle) {
  Crossbar xbar(4);
  xbar.begin_cycle();
  EXPECT_TRUE(xbar.try_acquire(0));
  EXPECT_FALSE(xbar.try_acquire(0));
  EXPECT_TRUE(xbar.try_acquire(1));
  EXPECT_EQ(xbar.conflicts(), 1u);
}

TEST(Crossbar, BeginCycleResetsGrants) {
  Crossbar xbar(2);
  xbar.begin_cycle();
  EXPECT_TRUE(xbar.try_acquire(0));
  xbar.begin_cycle();
  EXPECT_TRUE(xbar.try_acquire(0));
  EXPECT_EQ(xbar.conflicts(), 0u);
}

TEST(Crossbar, AllBanksIndependent) {
  Crossbar xbar(4);
  xbar.begin_cycle();
  for (std::uint32_t b = 0; b < 4; ++b) {
    EXPECT_TRUE(xbar.try_acquire(b));
  }
}

TEST(Crossbar, RejectsBadBank) {
  Crossbar xbar(4);
  xbar.begin_cycle();
  EXPECT_THROW((void)xbar.try_acquire(4), ContractViolation);
}

TEST(Crossbar, RejectsZeroBanks) {
  EXPECT_THROW(Crossbar{0}, ContractViolation);
}

}  // namespace
}  // namespace repro::fx8
