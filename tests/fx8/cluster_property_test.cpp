// Property tests: cluster execution invariants under randomized programs.
//
// Uses the marker tracer as the oracle: every dispatched iteration
// completes exactly once, phases are properly nested, and the active
// mask never exceeds what the CCB could justify.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "base/rng.hpp"
#include "fx8/machine.hpp"
#include "fx8/mmu.hpp"
#include "isa/program.hpp"
#include "trace/tracer.hpp"
#include "workload/jobs.hpp"
#include "workload/kernels.hpp"

namespace repro::fx8 {
namespace {

class ClusterProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusterProperty, RandomJobsExecuteEveryIterationExactlyOnce) {
  Rng rng(GetParam());
  NoFaultMmu mmu;
  Machine machine(MachineConfig::fx8(), mmu);
  trace::EventTracer tracer;
  machine.cluster().set_observer(&tracer);

  workload::NumericJobParams params;
  for (JobId job = 1; job <= 5; ++job) {
    const os::Job spec = workload::make_numeric_job(job, rng, params, 0);
    const std::uint64_t expected =
        spec.program.total_concurrent_iterations();
    tracer.clear();
    machine.cluster().load(&spec.program, job);
    Cycle guard = 0;
    while (machine.cluster().busy()) {
      machine.tick();
      ASSERT_LT(++guard, 5'000'000u) << "job hung";
    }

    // Count per (phase, iteration) starts and ends.
    std::map<std::pair<std::uint32_t, std::uint64_t>, int> starts;
    std::map<std::pair<std::uint32_t, std::uint64_t>, int> ends;
    std::uint64_t total_ends = 0;
    for (const trace::TraceEvent& event : tracer.events()) {
      if (event.kind == trace::EventKind::kIterationStart) {
        ++starts[{event.phase, event.arg}];
      } else if (event.kind == trace::EventKind::kIterationEnd) {
        ++ends[{event.phase, event.arg}];
        ++total_ends;
      }
    }
    EXPECT_EQ(total_ends, expected) << "iteration count mismatch";
    for (const auto& [key, count] : starts) {
      EXPECT_EQ(count, 1) << "iteration started twice";
      EXPECT_EQ(ends[key], 1) << "iteration did not end exactly once";
    }
  }
}

TEST_P(ClusterProperty, ActiveMaskStaysWithinClusterWidth) {
  Rng rng(GetParam() ^ 0xACE);
  NoFaultMmu mmu;
  MachineConfig config = MachineConfig::fx8();
  const std::uint32_t width =
      2 + static_cast<std::uint32_t>(rng.uniform(7));
  config.cluster.n_ces = width;
  config.cluster.policy = ServicePolicy::kAscending;
  Machine machine(config, mmu);

  workload::NumericJobParams params;
  params.trip_law.width = width;
  const os::Job spec = workload::make_numeric_job(1, rng, params, 0);
  machine.cluster().load(&spec.program, 1);
  Cycle guard = 0;
  while (machine.cluster().busy()) {
    machine.tick();
    const LaneMask mask = machine.active_mask();
    EXPECT_EQ(mask >> width, 0u) << "active bit beyond cluster width";
    EXPECT_LE(machine.cluster().active_count(), width);
    ASSERT_LT(++guard, 5'000'000u);
  }
  EXPECT_EQ(machine.active_mask(), 0u);
}

TEST_P(ClusterProperty, PhasesAreProperlyNested) {
  Rng rng(GetParam() ^ 0xBED);
  NoFaultMmu mmu;
  Machine machine(MachineConfig::fx8(), mmu);
  trace::EventTracer tracer;
  machine.cluster().set_observer(&tracer);

  workload::NumericJobParams params;
  const os::Job spec = workload::make_numeric_job(2, rng, params, 0);
  machine.cluster().load(&spec.program, 2);
  while (machine.cluster().busy()) {
    machine.tick();
  }

  int depth = 0;       // inside job
  int phase_depth = 0; // inside a phase
  for (const trace::TraceEvent& event : tracer.events()) {
    switch (event.kind) {
      case trace::EventKind::kJobStart:
        EXPECT_EQ(depth, 0);
        ++depth;
        break;
      case trace::EventKind::kJobEnd:
        EXPECT_EQ(phase_depth, 0);
        --depth;
        break;
      case trace::EventKind::kSerialPhaseStart:
      case trace::EventKind::kLoopStart:
        EXPECT_EQ(depth, 1);
        EXPECT_EQ(phase_depth, 0);
        ++phase_depth;
        break;
      case trace::EventKind::kSerialPhaseEnd:
      case trace::EventKind::kLoopEnd:
        --phase_depth;
        EXPECT_EQ(phase_depth, 0);
        break;
      default:
        EXPECT_EQ(depth, 1);
        break;
    }
  }
  EXPECT_EQ(depth, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterProperty,
                         ::testing::Values(11, 42, 1987, 0xC0FFEE));

}  // namespace
}  // namespace repro::fx8
