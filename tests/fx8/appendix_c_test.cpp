// Conformance tests against the machine description of Appendix C.
//
// The default configuration must be the documented FX/8: the point of a
// reproduction is that these numbers are the paper's, not ours.
#include <gtest/gtest.h>

#include "fx8/machine.hpp"
#include "os/vm.hpp"

namespace repro::fx8 {
namespace {

TEST(AppendixC, ClusterIsEightCes) {
  EXPECT_EQ(MachineConfig::fx8().cluster.n_ces, 8u);
}

TEST(AppendixC, SharedCacheIs128KInterleavedFourWaysInTwoModules) {
  const auto config = MachineConfig::fx8().shared_cache;
  EXPECT_EQ(config.total_bytes, 128u * 1024);
  EXPECT_EQ(config.banks, 4u);    // "four-way interleaved cache memory"
  EXPECT_EQ(config.modules, 2u);  // "divided into two CPCs"
}

TEST(AppendixC, EachCeHasA16KInstructionCache) {
  EXPECT_EQ(MachineConfig::fx8().cluster.icache_bytes, 16u * 1024);
}

TEST(AppendixC, TwoMemoryBuses) {
  // "Traffic between caches and main memory is over two 64-bit wide
  // data busses".
  EXPECT_EQ(MachineConfig::fx8().membus.bus_count, 2u);
}

TEST(AppendixC, MainMemoryIsFourWayInterleavedUpTo64M) {
  const auto config = MachineConfig::fx8().memory;
  EXPECT_EQ(config.interleave, 4u);
  EXPECT_EQ(config.capacity_bytes, 64ull * 1024 * 1024);
}

TEST(AppendixC, IpCacheIs32K) {
  EXPECT_EQ(cache::IpCacheConfig{}.capacity_bytes, 32u * 1024);
}

TEST(AppendixC, VirtualAddressSpaceIs1024SegmentsOf1024FourKPages) {
  const os::VmConfig config;
  EXPECT_EQ(config.segments, 1024u);
  EXPECT_EQ(config.pages_per_segment, 1024u);
  EXPECT_EQ(kPageBytes, 4096u);
}

TEST(AppendixC, Fx1IsTheEntryConfiguration) {
  const MachineConfig config = MachineConfig::fx1();
  EXPECT_EQ(config.cluster.n_ces, 1u);
  EXPECT_EQ(config.n_ips, 1u);
}

}  // namespace
}  // namespace repro::fx8
