#include "fx8/ce.hpp"

#include <gtest/gtest.h>

#include <set>

#include "base/expect.hpp"
#include "mem/main_memory.hpp"
#include "mem/memory_bus.hpp"

namespace repro::fx8 {
namespace {

/// MMU that faults once per page with a fixed service time.
class CountingMmu final : public Mmu {
 public:
  explicit CountingMmu(Cycle fault_cycles) : fault_cycles_(fault_cycles) {}

  Cycle touch(JobId, CeId, Addr addr, std::uint32_t) override {
    const Addr page = addr / kPageBytes;
    if (mapped_.insert(page).second) {
      ++faults_;
      return fault_cycles_;
    }
    return 0;
  }

  [[nodiscard]] std::uint64_t faults() const { return faults_; }

 private:
  Cycle fault_cycles_;
  std::set<Addr> mapped_;
  std::uint64_t faults_ = 0;
};

class CeTest : public ::testing::Test {
 protected:
  CeTest()
      : memory_(mem::MainMemoryConfig{}),
        bus_(mem::MemoryBusConfig{}, memory_),
        cache_(cache::SharedCacheConfig{}, bus_),
        xbar_(cache_.config().banks) {}

  /// Drive the CE (with bus + cache) until done; returns cycles used.
  Cycle run_to_done(Ce& ce, Cycle limit = 1'000'000) {
    Cycle used = 0;
    while (!ce.done()) {
      xbar_.begin_cycle();
      ce.tick();
      bus_.tick(now_);
      cache_.tick();
      ++now_;
      ++used;
      REPRO_EXPECT(used < limit, "CE did not finish in limit");
    }
    return used;
  }

  KernelInstance make_instance(const isa::KernelSpec* spec) {
    KernelInstance inst;
    inst.spec = spec;
    inst.job = 1;
    inst.key = 0x1234;
    inst.data_base = 0x10000;
    inst.code_base = 0x8000000;
    return inst;
  }

  mem::MainMemory memory_;
  mem::MemoryBus bus_;
  cache::SharedCache cache_;
  Crossbar xbar_;
  NoFaultMmu no_fault_;
  Cycle now_ = 0;
};

TEST_F(CeTest, IdleCeProducesIdleBus) {
  Ce ce(0, cache_, xbar_, no_fault_);
  xbar_.begin_cycle();
  ce.tick();
  EXPECT_TRUE(ce.idle());
  EXPECT_EQ(ce.bus_op(), mem::CeBusOp::kIdle);
  EXPECT_EQ(ce.stats().busy_cycles, 0u);
}

TEST_F(CeTest, PureComputeRunsWithoutBusTraffic) {
  isa::KernelSpec k;
  k.steps = 5;
  k.compute_cycles = 10;
  k.loads_per_step = 0;
  k.stores_per_step = 1;  // must do some memory or validate() complains?
  // Actually make it pure compute with a single store-free variant:
  k.stores_per_step = 0;
  k.loads_per_step = 1;
  Ce ce(0, cache_, xbar_, no_fault_);
  ce.start(make_instance(&k));
  (void)run_to_done(ce);
  EXPECT_EQ(ce.stats().compute_cycles, 50u);
  EXPECT_EQ(ce.stats().mem_accesses, 5u);
  EXPECT_EQ(ce.stats().instances_completed, 1u);
}

TEST_F(CeTest, StartWhileLoadedIsContractViolation) {
  isa::KernelSpec k;
  k.steps = 100;
  k.compute_cycles = 4;
  Ce ce(0, cache_, xbar_, no_fault_);
  ce.start(make_instance(&k));
  EXPECT_THROW(ce.start(make_instance(&k)), ContractViolation);
}

TEST_F(CeTest, TakeCompletedRequiresDone) {
  Ce ce(0, cache_, xbar_, no_fault_);
  EXPECT_THROW(ce.take_completed(), ContractViolation);
}

TEST_F(CeTest, CompletesAndBecomesReusable) {
  isa::KernelSpec k;
  k.steps = 2;
  k.compute_cycles = 1;
  k.loads_per_step = 1;
  Ce ce(0, cache_, xbar_, no_fault_);
  ce.start(make_instance(&k));
  (void)run_to_done(ce);
  ce.take_completed();
  EXPECT_TRUE(ce.idle());
  ce.start(make_instance(&k));
  (void)run_to_done(ce);
  EXPECT_EQ(ce.stats().instances_completed, 2u);
}

TEST_F(CeTest, StreamingLoadsMissOncePerLine) {
  // 8-byte strides over cold memory: one miss per 32-byte line, i.e. a
  // quarter of accesses miss.
  isa::KernelSpec k;
  k.steps = 64;
  k.compute_cycles = 1;
  k.loads_per_step = 1;
  k.stride_bytes = 8;
  k.working_set_bytes = 64 * 64;  // no wrap within the run
  Ce ce(0, cache_, xbar_, no_fault_);
  ce.start(make_instance(&k));
  (void)run_to_done(ce);
  EXPECT_EQ(ce.stats().mem_accesses, 64u);
  EXPECT_EQ(cache_.stats().misses, 16u);
}

TEST_F(CeTest, RmwStoresHitAfterLoad) {
  isa::KernelSpec k;
  k.steps = 16;
  k.compute_cycles = 1;
  k.loads_per_step = 1;
  k.stores_per_step = 1;
  Ce ce(0, cache_, xbar_, no_fault_);
  ce.start(make_instance(&k));
  (void)run_to_done(ce);
  EXPECT_EQ(ce.stats().mem_accesses, 32u);
  // Stores revisit the loaded line: misses only from the load stream.
  EXPECT_LE(cache_.stats().misses, 16u);
}

TEST_F(CeTest, MissStallsShowWaitCycles) {
  isa::KernelSpec k;
  k.steps = 8;
  k.compute_cycles = 1;
  k.loads_per_step = 1;
  k.stride_bytes = 64;  // every load a new line: all miss
  k.working_set_bytes = 64 * 1024;
  Ce ce(0, cache_, xbar_, no_fault_);
  ce.start(make_instance(&k));
  (void)run_to_done(ce);
  EXPECT_GT(ce.stats().miss_wait_cycles, 0u);
}

TEST_F(CeTest, PageFaultStallsAndRetries) {
  CountingMmu mmu(50);
  isa::KernelSpec k;
  k.steps = 4;
  k.compute_cycles = 1;
  k.loads_per_step = 1;
  k.stride_bytes = 8;
  Ce ce(0, cache_, xbar_, mmu);
  ce.start(make_instance(&k));
  const Cycle used = run_to_done(ce);
  EXPECT_EQ(mmu.faults(), 1u);  // all four loads in one page
  EXPECT_GE(ce.stats().fault_wait_cycles, 50u);
  EXPECT_GT(used, 50u);
  EXPECT_EQ(ce.stats().instances_completed, 1u);
}

TEST_F(CeTest, ExtraStepsLengthenInstance) {
  isa::KernelSpec k;
  k.steps = 4;
  k.compute_cycles = 10;
  k.loads_per_step = 0;
  k.stores_per_step = 0;
  k.compute_cycles = 10;  // pure compute
  Ce short_ce(0, cache_, xbar_, no_fault_);
  KernelInstance inst = make_instance(&k);
  short_ce.start(inst);
  const Cycle short_cycles = run_to_done(short_ce);

  Ce long_ce(1, cache_, xbar_, no_fault_);
  inst.extra_steps = 4;
  long_ce.start(inst);
  const Cycle long_cycles = run_to_done(long_ce);
  EXPECT_GT(long_cycles, short_cycles);
  EXPECT_NEAR(static_cast<double>(long_cycles),
              2.0 * static_cast<double>(short_cycles), 6.0);
}

TEST_F(CeTest, ComputeJitterIsDeterministicPerKey) {
  isa::KernelSpec k;
  k.steps = 32;
  k.compute_cycles = 8;
  k.compute_jitter = 4;
  k.loads_per_step = 0;
  k.stores_per_step = 0;
  Ce a(0, cache_, xbar_, no_fault_);
  Ce b(1, cache_, xbar_, no_fault_);
  a.start(make_instance(&k));
  const Cycle ca = run_to_done(a);
  b.start(make_instance(&k));
  const Cycle cb = run_to_done(b);
  EXPECT_EQ(ca, cb);  // same instance key -> same jitter draw
}

TEST_F(CeTest, OversizedCodeGeneratesInstructionFetches) {
  isa::KernelSpec k;
  k.steps = 64;
  k.compute_cycles = 2;
  k.loads_per_step = 0;
  k.stores_per_step = 0;
  k.compute_cycles = 2;
  k.code_bytes = 64 * 1024;  // 4x the icache
  Ce ce(0, cache_, xbar_, no_fault_);
  ce.start(make_instance(&k));
  (void)run_to_done(ce);
  EXPECT_GT(ce.stats().mem_accesses, 0u);  // ifetches went to shared cache
}

TEST_F(CeTest, FittingCodeGeneratesNoInstructionFetches) {
  isa::KernelSpec k;
  k.steps = 64;
  k.compute_cycles = 2;
  k.loads_per_step = 0;
  k.stores_per_step = 0;
  k.code_bytes = 8 * 1024;
  Ce ce(0, cache_, xbar_, no_fault_);
  ce.start(make_instance(&k));
  (void)run_to_done(ce);
  EXPECT_EQ(ce.stats().mem_accesses, 0u);
}

TEST_F(CeTest, HotColdPatternHasFewerMissesThanStreaming) {
  isa::KernelSpec hot;
  hot.steps = 256;
  hot.compute_cycles = 1;
  hot.loads_per_step = 1;
  hot.pattern = isa::AccessPattern::kHotCold;
  hot.hot_fraction = 0.95;
  hot.hot_set_bytes = 1024;
  hot.working_set_bytes = 256 * 1024;
  hot.stride_bytes = 32;

  isa::KernelSpec stream = hot;
  stream.pattern = isa::AccessPattern::kStreaming;

  Ce a(0, cache_, xbar_, no_fault_);
  a.start(make_instance(&hot));
  (void)run_to_done(a);
  const std::uint64_t hot_misses = cache_.stats().misses;

  Ce b(1, cache_, xbar_, no_fault_);
  KernelInstance inst = make_instance(&stream);
  inst.data_base = 0x4000000;  // fresh region
  b.start(inst);
  (void)run_to_done(b);
  const std::uint64_t stream_misses = cache_.stats().misses - hot_misses;

  EXPECT_LT(hot_misses, stream_misses / 2);
}

}  // namespace
}  // namespace repro::fx8
