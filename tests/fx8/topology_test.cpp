// Topology scale-out tests: parameterized N-CE, multi-cluster machines.
//
// The TopologyConfig validation matrix, multi-cluster machine
// construction (global CE ids, fabric wiring, scheduler slots), the
// second-level bank fabric's arbitration, and capsule round-trips at
// every preset width. The FX/8 default must stay structurally identical
// to the pre-topology machine: one cluster, no fabric.
#include "fx8/topology.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "base/expect.hpp"
#include "fx8/fabric.hpp"
#include "fx8/machine.hpp"
#include "os/system.hpp"
#include "workload/kernels.hpp"

namespace repro::fx8 {
namespace {

/// A concurrent DO loop over the shared triad kernel: enough iterations
/// to light up every CE of whichever cluster runs it.
isa::Program loop_program(const char* name, std::uint64_t trips) {
  workload::KernelTuning tuning;
  isa::ConcurrentLoopPhase loop;
  loop.trip_count = trips;
  loop.body = workload::triad_body(tuning);
  return isa::ProgramBuilder(name)
      .data_base(0x01000000)
      .concurrent_loop(loop)
      .build();
}

// --- TopologyConfig validation matrix ---------------------------------

TEST(TopologyConfig, DefaultInheritsTheLegacyWidth) {
  const TopologyConfig inherit;
  EXPECT_TRUE(topology_valid(inherit, kMaxCes));
  const ResolvedTopology resolved = resolve_topology(inherit, kMaxCes);
  EXPECT_EQ(resolved.n_clusters, 1u);
  EXPECT_EQ(resolved.ces_per_cluster, kMaxCes);
  EXPECT_EQ(resolved.total_ces, kMaxCes);

  const ResolvedTopology narrow = resolve_topology(inherit, 4);
  EXPECT_EQ(narrow.ces_per_cluster, 4u);
  EXPECT_EQ(narrow.total_ces, 4u);
}

TEST(TopologyConfig, ValidationMatrix) {
  const auto valid = [](std::uint32_t ces, std::uint32_t clusters) {
    TopologyConfig t;
    t.n_ces = ces;
    t.n_clusters = clusters;
    return topology_valid(t, kMaxCes);
  };
  // Every preset shape and the single-cluster widths.
  EXPECT_TRUE(valid(0, 1));    // inherit
  EXPECT_TRUE(valid(8, 1));    // FX/8
  EXPECT_TRUE(valid(4, 1));    // narrow cluster
  EXPECT_TRUE(valid(16, 2));   // fx16
  EXPECT_TRUE(valid(32, 4));   // fx32
  EXPECT_TRUE(valid(64, 8));   // fx64
  EXPECT_TRUE(valid(12, 4));   // 3 CEs per cluster
  // Shapes the lane kernel cannot chunk or the grant words cannot hold.
  EXPECT_FALSE(valid(16, 1));  // 16 CEs in one cluster: chunk is 8
  EXPECT_FALSE(valid(12, 5));  // not evenly divided
  EXPECT_FALSE(valid(0, 0));   // zero clusters
  EXPECT_FALSE(valid(0, 9));   // too many clusters
  EXPECT_FALSE(valid(65, 8));  // over the 64-CE grant word
  EXPECT_FALSE(valid(72, 8));  // 9 CEs per cluster
}

TEST(TopologyConfig, ResolveRejectsInvalidShapes) {
  TopologyConfig bad;
  bad.n_ces = 16;
  bad.n_clusters = 1;
  EXPECT_THROW((void)resolve_topology(bad, kMaxCes), ContractViolation);
}

// --- Multi-cluster machine construction -------------------------------

TEST(TopologyMachine, Fx8DefaultHasOneClusterAndNoFabric) {
  NoFaultMmu mmu;
  Machine machine(MachineConfig::fx8(), mmu);
  EXPECT_EQ(machine.n_clusters(), 1u);
  EXPECT_EQ(machine.total_ces(), kMaxCes);
  EXPECT_EQ(machine.fabric(), nullptr);
  EXPECT_EQ(machine.cluster().ce_base(), 0u);
}

TEST(TopologyMachine, PresetsBuildTheAdvertisedShapes) {
  struct Shape {
    MachineConfig config;
    std::uint32_t clusters;
    std::uint32_t total;
  };
  const std::vector<Shape> shapes = {
      {MachineConfig::fx16(), 2, 16},
      {MachineConfig::fx32(), 4, 32},
      {MachineConfig::fx64(), 8, 64},
  };
  for (const Shape& shape : shapes) {
    NoFaultMmu mmu;
    Machine machine(shape.config, mmu);
    EXPECT_EQ(machine.n_clusters(), shape.clusters);
    EXPECT_EQ(machine.total_ces(), shape.total);
    ASSERT_NE(machine.fabric(), nullptr);
    // Clusters own disjoint global CE id ranges, 8 wide each.
    for (std::uint32_t k = 0; k < shape.clusters; ++k) {
      EXPECT_EQ(machine.cluster(k).ce_base(), k * kMaxCes);
      EXPECT_EQ(machine.cluster(k).width(), kMaxCes);
    }
    // The MMU grew to the machine width.
    EXPECT_EQ(mmu.lanes(), shape.total);
  }
}

TEST(TopologyMachine, WideMachineRunsJobsOnEveryCluster) {
  const isa::Program prog = loop_program("wide", kMaxCes * 3);
  NoFaultMmu mmu;
  Machine machine(MachineConfig::fx16(), mmu);
  machine.cluster(0).load(&prog, 1);
  machine.cluster(1).load(&prog, 2);
  Cycle used = 0;
  while (machine.cluster(0).busy() || machine.cluster(1).busy()) {
    machine.tick();
    ASSERT_LT(++used, 1'000'000u);
  }
  // Both clusters executed iterations and the mask spans both id ranges.
  EXPECT_GT(machine.cluster(0).stats().iterations_completed, 0u);
  EXPECT_GT(machine.cluster(1).stats().iterations_completed, 0u);
}

TEST(TopologyMachine, ActiveMaskUsesGlobalCeIds) {
  const isa::Program prog = loop_program("mask", kMaxCes * 4);
  NoFaultMmu mmu;
  Machine machine(MachineConfig::fx16(), mmu);
  machine.cluster(1).load(&prog, 7);
  LaneMask seen = 0;
  Cycle used = 0;
  while (machine.cluster(1).busy()) {
    machine.tick();
    seen |= machine.active_mask();
    ASSERT_LT(++used, 1'000'000u);
  }
  // Only cluster 1 ran, so activity sits in bits 8..15 exclusively.
  EXPECT_NE(seen, 0u);
  EXPECT_EQ(seen & 0xffu, 0u);
  EXPECT_EQ(seen >> 16, 0u);
}

// --- The second-level bank fabric -------------------------------------

TEST(TopologyFabric, GrantsEachBankOncePerCycle) {
  ClusterFabric fabric(16);
  EXPECT_TRUE(fabric.try_acquire(3));
  EXPECT_FALSE(fabric.try_acquire(3));  // same cycle: rejected
  EXPECT_TRUE(fabric.try_acquire(4));   // other banks unaffected
  EXPECT_EQ(fabric.conflicts(), 1u);
  fabric.begin_cycle();
  EXPECT_TRUE(fabric.try_acquire(3));  // new cycle: granted again
  EXPECT_EQ(fabric.conflicts(), 1u);
}

TEST(TopologyFabric, WideMachinesRecordCrossClusterConflicts) {
  // Two clusters hammering the same banks must trip the second-level
  // arbitration at least once.
  const isa::Program prog = loop_program("contend", kMaxCes * 16);
  NoFaultMmu mmu;
  Machine machine(MachineConfig::fx16(), mmu);
  machine.cluster(0).load(&prog, 1);
  machine.cluster(1).load(&prog, 2);
  Cycle used = 0;
  while (machine.cluster(0).busy() || machine.cluster(1).busy()) {
    machine.tick();
    ASSERT_LT(++used, 2'000'000u);
  }
  ASSERT_NE(machine.fabric(), nullptr);
  EXPECT_GT(machine.fabric()->conflicts(), 0u);
}

// --- Scheduler across clusters ----------------------------------------

TEST(TopologyScheduler, FillsEveryClusterFromOneQueue) {
  os::SystemConfig config;
  config.machine = MachineConfig::fx32();
  os::System system{config};
  for (std::uint64_t id = 1; id <= 8; ++id) {
    os::Job job;
    job.id = id;
    job.cls = os::JobClass::kCluster;
    job.program = loop_program("wide-job", kMaxCes * 2);
    system.scheduler().submit(std::move(job));
  }
  // After one scheduling tick every cluster has a job loaded.
  system.tick();
  std::uint32_t busy = 0;
  for (std::uint32_t k = 0; k < system.machine().n_clusters(); ++k) {
    busy += system.machine().cluster(k).busy() ? 1u : 0u;
  }
  EXPECT_EQ(busy, system.machine().n_clusters());
  Cycle used = 0;
  while (!system.scheduler().idle()) {
    system.tick();
    ASSERT_LT(++used, 4'000'000u);
  }
  EXPECT_EQ(system.scheduler().stats().jobs_completed, 8u);
}

// --- Capsules at every width ------------------------------------------

TEST(TopologyCapsule, SystemRoundTripsAtEveryPresetWidth) {
  const std::vector<MachineConfig> presets = {
      MachineConfig::fx8(), MachineConfig::fx16(), MachineConfig::fx32(),
      MachineConfig::fx64()};
  for (const MachineConfig& preset : presets) {
    os::SystemConfig config;
    config.machine = preset;
    os::System system{config};
    os::Job job;
    job.id = 1;
    job.cls = os::JobClass::kCluster;
    job.program = loop_program("capsule-job", kMaxCes * 8);
    system.scheduler().submit(std::move(job));
    for (Cycle c = 0; c < 5000; ++c) {
      system.tick();
    }
    const std::uint64_t before = system.state_digest();
    const auto sealed = system.save_capsule();
    os::System restored{config};
    restored.load_capsule(sealed);
    EXPECT_EQ(restored.state_digest(), before)
        << "width " << system.machine().total_ces();
    // And the restored system re-seals to the same bytes.
    EXPECT_EQ(restored.save_capsule(), sealed)
        << "width " << system.machine().total_ces();
  }
}

TEST(TopologyCapsule, FingerprintCoversTopologyFields) {
  os::SystemConfig base;
  const std::uint64_t key = os::config_fingerprint(base);
  os::SystemConfig ces = base;
  ces.machine.topology.n_ces = 16;
  os::SystemConfig clusters = base;
  clusters.machine.topology.n_clusters = 2;
  os::SystemConfig banks = base;
  banks.machine.topology.cache_banks = 32;
  os::SystemConfig buses = base;
  buses.machine.topology.mem_buses = 4;
  EXPECT_NE(os::config_fingerprint(ces), key);
  EXPECT_NE(os::config_fingerprint(clusters), key);
  EXPECT_NE(os::config_fingerprint(banks), key);
  EXPECT_NE(os::config_fingerprint(buses), key);
}

}  // namespace
}  // namespace repro::fx8
