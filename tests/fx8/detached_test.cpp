// Tests for detached-CE operation (the Figure-3 footnote).
#include <gtest/gtest.h>

#include "base/expect.hpp"
#include "fx8/machine.hpp"
#include "fx8/mmu.hpp"
#include "isa/program.hpp"
#include "os/system.hpp"
#include "workload/kernels.hpp"

namespace repro::fx8 {
namespace {

isa::Program serial_prog(Addr base) {
  workload::KernelTuning tuning;
  return isa::ProgramBuilder("detached-serial")
      .data_base(base)
      .serial(workload::editor_body(tuning), 2)
      .build();
}

isa::Program loop_prog(Addr base, std::uint64_t trip) {
  workload::KernelTuning tuning;
  isa::ConcurrentLoopPhase loop;
  loop.body = workload::triad_body(tuning);
  loop.trip_count = trip;
  return isa::ProgramBuilder("cluster-loop")
      .data_base(base)
      .concurrent_loop(loop)
      .build();
}

MachineConfig detached_config(std::uint32_t detached) {
  MachineConfig config = MachineConfig::fx8();
  config.cluster.detached_ces = detached;
  return config;
}

TEST(Detached, SlotsOwnTheHighestCes) {
  NoFaultMmu mmu;
  Machine machine(detached_config(2), mmu);
  EXPECT_EQ(machine.cluster().cluster_width(), 6u);
  EXPECT_EQ(machine.cluster().detached_count(), 2u);
  EXPECT_EQ(machine.cluster().detached_ce(0), 7u);
  EXPECT_EQ(machine.cluster().detached_ce(1), 6u);
}

TEST(Detached, SerialJobRunsToCompletionOnItsCe) {
  NoFaultMmu mmu;
  Machine machine(detached_config(1), mmu);
  const isa::Program prog = serial_prog(0x01000000);
  machine.cluster().load_detached(0, &prog, 5);
  EXPECT_TRUE(machine.cluster().detached_busy(0));
  Cycle guard = 0;
  while (machine.cluster().detached_busy(0)) {
    machine.tick();
    // The detached CE (7) shows active on the CCB probe.
    if (machine.cluster().detached_busy(0)) {
      EXPECT_TRUE(machine.active_mask() & (1u << 7));
    }
    ASSERT_LT(++guard, 1'000'000u);
  }
}

TEST(Detached, ClusterLoopsUseOnlyClusterCes) {
  NoFaultMmu mmu;
  Machine machine(detached_config(2), mmu);
  const isa::Program prog = loop_prog(0x01000000, 40);
  machine.cluster().load(&prog, 1);
  std::uint32_t max_active = 0;
  Cycle guard = 0;
  while (machine.cluster().busy()) {
    machine.tick();
    // CEs 6 and 7 never take loop work.
    EXPECT_EQ(machine.active_mask() & 0b11000000u, 0u);
    max_active = std::max(max_active, machine.cluster().active_count());
    ASSERT_LT(++guard, 2'000'000u);
  }
  EXPECT_EQ(max_active, 6u);
  EXPECT_EQ(machine.cluster().stats().iterations_completed, 40u);
}

TEST(Detached, ConcurrentAndDetachedWorkOverlap) {
  NoFaultMmu mmu;
  Machine machine(detached_config(1), mmu);
  const isa::Program loop = loop_prog(0x01000000, 60);
  const isa::Program serial = serial_prog(0x02000000);
  machine.cluster().load(&loop, 1);
  machine.cluster().load_detached(0, &serial, 2);
  bool saw_overlap = false;
  Cycle guard = 0;
  while (machine.cluster().busy() || machine.cluster().detached_busy(0)) {
    machine.tick();
    const LaneMask mask = machine.active_mask();
    // 8-active = 7 cluster CEs + the detached CE: the footnote's state.
    if ((mask & (1u << 7)) && std::popcount(mask) == 8) {
      saw_overlap = true;
    }
    ASSERT_LT(++guard, 2'000'000u);
  }
  EXPECT_TRUE(saw_overlap);
}

TEST(Detached, RejectsConcurrentPrograms) {
  NoFaultMmu mmu;
  Machine machine(detached_config(1), mmu);
  const isa::Program prog = loop_prog(0x01000000, 8);
  EXPECT_THROW(machine.cluster().load_detached(0, &prog, 1),
               ContractViolation);
}

TEST(Detached, RejectsDoubleLoadAndBadSlots) {
  NoFaultMmu mmu;
  Machine machine(detached_config(1), mmu);
  const isa::Program prog = serial_prog(0x01000000);
  machine.cluster().load_detached(0, &prog, 1);
  EXPECT_THROW(machine.cluster().load_detached(0, &prog, 2),
               ContractViolation);
  EXPECT_THROW((void)machine.cluster().detached_busy(1),
               ContractViolation);
}

TEST(Detached, AllCesDetachedIsRejected) {
  NoFaultMmu mmu;
  EXPECT_THROW((Machine{detached_config(8), mmu}), ContractViolation);
}

TEST(Detached, SchedulerRoutesSerialJobsToDetachedCes) {
  os::SystemConfig config;
  config.machine.cluster.detached_ces = 2;
  os::System system{config};

  os::Job cluster_job;
  cluster_job.id = 1;
  cluster_job.cls = os::JobClass::kCluster;
  cluster_job.program = loop_prog(0x01000000, 80);
  os::Job serial_job;
  serial_job.id = 2;
  serial_job.cls = os::JobClass::kSerialDetached;
  serial_job.program = serial_prog(0x02000000);

  system.scheduler().submit(std::move(cluster_job));
  system.scheduler().submit(std::move(serial_job));
  system.tick();
  // Both started immediately: the serial job is NOT behind the cluster
  // job in a shared queue any more.
  EXPECT_TRUE(system.scheduler().job_running());
  EXPECT_TRUE(system.machine().cluster().detached_busy(0));

  Cycle guard = 0;
  while (!system.scheduler().idle()) {
    system.tick();
    ASSERT_LT(++guard, 2'000'000u);
  }
  EXPECT_EQ(system.scheduler().stats().jobs_completed, 2u);
  EXPECT_EQ(system.scheduler().stats().serial_jobs_completed, 1u);
}

}  // namespace
}  // namespace repro::fx8
