#include "fx8/ip.hpp"

#include <gtest/gtest.h>

#include "base/expect.hpp"
#include "mem/main_memory.hpp"
#include "mem/memory_bus.hpp"

namespace repro::fx8 {
namespace {

class IpTest : public ::testing::Test {
 protected:
  IpTest()
      : memory_(mem::MainMemoryConfig{}),
        bus_(mem::MemoryBusConfig{}, memory_),
        cache_(cache::IpCacheConfig{}, bus_) {}

  mem::MainMemory memory_;
  mem::MemoryBus bus_;
  cache::IpCache cache_;
};

TEST_F(IpTest, GeneratesTrafficAtRoughlyDutyRate) {
  IpConfig config;
  config.duty = 0.5;
  config.access_interval = 4;
  Ip ip(0, config, 0xE0000000, cache_, 42);
  constexpr Cycle kN = 400000;
  for (Cycle c = 0; c < kN; ++c) {
    ip.tick();
  }
  // Expected accesses ~ N * duty / interval = 50000.
  const double rate = static_cast<double>(ip.accesses_issued()) / kN;
  EXPECT_NEAR(rate, 0.5 / 4, 0.03);
}

TEST_F(IpTest, ZeroDutyIsSilent) {
  IpConfig config;
  config.duty = 0.0;
  Ip ip(0, config, 0xE0000000, cache_, 42);
  for (Cycle c = 0; c < 100000; ++c) {
    ip.tick();
  }
  EXPECT_EQ(ip.accesses_issued(), 0u);
}

TEST_F(IpTest, FullDutyIsContinuous) {
  IpConfig config;
  config.duty = 1.0;
  config.access_interval = 2;
  Ip ip(0, config, 0xE0000000, cache_, 42);
  for (Cycle c = 0; c < 10000; ++c) {
    ip.tick();
  }
  EXPECT_NEAR(static_cast<double>(ip.accesses_issued()), 5000.0, 100.0);
}

TEST_F(IpTest, MostTrafficAbsorbedByIpCache) {
  IpConfig config;
  config.duty = 1.0;
  config.access_interval = 2;
  config.jump_prob = 0.05;
  Ip ip(0, config, 0xE0000000, cache_, 7);
  for (Cycle c = 0; c < 100000; ++c) {
    ip.tick();
  }
  const auto& stats = cache_.stats();
  ASSERT_GT(stats.accesses, 0u);
  const double miss_rate =
      static_cast<double>(stats.misses) / static_cast<double>(stats.accesses);
  EXPECT_LT(miss_rate, 0.5);  // streaming 8B steps: ~1/4 line-miss ceiling
}

TEST_F(IpTest, DeterministicForSeed) {
  IpConfig config;
  Ip a(0, config, 0xE0000000, cache_, 99);
  Ip b(1, config, 0xE0000000, cache_, 99);
  for (Cycle c = 0; c < 50000; ++c) {
    a.tick();
    b.tick();
  }
  EXPECT_EQ(a.accesses_issued(), b.accesses_issued());
}

TEST_F(IpTest, RejectsBadConfig) {
  IpConfig bad_duty;
  bad_duty.duty = 1.5;
  EXPECT_THROW((Ip{0, bad_duty, 0, cache_, 1}), ContractViolation);

  IpConfig bad_interval;
  bad_interval.access_interval = 0;
  EXPECT_THROW((Ip{0, bad_interval, 0, cache_, 1}), ContractViolation);
}

}  // namespace
}  // namespace repro::fx8
