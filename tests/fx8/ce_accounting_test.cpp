// Accounting tests: the CE's per-cycle bookkeeping that the derived
// system measures rest on.
#include <gtest/gtest.h>

#include "fx8/machine.hpp"
#include "fx8/mmu.hpp"
#include "isa/program.hpp"
#include "workload/kernels.hpp"

namespace repro::fx8 {
namespace {

isa::Program one_loop(const isa::KernelSpec& body, std::uint64_t trip) {
  isa::ConcurrentLoopPhase loop;
  loop.body = body;
  loop.trip_count = trip;
  return isa::ProgramBuilder("acct")
      .data_base(0x01000000)
      .concurrent_loop(loop)
      .build();
}

TEST(CeAccounting, CrossbarConflictsAppearUnderGangContention) {
  // The element-interleaved gang hammers the same banks: conflict waits
  // must be visible in both the crossbar and per-CE stats.
  NoFaultMmu mmu;
  MachineConfig config = MachineConfig::fx8();
  config.ip.duty = 0.0;
  Machine machine(config, mmu);
  workload::KernelTuning tuning;
  const isa::Program program =
      one_loop(workload::jacobi_row_body(tuning), 64);
  machine.cluster().load(&program, 1);
  while (machine.cluster().busy()) {
    machine.tick();
  }
  EXPECT_GT(machine.cluster().crossbar().conflicts(), 0u);
  std::uint64_t ce_wait = 0;
  for (CeId c = 0; c < 8; ++c) {
    ce_wait += machine.cluster().ce(c).stats().xbar_conflict_cycles;
  }
  EXPECT_EQ(ce_wait, machine.cluster().crossbar().conflicts());
}

TEST(CeAccounting, SingleCeSeesNoCrossbarConflicts) {
  NoFaultMmu mmu;
  MachineConfig config = MachineConfig::fx8();
  config.cluster.n_ces = 1;
  config.cluster.policy = ServicePolicy::kAscending;
  config.ip.duty = 0.0;
  Machine machine(config, mmu);
  workload::KernelTuning tuning;
  const isa::Program program =
      one_loop(workload::triad_body(tuning), 16);
  machine.cluster().load(&program, 1);
  while (machine.cluster().busy()) {
    machine.tick();
  }
  EXPECT_EQ(machine.cluster().crossbar().conflicts(), 0u);
}

TEST(CeAccounting, BusyCyclesBoundOtherCounters) {
  NoFaultMmu mmu;
  Machine machine(MachineConfig::fx8(), mmu);
  workload::KernelTuning tuning;
  const isa::Program program =
      one_loop(workload::matmul_row_body(tuning), 40);
  machine.cluster().load(&program, 1);
  while (machine.cluster().busy()) {
    machine.tick();
  }
  for (CeId c = 0; c < 8; ++c) {
    const CeStats& stats = machine.cluster().ce(c).stats();
    EXPECT_LE(stats.compute_cycles + stats.miss_wait_cycles +
                  stats.fault_wait_cycles + stats.xbar_conflict_cycles,
              stats.busy_cycles)
        << "CE" << c << " cycle taxonomy exceeds busy time";
    EXPECT_GT(stats.instances_completed, 0u);
  }
}

TEST(CeAccounting, IcacheSpillsShowAsInstructionTraffic) {
  NoFaultMmu mmu;
  MachineConfig config = MachineConfig::fx8();
  config.ip.duty = 0.0;
  Machine machine(config, mmu);
  workload::KernelTuning tuning;
  isa::KernelSpec big_code = workload::triad_body(tuning);
  big_code.code_bytes = 64 * 1024;  // 4x the icache
  const isa::Program program = one_loop(big_code, 32);
  machine.cluster().load(&program, 1);
  std::uint64_t ifetch_cycles = 0;
  while (machine.cluster().busy()) {
    machine.tick();
    for (CeId c = 0; c < 8; ++c) {
      ifetch_cycles +=
          machine.ce_bus_op(c) == mem::CeBusOp::kInstrFetch ? 1u : 0u;
    }
  }
  EXPECT_GT(ifetch_cycles, 0u);
}

}  // namespace
}  // namespace repro::fx8
