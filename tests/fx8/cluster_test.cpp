#include "fx8/cluster.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <map>

#include "base/expect.hpp"
#include "mem/main_memory.hpp"
#include "mem/memory_bus.hpp"

namespace repro::fx8 {
namespace {

isa::KernelSpec tiny_kernel() {
  isa::KernelSpec k;
  k.steps = 4;
  k.compute_cycles = 3;
  k.loads_per_step = 1;
  k.working_set_bytes = 16 * 1024;
  return k;
}

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest()
      : memory_(mem::MainMemoryConfig{}),
        bus_(mem::MemoryBusConfig{}, memory_),
        cache_(cache::SharedCacheConfig{}, bus_),
        cluster_(ClusterConfig{}, cache_, mmu_) {}

  /// Advance machine-style: cluster, then bus, then cache.
  void step() {
    cluster_.tick();
    bus_.tick(now_);
    cache_.tick();
    ++now_;
  }

  Cycle run_job(const isa::Program& prog, Cycle limit = 2'000'000) {
    cluster_.load(&prog, 1);
    Cycle used = 0;
    while (cluster_.busy()) {
      step();
      ++used;
      REPRO_EXPECT(used < limit, "job did not finish in limit");
    }
    return used;
  }

  mem::MainMemory memory_;
  mem::MemoryBus bus_;
  cache::SharedCache cache_;
  NoFaultMmu mmu_;
  Cluster cluster_;
  Cycle now_ = 0;
};

TEST_F(ClusterTest, IdleClusterHasNoActiveCes) {
  EXPECT_EQ(cluster_.active_mask(), 0u);
  EXPECT_EQ(cluster_.active_count(), 0u);
  step();
  EXPECT_EQ(cluster_.active_mask(), 0u);
}

TEST_F(ClusterTest, SerialJobUsesExactlyOneCe) {
  const isa::Program prog =
      isa::ProgramBuilder("serial").serial(tiny_kernel(), 5).build();
  cluster_.load(&prog, 1);
  while (cluster_.busy()) {
    step();
    if (cluster_.busy()) {
      EXPECT_EQ(cluster_.active_count(), 1u);
    }
  }
  EXPECT_EQ(cluster_.stats().serial_reps_completed, 5u);
  EXPECT_EQ(cluster_.stats().jobs_completed, 1u);
}

TEST_F(ClusterTest, ConcurrentLoopExecutesEveryIterationOnce) {
  isa::ConcurrentLoopPhase loop;
  loop.trip_count = 100;
  loop.body = tiny_kernel();
  const isa::Program prog =
      isa::ProgramBuilder("loop").concurrent_loop(loop).build();
  (void)run_job(prog);
  EXPECT_EQ(cluster_.stats().iterations_completed, 100u);
  EXPECT_EQ(cluster_.stats().loops_completed, 1u);
}

TEST_F(ClusterTest, ConcurrentLoopReachesFullWidth) {
  isa::ConcurrentLoopPhase loop;
  loop.trip_count = 200;
  loop.body = tiny_kernel();
  const isa::Program prog =
      isa::ProgramBuilder("loop").concurrent_loop(loop).build();
  cluster_.load(&prog, 1);
  std::uint32_t max_active = 0;
  while (cluster_.busy()) {
    step();
    max_active = std::max(max_active, cluster_.active_count());
  }
  EXPECT_EQ(max_active, 8u);
}

TEST_F(ClusterTest, LoopSpeedsUpOverSerialExecution) {
  // Same total work as loop iterations vs. serial reps. Compute-heavy so
  // the memory path is not the bottleneck.
  isa::KernelSpec heavy = tiny_kernel();
  heavy.compute_cycles = 20;
  isa::ConcurrentLoopPhase loop;
  loop.trip_count = 64;
  loop.body = heavy;
  const isa::Program par =
      isa::ProgramBuilder("par").concurrent_loop(loop).build();
  const Cycle t_par = run_job(par);

  const isa::Program ser =
      isa::ProgramBuilder("ser").serial(heavy, 64).build();
  const Cycle t_ser = run_job(ser);

  const double speedup =
      static_cast<double>(t_ser) / static_cast<double>(t_par);
  EXPECT_GT(speedup, 3.0);
  EXPECT_LE(speedup, 8.5);
}

TEST_F(ClusterTest, SerialAfterLoopContinuesOnLastFinisher) {
  isa::ConcurrentLoopPhase loop;
  loop.trip_count = 24;
  loop.body = tiny_kernel();
  const isa::Program prog = isa::ProgramBuilder("mix")
                                .serial(tiny_kernel(), 1)
                                .concurrent_loop(loop)
                                .serial(tiny_kernel(), 1)
                                .build();
  cluster_.load(&prog, 1);
  bool saw_loop = false;
  CeId continuation_during_tail = 0;
  std::uint32_t tail_active_mask = 0;
  while (cluster_.busy()) {
    step();
    if (cluster_.active_count() > 1) {
      saw_loop = true;
    }
    if (saw_loop && cluster_.busy() && cluster_.active_count() == 1) {
      continuation_during_tail = cluster_.continuation_ce();
      tail_active_mask = cluster_.active_mask();
    }
  }
  EXPECT_TRUE(saw_loop);
  // The tail serial phase ran on the recorded continuation CE.
  EXPECT_EQ(tail_active_mask, 1u << continuation_during_tail);
}

TEST_F(ClusterTest, ActiveMaskDrainsThroughTransition) {
  // With a trip count of 8 and noticeable jitter, the end of the loop must
  // pass through intermediate active counts rather than jumping 8 -> 0.
  isa::ConcurrentLoopPhase loop;
  loop.trip_count = 8 * 6 + 2;
  loop.body = tiny_kernel();
  loop.body.compute_jitter = 2;
  const isa::Program prog =
      isa::ProgramBuilder("drain").concurrent_loop(loop).build();
  cluster_.load(&prog, 1);
  std::map<std::uint32_t, int> active_histogram;
  while (cluster_.busy()) {
    step();
    ++active_histogram[cluster_.active_count()];
  }
  EXPECT_GT(active_histogram[8], 0);
  int intermediate = 0;
  for (std::uint32_t n = 2; n <= 7; ++n) {
    intermediate += active_histogram[n];
  }
  EXPECT_GT(intermediate, 0);
}

TEST_F(ClusterTest, DependenceSerializesIterations) {
  isa::ConcurrentLoopPhase free_loop;
  free_loop.trip_count = 64;
  free_loop.body = tiny_kernel();
  const isa::Program free_prog =
      isa::ProgramBuilder("free").concurrent_loop(free_loop).build();
  const Cycle t_free = run_job(free_prog);

  isa::ConcurrentLoopPhase dep_loop = free_loop;
  dep_loop.dependence_prob = 1.0;  // every iteration awaits its predecessor
  const isa::Program dep_prog =
      isa::ProgramBuilder("dep").concurrent_loop(dep_loop).build();
  const Cycle t_dep = run_job(dep_prog);

  EXPECT_GT(t_dep, 2 * t_free);
  EXPECT_GT(cluster_.stats().dependence_wait_cycles, 0u);
}

TEST_F(ClusterTest, LoadWhileBusyIsContractViolation) {
  const isa::Program prog =
      isa::ProgramBuilder("p").serial(tiny_kernel(), 100).build();
  cluster_.load(&prog, 1);
  EXPECT_THROW(cluster_.load(&prog, 2), ContractViolation);
}

TEST_F(ClusterTest, MultiPhaseJobRunsAllPhases) {
  isa::ConcurrentLoopPhase loop;
  loop.trip_count = 16;
  loop.body = tiny_kernel();
  const isa::Program prog = isa::ProgramBuilder("multi")
                                .serial(tiny_kernel(), 2)
                                .concurrent_loop(loop)
                                .serial(tiny_kernel(), 1)
                                .concurrent_loop(loop)
                                .build();
  (void)run_job(prog);
  EXPECT_EQ(cluster_.stats().loops_completed, 2u);
  EXPECT_EQ(cluster_.stats().serial_reps_completed, 3u);
  EXPECT_EQ(cluster_.stats().iterations_completed, 32u);
}

TEST_F(ClusterTest, RotatingPolicyStillCompletesLoops) {
  ClusterConfig config;
  config.policy = ServicePolicy::kRotating;
  Cluster rotating(config, cache_, mmu_);
  isa::ConcurrentLoopPhase loop;
  loop.trip_count = 50;
  loop.body = tiny_kernel();
  const isa::Program prog =
      isa::ProgramBuilder("rot").concurrent_loop(loop).build();
  rotating.load(&prog, 1);
  Cycle used = 0;
  while (rotating.busy()) {
    rotating.tick();
    bus_.tick(now_);
    cache_.tick();
    ++now_;
    ASSERT_LT(++used, 1'000'000u);
  }
  EXPECT_EQ(rotating.stats().iterations_completed, 50u);
}

TEST_F(ClusterTest, NarrowClusterWorks) {
  ClusterConfig config;
  config.n_ces = 2;
  config.policy = ServicePolicy::kAscending;
  Cluster narrow(config, cache_, mmu_);
  isa::ConcurrentLoopPhase loop;
  loop.trip_count = 20;
  loop.body = tiny_kernel();
  const isa::Program prog =
      isa::ProgramBuilder("narrow").concurrent_loop(loop).build();
  narrow.load(&prog, 1);
  std::uint32_t max_active = 0;
  Cycle used = 0;
  while (narrow.busy()) {
    narrow.tick();
    bus_.tick(now_);
    cache_.tick();
    ++now_;
    max_active = std::max(max_active, narrow.active_count());
    ASSERT_LT(++used, 1'000'000u);
  }
  EXPECT_EQ(max_active, 2u);
  EXPECT_EQ(narrow.stats().iterations_completed, 20u);
}

}  // namespace
}  // namespace repro::fx8
