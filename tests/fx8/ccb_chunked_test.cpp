#include <gtest/gtest.h>

#include <set>

#include "fx8/ccb.hpp"
#include "fx8/machine.hpp"
#include "fx8/mmu.hpp"
#include "isa/program.hpp"
#include "workload/kernels.hpp"

namespace repro::fx8 {
namespace {

TEST(CcbChunked, BlocksPartitionTheTripCount) {
  ConcurrencyControlBus ccb;
  ccb.start_loop(16, DispatchPolicy::kStaticChunked, 4);
  // CE c owns [4c, 4c+4).
  std::set<std::uint64_t> seen;
  for (CeId c = 0; c < 4; ++c) {
    for (int k = 0; k < 4; ++k) {
      ccb.begin_cycle();
      const auto iter = ccb.try_dispatch(c);
      ASSERT_TRUE(iter.has_value());
      EXPECT_GE(*iter, 4u * c);
      EXPECT_LT(*iter, 4u * c + 4);
      seen.insert(*iter);
    }
    ccb.begin_cycle();
    EXPECT_FALSE(ccb.try_dispatch(c).has_value()) << "block over-dispensed";
  }
  EXPECT_EQ(seen.size(), 16u);
  EXPECT_TRUE(ccb.all_dispatched());
}

TEST(CcbChunked, UnevenTripLeavesTrailingCesShort) {
  ConcurrencyControlBus ccb;
  ccb.start_loop(10, DispatchPolicy::kStaticChunked, 4);
  // ceil(10/4) = 3: blocks [0,3) [3,6) [6,9) [9,10).
  int per_ce[4] = {0, 0, 0, 0};
  for (CeId c = 0; c < 4; ++c) {
    for (;;) {
      ccb.begin_cycle();
      if (!ccb.try_dispatch(c)) {
        break;
      }
      ++per_ce[c];
    }
  }
  EXPECT_EQ(per_ce[0], 3);
  EXPECT_EQ(per_ce[1], 3);
  EXPECT_EQ(per_ce[2], 3);
  EXPECT_EQ(per_ce[3], 1);
  EXPECT_TRUE(ccb.all_dispatched());
}

TEST(CcbChunked, OneGrantPerCycleStillHolds) {
  ConcurrencyControlBus ccb;
  ccb.start_loop(8, DispatchPolicy::kStaticChunked, 8);
  ccb.begin_cycle();
  EXPECT_TRUE(ccb.try_dispatch(0).has_value());
  EXPECT_FALSE(ccb.try_dispatch(1).has_value());  // budget spent
}

TEST(CcbChunked, ClusterRunsChunkedLoopsToCompletion) {
  NoFaultMmu mmu;
  MachineConfig config = MachineConfig::fx8();
  config.cluster.dispatch = DispatchPolicy::kStaticChunked;
  Machine machine(config, mmu);

  workload::KernelTuning tuning;
  isa::ConcurrentLoopPhase loop;
  loop.body = workload::triad_body(tuning);
  loop.trip_count = 43;  // uneven split
  const isa::Program program = isa::ProgramBuilder("chunked")
                                   .data_base(0x01000000)
                                   .concurrent_loop(loop)
                                   .build();
  machine.cluster().load(&program, 1);
  Cycle guard = 0;
  while (machine.cluster().busy()) {
    machine.tick();
    ASSERT_LT(++guard, 2'000'000u);
  }
  EXPECT_EQ(machine.cluster().stats().iterations_completed, 43u);
}

TEST(CcbChunked, ImbalanceHurtsChunkedMoreThanSelfScheduled) {
  auto run = [](DispatchPolicy dispatch) {
    NoFaultMmu mmu;
    MachineConfig config = MachineConfig::fx8();
    config.cluster.dispatch = dispatch;
    config.ip.duty = 0.0;
    Machine machine(config, mmu);
    workload::KernelTuning tuning;
    isa::ConcurrentLoopPhase loop;
    loop.body = workload::triad_body(tuning);
    loop.trip_count = 64;
    loop.long_path_prob = 0.3;
    loop.long_path_extra_steps = 24;
    const isa::Program program = isa::ProgramBuilder("imbalanced")
                                     .seed(99)
                                     .data_base(0x01000000)
                                     .concurrent_loop(loop)
                                     .build();
    machine.cluster().load(&program, 1);
    while (machine.cluster().busy()) {
      machine.tick();
    }
    return machine.now();
  };
  EXPECT_GT(run(DispatchPolicy::kStaticChunked),
            run(DispatchPolicy::kSelfScheduled));
}

}  // namespace
}  // namespace repro::fx8
